// A guided tour of the GreedyGD pre-processing and base/deviation split
// (the paper's Fig. 3), showing exactly what happens to a handful of rows:
// float→int scaling, frequency-ranked categories, missing-value codes, the
// greedy bit selection and the deduplicated bases that later seed
// PairwiseHist bin edges. Everything is reached through a Db opened with
// compression — the facade owns the pipeline; this tour just introspects.
#include <cstdio>

#include "api/db.h"
#include "storage/csv.h"

using namespace pairwisehist;

int main() {
  // A tiny hand-made table so every transformation is visible.
  auto parsed = ParseCsv(
      "temp,status,reading\n"
      "21.5,ok,100\n"
      "21.7,ok,101\n"
      "21.5,ok,\n"
      "21.6,fault,102\n"
      "21.5,ok,100\n"
      "21.8,ok,103\n",
      "demo");
  if (!parsed.ok()) return 1;

  std::printf("schema: %s\n\n", parsed->SchemaString().c_str());

  DbOptions options;
  options.compress = true;  // keep the data only in GD form
  options.synopsis.sample_size = 0;
  auto db = Db::FromTable(std::move(parsed).value(), options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  const CompressedTable& gd = *db->compressed();

  std::printf("pre-processing (min-subtract, x10^decimals, rank-encode, "
              "missing=0):\n");
  for (size_t c = 0; c < gd.num_columns(); ++c) {
    const ColumnTransform& tr = gd.transforms()[c];
    std::printf("  %-8s scale=%-5g min_scaled=%-6lld codes:", tr.name.c_str(),
                tr.scale, static_cast<long long>(tr.min_scaled));
    for (size_t r = 0; r < gd.num_rows(); ++r) {
      auto codes = gd.GetRowCodes(r);
      if (!codes.ok()) break;
      std::printf(" %llu",
                  static_cast<unsigned long long>(codes.value()[c]));
    }
    std::printf("\n");
  }

  std::printf("\nGreedyGD bit split (base bits | deviation bits):\n");
  for (size_t c = 0; c < gd.num_columns(); ++c) {
    std::printf("  %-8s %d | %d of %d\n", gd.transforms()[c].name.c_str(),
                gd.base_bits(c), gd.deviation_bits(c), gd.total_bits(c));
  }
  std::printf("\n%zu rows deduplicated into %zu bases\n", gd.num_rows(),
              gd.num_bases());

  std::printf("\nbase-aligned lower edges per column (PairwiseHist seeds):\n");
  for (size_t c = 0; c < gd.num_columns(); ++c) {
    auto bases = gd.ColumnBaseValues(c);
    std::printf("  %-8s:", gd.transforms()[c].name.c_str());
    for (uint64_t v : bases) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  }

  // Lossless round trip, including the null and the categorical strings
  // (the kept raw table supplies the dictionaries).
  Table back = gd.Decompress(db->table());
  std::printf("\nlossless round trip:\n%s\n", ToCsvString(back).c_str());

  // A realistic dataset for scale feeling: same facade, bigger data.
  DbOptions big_options;
  big_options.compress = true;
  auto big = Db::FromGenerator("power", 50000, 3, big_options);
  if (big.ok()) {
    const Table& power = *big->table();
    const CompressedTable& store = *big->compressed();
    std::printf("power dataset: %zu rows, raw %zu bytes -> compressed %zu "
                "bytes (%.2fx) with %zu bases\n",
                power.NumRows(), power.RawSizeBytes(),
                store.CompressedSizeBytes(),
                static_cast<double>(power.RawSizeBytes()) /
                    store.CompressedSizeBytes(),
                store.num_bases());
  }
  return 0;
}
