// A guided tour of the GreedyGD pre-processing and base/deviation split
// (the paper's Fig. 3), showing exactly what happens to a handful of rows:
// float→int scaling, frequency-ranked categories, missing-value codes, the
// greedy bit selection and the deduplicated bases that later seed
// PairwiseHist bin edges.
#include <cstdio>

#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "storage/csv.h"

using namespace pairwisehist;

int main() {
  // A tiny hand-made table so every transformation is visible.
  auto parsed = ParseCsv(
      "temp,status,reading\n"
      "21.5,ok,100\n"
      "21.7,ok,101\n"
      "21.5,ok,\n"
      "21.6,fault,102\n"
      "21.5,ok,100\n"
      "21.8,ok,103\n",
      "demo");
  if (!parsed.ok()) return 1;
  Table& t = parsed.value();

  std::printf("schema: %s\n\n", t.SchemaString().c_str());

  auto pre = Preprocess(t);
  if (!pre.ok()) return 1;
  std::printf("pre-processing (min-subtract, x10^decimals, rank-encode, "
              "missing=0):\n");
  for (size_t c = 0; c < pre->NumColumns(); ++c) {
    const ColumnTransform& tr = pre->transforms[c];
    std::printf("  %-8s scale=%-5g min_scaled=%-6lld codes:", tr.name.c_str(),
                tr.scale, static_cast<long long>(tr.min_scaled));
    for (size_t r = 0; r < pre->NumRows(); ++r) {
      std::printf(" %llu", static_cast<unsigned long long>(pre->codes[c][r]));
    }
    std::printf("\n");
  }

  auto compressed = CompressedTable::Compress(*pre);
  if (!compressed.ok()) return 1;
  std::printf("\nGreedyGD bit split (base bits | deviation bits):\n");
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    std::printf("  %-8s %d | %d of %d\n",
                pre->transforms[c].name.c_str(), compressed->base_bits(c),
                compressed->deviation_bits(c), compressed->total_bits(c));
  }
  std::printf("\n%zu rows deduplicated into %zu bases\n",
              compressed->num_rows(), compressed->num_bases());

  std::printf("\nbase-aligned lower edges per column (PairwiseHist seeds):\n");
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    auto bases = compressed->ColumnBaseValues(c);
    std::printf("  %-8s:", pre->transforms[c].name.c_str());
    for (uint64_t v : bases) {
      std::printf(" %llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  }

  // Lossless round trip, including the null and the categorical strings.
  Table back = compressed->Decompress(&t);
  std::printf("\nlossless round trip:\n%s\n", ToCsvString(back).c_str());

  // A realistic dataset for scale feeling.
  Table power = MakePower(50000, 3);
  auto big = CompressTable(power);
  if (big.ok()) {
    std::printf("power dataset: %zu rows, raw %zu bytes -> compressed %zu "
                "bytes (%.2fx) with %zu bases\n",
                power.NumRows(), power.RawSizeBytes(),
                big->CompressedSizeBytes(),
                static_cast<double>(power.RawSizeBytes()) /
                    big->CompressedSizeBytes(),
                big->num_bases());
  }
  return 0;
}
