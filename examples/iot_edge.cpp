// Edge-analytics scenario: GreedyGD-compressed IoT storage + PairwiseHist.
//
// Models the paper's edge deployment story (Section 1): a gateway ingests
// sensor batches into a Db opened with compression, so the data lives ONLY
// in GD-compressed form (the bases double as synopsis bin-edge seeds). The
// gateway ships the sub-MB serialized synopsis to a constrained device,
// which reopens it data-free and answers prepared SQL locally — no raw
// data leaves the gateway.
#include <cstdio>

#include "api/db.h"
#include "datagen/datasets.h"

using namespace pairwisehist;

int main() {
  // --- Gateway: open compressed over the initial stream ----------------
  // Transforms (min/max, decimal scales, category ranks) are fitted on
  // the full initial load, so the GD store stays lossless for it.
  std::printf("[gateway] ingesting initial gas-sensor load...\n");
  Table full = MakeGas(120000, 99);
  size_t raw_bytes = full.RawSizeBytes();

  DbOptions options;
  options.compress = true;          // GreedyGD store + base-seeded bins
  options.synopsis.sample_size = 30000;
  auto gateway = Db::FromTable(std::move(full), options);
  if (!gateway.ok()) {
    std::fprintf(stderr, "%s\n", gateway.status().ToString().c_str());
    return 1;
  }
  std::printf("[gateway] raw would be %zu bytes; compressed store is %zu "
              "(%.2fx)\n",
              raw_bytes, gateway->compressed()->CompressedSizeBytes(),
              static_cast<double>(raw_bytes) /
                  gateway->compressed()->CompressedSizeBytes());

  // Fresh sensor batches fold into every structure incrementally (values
  // outside the fitted domain clamp to it — rebuild after heavy drift).
  for (uint64_t day = 1; day <= 2; ++day) {
    Table batch = MakeGas(20000, 99 + day);
    Status st = gateway->Append(batch);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    const CompressedTable& store = *gateway->compressed();
    std::printf("[gateway] appended 20000-row batch; store now %zu rows, "
                "%zu bases, %zu bytes\n",
                store.num_rows(), store.num_bases(),
                store.CompressedSizeBytes());
  }
  std::printf("\n");

  // --- Gateway: ship the synopsis --------------------------------------
  std::vector<uint8_t> blob = gateway->ToBlob();
  std::printf("[gateway] synopsis (built from compressed bases): %zu "
              "bytes to ship\n\n",
              blob.size());

  // --- Edge device: answer SQL from the synopsis alone ----------------
  auto device = Db::FromBlob(blob);
  if (!device.ok()) return 1;

  const char* questions[] = {
      "SELECT AVG(temperature) FROM gas WHERE activity = 1;",
      "SELECT COUNT(sensor_r0) FROM gas WHERE sensor_r0 < 9.5;",
      "SELECT MEDIAN(humidity) FROM gas WHERE temperature > 23;",
      "SELECT MAX(temperature) FROM gas WHERE humidity < 46;",
  };
  for (const char* sql : questions) {
    auto prepared = device->Prepare(sql);
    if (!prepared.ok()) continue;
    auto approx = prepared->Execute();
    // Ground truth comes from the gateway, which still holds the data.
    auto exact = gateway->ExecuteExactSql(sql);
    if (!approx.ok() || !exact.ok()) continue;
    std::printf("[device] %s\n", sql);
    std::printf("         approx %10.3f in [%0.3f, %0.3f] | exact %10.3f\n",
                approx->Scalar().estimate, approx->Scalar().lower,
                approx->Scalar().upper, exact->Scalar().estimate);
  }

  // The compressed store still supports exact row recovery when needed.
  auto row = gateway->compressed()->GetRowCodes(12345);
  if (row.ok()) {
    std::printf("\n[gateway] random access check: row 12345 decodes to "
                "%zu codes (lossless)\n",
                row.value().size());
  }
  return 0;
}
