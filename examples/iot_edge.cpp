// Edge-analytics scenario: GreedyGD-compressed IoT storage + PairwiseHist.
//
// Models the paper's edge deployment story (Section 1): a gateway ingests
// sensor batches, keeps them ONLY in GD-compressed form, refreshes a
// PairwiseHist synopsis from the compressed store (bases seed the bin
// edges), and ships the sub-MB synopsis to a constrained device that
// answers SQL locally — no raw data leaves the gateway.
#include <cstdio>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "query/engine.h"
#include "query/exact.h"

using namespace pairwisehist;

int main() {
  // --- Gateway: ingest in batches, store compressed -------------------
  std::printf("[gateway] ingesting gas-sensor batches...\n");
  Table full = MakeGas(120000, 99);

  // Fit transforms on the first batch; GD then ingests incrementally.
  Table first_batch = full.Slice(0, 40000);
  auto transforms = FitColumnTransforms(full);  // schema-level fit
  auto pre0 = ApplyTransforms(first_batch, transforms);
  if (!pre0.ok()) return 1;
  auto compressed = CompressedTable::Compress(*pre0);
  if (!compressed.ok()) {
    std::fprintf(stderr, "%s\n", compressed.status().ToString().c_str());
    return 1;
  }
  for (size_t start = 40000; start < full.NumRows(); start += 40000) {
    Table batch = full.Slice(start, start + 40000);
    auto pre = ApplyTransforms(batch, transforms);
    if (!pre.ok() || !compressed->Append(*pre).ok()) return 1;
    std::printf("[gateway] appended batch at %zu; store now %zu rows, "
                "%zu bases, %zu bytes\n",
                start, compressed->num_rows(), compressed->num_bases(),
                compressed->CompressedSizeBytes());
  }
  std::printf("[gateway] raw would be %zu bytes; compressed store is %zu "
              "(%.2fx)\n\n",
              full.RawSizeBytes(), compressed->CompressedSizeBytes(),
              static_cast<double>(full.RawSizeBytes()) /
                  compressed->CompressedSizeBytes());

  // --- Gateway: refresh the synopsis from the compressed store --------
  PairwiseHistConfig config;
  config.sample_size = 30000;
  auto synopsis = PairwiseHist::BuildFromCompressed(*compressed, config);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "%s\n", synopsis.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> blob = synopsis->Serialize();
  std::printf("[gateway] synopsis refreshed from compressed bases: %zu "
              "bytes to ship\n\n",
              blob.size());

  // --- Edge device: answer SQL from the synopsis alone ----------------
  auto device_synopsis = PairwiseHist::Deserialize(blob);
  if (!device_synopsis.ok()) return 1;
  AqpEngine device(&device_synopsis.value());

  const char* questions[] = {
      "SELECT AVG(temperature) FROM gas WHERE activity = 1;",
      "SELECT COUNT(sensor_r0) FROM gas WHERE sensor_r0 < 9.5;",
      "SELECT MEDIAN(humidity) FROM gas WHERE temperature > 23;",
      "SELECT MAX(temperature) FROM gas WHERE humidity < 46;",
  };
  for (const char* sql : questions) {
    auto approx = device.ExecuteSql(sql);
    auto exact = ExecuteExactSql(full, sql);
    if (!approx.ok() || !exact.ok()) continue;
    std::printf("[device] %s\n", sql);
    std::printf("         approx %10.3f in [%0.3f, %0.3f] | exact %10.3f\n",
                approx->Scalar().estimate, approx->Scalar().lower,
                approx->Scalar().upper, exact->Scalar().estimate);
  }

  // The compressed store still supports exact row recovery when needed.
  auto row = compressed->GetRowCodes(12345);
  if (row.ok()) {
    std::printf("\n[gateway] random access check: row 12345 decodes to "
                "%zu codes (lossless)\n",
                row.value().size());
  }
  return 0;
}
