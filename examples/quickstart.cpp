// Quickstart: build a PairwiseHist synopsis and run approximate SQL.
//
//   1. get a table (here: the synthetic household-power dataset),
//   2. build the synopsis (optionally on top of GreedyGD compression),
//   3. ask SQL questions and compare against exact answers.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exact.h"

using namespace pairwisehist;

int main() {
  // 1. A dataset. Any Table works — see storage/csv.h for loading CSVs.
  Table table = MakePower(/*rows=*/100000, /*seed=*/42);
  std::printf("dataset: %zu rows, %zu columns\n", table.NumRows(),
              table.NumColumns());
  std::printf("schema:  %s\n\n", table.SchemaString().c_str());

  // 2. Build the synopsis from a 20k-row sample (M = 1% of Ns, α = 0.001,
  //    the paper's defaults).
  PairwiseHistConfig config;
  config.sample_size = 20000;
  auto synopsis = PairwiseHist::BuildFromTable(table, config);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 synopsis.status().ToString().c_str());
    return 1;
  }
  std::printf("synopsis: %zu bytes (%.2fx smaller than the raw data)\n\n",
              synopsis->StorageBytes(),
              static_cast<double>(table.RawSizeBytes()) /
                  synopsis->StorageBytes());

  // 3. Ask questions.
  AqpEngine engine(&synopsis.value());
  const char* queries[] = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(sub_metering_3) FROM power WHERE voltage > 240 AND "
      "hour < 12;",
      "SELECT MEDIAN(global_active_power) FROM power WHERE day_of_week = 6;",
      "SELECT MAX(global_intensity) FROM power WHERE hour < 6 OR hour > 22;",
  };
  for (const char* sql : queries) {
    auto approx = engine.ExecuteSql(sql);
    auto exact = ExecuteExactSql(table, sql);
    if (!approx.ok() || !exact.ok()) {
      std::fprintf(stderr, "query failed: %s\n", sql);
      continue;
    }
    const AggResult& a = approx->Scalar();
    const AggResult& e = exact->Scalar();
    std::printf("%s\n", sql);
    std::printf("  approx %12.3f   in [%0.3f, %0.3f]\n", a.estimate,
                a.lower, a.upper);
    std::printf("  exact  %12.3f   (error %.3f%%)\n\n", e.estimate,
                e.estimate != 0
                    ? std::abs(a.estimate - e.estimate) /
                          std::abs(e.estimate) * 100
                    : 0.0);
  }

  // Bonus: the synopsis serializes to a compact blob you can ship to an
  // edge device and query without the data.
  std::vector<uint8_t> blob = synopsis->Serialize();
  auto restored = PairwiseHist::Deserialize(blob);
  std::printf("serialized to %zu bytes; restored synopsis answers:\n",
              blob.size());
  AqpEngine edge(&restored.value());
  auto r = edge.ExecuteSql("SELECT AVG(voltage) FROM power;");
  std::printf("  AVG(voltage) = %.2f\n", r->Scalar().estimate);
  return 0;
}
