// Quickstart: open a Db, prepare SQL once, execute many times.
//
//   1. open a Db from a generator / CSV / Table (the facade hides the
//      preprocess → build → engine wiring),
//   2. Prepare SQL once — parse, normalization and grid selection happen
//      here — then Execute() the compiled plan and compare against the
//      exact answer from the kept raw table,
//   3. Save the synopsis and reopen it data-free on an "edge device".
//
// Build & run:  cmake --build build && ./build/quickstart
#include <cstdio>

#include "api/db.h"

using namespace pairwisehist;

int main() {
  // 1. A database over the synthetic household-power dataset. Any source
  //    works: Db::FromCsv("data.csv"), Db::FromTable(std::move(table)).
  DbOptions options;
  options.synopsis.sample_size = 20000;  // Ns (M = 1% of Ns, α = 0.001)
  auto db = Db::FromGenerator("power", 100000, 42, options);
  if (!db.ok()) {
    std::fprintf(stderr, "open failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu rows, %zu columns\n", db->table()->NumRows(),
              db->table()->NumColumns());
  std::printf("schema:  %s\n\n", db->table()->SchemaString().c_str());
  std::printf("synopsis: %zu bytes (%.2fx smaller than the raw data)\n\n",
              db->StorageBytes(),
              static_cast<double>(db->table()->RawSizeBytes()) /
                  db->StorageBytes());

  // 2. Ask questions. Prepare parses and plans once; Execute and
  //    ExecuteExact both reuse the same parsed statement.
  const char* queries[] = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(sub_metering_3) FROM power WHERE voltage > 240 AND "
      "hour < 12;",
      "SELECT MEDIAN(global_active_power) FROM power WHERE day_of_week = 6;",
      "SELECT MAX(global_intensity) FROM power WHERE hour < 6 OR hour > 22;",
  };
  for (const char* sql : queries) {
    auto prepared = db->Prepare(sql);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare failed: %s\n", sql);
      continue;
    }
    auto approx = prepared->Execute();
    auto exact = prepared->ExecuteExact();
    if (!approx.ok() || !exact.ok()) {
      std::fprintf(stderr, "query failed: %s\n", sql);
      continue;
    }
    const AggResult& a = approx->Scalar();
    const AggResult& e = exact->Scalar();
    std::printf("%s\n", sql);
    std::printf("  approx %12.3f   in [%0.3f, %0.3f]\n", a.estimate,
                a.lower, a.upper);
    std::printf("  exact  %12.3f   (error %.3f%%)\n\n", e.estimate,
                e.estimate != 0
                    ? std::abs(a.estimate - e.estimate) /
                          std::abs(e.estimate) * 100
                    : 0.0);
  }

  // 3. The synopsis serializes to a compact blob you can ship to an edge
  //    device and query without the data.
  std::vector<uint8_t> blob = db->ToBlob();
  auto edge = Db::FromBlob(blob);
  if (!edge.ok()) return 1;
  std::printf("serialized to %zu bytes; restored synopsis answers:\n",
              blob.size());
  auto r = edge->ExecuteSql("SELECT AVG(voltage) FROM power;");
  std::printf("  AVG(voltage) = %.2f\n", r->Scalar().estimate);
  return 0;
}
