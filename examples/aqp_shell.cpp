// Interactive AQP shell on top of the pairwisehist::Db facade: open a
// dataset (generator name or CSV path), then type SQL against the
// synopsis. One Db handle covers build, approximate + exact execution,
// prepared statements and incremental append — the full public API.
//
// Usage:
//   aqp_shell                      # flights demo dataset
//   aqp_shell power                # any of the 11 generator names
//   aqp_shell /path/to/data.csv    # your own CSV
//
// Shell commands besides SQL:
//   .schema           column names and types
//   .stats            synopsis statistics
//   .segments         per-segment ranges, sizes, compaction tier + error
//   .compact          merge eligible segment runs (tiered compaction)
//   .exact <sql>      run the same SQL exactly (ground truth)
//   .prepare <sql>    compile once, then time repeated executions
//   .batch <file>     execute one query per line as a single batch and
//                     report per-query latency + batch-vs-loop speedup
//   .append <rows>    generate + seal new rows as a fresh segment
//   .append <csv>     ingest a CSV batch as a fresh segment
//   .serve <port>     expose the open Db over HTTP (serve/ServingDb) until
//                     Enter is pressed, then reattach the shell
//   .save [pws2] <path>  write the synopsis: memory-mappable PWS3 by
//                     default, or the compact Fig.-6 PWS2 container
//   .open <path>      reopen a saved synopsis (PWS3 memory-maps in O(1);
//                     prints the open mode and mapped byte count)
//   .quit
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "api/db.h"
#include "datagen/datasets.h"
#include "query/batch_exec.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/csv.h"

using namespace pairwisehist;

namespace {

void PrintResult(const QueryResult& result) {
  for (const auto& g : result.groups) {
    if (!g.label.empty()) std::printf("  %-16s", g.label.c_str());
    if (g.agg.empty_selection) {
      std::printf("  (empty selection)\n");
      continue;
    }
    std::printf("  %14.4f   bounds [%0.4f, %0.4f]\n", g.agg.estimate,
                g.agg.lower, g.agg.upper);
  }
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = argc > 1 ? argv[1] : "flights";

  DbOptions options;
  // Live segment lifecycle: .append seals segments, the tiered compactor
  // merges eligible runs (automatically after appends, or via .compact).
  options.compact.enabled = true;
  auto opened = source.find(".csv") != std::string::npos
                    ? Db::FromCsv(source, options)
                    : Db::FromGenerator(source, 0, 1, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open '%s': %s\n", source.c_str(),
                 opened.status().ToString().c_str());
    if (source.find(".csv") == std::string::npos) {
      std::fprintf(stderr, "known datasets: ");
      for (const auto& spec : AllDatasets()) {
        std::fprintf(stderr, "%s ", spec.name.c_str());
      }
      std::fprintf(stderr, "(or a .csv path)\n");
    }
    return 1;
  }
  Db db = std::move(opened).value();

  std::printf("loaded '%s': %zu rows x %zu columns\n", db.name().c_str(),
              db.table()->NumRows(), db.table()->NumColumns());
  std::printf("synopsis ready: %zu bytes. Type SQL or .help\n",
              db.StorageBytes());

  std::string line;
  while (std::printf("aqp> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf(
          "SQL:  SELECT <agg>(col|*) FROM t [WHERE ...] [GROUP BY col];\n"
          "      aggs: COUNT SUM AVG MIN MAX MEDIAN VAR\n"
          ".schema          column names and types\n"
          ".stats           synopsis statistics\n"
          ".segments        per-segment ranges, sizes, tier + error stats\n"
          ".compact         merge eligible segment runs (tiered "
          "compaction)\n"
          ".exact <sql>     run the same SQL exactly (ground truth)\n"
          ".prepare <sql>   compile once, time 1000 re-executions\n"
          ".batch <file>    run one query per line as a single batch\n"
          ".append <rows>   generate+seal new rows as a fresh segment\n"
          ".append <csv>    ingest a CSV batch as a fresh segment\n"
          ".serve <port>    expose this Db over HTTP until Enter (0 = any)\n"
          ".save [pws2] <path>  write the synopsis (default: mappable "
          "PWS3; 'pws2' = compact Fig.-6)\n"
          ".open <path>     reopen a saved synopsis (PWS3 mmaps in O(1); "
          "prints mode + mapped bytes)\n"
          ".quit\n");
      continue;
    }
    if (line == ".schema") {
      // A synopsis reopened with .open carries no raw table; report the
      // append schema (names + types) recovered from the synopsis.
      if (db.table() != nullptr) {
        std::printf("%s\n", db.table()->SchemaString().c_str());
      } else {
        for (const auto& [name, type] : db.AppendSchema()) {
          std::printf("  %-16s %s\n", name.c_str(), DataTypeName(type));
        }
      }
      continue;
    }
    if (line == ".stats") {
      const PairwiseHist& s = db.synopsis();
      std::printf("rows N=%llu (%zu segments)  columns=%zu  pairs=%zu  "
                  "bytes=%zu\n",
                  (unsigned long long)db.total_rows(), db.num_segments(),
                  s.num_columns(), s.num_pairs(), db.StorageBytes());
      std::printf("segment 0: Ns=%llu  rho=%.4f  M=%llu\n",
                  (unsigned long long)s.sample_rows(), s.sampling_ratio(),
                  (unsigned long long)s.min_points());
      continue;
    }
    if (line == ".segments") {
      // tier/err columns come from the segment lifecycle: the size tier
      // the compactor bins the segment into, and its mean observed
      // relative CI width from the feedback ledger ("-" = no feedback).
      const CompactionOptions& copts = db.compaction_options();
      std::printf("%4s %12s %12s %12s %10s %8s %5s %9s\n", "seg",
                  "rows [begin", "end)", "synopsis B", "Ns", "rho", "tier",
                  "err");
      for (size_t i = 0; i < db.num_segments(); ++i) {
        const SegmentMeta& m = db.segment_meta(i);
        const PairwiseHist& s = db.synopsis(i);
        const uint32_t tier =
            CompactionTier(m.row_end - m.row_begin, copts);
        char err[16] = "-";
        if (db.feedback_ledger() != nullptr) {
          FeedbackLedger::Entry e = db.feedback_ledger()->Get(m.row_begin);
          if (e.samples > 0) {
            std::snprintf(err, sizeof(err), "%.4f", e.mean_rel_width);
          }
        }
        std::printf("%4zu %12llu %12llu %12zu %10llu %8.4f %5u %9s\n", i,
                    (unsigned long long)m.row_begin,
                    (unsigned long long)m.row_end, s.StorageBytes(),
                    (unsigned long long)s.sample_rows(), s.sampling_ratio(),
                    tier, err);
      }
      std::printf("backlog: %zu segment(s) in eligible merge runs\n",
                  db.CompactionBacklogSize());
      continue;
    }
    if (line == ".compact") {
      const size_t before = db.num_segments();
      auto applied = db.Compact();
      if (!applied.ok()) {
        std::printf("error: %s\n", applied.status().ToString().c_str());
      } else if (applied.value() == 0) {
        std::printf("nothing eligible (enable compaction or seal more "
                    "segments; %zu segments)\n",
                    before);
      } else {
        std::printf("compacted: %zu merge step(s), %zu -> %zu segments, "
                    "%zu bytes\n",
                    applied.value(), before, db.num_segments(),
                    db.StorageBytes());
      }
      continue;
    }
    if (line.rfind(".exact ", 0) == 0) {
      auto result = db.ExecuteExactSql(line.substr(7));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      continue;
    }
    if (line.rfind(".prepare ", 0) == 0) {
      auto prepared = db.Prepare(line.substr(9));
      if (!prepared.ok()) {
        std::printf("error: %s\n", prepared.status().ToString().c_str());
        continue;
      }
      auto first = prepared->Execute();
      if (!first.ok()) {
        std::printf("error: %s\n", first.status().ToString().c_str());
        continue;
      }
      PrintResult(first.value());
      const int reps = 1000;
      double t0 = NowUs();
      for (int i = 0; i < reps; ++i) {
        auto r = prepared->Execute();
        (void)r;
      }
      std::printf("  prepared: %.1f us/execution over %d runs\n",
                  (NowUs() - t0) / reps, reps);
      continue;
    }
    if (line.rfind(".batch ", 0) == 0) {
      std::string path = line.substr(7);
      std::ifstream in(path);
      if (!in) {
        std::printf("error: cannot open '%s'\n", path.c_str());
        continue;
      }
      std::vector<std::string> sqls;
      std::string sql;
      while (std::getline(in, sql)) {
        // One query per line; blank lines and # comments are skipped.
        size_t first = sql.find_first_not_of(" \t\r");
        if (first == std::string::npos || sql[first] == '#') continue;
        sqls.push_back(sql.substr(first));
      }
      if (sqls.empty()) {
        std::printf("no queries in '%s'\n", path.c_str());
        continue;
      }
      auto batch = db.PrepareBatch(sqls);
      if (!batch.ok()) {
        std::printf("error: %s\n", batch.status().ToString().c_str());
        continue;
      }
      std::vector<QueryResult> results;
      Status st = batch->ExecuteInto(&results);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
        continue;
      }
      for (size_t i = 0; i < results.size(); ++i) {
        std::printf("[%2zu] %s\n", i, sqls[i].c_str());
        PrintResult(results[i]);
      }
      // Batch vs loop timing over the same prepared statements.
      std::vector<PreparedQuery> prepared;
      bool all_prepared = true;
      for (const std::string& s : sqls) {
        auto pq = db.Prepare(s);
        if (!pq.ok()) {
          all_prepared = false;
          break;
        }
        prepared.push_back(std::move(pq).value());
      }
      const int reps = 200;
      bool timing_ok = true;
      double t0 = NowUs();
      for (int r = 0; r < reps; ++r) {
        timing_ok = batch->ExecuteInto(&results).ok() && timing_ok;
      }
      double batch_us = (NowUs() - t0) / reps;
      double loop_us = 0;
      if (all_prepared) {
        std::vector<QueryResult> loop_results(prepared.size());
        t0 = NowUs();
        for (int r = 0; r < reps; ++r) {
          for (size_t i = 0; i < prepared.size(); ++i) {
            timing_ok =
                prepared[i].ExecuteInto(&loop_results[i]).ok() && timing_ok;
          }
        }
        loop_us = (NowUs() - t0) / reps;
      }
      if (!timing_ok) {
        std::printf("  timing invalid: executions failed mid-loop\n");
        continue;
      }
      std::printf(
          "  %zu queries (%zu distinct plans): %.2f us/query batched",
          batch->size(), batch->NumDistinctPlans(),
          batch_us / static_cast<double>(batch->size()));
      if (loop_us > 0) {
        std::printf(", %.2f us/query looped  (%.2fx speedup)\n",
                    loop_us / static_cast<double>(batch->size()),
                    loop_us / batch_us);
      } else {
        std::printf("\n");
      }
      continue;
    }
    if (line.rfind(".append ", 0) == 0) {
      std::string arg = line.substr(8);
      if (arg.size() > 4 && arg.rfind(".csv") == arg.size() - 4) {
        // Ingest a CSV batch: sealed as a fresh segment (fresh bin edges).
        auto batch = ReadCsv(arg);
        if (!batch.ok()) {
          std::printf("error: %s\n", batch.status().ToString().c_str());
          continue;
        }
        Status st = db.Append(batch.value());
        if (!st.ok()) {
          std::printf("error: %s\n", st.ToString().c_str());
        } else {
          std::printf("sealed %zu rows from %s; N=%llu, %zu segments, "
                      "%zu bytes\n",
                      batch->NumRows(), arg.c_str(),
                      (unsigned long long)db.total_rows(),
                      db.num_segments(), db.StorageBytes());
        }
        continue;
      }
      size_t rows = std::strtoull(arg.c_str(), nullptr, 10);
      if (rows == 0 || rows > 1000000) {
        std::printf("usage: .append <1..1000000 | path.csv>\n");
        continue;
      }
      auto fresh = MakeDataset(source, rows, db.total_rows() + 1);
      if (!fresh.ok()) {
        std::printf(".append <rows> only works for generated datasets; "
                    "pass a .csv path instead\n");
        continue;
      }
      Status st = db.Append(*fresh);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("sealed %zu rows; N=%llu, %zu segments, %zu bytes\n",
                    rows, (unsigned long long)db.total_rows(),
                    db.num_segments(), db.StorageBytes());
      }
      continue;
    }
    if (line.rfind(".serve", 0) == 0) {
      const uint16_t port = static_cast<uint16_t>(
          line.size() > 7 ? std::strtoul(line.c_str() + 7, nullptr, 10) : 0);
      // Hand the Db to a ServingDb (snapshot epoch 0), serve until Enter,
      // then take it back — appends made over HTTP are kept. The shell's
      // segment lifecycle carries over: the background compactor merges
      // eligible runs between HTTP appends instead of letting the backlog
      // accumulate until the shell reattaches.
      ServingOptions serving_options;
      serving_options.compaction = db.compaction_options();
      serving_options.compaction.interval_ms = 250;
      ServingDb serving(std::move(db), serving_options);
      HttpServer server(MakeServingHandler(&serving),
                    MakeServingBatchHandler(&serving));
      Status st = server.Start(port);
      if (st.ok()) {
        std::printf("serving on http://127.0.0.1:%u  "
                    "(POST /query /batch /append, GET /stats)\n"
                    "press Enter to stop\n",
                    static_cast<unsigned>(server.port()));
        std::string ignored;
        std::getline(std::cin, ignored);
        server.Drain();
        const ServingStats stats = serving.Stats();
        std::printf(
            "served %llu queries, %llu appends (epoch %llu); "
            "%llu cache hits, %llu coalesced groups; "
            "%llu idle reaps, %llu malformed closes\n",
            (unsigned long long)stats.queries,
            (unsigned long long)stats.appends,
            (unsigned long long)stats.epoch,
            (unsigned long long)stats.cache_hits,
            (unsigned long long)stats.coalesced_groups,
            (unsigned long long)server.idle_reaped(),
            (unsigned long long)server.malformed_closed());
      } else {
        std::printf("error: %s\n", st.ToString().c_str());
      }
      auto back = serving.TakeDb();
      if (!back.ok()) {
        std::fprintf(stderr, "cannot reattach Db: %s\n",
                     back.status().ToString().c_str());
        return 1;
      }
      db = std::move(back).value();
      std::printf("server stopped; shell reattached (%zu segments)\n",
                  db.num_segments());
      continue;
    }
    if (line.rfind(".save ", 0) == 0) {
      // Default: the memory-mappable PWS3 format (O(1) reopen via .open);
      // ".save pws2 <path>" writes the compact Fig.-6 container instead.
      std::string arg = line.substr(6);
      SaveFormat format = SaveFormat::kPws3;
      if (arg.rfind("pws2 ", 0) == 0) {
        format = SaveFormat::kPws2;
        arg = arg.substr(5);
      }
      Status st = db.Save(arg, format);
      std::printf("%s\n", st.ok() ? (format == SaveFormat::kPws3
                                         ? "saved (pws3, mappable)"
                                         : "saved (pws2, compact)")
                                  : st.ToString().c_str());
      continue;
    }
    if (line.rfind(".open ", 0) == 0) {
      const double t0 = NowUs();
      auto reopened = Db::Open(line.substr(6));
      if (!reopened.ok()) {
        std::printf("error: %s\n", reopened.status().ToString().c_str());
        continue;
      }
      db = std::move(reopened).value();
      std::printf(
          "opened in %.0f us: %llu rows, %zu segments, mode=%s, "
          "mapped_bytes=%zu%s\n",
          NowUs() - t0, (unsigned long long)db.total_rows(),
          db.num_segments(), db.mapped() ? "mmap" : "heap",
          db.mapped_bytes(),
          db.mapped() ? " (zero-copy, page-cache shared)" : "");
      continue;
    }
    auto result = db.ExecuteSql(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(result.value());
  }
  return 0;
}
