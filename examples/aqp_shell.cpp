// Interactive AQP shell on top of the pairwisehist::Db facade: open a
// dataset (generator name or CSV path), then type SQL against the
// synopsis. One Db handle covers build, approximate + exact execution,
// prepared statements and incremental append — the full public API.
//
// Usage:
//   aqp_shell                      # flights demo dataset
//   aqp_shell power                # any of the 11 generator names
//   aqp_shell /path/to/data.csv    # your own CSV
//
// Shell commands besides SQL:
//   .schema           column names and types
//   .stats            synopsis statistics
//   .exact <sql>      run the same SQL exactly (ground truth)
//   .prepare <sql>    compile once, then time repeated executions
//   .append <rows>    generate + fold new rows into the synopsis
//   .save <path>      write the Fig.-6 serialized synopsis
//   .quit
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "api/db.h"
#include "datagen/datasets.h"

using namespace pairwisehist;

namespace {

void PrintResult(const QueryResult& result) {
  for (const auto& g : result.groups) {
    if (!g.label.empty()) std::printf("  %-16s", g.label.c_str());
    if (g.agg.empty_selection) {
      std::printf("  (empty selection)\n");
      continue;
    }
    std::printf("  %14.4f   bounds [%0.4f, %0.4f]\n", g.agg.estimate,
                g.agg.lower, g.agg.upper);
  }
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = argc > 1 ? argv[1] : "flights";

  DbOptions options;
  auto opened = source.find(".csv") != std::string::npos
                    ? Db::FromCsv(source, options)
                    : Db::FromGenerator(source, 0, 1, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open '%s': %s\n", source.c_str(),
                 opened.status().ToString().c_str());
    if (source.find(".csv") == std::string::npos) {
      std::fprintf(stderr, "known datasets: ");
      for (const auto& spec : AllDatasets()) {
        std::fprintf(stderr, "%s ", spec.name.c_str());
      }
      std::fprintf(stderr, "(or a .csv path)\n");
    }
    return 1;
  }
  Db db = std::move(opened).value();

  std::printf("loaded '%s': %zu rows x %zu columns\n", db.name().c_str(),
              db.table()->NumRows(), db.table()->NumColumns());
  std::printf("synopsis ready: %zu bytes. Type SQL or .help\n",
              db.StorageBytes());

  std::string line;
  while (std::printf("aqp> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf(
          "SQL:  SELECT <agg>(col|*) FROM t [WHERE ...] [GROUP BY col];\n"
          "      aggs: COUNT SUM AVG MIN MAX MEDIAN VAR\n"
          ".schema          column names and types\n"
          ".stats           synopsis statistics\n"
          ".exact <sql>     run the same SQL exactly (ground truth)\n"
          ".prepare <sql>   compile once, time 1000 re-executions\n"
          ".append <rows>   generate+fold new rows into the synopsis\n"
          ".save <path>     write the serialized synopsis\n"
          ".quit\n");
      continue;
    }
    if (line == ".schema") {
      std::printf("%s\n", db.table()->SchemaString().c_str());
      continue;
    }
    if (line == ".stats") {
      const PairwiseHist& s = db.synopsis();
      std::printf("rows N=%llu  sample Ns=%llu  rho=%.4f  M=%llu  "
                  "columns=%zu  pairs=%zu  bytes=%zu\n",
                  (unsigned long long)s.total_rows(),
                  (unsigned long long)s.sample_rows(), s.sampling_ratio(),
                  (unsigned long long)s.min_points(), s.num_columns(),
                  s.num_pairs(), s.StorageBytes());
      continue;
    }
    if (line.rfind(".exact ", 0) == 0) {
      auto result = db.ExecuteExactSql(line.substr(7));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      continue;
    }
    if (line.rfind(".prepare ", 0) == 0) {
      auto prepared = db.Prepare(line.substr(9));
      if (!prepared.ok()) {
        std::printf("error: %s\n", prepared.status().ToString().c_str());
        continue;
      }
      auto first = prepared->Execute();
      if (!first.ok()) {
        std::printf("error: %s\n", first.status().ToString().c_str());
        continue;
      }
      PrintResult(first.value());
      const int reps = 1000;
      double t0 = NowUs();
      for (int i = 0; i < reps; ++i) {
        auto r = prepared->Execute();
        (void)r;
      }
      std::printf("  prepared: %.1f us/execution over %d runs\n",
                  (NowUs() - t0) / reps, reps);
      continue;
    }
    if (line.rfind(".append ", 0) == 0) {
      size_t rows = std::strtoull(line.c_str() + 8, nullptr, 10);
      if (rows == 0 || rows > 1000000) {
        std::printf("usage: .append <1..1000000>\n");
        continue;
      }
      auto fresh =
          MakeDataset(source, rows, db.synopsis().total_rows() + 1);
      if (!fresh.ok()) {
        std::printf("append only works for generated datasets\n");
        continue;
      }
      Status st = db.Append(*fresh);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("folded %zu rows; N=%llu, synopsis %zu bytes\n", rows,
                    (unsigned long long)db.synopsis().total_rows(),
                    db.StorageBytes());
      }
      continue;
    }
    if (line.rfind(".save ", 0) == 0) {
      Status st = db.Save(line.substr(6));
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
      continue;
    }
    auto result = db.ExecuteSql(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(result.value());
  }
  return 0;
}
