// Interactive AQP shell: load or generate a dataset, build the synopsis,
// and type SQL against it. Demonstrates the full public API surface a
// downstream user touches, including the incremental-update extension.
//
// Usage:
//   aqp_shell                      # flights demo dataset
//   aqp_shell power                # any of the 11 generator names
//   aqp_shell /path/to/data.csv    # your own CSV
//
// Shell commands besides SQL:
//   .schema   .stats   .exact <sql>   .append <rows>   .quit
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exact.h"
#include "storage/csv.h"

using namespace pairwisehist;

namespace {

void PrintResult(const QueryResult& result) {
  for (const auto& g : result.groups) {
    if (!g.label.empty()) std::printf("  %-16s", g.label.c_str());
    if (g.agg.empty_selection) {
      std::printf("  (empty selection)\n");
      continue;
    }
    std::printf("  %14.4f   bounds [%0.4f, %0.4f]\n", g.agg.estimate,
                g.agg.lower, g.agg.upper);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string source = argc > 1 ? argv[1] : "flights";

  Table table;
  if (source.find(".csv") != std::string::npos) {
    auto loaded = ReadCsv(source);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", source.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    table = std::move(loaded).value();
  } else {
    auto made = MakeDataset(source, 0, 1);
    if (!made.ok()) {
      std::fprintf(stderr, "unknown dataset '%s' (try: ", source.c_str());
      for (const auto& spec : AllDatasets()) {
        std::fprintf(stderr, "%s ", spec.name.c_str());
      }
      std::fprintf(stderr, "or a .csv path)\n");
      return 1;
    }
    table = std::move(made).value();
  }

  std::printf("loaded '%s': %zu rows x %zu columns\n", table.name().c_str(),
              table.NumRows(), table.NumColumns());
  PairwiseHistConfig config;
  config.sample_size = std::min<size_t>(table.NumRows(), 50000);
  auto synopsis = PairwiseHist::BuildFromTable(table, config);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 synopsis.status().ToString().c_str());
    return 1;
  }
  AqpEngine engine(&synopsis.value());
  std::printf("synopsis ready: %zu bytes. Type SQL or .help\n",
              synopsis->StorageBytes());

  std::string line;
  while (std::printf("aqp> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == ".quit" || line == ".exit") break;
    if (line == ".help") {
      std::printf(
          "SQL:  SELECT <agg>(col|*) FROM t [WHERE ...] [GROUP BY col];\n"
          "      aggs: COUNT SUM AVG MIN MAX MEDIAN VAR\n"
          ".schema          column names and types\n"
          ".stats           synopsis statistics\n"
          ".exact <sql>     run the same SQL exactly (ground truth)\n"
          ".append <rows>   generate+fold new rows into the synopsis\n"
          ".quit\n");
      continue;
    }
    if (line == ".schema") {
      std::printf("%s\n", table.SchemaString().c_str());
      continue;
    }
    if (line == ".stats") {
      std::printf("rows N=%llu  sample Ns=%llu  rho=%.4f  M=%llu  "
                  "columns=%zu  pairs=%zu  bytes=%zu\n",
                  (unsigned long long)synopsis->total_rows(),
                  (unsigned long long)synopsis->sample_rows(),
                  synopsis->sampling_ratio(),
                  (unsigned long long)synopsis->min_points(),
                  synopsis->num_columns(), synopsis->num_pairs(),
                  synopsis->StorageBytes());
      continue;
    }
    if (line.rfind(".exact ", 0) == 0) {
      auto result = ExecuteExactSql(table, line.substr(7));
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
      } else {
        PrintResult(result.value());
      }
      continue;
    }
    if (line.rfind(".append ", 0) == 0) {
      size_t rows = std::strtoull(line.c_str() + 8, nullptr, 10);
      if (rows == 0 || rows > 1000000) {
        std::printf("usage: .append <1..1000000>\n");
        continue;
      }
      auto fresh = MakeDataset(source, rows, synopsis->total_rows() + 1);
      if (!fresh.ok()) {
        std::printf("append only works for generated datasets\n");
        continue;
      }
      Status st = synopsis->UpdateFromTable(*fresh);
      if (!st.ok()) {
        std::printf("error: %s\n", st.ToString().c_str());
      } else {
        std::printf("folded %zu rows; N=%llu, synopsis %zu bytes\n", rows,
                    (unsigned long long)synopsis->total_rows(),
                    synopsis->StorageBytes());
      }
      continue;
    }
    auto result = engine.ExecuteSql(line);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(result.value());
  }
  return 0;
}
