// Flight-delay analytics session — the paper's motivating workload.
//
// Demonstrates the kinds of interactive analytics the paper's introduction
// targets: multi-predicate filters, OR combinations (which DeepDB/DBEst++
// reject), GROUP BY over categorical columns, and MIN/MAX/MEDIAN/VAR
// aggregates, all answered in well under a millisecond from a sub-MB
// synopsis while the exact scan churns through the full table. Each
// question is prepared once through the Db facade, so the timed hot path
// is plan re-execution, not parsing.
#include <chrono>
#include <cstdio>

#include "api/db.h"

using namespace pairwisehist;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Ask(const Db& db, const char* sql) {
  auto prepared = db.Prepare(sql);
  std::printf("Q: %s\n", sql);
  if (!prepared.ok()) {
    std::printf("   prepare failed: %s\n",
                prepared.status().ToString().c_str());
    return;
  }
  double t0 = NowUs();
  auto approx = prepared->Execute();
  double approx_us = NowUs() - t0;
  t0 = NowUs();
  auto exact = prepared->ExecuteExact();
  double exact_us = NowUs() - t0;
  if (!approx.ok()) {
    std::printf("   approx failed: %s\n", approx.status().ToString().c_str());
    return;
  }
  if (approx->groups.size() == 1 && approx->groups[0].label.empty()) {
    const AggResult& a = approx->Scalar();
    const AggResult& e = exact->Scalar();
    std::printf("   approx %11.2f  bounds [%0.2f, %0.2f]  (%.0f us)\n",
                a.estimate, a.lower, a.upper, approx_us);
    std::printf("   exact  %11.2f                        (%.0f us, %.0fx "
                "slower)\n",
                e.estimate, exact_us,
                approx_us > 0 ? exact_us / approx_us : 0);
  } else {
    std::printf("   %-14s %12s %12s\n", "group", "approx", "exact");
    for (const auto& g : approx->groups) {
      double exact_value = 0;
      for (const auto& eg : exact->groups) {
        if (eg.label == g.label) exact_value = eg.agg.estimate;
      }
      std::printf("   %-14s %12.2f %12.2f\n", g.label.c_str(),
                  g.agg.estimate, exact_value);
    }
    std::printf("   (approx %.0f us vs exact %.0f us)\n", approx_us,
                exact_us);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating flight records...\n");
  DbOptions options;
  options.synopsis.sample_size = 30000;
  auto db = Db::FromGenerator("flights", 150000, 7, options);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("synopsis built: %zu bytes for %zu rows x %zu columns\n\n",
              db->StorageBytes(), db->table()->NumRows(),
              db->table()->NumColumns());

  // The paper's Fig. 7 query shape: aggregation with range predicates on
  // two other columns, including same-column consolidation (the literals
  // are adapted to this generator's distance domain, which starts ~330mi).
  Ask(*db,
      "SELECT AVG(arrival_delay) FROM flights WHERE distance > 400 AND "
      "distance < 700 OR distance < 2500 AND air_time > 290.5;");

  // Multi-predicate conjunctions.
  Ask(*db,
      "SELECT COUNT(flight_id) FROM flights WHERE departure_delay > 30 AND "
      "distance > 1000 AND month <= 6;");

  // OR across columns — rejected by DeepDB and DBEst++, supported here.
  Ask(*db,
      "SELECT MEDIAN(departure_delay) FROM flights WHERE "
      "airline = 'AL0' OR airline = 'AL1';");

  // Extremal aggregates with predicates.
  Ask(*db,
      "SELECT MAX(arrival_delay) FROM flights WHERE scheduled_departure "
      "< 900;");
  Ask(*db, "SELECT VAR(taxi_out) FROM flights WHERE distance >= 500;");

  // GROUP BY a categorical column.
  Ask(*db,
      "SELECT AVG(departure_delay) FROM flights WHERE month >= 10 "
      "GROUP BY airline;");
  return 0;
}
