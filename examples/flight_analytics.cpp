// Flight-delay analytics session — the paper's motivating workload.
//
// Demonstrates the kinds of interactive analytics the paper's introduction
// targets: multi-predicate filters, OR combinations (which DeepDB/DBEst++
// reject), GROUP BY over categorical columns, and MIN/MAX/MEDIAN/VAR
// aggregates, all answered in well under a millisecond from a sub-MB
// synopsis while the exact scan churns through the full table.
#include <chrono>
#include <cstdio>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exact.h"

using namespace pairwisehist;

namespace {

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Ask(const AqpEngine& engine, const Table& table, const char* sql) {
  double t0 = NowUs();
  auto approx = engine.ExecuteSql(sql);
  double approx_us = NowUs() - t0;
  t0 = NowUs();
  auto exact = ExecuteExactSql(table, sql);
  double exact_us = NowUs() - t0;
  std::printf("Q: %s\n", sql);
  if (!approx.ok()) {
    std::printf("   approx failed: %s\n", approx.status().ToString().c_str());
    return;
  }
  if (approx->groups.size() == 1 && approx->groups[0].label.empty()) {
    const AggResult& a = approx->Scalar();
    const AggResult& e = exact->Scalar();
    std::printf("   approx %11.2f  bounds [%0.2f, %0.2f]  (%.0f us)\n",
                a.estimate, a.lower, a.upper, approx_us);
    std::printf("   exact  %11.2f                        (%.0f us, %.0fx "
                "slower)\n",
                e.estimate, exact_us,
                approx_us > 0 ? exact_us / approx_us : 0);
  } else {
    std::printf("   %-14s %12s %12s\n", "group", "approx", "exact");
    for (const auto& g : approx->groups) {
      double exact_value = 0;
      for (const auto& eg : exact->groups) {
        if (eg.label == g.label) exact_value = eg.agg.estimate;
      }
      std::printf("   %-14s %12.2f %12.2f\n", g.label.c_str(),
                  g.agg.estimate, exact_value);
    }
    std::printf("   (approx %.0f us vs exact %.0f us)\n", approx_us,
                exact_us);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating flight records...\n");
  Table flights = MakeFlights(150000, 7);

  PairwiseHistConfig config;
  config.sample_size = 30000;
  auto synopsis = PairwiseHist::BuildFromTable(flights, config);
  if (!synopsis.ok()) {
    std::fprintf(stderr, "%s\n", synopsis.status().ToString().c_str());
    return 1;
  }
  AqpEngine engine(&synopsis.value());
  std::printf("synopsis built: %zu bytes for %zu rows x %zu columns\n\n",
              synopsis->StorageBytes(), flights.NumRows(),
              flights.NumColumns());

  // The paper's Fig. 7 query shape: aggregation with range predicates on
  // two other columns, including same-column consolidation (the literals
  // are adapted to this generator's distance domain, which starts ~330mi).
  Ask(engine, flights,
      "SELECT AVG(arrival_delay) FROM flights WHERE distance > 400 AND "
      "distance < 700 OR distance < 2500 AND air_time > 290.5;");

  // Multi-predicate conjunctions.
  Ask(engine, flights,
      "SELECT COUNT(flight_id) FROM flights WHERE departure_delay > 30 AND "
      "distance > 1000 AND month <= 6;");

  // OR across columns — rejected by DeepDB and DBEst++, supported here.
  Ask(engine, flights,
      "SELECT MEDIAN(departure_delay) FROM flights WHERE "
      "airline = 'AL0' OR airline = 'AL1';");

  // Extremal aggregates with predicates.
  Ask(engine, flights,
      "SELECT MAX(arrival_delay) FROM flights WHERE scheduled_departure "
      "< 900;");
  Ask(engine, flights,
      "SELECT VAR(taxi_out) FROM flights WHERE distance >= 500;");

  // GROUP BY a categorical column.
  Ask(engine, flights,
      "SELECT AVG(departure_delay) FROM flights WHERE month >= 10 "
      "GROUP BY airline;");
  return 0;
}
