// aqp_serve: stand-alone AQP HTTP server on top of serve/ServingDb.
//
// Builds a Db from a generator dataset or a CSV file and serves it:
//
//   aqp_serve                             # power dataset, 200k rows, :8080
//   aqp_serve --gen flights --rows 500000 --port 9000
//   aqp_serve --csv data.csv --port 0    # 0 = kernel-assigned (printed)
//   aqp_serve --segment-rows 50000 --no-coalesce --window-us 50
//
// Endpoints (JSON; see src/serve/service.h):
//   POST /query   {"sql":"SELECT AVG(x) FROM t WHERE y > 1;"}
//   POST /batch   {"sqls":["...", "..."]}
//   POST /append  CSV body with header row (sealed as fresh segments)
//   GET  /stats   serving counters (epoch, QPS bookkeeping, cache, ...)
//
// Prints "serving on port <P>" once ready (the CI smoke test greps it),
// then blocks until SIGINT/SIGTERM or EOF on stdin.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "api/db.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_db.h"

using namespace pairwisehist;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string gen = "power";
  std::string csv;
  size_t rows = 200000;
  size_t segment_rows = 0;
  long port = 8080;
  uint64_t seed = 42;
  ServingOptions serving_options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--gen") {
      gen = next();
    } else if (arg == "--csv") {
      csv = next();
    } else if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--segment-rows") {
      segment_rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--port") {
      port = std::strtol(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-coalesce") {
      serving_options.coalesce = false;
    } else if (arg == "--window-us") {
      serving_options.coalesce_window_us =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: aqp_serve [--gen name | --csv path] [--rows N]\n"
                   "                 [--segment-rows N] [--port P] [--seed S]\n"
                   "                 [--no-coalesce] [--window-us U]\n");
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "bad port %ld\n", port);
    return 2;
  }

  DbOptions options;
  options.target_segment_rows = segment_rows;
  auto opened = csv.empty() ? Db::FromGenerator(gen, rows, seed, options)
                            : Db::FromCsv(csv, options);
  if (!opened.ok()) {
    std::fprintf(stderr, "cannot open dataset: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded '%s': %llu rows, %zu segments, %zu synopsis bytes\n",
              opened->name().c_str(),
              (unsigned long long)opened->total_rows(),
              opened->num_segments(), opened->StorageBytes());

  ServingDb serving(std::move(opened).value(), serving_options);
  HttpServer server(MakeServingHandler(&serving),
                    MakeServingBatchHandler(&serving));
  Status st = server.Start(static_cast<uint16_t>(port));
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on port %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Park until a signal or stdin EOF (whichever the supervisor uses).
  while (!g_stop) {
    const int c = std::getchar();
    if (c == EOF) {
      if (g_stop) break;
      // Detached stdin (e.g. backgrounded under CI): fall back to a nap so
      // the loop doesn't spin; signals still break us out.
      struct timespec ts = {0, 200 * 1000 * 1000};
      nanosleep(&ts, nullptr);
      std::clearerr(stdin);
    }
    if (c == 'q') break;
  }
  server.Stop();
  const ServingStats stats = serving.Stats();
  std::printf("stopped after %llu queries, %llu appends (epoch %llu)\n",
              (unsigned long long)stats.queries,
              (unsigned long long)stats.appends,
              (unsigned long long)stats.epoch);
  return 0;
}
