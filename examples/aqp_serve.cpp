// aqp_serve: stand-alone AQP HTTP server on top of serve/ServingDb.
//
// Builds a Db from a generator dataset or a CSV file and serves it:
//
//   aqp_serve                             # power dataset, 200k rows, :8080
//   aqp_serve --gen flights --rows 500000 --port 9000
//   aqp_serve --csv data.csv --port 0    # 0 = kernel-assigned (printed)
//   aqp_serve --segment-rows 50000 --no-coalesce --window-us 50
//
// Durable serving (crash-safe appends):
//
//   aqp_serve --dir /var/lib/aqp         # recover if state exists,
//                                        # else create fresh durable state
//   aqp_serve --dir d --fsync interval --checkpoint-ms 5000
//
// Overload / deadline knobs:
//
//   aqp_serve --max-inflight 64 --max-inflight-appends 4 --deadline-ms 500
//   aqp_serve --idle-ms 10000            # reap idle keep-alive peers
//
// Endpoints (JSON; see src/serve/service.h):
//   POST /query   {"sql":"SELECT AVG(x) FROM t WHERE y > 1;"}
//   POST /batch   {"sqls":["...", "..."]}
//   POST /append  CSV body with header row (sealed as fresh segments)
//   GET  /stats   serving counters (epoch, WAL, shedding, cache, ...)
//   GET  /healthz lifecycle + integrity (200 ok / 503 starting|draining)
//
// Prints "serving on port <P>" once ready (the CI smoke test greps it),
// then blocks until SIGINT/SIGTERM or EOF on stdin. SIGTERM/SIGINT drain
// gracefully: stop accepting, finish in-flight requests, take a final
// checkpoint (durable mode), then exit.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>

#include "api/db.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/wal.h"

using namespace pairwisehist;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  std::string gen = "power";
  std::string csv;
  size_t rows = 200000;
  size_t segment_rows = 0;
  long port = 8080;
  uint64_t seed = 42;
  ServingOptions serving_options;
  ServiceLimits limits;
  HttpServerOptions server_options;
  bool has_limits = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--gen") {
      gen = next();
    } else if (arg == "--csv") {
      csv = next();
    } else if (arg == "--rows") {
      rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--segment-rows") {
      segment_rows = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--port") {
      port = std::strtol(next(), nullptr, 10);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--no-coalesce") {
      serving_options.coalesce = false;
    } else if (arg == "--window-us") {
      serving_options.coalesce_window_us =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--dir") {
      serving_options.durability.dir = next();
    } else if (arg == "--fsync") {
      auto policy = ParseFsyncPolicy(next());
      if (!policy.ok()) {
        std::fprintf(stderr, "--fsync wants always|interval|never\n");
        return 2;
      }
      serving_options.durability.fsync = policy.value();
    } else if (arg == "--checkpoint-ms") {
      serving_options.durability.checkpoint_interval_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--max-inflight") {
      limits.max_inflight =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
      has_limits = true;
    } else if (arg == "--max-inflight-appends") {
      limits.max_inflight_appends =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
      has_limits = true;
    } else if (arg == "--deadline-ms") {
      limits.default_deadline_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
      has_limits = true;
    } else if (arg == "--idle-ms") {
      server_options.idle_timeout_ms =
          static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else {
      std::fprintf(
          stderr,
          "usage: aqp_serve [--gen name | --csv path] [--rows N]\n"
          "                 [--segment-rows N] [--port P] [--seed S]\n"
          "                 [--no-coalesce] [--window-us U]\n"
          "                 [--dir path] [--fsync always|interval|never]\n"
          "                 [--checkpoint-ms MS]\n"
          "                 [--max-inflight N] [--max-inflight-appends N]\n"
          "                 [--deadline-ms MS] [--idle-ms MS]\n");
      return 2;
    }
  }
  if (port < 0 || port > 65535) {
    std::fprintf(stderr, "bad port %ld\n", port);
    return 2;
  }

  // Durable mode: recover existing state when the directory has a
  // checkpoint, otherwise create fresh durable state from the dataset.
  std::unique_ptr<ServingDb> serving;
  if (!serving_options.durability.dir.empty()) {
    if (serving_options.durability.checkpoint_interval_ms == 0) {
      serving_options.durability.checkpoint_interval_ms = 30000;
    }
    auto recovered = ServingDb::Recover(serving_options);
    if (recovered.ok()) {
      serving = std::move(recovered).value();
      const RecoveryInfo& info = serving->recovery_info();
      std::printf(
          "recovered '%s': checkpoint epoch %llu, %llu WAL records "
          "(%llu rows)%s -> epoch %llu\n",
          serving_options.durability.dir.c_str(),
          (unsigned long long)info.checkpoint_epoch,
          (unsigned long long)info.wal_records_applied,
          (unsigned long long)info.rows_recovered,
          info.tail_truncated ? ", torn tail truncated" : "",
          (unsigned long long)serving->Stats().epoch);
    } else if (recovered.status().code() == StatusCode::kNotFound) {
      DbOptions options;
      options.target_segment_rows = segment_rows;
      auto opened = csv.empty() ? Db::FromGenerator(gen, rows, seed, options)
                                : Db::FromCsv(csv, options);
      if (!opened.ok()) {
        std::fprintf(stderr, "cannot open dataset: %s\n",
                     opened.status().ToString().c_str());
        return 1;
      }
      auto created =
          ServingDb::CreateDurable(std::move(opened).value(), serving_options);
      if (!created.ok()) {
        std::fprintf(stderr, "cannot create durable state: %s\n",
                     created.status().ToString().c_str());
        return 1;
      }
      serving = std::move(created).value();
      std::printf("created durable state in '%s' (fsync=%s)\n",
                  serving_options.durability.dir.c_str(),
                  FsyncPolicyName(serving_options.durability.fsync));
    } else {
      std::fprintf(stderr, "recovery failed: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
  } else {
    DbOptions options;
    options.target_segment_rows = segment_rows;
    auto opened = csv.empty() ? Db::FromGenerator(gen, rows, seed, options)
                              : Db::FromCsv(csv, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "cannot open dataset: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded '%s': %llu rows, %zu segments, %zu synopsis bytes\n",
                opened->name().c_str(),
                (unsigned long long)opened->total_rows(),
                opened->num_segments(), opened->StorageBytes());
    serving =
        std::make_unique<ServingDb>(std::move(opened).value(), serving_options);
  }

  std::unique_ptr<ServiceGate> gate;
  if (has_limits) gate = std::make_unique<ServiceGate>(limits);
  ServiceState state;
  HttpServer server(MakeServingHandler(serving.get(), gate.get(), &state),
                    MakeServingBatchHandler(serving.get(), gate.get(), &state),
                    server_options);
  state.Set(ServiceState::Phase::kOk);
  Status st = server.Start(static_cast<uint16_t>(port));
  if (!st.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serving on port %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  // Park until a signal or stdin EOF (whichever the supervisor uses).
  while (!g_stop) {
    const int c = std::getchar();
    if (c == EOF) {
      if (g_stop) break;
      // Detached stdin (e.g. backgrounded under CI): fall back to a nap so
      // the loop doesn't spin; signals still break us out.
      struct timespec ts = {0, 200 * 1000 * 1000};
      nanosleep(&ts, nullptr);
      std::clearerr(stdin);
    }
    if (c == 'q') break;
  }

  // Graceful shutdown: flip /healthz to 503 so load balancers route
  // away, finish in-flight requests, then (durable mode) take a final
  // checkpoint so restart needs no WAL replay.
  state.Set(ServiceState::Phase::kDraining);
  server.Drain(/*grace_ms=*/5000);
  if (serving->durable()) {
    Status cp = serving->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "final checkpoint failed: %s\n",
                   cp.ToString().c_str());
    }
  }
  const ServingStats stats = serving->Stats();
  std::printf(
      "stopped after %llu queries, %llu appends (epoch %llu)%s\n",
      (unsigned long long)stats.queries, (unsigned long long)stats.appends,
      (unsigned long long)stats.epoch,
      serving->durable() ? ", state checkpointed" : "");
  if (gate != nullptr) {
    const ServiceGate::Stats gs = gate->stats();
    std::printf("gate: %llu admitted, %llu shed reads, %llu shed appends, "
                "%llu timeouts\n",
                (unsigned long long)gs.admitted,
                (unsigned long long)gs.shed_reads,
                (unsigned long long)gs.shed_appends,
                (unsigned long long)gs.timeouts);
  }
  return 0;
}
