// Batch execution validation (query/batch_exec.h): executing many
// statements as one batch must produce results BIT-IDENTICAL to looping
// per-query PreparedQuery::ExecuteInto — same doubles, not approximately
// equal — across every compiled kernel tier, across exec_threads on a
// segmented Db, and across Db::Append (lazy plan extension). Plus the
// duplicate-statement dedup, the reference-path batch, and API edges.
// Batch scratch is pooled (common/object_pool.h), so repeated ExecuteInto
// calls must also be allocation-free in steady state — asserted below
// with the same counting allocator as fastpath_test.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/rng.h"
#include "datagen/datasets.h"
#include "query/batch_exec.h"
#include "query/sql_parser.h"

// Global allocation counter (this binary only); disabled under ASan, which
// pairs its own operator new/delete interceptors (see fastpath_test.cc).
#if defined(__SANITIZE_ADDRESS__)
#define PH_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PH_COUNTING_ALLOCATOR 0
#endif
#endif
#ifndef PH_COUNTING_ALLOCATOR
#define PH_COUNTING_ALLOCATOR 1
#endif

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

#if PH_COUNTING_ALLOCATOR
void* operator new(size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#endif  // PH_COUNTING_ALLOCATOR

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Random query generation (the fastpath_test harness shapes).

struct ColumnStats {
  std::string name;
  DataType type = DataType::kFloat64;
  double min = 0, max = 0;
  std::vector<std::string> dictionary;
};

std::vector<ColumnStats> CollectStats(const Table& t) {
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    ColumnStats s;
    s.name = col.name();
    s.type = col.type();
    bool any = false;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      if (!any || v < s.min) s.min = v;
      if (!any || v > s.max) s.max = v;
      any = true;
    }
    if (col.type() == DataType::kCategorical) s.dictionary = col.dictionary();
    stats.push_back(std::move(s));
  }
  return stats;
}

Condition RandCondition(Rng* rng, const std::vector<ColumnStats>& stats) {
  const ColumnStats& s = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  Condition c;
  c.column = s.name;
  c.op = kOps[rng->UniformInt(6)];
  if (s.type == DataType::kCategorical && !s.dictionary.empty() &&
      rng->Uniform(0, 1) < 0.7) {
    c.is_string = true;
    c.text_value = s.dictionary[static_cast<size_t>(
        rng->UniformInt(static_cast<uint64_t>(s.dictionary.size())))];
    c.op = rng->Uniform(0, 1) < 0.5 ? CmpOp::kEq : CmpOp::kNe;
    return c;
  }
  double span = s.max - s.min;
  double v = s.min + rng->Uniform(-0.1, 1.1) * (span > 0 ? span : 1.0);
  if (rng->Uniform(0, 1) < 0.5) v = std::floor(v);
  c.value = v;
  return c;
}

PredicateNode RandTree(Rng* rng, const std::vector<ColumnStats>& stats,
                       int depth) {
  if (depth <= 0 || rng->Uniform(0, 1) < 0.45) {
    PredicateNode n;
    n.type = PredicateNode::Type::kCondition;
    n.condition = RandCondition(rng, stats);
    return n;
  }
  PredicateNode n;
  n.type = rng->Uniform(0, 1) < 0.5 ? PredicateNode::Type::kAnd
                                    : PredicateNode::Type::kOr;
  size_t kids = 2 + rng->UniformInt(2);
  for (size_t i = 0; i < kids; ++i) {
    n.children.push_back(RandTree(rng, stats, depth - 1));
  }
  return n;
}

Query RandQuery(Rng* rng, const std::vector<ColumnStats>& stats,
                const std::string& table_name) {
  static const AggFunc kFuncs[] = {AggFunc::kCount,  AggFunc::kSum,
                                   AggFunc::kAvg,    AggFunc::kVar,
                                   AggFunc::kMin,    AggFunc::kMax,
                                   AggFunc::kMedian};
  Query q;
  q.table = table_name;
  q.func = kFuncs[rng->UniformInt(7)];
  const ColumnStats& agg = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  q.agg_column = agg.name;
  if (q.func == AggFunc::kCount && rng->Uniform(0, 1) < 0.2) {
    q.count_star = true;
    q.agg_column.clear();
  }
  if (rng->Uniform(0, 1) < 0.9) q.where = RandTree(rng, stats, 2);
  if (rng->Uniform(0, 1) < 0.12) {
    for (const ColumnStats& s : stats) {
      if (s.type == DataType::kCategorical) {
        q.group_by = s.name;
        break;
      }
    }
  }
  return q;
}

// A dashboard-style block sharing one grid and predicate: every aggregate
// over the same column under the same WHERE. These are the shapes the
// batch path amortizes hardest, so make sure the randomized mix always
// contains grid-sharing groups, not just by chance.
std::vector<Query> DashboardBlock(Rng* rng,
                                  const std::vector<ColumnStats>& stats,
                                  const std::string& table_name) {
  static const AggFunc kFuncs[] = {AggFunc::kCount,  AggFunc::kSum,
                                   AggFunc::kAvg,    AggFunc::kVar,
                                   AggFunc::kMin,    AggFunc::kMax,
                                   AggFunc::kMedian};
  PredicateNode where = RandTree(rng, stats, 1);
  const ColumnStats& agg = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  std::vector<Query> block;
  for (AggFunc f : kFuncs) {
    Query q;
    q.table = table_name;
    q.func = f;
    q.agg_column = agg.name;
    q.where = where;
    block.push_back(std::move(q));
  }
  return block;
}

// ---------------------------------------------------------------------------
// Identical-result assertion (exact doubles, NaN-aware).

bool SameDouble(double x, double y) {
  return (std::isnan(x) && std::isnan(y)) || x == y;
}

void ExpectIdentical(const QueryResult& want, const QueryResult& got,
                     const std::string& ctx) {
  ASSERT_EQ(want.groups.size(), got.groups.size()) << ctx;
  for (size_t g = 0; g < want.groups.size(); ++g) {
    const auto& a = want.groups[g];
    const auto& b = got.groups[g];
    EXPECT_EQ(a.label, b.label) << ctx;
    EXPECT_EQ(a.agg.empty_selection, b.agg.empty_selection) << ctx;
    EXPECT_TRUE(SameDouble(a.agg.estimate, b.agg.estimate))
        << ctx << "  est loop=" << a.agg.estimate
        << " batch=" << b.agg.estimate;
    EXPECT_TRUE(SameDouble(a.agg.lower, b.agg.lower))
        << ctx << "  lower loop=" << a.agg.lower << " batch=" << b.agg.lower;
    EXPECT_TRUE(SameDouble(a.agg.upper, b.agg.upper))
        << ctx << "  upper loop=" << a.agg.upper << " batch=" << b.agg.upper;
  }
}

// Generates `n_random` random queries (plus dashboard blocks), keeps the
// preparable ones, and asserts batch execution — in mixed-size chunks,
// through both PrepareBatch and the prepared-span ExecuteBatch — matches
// the per-query loop bitwise. `*checked` reports how many were compared.
void RunBatchEquivalence(const Db& db, const Table& table, uint64_t seed,
                         size_t n_random, size_t* checked) {
  *checked = 0;
  std::vector<ColumnStats> stats = CollectStats(table);
  Rng rng(seed);

  std::vector<Query> kept;
  std::vector<PreparedQuery> prepared;
  std::vector<QueryResult> expected;
  auto consider = [&](const Query& q) {
    auto pq = db.Prepare(q);
    if (!pq.ok()) return;
    QueryResult r;
    ASSERT_TRUE(pq->ExecuteInto(&r).ok()) << q.ToSql();
    kept.push_back(q);
    prepared.push_back(std::move(pq).value());
    expected.push_back(std::move(r));
  };
  for (size_t i = 0; i < n_random; ++i) {
    if (i % 10 == 0) {
      for (const Query& q : DashboardBlock(&rng, stats, table.name())) {
        consider(q);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    consider(RandQuery(&rng, stats, table.name()));
    if (::testing::Test::HasFatalFailure()) return;
  }
  EXPECT_GT(kept.size(), n_random / 2);

  // Mixed-size chunks over the whole workload, via PrepareBatch ...
  const size_t kChunks[] = {1, 3, 8, 17, 32};
  size_t off = 0, c = 0;
  while (off < kept.size()) {
    size_t len = std::min(kChunks[c++ % 5], kept.size() - off);
    std::vector<Query> chunk(kept.begin() + off, kept.begin() + off + len);
    auto batch = db.PrepareBatch(std::move(chunk));
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    std::vector<QueryResult> got;
    ASSERT_TRUE(batch->ExecuteInto(&got).ok());
    ASSERT_EQ(got.size(), len);
    for (size_t i = 0; i < len; ++i) {
      ExpectIdentical(expected[off + i], got[i], kept[off + i].ToSql());
    }
    // ... and via the prepared-span ExecuteBatch.
    std::vector<QueryResult> got2;
    ASSERT_TRUE(db.ExecuteBatch(prepared.data() + off, len, &got2).ok());
    for (size_t i = 0; i < len; ++i) {
      ExpectIdentical(expected[off + i], got2[i], kept[off + i].ToSql());
    }
    off += len;
  }
  *checked = kept.size();
}

// ---------------------------------------------------------------------------
// Equivalence across kernel tiers (single segment).

TEST(BatchEquivalence, SingleSegmentScalarTier) {
  auto t = MakeDataset("power", 40000, 5);
  ASSERT_TRUE(t.ok());
  DbOptions opt;
  opt.synopsis.sample_size = 10000;  // Eq. 29 widening active
  opt.kernels = KernelMode::kScalar;
  auto db = Db::FromTable(*t, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  size_t checked = 0;
  RunBatchEquivalence(db.value(), t.value(), 101, 160, &checked);
  EXPECT_GE(checked, 120u);
}

TEST(BatchEquivalence, SingleSegmentWidestTier) {
  auto t = MakeDataset("power", 40000, 5);
  ASSERT_TRUE(t.ok());
  DbOptions opt;
  opt.synopsis.sample_size = 10000;
  opt.kernels = KernelMode::kWidest;
  auto db = Db::FromTable(*t, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  size_t checked = 0;
  RunBatchEquivalence(db.value(), t.value(), 160, 160, &checked);
  EXPECT_GE(checked, 120u);
}

TEST(BatchEquivalence, TaxisWithNullsFullSample) {
  auto t = MakeDataset("taxis", 30000, 11);
  ASSERT_TRUE(t.ok());
  DbOptions opt;
  opt.synopsis.sample_size = 0;  // rho = 1: no widening
  auto db = Db::FromTable(*t, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  size_t checked = 0;
  RunBatchEquivalence(db.value(), t.value(), 7, 120, &checked);
  EXPECT_GE(checked, 80u);
}

// ---------------------------------------------------------------------------
// Equivalence across exec_threads (multi-segment fan-out + serial merge).

TEST(BatchEquivalence, MultiSegmentExecThreads) {
  auto t = MakeDataset("power", 40000, 9);
  ASSERT_TRUE(t.ok());
  for (unsigned threads : {1u, 8u}) {
    SCOPED_TRACE("exec_threads=" + std::to_string(threads));
    DbOptions opt;
    opt.synopsis.sample_size = 6000;
    opt.target_segment_rows = 6000;  // 7 segments
    opt.exec_threads = threads;
    auto db = Db::FromTable(*t, opt);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_GT(db->num_segments(), 1u);
    size_t checked = 0;
  RunBatchEquivalence(db.value(), t.value(), 201, 100, &checked);
    EXPECT_GE(checked, 70u);
  }
}

// ---------------------------------------------------------------------------
// Append: prepared batches stay valid, extend lazily onto fresh segments,
// and remain bit-identical to the per-query loop afterwards.

TEST(BatchAppend, LazyExtensionStaysIdentical) {
  auto t = MakeDataset("power", 30000, 21);
  ASSERT_TRUE(t.ok());
  DbOptions opt;
  opt.synopsis.sample_size = 8000;
  opt.target_segment_rows = 10000;
  auto db = Db::FromTable(*t, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  std::vector<ColumnStats> stats = CollectStats(t.value());
  Rng rng(31);
  std::vector<Query> kept;
  std::vector<PreparedQuery> prepared;
  for (size_t i = 0; i < 80 && kept.size() < 60; ++i) {
    Query q = RandQuery(&rng, stats, t->name());
    auto pq = db->Prepare(q);
    if (!pq.ok()) continue;
    kept.push_back(q);
    prepared.push_back(std::move(pq).value());
  }
  ASSERT_GE(kept.size(), 30u);
  auto batch = db->PrepareBatch(kept);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  // Before the append.
  std::vector<QueryResult> got;
  ASSERT_TRUE(batch->ExecuteInto(&got).ok());
  for (size_t i = 0; i < kept.size(); ++i) {
    QueryResult want;
    ASSERT_TRUE(prepared[i].ExecuteInto(&want).ok());
    ExpectIdentical(want, got[i], kept[i].ToSql());
  }

  // Seal fresh segments; both the batch and the per-query plans must
  // extend lazily and still agree bitwise (and see the new rows).
  auto fresh = MakeDataset("power", 12000, 77);
  ASSERT_TRUE(fresh.ok());
  const size_t before_segments = db->num_segments();
  ASSERT_TRUE(db->Append(fresh.value()).ok());
  ASSERT_GT(db->num_segments(), before_segments);

  std::vector<QueryResult> after;
  ASSERT_TRUE(batch->ExecuteInto(&after).ok());
  for (size_t i = 0; i < kept.size(); ++i) {
    QueryResult want;
    ASSERT_TRUE(prepared[i].ExecuteInto(&want).ok());
    ExpectIdentical(want, after[i], "post-append " + kept[i].ToSql());
  }

  // Sanity: the appended rows are actually visible through the batch.
  auto count = db->PrepareBatch(
      std::vector<std::string>{"SELECT COUNT(*) FROM power;"});
  ASSERT_TRUE(count.ok());
  auto counted = count->Execute();
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->at(0).Scalar().estimate,
            static_cast<double>(t->NumRows() + fresh->NumRows()));
}

// ---------------------------------------------------------------------------
// Duplicate-statement dedup.

TEST(BatchDedup, DuplicateStatementsShareOnePlan) {
  auto db = Db::FromGenerator("power", 20000, 3);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::string a = "SELECT AVG(voltage) FROM power WHERE hour > 18;";
  const std::string b = "SELECT COUNT(voltage) FROM power WHERE hour > 18;";
  auto batch =
      db->PrepareBatch(std::vector<std::string>{a, b, a, a, b});
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->size(), 5u);
  EXPECT_EQ(batch->NumDistinctPlans(), 2u);

  auto results = batch->Execute();
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 5u);
  ExpectIdentical(results->at(0), results->at(2), a);
  ExpectIdentical(results->at(0), results->at(3), a);
  ExpectIdentical(results->at(1), results->at(4), b);
  auto single = db->ExecuteSql(a);
  ASSERT_TRUE(single.ok());
  ExpectIdentical(single.value(), results->at(0), a);
}

// ---------------------------------------------------------------------------
// Reference path (use_fast_path = false) batches identically too.

TEST(BatchRefPath, ReferenceEngineBatchesIdentically) {
  auto t = MakeDataset("power", 25000, 13);
  ASSERT_TRUE(t.ok());
  DbOptions opt;
  opt.synopsis.sample_size = 6000;
  opt.engine.use_fast_path = false;
  auto db = Db::FromTable(*t, opt);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  size_t checked = 0;
  RunBatchEquivalence(db.value(), t.value(), 17, 60, &checked);
  EXPECT_GE(checked, 40u);
}

// ---------------------------------------------------------------------------
// API edges.

TEST(BatchApi, EmptyBatchAndBackendGating) {
  auto db = Db::FromGenerator("power", 15000, 7);
  ASSERT_TRUE(db.ok()) << db.status().ToString();

  auto empty = db->PrepareBatch(std::vector<std::string>{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->size(), 0u);
  std::vector<QueryResult> results;
  EXPECT_TRUE(empty->ExecuteInto(&results).ok());
  EXPECT_TRUE(results.empty());

  // Batching is a built-in-engine feature: gated while a backend is
  // active, restored by ResetBackend.
  auto backend = db->MakeBaselineBackend("sampling", 2000);
  ASSERT_TRUE(backend.ok());
  ASSERT_TRUE(db->SetBackend(std::move(backend).value()).ok());
  auto gated = db->PrepareBatch(
      std::vector<std::string>{"SELECT COUNT(*) FROM power;"});
  EXPECT_FALSE(gated.ok());
  db->ResetBackend();
  auto restored = db->PrepareBatch(
      std::vector<std::string>{"SELECT COUNT(*) FROM power;"});
  EXPECT_TRUE(restored.ok());
}

// ---------------------------------------------------------------------------
// Steady state: with pooled batch scratch, repeated ExecuteInto over a
// warm PreparedBatch of distinct scalar statements allocates nothing.

TEST(BatchSteadyState, RepeatedExecuteIntoIsAllocationFree) {
#if !PH_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under AddressSanitizer";
#else
  auto db = Db::FromGenerator("power", 20000, 7);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::vector<std::string> sqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
      "SELECT AVG(voltage) FROM power WHERE hour < 6;",
      "SELECT AVG(global_intensity) FROM power WHERE day_of_week < 6;",
  };
  auto batch = db->PrepareBatch(sqls);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->NumDistinctPlans(), sqls.size());

  std::vector<QueryResult> results;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batch->ExecuteInto(&results).ok());
  }
  const std::vector<QueryResult> warm = results;

  const size_t before = g_alloc_count.load(std::memory_order_relaxed);
  int failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (!batch->ExecuteInto(&results).ok()) ++failures;
  }
  const size_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(after - before, 0u)
      << "batch ExecuteInto allocated in steady state";
  ASSERT_EQ(results.size(), warm.size());
  for (size_t q = 0; q < results.size(); ++q) {
    ExpectIdentical(warm[q], results[q], sqls[q]);
  }
#endif
}

}  // namespace
}  // namespace pairwisehist
