// Tests for the synthetic dataset generators and the IDEBench-style scaler.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "datagen/idebench_scaler.h"

namespace pairwisehist {
namespace {

// Parameterized over all 11 datasets: schema and content invariants.
class DatasetInvariants : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(DatasetInvariants, ColumnCountMatchesTable4) {
  const DatasetSpec& spec = GetParam();
  auto t = MakeDataset(spec.name, 500, 1);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(static_cast<int>(t->NumColumns()), spec.columns) << spec.name;
}

TEST_P(DatasetInvariants, RowCountHonoured) {
  auto t = MakeDataset(GetParam().name, 321, 1);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->NumRows(), 321u);
}

TEST_P(DatasetInvariants, ValidatesAndIsDeterministic) {
  auto t1 = MakeDataset(GetParam().name, 400, 99);
  auto t2 = MakeDataset(GetParam().name, 400, 99);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(t1->Validate().ok());
  for (size_t c = 0; c < t1->NumColumns(); ++c) {
    for (size_t r = 0; r < t1->NumRows(); r += 37) {
      EXPECT_EQ(t1->column(c).IsNull(r), t2->column(c).IsNull(r));
      if (!t1->column(c).IsNull(r)) {
        EXPECT_DOUBLE_EQ(t1->column(c).Value(r), t2->column(c).Value(r))
            << GetParam().name << " col " << c << " row " << r;
      }
    }
  }
}

TEST_P(DatasetInvariants, DifferentSeedsDiffer) {
  auto t1 = MakeDataset(GetParam().name, 300, 1);
  auto t2 = MakeDataset(GetParam().name, 300, 2);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  int diffs = 0;
  for (size_t c = 0; c < t1->NumColumns(); ++c) {
    for (size_t r = 0; r < t1->NumRows(); r += 11) {
      bool n1 = t1->column(c).IsNull(r), n2 = t2->column(c).IsNull(r);
      if (n1 != n2 ||
          (!n1 && t1->column(c).Value(r) != t2->column(c).Value(r))) {
        ++diffs;
      }
    }
  }
  EXPECT_GT(diffs, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetInvariants, ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

TEST(DatagenTest, ElevenDatasets) { EXPECT_EQ(AllDatasets().size(), 11u); }

TEST(DatagenTest, UnknownDatasetFails) {
  EXPECT_FALSE(MakeDataset("nope", 10, 1).ok());
}

TEST(DatagenTest, AquaHasAsynchronousNulls) {
  Table t = MakeAqua(2000, 3);
  // Every sensor column must have substantial nulls (each row reports one
  // pond of four).
  size_t null_cols = 0;
  for (size_t c = 1; c < t.NumColumns(); ++c) {
    if (t.column(c).null_count() > t.NumRows() / 2) ++null_cols;
  }
  EXPECT_EQ(null_cols, 12u);
}

TEST(DatagenTest, FlightsCancellationNullPattern) {
  Table t = MakeFlights(20000, 3);
  auto cancelled = t.FindColumn("cancelled");
  auto dep_delay = t.FindColumn("departure_delay");
  ASSERT_TRUE(cancelled.ok());
  ASSERT_TRUE(dep_delay.ok());
  size_t n_cancelled = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if (cancelled.value()->Value(r) == 1.0) {
      ++n_cancelled;
      EXPECT_TRUE(dep_delay.value()->IsNull(r)) << r;
    }
  }
  // About 1.6% cancellation rate.
  EXPECT_GT(n_cancelled, 100u);
  EXPECT_LT(n_cancelled, 1200u);
}

TEST(DatagenTest, FlightsArrivalCorrelatesWithDeparture) {
  Table t = MakeFlights(20000, 3);
  auto dep = t.FindColumn("departure_delay");
  auto arr = t.FindColumn("arrival_delay");
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  size_t n = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    if (dep.value()->IsNull(r) || arr.value()->IsNull(r)) continue;
    double x = dep.value()->Value(r), y = arr.value()->Value(r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    ++n;
  }
  double corr = (sxy - sx * sy / n) /
                std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n));
  EXPECT_GT(corr, 0.7);
}

TEST(DatagenTest, TaxiFareCorrelatesWithMiles) {
  Table t = MakeTaxis(10000, 5);
  auto miles = t.FindColumn("trip_miles");
  auto fare = t.FindColumn("fare");
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  size_t n = t.NumRows();
  for (size_t r = 0; r < n; ++r) {
    double x = miles.value()->Value(r), y = fare.value()->Value(r);
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  double corr = (sxy - sx * sy / n) /
                std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n));
  EXPECT_GT(corr, 0.9);
}

TEST(DatagenTest, FurnaceLoadIsBimodal) {
  Table t = MakeFurnace(10000, 5);
  auto p = t.FindColumn("active_power");
  size_t low = 0, high = 0, mid = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    double v = p.value()->Value(r);
    if (v < 60) ++low;
    else if (v > 250) ++high;
    else ++mid;
  }
  // Mass concentrates at the off and on levels, not in between.
  EXPECT_GT(low, mid);
  EXPECT_GT(high, mid);
}

TEST(DatagenTest, CategoricalFrequenciesAreSkewed) {
  Table t = MakeFlights(20000, 3);
  auto airline = t.FindColumn("airline");
  std::vector<size_t> counts(airline.value()->dictionary().size(), 0);
  for (size_t r = 0; r < t.NumRows(); ++r) {
    ++counts[static_cast<size_t>(airline.value()->Value(r))];
  }
  auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*mx, *mn * 3) << "airline frequencies should be skewed";
}

TEST(DatagenTest, TimestampsAreMonotonicWherePresent) {
  for (const char* name : {"power", "gas", "temp"}) {
    auto t = MakeDataset(name, 1000, 4);
    ASSERT_TRUE(t.ok());
    const Column& ts = t->column(0);
    for (size_t r = 1; r < t->NumRows(); ++r) {
      ASSERT_LE(ts.Value(r - 1), ts.Value(r)) << name << " row " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// IDEBench-style scaler

TEST(IdebenchScalerTest, GeneratesRequestedRows) {
  Table src = MakePower(5000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok()) << scaler.status().ToString();
  Table big = scaler->Generate(12000, 1);
  EXPECT_EQ(big.NumRows(), 12000u);
  EXPECT_EQ(big.NumColumns(), src.NumColumns());
}

TEST(IdebenchScalerTest, EmptySourceFails) {
  Table empty("e");
  EXPECT_FALSE(IdebenchScaler::Fit(empty).ok());
}

TEST(IdebenchScalerTest, PreservesMarginalMoments) {
  Table src = MakePower(8000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table big = scaler->Generate(20000, 2);
  auto gap = src.FindColumn("global_active_power");
  auto gap2 = big.FindColumn("global_active_power");
  double m1 = 0, m2 = 0;
  for (size_t r = 0; r < src.NumRows(); ++r) m1 += gap.value()->Value(r);
  m1 /= src.NumRows();
  for (size_t r = 0; r < big.NumRows(); ++r) m2 += gap2.value()->Value(r);
  m2 /= big.NumRows();
  EXPECT_NEAR(m2, m1, std::fabs(m1) * 0.1);
}

TEST(IdebenchScalerTest, PreservesValueRange) {
  Table src = MakePower(5000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table big = scaler->Generate(10000, 3);
  for (size_t c = 0; c < src.NumColumns(); ++c) {
    if (src.column(c).type() == DataType::kCategorical) continue;
    EXPECT_GE(big.column(c).Min(), src.column(c).Min() - 1e-6) << c;
    EXPECT_LE(big.column(c).Max(), src.column(c).Max() + 1e-6) << c;
  }
}

TEST(IdebenchScalerTest, PreservesCorrelationSign) {
  Table src = MakeTaxis(6000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table big = scaler->Generate(12000, 4);
  auto corr = [](const Table& t, const std::string& a,
                 const std::string& b) {
    const Column& x = *t.FindColumn(a).value();
    const Column& y = *t.FindColumn(b).value();
    double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
    size_t n = 0;
    for (size_t r = 0; r < t.NumRows(); ++r) {
      if (x.IsNull(r) || y.IsNull(r)) continue;
      sx += x.Value(r);
      sy += y.Value(r);
      sxx += x.Value(r) * x.Value(r);
      syy += y.Value(r) * y.Value(r);
      sxy += x.Value(r) * y.Value(r);
      ++n;
    }
    return (sxy - sx * sy / n) /
           std::sqrt((sxx - sx * sx / n) * (syy - sy * sy / n));
  };
  double src_corr = corr(src, "trip_miles", "fare");
  double big_corr = corr(big, "trip_miles", "fare");
  EXPECT_GT(src_corr, 0.8);
  EXPECT_GT(big_corr, 0.5) << "scaled data should keep strong correlation";
}

TEST(IdebenchScalerTest, PreservesNullFraction) {
  Table src = MakeAqua(5000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table big = scaler->Generate(10000, 5);
  for (size_t c = 1; c < src.NumColumns(); ++c) {
    double f1 = static_cast<double>(src.column(c).null_count()) /
                src.NumRows();
    double f2 = static_cast<double>(big.column(c).null_count()) /
                big.NumRows();
    EXPECT_NEAR(f1, f2, 0.05) << c;
  }
}

TEST(IdebenchScalerTest, CategoricalMarginalPreserved) {
  Table src = MakeTaxis(6000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table big = scaler->Generate(12000, 6);
  const Column& p1 = *src.FindColumn("payment_type").value();
  const Column& p2 = *big.FindColumn("payment_type").value();
  std::vector<double> f1(5, 0), f2(5, 0);
  for (size_t r = 0; r < src.NumRows(); ++r) {
    ++f1[static_cast<size_t>(p1.Value(r))];
  }
  for (size_t r = 0; r < big.NumRows(); ++r) {
    ++f2[static_cast<size_t>(p2.Value(r))];
  }
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(f1[i] / src.NumRows(), f2[i] / big.NumRows(), 0.05) << i;
  }
}

TEST(IdebenchScalerTest, DeterministicGivenSeed) {
  Table src = MakePower(3000, 11);
  auto scaler = IdebenchScaler::Fit(src);
  ASSERT_TRUE(scaler.ok());
  Table a = scaler->Generate(500, 9);
  Table b = scaler->Generate(500, 9);
  for (size_t r = 0; r < 500; r += 13) {
    EXPECT_DOUBLE_EQ(a.column(1).Value(r), b.column(1).Value(r));
  }
}

}  // namespace
}  // namespace pairwisehist
