// Cross-dataset property sweeps: invariants that must hold on every
// dataset and across randomized workloads (parameterized gtest, TEST_P).
#include <cmath>

#include <gtest/gtest.h>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "query/engine.h"
#include "query/exact.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Synopsis structural invariants on every dataset.

class SynopsisProperties : public ::testing::TestWithParam<DatasetSpec> {
 protected:
  static constexpr size_t kRows = 4000;
};

TEST_P(SynopsisProperties, BuildSerializeRoundTrip) {
  auto t = MakeDataset(GetParam().name, kRows, 80);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 2000;
  auto ph = PairwiseHist::BuildFromTable(*t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  auto back = PairwiseHist::Deserialize(ph->Serialize());
  ASSERT_TRUE(back.ok()) << GetParam().name << ": "
                         << back.status().ToString();
  EXPECT_EQ(back->Serialize(), ph->Serialize()) << GetParam().name;
}

TEST_P(SynopsisProperties, HistogramInvariants) {
  auto t = MakeDataset(GetParam().name, kRows, 81);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(*t, cfg);
  ASSERT_TRUE(ph.ok());
  for (size_t c = 0; c < ph->num_columns(); ++c) {
    const HistogramDim& h = ph->hist1d(c);
    ASSERT_GE(h.NumBins(), 1u);
    // Total count equals the column's non-null count.
    EXPECT_EQ(h.TotalCount(), t->column(c).non_null_count())
        << GetParam().name << " col " << c;
    for (size_t b = 0; b < h.NumBins(); ++b) {
      ASSERT_LT(h.edges[b], h.edges[b + 1]);
      if (h.counts[b] > 0) {
        ASSERT_LE(h.v_min[b], h.v_max[b]);
        ASSERT_GE(h.unique[b], 1u);
        ASSERT_LE(h.unique[b], h.counts[b]);
      }
    }
  }
}

TEST_P(SynopsisProperties, PairMarginalsMatchCells) {
  auto t = MakeDataset(GetParam().name, kRows, 82);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 2000;
  auto ph = PairwiseHist::BuildFromTable(*t, cfg);
  ASSERT_TRUE(ph.ok());
  for (size_t p = 0; p < ph->num_pairs(); ++p) {
    const PairHistogram& pair = ph->pair_at(p);
    size_t ki = pair.dim_i.NumBins(), kj = pair.dim_j.NumBins();
    for (size_t ti = 0; ti < ki; ++ti) {
      uint64_t sum = 0;
      for (size_t tj = 0; tj < kj; ++tj) sum += pair.CellCount(ti, tj);
      ASSERT_EQ(sum, pair.dim_i.counts[ti])
          << GetParam().name << " pair " << p << " row " << ti;
    }
  }
}

TEST_P(SynopsisProperties, GdSeededBuildWorksEverywhere) {
  auto t = MakeDataset(GetParam().name, kRows, 83);
  ASSERT_TRUE(t.ok());
  auto gd = CompressTable(*t);
  ASSERT_TRUE(gd.ok()) << GetParam().name;
  PairwiseHistConfig cfg;
  cfg.sample_size = 2000;
  auto ph = PairwiseHist::BuildFromCompressed(*gd, cfg);
  ASSERT_TRUE(ph.ok()) << GetParam().name << ": " << ph.status().ToString();
  AqpEngine engine(&ph.value());
  // COUNT(*) must reproduce the row count exactly.
  auto r = engine.ExecuteSql("SELECT COUNT(*) FROM t;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, static_cast<double>(kRows));
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, SynopsisProperties, ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

// ---------------------------------------------------------------------------
// Randomized workload properties on representative datasets.

struct WorkloadCase {
  const char* dataset;
  uint64_t seed;
};

class WorkloadProperties : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadProperties, CountEstimatesTrackExactAndBoundsHold) {
  auto t = MakeDataset(GetParam().dataset, 12000, GetParam().seed);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;  // full-data build isolates estimator error
  auto ph = PairwiseHist::BuildFromTable(*t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());

  WorkloadConfig wcfg = InitialWorkloadConfig(GetParam().seed + 1);
  wcfg.num_queries = 30;
  wcfg.min_selectivity = 1e-3;
  auto workload = GenerateWorkload(*t, wcfg);
  ASSERT_TRUE(workload.ok());
  ASSERT_GE(workload->size(), 15u);

  std::vector<double> errors;
  size_t bounds_correct = 0, bounds_total = 0;
  for (const Query& q : *workload) {
    auto exact = ExecuteExact(*t, q);
    auto approx = engine.Execute(q);
    ASSERT_TRUE(exact.ok()) << q.ToSql();
    ASSERT_TRUE(approx.ok()) << q.ToSql() << ": "
                             << approx.status().ToString();
    const AggResult& e = exact->Scalar();
    const AggResult& a = approx->Scalar();
    if (e.empty_selection || a.empty_selection) continue;
    errors.push_back(RelativeErrorPct(e.estimate, a.estimate));
    ++bounds_total;
    if (e.estimate >= a.lower - 1e-6 * std::fabs(e.estimate) &&
        e.estimate <= a.upper + 1e-6 * std::fabs(e.estimate)) {
      ++bounds_correct;
    }
  }
  ASSERT_GE(errors.size(), 10u);
  EXPECT_LT(Median(errors), 5.0) << GetParam().dataset;
  // Bounds correctness: the paper reports 70–80% on sampled synopses;
  // full-data construction should reach at least that.
  EXPECT_GE(bounds_correct * 100, bounds_total * 60)
      << GetParam().dataset << ": " << bounds_correct << "/" << bounds_total;
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, WorkloadProperties,
    ::testing::Values(WorkloadCase{"power", 90}, WorkloadCase{"gas", 91},
                      WorkloadCase{"light", 92}, WorkloadCase{"temp", 93},
                      WorkloadCase{"build", 94}),
    [](const ::testing::TestParamInfo<WorkloadCase>& info) {
      return std::string(info.param.dataset);
    });

// ---------------------------------------------------------------------------
// Parameter-direction properties (Fig. 9's qualitative claims).

TEST(ParameterProperties, SmallerMNeverColdersAccuracy) {
  // Smaller M (deeper refinement) should not make median COUNT error
  // meaningfully worse.
  Table t = MakeFurnace(15000, 95);
  WorkloadConfig wcfg = InitialWorkloadConfig(96);
  wcfg.num_queries = 25;
  wcfg.min_selectivity = 1e-3;
  auto workload = GenerateWorkload(t, wcfg);
  ASSERT_TRUE(workload.ok());

  auto median_error = [&](uint64_t m) {
    PairwiseHistConfig cfg;
    cfg.sample_size = 0;
    cfg.min_points_override = m;
    auto ph = PairwiseHist::BuildFromTable(t, cfg);
    EXPECT_TRUE(ph.ok());
    AqpEngine engine(&ph.value());
    std::vector<double> errors;
    for (const Query& q : *workload) {
      auto exact = ExecuteExact(t, q);
      auto approx = engine.Execute(q);
      if (!exact.ok() || !approx.ok()) continue;
      if (exact->Scalar().empty_selection) continue;
      errors.push_back(RelativeErrorPct(exact->Scalar().estimate,
                                        approx->Scalar().estimate));
    }
    return Median(errors);
  };
  double err_fine = median_error(150);
  double err_coarse = median_error(7500);
  EXPECT_LE(err_fine, err_coarse * 1.5 + 0.5)
      << "fine " << err_fine << " vs coarse " << err_coarse;
}

TEST(ParameterProperties, LargerSampleImprovesOrMatchesAccuracy) {
  Table t = MakePower(30000, 97);
  WorkloadConfig wcfg = InitialWorkloadConfig(98);
  wcfg.num_queries = 25;
  wcfg.min_selectivity = 1e-2;
  auto workload = GenerateWorkload(t, wcfg);
  ASSERT_TRUE(workload.ok());

  auto median_error = [&](size_t ns) {
    PairwiseHistConfig cfg;
    cfg.sample_size = ns;
    auto ph = PairwiseHist::BuildFromTable(t, cfg);
    EXPECT_TRUE(ph.ok());
    AqpEngine engine(&ph.value());
    std::vector<double> errors;
    for (const Query& q : *workload) {
      auto exact = ExecuteExact(t, q);
      auto approx = engine.Execute(q);
      if (!exact.ok() || !approx.ok()) continue;
      if (exact->Scalar().empty_selection) continue;
      errors.push_back(RelativeErrorPct(exact->Scalar().estimate,
                                        approx->Scalar().estimate));
    }
    return Median(errors);
  };
  double err_small = median_error(1500);
  double err_large = median_error(24000);
  EXPECT_LE(err_large, err_small * 1.25 + 0.25)
      << "large " << err_large << " vs small " << err_small;
}

TEST(ParameterProperties, EngineOptionAblationsDoNotBreakQueries) {
  Table t = MakePower(10000, 99);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  for (bool pair_grid : {false, true}) {
    for (bool clip : {false, true}) {
      AqpEngineOptions opt;
      opt.use_pair_grid = pair_grid;
      opt.clip_agg_values = clip;
      AqpEngine engine(&ph.value(), opt);
      auto r = engine.ExecuteSql(
          "SELECT AVG(global_active_power) FROM power WHERE hour >= 18 AND "
          "voltage > 238;");
      ASSERT_TRUE(r.ok()) << pair_grid << clip;
      EXPECT_FALSE(std::isnan(r->Scalar().estimate));
      EXPECT_LE(r->Scalar().lower, r->Scalar().upper);
    }
  }
}

}  // namespace
}  // namespace pairwisehist
