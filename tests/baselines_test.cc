// Tests for the comparison baselines: sampling AQP, AVI histograms, the SPN
// (DeepDB-lite) and DBEst-lite.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/avi_hist.h"
#include "baselines/dbest.h"
#include "baselines/sampling_aqp.h"
#include "baselines/spn.h"
#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "query/exact.h"
#include "query/sql_parser.h"

namespace pairwisehist {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { table_ = new Table(MakePower(20000, 60)); }
  static void TearDownTestSuite() { delete table_; }

  static double Exact(const std::string& sql) {
    return ExecuteExactSql(*table_, sql)->Scalar().estimate;
  }
  static Query Parse(const std::string& sql) {
    auto q = ParseSql(sql);
    EXPECT_TRUE(q.ok());
    return q.value();
  }

  static Table* table_;
};

Table* BaselinesTest::table_ = nullptr;

// ---------------------------------------------------------------------------
// Sampling

TEST_F(BaselinesTest, SamplingCountAccurateAndBounded) {
  SamplingAqp method(*table_, 5000, 1);
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  double exact = Exact(sql);
  EXPECT_LT(RelativeErrorPct(exact, r->Scalar().estimate), 10.0);
  EXPECT_LE(r->Scalar().lower, r->Scalar().upper);
  // CLT bounds should usually contain the truth for counts.
  EXPECT_GE(exact, r->Scalar().lower * 0.95);
  EXPECT_LE(exact, r->Scalar().upper * 1.05);
}

TEST_F(BaselinesTest, SamplingAvgReasonable) {
  SamplingAqp method(*table_, 5000, 1);
  const std::string sql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 10.0);
}

TEST_F(BaselinesTest, SamplingScalesCounts) {
  SamplingAqp method(*table_, 2000, 2);
  auto r = method.Execute(Parse("SELECT COUNT(*) FROM power;"));
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->Scalar().estimate, 20000.0, 1.0);
  EXPECT_NEAR(method.sampling_ratio(), 0.1, 1e-9);
}

TEST_F(BaselinesTest, SamplingSupportsEverything) {
  SamplingAqp method(*table_, 2000, 2);
  EXPECT_TRUE(method.SupportsQuery(
      Parse("SELECT MEDIAN(voltage) FROM power WHERE hour > 3 OR hour < 1;")));
  EXPECT_GT(method.StorageBytes(), 100000u);  // samples are big
}

TEST_F(BaselinesTest, SamplingMinMaxBiasedInward) {
  SamplingAqp method(*table_, 1000, 3);
  auto r = method.Execute(Parse("SELECT MAX(global_active_power) FROM power;"));
  ASSERT_TRUE(r.ok());
  double exact = Exact("SELECT MAX(global_active_power) FROM power;");
  EXPECT_LE(r->Scalar().estimate, exact + 1e-9);
}

// ---------------------------------------------------------------------------
// AVI histograms

TEST_F(BaselinesTest, AviCountSinglePredicate) {
  AviHistogram method(*table_, 10000, 64, 4);
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE voltage <= 241;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 15.0);
}

TEST_F(BaselinesTest, AviIndependenceAssumptionHurtsCorrelated) {
  AviHistogram method(*table_, 10000, 64, 4);
  // global_intensity is nearly proportional to global_active_power, so AVI
  // multiplies two marginal selectivities where the truth is one.
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE global_active_power > 0.3 "
      "AND global_intensity > 1.3;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  double exact = Exact(sql);
  // The AVI estimate should UNDERESTIMATE markedly on positively
  // correlated conjunctions.
  EXPECT_LT(r->Scalar().estimate, exact);
}

TEST_F(BaselinesTest, AviRejectsUnsupportedShapes) {
  AviHistogram method(*table_, 5000, 64, 4);
  EXPECT_FALSE(method.SupportsQuery(
      Parse("SELECT MEDIAN(voltage) FROM power;")));
  EXPECT_FALSE(method.SupportsQuery(
      Parse("SELECT COUNT(voltage) FROM power WHERE hour > 3 OR hour < 1;")));
  EXPECT_FALSE(method.SupportsQuery(
      Parse("SELECT AVG(voltage) FROM power GROUP BY hour;")));
  EXPECT_FALSE(
      method.Execute(Parse("SELECT MEDIAN(voltage) FROM power;")).ok());
}

TEST_F(BaselinesTest, AviStorageTiny) {
  AviHistogram method(*table_, 10000, 64, 4);
  EXPECT_LT(method.StorageBytes(), 40000u);
}

// ---------------------------------------------------------------------------
// SPN (DeepDB-lite)

TEST_F(BaselinesTest, SpnCountAccuracy) {
  SpnBaseline::Config cfg;
  cfg.sample_size = 20000;
  SpnBaseline method(*table_, cfg);
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 15.0);
}

TEST_F(BaselinesTest, SpnAvgWithCrossColumnPredicate) {
  SpnBaseline::Config cfg;
  cfg.sample_size = 20000;
  SpnBaseline method(*table_, cfg);
  const std::string sql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 25.0);
}

TEST_F(BaselinesTest, SpnRefusesOrAndExoticAggregates) {
  SpnBaseline::Config cfg;
  cfg.sample_size = 5000;
  SpnBaseline method(*table_, cfg);
  // Mirrors the paper's observation: the public DeepDB rejects OR and
  // supports only COUNT/SUM/AVG.
  EXPECT_FALSE(method.SupportsQuery(
      Parse("SELECT COUNT(voltage) FROM power WHERE hour > 3 OR hour < 1;")));
  EXPECT_FALSE(
      method.SupportsQuery(Parse("SELECT MEDIAN(voltage) FROM power;")));
  EXPECT_FALSE(
      method.SupportsQuery(Parse("SELECT VAR(voltage) FROM power;")));
  EXPECT_FALSE(
      method.SupportsQuery(Parse("SELECT MIN(voltage) FROM power;")));
  EXPECT_TRUE(
      method.SupportsQuery(Parse("SELECT SUM(voltage) FROM power;")));
}

TEST_F(BaselinesTest, SpnHasStructure) {
  SpnBaseline::Config cfg;
  cfg.sample_size = 20000;
  SpnBaseline method(*table_, cfg);
  auto stats = method.GetStats();
  EXPECT_GT(stats.leaves, 0u);
  EXPECT_GT(stats.sum_nodes + stats.product_nodes, 0u);
  EXPECT_GT(method.StorageBytes(), 1000u);
}

TEST_F(BaselinesTest, SpnBoundsBracketEstimate) {
  SpnBaseline::Config cfg;
  cfg.sample_size = 10000;
  SpnBaseline method(*table_, cfg);
  auto r = method.Execute(
      Parse("SELECT COUNT(voltage) FROM power WHERE hour < 12;"));
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->Scalar().lower, r->Scalar().estimate);
  EXPECT_GE(r->Scalar().upper, r->Scalar().estimate);
}

// ---------------------------------------------------------------------------
// DBEst-lite

TEST_F(BaselinesTest, DbestTrainAndQuery) {
  DbestBaseline::Config cfg;
  cfg.sample_size = 4000;
  DbestBaseline method(cfg);
  ASSERT_TRUE(
      method.TrainTemplate(*table_, "global_active_power", "hour").ok());
  const std::string sql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 30.0);
}

TEST_F(BaselinesTest, DbestCountViaDensity) {
  DbestBaseline::Config cfg;
  cfg.sample_size = 4000;
  DbestBaseline method(cfg);
  ASSERT_TRUE(method.TrainTemplate(*table_, "voltage", "voltage").ok());
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
  auto r = method.Execute(Parse(sql));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LT(RelativeErrorPct(Exact(sql), r->Scalar().estimate), 30.0);
}

TEST_F(BaselinesTest, DbestRequiresTrainedTemplate) {
  DbestBaseline method({});
  auto r = method.Execute(
      Parse("SELECT AVG(voltage) FROM power WHERE hour > 3;"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(BaselinesTest, DbestRejectsUnsupportedShapes) {
  DbestBaseline method({});
  // Multi-predicate, OR, no-predicate and exotic aggregates are out of
  // scope for the per-template model family (the paper's observations).
  EXPECT_FALSE(method.SupportsQuery(Parse(
      "SELECT COUNT(voltage) FROM power WHERE hour > 1 AND voltage > 2;")));
  EXPECT_FALSE(method.SupportsQuery(
      Parse("SELECT COUNT(voltage) FROM power WHERE hour > 3 OR hour < 1;")));
  EXPECT_FALSE(method.SupportsQuery(Parse("SELECT SUM(voltage) FROM power;")));
  EXPECT_FALSE(
      method.SupportsQuery(Parse("SELECT MEDIAN(voltage) FROM power;")));
}

TEST_F(BaselinesTest, DbestStorageGrowsWithTemplates) {
  DbestBaseline::Config cfg;
  cfg.sample_size = 2000;
  DbestBaseline method(cfg);
  ASSERT_TRUE(method.TrainTemplate(*table_, "voltage", "hour").ok());
  size_t one = method.StorageBytes();
  ASSERT_TRUE(
      method.TrainTemplate(*table_, "global_active_power", "hour").ok());
  ASSERT_TRUE(
      method.TrainTemplate(*table_, "sub_metering_1", "voltage").ok());
  EXPECT_EQ(method.num_templates(), 3u);
  EXPECT_GT(method.StorageBytes(), 2 * one);
}

TEST_F(BaselinesTest, DbestTrainForWorkload) {
  DbestBaseline::Config cfg;
  cfg.sample_size = 2000;
  DbestBaseline method(cfg);
  std::vector<Query> workload = {
      Parse("SELECT AVG(voltage) FROM power WHERE hour > 6;"),
      Parse("SELECT COUNT(voltage) FROM power WHERE hour > 3 OR hour < 1;"),
  };
  auto trained = method.TrainForWorkload(*table_, workload);
  ASSERT_TRUE(trained.ok());
  EXPECT_EQ(trained.value(), 1u);  // the OR query is skipped
}

}  // namespace
}  // namespace pairwisehist
