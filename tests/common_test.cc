// Unit tests for the common substrate: Status/StatusOr, bit I/O, Golomb
// coding, statistical special functions, RNG determinism, serialization.
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "common/bitio.h"
#include "common/golomb.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stats.h"
#include "common/status.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Status / StatusOr

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad input");
}

TEST(StatusTest, AllCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "not-found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "data-loss");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "unsupported");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

StatusOr<int> HalveEven(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  PH_ASSIGN_OR_RETURN(int half, HalveEven(x));
  *out = half;
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(UseAssignOrReturn(7, &out).ok());
}

// ---------------------------------------------------------------------------
// Bit I/O

TEST(BitIoTest, RoundTripSingleBits) {
  BitWriter w;
  for (int i = 0; i < 13; ++i) w.WriteBit(i % 3 == 0);
  auto bytes = w.Finish();
  BitReader r(bytes);
  for (int i = 0; i < 13; ++i) {
    auto bit = r.ReadBits(1);
    ASSERT_TRUE(bit.ok());
    EXPECT_EQ(bit.value(), i % 3 == 0 ? 1u : 0u) << i;
  }
}

TEST(BitIoTest, RoundTripMultiBitFields) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0xDEADBEEF, 32);
  w.WriteBits(1, 1);
  w.WriteBits(0x123456789ABCDEFull, 60);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(3).value(), 0b101u);
  EXPECT_EQ(r.ReadBits(32).value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadBits(1).value(), 1u);
  EXPECT_EQ(r.ReadBits(60).value(), 0x123456789ABCDEFull);
}

TEST(BitIoTest, ValueMaskedToWidth) {
  BitWriter w;
  w.WriteBits(0xFF, 4);  // only low 4 bits survive
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(4).value(), 0xFu);
}

TEST(BitIoTest, UnaryRoundTrip) {
  BitWriter w;
  for (uint64_t v : {0u, 1u, 5u, 17u}) w.WriteUnary(v);
  auto bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v : {0u, 1u, 5u, 17u}) {
    EXPECT_EQ(r.ReadUnary().value(), v);
  }
}

TEST(BitIoTest, ReadPastEndFails) {
  BitWriter w;
  w.WriteBits(3, 2);
  auto bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBits(8).ok());  // padded byte is readable
  EXPECT_FALSE(r.ReadBits(1).ok());
}

TEST(BitIoTest, SkipBoundsChecked) {
  std::vector<uint8_t> data{0xAB};
  BitReader r(data);
  EXPECT_TRUE(r.Skip(8).ok());
  EXPECT_FALSE(r.Skip(1).ok());
}

TEST(BitIoTest, BitCountTracksWrites) {
  BitWriter w;
  EXPECT_EQ(w.bit_count(), 0u);
  w.WriteBits(1, 5);
  EXPECT_EQ(w.bit_count(), 5u);
  w.WriteUnary(2);  // 3 bits
  EXPECT_EQ(w.bit_count(), 8u);
}

// ---------------------------------------------------------------------------
// Golomb coding

class GolombRoundTrip
    : public ::testing::TestWithParam<std::tuple<uint64_t, uint64_t>> {};

TEST_P(GolombRoundTrip, EncodesAndDecodes) {
  auto [value, m] = GetParam();
  BitWriter w;
  GolombEncode(value, m, &w);
  EXPECT_EQ(w.bit_count(), GolombCodeLengthBits(value, m));
  auto bytes = w.Finish();
  BitReader r(bytes);
  auto decoded = GolombDecode(m, &r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), value);
}

INSTANTIATE_TEST_SUITE_P(
    Values, GolombRoundTrip,
    ::testing::Combine(::testing::Values(0ull, 1ull, 2ull, 7ull, 63ull,
                                         100ull, 1023ull, 65536ull),
                       ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                         64ull)));

TEST(GolombTest, SequenceRoundTrip) {
  BitWriter w;
  std::vector<uint64_t> values{0, 3, 9, 1, 0, 42, 7, 128};
  for (uint64_t v : values) GolombEncode(v, 5, &w);
  auto bytes = w.Finish();
  BitReader r(bytes);
  for (uint64_t v : values) {
    EXPECT_EQ(GolombDecode(5, &r).value(), v);
  }
}

TEST(GolombTest, OptimalMGrowsWithMean) {
  EXPECT_EQ(GolombOptimalM(0.0), 1u);
  EXPECT_EQ(GolombOptimalM(-3.0), 1u);
  uint64_t m_small = GolombOptimalM(1.0);
  uint64_t m_large = GolombOptimalM(100.0);
  EXPECT_LT(m_small, m_large);
  EXPECT_GE(m_small, 1u);
}

TEST(GolombTest, GeometricDataCompactness) {
  // Golomb with near-optimal m should beat m=1 (unary-ish) on geometric
  // data with a large mean.
  Rng rng(11);
  std::vector<uint64_t> data;
  for (int i = 0; i < 500; ++i) {
    data.push_back(static_cast<uint64_t>(rng.Exponential(1.0 / 20.0)));
  }
  double mean = 0;
  for (uint64_t v : data) mean += static_cast<double>(v);
  mean /= data.size();
  uint64_t m_opt = GolombOptimalM(mean);
  uint64_t bits_opt = 0, bits_unary = 0;
  for (uint64_t v : data) {
    bits_opt += GolombCodeLengthBits(v, m_opt);
    bits_unary += GolombCodeLengthBits(v, 1);
  }
  EXPECT_LT(bits_opt, bits_unary);
}

// ---------------------------------------------------------------------------
// Statistical special functions

TEST(StatsTest, RegularizedGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10) << x;
  }
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.5, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaQ(1.0, 2.0), std::exp(-2.0), 1e-10);
}

TEST(StatsTest, Chi2CdfMatchesReferenceValues) {
  // Reference values from standard chi-squared tables.
  EXPECT_NEAR(Chi2Cdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(Chi2Cdf(5.991, 2), 0.95, 1e-3);
  EXPECT_NEAR(Chi2Cdf(11.070, 5), 0.95, 1e-3);
  EXPECT_NEAR(Chi2Cdf(18.307, 10), 0.95, 1e-3);
  EXPECT_NEAR(Chi2Cdf(6.635, 1), 0.99, 1e-3);
  EXPECT_NEAR(Chi2Cdf(23.209, 10), 0.99, 1e-3);
}

TEST(StatsTest, Chi2QuantileInvertsCdf) {
  for (double df : {1.0, 2.0, 4.0, 9.0, 25.0, 100.0}) {
    for (double p : {0.01, 0.1, 0.5, 0.9, 0.99, 0.999}) {
      double x = Chi2Quantile(p, df);
      EXPECT_NEAR(Chi2Cdf(x, df), p, 1e-8)
          << "df=" << df << " p=" << p << " x=" << x;
    }
  }
}

TEST(StatsTest, Chi2CriticalValueMatchesTables) {
  EXPECT_NEAR(Chi2CriticalValue(0.05, 1), 3.841, 1e-3);
  EXPECT_NEAR(Chi2CriticalValue(0.05, 10), 18.307, 1e-3);
  EXPECT_NEAR(Chi2CriticalValue(0.001, 5), 20.515, 1e-3);
}

TEST(StatsTest, Chi2QuantileRejectsBadInput) {
  EXPECT_TRUE(std::isnan(Chi2Quantile(0.0, 3)));
  EXPECT_TRUE(std::isnan(Chi2Quantile(1.0, 3)));
  EXPECT_TRUE(std::isnan(Chi2Quantile(0.5, 0)));
}

TEST(StatsTest, NormalQuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.99), 2.326348, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(1e-6), -4.753424, 1e-4);
}

TEST(StatsTest, NormalQuantileInvertsCdf) {
  for (double p = 0.001; p < 1.0; p += 0.0317) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-9) << p;
  }
}

TEST(StatsTest, Chi2UniformStatisticZeroForPerfectUniform) {
  uint64_t counts[4] = {25, 25, 25, 25};
  EXPECT_DOUBLE_EQ(Chi2UniformStatistic(counts, 4, 100), 0.0);
}

TEST(StatsTest, Chi2UniformStatisticLargeForSkew) {
  uint64_t counts[4] = {97, 1, 1, 1};
  EXPECT_GT(Chi2UniformStatistic(counts, 4, 100), 100.0);
}

TEST(StatsTest, TerrellScottSubBins) {
  EXPECT_EQ(TerrellScottSubBins(0), 1);
  EXPECT_EQ(TerrellScottSubBins(1), 1);
  EXPECT_EQ(TerrellScottSubBins(4), 2);       // (8)^(1/3) = 2
  EXPECT_EQ(TerrellScottSubBins(13), 3);      // (26)^(1/3) ≈ 2.96 → 3
  EXPECT_EQ(TerrellScottSubBins(500), 10);    // (1000)^(1/3) = 10
  EXPECT_EQ(TerrellScottSubBins(100000), 59); // (200000)^(1/3) ≈ 58.5
}

// ---------------------------------------------------------------------------
// RNG

TEST(RngTest, DeterministicStreams) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{7});
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(7);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(8);
  int low = 0, high = 0;
  for (int i = 0; i < 2000; ++i) {
    size_t r = rng.Zipf(100, 1.2);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, high * 5);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 4000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
}

TEST(RngTest, ParetoHeavyTail) {
  Rng rng(10);
  double max_v = 0;
  for (int i = 0; i < 10000; ++i) max_v = std::max(max_v, rng.Pareto(1.0, 1.5));
  EXPECT_GT(max_v, 20.0);  // heavy tail produces large outliers
}

// ---------------------------------------------------------------------------
// Serialization

TEST(SerializeTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0x1234);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI64(-42);
  w.WriteF64(3.14159);
  auto buf = w.Finish();
  ByteReader r(buf);
  EXPECT_EQ(r.ReadU8().value(), 0xAB);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.ReadI64().value(), -42);
  EXPECT_DOUBLE_EQ(r.ReadF64().value(), 3.14159);
  EXPECT_EQ(r.remaining(), 0u);
}

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Unsigned) {
  ByteWriter w;
  w.WriteVarint(GetParam());
  auto buf = w.Finish();
  ByteReader r(buf);
  EXPECT_EQ(r.ReadVarint().value(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, VarintRoundTrip,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull,
                                           300ull, 16383ull, 16384ull,
                                           uint64_t{1} << 32,
                                           ~uint64_t{0}));

TEST(SerializeTest, SignedVarintRoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                    int64_t{64}, int64_t{-1000000}, int64_t{1} << 40,
                    -(int64_t{1} << 40)}) {
    ByteWriter w;
    w.WriteSignedVarint(v);
    auto buf = w.Finish();
    ByteReader r(buf);
    EXPECT_EQ(r.ReadSignedVarint().value(), v) << v;
  }
}

TEST(SerializeTest, StringAndBytesRoundTrip) {
  ByteWriter w;
  w.WriteString("hello, world");
  w.WriteString("");
  w.WriteBytes({1, 2, 3});
  auto buf = w.Finish();
  ByteReader r(buf);
  EXPECT_EQ(r.ReadString().value(), "hello, world");
  EXPECT_EQ(r.ReadString().value(), "");
  EXPECT_EQ(r.ReadBytes().value(), (std::vector<uint8_t>{1, 2, 3}));
}

TEST(SerializeTest, TruncatedReadsFail) {
  ByteWriter w;
  w.WriteU32(7);
  auto buf = w.Finish();
  buf.resize(2);
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadU32().ok());
}

TEST(SerializeTest, TruncatedStringFails) {
  ByteWriter w;
  w.WriteString("long string content");
  auto buf = w.Finish();
  buf.resize(4);
  ByteReader r(buf);
  EXPECT_FALSE(r.ReadString().ok());
}

}  // namespace
}  // namespace pairwisehist
