// Tests for GreedyGD: pre-processing, base/deviation split, lossless
// round trip, random access, incremental append, compression behaviour.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "gd/preprocess.h"

namespace pairwisehist {
namespace {

Table MakeMixedTable(size_t rows) {
  Table t("mixed");
  Column f("f", DataType::kFloat64, 2);
  Column i("i", DataType::kInt64, 0);
  Column c("c", DataType::kCategorical, 0);
  for (size_t r = 0; r < rows; ++r) {
    if (r % 7 == 3) {
      f.AppendNull();
    } else {
      f.Append(10.0 + 0.25 * static_cast<double>(r % 40));
    }
    i.Append(static_cast<double>(1000 + (r * 13) % 256));
    c.AppendCategory(r % 3 == 0 ? "common" : (r % 3 == 1 ? "mid" : "rare"));
  }
  t.AddColumn(std::move(f));
  t.AddColumn(std::move(i));
  t.AddColumn(std::move(c));
  return t;
}

// ---------------------------------------------------------------------------
// Pre-processing

TEST(PreprocessTest, FloatToIntegerScaling) {
  Table t("t");
  Column f("f", DataType::kFloat64, 2);
  f.Append(10.22);
  f.Append(10.23);
  f.Append(9.99);
  t.AddColumn(std::move(f));
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  const ColumnTransform& tr = pre->transforms[0];
  EXPECT_DOUBLE_EQ(tr.scale, 100.0);
  EXPECT_EQ(tr.min_scaled, 999);
  // 9.99 -> code 1, 10.22 -> code 24, 10.23 -> code 25.
  EXPECT_EQ(pre->codes[0][0], 24u);
  EXPECT_EQ(pre->codes[0][1], 25u);
  EXPECT_EQ(pre->codes[0][2], 1u);
}

TEST(PreprocessTest, MissingValuesGetCodeZero) {
  Table t("t");
  Column f("f", DataType::kFloat64, 1);
  f.Append(1.0);
  f.AppendNull();
  t.AddColumn(std::move(f));
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->codes[0][1], kMissingCode);
  EXPECT_GE(pre->codes[0][0], 1u);
}

TEST(PreprocessTest, FrequencyRankedCategoricalEncoding) {
  Table t("t");
  Column c("c", DataType::kCategorical, 0);
  // "b" appears most often, then "a", then "z".
  for (int i = 0; i < 5; ++i) c.AppendCategory("b");
  for (int i = 0; i < 3; ++i) c.AppendCategory("a");
  c.AppendCategory("z");
  t.AddColumn(std::move(c));
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  const ColumnTransform& tr = pre->transforms[0];
  // Most common category gets rank 0 → code 1.
  EXPECT_EQ(pre->codes[0][0], 1u);   // "b"
  EXPECT_EQ(pre->codes[0][5], 2u);   // "a"
  EXPECT_EQ(pre->codes[0][8], 3u);   // "z"
  EXPECT_EQ(tr.EncodeCategory("b").value(), 1u);
  EXPECT_EQ(tr.DecodeCategory(1).value(), "b");
  EXPECT_EQ(tr.DecodeCategory(3).value(), "z");
  EXPECT_FALSE(tr.EncodeCategory("missing").ok());
}

TEST(PreprocessTest, EncodeDecodeRoundTrip) {
  Table t = MakeMixedTable(200);
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const ColumnTransform& tr = pre->transforms[c];
    for (size_t r = 0; r < t.NumRows(); r += 7) {
      if (t.column(c).IsNull(r)) {
        EXPECT_EQ(pre->codes[c][r], kMissingCode);
        continue;
      }
      double round_trip = tr.Decode(tr.Encode(t.column(c).Value(r)));
      EXPECT_NEAR(round_trip, t.column(c).Value(r), 1e-9)
          << "col " << c << " row " << r;
    }
  }
}

TEST(PreprocessTest, EncodeContinuousIsMonotonic) {
  Table t = MakeMixedTable(100);
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  const ColumnTransform& tr = pre->transforms[0];  // float column
  EXPECT_LT(tr.EncodeContinuous(10.0), tr.EncodeContinuous(10.01));
  EXPECT_LT(tr.EncodeContinuous(10.221), tr.EncodeContinuous(10.229));
}

TEST(PreprocessTest, InverseTransformReconstructsTable) {
  Table t = MakeMixedTable(150);
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  Table back = InverseTransform(*pre, &t);
  ASSERT_EQ(back.NumRows(), t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    for (size_t r = 0; r < t.NumRows(); ++r) {
      ASSERT_EQ(back.column(c).IsNull(r), t.column(c).IsNull(r));
      if (!t.column(c).IsNull(r)) {
        ASSERT_NEAR(back.column(c).Value(r), t.column(c).Value(r), 1e-9);
      }
    }
  }
}

TEST(PreprocessTest, BitWidthCoversMaxCode) {
  Table t = MakeMixedTable(500);
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  for (const auto& tr : pre->transforms) {
    EXPECT_LT(tr.max_code, uint64_t{1} << tr.bit_width) << tr.name;
  }
}

TEST(PreprocessTest, ApplyTransformsRejectsSchemaMismatch) {
  Table t = MakeMixedTable(10);
  auto transforms = FitColumnTransforms(t);
  Table other("other");
  Column x("x", DataType::kInt64, 0);
  x.Append(1);
  other.AddColumn(std::move(x));
  EXPECT_FALSE(ApplyTransforms(other, transforms).ok());
}

// ---------------------------------------------------------------------------
// GreedyGD compression

TEST(GreedyGdTest, LosslessRoundTrip) {
  Table t = MakeMixedTable(600);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  Table back = compressed->Decompress(&t);
  ASSERT_EQ(back.NumRows(), t.NumRows());
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    for (size_t r = 0; r < t.NumRows(); ++r) {
      ASSERT_EQ(back.column(c).IsNull(r), t.column(c).IsNull(r))
          << "col " << c << " row " << r;
      if (!t.column(c).IsNull(r)) {
        ASSERT_NEAR(back.column(c).Value(r), t.column(c).Value(r), 1e-9)
            << "col " << c << " row " << r;
      }
    }
  }
}

TEST(GreedyGdTest, RandomAccessMatchesFullDecompress) {
  Table t = MakeMixedTable(300);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  PreprocessedTable codes = compressed->DecompressCodes();
  for (size_t r = 0; r < t.NumRows(); r += 17) {
    auto row = compressed->GetRowCodes(r);
    ASSERT_TRUE(row.ok());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      EXPECT_EQ(row.value()[c], codes.codes[c][r]) << r << "," << c;
    }
  }
  EXPECT_FALSE(compressed->GetRowCodes(t.NumRows()).ok());
}

TEST(GreedyGdTest, DeduplicationReducesBases) {
  // Highly repetitive data: few distinct rows → few bases.
  Table t("rep");
  Column a("a", DataType::kInt64, 0);
  Column b("b", DataType::kInt64, 0);
  for (int r = 0; r < 2000; ++r) {
    a.Append(r % 4);
    b.Append((r % 4) * 100);
  }
  t.AddColumn(std::move(a));
  t.AddColumn(std::move(b));
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->num_bases(), 20u);
  EXPECT_EQ(compressed->num_rows(), 2000u);
}

TEST(GreedyGdTest, CompressionBeatsRawOnSensorData) {
  Table t = MakePower(10000, 21);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  EXPECT_LT(compressed->CompressedSizeBytes(), t.RawSizeBytes())
      << "compressed " << compressed->CompressedSizeBytes() << " vs raw "
      << t.RawSizeBytes();
}

TEST(GreedyGdTest, AppendAddsRowsAndKeepsOldOnes) {
  Table t = MakeMixedTable(200);
  auto transforms = FitColumnTransforms(t);
  auto pre = ApplyTransforms(t, transforms);
  ASSERT_TRUE(pre.ok());
  auto compressed = CompressedTable::Compress(*pre);
  ASSERT_TRUE(compressed.ok());
  size_t before = compressed->num_rows();

  Table more = MakeMixedTable(100);
  auto pre_more = ApplyTransforms(more, transforms);
  ASSERT_TRUE(pre_more.ok());
  ASSERT_TRUE(compressed->Append(*pre_more).ok());
  EXPECT_EQ(compressed->num_rows(), before + 100);

  // Old rows unchanged.
  auto row = compressed->GetRowCodes(5);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row.value()[0], pre->codes[0][5]);
  // New rows present.
  auto new_row = compressed->GetRowCodes(before + 5);
  ASSERT_TRUE(new_row.ok());
  EXPECT_EQ(new_row.value()[0], pre_more->codes[0][5]);
}

TEST(GreedyGdTest, AppendRejectsWrongSchema) {
  Table t = MakeMixedTable(50);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  PreprocessedTable bad;
  bad.codes.resize(1);
  EXPECT_FALSE(compressed->Append(bad).ok());
}

TEST(GreedyGdTest, BaseValuesAreSortedDistinctLowerEdges) {
  Table t = MakePower(5000, 22);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    auto bases = compressed->ColumnBaseValues(c);
    ASSERT_FALSE(bases.empty());
    for (size_t i = 1; i < bases.size(); ++i) {
      ASSERT_LT(bases[i - 1], bases[i]);
    }
    // Base-aligned: multiples of 2^deviation_bits.
    int dev = compressed->deviation_bits(c);
    for (uint64_t v : bases) {
      ASSERT_EQ(v & ((uint64_t{1} << dev) - 1), 0u);
    }
  }
}

TEST(GreedyGdTest, BaseBitsPlusDeviationBitsIsTotal) {
  Table t = MakeMixedTable(500);
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    EXPECT_EQ(compressed->base_bits(c) + compressed->deviation_bits(c),
              compressed->total_bits(c));
    EXPECT_GE(compressed->base_bits(c), 0);
    EXPECT_GE(compressed->deviation_bits(c), 0);
  }
}

TEST(GreedyGdTest, MinDeviationBitsRespected) {
  Table t = MakeMixedTable(500);
  auto pre = Preprocess(t);
  ASSERT_TRUE(pre.ok());
  GdConfig config;
  config.min_deviation_bits = 3;
  auto compressed = CompressedTable::Compress(*pre, config);
  ASSERT_TRUE(compressed.ok());
  for (size_t c = 0; c < compressed->num_columns(); ++c) {
    int expected_floor =
        std::min(3, compressed->total_bits(c));
    EXPECT_GE(compressed->deviation_bits(c), expected_floor > 0 ? 0 : 0);
    if (compressed->total_bits(c) >= 3) {
      EXPECT_GE(compressed->deviation_bits(c), 3) << "col " << c;
    }
  }
}

TEST(GreedyGdTest, ManyBasesTriggersIdFieldGrowth) {
  // Incompressible random-ish data: every row a distinct base at first,
  // exercising the base-ID repack path.
  Table t("rand");
  Column a("a", DataType::kInt64, 0);
  for (int r = 0; r < 2000; ++r) a.Append((r * 7919) % 65536);
  t.AddColumn(std::move(a));
  auto compressed = CompressTable(t);
  ASSERT_TRUE(compressed.ok());
  // Round trip still holds.
  Table back = compressed->Decompress(&t);
  for (size_t r = 0; r < t.NumRows(); r += 101) {
    EXPECT_DOUBLE_EQ(back.column(0).Value(r), t.column(0).Value(r));
  }
}

// Lossless round trip across all 11 datasets (property sweep).
class GdDatasetRoundTrip : public ::testing::TestWithParam<DatasetSpec> {};

TEST_P(GdDatasetRoundTrip, Lossless) {
  auto t = MakeDataset(GetParam().name, 1500, 13);
  ASSERT_TRUE(t.ok());
  auto compressed = CompressTable(*t);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  Table back = compressed->Decompress(&t.value());
  ASSERT_EQ(back.NumRows(), t->NumRows());
  for (size_t c = 0; c < t->NumColumns(); ++c) {
    for (size_t r = 0; r < t->NumRows(); r += 23) {
      ASSERT_EQ(back.column(c).IsNull(r), t->column(c).IsNull(r))
          << GetParam().name << " col " << c << " row " << r;
      if (!t->column(c).IsNull(r)) {
        ASSERT_NEAR(back.column(c).Value(r), t->column(c).Value(r), 1e-9)
            << GetParam().name << " col " << c << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, GdDatasetRoundTrip, ::testing::ValuesIn(AllDatasets()),
    [](const ::testing::TestParamInfo<DatasetSpec>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace pairwisehist
