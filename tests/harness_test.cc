// Tests for the workload generator and evaluation metrics.
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "query/exact.h"

namespace pairwisehist {
namespace {

TEST(MetricsTest, PercentileInterpolates) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 10);
  EXPECT_DOUBLE_EQ(Percentile(v, 1.0), 40);
  EXPECT_DOUBLE_EQ(Percentile(v, 0.5), 25);
  EXPECT_DOUBLE_EQ(Median({3, 1, 2}), 2);
  EXPECT_TRUE(std::isnan(Median({})));
}

TEST(MetricsTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeErrorPct(100, 101), 1.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPct(100, 99), 1.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPct(-50, -55), 10.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPct(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(RelativeErrorPct(0, 5), 100.0);
  EXPECT_TRUE(std::isnan(RelativeErrorPct(10, std::nan(""))));
}

TEST(WorkloadTest, GeneratesRequestedCount) {
  Table t = MakePower(10000, 70);
  WorkloadConfig cfg = InitialWorkloadConfig(1);
  cfg.num_queries = 30;
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ(workload->size(), 30u);
}

TEST(WorkloadTest, RespectsSelectivityFloor) {
  Table t = MakePower(10000, 70);
  WorkloadConfig cfg = InitialWorkloadConfig(2);
  cfg.num_queries = 25;
  cfg.min_selectivity = 0.05;  // aggressive floor, easy to verify
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  for (const Query& q : *workload) {
    double sel = ExactSelectivity(t, q).value();
    EXPECT_GE(sel, 0.05) << q.ToSql();
  }
}

TEST(WorkloadTest, PredicateCountWithinRange) {
  Table t = MakeFlights(10000, 71);
  WorkloadConfig cfg = ScaledWorkloadConfig(3);
  cfg.num_queries = 40;
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  ASSERT_GE(workload->size(), 20u);
  bool saw_multi = false;
  for (const Query& q : *workload) {
    size_t npreds = q.PredicateColumns().size();
    EXPECT_GE(npreds, 1u) << q.ToSql();
    EXPECT_LE(npreds, 5u) << q.ToSql();
    if (npreds > 1) saw_multi = true;
  }
  EXPECT_TRUE(saw_multi);
}

TEST(WorkloadTest, ScaledConfigUsesAllSevenAggregates) {
  Table t = MakePower(20000, 72);
  WorkloadConfig cfg = ScaledWorkloadConfig(4);
  cfg.num_queries = 120;
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  std::set<AggFunc> seen;
  for (const Query& q : *workload) seen.insert(q.func);
  EXPECT_GE(seen.size(), 6u);
}

TEST(WorkloadTest, DeterministicForSeed) {
  Table t = MakePower(8000, 73);
  WorkloadConfig cfg = InitialWorkloadConfig(9);
  cfg.num_queries = 10;
  auto a = GenerateWorkload(t, cfg);
  auto b = GenerateWorkload(t, cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].ToSql(), (*b)[i].ToSql());
  }
}

TEST(WorkloadTest, OrQueriesAppearWhenEnabled) {
  Table t = MakeFlights(8000, 74);
  WorkloadConfig cfg = ScaledWorkloadConfig(5);
  cfg.num_queries = 60;
  cfg.or_probability = 0.8;
  cfg.min_predicates = 2;
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  size_t with_or = 0;
  for (const Query& q : *workload) {
    if (q.where.has_value() &&
        q.where->type == PredicateNode::Type::kOr) {
      ++with_or;
    }
  }
  EXPECT_GT(with_or, 0u);
}

TEST(WorkloadTest, EmptyTableFails) {
  Table t("empty");
  EXPECT_FALSE(GenerateWorkload(t, InitialWorkloadConfig(1)).ok());
}

TEST(MethodRunTest, SummariesFromVectors) {
  MethodRun run;
  run.errors_pct = {1.0, 2.0, 3.0};
  run.latencies_us = {100, 200, 300, 400};
  run.bounds_evaluated = 10;
  run.bounds_correct = 7;
  run.bound_widths_pct = {5.0, 15.0};
  EXPECT_DOUBLE_EQ(run.MedianErrorPct(), 2.0);
  EXPECT_DOUBLE_EQ(run.MedianLatencyUs(), 250.0);
  EXPECT_DOUBLE_EQ(run.BoundsCorrectRate(), 70.0);
  EXPECT_DOUBLE_EQ(run.MedianBoundWidthPct(), 10.0);
}

TEST(MedianExactLatencyTest, PositiveForRealWorkload) {
  Table t = MakePower(5000, 75);
  WorkloadConfig cfg = InitialWorkloadConfig(6);
  cfg.num_queries = 5;
  auto workload = GenerateWorkload(t, cfg);
  ASSERT_TRUE(workload.ok());
  EXPECT_GT(MedianExactLatencyUs(t, *workload), 0.0);
}

}  // namespace
}  // namespace pairwisehist
