// Segmented synopsis validation: a Db sharded into N sealed segments must
// (a) agree with the monolithic single-segment Db within CI bounds on a
// randomized workload over every aggregate function and predicate shape,
// (b) merge COUNT/SUM/MIN/MAX partials exactly (the merged answer equals
// the combination of independent per-segment answers), (c) produce
// bit-identical doubles for any exec_threads value, (d) round-trip the
// multi-segment persistence container and still open PR-1-era
// single-synopsis blobs, (e) resolve categorical predicates and GROUP BY
// labels across segments whose dictionaries grew after an append, and
// (f) prune provably-non-matching segments without changing any result.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/rng.h"
#include "core/synopsis_set.h"
#include "datagen/datasets.h"
#include "query/partial_agg.h"
#include "query/segment_exec.h"
#include "query/sql_parser.h"
#include "storage/segment.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Random query generation (same shapes as the fast-path suite: every
// aggregate, AND/OR nesting, same-column consolidation, categorical
// equality, GROUP BY).

struct ColumnStats {
  std::string name;
  DataType type = DataType::kFloat64;
  double min = 0, max = 0;
  std::vector<std::string> dictionary;
};

std::vector<ColumnStats> CollectStats(const Table& t) {
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    ColumnStats s;
    s.name = col.name();
    s.type = col.type();
    bool any = false;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      if (!any || v < s.min) s.min = v;
      if (!any || v > s.max) s.max = v;
      any = true;
    }
    if (col.type() == DataType::kCategorical) s.dictionary = col.dictionary();
    stats.push_back(std::move(s));
  }
  return stats;
}

// `cross_layout` restricts the shapes to queries whose meaning does not
// depend on one synopsis's internal code assignment: categorical columns
// are queried by string equality only (numeric comparisons on categoricals
// act in frequency-rank space, which legitimately differs per segment) and
// non-COUNT aggregation sticks to numeric columns (MIN/SUM/... of a
// dictionary code is rank-space noise).
Condition RandCondition(Rng* rng, const std::vector<ColumnStats>& stats,
                        bool cross_layout) {
  const ColumnStats& s = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  Condition c;
  c.column = s.name;
  c.op = kOps[rng->UniformInt(6)];
  if (s.type == DataType::kCategorical && !s.dictionary.empty() &&
      (cross_layout || rng->Uniform(0, 1) < 0.7)) {
    c.is_string = true;
    if (rng->Uniform(0, 1) < 0.1) {
      c.text_value = "no-such-category";
    } else {
      c.text_value = s.dictionary[static_cast<size_t>(
          rng->UniformInt(static_cast<uint64_t>(s.dictionary.size())))];
    }
    c.op = rng->Uniform(0, 1) < 0.5 ? CmpOp::kEq : CmpOp::kNe;
    return c;
  }
  double span = s.max - s.min;
  double v = s.min + rng->Uniform(-0.1, 1.1) * (span > 0 ? span : 1.0);
  if (rng->Uniform(0, 1) < 0.5) v = std::floor(v);
  c.value = v;
  return c;
}

PredicateNode RandTree(Rng* rng, const std::vector<ColumnStats>& stats,
                       int depth, bool cross_layout) {
  if (depth <= 0 || rng->Uniform(0, 1) < 0.45) {
    PredicateNode n;
    n.type = PredicateNode::Type::kCondition;
    n.condition = RandCondition(rng, stats, cross_layout);
    return n;
  }
  PredicateNode n;
  n.type = rng->Uniform(0, 1) < 0.5 ? PredicateNode::Type::kAnd
                                    : PredicateNode::Type::kOr;
  size_t kids = 2 + rng->UniformInt(2);
  for (size_t i = 0; i < kids; ++i) {
    n.children.push_back(RandTree(rng, stats, depth - 1, cross_layout));
  }
  return n;
}

Query RandQuery(Rng* rng, const std::vector<ColumnStats>& stats,
                const std::string& table_name, bool allow_group,
                bool cross_layout = false) {
  static const AggFunc kFuncs[] = {AggFunc::kCount,  AggFunc::kSum,
                                   AggFunc::kAvg,    AggFunc::kVar,
                                   AggFunc::kMin,    AggFunc::kMax,
                                   AggFunc::kMedian};
  Query q;
  q.table = table_name;
  q.func = kFuncs[rng->UniformInt(7)];
  for (int attempt = 0; attempt < 16; ++attempt) {
    const ColumnStats& agg = stats[static_cast<size_t>(
        rng->UniformInt(static_cast<uint64_t>(stats.size())))];
    q.agg_column = agg.name;
    if (!cross_layout || q.func == AggFunc::kCount ||
        agg.type != DataType::kCategorical) {
      break;
    }
  }
  if (q.func == AggFunc::kCount && rng->Uniform(0, 1) < 0.25) {
    q.count_star = true;
    q.agg_column.clear();
  }
  if (rng->Uniform(0, 1) < 0.92) {
    q.where = RandTree(rng, stats, 2, cross_layout);
  }
  if (allow_group && rng->Uniform(0, 1) < 0.15) {
    for (const ColumnStats& s : stats) {
      if (s.type == DataType::kCategorical) {
        q.group_by = s.name;
        break;
      }
    }
  }
  return q;
}

bool SameDouble(double x, double y) {
  return (std::isnan(x) && std::isnan(y)) || x == y;
}

// Interval overlap with a small relative slack: both layouts bound the
// same quantity under the within-bin uniformity + conditional-independence
// model, so their CIs must (approximately) intersect.
bool IntervalsOverlap(const AggResult& a, const AggResult& b) {
  double scale = std::max({std::fabs(a.lower), std::fabs(a.upper),
                           std::fabs(b.lower), std::fabs(b.upper), 1.0});
  double eps = 1e-2 * scale + 1e-9;
  return a.lower <= b.upper + eps && b.lower <= a.upper + eps;
}

Table ControlledTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t("ctl");
  Column x("x", DataType::kInt64, 0);
  Column y("y", DataType::kFloat64, 1);
  Column g("g", DataType::kCategorical, 0);
  g.SetDictionary({"small", "mid", "big"});
  for (size_t r = 0; r < n; ++r) {
    double xv = std::floor(rng.Uniform(0, 1000));
    x.Append(xv);
    y.Append(std::round((2 * xv + rng.Normal(0, 25)) * 10) / 10);
    g.Append(xv < 250 ? 0.0 : (xv < 750 ? 1.0 : 2.0));
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  t.AddColumn(std::move(g));
  return t;
}

StatusOr<Db> BuildSegmented(Table table, size_t nseg, unsigned exec_threads,
                            size_t sample_size = 0) {
  DbOptions options;
  options.synopsis.sample_size = sample_size;
  options.target_segment_rows =
      nseg == 0 ? 0 : (table.NumRows() + nseg - 1) / nseg;
  options.exec_threads = exec_threads;
  options.build_threads = 2;
  return Db::FromTable(std::move(table), options);
}

// ---------------------------------------------------------------------------
// (a) Randomized 1-segment vs 16-segment equivalence, >= 500 queries.

TEST(SegmentEquivalence, OneVsSixteenSegmentsWithinBounds) {
  // Segments need enough rows for the pairwise chi-squared refinement to
  // keep cross-column structure (tiny segments collapse sparse 2-d
  // histograms toward uniformity — quantified in bench_segments).
  const size_t kRows = 96000;
  auto db1 = BuildSegmented(ControlledTable(kRows, 101), 0, 1);
  auto db16 = BuildSegmented(ControlledTable(kRows, 101), 16, 2);
  ASSERT_TRUE(db1.ok()) << db1.status().ToString();
  ASSERT_TRUE(db16.ok()) << db16.status().ToString();
  ASSERT_EQ(db1->num_segments(), 1u);
  ASSERT_EQ(db16->num_segments(), 16u);
  ASSERT_EQ(db16->total_rows(), kRows);

  std::vector<ColumnStats> stats = CollectStats(*db1->table());
  Rng rng(7);
  size_t executed = 0, compared = 0, mismatches = 0, empty_disagreements = 0;
  const size_t kQueries = 600;
  for (size_t i = 0; i < kQueries; ++i) {
    Query q = RandQuery(&rng, stats, "ctl", /*allow_group=*/true,
                        /*cross_layout=*/true);
    auto a = db1->Execute(q);
    auto b = db16->Execute(q);
    ASSERT_EQ(a.ok(), b.ok()) << q.ToSql();
    if (!a.ok()) continue;
    ++executed;

    if (q.group_by.empty()) {
      const AggResult& ra = a->Scalar();
      const AggResult& rb = b->Scalar();
      if (ra.empty_selection != rb.empty_selection) {
        // Coverage estimates near zero may tip either way across different
        // bin layouts; tolerated below as long as they stay rare.
        ++empty_disagreements;
        continue;
      }
      if (ra.empty_selection) continue;
      ++compared;
      if (!IntervalsOverlap(ra, rb)) {
        ++mismatches;
        std::printf("disjoint CIs: %s\n  1seg  [%g, %g] est %g\n"
                    "  16seg [%g, %g] est %g\n",
                    q.ToSql().c_str(), ra.lower, ra.upper, ra.estimate,
                    rb.lower, rb.upper, rb.estimate);
      }
    } else {
      // Grouped: every label present in both with overlapping intervals.
      for (const auto& ga : a->groups) {
        if (ga.agg.empty_selection) continue;
        bool found = false;
        for (const auto& gb : b->groups) {
          if (gb.label != ga.label) continue;
          found = true;
          if (!gb.agg.empty_selection) {
            ++compared;
            if (!IntervalsOverlap(ga.agg, gb.agg)) {
              ++mismatches;
              std::printf("disjoint CIs: %s group %s\n", q.ToSql().c_str(),
                          ga.label.c_str());
            }
          }
        }
        // A group visible in one layout but estimated empty in the other
        // counts as an empty disagreement, not a failure.
        if (!found) ++empty_disagreements;
      }
    }
  }
  EXPECT_GT(executed, kQueries / 2);
  EXPECT_GT(compared, 300u);
  // Both layouts bound the same quantity: their CIs must intersect except
  // for a small model-approximation tail (conditional independence +
  // within-bin uniformity interact differently with each bin layout).
  EXPECT_LE(mismatches, compared / 50)
      << mismatches << " of " << compared << " comparisons had disjoint CIs";
  // Bin-layout-sensitive zero/non-zero flips must stay rare.
  EXPECT_LT(empty_disagreements, executed / 10);
}

// ---------------------------------------------------------------------------
// (b) Exact merges: the segmented answer for COUNT/SUM/MIN/MAX equals the
// combination of independent per-segment engine answers.

TEST(SegmentEquivalence, CountSumMinMaxMergeExactly) {
  auto db = BuildSegmented(ControlledTable(20000, 55), 8, 1);
  ASSERT_TRUE(db.ok());
  const SegmentedExecutor& ex = db->executor();
  ASSERT_EQ(ex.NumSegments(), 8u);

  std::vector<ColumnStats> stats = CollectStats(*db->table());
  Rng rng(17);
  size_t checked = 0;
  for (size_t i = 0; i < 300; ++i) {
    Query q = RandQuery(&rng, stats, "ctl", /*allow_group=*/false);
    if (q.func == AggFunc::kAvg || q.func == AggFunc::kVar ||
        q.func == AggFunc::kMedian) {
      continue;
    }
    auto merged = db->Execute(q);
    if (!merged.ok()) continue;

    // Independent per-segment answers through each segment's own engine.
    double count_sum = 0, sum_sum = 0;
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    bool any = false, per_seg_ok = true;
    for (size_t s = 0; s < ex.NumSegments(); ++s) {
      auto r = ex.engine(s).Execute(q);
      if (!r.ok()) {
        per_seg_ok = false;
        break;
      }
      const AggResult& agg = r->Scalar();
      if (q.func == AggFunc::kCount) {
        count_sum += agg.estimate;
        continue;
      }
      if (agg.empty_selection) continue;
      any = true;
      sum_sum += agg.estimate;
      mn = std::min(mn, agg.estimate);
      mx = std::max(mx, agg.estimate);
    }
    if (!per_seg_ok) continue;
    ++checked;

    const AggResult& m = merged->Scalar();
    switch (q.func) {
      case AggFunc::kCount:
        EXPECT_DOUBLE_EQ(m.estimate, count_sum) << q.ToSql();
        break;
      case AggFunc::kSum:
        if (any) EXPECT_DOUBLE_EQ(m.estimate, sum_sum) << q.ToSql();
        else EXPECT_TRUE(m.empty_selection) << q.ToSql();
        break;
      case AggFunc::kMin:
        if (any) EXPECT_DOUBLE_EQ(m.estimate, mn) << q.ToSql();
        else EXPECT_TRUE(m.empty_selection) << q.ToSql();
        break;
      case AggFunc::kMax:
        if (any) EXPECT_DOUBLE_EQ(m.estimate, mx) << q.ToSql();
        else EXPECT_TRUE(m.empty_selection) << q.ToSql();
        break;
      default:
        break;
    }
  }
  EXPECT_GT(checked, 100u);
}

// ---------------------------------------------------------------------------
// (c) Determinism: identical results (bit-equal doubles) for any
// exec_threads value, alongside the fast-path suite's guarantees.

TEST(SegmentDeterminism, SerialVsEightThreadsBitEqual) {
  auto serial = BuildSegmented(ControlledTable(20000, 77), 8, 1);
  auto threaded = BuildSegmented(ControlledTable(20000, 77), 8, 8);
  ASSERT_TRUE(serial.ok() && threaded.ok());
  ASSERT_EQ(serial->num_segments(), 8u);
  ASSERT_EQ(threaded->num_segments(), 8u);

  std::vector<ColumnStats> stats = CollectStats(*serial->table());
  Rng rng(23);
  size_t executed = 0;
  for (size_t i = 0; i < 300; ++i) {
    Query q = RandQuery(&rng, stats, "ctl", /*allow_group=*/true);
    auto a = serial->Execute(q);
    auto b = threaded->Execute(q);
    ASSERT_EQ(a.ok(), b.ok()) << q.ToSql();
    if (!a.ok()) continue;
    ++executed;
    ASSERT_EQ(a->groups.size(), b->groups.size()) << q.ToSql();
    for (size_t g = 0; g < a->groups.size(); ++g) {
      EXPECT_EQ(a->groups[g].label, b->groups[g].label) << q.ToSql();
      EXPECT_EQ(a->groups[g].agg.empty_selection,
                b->groups[g].agg.empty_selection)
          << q.ToSql();
      EXPECT_TRUE(SameDouble(a->groups[g].agg.estimate,
                             b->groups[g].agg.estimate))
          << q.ToSql();
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.lower, b->groups[g].agg.lower))
          << q.ToSql();
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.upper, b->groups[g].agg.upper))
          << q.ToSql();
    }
  }
  EXPECT_GT(executed, 150u);
}

// Repeated executions of one prepared query on a threaded multi-segment Db
// are self-consistent (the pool introduces no scheduling dependence).
TEST(SegmentDeterminism, RepeatedThreadedExecutionStable) {
  auto db = BuildSegmented(ControlledTable(12000, 31), 6, 4);
  ASSERT_TRUE(db.ok());
  auto pq = db->Prepare(
      "SELECT AVG(y) FROM ctl WHERE x > 100 AND x < 900 OR g = 'big';");
  ASSERT_TRUE(pq.ok());
  auto first = pq->Execute();
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 50; ++i) {
    auto again = pq->Execute();
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->groups.size(), first->groups.size());
    EXPECT_TRUE(SameDouble(again->Scalar().estimate,
                           first->Scalar().estimate));
    EXPECT_TRUE(SameDouble(again->Scalar().lower, first->Scalar().lower));
    EXPECT_TRUE(SameDouble(again->Scalar().upper, first->Scalar().upper));
  }
}

// ---------------------------------------------------------------------------
// (d) Persistence: the multi-segment container round-trips, and legacy
// single-synopsis (PWH1) blobs still open.

TEST(SegmentPersistence, MultiSegmentSaveOpenRoundTrip) {
  auto db = BuildSegmented(ControlledTable(16000, 91), 4, 1, 4000);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_segments(), 4u);
  std::string path = ::testing::TempDir() + "/segment_test_set.ph";
  ASSERT_TRUE(db->Save(path).ok());

  auto restored = Db::Open(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->num_segments(), 4u);
  EXPECT_EQ(restored->total_rows(), db->total_rows());

  const char* kSqls[] = {
      "SELECT COUNT(*) FROM ctl;",
      "SELECT COUNT(x) FROM ctl WHERE x > 500;",
      "SELECT AVG(y) FROM ctl WHERE x >= 250 AND x < 750;",
      "SELECT SUM(y) FROM ctl WHERE g = 'mid';",
      "SELECT MIN(x) FROM ctl WHERE x > 100;",
      "SELECT MAX(y) FROM ctl WHERE x < 400 OR x > 900;",
      "SELECT MEDIAN(y) FROM ctl WHERE x < 600;",
      "SELECT VAR(y) FROM ctl WHERE g != 'small';",
      "SELECT COUNT(*) FROM ctl GROUP BY g;",
  };
  for (const char* sql : kSqls) {
    auto a = db->ExecuteSql(sql);
    auto b = restored->ExecuteSql(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ASSERT_EQ(a->groups.size(), b->groups.size()) << sql;
    for (size_t g = 0; g < a->groups.size(); ++g) {
      EXPECT_EQ(a->groups[g].label, b->groups[g].label) << sql;
      EXPECT_TRUE(SameDouble(a->groups[g].agg.estimate,
                             b->groups[g].agg.estimate))
          << sql;
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.lower, b->groups[g].agg.lower))
          << sql;
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.upper, b->groups[g].agg.upper))
          << sql;
    }
  }
  std::remove(path.c_str());
}

TEST(SegmentPersistence, LegacySingleSynopsisBlobStillOpens) {
  Table t = ControlledTable(8000, 13);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  // A PR-1-era file is a bare PairwiseHist serialization.
  std::vector<uint8_t> legacy = ph->Serialize();

  auto db = Db::FromBlob(legacy);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->num_segments(), 1u);
  EXPECT_EQ(db->total_rows(), 8000u);

  AqpEngine direct(&ph.value());
  const char* sql = "SELECT AVG(y) FROM ctl WHERE x > 200;";
  auto a = direct.ExecuteSql(sql);
  auto b = db->ExecuteSql(sql);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(SameDouble(a->Scalar().estimate, b->Scalar().estimate));
  EXPECT_TRUE(SameDouble(a->Scalar().lower, b->Scalar().lower));
  EXPECT_TRUE(SameDouble(a->Scalar().upper, b->Scalar().upper));
}

// ---------------------------------------------------------------------------
// (e) Cross-segment categorical dictionary growth.

TEST(SegmentAppend, DictionaryGrowsAcrossSegments) {
  auto make = [](size_t n, const std::vector<std::string>& dict,
                 uint64_t seed) {
    Table t("sensors");
    Column reading("reading", DataType::kFloat64, 1);
    Column status("status", DataType::kCategorical, 0);
    status.SetDictionary(dict);
    Rng rng(seed);
    for (size_t r = 0; r < n; ++r) {
      reading.Append(std::round(rng.Uniform(0, 100) * 10) / 10);
      status.Append(
          static_cast<double>(rng.UniformInt(uint64_t(dict.size()))));
    }
    t.AddColumn(std::move(reading));
    t.AddColumn(std::move(status));
    return t;
  };
  Table base = make(8000, {"ok", "warn"}, 3);
  Table batch = make(3000, {"ok", "fault"}, 4);  // 'fault' is brand new

  DbOptions options;
  options.synopsis.sample_size = 0;
  auto db = Db::FromTable(std::move(base), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Append(batch).ok());
  ASSERT_EQ(db->num_segments(), 2u);  // sealed, not mutated

  // Predicates on old, new and never-seen categories resolve across both
  // segments and track the exact answer.
  for (const char* sql :
       {"SELECT COUNT(reading) FROM sensors WHERE status = 'ok';",
        "SELECT COUNT(reading) FROM sensors WHERE status = 'warn';",
        "SELECT COUNT(reading) FROM sensors WHERE status = 'fault';",
        "SELECT COUNT(reading) FROM sensors WHERE status != 'fault';",
        "SELECT COUNT(reading) FROM sensors WHERE status = 'nope';"}) {
    auto approx = db->ExecuteSql(sql);
    auto exact = db->ExecuteExactSql(sql);
    ASSERT_TRUE(approx.ok() && exact.ok()) << sql;
    EXPECT_NEAR(approx->Scalar().estimate, exact->Scalar().estimate,
                0.02 * 11000 + 1.0)
        << sql;
  }

  // GROUP BY surfaces every label, including the appended-only one.
  auto grouped = db->ExecuteSql(
      "SELECT COUNT(reading) FROM sensors GROUP BY status;");
  ASSERT_TRUE(grouped.ok());
  std::vector<std::string> labels;
  for (const auto& g : grouped->groups) labels.push_back(g.label);
  EXPECT_NE(std::find(labels.begin(), labels.end(), "ok"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "warn"), labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "fault"), labels.end());

  // The canonical dictionary grew append-only: the new segment's transform
  // keeps the old codes and extends.
  const auto& dict = db->synopsis(1).transform(1).dictionary;
  ASSERT_GE(dict.size(), 3u);
  EXPECT_EQ(dict[0], "ok");
  EXPECT_EQ(dict[1], "warn");
  EXPECT_EQ(dict[2], "fault");
}

// ---------------------------------------------------------------------------
// (e') Append modes: seal (default, fresh edges) vs mutate-bins (legacy).

TEST(SegmentAppend, SealVsMutateModes) {
  DbOptions seal;
  seal.synopsis.sample_size = 0;
  auto db_seal = Db::FromTable(ControlledTable(10000, 41), seal);
  ASSERT_TRUE(db_seal.ok());

  DbOptions mutate = seal;
  mutate.append_mode = AppendMode::kMutateBins;
  auto db_mut = Db::FromTable(ControlledTable(10000, 41), mutate);
  ASSERT_TRUE(db_mut.ok());

  auto count_seal = db_seal->Prepare("SELECT COUNT(*) FROM ctl;");
  auto count_mut = db_mut->Prepare("SELECT COUNT(*) FROM ctl;");
  ASSERT_TRUE(count_seal.ok() && count_mut.ok());

  Table batch = ControlledTable(4000, 42);
  ASSERT_TRUE(db_seal->Append(batch).ok());
  ASSERT_TRUE(db_mut->Append(batch).ok());

  EXPECT_EQ(db_seal->num_segments(), 2u);  // sealed a fresh segment
  EXPECT_EQ(db_mut->num_segments(), 1u);   // mutated in place
  EXPECT_EQ(db_seal->total_rows(), 14000u);
  EXPECT_EQ(db_mut->total_rows(), 14000u);

  // Prepared queries survive both append modes and see the new rows.
  auto a = count_seal->Execute();
  auto b = count_mut->Execute();
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->Scalar().estimate, 14000.0);
  EXPECT_DOUBLE_EQ(b->Scalar().estimate, 14000.0);
}

// ---------------------------------------------------------------------------
// (f) Planner pruning: provably-non-matching segments are skipped and
// results are unchanged.

TEST(SegmentPruning, DisjointRangesPruneWithoutChangingResults) {
  // A sorted id column makes each contiguous segment's [min, max] disjoint.
  auto make = [](size_t n) {
    Rng rng(19);
    Table t("ev");
    Column id("id", DataType::kInt64, 0);
    Column v("v", DataType::kFloat64, 1);
    for (size_t r = 0; r < n; ++r) {
      id.Append(static_cast<double>(r));
      v.Append(std::round(rng.Uniform(0, 50) * 10) / 10);
    }
    t.AddColumn(std::move(id));
    t.AddColumn(std::move(v));
    return t;
  };

  DbOptions pruned;
  pruned.synopsis.sample_size = 0;
  pruned.target_segment_rows = 2000;
  pruned.exec_threads = 1;
  DbOptions unpruned = pruned;
  unpruned.prune_segments = false;

  auto db_p = Db::FromTable(make(16000), pruned);
  auto db_u = Db::FromTable(make(16000), unpruned);
  ASSERT_TRUE(db_p.ok() && db_u.ok());
  ASSERT_EQ(db_p->num_segments(), 8u);

  const char* kSqls[] = {
      "SELECT COUNT(id) FROM ev WHERE id < 1500;",
      "SELECT AVG(v) FROM ev WHERE id >= 6000 AND id < 8000;",
      "SELECT SUM(v) FROM ev WHERE id = 12345;",
      "SELECT MAX(v) FROM ev WHERE id > 15000;",
      "SELECT COUNT(id) FROM ev WHERE id > 100000;",  // prunes everything
  };
  for (const char* sql : kSqls) {
    auto pp = db_p->Prepare(sql);
    auto pu = db_u->Prepare(sql);
    ASSERT_TRUE(pp.ok() && pu.ok()) << sql;
    auto a = pp->Execute();
    auto b = pu->Execute();
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ASSERT_EQ(a->groups.size(), b->groups.size()) << sql;
    for (size_t g = 0; g < a->groups.size(); ++g) {
      EXPECT_EQ(a->groups[g].agg.empty_selection,
                b->groups[g].agg.empty_selection)
          << sql;
      EXPECT_TRUE(SameDouble(a->groups[g].agg.estimate,
                             b->groups[g].agg.estimate))
          << sql;
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.lower, b->groups[g].agg.lower))
          << sql;
      EXPECT_TRUE(
          SameDouble(a->groups[g].agg.upper, b->groups[g].agg.upper))
          << sql;
    }
    // The range-restricted queries really did prune.
    EXPECT_GT(pp->plan().PrunedSegments(), 0u) << sql;
    EXPECT_EQ(pu->plan().PrunedSegments(), 0u) << sql;
  }
}

// A kMutateBins append widens the last segment's ranges without growing
// the set: prepared queries must re-validate their prune flags and
// re-admit segments that now contain matching rows.
TEST(SegmentPruning, MutateBinsAppendReAdmitsPrunedSegments) {
  auto make = [](size_t n, double lo, double hi, uint64_t seed) {
    Rng rng(seed);
    Table t("ev");
    Column x("x", DataType::kInt64, 0);
    for (size_t r = 0; r < n; ++r) {
      x.Append(std::floor(rng.Uniform(lo, hi)));
    }
    t.AddColumn(std::move(x));
    return t;
  };
  DbOptions options;
  options.synopsis.sample_size = 0;
  options.target_segment_rows = 2000;
  options.append_mode = AppendMode::kMutateBins;
  auto db = Db::FromTable(make(4000, 0, 100, 5), options);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->num_segments(), 2u);

  auto pq = db->Prepare("SELECT COUNT(x) FROM ev WHERE x > 150;");
  ASSERT_TRUE(pq.ok());
  auto before = pq->Execute();
  ASSERT_TRUE(before.ok());
  EXPECT_DOUBLE_EQ(before->Scalar().estimate, 0.0);
  EXPECT_EQ(pq->plan().PrunedSegments(), 2u);

  // Mutate-bins append folds x in [150, 200) into the LAST segment;
  // values clamp into the fitted bin domain, but the segment is no
  // longer provably empty for x > 150 and must not stay pruned.
  ASSERT_TRUE(db->Append(make(1000, 150, 200, 6)).ok());
  EXPECT_EQ(db->num_segments(), 2u);
  auto after = pq->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_LT(pq->plan().PrunedSegments(), 2u);
  // A freshly prepared identical query agrees with the surviving plan.
  auto fresh = db->ExecuteSql("SELECT COUNT(x) FROM ev WHERE x > 150;");
  ASSERT_TRUE(fresh.ok());
  EXPECT_DOUBLE_EQ(after->Scalar().estimate, fresh->Scalar().estimate);
}

// ---------------------------------------------------------------------------
// MergePartials unit semantics.

TEST(MergePartialsTest, CountSumsAndMinMaxCombine) {
  PartialAggregate a, b, c;
  a.empty = false;
  a.count = 100;
  a.count_lo = 90;
  a.count_hi = 110;
  a.value = AggResult{50, 40, 60, false};
  b.empty = false;
  b.count = 200;
  b.count_lo = 180;
  b.count_hi = 220;
  b.value = AggResult{30, 20, 35, false};
  c.empty = true;  // contributes nothing

  auto count = MergePartials(AggFunc::kCount, {&a, &b, &c});
  EXPECT_DOUBLE_EQ(count.estimate, 300.0);
  EXPECT_DOUBLE_EQ(count.lower, 270.0);
  EXPECT_DOUBLE_EQ(count.upper, 330.0);
  EXPECT_FALSE(count.empty_selection);

  auto sum = MergePartials(AggFunc::kSum, {&a, &b, &c});
  EXPECT_DOUBLE_EQ(sum.estimate, 80.0);
  EXPECT_DOUBLE_EQ(sum.lower, 60.0);
  EXPECT_DOUBLE_EQ(sum.upper, 95.0);

  auto mn = MergePartials(AggFunc::kMin, {&a, &b, &c});
  EXPECT_DOUBLE_EQ(mn.estimate, 30.0);
  EXPECT_DOUBLE_EQ(mn.lower, 20.0);
  auto mx = MergePartials(AggFunc::kMax, {&a, &b, &c});
  EXPECT_DOUBLE_EQ(mx.estimate, 50.0);
  EXPECT_DOUBLE_EQ(mx.upper, 60.0);
}

TEST(MergePartialsTest, AvgIsCountWeightedAndBoundsAreSound) {
  PartialAggregate a, b;
  a.empty = false;
  a.count = 100;
  a.count_lo = 100;
  a.count_hi = 100;
  a.value = AggResult{10, 9, 11, false};
  b.empty = false;
  b.count = 300;
  b.count_lo = 300;
  b.count_hi = 300;
  b.value = AggResult{20, 19, 21, false};
  auto avg = MergePartials(AggFunc::kAvg, {&a, &b});
  EXPECT_DOUBLE_EQ(avg.estimate, (100.0 * 10 + 300.0 * 20) / 400.0);
  // Exact counts: the bounds are the same weighted combination.
  EXPECT_DOUBLE_EQ(avg.lower, (100.0 * 9 + 300.0 * 19) / 400.0);
  EXPECT_DOUBLE_EQ(avg.upper, (100.0 * 11 + 300.0 * 21) / 400.0);

  // Uncertain counts widen toward the extreme segment means.
  a.count_lo = 0;
  a.count_hi = 1000;
  b.count_lo = 0;
  b.count_hi = 1000;
  auto wide = MergePartials(AggFunc::kAvg, {&a, &b});
  EXPECT_LE(wide.lower, 9.0);
  EXPECT_GE(wide.upper, 21.0);
  EXPECT_LE(wide.lower, wide.estimate);
  EXPECT_GE(wide.upper, wide.estimate);
}

TEST(MergePartialsTest, AllEmptyYieldsEmptySelection) {
  PartialAggregate a;
  a.empty = true;
  auto count = MergePartials(AggFunc::kCount, {&a});
  EXPECT_TRUE(count.empty_selection);
  EXPECT_DOUBLE_EQ(count.estimate, 0.0);
  auto avg = MergePartials(AggFunc::kAvg, {&a});
  EXPECT_TRUE(avg.empty_selection);
  EXPECT_TRUE(std::isnan(avg.estimate));
}

TEST(MergePartialsTest, MedianWalksMergedWeightedCdf) {
  // Segment A holds values [0, 10) with weight 10, segment B [10, 20)
  // with weight 30: the merged median sits inside B's bin at f = 1/3.
  PartialAggregate a, b;
  a.empty = false;
  a.count = 10;
  a.median_bins.push_back({0, 10, 10, 10, 10, 5});
  b.empty = false;
  b.count = 30;
  b.median_bins.push_back({10, 20, 30, 30, 30, 5});
  auto med = MergePartials(AggFunc::kMedian, {&a, &b});
  EXPECT_NEAR(med.estimate, 10 + 10.0 / 3.0, 1e-9);
  EXPECT_LE(med.lower, med.estimate);
  EXPECT_GE(med.upper, med.estimate);
}

// ---------------------------------------------------------------------------
// SegmentedTable partitioning invariants.

TEST(SegmentedTableTest, PartitionCoversAllRowsContiguously) {
  Table t = ControlledTable(10007, 3);
  auto st = SegmentedTable::Partition(&t, 1000);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->NumSegments(), 11u);
  size_t expect_begin = 0, total = 0;
  for (size_t i = 0; i < st->NumSegments(); ++i) {
    SegmentSpan s = st->span(i);
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_GT(s.end, s.begin);
    expect_begin = s.end;
    total += s.rows();
    Table seg = st->Materialize(i);
    EXPECT_EQ(seg.NumRows(), s.rows());
    EXPECT_EQ(seg.name(), "ctl");
    // Shared canonical dictionary: the slice keeps the base dictionary.
    EXPECT_EQ(seg.column(2).dictionary(), t.column(2).dictionary());
  }
  EXPECT_EQ(total, t.NumRows());

  auto single = SegmentedTable::Partition(&t, 0);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ(single->NumSegments(), 1u);
  EXPECT_EQ(single->span(0).rows(), t.NumRows());
}

}  // namespace
}  // namespace pairwisehist
