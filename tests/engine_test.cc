// Tests for the PairwiseHist AQP engine: weightings, aggregation accuracy
// on controlled data, bounds behaviour, OR handling, GROUP BY.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "query/engine.h"
#include "query/exact.h"
#include "query/sql_parser.h"

namespace pairwisehist {
namespace {

// A controlled table with known structure: x uniform ints, y = 2x + noise,
// g a 3-way category correlated with x.
Table MakeControlledTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t("ctl");
  Column x("x", DataType::kInt64, 0);
  Column y("y", DataType::kFloat64, 1);
  Column g("g", DataType::kCategorical, 0);
  g.SetDictionary({"small", "mid", "big"});
  for (size_t r = 0; r < n; ++r) {
    double xv = std::floor(rng.Uniform(0, 1000));
    x.Append(xv);
    y.Append(std::round((2 * xv + rng.Normal(0, 25)) * 10) / 10);
    g.Append(xv < 250 ? 0.0 : (xv < 750 ? 1.0 : 2.0));
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  t.AddColumn(std::move(g));
  return t;
}

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(MakeControlledTable(40000, 50));
    PairwiseHistConfig cfg;
    cfg.sample_size = 0;  // full data: isolates estimator error
    auto built = PairwiseHist::BuildFromTable(*table_, cfg);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ph_ = new PairwiseHist(std::move(built).value());
    engine_ = new AqpEngine(ph_);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete ph_;
    delete table_;
  }

  static double Exact(const std::string& sql) {
    auto r = ExecuteExactSql(*table_, sql);
    EXPECT_TRUE(r.ok()) << sql;
    return r->Scalar().estimate;
  }
  static AggResult Approx(const std::string& sql) {
    auto r = engine_->ExecuteSql(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    return r->Scalar();
  }
  static void ExpectClose(const std::string& sql, double tol_pct) {
    double exact = Exact(sql);
    AggResult approx = Approx(sql);
    double err = RelativeErrorPct(exact, approx.estimate);
    EXPECT_LT(err, tol_pct) << sql << "\n exact=" << exact
                            << " approx=" << approx.estimate;
  }

  static Table* table_;
  static PairwiseHist* ph_;
  static AqpEngine* engine_;
};

Table* EngineTest::table_ = nullptr;
PairwiseHist* EngineTest::ph_ = nullptr;
AqpEngine* EngineTest::engine_ = nullptr;

TEST_F(EngineTest, CountRangePredicate) {
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE x < 500;", 2.0);
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE x >= 900;", 5.0);
}

TEST_F(EngineTest, CountCrossColumn) {
  ExpectClose("SELECT COUNT(y) FROM ctl WHERE x < 250;", 3.0);
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE y > 1000;", 3.0);
}

TEST_F(EngineTest, CountConjunction) {
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE x > 200 AND y < 1500;", 5.0);
}

TEST_F(EngineTest, CountDisjunction) {
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE x < 100 OR x > 900;", 5.0);
}

TEST_F(EngineTest, SameColumnRangeConsolidation) {
  // Delayed transformation: two conditions on x intersect exactly.
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE x > 100 AND x < 300;", 3.0);
  double exact = Exact("SELECT COUNT(x) FROM ctl WHERE x > 100 AND x < 300;");
  EXPECT_GT(exact, 0);
}

TEST_F(EngineTest, SameColumnContradictionIsEmpty) {
  auto r = Approx("SELECT COUNT(x) FROM ctl WHERE x > 500 AND x < 100;");
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
  EXPECT_TRUE(r.empty_selection);
}

TEST_F(EngineTest, SumAndAvg) {
  ExpectClose("SELECT SUM(x) FROM ctl WHERE x < 500;", 3.0);
  ExpectClose("SELECT AVG(x) FROM ctl WHERE x < 500;", 3.0);
  ExpectClose("SELECT AVG(y) FROM ctl WHERE x > 500;", 3.0);
  ExpectClose("SELECT SUM(y) FROM ctl;", 2.0);
}

TEST_F(EngineTest, MinMaxTrackRange) {
  // MIN/MAX with a range predicate restricting the domain.
  double exact_min = Exact("SELECT MIN(x) FROM ctl WHERE x > 700;");
  AggResult approx_min = Approx("SELECT MIN(x) FROM ctl WHERE x > 700;");
  EXPECT_NEAR(approx_min.estimate, exact_min, 30);
  double exact_max = Exact("SELECT MAX(x) FROM ctl WHERE x < 300;");
  AggResult approx_max = Approx("SELECT MAX(x) FROM ctl WHERE x < 300;");
  EXPECT_NEAR(approx_max.estimate, exact_max, 30);
}

TEST_F(EngineTest, MedianCloseToExact) {
  ExpectClose("SELECT MEDIAN(x) FROM ctl;", 5.0);
  ExpectClose("SELECT MEDIAN(y) FROM ctl WHERE x > 250;", 6.0);
}

TEST_F(EngineTest, VarReasonable) {
  ExpectClose("SELECT VAR(x) FROM ctl;", 10.0);
}

TEST_F(EngineTest, CountStarVariants) {
  AggResult all = Approx("SELECT COUNT(*) FROM ctl;");
  EXPECT_DOUBLE_EQ(all.estimate, 40000.0);
  ExpectClose("SELECT COUNT(*) FROM ctl WHERE x < 500;", 3.0);
}

TEST_F(EngineTest, BoundsBracketEstimate) {
  for (const char* sql :
       {"SELECT COUNT(x) FROM ctl WHERE x < 500;",
        "SELECT SUM(y) FROM ctl WHERE x > 300;",
        "SELECT AVG(y) FROM ctl WHERE x < 700 AND y > 100;",
        "SELECT MEDIAN(x) FROM ctl WHERE y < 1200;",
        "SELECT VAR(x) FROM ctl WHERE x > 100;"}) {
    AggResult r = Approx(sql);
    EXPECT_LE(r.lower, r.estimate + 1e-9) << sql;
    EXPECT_GE(r.upper, r.estimate - 1e-9) << sql;
  }
}

TEST_F(EngineTest, BoundsContainExactMostOfTheTime) {
  // Fig.-style property: over a mixed set of queries, the bounds should
  // contain the exact answer for a solid majority (the paper reports
  // 70–80% on its workloads; full-data construction should do better).
  const char* sqls[] = {
      "SELECT COUNT(x) FROM ctl WHERE x < 123;",
      "SELECT COUNT(x) FROM ctl WHERE x >= 800;",
      "SELECT COUNT(y) FROM ctl WHERE x > 250 AND x < 750;",
      "SELECT SUM(x) FROM ctl WHERE x < 600;",
      "SELECT SUM(y) FROM ctl WHERE x >= 100;",
      "SELECT AVG(x) FROM ctl WHERE x > 50;",
      "SELECT AVG(y) FROM ctl WHERE x < 900;",
      "SELECT MEDIAN(x) FROM ctl WHERE x > 10;",
      "SELECT MIN(x) FROM ctl WHERE x > 333;",
      "SELECT MAX(x) FROM ctl WHERE x < 777;",
  };
  int correct = 0, total = 0;
  for (const char* sql : sqls) {
    double exact = Exact(sql);
    AggResult r = Approx(sql);
    if (r.empty_selection) continue;
    ++total;
    if (exact >= r.lower - 1e-9 && exact <= r.upper + 1e-9) ++correct;
  }
  EXPECT_GE(correct * 10, total * 7)
      << correct << "/" << total << " bounds correct";
}

TEST_F(EngineTest, GroupByCategorical) {
  auto approx = engine_->ExecuteSql("SELECT AVG(x) FROM ctl GROUP BY g;");
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  auto exact = ExecuteExactSql(*table_, "SELECT AVG(x) FROM ctl GROUP BY g;");
  ASSERT_TRUE(exact.ok());
  ASSERT_EQ(approx->groups.size(), exact->groups.size());
  for (const auto& eg : exact->groups) {
    bool found = false;
    for (const auto& ag : approx->groups) {
      if (ag.label != eg.label) continue;
      found = true;
      EXPECT_LT(RelativeErrorPct(eg.agg.estimate, ag.agg.estimate), 10.0)
          << eg.label;
    }
    EXPECT_TRUE(found) << eg.label;
  }
}

TEST_F(EngineTest, GroupByWithPredicate) {
  auto approx = engine_->ExecuteSql(
      "SELECT COUNT(x) FROM ctl WHERE y > 500 GROUP BY g;");
  ASSERT_TRUE(approx.ok());
  auto exact = ExecuteExactSql(
      *table_, "SELECT COUNT(x) FROM ctl WHERE y > 500 GROUP BY g;");
  ASSERT_TRUE(exact.ok());
  for (const auto& eg : exact->groups) {
    for (const auto& ag : approx->groups) {
      if (ag.label != eg.label) continue;
      // The 'small' group is adversarial here: its exact count is a thin
      // boundary slice where the conditional-independence assumption
      // (Eq. 28) is weakest, so the tolerance is looser than elsewhere.
      EXPECT_LT(RelativeErrorPct(eg.agg.estimate, ag.agg.estimate), 30.0)
          << eg.label;
    }
  }
}

TEST_F(EngineTest, CategoricalEqualityPredicate) {
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE g = 'mid';", 5.0);
  ExpectClose("SELECT AVG(x) FROM ctl WHERE g = 'big';", 6.0);
  ExpectClose("SELECT COUNT(x) FROM ctl WHERE g != 'small';", 5.0);
}

TEST_F(EngineTest, UnknownCategoryMatchesNothing) {
  AggResult r = Approx("SELECT COUNT(x) FROM ctl WHERE g = 'zzz';");
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST_F(EngineTest, UnknownColumnFails) {
  EXPECT_FALSE(engine_->ExecuteSql("SELECT COUNT(zz) FROM ctl;").ok());
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT COUNT(x) FROM ctl WHERE zz > 1;").ok());
}

TEST_F(EngineTest, NestedAndOrCombination) {
  ExpectClose(
      "SELECT COUNT(x) FROM ctl WHERE (x < 200 OR x > 800) AND y > 100;",
      8.0);
}

TEST_F(EngineTest, WeightingsMatchManualExpectation) {
  // With no predicate, the weightings equal the 1-d counts.
  auto q = ParseSql("SELECT COUNT(x) FROM ctl;");
  ASSERT_TRUE(q.ok());
  auto wt = engine_->ComputeWeightings(0, *q);
  ASSERT_TRUE(wt.ok());
  const HistogramDim& h = ph_->hist1d(0);
  ASSERT_EQ(wt->w.size(), h.NumBins());
  for (size_t t = 0; t < h.NumBins(); ++t) {
    EXPECT_DOUBLE_EQ(wt->w[t], static_cast<double>(h.counts[t]));
  }
  EXPECT_DOUBLE_EQ(wt->Total(), 40000.0);
}

// Sampling widening: a sampled synopsis must produce wider bounds.
TEST(EngineSamplingTest, SampledBoundsWiderThanFullData) {
  Table t = MakeControlledTable(30000, 51);
  PairwiseHistConfig full_cfg;
  full_cfg.sample_size = 0;
  PairwiseHistConfig sampled_cfg;
  sampled_cfg.sample_size = 3000;
  auto full = PairwiseHist::BuildFromTable(t, full_cfg);
  auto sampled = PairwiseHist::BuildFromTable(t, sampled_cfg);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sampled.ok());
  AqpEngine ef(&full.value()), es(&sampled.value());
  const char* sql = "SELECT COUNT(x) FROM ctl WHERE x < 400;";
  auto rf = ef.ExecuteSql(sql);
  auto rs = es.ExecuteSql(sql);
  ASSERT_TRUE(rf.ok());
  ASSERT_TRUE(rs.ok());
  double width_f = rf->Scalar().upper - rf->Scalar().lower;
  double width_s = rs->Scalar().upper - rs->Scalar().lower;
  EXPECT_GT(width_s, width_f);
  // And the sampled estimate is still accurate-ish.
  double exact = ExecuteExactSql(t, sql)->Scalar().estimate;
  EXPECT_LT(RelativeErrorPct(exact, rs->Scalar().estimate), 10.0);
}

TEST(EngineSamplingTest, CountScalesBySamplingRatio) {
  Table t = MakeControlledTable(20000, 52);
  PairwiseHistConfig cfg;
  cfg.sample_size = 2000;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto r = engine.ExecuteSql("SELECT COUNT(x) FROM ctl;");
  ASSERT_TRUE(r.ok());
  // Full-table count recovered from the sample through ρ.
  EXPECT_NEAR(r->Scalar().estimate, 20000.0, 1.0);
}

}  // namespace
}  // namespace pairwisehist
