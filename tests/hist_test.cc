// Tests for the histogram core: uniformity testing and recursive
// refinement in one and two dimensions.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "hist/histogram.h"
#include "hist/uniformity.h"

namespace pairwisehist {
namespace {

std::vector<double> UniformValues(size_t n, double lo, double hi,
                                  uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::floor(rng.Uniform(lo, hi));
  }
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<double> BimodalValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    double centre = rng.Bernoulli(0.5) ? 100.0 : 900.0;
    v[i] = std::floor(std::clamp(rng.Normal(centre, 20.0), 0.0, 1000.0));
  }
  std::sort(v.begin(), v.end());
  return v;
}

TEST(Chi2CriticalCacheTest, MatchesDirectComputation) {
  Chi2CriticalCache cache(0.01);
  EXPECT_NEAR(cache.Get(1), Chi2CriticalValue(0.01, 1), 1e-9);
  EXPECT_NEAR(cache.Get(9), Chi2CriticalValue(0.01, 9), 1e-9);
  // Cached value identical on second call.
  EXPECT_DOUBLE_EQ(cache.Get(9), cache.Get(9));
}

TEST(UniformityTest, UniformDataPasses) {
  Chi2CriticalCache cache(0.001);
  auto v = UniformValues(5000, 0, 1000, 3);
  uint64_t u = CountUniqueSorted(v.data(), v.data() + v.size());
  UniformityResult r =
      TestUniform(v.data(), v.data() + v.size(), 0, 1000, u, cache);
  EXPECT_TRUE(r.uniform);
  EXPECT_GT(r.sub_bins, 2);
}

TEST(UniformityTest, BimodalDataFails) {
  Chi2CriticalCache cache(0.001);
  auto v = BimodalValues(5000, 3);
  uint64_t u = CountUniqueSorted(v.data(), v.data() + v.size());
  UniformityResult r =
      TestUniform(v.data(), v.data() + v.size(), 0, 1001, u, cache);
  EXPECT_FALSE(r.uniform);
  EXPECT_GT(r.Ratio(), 1.0);
}

TEST(UniformityTest, EmptyAndSingletonPass) {
  Chi2CriticalCache cache(0.001);
  std::vector<double> empty;
  EXPECT_TRUE(TestUniform(empty.data(), empty.data(), 0, 10, 0, cache)
                  .uniform);
  std::vector<double> one{5.0};
  EXPECT_TRUE(
      TestUniform(one.data(), one.data() + 1, 0, 10, 1, cache).uniform);
}

TEST(UniformityTest, CountUniqueSorted) {
  std::vector<double> v{1, 1, 2, 3, 3, 3, 9};
  EXPECT_EQ(CountUniqueSorted(v.data(), v.data() + v.size()), 4u);
  EXPECT_EQ(CountUniqueSorted(v.data(), v.data()), 0u);
}

TEST(UniformityTest, LooseAlphaSplitsMore) {
  // A mildly non-uniform distribution: rejected at α=0.1 long before
  // α=0.0001 (higher α ⇒ lower critical value ⇒ easier rejection).
  Rng rng(5);
  std::vector<double> v(3000);
  for (auto& x : v) {
    x = std::floor(1000.0 * std::pow(rng.Uniform(), 1.3));
  }
  std::sort(v.begin(), v.end());
  uint64_t u = CountUniqueSorted(v.data(), v.data() + v.size());
  Chi2CriticalCache strict(0.0000001), loose(0.1);
  UniformityResult rs =
      TestUniform(v.data(), v.data() + v.size(), 0, 1000, u, strict);
  UniformityResult rl =
      TestUniform(v.data(), v.data() + v.size(), 0, 1000, u, loose);
  EXPECT_LT(rl.critical, rs.critical);
  // The loose test must reject at least as often as the strict one.
  EXPECT_TRUE(rs.uniform || !rl.uniform);
}

// ---------------------------------------------------------------------------
// 1-d refinement

RefineConfig TestConfig(uint64_t m = 100) {
  RefineConfig c;
  c.min_points = m;
  c.alpha = 0.001;
  return c;
}

TEST(Refine1DTest, StructuralInvariants) {
  Chi2CriticalCache cache(0.001);
  auto v = BimodalValues(20000, 7);
  HistogramDim h = BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(200),
                                    cache);
  ASSERT_GE(h.NumBins(), 2u) << "bimodal data must split";
  // Edges ascending, arrays parallel.
  ASSERT_EQ(h.edges.size(), h.NumBins() + 1);
  ASSERT_EQ(h.v_min.size(), h.NumBins());
  ASSERT_EQ(h.v_max.size(), h.NumBins());
  ASSERT_EQ(h.unique.size(), h.NumBins());
  for (size_t t = 1; t < h.edges.size(); ++t) {
    ASSERT_LT(h.edges[t - 1], h.edges[t]);
  }
  // Counts sum to n; metadata inside edges.
  EXPECT_EQ(h.TotalCount(), v.size());
  for (size_t t = 0; t < h.NumBins(); ++t) {
    if (h.counts[t] == 0) continue;
    ASSERT_GE(h.v_min[t], h.edges[t]) << t;
    ASSERT_LT(h.v_max[t], h.edges[t + 1] + 1e-9) << t;
    ASSERT_LE(h.v_min[t], h.v_max[t]);
    ASSERT_GE(h.unique[t], 1u);
    ASSERT_LE(h.unique[t], h.counts[t]);
  }
}

TEST(Refine1DTest, UniformDataStaysOneBin) {
  Chi2CriticalCache cache(0.001);
  auto v = UniformValues(20000, 0, 1000, 8);
  HistogramDim h =
      BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(200), cache);
  EXPECT_EQ(h.NumBins(), 1u);
}

TEST(Refine1DTest, SmallBinsNotSplit) {
  Chi2CriticalCache cache(0.001);
  auto v = BimodalValues(50, 9);  // fewer than M points
  HistogramDim h =
      BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(100), cache);
  EXPECT_EQ(h.NumBins(), 1u);
}

TEST(Refine1DTest, SingleUniqueValueBin) {
  Chi2CriticalCache cache(0.001);
  std::vector<double> v(500, 42.0);
  HistogramDim h = BuildHistogram1D(v, {0.0, 100.0}, TestConfig(100), cache);
  EXPECT_EQ(h.NumBins(), 1u);
  EXPECT_EQ(h.unique[0], 1u);
  EXPECT_DOUBLE_EQ(h.v_min[0], 42.0);
  EXPECT_DOUBLE_EQ(h.v_max[0], 42.0);
  EXPECT_DOUBLE_EQ(h.Midpoint(0), 42.0);
}

TEST(Refine1DTest, SeededEdgesPreserved) {
  Chi2CriticalCache cache(0.001);
  auto v = UniformValues(5000, 0, 1000, 10);
  HistogramDim h = BuildHistogram1D(v, {0.0, 250.0, 500.0, 750.0, 1001.0},
                                    TestConfig(100), cache);
  // Uniform data: no splits beyond the seeds.
  EXPECT_EQ(h.NumBins(), 4u);
  EXPECT_DOUBLE_EQ(h.edges[1], 250.0);
  EXPECT_DOUBLE_EQ(h.edges[2], 500.0);
}

TEST(Refine1DTest, EmptySeedBinKeptWithZeroCount) {
  Chi2CriticalCache cache(0.001);
  std::vector<double> v{10, 11, 12, 13, 14};
  HistogramDim h = BuildHistogram1D(v, {0.0, 5.0, 20.0}, TestConfig(100),
                                    cache);
  ASSERT_EQ(h.NumBins(), 2u);
  EXPECT_EQ(h.counts[0], 0u);
  EXPECT_EQ(h.unique[0], 0u);
  EXPECT_EQ(h.counts[1], 5u);
}

TEST(Refine1DTest, BinIndexLookup) {
  Chi2CriticalCache cache(0.001);
  auto v = UniformValues(1000, 0, 100, 11);
  HistogramDim h = BuildHistogram1D(v, {0.0, 50.0, 101.0}, TestConfig(100),
                                    cache);
  EXPECT_EQ(h.BinIndex(0.0), 0u);
  EXPECT_EQ(h.BinIndex(49.9), 0u);
  EXPECT_EQ(h.BinIndex(50.0), 1u);
  EXPECT_EQ(h.BinIndex(100.0), 1u);
  EXPECT_EQ(h.BinIndex(-5.0), 0u);    // clamped
  EXPECT_EQ(h.BinIndex(5000.0), 1u);  // clamped
}

TEST(Refine1DTest, EdgesOnHalfIntegerGrid) {
  Chi2CriticalCache cache(0.001);
  auto v = BimodalValues(30000, 12);
  HistogramDim h =
      BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(300), cache);
  for (double e : h.edges) {
    double doubled = e * 2.0;
    EXPECT_NEAR(doubled, std::round(doubled), 1e-9) << e;
  }
}

TEST(Refine1DTest, DeeperSplitsWithSmallerM) {
  Chi2CriticalCache cache(0.001);
  auto v = BimodalValues(30000, 13);
  HistogramDim coarse =
      BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(5000), cache);
  HistogramDim fine =
      BuildHistogram1D(v, {0.0, 1001.0}, TestConfig(100), cache);
  EXPECT_GE(fine.NumBins(), coarse.NumBins());
}

// ---------------------------------------------------------------------------
// 2-d refinement

TEST(Refine2DTest, CorrelatedDataRefinesCells) {
  // xi is marginally uniform, but conditionally concentrated given xj's
  // regime — RefineBin2D tests marginal uniformity inside each initial
  // cell, and the cells here are conditionally skewed, so the pair
  // histogram must gain edges. (A jointly-correlated distribution with
  // uniform conditional marginals would legitimately stay unsplit; that is
  // a property of the paper's per-dimension test.)
  Rng rng(14);
  size_t n = 30000;
  std::vector<double> xi(n), xj(n);
  for (size_t r = 0; r < n; ++r) {
    double u = rng.Uniform(0, 1000);
    xi[r] = std::floor(u);
    xj[r] = std::floor(u < 500 ? rng.Uniform(0, 100.0)
                               : rng.Uniform(900.0, 1000.0));
  }
  Chi2CriticalCache cache(0.001);
  std::vector<double> si = xi, sj = xj;
  std::sort(si.begin(), si.end());
  std::sort(sj.begin(), sj.end());
  HistogramDim h1i =
      BuildHistogram1D(si, {0.0, 1000.0}, TestConfig(500), cache);
  HistogramDim h1j =
      BuildHistogram1D(sj, {0.0, 1000.0}, TestConfig(500), cache);
  PairHistogram ph = BuildPairHistogram(xi, xj, 0, 1, h1i, h1j,
                                        TestConfig(500), cache);
  // Strong dependence ⇒ 2-d refinement must add edges beyond the 1-d grid.
  EXPECT_GT(ph.dim_i.NumBins() + ph.dim_j.NumBins(),
            h1i.NumBins() + h1j.NumBins());
  // Cell counts sum to n.
  uint64_t total = 0;
  for (uint64_t c : ph.cells) total += c;
  EXPECT_EQ(total, n);
  // Marginals match dim counts.
  for (size_t ti = 0; ti < ph.dim_i.NumBins(); ++ti) {
    uint64_t row_sum = 0;
    for (size_t tj = 0; tj < ph.dim_j.NumBins(); ++tj) {
      row_sum += ph.CellCount(ti, tj);
    }
    ASSERT_EQ(row_sum, ph.dim_i.counts[ti]) << ti;
  }
}

TEST(Refine2DTest, ParentMappingConsistent) {
  Rng rng(15);
  size_t n = 10000;
  std::vector<double> xi(n), xj(n);
  for (size_t r = 0; r < n; ++r) {
    xi[r] = std::floor(rng.Uniform(0, 500));
    xj[r] = std::floor(xi[r] * 2 + rng.Uniform(0, 50));
  }
  Chi2CriticalCache cache(0.001);
  std::vector<double> si = xi, sj = xj;
  std::sort(si.begin(), si.end());
  std::sort(sj.begin(), sj.end());
  HistogramDim h1i = BuildHistogram1D(si, {0.0, 501.0}, TestConfig(300),
                                      cache);
  HistogramDim h1j = BuildHistogram1D(sj, {0.0, 1051.0}, TestConfig(300),
                                      cache);
  PairHistogram ph = BuildPairHistogram(xi, xj, 0, 1, h1i, h1j,
                                        TestConfig(300), cache);
  ASSERT_EQ(ph.dim_i.parent.size(), ph.dim_i.NumBins());
  for (size_t t = 0; t < ph.dim_i.NumBins(); ++t) {
    size_t parent = ph.dim_i.parent[t];
    ASSERT_LT(parent, h1i.NumBins());
    // Refined bin lies inside its parent 1-d bin.
    ASSERT_GE(ph.dim_i.edges[t], h1i.edges[parent] - 1e-9);
    ASSERT_LE(ph.dim_i.edges[t + 1], h1i.edges[parent + 1] + 1e-9);
  }
}

TEST(Refine2DTest, IndependentUniformDataAddsNoEdges) {
  Rng rng(16);
  size_t n = 20000;
  std::vector<double> xi(n), xj(n);
  for (size_t r = 0; r < n; ++r) {
    xi[r] = std::floor(rng.Uniform(0, 800));
    xj[r] = std::floor(rng.Uniform(0, 800));
  }
  Chi2CriticalCache cache(0.001);
  std::vector<double> si = xi, sj = xj;
  std::sort(si.begin(), si.end());
  std::sort(sj.begin(), sj.end());
  HistogramDim h1i = BuildHistogram1D(si, {0.0, 801.0}, TestConfig(500),
                                      cache);
  HistogramDim h1j = BuildHistogram1D(sj, {0.0, 801.0}, TestConfig(500),
                                      cache);
  PairHistogram ph = BuildPairHistogram(xi, xj, 0, 1, h1i, h1j,
                                        TestConfig(500), cache);
  EXPECT_EQ(ph.dim_i.NumBins(), h1i.NumBins());
  EXPECT_EQ(ph.dim_j.NumBins(), h1j.NumBins());
}

TEST(Refine2DTest, EmptyInputProducesEmptyCells) {
  Chi2CriticalCache cache(0.001);
  std::vector<double> empty;
  HistogramDim h1;
  h1.edges = {0.0, 10.0};
  h1.counts = {0};
  h1.v_min = {0.0};
  h1.v_max = {10.0};
  h1.unique = {0};
  PairHistogram ph = BuildPairHistogram(empty, empty, 0, 1, h1, h1,
                                        TestConfig(100), cache);
  EXPECT_EQ(ph.cells.size(), 1u);
  EXPECT_EQ(ph.cells[0], 0u);
}

}  // namespace
}  // namespace pairwisehist
