// Adversarial serving-layer tests: malformed-input fuzz corpora for the
// JSON and CSV entry points, raw-socket framing abuse (garbage requests,
// oversized headers, huge Content-Length), deadline enforcement, load
// shedding under injected slowness, client retry-with-backoff, idle-peer
// reaping, and graceful drain. Runs in the ASan CI leg — "never crashes"
// here means never crashes under ASan.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/failpoint.h"
#include "datagen/datasets.h"
#include "storage/csv.h"
#include "serve/http_client.h"
#include "serve/http_io.h"
#include "serve/http_server.h"
#include "serve/service.h"
#include "serve/serving_db.h"

namespace pairwisehist {
namespace {

Db MakePowerDb(size_t rows) {
  auto db = Db::FromGenerator("power", rows, 7);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// A small schema-complete CSV batch for /append.
std::string SmallCsv(uint64_t seed) {
  auto batch = MakeDataset("power", 50, seed);
  EXPECT_TRUE(batch.ok());
  return ToCsvString(batch.value());
}

HttpRequest MakeReq(
    const std::string& method, const std::string& path,
    const std::string& body = "",
    const std::vector<std::pair<std::string, std::string>>& headers = {}) {
  HttpRequest req;
  req.method = method;
  req.path = path;
  req.body = body;
  req.headers = headers;
  req.arrival = std::chrono::steady_clock::now();
  return req;
}

// Raw-socket helper: sends exact wire bytes, returns the response status
// (-1 when the server closed without answering).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  int SendAndReadStatus(const std::string& wire) {
    HttpConn conn(fd_);
    if (!conn.Write(wire).ok()) return -1;
    HttpMessage msg;
    bool closed = false;
    if (!conn.Read(&msg, &closed).ok() || closed) return -1;
    // "HTTP/1.1 400 Bad Request"
    const size_t sp = msg.start_line.find(' ');
    if (sp == std::string::npos) return -1;
    return std::atoi(msg.start_line.c_str() + sp + 1);
  }

  /// True when the peer has closed (recv sees EOF).
  bool PeerClosed(uint32_t wait_ms) {
    timeval tv{};
    tv.tv_sec = wait_ms / 1000;
    tv.tv_usec = (wait_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char c;
    return ::recv(fd_, &c, 1, 0) == 0;
  }

 private:
  int fd_ = -1;
};

// ---------------------------------------------------------------------------
// Malformed-input fuzz: every corpus entry must answer 4xx — never 5xx,
// never a crash, and the serving stack must stay usable afterwards.

class ServeFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    serving_ = std::make_unique<ServingDb>(MakePowerDb(4000));
    handler_ = MakeServingHandler(serving_.get());
  }
  void ExpectRejected(const std::string& path, const std::string& body,
                      const char* tag) {
    const HttpResponse resp = handler_(MakeReq("POST", path, body));
    EXPECT_GE(resp.status, 400) << tag << ": " << resp.body;
    EXPECT_LT(resp.status, 500) << tag << ": " << resp.body;
  }
  void ExpectAlive() {
    const HttpResponse resp = handler_(
        MakeReq("POST", "/query", "{\"sql\":\"SELECT COUNT(*) FROM power;\"}"));
    EXPECT_EQ(resp.status, 200) << resp.body;
  }

  std::unique_ptr<ServingDb> serving_;
  HttpServer::Handler handler_;
};

TEST_F(ServeFuzz, MalformedJsonNeverCrashesAlwaysRejected) {
  const std::vector<std::string> corpus = {
      "",                                  // empty body
      "{",                                 // truncated object
      "{\"sql\":",                         // truncated value
      "{\"sql\": \"SELECT",                // unterminated string
      "{\"sql\": \"a\\",                   // dangling escape
      "{\"sql\": \"\\u12",                 // truncated unicode escape
      "{\"sql\": \"\\ud800\"}",            // lone surrogate
      "\"just a string\"",                 // top level not an object
      "42",                                // top level number
      "[1,2,3]",                           // top level array
      "{\"sql\": 42}",                     // sql not a string
      "{\"sql\": null}",                   // sql null
      "{\"nosql\": \"x\"}",                // missing key
      "{\"sql\": 42, \"sql\": [1]}",       // duplicate keys, both invalid
      "{\"sql\": 1e99999}",                // number overflow
      "{\"sql\": -1e-99999}",              // number underflow
      "{\"sql\": \"x\"} trailing",         // trailing garbage
      "{\"sql\": \"x\",}",                 // trailing comma
      std::string("{\"sql\":\"a\0b\"}", 14),  // embedded NUL
      "{\"sql\": \"\xff\xfe invalid utf8\"}",  // bad UTF-8 bytes
      std::string(100, '['),               // deep unbalanced nesting
      "{\"sql\": tru}",                    // broken literal
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    ExpectRejected("/query", corpus[i],
                   ("json corpus " + std::to_string(i)).c_str());
  }
  const std::vector<std::string> batch_corpus = {
      "{\"sqls\": \"not a list\"}",
      "{\"sqls\": {}}",
      "{\"sqls\": [42]}",
      "{\"sqls\": [\"SELECT COUNT(*) FROM power;\", 7]}",
      "{}",
  };
  for (size_t i = 0; i < batch_corpus.size(); ++i) {
    ExpectRejected("/batch", batch_corpus[i],
                   ("batch corpus " + std::to_string(i)).c_str());
  }
  ExpectAlive();
}

TEST_F(ServeFuzz, MalformedCsvNeverCrashesAlwaysRejected) {
  const std::vector<std::string> corpus = {
      "",                                      // empty body
      "\n\n\n",                                // blank lines only
      "wrong,schema\n1,2\n",                   // unknown columns
      "global_active_power\nnot_a_number\n",   // unparsable numeric
      "global_active_power,voltage\n1.5\n",    // short row
      "global_active_power,voltage\n1.5,2,3\n",  // long row
      "global_active_power\n\xff\xfe\n",       // bad UTF-8 in a field
      "global_active_power\n1.5",              // truncated final row (no \n)
      std::string("global_active_power\n1\0.5\n", 25),  // embedded NUL
      "\"unterminated quote\nglobal_active_power\n1\n",
  };
  for (size_t i = 0; i < corpus.size(); ++i) {
    const HttpRequest req = MakeReq("POST", "/append", corpus[i]);
    const HttpResponse resp = handler_(req);
    EXPECT_GE(resp.status, 400) << "csv corpus " << i << ": " << resp.body;
    EXPECT_LT(resp.status, 500) << "csv corpus " << i << ": " << resp.body;
  }
  // Oddball-but-parseable inputs may be accepted or rejected; they must
  // simply never 5xx or corrupt the instance.
  const std::vector<std::string> weird = {
      "global_active_power\n1e308\n",          // near-overflow double
      "global_active_power\n-1e-320\n",        // subnormal
      "global_active_power\n999999999999999999999999\n",
  };
  for (size_t i = 0; i < weird.size(); ++i) {
    const HttpResponse resp = handler_(MakeReq("POST", "/append", weird[i]));
    EXPECT_NE(resp.status / 100, 5) << "weird corpus " << i << ": "
                                    << resp.body;
  }
  EXPECT_EQ(serving_->Stats().errors, 0u);  // handler errors are client 4xx
  ExpectAlive();
}

// ---------------------------------------------------------------------------
// Raw-socket framing abuse against a live server.

class RawSocketAbuse : public ::testing::Test {
 protected:
  void SetUp() override {
    serving_ = std::make_unique<ServingDb>(MakePowerDb(4000));
    HttpServerOptions opts;
    opts.idle_timeout_ms = 0;  // tests control their own lifetimes
    server_ = std::make_unique<HttpServer>(MakeServingHandler(serving_.get()),
                                           nullptr, opts);
    ASSERT_TRUE(server_->Start(0).ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<ServingDb> serving_;
  std::unique_ptr<HttpServer> server_;
};

TEST_F(RawSocketAbuse, GarbageRequestAnswers400AndCloses) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn.SendAndReadStatus("THIS IS NOT HTTP\r\n\r\n"), 400);
  EXPECT_TRUE(conn.PeerClosed(2000));
  EXPECT_GE(server_->malformed_closed(), 1u);

  // A well-formed client on a fresh connection is unaffected.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
  auto resp = client.Request("POST", "/query",
                             "{\"sql\":\"SELECT COUNT(*) FROM power;\"}");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
}

TEST_F(RawSocketAbuse, MissingVersionAndBadContentLengthAre400) {
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(conn.SendAndReadStatus("GET /stats\r\n\r\n"), 400);
  }
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(conn.SendAndReadStatus("POST /query HTTP/1.1\r\n"
                                     "Content-Length: banana\r\n\r\n"),
              400);
  }
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    EXPECT_EQ(conn.SendAndReadStatus("POST /query HTTP/1.1\r\n"
                                     "no-colon-header\r\n\r\n"),
              400);
  }
}

TEST_F(RawSocketAbuse, OversizedHeadersAnswer413BeforeBuffering) {
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.ok());
  std::string wire = "GET /stats HTTP/1.1\r\nX-Filler: ";
  wire.append(kMaxHttpHeaderBytes + 1024, 'a');
  wire += "\r\n\r\n";
  EXPECT_EQ(conn.SendAndReadStatus(wire), 413);
  EXPECT_TRUE(conn.PeerClosed(2000));
}

TEST_F(RawSocketAbuse, HugeContentLengthAnswers413WithoutWaitingForBody) {
  // The declared body never arrives — the cap must trip on the header
  // alone, not after buffering 64 MB.
  RawConn conn(server_->port());
  ASSERT_TRUE(conn.ok());
  EXPECT_EQ(conn.SendAndReadStatus("POST /append HTTP/1.1\r\n"
                                   "Content-Length: 999999999999\r\n\r\n"),
            413);
  RawConn conn2(server_->port());
  ASSERT_TRUE(conn2.ok());
  const std::string just_over =
      "POST /append HTTP/1.1\r\nContent-Length: " +
      std::to_string(kMaxHttpBodyBytes + 1) + "\r\n\r\n";
  EXPECT_EQ(conn2.SendAndReadStatus(just_over), 413);
}

TEST_F(RawSocketAbuse, IdlePeersAreReaped) {
  HttpServerOptions opts;
  opts.idle_timeout_ms = 50;
  ServingDb serving(MakePowerDb(4000));
  HttpServer server(MakeServingHandler(&serving), nullptr, opts);
  ASSERT_TRUE(server.Start(0).ok());

  RawConn idle(server.port());
  ASSERT_TRUE(idle.ok());
  // Poll slices are 100 ms; well within 2 s the reaper must close us.
  EXPECT_TRUE(idle.PeerClosed(2000));
  EXPECT_GE(server.idle_reaped(), 1u);

  // Reconnecting works (the reap freed the slot, nothing leaked).
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto resp = client.Request("GET", "/stats");
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Deadlines.

TEST(ServeDeadline, ExpiredDeadlineAnswers408WithoutExecuting) {
  ServingDb serving(MakePowerDb(4000));
  ServiceGate gate;
  auto handler = MakeServingHandler(&serving, &gate);

  HttpRequest req = MakeReq("POST", "/query",
                            "{\"sql\":\"SELECT COUNT(*) FROM power;\"}",
                            {{"X-Deadline-Ms", "10"}});
  req.arrival = std::chrono::steady_clock::now() -
                std::chrono::milliseconds(100);
  const HttpResponse resp = handler(req);
  EXPECT_EQ(resp.status, 408) << resp.body;
  EXPECT_EQ(gate.stats().timeouts, 1u);
  EXPECT_EQ(serving.Stats().queries, 0u);  // never reached execution

  // A generous deadline executes normally.
  const HttpResponse ok = handler(MakeReq(
      "POST", "/query", "{\"sql\":\"SELECT COUNT(*) FROM power;\"}",
      {{"X-Deadline-Ms", "60000"}}));
  EXPECT_EQ(ok.status, 200);
}

TEST(ServeDeadline, DefaultDeadlineAppliesWithoutHeader) {
  ServingDb serving(MakePowerDb(4000));
  ServiceLimits limits;
  limits.default_deadline_ms = 10;
  ServiceGate gate(limits);
  auto handler = MakeServingHandler(&serving, &gate);

  HttpRequest req =
      MakeReq("POST", "/query", "{\"sql\":\"SELECT COUNT(*) FROM power;\"}");
  req.arrival =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(100);
  EXPECT_EQ(handler(req).status, 408);
  // /stats is exempt from deadlines and admission — it must stay
  // observable exactly when the system is in trouble.
  HttpRequest stats = MakeReq("GET", "/stats");
  stats.arrival =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(100);
  EXPECT_EQ(handler(stats).status, 200);
}

// ---------------------------------------------------------------------------
// Load shedding.

class ServeShedding : public ::testing::Test {
 protected:
  void SetUp() override {
    serving_ = std::make_unique<ServingDb>(MakePowerDb(4000));
    ServiceLimits limits;
    limits.max_inflight = 4;
    limits.max_inflight_appends = 1;
    limits.retry_after_ms = 1500;
    gate_ = std::make_unique<ServiceGate>(limits);
    server_ = std::make_unique<HttpServer>(
        MakeServingHandler(serving_.get(), gate_.get()));
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }
  void TearDown() override {
    failpoint::ClearAll();
    server_->Stop();
  }

  std::unique_ptr<ServingDb> serving_;
  std::unique_ptr<ServiceGate> gate_;
  std::unique_ptr<HttpServer> server_;
  HttpClient client_;
};

TEST_F(ServeShedding, AppendsShedBeforeReads) {
  // Hit 1 of service.handle sleeps, pinning the single append slot while
  // the rest of the test runs.
  ASSERT_TRUE(failpoint::Set("service.handle", "delay:700@1").ok());
  std::thread occupier([&] {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    auto resp = c.Request("POST", "/append", SmallCsv(1), "text/csv");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200) << resp->body;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // Second append: shed with Retry-After. Reads still admitted.
  auto shed = client_.Request("POST", "/append", SmallCsv(2), "text/csv");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->status, 503) << shed->body;
  const std::string* retry_after = nullptr;
  for (const auto& h : shed->headers) {
    if (h.first == "Retry-After") retry_after = &h.second;
  }
  ASSERT_NE(retry_after, nullptr) << "503 must carry Retry-After";
  EXPECT_EQ(*retry_after, "2");  // 1500 ms rounded up to whole seconds

  auto read = client_.Request("POST", "/query",
                              "{\"sql\":\"SELECT COUNT(*) FROM power;\"}");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200) << read->body;

  occupier.join();
  const ServiceGate::Stats stats = gate_->stats();
  EXPECT_EQ(stats.shed_appends, 1u);
  EXPECT_EQ(stats.shed_reads, 0u);
  EXPECT_EQ(stats.inflight, 0u);  // everything released
}

TEST_F(ServeShedding, RetryWithBackoffSucceedsOnceCapacityFrees) {
  ASSERT_TRUE(failpoint::Set("service.handle", "delay:500@1").ok());
  std::thread occupier([&] {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    auto resp = c.Request("POST", "/append", SmallCsv(1), "text/csv");
    ASSERT_TRUE(resp.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  HttpRetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 100;
  policy.max_backoff_ms = 300;
  auto resp = client_.RequestWithRetry("POST", "/append", SmallCsv(2),
                                       "text/csv", {}, policy);
  occupier.join();
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200) << resp->body;
  EXPECT_GE(client_.retries(), 1u);
  EXPECT_GE(gate_->stats().shed_appends, 1u);
}

TEST_F(ServeShedding, RetryGivesUpAfterMaxAttempts) {
  ASSERT_TRUE(failpoint::Set("service.handle", "delay:1500@1").ok());
  std::thread occupier([&] {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", server_->port()).ok());
    (void)c.Request("POST", "/append", SmallCsv(1), "text/csv");
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  HttpRetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff_ms = 20;
  policy.max_backoff_ms = 40;
  auto resp = client_.RequestWithRetry("POST", "/append", SmallCsv(2),
                                       "text/csv", {}, policy);
  ASSERT_TRUE(resp.ok());  // transport worked; the answer is still a 503
  EXPECT_EQ(resp->status, 503);
  occupier.join();
}

// ---------------------------------------------------------------------------
// Graceful drain.

TEST(ServeDrain, InflightRequestsFinishNewConnectionsRefused) {
  ServingDb serving(MakePowerDb(4000));
  ServiceGate gate;
  HttpServer server(MakeServingHandler(&serving, &gate));
  ASSERT_TRUE(server.Start(0).ok());
  const uint16_t port = server.port();

  ASSERT_TRUE(failpoint::Set("service.handle", "delay:400@1").ok());
  std::atomic<int> slow_status{0};
  std::thread slow([&] {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", port).ok());
    auto resp = c.Request("POST", "/query",
                          "{\"sql\":\"SELECT COUNT(*) FROM power;\"}");
    if (resp.ok()) slow_status.store(resp->status);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  server.Drain(/*grace_ms=*/5000);
  slow.join();
  failpoint::ClearAll();

  // The in-flight request completed with its real answer during drain.
  EXPECT_EQ(slow_status.load(), 200);
  EXPECT_FALSE(server.running());

  // New connections are refused (or immediately closed) after drain.
  HttpClient late;
  Status connect_st = late.Connect("127.0.0.1", port);
  if (connect_st.ok()) {
    auto resp = late.Request("GET", "/stats");
    EXPECT_FALSE(resp.ok());
  }
}

}  // namespace
}  // namespace pairwisehist
