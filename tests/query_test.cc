// Tests for the query layer: SQL parsing, interval sets, coverage with
// Theorem-2 bounds, and the exact engine.
#include <cmath>

#include <gtest/gtest.h>

#include "query/coverage.h"
#include "query/exact.h"
#include "query/sql_parser.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// SQL parser

TEST(SqlParserTest, MinimalQuery) {
  auto q = ParseSql("SELECT COUNT(*) FROM flights");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->func, AggFunc::kCount);
  EXPECT_TRUE(q->count_star);
  EXPECT_EQ(q->table, "flights");
  EXPECT_FALSE(q->where.has_value());
}

TEST(SqlParserTest, AllAggregationFunctions) {
  const std::pair<const char*, AggFunc> cases[] = {
      {"COUNT", AggFunc::kCount}, {"SUM", AggFunc::kSum},
      {"AVG", AggFunc::kAvg},     {"MIN", AggFunc::kMin},
      {"MAX", AggFunc::kMax},     {"MEDIAN", AggFunc::kMedian},
      {"VAR", AggFunc::kVar},     {"VARIANCE", AggFunc::kVar},
  };
  for (const auto& [name, func] : cases) {
    auto q = ParseSql(std::string("SELECT ") + name + "(x) FROM t;");
    ASSERT_TRUE(q.ok()) << name;
    EXPECT_EQ(q->func, func) << name;
    EXPECT_EQ(q->agg_column, "x");
  }
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto q = ParseSql("select avg(delay) from d where x > 3 group by carrier");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->func, AggFunc::kAvg);
  EXPECT_EQ(q->group_by, "carrier");
}

TEST(SqlParserTest, AllOperators) {
  const std::pair<const char*, CmpOp> cases[] = {
      {"<", CmpOp::kLt},  {"<=", CmpOp::kLe}, {">", CmpOp::kGt},
      {">=", CmpOp::kGe}, {"=", CmpOp::kEq},  {"==", CmpOp::kEq},
      {"!=", CmpOp::kNe}, {"<>", CmpOp::kNe},
  };
  for (const auto& [op, expected] : cases) {
    auto q = ParseSql(std::string("SELECT COUNT(x) FROM t WHERE x ") + op +
                      " 5;");
    ASSERT_TRUE(q.ok()) << op;
    EXPECT_EQ(q->where->condition.op, expected) << op;
    EXPECT_DOUBLE_EQ(q->where->condition.value, 5.0);
  }
}

TEST(SqlParserTest, AndBindsTighterThanOr) {
  auto q = ParseSql(
      "SELECT COUNT(x) FROM t WHERE a > 1 AND b < 2 OR c = 3;");
  ASSERT_TRUE(q.ok());
  const PredicateNode& root = *q->where;
  ASSERT_EQ(root.type, PredicateNode::Type::kOr);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[0].type, PredicateNode::Type::kAnd);
  EXPECT_EQ(root.children[1].type, PredicateNode::Type::kCondition);
}

TEST(SqlParserTest, ParenthesesOverridePrecedence) {
  auto q = ParseSql(
      "SELECT COUNT(x) FROM t WHERE a > 1 AND (b < 2 OR c = 3);");
  ASSERT_TRUE(q.ok());
  const PredicateNode& root = *q->where;
  ASSERT_EQ(root.type, PredicateNode::Type::kAnd);
  ASSERT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.children[1].type, PredicateNode::Type::kOr);
}

TEST(SqlParserTest, StringLiterals) {
  auto q = ParseSql(
      "SELECT AVG(delay) FROM f WHERE airline = 'AA' AND org != \"JFK\";");
  ASSERT_TRUE(q.ok());
  const PredicateNode& root = *q->where;
  EXPECT_TRUE(root.children[0].condition.is_string);
  EXPECT_EQ(root.children[0].condition.text_value, "AA");
  EXPECT_EQ(root.children[1].condition.text_value, "JFK");
}

TEST(SqlParserTest, EscapedQuoteInString) {
  auto q = ParseSql("SELECT COUNT(x) FROM t WHERE c = 'O''Hare';");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where->condition.text_value, "O'Hare");
}

TEST(SqlParserTest, NegativeAndFloatLiterals) {
  auto q = ParseSql("SELECT COUNT(x) FROM t WHERE a > -12.5;");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(q->where->condition.value, -12.5);
}

TEST(SqlParserTest, ErrorsArePositioned) {
  auto q = ParseSql("SELECT FROB(x) FROM t;");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("FROB"), std::string::npos);
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t WHERE ;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) t;").ok());
  EXPECT_FALSE(ParseSql("SELECT MIN(*) FROM t;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t WHERE a >;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t WHERE (a > 1;").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t WHERE a > 'unterminated")
                   .ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t extra;").ok());
}

TEST(SqlParserTest, ToSqlRoundTrip) {
  const char* sql =
      "SELECT AVG(delay) FROM f WHERE (a > 1 AND b <= 2) OR c != 'x';";
  auto q = ParseSql(sql);
  ASSERT_TRUE(q.ok());
  auto q2 = ParseSql(q->ToSql());
  ASSERT_TRUE(q2.ok()) << q->ToSql();
  EXPECT_EQ(q2->ToSql(), q->ToSql());
}

TEST(SqlParserTest, QueryHelpers) {
  auto q = ParseSql(
      "SELECT SUM(x) FROM t WHERE x > 1 AND y < 2 AND x < 10;");
  ASSERT_TRUE(q.ok());
  auto cols = q->PredicateColumns();
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], "x");
  EXPECT_EQ(cols[1], "y");
  EXPECT_FALSE(q->SingleColumn());
  auto single = ParseSql("SELECT SUM(x) FROM t WHERE x > 1 AND x < 9;");
  EXPECT_TRUE(single->SingleColumn());
}

// ---------------------------------------------------------------------------
// Interval sets

TEST(IntervalSetTest, UnionCoalescesAdjacent) {
  IntervalSet a = IntervalSet::Of(1, 5);
  IntervalSet b = IntervalSet::Of(6, 9);
  IntervalSet u = IntervalSet::Union(a, b);
  ASSERT_EQ(u.pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(u.pieces[0].first, 1);
  EXPECT_DOUBLE_EQ(u.pieces[0].second, 9);
}

TEST(IntervalSetTest, UnionKeepsGaps) {
  IntervalSet u =
      IntervalSet::Union(IntervalSet::Of(1, 3), IntervalSet::Of(7, 9));
  ASSERT_EQ(u.pieces.size(), 2u);
}

TEST(IntervalSetTest, IntersectOverlap) {
  IntervalSet i =
      IntervalSet::Intersect(IntervalSet::Of(1, 10), IntervalSet::Of(5, 20));
  ASSERT_EQ(i.pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(i.pieces[0].first, 5);
  EXPECT_DOUBLE_EQ(i.pieces[0].second, 10);
}

TEST(IntervalSetTest, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(IntervalSet::Intersect(IntervalSet::Of(1, 3),
                                     IntervalSet::Of(5, 9))
                  .Empty());
}

TEST(IntervalSetTest, IntersectMultiplePieces) {
  IntervalSet a = IntervalSet::Union(IntervalSet::Of(0, 10),
                                     IntervalSet::Of(20, 30));
  IntervalSet b = IntervalSet::Of(5, 25);
  IntervalSet i = IntervalSet::Intersect(a, b);
  ASSERT_EQ(i.pieces.size(), 2u);
  EXPECT_DOUBLE_EQ(i.pieces[0].second, 10);
  EXPECT_DOUBLE_EQ(i.pieces[1].first, 20);
}

TEST(IntervalSetTest, ContainsChecksMembership) {
  IntervalSet s = IntervalSet::Union(IntervalSet::Of(1, 3),
                                     IntervalSet::Of(7, 9));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_TRUE(s.Contains(7));
  EXPECT_FALSE(s.Contains(5));
  EXPECT_FALSE(s.Contains(10));
}

TEST(ConditionToIntervalsTest, NumericOperators) {
  ColumnTransform tr;
  tr.type = DataType::kInt64;
  tr.scale = 1.0;
  tr.min_scaled = 0;
  tr.max_code = 1000;
  // Codes are value+1 (min 0 → code 1). Literal 10 → continuous code 11.
  Condition c;
  c.column = "x";
  c.value = 10;

  c.op = CmpOp::kLt;  // x < 10 ⇔ code <= 10
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].second, 10);
  c.op = CmpOp::kLe;  // x <= 10 ⇔ code <= 11
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].second, 11);
  c.op = CmpOp::kGt;  // x > 10 ⇔ code >= 12
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].first, 12);
  c.op = CmpOp::kGe;  // x >= 10 ⇔ code >= 11
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].first, 11);
  c.op = CmpOp::kEq;
  {
    IntervalSet s = ConditionToIntervals(c, tr);
    ASSERT_EQ(s.pieces.size(), 1u);
    EXPECT_DOUBLE_EQ(s.pieces[0].first, 11);
    EXPECT_DOUBLE_EQ(s.pieces[0].second, 11);
  }
  c.op = CmpOp::kNe;
  {
    IntervalSet s = ConditionToIntervals(c, tr);
    ASSERT_EQ(s.pieces.size(), 2u);
    EXPECT_DOUBLE_EQ(s.pieces[0].second, 10);
    EXPECT_DOUBLE_EQ(s.pieces[1].first, 12);
  }
}

TEST(ConditionToIntervalsTest, FractionalLiteralOnIntColumn) {
  ColumnTransform tr;
  tr.type = DataType::kInt64;
  tr.scale = 1.0;
  tr.min_scaled = 0;
  tr.max_code = 100;
  Condition c;
  c.column = "x";
  c.value = 10.5;  // continuous code 11.5
  c.op = CmpOp::kLt;  // x < 10.5 ⇔ code <= 11
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].second, 11);
  c.op = CmpOp::kGt;  // x > 10.5 ⇔ code >= 12
  EXPECT_DOUBLE_EQ(ConditionToIntervals(c, tr).pieces[0].first, 12);
  c.op = CmpOp::kEq;  // no integer equals 10.5
  EXPECT_TRUE(ConditionToIntervals(c, tr).Empty());
  c.op = CmpOp::kNe;  // everything differs from 10.5
  EXPECT_TRUE(ConditionToIntervals(c, tr).IsAll());
}

TEST(ConditionToIntervalsTest, FloatScaling) {
  ColumnTransform tr;
  tr.type = DataType::kFloat64;
  tr.decimals = 2;
  tr.scale = 100.0;
  tr.min_scaled = 999;  // min value 9.99
  tr.max_code = 1000;
  Condition c;
  c.column = "x";
  c.value = 10.22;  // scaled 1022 → code 24
  c.op = CmpOp::kEq;
  IntervalSet s = ConditionToIntervals(c, tr);
  ASSERT_EQ(s.pieces.size(), 1u);
  EXPECT_NEAR(s.pieces[0].first, 24, 1e-9);
}

TEST(ConditionToIntervalsTest, CategoricalStrings) {
  ColumnTransform tr;
  tr.type = DataType::kCategorical;
  tr.dictionary = {"alpha", "beta", "gamma"};
  tr.rank_to_code = {1, 0, 2};  // beta most frequent
  tr.code_to_rank = {1, 0, 2};
  tr.max_code = 3;
  Condition c;
  c.column = "x";
  c.is_string = true;
  c.text_value = "beta";
  c.op = CmpOp::kEq;
  IntervalSet s = ConditionToIntervals(c, tr);
  ASSERT_EQ(s.pieces.size(), 1u);
  EXPECT_DOUBLE_EQ(s.pieces[0].first, 1);  // rank 0 → code 1
  c.text_value = "unknown";
  EXPECT_TRUE(ConditionToIntervals(c, tr).Empty());
  c.op = CmpOp::kNe;
  EXPECT_TRUE(ConditionToIntervals(c, tr).IsAll());
}

// ---------------------------------------------------------------------------
// Coverage

HistogramDim OneBin(double v_min, double v_max, uint64_t count,
                    uint64_t unique) {
  HistogramDim dim;
  dim.edges = {v_min, v_max + 1};
  dim.counts = {count};
  dim.v_min = {v_min};
  dim.v_max = {v_max};
  dim.unique = {unique};
  return dim;
}

TEST(CoverageTest, FullAndEmptyBins) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(10, 100, 5000, 80);
  Coverage full = ComputeCoverage(dim, IntervalSet::Of(0, 200), 100, crit);
  EXPECT_DOUBLE_EQ(full.beta[0], 1.0);
  EXPECT_DOUBLE_EQ(full.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(full.hi[0], 1.0);
  Coverage none = ComputeCoverage(dim, IntervalSet::Of(200, 300), 100, crit);
  EXPECT_DOUBLE_EQ(none.beta[0], 0.0);
}

TEST(CoverageTest, PartialFractionIntegerUniform) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(0, 99, 10000, 100);
  // Interval [0, 49]: half of the 100 codes.
  Coverage cov = ComputeCoverage(dim, IntervalSet::Of(0, 49), 100, crit);
  EXPECT_NEAR(cov.beta[0], 0.5, 1e-9);
  // Theorem-2 bounds bracket the estimate and stay in (0, 1).
  EXPECT_LT(cov.lo[0], 0.5);
  EXPECT_GT(cov.hi[0], 0.5);
  EXPECT_GT(cov.lo[0], 0.3);
  EXPECT_LT(cov.hi[0], 0.7);
}

TEST(CoverageTest, EqualityUsesUniqueCount) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(0, 99, 1000, 25);
  Coverage cov = ComputeCoverage(dim, IntervalSet::Of(50, 50), 100, crit);
  EXPECT_NEAR(cov.beta[0], 1.0 / 25, 1e-9);
}

TEST(CoverageTest, TwoUniqueValuesHalfRule) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(10, 90, 500, 2);
  // Covers only the lower extremum.
  Coverage cov = ComputeCoverage(dim, IntervalSet::Of(0, 50), 100, crit);
  EXPECT_DOUBLE_EQ(cov.beta[0], 0.5);
  // Covers both extrema but not the full edge-to-edge span → still 1.0
  // because both unique values are inside.
  Coverage both = ComputeCoverage(dim, IntervalSet::Of(10, 90), 100, crit);
  EXPECT_DOUBLE_EQ(both.beta[0], 1.0);
}

TEST(CoverageTest, NonPassingBinWideBounds) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(0, 99, 50, 30);  // h < M = 100
  Coverage cov = ComputeCoverage(dim, IntervalSet::Of(0, 49), 100, crit);
  EXPECT_NEAR(cov.lo[0], 1.0 / 50, 1e-9);
  EXPECT_NEAR(cov.hi[0], 1.0 - 1.0 / 50, 1e-9);
}

TEST(CoverageTest, UnionOfPiecesSums) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(0, 99, 10000, 100);
  IntervalSet s = IntervalSet::Union(IntervalSet::Of(0, 24),
                                     IntervalSet::Of(75, 99));
  Coverage cov = ComputeCoverage(dim, s, 100, crit);
  EXPECT_NEAR(cov.beta[0], 0.5, 1e-9);
}

TEST(CoverageTest, EmptyBinStaysZero) {
  Chi2CriticalCache crit(0.001);
  HistogramDim dim = OneBin(0, 99, 0, 0);
  Coverage cov = ComputeCoverage(dim, IntervalSet::All(), 100, crit);
  EXPECT_DOUBLE_EQ(cov.beta[0], 0.0);
}

// ---------------------------------------------------------------------------
// Exact engine

Table MakeExactTable() {
  Table t("e");
  Column x("x", DataType::kInt64, 0);
  Column y("y", DataType::kFloat64, 1);
  Column g("g", DataType::kCategorical, 0);
  const double xs[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  for (double v : xs) {
    x.Append(v);
    if (v == 5) {
      y.AppendNull();
    } else {
      y.Append(v * 2.0);
    }
    g.AppendCategory(v <= 4 ? "low" : "high");
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  t.AddColumn(std::move(g));
  return t;
}

TEST(ExactTest, CountStarAndColumn) {
  Table t = MakeExactTable();
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(*) FROM e;")->Scalar().estimate, 10);
  // COUNT(y) skips the null at x=5.
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(y) FROM e;")->Scalar().estimate, 9);
}

TEST(ExactTest, PredicateOnNullIsFalse) {
  Table t = MakeExactTable();
  // y > 0 excludes the row where y is null.
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE y > 0;")
          ->Scalar()
          .estimate,
      9);
}

TEST(ExactTest, SumAvgMinMaxMedianVar) {
  Table t = MakeExactTable();
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT SUM(x) FROM e;")->Scalar().estimate, 55);
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT AVG(x) FROM e;")->Scalar().estimate, 5.5);
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT MIN(x) FROM e WHERE x > 3;")
          ->Scalar()
          .estimate,
      4);
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT MAX(x) FROM e WHERE x < 8;")
          ->Scalar()
          .estimate,
      7);
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT MEDIAN(x) FROM e;")->Scalar().estimate,
      5.5);
  // Population variance of 1..10 = 8.25.
  EXPECT_NEAR(ExecuteExactSql(t, "SELECT VAR(x) FROM e;")->Scalar().estimate,
              8.25, 1e-9);
}

TEST(ExactTest, AndOrPrecedence) {
  Table t = MakeExactTable();
  // x < 3 OR (x > 8 AND x <= 9) → {1,2,9}.
  auto r = ExecuteExactSql(
      t, "SELECT COUNT(x) FROM e WHERE x > 8 AND x <= 9 OR x < 3;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 3);
}

TEST(ExactTest, CategoricalEquality) {
  Table t = MakeExactTable();
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE g = 'low';")
          ->Scalar()
          .estimate,
      4);
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE g != 'low';")
          ->Scalar()
          .estimate,
      6);
  // Unknown category matches nothing.
  EXPECT_DOUBLE_EQ(
      ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE g = 'zz';")
          ->Scalar()
          .estimate,
      0);
}

TEST(ExactTest, GroupBy) {
  Table t = MakeExactTable();
  auto r = ExecuteExactSql(t, "SELECT SUM(x) FROM e GROUP BY g;");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->groups.size(), 2u);
  // Groups ordered by code: "low"=0 inserted first.
  EXPECT_EQ(r->groups[0].label, "low");
  EXPECT_DOUBLE_EQ(r->groups[0].agg.estimate, 1 + 2 + 3 + 4);
  EXPECT_EQ(r->groups[1].label, "high");
  EXPECT_DOUBLE_EQ(r->groups[1].agg.estimate, 5 + 6 + 7 + 8 + 9 + 10);
}

TEST(ExactTest, EmptySelectionFlagged) {
  Table t = MakeExactTable();
  auto r = ExecuteExactSql(t, "SELECT AVG(x) FROM e WHERE x > 100;");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->Scalar().empty_selection);
  EXPECT_TRUE(std::isnan(r->Scalar().estimate));
  auto c = ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE x > 100;");
  EXPECT_DOUBLE_EQ(c->Scalar().estimate, 0);
}

TEST(ExactTest, UnknownColumnFails) {
  Table t = MakeExactTable();
  EXPECT_FALSE(ExecuteExactSql(t, "SELECT COUNT(zz) FROM e;").ok());
  EXPECT_FALSE(
      ExecuteExactSql(t, "SELECT COUNT(x) FROM e WHERE zz > 1;").ok());
}

TEST(ExactTest, SelectivityHelper) {
  Table t = MakeExactTable();
  auto q = ParseSql("SELECT COUNT(x) FROM e WHERE x > 5;");
  ASSERT_TRUE(q.ok());
  EXPECT_DOUBLE_EQ(ExactSelectivity(t, *q).value(), 0.5);
  auto all = ParseSql("SELECT COUNT(x) FROM e;");
  EXPECT_DOUBLE_EQ(ExactSelectivity(t, *all).value(), 1.0);
}

}  // namespace
}  // namespace pairwisehist
