// Tests for the PairwiseHist synopsis: Algorithm-1 build invariants,
// Theorem-1 weighted-centre bounds, and the Fig.-6 storage encoding.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "query/engine.h"

namespace pairwisehist {
namespace {

PairwiseHistConfig SmallConfig(size_t ns = 0) {
  PairwiseHistConfig cfg;
  cfg.sample_size = ns;
  cfg.min_points_fraction = 0.01;
  return cfg;
}

TEST(PairwiseHistBuildTest, BasicShape) {
  Table t = MakePower(8000, 31);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  EXPECT_EQ(ph->num_columns(), t.NumColumns());
  EXPECT_EQ(ph->total_rows(), 8000u);
  EXPECT_EQ(ph->sample_rows(), 8000u);
  EXPECT_DOUBLE_EQ(ph->sampling_ratio(), 1.0);
  EXPECT_EQ(ph->num_pairs(), t.NumColumns() * (t.NumColumns() - 1) / 2);
  // M = 1% of Ns.
  EXPECT_EQ(ph->min_points(), 80u);
}

TEST(PairwiseHistBuildTest, SamplingRatio) {
  Table t = MakePower(10000, 31);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig(2500));
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(ph->sample_rows(), 2500u);
  EXPECT_DOUBLE_EQ(ph->sampling_ratio(), 0.25);
  // Histogram counts cover the sample, not the full table.
  uint64_t total = ph->hist1d(1).TotalCount();
  EXPECT_LE(total, 2500u);
}

TEST(PairwiseHistBuildTest, MinPointsOverride) {
  Table t = MakePower(5000, 31);
  PairwiseHistConfig cfg = SmallConfig();
  cfg.min_points_override = 333;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(ph->min_points(), 333u);
}

TEST(PairwiseHistBuildTest, EmptyTableFails) {
  Table t("empty");
  EXPECT_FALSE(PairwiseHist::BuildFromTable(t, SmallConfig()).ok());
}

TEST(PairwiseHistBuildTest, PassingBinsSatisfyMInvariant) {
  // Any final 1-d bin with count >= M must have passed the uniformity test
  // (the Eq. 10 / Theorem 2 case selector depends on this invariant).
  Table t = MakeFurnace(20000, 32);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  Chi2CriticalCache cache(ph->alpha());
  // Verify indirectly: bins at or above M with >1 unique must be "wide
  // enough" to have been tested — we just re-run the test data-free by
  // checking the structural property that no bin has both count >= M and a
  // chi-squared statistic that is wildly non-uniform. Structural proxy:
  // every bin respects v bounds and unique <= count.
  for (size_t c = 0; c < ph->num_columns(); ++c) {
    const HistogramDim& h = ph->hist1d(c);
    for (size_t b = 0; b < h.NumBins(); ++b) {
      ASSERT_LE(h.unique[b], std::max<uint64_t>(h.counts[b], 1)) << c;
      if (h.counts[b] > 0) {
        ASSERT_LE(h.v_min[b], h.v_max[b]);
      }
    }
  }
}

TEST(PairwiseHistBuildTest, PairViewOrientation) {
  Table t = MakePower(5000, 33);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  PairView a = ph->GetPair(1, 3);
  PairView b = ph->GetPair(3, 1);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  // The same pair viewed both ways: transposed cells.
  EXPECT_EQ(a.agg_dim().NumBins(), b.pred_dim().NumBins());
  for (size_t i = 0; i < std::min<size_t>(3, a.agg_dim().NumBins()); ++i) {
    for (size_t j = 0; j < std::min<size_t>(3, a.pred_dim().NumBins());
         ++j) {
      EXPECT_EQ(a.Cell(i, j), b.Cell(j, i));
    }
  }
  EXPECT_FALSE(ph->GetPair(1, 1).valid());
}

TEST(PairwiseHistBuildTest, ColumnIndexLookup) {
  Table t = MakePower(2000, 34);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(ph->ColumnIndex("voltage").value(), 3u);
  EXPECT_FALSE(ph->ColumnIndex("nope").ok());
}

TEST(PairwiseHistBuildTest, DeterministicAcrossBuilds) {
  Table t = MakeGas(6000, 35);
  auto a = PairwiseHist::BuildFromTable(t, SmallConfig(3000));
  auto b = PairwiseHist::BuildFromTable(t, SmallConfig(3000));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->Serialize(), b->Serialize());
}

// ---------------------------------------------------------------------------
// Theorem 1: weighted-centre bounds.

TEST(CentreBoundsTest, ContainsTrueWeightedCentreUniform) {
  // Property check: for uniform-ish integer data in one bin that passed the
  // test, the true mean of the bin's points must lie within [c-, c+].
  Rng rng(36);
  Table t("t");
  Column x("x", DataType::kInt64, 0);
  double sum = 0;
  const size_t n = 5000;
  for (size_t r = 0; r < n; ++r) {
    double v = std::floor(rng.Uniform(0, 1000));
    sum += v;
    x.Append(v);
  }
  t.AddColumn(std::move(x));
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  const HistogramDim& h = ph->hist1d(0);
  ASSERT_EQ(h.NumBins(), 1u) << "uniform data should stay a single bin";
  CentreBounds cb = ph->WeightedCentreBounds(h, 0);
  // True mean in the code domain: codes = value - min + 1.
  double true_mean_code = sum / n - t.column(0).Min() + 1;
  EXPECT_LE(cb.lo, true_mean_code);
  EXPECT_GE(cb.hi, true_mean_code);
  // And the bounds are meaningfully tighter than the bin extent.
  EXPECT_GT(cb.lo, h.v_min[0]);
  EXPECT_LT(cb.hi, h.v_max[0]);
}

TEST(CentreBoundsTest, NonPassingBinUsesPackingBound) {
  Table t("t");
  Column x("x", DataType::kInt64, 0);
  // 10 points, 3 unique values: h < M so the packing bound applies.
  for (double v : {0.0, 0.0, 0.0, 0.0, 50.0, 50.0, 100.0, 100.0, 100.0,
                   100.0}) {
    x.Append(v);
  }
  t.AddColumn(std::move(x));
  PairwiseHistConfig cfg = SmallConfig();
  cfg.min_points_override = 100;  // ensure non-passing
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  const HistogramDim& h = ph->hist1d(0);
  ASSERT_EQ(h.NumBins(), 1u);
  CentreBounds cb = ph->WeightedCentreBounds(h, 0);
  // Eq. 10 with h=10, u=3, µ=1: shift = 3*2/(2*10) = 0.3 code units.
  EXPECT_NEAR(cb.lo, h.v_min[0] + 0.3, 1e-9);
  EXPECT_NEAR(cb.hi, h.v_max[0] - 0.3, 1e-9);
  // True weighted centre (codes 1..101): mean = (4*1 + 2*51 + 4*101)/10.
  double true_mean_code = (4 * 1.0 + 2 * 51.0 + 4 * 101.0) / 10;
  EXPECT_LE(cb.lo, true_mean_code);
  EXPECT_GE(cb.hi, true_mean_code);
}

TEST(CentreBoundsTest, SingleUniqueCollapses) {
  Table t("t");
  Column x("x", DataType::kInt64, 0);
  for (int i = 0; i < 50; ++i) x.Append(7);
  t.AddColumn(std::move(x));
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  CentreBounds cb = ph->WeightedCentreBounds(ph->hist1d(0), 0);
  EXPECT_DOUBLE_EQ(cb.lo, cb.hi);
}

TEST(CentreBoundsTest, BoundsAlwaysOrderedAndInsideBin) {
  Table t = MakeFlights(15000, 37);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig(10000));
  ASSERT_TRUE(ph.ok());
  for (size_t c = 0; c < ph->num_columns(); ++c) {
    const HistogramDim& h = ph->hist1d(c);
    for (size_t b = 0; b < h.NumBins(); ++b) {
      if (h.counts[b] == 0) continue;
      CentreBounds cb = ph->WeightedCentreBounds(h, b);
      ASSERT_LE(cb.lo, cb.hi) << c << "," << b;
      ASSERT_GE(cb.lo, h.v_min[b]) << c << "," << b;
      ASSERT_LE(cb.hi, h.v_max[b]) << c << "," << b;
      // Midpoint lies inside the bounds... not necessarily, but the
      // bounds must overlap the [v-, v+] interval, which they do by the
      // clamps above.
    }
  }
}

// ---------------------------------------------------------------------------
// Storage encoding.

TEST(EncodingTest, SerializeDeserializeRoundTripExact) {
  Table t = MakePower(8000, 38);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig(4000));
  ASSERT_TRUE(ph.ok());
  std::vector<uint8_t> bytes = ph->Serialize();
  auto back = PairwiseHist::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Deterministic re-serialization: byte-identical.
  EXPECT_EQ(back->Serialize(), bytes);
  // Structural equality.
  EXPECT_EQ(back->num_columns(), ph->num_columns());
  EXPECT_EQ(back->total_rows(), ph->total_rows());
  EXPECT_EQ(back->sample_rows(), ph->sample_rows());
  EXPECT_EQ(back->min_points(), ph->min_points());
  for (size_t c = 0; c < ph->num_columns(); ++c) {
    const HistogramDim& a = ph->hist1d(c);
    const HistogramDim& b = back->hist1d(c);
    ASSERT_EQ(a.edges, b.edges) << c;
    ASSERT_EQ(a.counts, b.counts) << c;
    ASSERT_EQ(a.v_min, b.v_min) << c;
    ASSERT_EQ(a.v_max, b.v_max) << c;
    ASSERT_EQ(a.unique, b.unique) << c;
  }
  for (size_t p = 0; p < ph->num_pairs(); ++p) {
    ASSERT_EQ(ph->pair_at(p).cells, back->pair_at(p).cells) << p;
    ASSERT_EQ(ph->pair_at(p).dim_i.edges, back->pair_at(p).dim_i.edges);
    ASSERT_EQ(ph->pair_at(p).dim_j.parent, back->pair_at(p).dim_j.parent);
    ASSERT_EQ(ph->pair_at(p).dim_i.counts, back->pair_at(p).dim_i.counts);
  }
}

TEST(EncodingTest, CorruptMagicRejected) {
  Table t = MakePower(1000, 39);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  auto bytes = ph->Serialize();
  bytes[0] ^= 0xFF;
  EXPECT_FALSE(PairwiseHist::Deserialize(bytes).ok());
}

TEST(EncodingTest, TruncationRejectedNotCrashing) {
  Table t = MakePower(2000, 40);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig());
  ASSERT_TRUE(ph.ok());
  auto bytes = ph->Serialize();
  for (size_t cut : {bytes.size() / 4, bytes.size() / 2,
                     bytes.size() - 3}) {
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    EXPECT_FALSE(PairwiseHist::Deserialize(trunc).ok()) << cut;
  }
}

TEST(EncodingTest, SynopsisFarSmallerThanRawData) {
  Table t = MakePower(40000, 41);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig(20000));
  ASSERT_TRUE(ph.ok());
  size_t synopsis = ph->StorageBytes();
  size_t raw = t.RawSizeBytes();
  EXPECT_LT(synopsis * 10, raw)
      << "synopsis " << synopsis << " vs raw " << raw;
}

TEST(EncodingTest, SmallerMMeansLargerSynopsis) {
  Table t = MakeFlights(20000, 42);
  PairwiseHistConfig coarse = SmallConfig(10000);
  coarse.min_points_override = 1000;
  PairwiseHistConfig fine = SmallConfig(10000);
  fine.min_points_override = 100;
  auto a = PairwiseHist::BuildFromTable(t, coarse);
  auto b = PairwiseHist::BuildFromTable(t, fine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LE(a->StorageBytes(), b->StorageBytes());
}

TEST(EncodingTest, QueriesSurviveRoundTrip) {
  Table t = MakePower(10000, 43);
  auto ph = PairwiseHist::BuildFromTable(t, SmallConfig(5000));
  ASSERT_TRUE(ph.ok());
  auto back = PairwiseHist::Deserialize(ph->Serialize());
  ASSERT_TRUE(back.ok());
  AqpEngine e1(&ph.value());
  AqpEngine e2(&back.value());
  const char* sql =
      "SELECT AVG(global_active_power) FROM power WHERE voltage > 240 AND "
      "hour < 12;";
  auto r1 = e1.ExecuteSql(sql);
  auto r2 = e2.ExecuteSql(sql);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->Scalar().estimate, r2->Scalar().estimate);
  EXPECT_DOUBLE_EQ(r1->Scalar().lower, r2->Scalar().lower);
  EXPECT_DOUBLE_EQ(r1->Scalar().upper, r2->Scalar().upper);
}

TEST(EncodingTest, GdSeededAndPlainBuildsBothSerialize) {
  Table t = MakeGas(8000, 44);
  auto gd = CompressTable(t);
  ASSERT_TRUE(gd.ok());
  auto seeded = PairwiseHist::BuildFromCompressed(*gd, SmallConfig(4000));
  auto plain = PairwiseHist::BuildFromTable(t, SmallConfig(4000));
  ASSERT_TRUE(seeded.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(PairwiseHist::Deserialize(seeded->Serialize()).ok());
  EXPECT_TRUE(PairwiseHist::Deserialize(plain->Serialize()).ok());
}

}  // namespace
}  // namespace pairwisehist
