// End-to-end integration tests: datasets → (GreedyGD) → PairwiseHist →
// SQL queries vs exact ground truth, plus the baselines.
#include <cmath>

#include <gtest/gtest.h>

#include "baselines/aqp_method.h"
#include "baselines/avi_hist.h"
#include "baselines/sampling_aqp.h"
#include "baselines/spn.h"
#include "datagen/datasets.h"
#include "gd/greedy_gd.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "query/exact.h"

namespace pairwisehist {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    table_ = new Table(MakePower(20000, 42));
    PairwiseHistConfig cfg;
    cfg.sample_size = 20000;  // full data
    cfg.min_points_fraction = 0.01;
    auto built = PairwiseHist::BuildFromTable(*table_, cfg);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    synopsis_ = new PairwiseHist(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete synopsis_;
    delete table_;
    synopsis_ = nullptr;
    table_ = nullptr;
  }

  static Table* table_;
  static PairwiseHist* synopsis_;
};

Table* IntegrationTest::table_ = nullptr;
PairwiseHist* IntegrationTest::synopsis_ = nullptr;

TEST_F(IntegrationTest, CountNoPredicateIsExact) {
  AqpEngine engine(synopsis_);
  auto result = engine.ExecuteSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_DOUBLE_EQ(result->Scalar().estimate, 20000.0);
}

TEST_F(IntegrationTest, CountSinglePredicateCloseToExact) {
  AqpEngine engine(synopsis_);
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
  auto approx = engine.ExecuteSql(sql);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  auto exact = ExecuteExactSql(*table_, sql);
  ASSERT_TRUE(exact.ok());
  double err = RelativeErrorPct(exact->Scalar().estimate,
                                approx->Scalar().estimate);
  EXPECT_LT(err, 5.0) << "approx=" << approx->Scalar().estimate
                      << " exact=" << exact->Scalar().estimate;
}

TEST_F(IntegrationTest, AvgWithCrossColumnPredicate) {
  AqpEngine engine(synopsis_);
  const std::string sql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
  auto approx = engine.ExecuteSql(sql);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  auto exact = ExecuteExactSql(*table_, sql);
  ASSERT_TRUE(exact.ok());
  double err = RelativeErrorPct(exact->Scalar().estimate,
                                approx->Scalar().estimate);
  EXPECT_LT(err, 10.0) << "approx=" << approx->Scalar().estimate
                       << " exact=" << exact->Scalar().estimate;
}

TEST_F(IntegrationTest, BoundsContainExactForCount) {
  AqpEngine engine(synopsis_);
  const std::string sql =
      "SELECT COUNT(voltage) FROM power WHERE global_intensity > 2 AND "
      "hour < 12;";
  auto approx = engine.ExecuteSql(sql);
  ASSERT_TRUE(approx.ok()) << approx.status().ToString();
  auto exact = ExecuteExactSql(*table_, sql);
  ASSERT_TRUE(exact.ok());
  const AggResult& a = approx->Scalar();
  EXPECT_LE(a.lower, a.estimate);
  EXPECT_GE(a.upper, a.estimate);
}

TEST_F(IntegrationTest, GdSeededBuildAnswersQueries) {
  auto compressed = CompressTable(*table_);
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  PairwiseHistConfig cfg;
  cfg.sample_size = 10000;
  auto built = PairwiseHist::BuildFromCompressed(compressed.value(), cfg);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  AqpEngine engine(&built.value());
  auto result = engine.ExecuteSql(
      "SELECT SUM(sub_metering_1) FROM power WHERE hour >= 6;");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto exact = ExecuteExactSql(
      *table_, "SELECT SUM(sub_metering_1) FROM power WHERE hour >= 6;");
  ASSERT_TRUE(exact.ok());
  double err = RelativeErrorPct(exact->Scalar().estimate,
                                result->Scalar().estimate);
  EXPECT_LT(err, 25.0);
}

TEST_F(IntegrationTest, WorkloadRunAllMethods) {
  WorkloadConfig wcfg = InitialWorkloadConfig(7);
  wcfg.num_queries = 20;
  auto workload = GenerateWorkload(*table_, wcfg);
  ASSERT_TRUE(workload.ok());
  ASSERT_GE(workload->size(), 10u);

  PairwiseHistConfig cfg;
  cfg.sample_size = 10000;
  auto built = PairwiseHist::BuildFromTable(*table_, cfg);
  ASSERT_TRUE(built.ok());
  PairwiseHistMethod ph(std::move(built).value());
  SamplingAqp sampling(*table_, 10000, 3);
  AviHistogram avi(*table_, 10000, 64, 3);
  SpnBaseline::Config spn_cfg;
  spn_cfg.sample_size = 10000;
  SpnBaseline spn(*table_, spn_cfg);

  std::vector<const AqpMethod*> methods = {&ph, &sampling, &avi, &spn};
  auto runs = RunWorkload(*table_, *workload, methods);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  for (const MethodRun& run : runs.value()) {
    EXPECT_GT(run.queries_supported, 0u) << run.method;
  }
  // PairwiseHist should be accurate on this single-predicate workload.
  EXPECT_LT(runs.value()[0].MedianErrorPct(), 5.0);
}

}  // namespace
}  // namespace pairwisehist
