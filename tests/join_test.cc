// Tests for the multi-table prototype (paper §3: cross-table queries via
// primary/foreign-key pairwise histograms).
#include <cmath>
#include <unordered_map>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pairwise_hist.h"
#include "harness/metrics.h"
#include "query/exact.h"
#include "query/join_engine.h"

namespace pairwisehist {
namespace {

// A small star schema: orders (fact) and customers (dim), keyed by
// customer_id. Order amounts depend on the customer's segment, so
// dimension predicates genuinely reshape fact aggregates.
//
// Key assignment matters for the paper's mechanism: predicates transfer
// through KEY-BIN conditionals, so the key ranges must correlate with the
// dimension attributes (here: ids are assigned in age order — the common
// registration-order pattern). A test below documents the degradation when
// keys are random instead.
struct StarSchema {
  Table fact{"orders"};
  Table dim{"customers"};
  Table joined{"joined"};  // materialized inner join, for ground truth
};

StarSchema MakeStar(size_t customers, size_t orders, uint64_t seed,
                    bool age_ordered_ids = true) {
  Rng rng(seed);
  StarSchema s;

  std::vector<double> age(customers), segment(customers);
  {
    Column id("customer_id", DataType::kInt64, 0);
    Column age_col("age", DataType::kInt64, 0);
    Column seg("segment", DataType::kCategorical, 0);
    seg.SetDictionary({"retail", "business", "vip"});
    // Realistic, non-uniform age marginal (Normal, clamped). A uniform
    // marginal would defeat the mechanism entirely: RefineBin2D tests
    // per-dimension uniformity, so a perfectly-correlated joint with
    // uniform marginals never refines and the (key, attr) histogram stays
    // a single cell (see the DESIGN.md note on the join prototype).
    std::vector<double> draws(customers);
    for (size_t c = 0; c < customers; ++c) {
      draws[c] = std::clamp(std::floor(rng.Normal(45, 14)), 18.0, 80.0);
    }
    if (age_ordered_ids) std::sort(draws.begin(), draws.end());
    for (size_t c = 0; c < customers; ++c) {
      id.Append(static_cast<double>(c));
      age[c] = draws[c];
      age_col.Append(age[c]);
      segment[c] = age[c] > 60 ? 2.0 : (age[c] > 35 ? 1.0 : 0.0);
      seg.Append(segment[c]);
    }
    s.dim.AddColumn(std::move(id));
    s.dim.AddColumn(std::move(age_col));
    s.dim.AddColumn(std::move(seg));
  }
  {
    Column id("order_id", DataType::kInt64, 0);
    Column cust("customer_id", DataType::kInt64, 0);
    Column amount("amount", DataType::kFloat64, 2);
    Column qty("qty", DataType::kInt64, 0);
    // Ground-truth join columns.
    Column j_age("age", DataType::kInt64, 0);
    Column j_seg("segment", DataType::kCategorical, 0);
    j_seg.SetDictionary({"retail", "business", "vip"});
    Column j_amount("amount", DataType::kFloat64, 2);
    Column j_qty("qty", DataType::kInt64, 0);
    Column j_cust("customer_id", DataType::kInt64, 0);
    for (size_t o = 0; o < orders; ++o) {
      size_t c = static_cast<size_t>(rng.UniformInt(uint64_t(customers)));
      double base = 30 + 60 * segment[c];  // vip spends more
      double amt = std::round(std::max(5.0, rng.Normal(base, 15)) * 100) /
                   100;
      double q = 1 + rng.UniformInt(uint64_t{5});
      id.Append(static_cast<double>(o));
      cust.Append(static_cast<double>(c));
      amount.Append(amt);
      qty.Append(q);
      j_cust.Append(static_cast<double>(c));
      j_age.Append(age[c]);
      j_seg.Append(segment[c]);
      j_amount.Append(amt);
      j_qty.Append(q);
    }
    s.fact.AddColumn(std::move(id));
    s.fact.AddColumn(std::move(cust));
    s.fact.AddColumn(std::move(amount));
    s.fact.AddColumn(std::move(qty));
    s.joined.AddColumn(std::move(j_cust));
    s.joined.AddColumn(std::move(j_age));
    s.joined.AddColumn(std::move(j_seg));
    s.joined.AddColumn(std::move(j_amount));
    s.joined.AddColumn(std::move(j_qty));
  }
  return s;
}

class JoinTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    star_ = new StarSchema(MakeStar(2000, 40000, 210));
    PairwiseHistConfig cfg;
    cfg.sample_size = 0;
    auto fact = PairwiseHist::BuildFromTable(star_->fact, cfg);
    auto dim = PairwiseHist::BuildFromTable(star_->dim, cfg);
    ASSERT_TRUE(fact.ok());
    ASSERT_TRUE(dim.ok());
    fact_ph_ = new PairwiseHist(std::move(fact).value());
    dim_ph_ = new PairwiseHist(std::move(dim).value());
    engine_ = new JoinAqpEngine(fact_ph_, "customer_id", dim_ph_,
                                "customer_id");
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete dim_ph_;
    delete fact_ph_;
    delete star_;
  }

  static void ExpectClose(const std::string& sql, double tol_pct) {
    auto approx = engine_->ExecuteSql(sql);
    ASSERT_TRUE(approx.ok()) << sql << ": " << approx.status().ToString();
    auto exact = ExecuteExactSql(star_->joined, sql);
    ASSERT_TRUE(exact.ok()) << sql;
    double err = RelativeErrorPct(exact->Scalar().estimate,
                                  approx->Scalar().estimate);
    EXPECT_LT(err, tol_pct)
        << sql << "\n exact=" << exact->Scalar().estimate
        << " approx=" << approx->Scalar().estimate;
  }

  static StarSchema* star_;
  static PairwiseHist* fact_ph_;
  static PairwiseHist* dim_ph_;
  static JoinAqpEngine* engine_;
};

StarSchema* JoinTest::star_ = nullptr;
PairwiseHist* JoinTest::fact_ph_ = nullptr;
PairwiseHist* JoinTest::dim_ph_ = nullptr;
JoinAqpEngine* JoinTest::engine_ = nullptr;

TEST_F(JoinTest, FactOnlyPredicateMatchesSingleTablePath) {
  ExpectClose("SELECT COUNT(amount) FROM orders WHERE amount > 80;", 6.0);
  ExpectClose("SELECT AVG(amount) FROM orders WHERE qty >= 3;", 6.0);
}

TEST_F(JoinTest, DimensionRangePredicate) {
  // age > 60 selects vip customers whose orders are much larger.
  ExpectClose("SELECT COUNT(amount) FROM orders WHERE age > 60;", 12.0);
  ExpectClose("SELECT AVG(amount) FROM orders WHERE age > 60;", 12.0);
}

TEST_F(JoinTest, DimensionCategoricalPredicate) {
  ExpectClose("SELECT AVG(amount) FROM orders WHERE segment = 'vip';",
              12.0);
  ExpectClose("SELECT COUNT(amount) FROM orders WHERE segment = 'retail';",
              12.0);
}

TEST_F(JoinTest, MixedFactAndDimensionPredicates) {
  ExpectClose(
      "SELECT COUNT(amount) FROM orders WHERE age > 35 AND amount > 60;",
      18.0);
  ExpectClose(
      "SELECT AVG(amount) FROM orders WHERE segment = 'business' AND "
      "qty <= 3;",
      15.0);
}

TEST_F(JoinTest, SumThroughTheJoin) {
  // SUM compounds the COUNT and conditional-mean transfer errors of the
  // two-hop key routing, so its tolerance is the loosest here.
  ExpectClose("SELECT SUM(amount) FROM orders WHERE age > 50;", 25.0);
}

TEST_F(JoinTest, DimensionPredicateReshapesAverage) {
  // The whole point of routing through the key: AVG(amount | vip) must be
  // far above the unconditional average, not equal to it.
  auto all = engine_->ExecuteSql("SELECT AVG(amount) FROM orders;");
  auto vip =
      engine_->ExecuteSql("SELECT AVG(amount) FROM orders WHERE age > 60;");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(vip.ok());
  EXPECT_GT(vip->Scalar().estimate, all->Scalar().estimate * 1.3);
}

TEST_F(JoinTest, BoundsBracketEstimate) {
  auto r = engine_->ExecuteSql(
      "SELECT COUNT(amount) FROM orders WHERE age > 40;");
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->Scalar().lower, r->Scalar().estimate + 1e-9);
  EXPECT_GE(r->Scalar().upper, r->Scalar().estimate - 1e-9);
}

TEST_F(JoinTest, UnsupportedShapesAreRejectedCleanly) {
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT MEDIAN(amount) FROM orders;").ok());
  EXPECT_FALSE(engine_
                   ->ExecuteSql("SELECT COUNT(amount) FROM orders WHERE "
                                "age > 60 OR qty > 2;")
                   .ok());
  EXPECT_FALSE(engine_
                   ->ExecuteSql(
                       "SELECT AVG(amount) FROM orders GROUP BY segment;")
                   .ok());
  EXPECT_FALSE(
      engine_->ExecuteSql("SELECT COUNT(amount) FROM orders WHERE "
                          "unknown_col > 1;")
          .ok());
}

TEST_F(JoinTest, PredicateOnKeyItself) {
  ExpectClose("SELECT COUNT(amount) FROM orders WHERE customer_id < 1000;",
              8.0);
}

TEST(JoinLimitationTest, RandomKeysKeepCountsButFlattenConditionals) {
  // With keys assigned independently of the attributes, key-bin
  // conditionals collapse to the marginal: COUNT stays accurate (the
  // marginal fraction is the right answer) but AVG loses the conditional
  // reshaping — an inherent resolution limit of the paper's key-histogram
  // mechanism, documented here.
  StarSchema star = MakeStar(2000, 30000, 211, /*age_ordered_ids=*/false);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto fact = PairwiseHist::BuildFromTable(star.fact, cfg);
  auto dim = PairwiseHist::BuildFromTable(star.dim, cfg);
  ASSERT_TRUE(fact.ok());
  ASSERT_TRUE(dim.ok());
  JoinAqpEngine engine(&fact.value(), "customer_id", &dim.value(),
                       "customer_id");
  const char* count_sql =
      "SELECT COUNT(amount) FROM orders WHERE age > 60;";
  auto approx = engine.ExecuteSql(count_sql);
  auto exact = ExecuteExactSql(star.joined, count_sql);
  ASSERT_TRUE(approx.ok());
  ASSERT_TRUE(exact.ok());
  EXPECT_LT(RelativeErrorPct(exact->Scalar().estimate,
                             approx->Scalar().estimate),
            15.0);
}

}  // namespace
}  // namespace pairwisehist
