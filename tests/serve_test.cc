// Serving-layer validation (src/serve/): snapshot-isolated concurrent
// reads under appends (bit-equality against per-epoch replay), plan-cache
// hits and epoch invalidation, coalesced execution identical to
// uncoalesced, JSON parse/format, and full HTTP round-trips including
// error statuses. The reader/writer tests are the designated TSan
// workload for the serve subsystem.
#include <atomic>
#include <cmath>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "datagen/datasets.h"
#include "serve/coalescer.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/plan_cache.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/csv.h"

namespace pairwisehist {
namespace {

// Bit-equality of results: identical labels and identical doubles (NaN
// matches NaN — empty selections are NaN by contract).
void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& context) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << context;
    EXPECT_EQ(a.groups[g].agg.empty_selection, b.groups[g].agg.empty_selection)
        << context;
    const double av[3] = {a.groups[g].agg.estimate, a.groups[g].agg.lower,
                          a.groups[g].agg.upper};
    const double bv[3] = {b.groups[g].agg.estimate, b.groups[g].agg.lower,
                          b.groups[g].agg.upper};
    for (int k = 0; k < 3; ++k) {
      const bool both_nan = std::isnan(av[k]) && std::isnan(bv[k]);
      EXPECT_TRUE(both_nan || av[k] == bv[k])
          << context << " group " << g << " field " << k << ": " << av[k]
          << " vs " << bv[k];
    }
  }
}

const std::vector<std::string>& ServeSqls() {
  static const std::vector<std::string> kSqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
      "SELECT AVG(voltage) FROM power WHERE hour < 6;",
      "SELECT MIN(voltage) FROM power WHERE hour = 3;",
      "SELECT AVG(global_intensity) FROM power WHERE day_of_week < 6;",
      "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;",
  };
  return kSqls;
}

Db MakePowerDb(size_t rows, size_t segment_rows = 0) {
  DbOptions options;
  options.target_segment_rows = segment_rows;
  auto db = Db::FromGenerator("power", rows, 7, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---------------------------------------------------------------------------
// JSON

TEST(ServeJson, ParsesDocuments) {
  auto doc = ParseJson(
      " {\"sql\": \"SELECT\\n\\\"x\\\"\", \"n\": -1.5e2, \"b\": true, "
      "\"list\": [1, \"two\", null], \"nested\": {\"k\": false}} ");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& v = doc.value();
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  ASSERT_NE(v.Find("sql"), nullptr);
  EXPECT_EQ(v.Find("sql")->str, "SELECT\n\"x\"");
  EXPECT_EQ(v.Find("n")->number, -150.0);
  EXPECT_TRUE(v.Find("b")->boolean);
  ASSERT_EQ(v.Find("list")->items.size(), 3u);
  EXPECT_EQ(v.Find("list")->items[1].str, "two");
  EXPECT_EQ(v.Find("list")->items[2].type, JsonValue::Type::kNull);
  EXPECT_EQ(v.Find("nested")->Find("k")->boolean, false);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(ServeJson, ParsesUnicodeEscapes) {
  auto doc = ParseJson("{\"s\": \"a\\u00e9\\ud83d\\ude00b\"}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().Find("s")->str, "a\xc3\xa9\xf0\x9f\x98\x80"
                                        "b");
}

TEST(ServeJson, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1,}").ok());
  EXPECT_FALSE(ParseJson("[1, 2").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
}

TEST(ServeJson, FormatsNumbersAndStrings) {
  std::string out;
  AppendJsonNumber(&out, 0.1);
  AppendJsonNumber(&out, std::nan(""));
  EXPECT_EQ(out, "0.10000000000000001null");
  // %.17g round-trips doubles bit-exactly.
  auto parsed = ParseJson("0.10000000000000001");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().number, 0.1);

  out.clear();
  AppendJsonString(&out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");

  QueryResult r;
  r.groups.resize(1);
  r.groups[0].agg.estimate = 2.5;
  r.groups[0].agg.lower = 2.0;
  r.groups[0].agg.upper = 3.0;
  out.clear();
  AppendQueryResult(&out, r);
  EXPECT_EQ(out,
            "{\"groups\":[{\"label\":\"\",\"estimate\":2.5,\"lower\":2,"
            "\"upper\":3,\"empty\":false}]}");
}

// ---------------------------------------------------------------------------
// Db::WithAppended (copy-on-append snapshots)

TEST(WithAppended, MatchesInPlaceAppendAndLeavesBaseUntouched) {
  Db base = MakePowerDb(12000, 5000);
  auto batch = MakeDataset("power", 3000, 99);
  ASSERT_TRUE(batch.ok());

  // Reference: a second identical Db appended in place.
  Db inplace = MakePowerDb(12000, 5000);
  ASSERT_TRUE(inplace.Append(batch.value()).ok());

  auto appended = base.WithAppended(batch.value());
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();

  EXPECT_EQ(base.total_rows(), 12000u);
  EXPECT_EQ(appended->total_rows(), 15000u);
  EXPECT_EQ(appended->num_segments(), inplace.num_segments());

  for (const std::string& sql : ServeSqls()) {
    auto from_snapshot = appended->ExecuteSql(sql);
    auto from_inplace = inplace.ExecuteSql(sql);
    ASSERT_TRUE(from_snapshot.ok()) << sql;
    ASSERT_TRUE(from_inplace.ok()) << sql;
    ExpectBitEqual(from_snapshot.value(), from_inplace.value(), sql);
  }
  // The raw table came along, so exact execution still works post-append.
  auto exact = appended->ExecuteExactSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->Scalar().estimate, 15000.0);
}

TEST(WithAppended, RejectsMutateBinsMode) {
  DbOptions options;
  options.append_mode = AppendMode::kMutateBins;
  auto db = Db::FromGenerator("power", 8000, 7, options);
  ASSERT_TRUE(db.ok());
  auto batch = MakeDataset("power", 1000, 5);
  ASSERT_TRUE(batch.ok());
  auto snap = db->WithAppended(batch.value());
  EXPECT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kUnsupported);
}

// ---------------------------------------------------------------------------
// PlanCache

TEST(PlanCache, HitsMissesAndEpochInvalidation) {
  auto snap0 = std::make_shared<const DbSnapshot>(MakePowerDb(8000), 0);
  PlanCache cache(/*capacity=*/64, /*shards=*/4);

  bool hit = true;
  auto pq = cache.Get(snap0, "SELECT AVG(voltage) FROM power;", &hit);
  ASSERT_TRUE(pq.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1u);

  // Same statement, same snapshot: hit. Normalization folds syntactic
  // variants onto the same entry.
  auto again =
      cache.Get(snap0, "select avg( voltage ) from power ;", &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(cache.size(), 1u);

  QueryResult direct_result, cached_result;
  ASSERT_TRUE(snap0->db.ExecuteSql("SELECT AVG(voltage) FROM power;").ok());
  ASSERT_TRUE(again.value().ExecuteInto(&cached_result).ok());
  auto direct = snap0->db.ExecuteSql("SELECT AVG(voltage) FROM power;");
  ASSERT_TRUE(direct.ok());
  ExpectBitEqual(cached_result, direct.value(), "cached vs direct");

  // New epoch: the same SQL misses, re-prepares against the new snapshot,
  // and replaces the entry (the cache never grows stale duplicates).
  auto batch = MakeDataset("power", 1000, 3);
  ASSERT_TRUE(batch.ok());
  auto next = snap0->db.WithAppended(batch.value());
  ASSERT_TRUE(next.ok());
  auto snap1 =
      std::make_shared<const DbSnapshot>(std::move(next).value(), 1);
  auto fresh = cache.Get(snap1, "SELECT AVG(voltage) FROM power;", &hit);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 1u);
  QueryResult r1;
  ASSERT_TRUE(fresh.value().ExecuteInto(&r1).ok());
  auto direct1 = snap1->db.ExecuteSql("SELECT AVG(voltage) FROM power;");
  ASSERT_TRUE(direct1.ok());
  ExpectBitEqual(r1, direct1.value(), "post-append cached vs direct");

  // Parse failures surface, not cached.
  auto bad = cache.Get(snap1, "SELEC nonsense;", &hit);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsed) {
  auto snap = std::make_shared<const DbSnapshot>(MakePowerDb(6000), 0);
  PlanCache cache(/*capacity=*/2, /*shards=*/1);
  bool hit = false;
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[0], &hit).ok());
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[1], &hit).ok());
  // Touch [0] so [1] is the LRU victim when [2] arrives.
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[0], &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[2], &hit).ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.size(), 2u);
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[0], &hit).ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.Get(snap, ServeSqls()[1], &hit).ok());
  EXPECT_FALSE(hit);  // was evicted
}

// ---------------------------------------------------------------------------
// Coalescer

TEST(Coalescer, GroupsConcurrentSubmitters) {
  std::atomic<int> calls{0};
  ReadCoalescer coalescer(
      [&](const std::vector<ReadCoalescer::Request*>& group) {
        calls.fetch_add(1);
        for (ReadCoalescer::Request* r : group) {
          r->status = Status::OK();
          r->epoch = 42;
        }
      },
      /*window_us=*/200000);  // generous window: stragglers always group

  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  std::vector<ReadCoalescer::Request> reqs(kThreads);
  std::vector<std::string> sqls(kThreads, "q");
  for (int t = 0; t < kThreads; ++t) {
    reqs[t].sql = &sqls[t];
    threads.emplace_back([&, t] { coalescer.Submit(&reqs[t]); });
  }
  for (std::thread& t : threads) t.join();
  for (const auto& r : reqs) {
    EXPECT_TRUE(r.status.ok());
    EXPECT_EQ(r.epoch, 42u);
  }
  const ReadCoalescer::Stats stats = coalescer.stats();
  EXPECT_EQ(stats.statements, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.groups, static_cast<uint64_t>(calls.load()));
  EXPECT_GE(stats.max_group, 2u);  // 200 ms window: threads overlap
  EXPECT_LT(stats.groups, static_cast<uint64_t>(kThreads));
}

// ---------------------------------------------------------------------------
// ServingDb: coalesced == uncoalesced == plain Db, and stats accounting.

TEST(ServingDbTest, CoalescedMatchesPlainExecution) {
  const std::vector<std::string>& sqls = ServeSqls();
  Db reference = MakePowerDb(20000, 8000);

  ServingOptions options;
  options.coalesce = true;
  ServingDb serving(MakePowerDb(20000, 8000), options);

  std::vector<QueryResult> reference_results(sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    auto r = reference.ExecuteSql(sqls[i]);
    ASSERT_TRUE(r.ok()) << sqls[i];
    reference_results[i] = std::move(r).value();
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 25;
  std::vector<std::thread> threads;
  std::mutex failures_mu;
  std::vector<std::string> failures;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const size_t qi = static_cast<size_t>(t + i) % sqls.size();
        QueryResult result;
        uint64_t epoch = 123;
        Status st = serving.Query(sqls[qi], &result, &epoch);
        if (!st.ok() || epoch != 0) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(sqls[qi] + ": " + st.ToString());
          continue;
        }
        const QueryResult& want = reference_results[qi];
        bool equal = want.groups.size() == result.groups.size();
        for (size_t g = 0; equal && g < want.groups.size(); ++g) {
          equal = want.groups[g].label == result.groups[g].label &&
                  want.groups[g].agg.estimate == result.groups[g].agg.estimate &&
                  want.groups[g].agg.lower == result.groups[g].agg.lower &&
                  want.groups[g].agg.upper == result.groups[g].agg.upper;
        }
        if (!equal) {
          std::lock_guard<std::mutex> lock(failures_mu);
          failures.push_back(sqls[qi] + ": coalesced result differs");
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(failures.empty()) << failures.size() << " failures, first: "
                                << failures.front();

  const ServingStats stats = serving.Stats();
  EXPECT_EQ(stats.queries, static_cast<uint64_t>(kThreads * kIters));
  EXPECT_EQ(stats.coalesced_statements, stats.queries);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
  EXPECT_GE(stats.cache_hits, stats.queries - 8 * sqls.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.epoch, 0u);
}

// N reader threads race a writer that appends batches; every response
// must be bit-identical to single-threaded replay of the epoch it reports
// (no torn reads, no mixed-epoch batches). This is the core TSan workload.
TEST(ServingDbTest, SnapshotIsolationUnderConcurrentAppends) {
  const std::vector<std::string>& sqls = ServeSqls();
  constexpr size_t kBaseRows = 16000;
  constexpr size_t kSegmentRows = 8000;
  constexpr int kAppends = 3;
  constexpr size_t kBatchRows = 2000;

  std::vector<Table> batches;
  for (int k = 0; k < kAppends; ++k) {
    auto b = MakeDataset("power", kBatchRows, 1000 + k);
    ASSERT_TRUE(b.ok());
    batches.push_back(std::move(b).value());
  }

  ServingDb serving(MakePowerDb(kBaseRows, kSegmentRows));

  struct Record {
    uint64_t epoch;
    size_t qi;
    QueryResult result;
  };
  std::mutex records_mu;
  std::vector<Record> records;
  std::atomic<bool> writer_done{false};

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      size_t i = 0;
      // Keep reading until the writer finishes, then drain to a statement
      // boundary so queries also land on the final epoch.
      while (true) {
        const bool done = writer_done.load(std::memory_order_acquire);
        const size_t qi = (static_cast<size_t>(t) + i++) % sqls.size();
        Record rec;
        rec.qi = qi;
        Status st = serving.Query(sqls[qi], &rec.result, &rec.epoch);
        ASSERT_TRUE(st.ok()) << sqls[qi];
        {
          std::lock_guard<std::mutex> lock(records_mu);
          records.push_back(std::move(rec));
        }
        if (done && i % sqls.size() == 0) break;
      }
    });
  }

  std::thread writer([&] {
    for (const Table& batch : batches) {
      ASSERT_TRUE(serving.Append(batch).ok());
    }
    writer_done.store(true, std::memory_order_release);
  });
  writer.join();
  for (std::thread& t : readers) t.join();

  const ServingStats stats = serving.Stats();
  EXPECT_EQ(stats.appends, static_cast<uint64_t>(kAppends));
  EXPECT_EQ(stats.epoch, static_cast<uint64_t>(kAppends));
  EXPECT_EQ(stats.rows, kBaseRows + kAppends * kBatchRows);

  // Single-threaded replay: rebuild every epoch deterministically and
  // check each recorded response bit-equals its epoch's answer.
  std::vector<Db> replay;
  replay.push_back(MakePowerDb(kBaseRows, kSegmentRows));
  for (int k = 0; k < kAppends; ++k) {
    auto next = replay.back().WithAppended(batches[static_cast<size_t>(k)]);
    ASSERT_TRUE(next.ok());
    replay.push_back(std::move(next).value());
  }
  std::vector<std::vector<QueryResult>> expected(replay.size());
  for (size_t e = 0; e < replay.size(); ++e) {
    for (const std::string& sql : sqls) {
      auto r = replay[e].ExecuteSql(sql);
      ASSERT_TRUE(r.ok());
      expected[e].push_back(std::move(r).value());
    }
  }
  ASSERT_FALSE(records.empty());
  for (const Record& rec : records) {
    ASSERT_LT(rec.epoch, replay.size());
    ExpectBitEqual(rec.result, expected[rec.epoch][rec.qi],
                   sqls[rec.qi] + " @epoch " + std::to_string(rec.epoch));
  }
}

TEST(ServingDbTest, QueryBatchAndTakeDb) {
  ServingDb serving(MakePowerDb(10000));
  std::vector<std::string> sqls = {ServeSqls()[0], "BROKEN SQL",
                                   ServeSqls()[1]};
  std::vector<QueryResult> results;
  std::vector<Status> statement_status;
  uint64_t epoch = 9;
  ASSERT_TRUE(
      serving.QueryBatch(sqls, &results, &statement_status, &epoch).ok());
  EXPECT_EQ(epoch, 0u);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(statement_status[0].ok());
  EXPECT_FALSE(statement_status[1].ok());
  EXPECT_TRUE(statement_status[2].ok());
  EXPECT_EQ(results[0].Scalar().estimate, 10000.0);

  {
    // An outstanding snapshot reference blocks TakeDb.
    std::shared_ptr<const DbSnapshot> pinned = serving.snapshot();
    auto blocked = serving.TakeDb();
    EXPECT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.status().code(), StatusCode::kUnsupported);
  }
  auto taken = serving.TakeDb();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  EXPECT_EQ(taken->total_rows(), 10000u);
}

// ---------------------------------------------------------------------------
// HTTP round-trip

class HttpRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    serving_ = std::make_unique<ServingDb>(MakePowerDb(12000, 6000));
    server_ = std::make_unique<HttpServer>(
        MakeServingHandler(serving_.get()),
        MakeServingBatchHandler(serving_.get()));
    ASSERT_TRUE(server_->Start(0).ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }
  void TearDown() override { server_->Stop(); }

  std::unique_ptr<ServingDb> serving_;
  std::unique_ptr<HttpServer> server_;
  HttpClient client_;
};

TEST_F(HttpRoundTrip, QueryMatchesDirectExecutionBitExactly) {
  const std::string sql = ServeSqls()[1];
  std::string body = "{\"sql\":";
  AppendJsonString(&body, sql);
  body += "}";
  auto resp = client_.Request("POST", "/query", body);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);

  // The response must byte-equal locally formatting the direct answer —
  // same numbers through the same %.17g formatter.
  QueryResult direct;
  uint64_t epoch = 0;
  ASSERT_TRUE(serving_->Query(sql, &direct, &epoch).ok());
  std::string want = "{\"epoch\":0,\"result\":";
  AppendQueryResult(&want, direct);
  want += "}";
  EXPECT_EQ(resp->body, want);

  // Keep-alive: the same connection serves a second request.
  auto resp2 = client_.Request("POST", "/query", body);
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->body, want);
}

TEST_F(HttpRoundTrip, PipelinedBurstMatchesSequentialResponses) {
  // A pipelined burst batch-executes on the connection thread (see
  // MakeServingBatchHandler); responses must come back in order and
  // byte-equal the sequential single-request path.
  std::vector<std::string> bodies;
  std::vector<std::string> want;
  for (const std::string& sql : ServeSqls()) {
    std::string body = "{\"sql\":";
    AppendJsonString(&body, sql);
    body += "}";
    bodies.push_back(body);
    QueryResult direct;
    uint64_t epoch = 0;
    ASSERT_TRUE(serving_->Query(sql, &direct, &epoch).ok());
    std::string w = "{\"epoch\":0,\"result\":";
    AppendQueryResult(&w, direct);
    w += "}";
    want.push_back(w);
  }
  // A broken statement mid-burst gets its 400 in exactly that slot
  // without disturbing its neighbours.
  bodies.insert(bodies.begin() + 3, "{\"sql\":\"BROKEN\"}");

  auto resps = client_.RequestPipelined("POST", "/query", bodies);
  ASSERT_TRUE(resps.ok()) << resps.status().ToString();
  ASSERT_EQ(resps->size(), bodies.size());
  size_t wi = 0;
  for (size_t i = 0; i < resps->size(); ++i) {
    if (i == 3) {
      EXPECT_EQ((*resps)[i].status, 400);
      continue;
    }
    EXPECT_EQ((*resps)[i].status, 200) << (*resps)[i].body;
    EXPECT_EQ((*resps)[i].body, want[wi++]) << "burst position " << i;
  }

  // The connection stays usable for plain requests afterwards.
  auto after = client_.Request("POST", "/query", bodies[0]);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->body, want[0]);
}

TEST_F(HttpRoundTrip, BatchAppendStatsAndErrors) {
  // Batch with one broken statement: 200 with an inline error object.
  auto batch_resp = client_.Request(
      "POST", "/batch",
      "{\"sqls\":[\"SELECT COUNT(*) FROM power;\",\"NOT SQL\"]}");
  ASSERT_TRUE(batch_resp.ok());
  EXPECT_EQ(batch_resp->status, 200);
  auto batch_doc = ParseJson(batch_resp->body);
  ASSERT_TRUE(batch_doc.ok()) << batch_resp->body;
  const JsonValue* results = batch_doc.value().Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items.size(), 2u);
  EXPECT_EQ(results->items[0].Find("groups")->items[0].Find("estimate")->number,
            12000.0);
  ASSERT_NE(results->items[1].Find("error"), nullptr);

  // Append 1500 fresh rows as CSV; epoch bumps and COUNT(*) sees them.
  auto fresh = MakeDataset("power", 1500, 321);
  ASSERT_TRUE(fresh.ok());
  auto append_resp = client_.Request("POST", "/append",
                                     ToCsvString(fresh.value()), "text/csv");
  ASSERT_TRUE(append_resp.ok());
  ASSERT_EQ(append_resp->status, 200) << append_resp->body;
  auto append_doc = ParseJson(append_resp->body);
  ASSERT_TRUE(append_doc.ok());
  EXPECT_EQ(append_doc.value().Find("epoch")->number, 1.0);
  EXPECT_EQ(append_doc.value().Find("rows")->number, 13500.0);

  auto count_resp = client_.Request(
      "POST", "/query", "{\"sql\":\"SELECT COUNT(*) FROM power;\"}");
  ASSERT_TRUE(count_resp.ok());
  auto count_doc = ParseJson(count_resp->body);
  ASSERT_TRUE(count_doc.ok());
  EXPECT_EQ(count_doc.value().Find("epoch")->number, 1.0);
  EXPECT_EQ(count_doc.value()
                .Find("result")
                ->Find("groups")
                ->items[0]
                .Find("estimate")
                ->number,
            13500.0);

  // Stats reflect the traffic.
  auto stats_resp = client_.Request("GET", "/stats");
  ASSERT_TRUE(stats_resp.ok());
  auto stats_doc = ParseJson(stats_resp->body);
  ASSERT_TRUE(stats_doc.ok());
  EXPECT_EQ(stats_doc.value().Find("appends")->number, 1.0);
  EXPECT_GE(stats_doc.value().Find("queries")->number, 1.0);
  EXPECT_EQ(stats_doc.value().Find("segments")->number, 3.0);

  // Error statuses: bad SQL 400, malformed JSON 400, bad CSV 400,
  // unknown path 404, wrong method 405.
  auto bad_sql = client_.Request("POST", "/query",
                                 "{\"sql\":\"SELECT nope FROM power;\"}");
  ASSERT_TRUE(bad_sql.ok());
  EXPECT_EQ(bad_sql->status, 400);
  auto bad_json = client_.Request("POST", "/query", "not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400);
  auto bad_csv = client_.Request("POST", "/append", "wrong,schema\n1,2\n",
                                 "text/csv");
  ASSERT_TRUE(bad_csv.ok());
  EXPECT_EQ(bad_csv->status, 400);
  auto not_found = client_.Request("GET", "/nope");
  ASSERT_TRUE(not_found.ok());
  EXPECT_EQ(not_found->status, 404);
  auto wrong_method = client_.Request("GET", "/query");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
}

TEST_F(HttpRoundTrip, ConcurrentClientsWithConcurrentAppends) {
  constexpr int kClients = 4;
  constexpr int kIters = 20;
  const std::vector<std::string>& sqls = ServeSqls();
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        bad.fetch_add(1);
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        std::string body = "{\"sql\":";
        AppendJsonString(&body, sqls[static_cast<size_t>(t + i) % sqls.size()]);
        body += "}";
        auto resp = client.Request("POST", "/query", body);
        if (!resp.ok() || resp->status != 200) bad.fetch_add(1);
      }
    });
  }
  auto fresh = MakeDataset("power", 1000, 555);
  ASSERT_TRUE(fresh.ok());
  const std::string csv = ToCsvString(fresh.value());
  for (int k = 0; k < 2; ++k) {
    auto resp = client_.Request("POST", "/append", csv, "text/csv");
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200) << resp->body;
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad.load(), 0);
  const ServingStats stats = serving_->Stats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.errors, 0u);
}

}  // namespace
}  // namespace pairwisehist
