// SIMD kernel layer validation (common/simd.h):
//  * exhaustive small-n edge cases (0, 1, lane-1, lane, lane+1, unaligned
//    begins and tails) for every compiled kernel tier against scalar,
//  * the phase-aligned zero-padding invariant that keeps the fast path
//    bit-equal to the reference path (a reduction over [b, e) must equal
//    the same reduction over a wider zero-padded range, exactly),
//  * scalar-vs-dispatched agreement (<= 1e-9 relative) over >= 1000
//    randomized queries reusing the fastpath_test harness,
//  * bit-identical repeat-run determinism per kernel setting, including
//    across exec_threads on a segmented Db,
//  * the 64-byte alignment guarantee of every ExecArena span.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/rng.h"
#include "common/simd.h"
#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exec_scratch.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Arena alignment.

TEST(ExecArenaAlignment, EverySpanIs64ByteAligned) {
  ExecArena arena;
  std::vector<void*> ptrs;
  const size_t sizes[] = {1, 3, 7, 8, 9, 13, 64, 100, 1000, 16384, 5};
  for (size_t n : sizes) {
    ptrs.push_back(arena.Alloc(n));
    ptrs.push_back(arena.AllocZeroed(n));
    ptrs.push_back(arena.AllocU32(n));
  }
  for (void* p : ptrs) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % ExecArena::kAlign, 0u);
  }
}

TEST(ExecArenaAlignment, ResetReplaysIdenticalPlacement) {
  // Steady-state reuse must hand out the same spans for the same request
  // sequence (this is what keeps repeated executions allocation-free and
  // bit-deterministic).
  ExecArena arena;
  const size_t sizes[] = {17, 4096, 3, 257, 64};
  std::vector<void*> first;
  for (size_t n : sizes) first.push_back(arena.Alloc(n));
  arena.Reset();
  for (size_t i = 0; i < std::size(sizes); ++i) {
    EXPECT_EQ(arena.Alloc(sizes[i]), first[i]) << "allocation " << i;
  }
}

TEST(ExecArenaAlignment, WeightTableLanesAligned) {
  ExecArena arena;
  for (size_t k : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    WeightTable wt = WeightTable::Make(arena, k);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(wt.w) % ExecArena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(wt.lo) % ExecArena::kAlign, 0u);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(wt.hi) % ExecArena::kAlign, 0u);
    // Lanes must not overlap for k bins.
    EXPECT_GE(wt.lo, wt.w + k);
    EXPECT_GE(wt.hi, wt.lo + k);
  }
}

// ---------------------------------------------------------------------------
// Kernel edge cases: every tier vs scalar on every small shape.

constexpr double kRelTol = 1e-9;

bool Close(double a, double b, double tol = kRelTol) {
  if (std::isnan(a) && std::isnan(b)) return true;
  double diff = std::fabs(a - b);
  return diff <= tol * std::max({1.0, std::fabs(a), std::fabs(b)});
}

struct RandomArrays {
  std::vector<double> a, b, c, d;
  std::vector<uint64_t> h;
  explicit RandomArrays(size_t n, uint64_t seed) {
    Rng rng(seed);
    for (size_t i = 0; i < n; ++i) {
      a.push_back(rng.Uniform(-2, 5));
      b.push_back(rng.Uniform(0, 3));
      c.push_back(rng.Uniform(-4, 4));
      d.push_back(rng.Uniform(-1, 6));
      h.push_back(rng.UniformInt(10000));
    }
  }
};

TEST(KernelEdgeCases, AllTiersMatchScalarOnSmallShapes) {
  const KernelOps& sc = ScalarKernels();
  const size_t kMaxN = 70;
  RandomArrays arr(kMaxN + 8, 1234);
  for (const KernelOps* ks : SupportedKernels()) {
    SCOPED_TRACE(ks->name);
    const size_t sizes[] = {0,  1,  2,  3,  4,  5,  7,  8,
                            9,  15, 16, 17, 31, 32, 33, 65};
    const size_t begins[] = {0, 1, 2, 3, 5, 8};
    for (size_t n : sizes) {
      for (size_t b : begins) {
        size_t e = b + n;
        ASSERT_LE(e, arr.a.size());
        SCOPED_TRACE("begin=" + std::to_string(b) +
                     " n=" + std::to_string(n));
        EXPECT_TRUE(Close(ks->sum(arr.a.data(), b, e),
                          sc.sum(arr.a.data(), b, e)));
        double s3[3], r3[3];
        ks->sum3(arr.a.data(), arr.b.data(), arr.c.data(), b, e, s3);
        sc.sum3(arr.a.data(), arr.b.data(), arr.c.data(), b, e, r3);
        for (int i = 0; i < 3; ++i) EXPECT_TRUE(Close(s3[i], r3[i]));
        EXPECT_TRUE(Close(ks->dot(arr.b.data(), arr.c.data(), b, e),
                          sc.dot(arr.b.data(), arr.c.data(), b, e)));
        ks->dot3(arr.b.data(), arr.c.data(), arr.d.data(), b, e, s3);
        sc.dot3(arr.b.data(), arr.c.data(), arr.d.data(), b, e, r3);
        for (int i = 0; i < 3; ++i) EXPECT_TRUE(Close(s3[i], r3[i]));
        ks->moments(arr.b.data(), arr.c.data(), b, e, s3);
        sc.moments(arr.b.data(), arr.c.data(), b, e, r3);
        for (int i = 0; i < 3; ++i) EXPECT_TRUE(Close(s3[i], r3[i]));
        double cb2[2], cr2[2];
        ks->corner_bounds(arr.b.data(), arr.d.data(), arr.a.data(),
                          arr.c.data(), b, e, cb2);
        sc.corner_bounds(arr.b.data(), arr.d.data(), arr.a.data(),
                         arr.c.data(), b, e, cr2);
        for (int i = 0; i < 2; ++i) EXPECT_TRUE(Close(cb2[i], cr2[i]));
        std::vector<double> ps(arr.a.size(), -1), pr(arr.a.size(), -1);
        ks->prefix_sum(arr.b.data(), b, e, ps.data());
        sc.prefix_sum(arr.b.data(), b, e, pr.data());
        for (size_t t = b; t < e; ++t) EXPECT_TRUE(Close(ps[t], pr[t]));
        for (double thr : {0.5, 2.5, 100.0}) {
          EXPECT_EQ(ks->find_first_gt(arr.a.data(), b, e, thr),
                    sc.find_first_gt(arr.a.data(), b, e, thr));
          EXPECT_EQ(ks->find_last_gt(arr.a.data(), b, e, thr),
                    sc.find_last_gt(arr.a.data(), b, e, thr));
        }
        // Elementwise kernels must be value-identical across tiers.
        std::vector<double> w1(arr.a.size()), l1(arr.a.size()),
            h1(arr.a.size());
        std::vector<double> w2(arr.a.size()), l2(arr.a.size()),
            h2(arr.a.size());
        ks->weights_nowiden(arr.h.data(), arr.b.data(), arr.a.data(),
                            arr.d.data(), w1.data(), l1.data(), h1.data(), b,
                            e);
        sc.weights_nowiden(arr.h.data(), arr.b.data(), arr.a.data(),
                           arr.d.data(), w2.data(), l2.data(), h2.data(), b,
                           e);
        for (size_t t = b; t < e; ++t) {
          EXPECT_EQ(w1[t], w2[t]);
          EXPECT_EQ(l1[t], l2[t]);
          EXPECT_EQ(h1[t], h2[t]);
        }
        ks->weights_widen(arr.h.data(), arr.b.data(), arr.a.data(),
                          arr.d.data(), 2.33, 0.9, w1.data(), l1.data(),
                          h1.data(), b, e);
        sc.weights_widen(arr.h.data(), arr.b.data(), arr.a.data(),
                         arr.d.data(), 2.33, 0.9, w2.data(), l2.data(),
                         h2.data(), b, e);
        for (size_t t = b; t < e; ++t) {
          EXPECT_EQ(w1[t], w2[t]);
          EXPECT_EQ(l1[t], l2[t]);
          EXPECT_EQ(h1[t], h2[t]);
        }
        ks->counts_to_weights3(arr.h.data(), w1.data(), l1.data(), h1.data(),
                               b, e);
        sc.counts_to_weights3(arr.h.data(), w2.data(), l2.data(), h2.data(),
                              b, e);
        for (size_t t = b; t < e; ++t) EXPECT_EQ(w1[t], w2[t]);
        ks->norm_prob3(arr.h.data(), arr.b.data(), arr.a.data(),
                       arr.d.data(), w1.data(), l1.data(), h1.data(), b, e);
        sc.norm_prob3(arr.h.data(), arr.b.data(), arr.a.data(), arr.d.data(),
                      w2.data(), l2.data(), h2.data(), b, e);
        for (size_t t = b; t < e; ++t) {
          EXPECT_EQ(w1[t], w2[t]);
          EXPECT_EQ(l1[t], l2[t]);
          EXPECT_EQ(h1[t], h2[t]);
        }
      }
    }
  }
}

// gather_dot3 reduces a CSR cell run; exercise every tier over small and
// unaligned element ranges against scalar.
TEST(KernelEdgeCases, GatherDot3MatchesScalar) {
  const KernelOps& sc = ScalarKernels();
  Rng rng(55);
  const size_t kBins = 40;
  std::vector<double> b0(kBins), b1(kBins), b2(kBins);
  for (size_t i = 0; i < kBins; ++i) {
    b0[i] = rng.Uniform(0, 1);
    b1[i] = rng.Uniform(0, 1);
    b2[i] = rng.Uniform(0, 1);
  }
  const size_t kCells = 70;
  std::vector<uint64_t> cnt(kCells);
  std::vector<uint32_t> col(kCells);
  for (size_t e = 0; e < kCells; ++e) {
    cnt[e] = rng.UniformInt(1000);
    col[e] = static_cast<uint32_t>(rng.UniformInt(kBins));
  }
  for (const KernelOps* ks : SupportedKernels()) {
    SCOPED_TRACE(ks->name);
    for (size_t b : {0u, 1u, 2u, 3u, 5u}) {
      for (size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 17u, 33u, 64u}) {
        double o1[3], o2[3];
        ks->gather_dot3(cnt.data(), col.data(), b0.data(), b1.data(),
                        b2.data(), b, b + n, o1);
        sc.gather_dot3(cnt.data(), col.data(), b0.data(), b1.data(),
                       b2.data(), b, b + n, o2);
        for (int i = 0; i < 3; ++i) {
          EXPECT_TRUE(Close(o1[i], o2[i]))
              << "b=" << b << " n=" << n << " i=" << i;
        }
      }
    }
  }
}

// The multi-row reduction kernels (column-major cell prefixes) are
// elementwise across rows, so every tier must match scalar BITWISE —
// that's what keeps the fast path's whole-grid sweeps equal to the
// reference path's per-row ReduceRow walk.
TEST(KernelEdgeCases, MultiRowReduceMatchesScalarBitwise) {
  const KernelOps& sc = ScalarKernels();
  Rng rng(91);
  const size_t kN = 70;
  std::vector<uint64_t> pre_b(kN), pre_e(kN);
  for (size_t i = 0; i < kN; ++i) {
    uint64_t base = rng.UniformInt(100000);
    pre_b[i] = base;
    pre_e[i] = base + rng.UniformInt(5000);
  }
  for (const KernelOps* ks : SupportedKernels()) {
    SCOPED_TRACE(ks->name);
    for (size_t b : {0u, 1u, 3u, 5u}) {
      for (size_t n : {0u, 1u, 3u, 4u, 5u, 8u, 17u, 33u, 64u}) {
        const size_t e = b + n;
        ASSERT_LE(e, kN);
        std::vector<double> a1(kN, 0.5), l1(kN, 0.25), h1(kN, 1.5);
        std::vector<double> a2 = a1, l2 = l1, h2 = h1;
        ks->run_mass3(pre_b.data(), pre_e.data(), a1.data(), l1.data(),
                      h1.data(), b, e);
        sc.run_mass3(pre_b.data(), pre_e.data(), a2.data(), l2.data(),
                     h2.data(), b, e);
        EXPECT_EQ(0, std::memcmp(a1.data(), a2.data(), kN * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(l1.data(), l2.data(), kN * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(h1.data(), h2.data(), kN * sizeof(double)));
        ks->cell_axpy3(pre_b.data(), pre_e.data(), 0.3, 0.1, 0.9, a1.data(),
                       l1.data(), h1.data(), b, e);
        sc.cell_axpy3(pre_b.data(), pre_e.data(), 0.3, 0.1, 0.9, a2.data(),
                      l2.data(), h2.data(), b, e);
        EXPECT_EQ(0, std::memcmp(a1.data(), a2.data(), kN * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(l1.data(), l2.data(), kN * sizeof(double)));
        EXPECT_EQ(0, std::memcmp(h1.data(), h2.data(), kN * sizeof(double)));
      }
    }
  }
}

// Batched Eq.-29 weighting: each SoA row must be bit-identical to
// weighting that row alone with weights_nowiden / weights_widen /
// counts_to_weights3 — per tier, with and without sampling widening.
TEST(KernelEdgeCases, WeightsBatchMatchesPerRowKernels) {
  const size_t kN = 48;
  RandomArrays arr(kN, 2024);
  // Two rows over the same counts: one with a fully-covered run in the
  // middle, one plain.
  const uint32_t runs[] = {10, 20};
  for (const KernelOps* ks : SupportedKernels()) {
    SCOPED_TRACE(ks->name);
    for (int widen : {0, 1}) {
      SCOPED_TRACE("widen=" + std::to_string(widen));
      std::vector<double> w1(kN, -1), l1(kN, -1), h1(kN, -1);
      std::vector<double> w2(kN, -1), l2(kN, -1), h2(kN, -1);
      WeightRow rows[2];
      rows[0] = WeightRow{arr.h.data(), arr.b.data(), arr.a.data(),
                          arr.d.data(), w1.data(), l1.data(), h1.data(),
                          3,  37, runs, 1};
      rows[1] = WeightRow{arr.h.data(), arr.b.data(), arr.a.data(),
                          arr.d.data(), w2.data(), l2.data(), h2.data(),
                          0,  kN, nullptr, 0};
      const double z = 2.33, fpc = 0.9;
      ks->weights_batch(rows, 2, z, fpc, widen);

      std::vector<double> ew(kN, -1), el(kN, -1), eh(kN, -1);
      auto weigh = [&](size_t b, size_t e) {
        if (b >= e) return;
        if (widen != 0) {
          ks->weights_widen(arr.h.data(), arr.b.data(), arr.a.data(),
                            arr.d.data(), z, fpc, ew.data(), el.data(),
                            eh.data(), b, e);
        } else {
          ks->weights_nowiden(arr.h.data(), arr.b.data(), arr.a.data(),
                              arr.d.data(), ew.data(), el.data(), eh.data(),
                              b, e);
        }
      };
      // Row 0 by hand: weigh [3, 10), run [10, 20), weigh [20, 37).
      weigh(3, 10);
      ks->counts_to_weights3(arr.h.data(), ew.data(), el.data(), eh.data(),
                             10, 20);
      weigh(20, 37);
      for (size_t t = 3; t < 37; ++t) {
        EXPECT_EQ(w1[t], ew[t]) << t;
        EXPECT_EQ(l1[t], el[t]) << t;
        EXPECT_EQ(h1[t], eh[t]) << t;
      }
      // Row 1 by hand: one straight weighting pass.
      std::fill(ew.begin(), ew.end(), -1);
      std::fill(el.begin(), el.end(), -1);
      std::fill(eh.begin(), eh.end(), -1);
      weigh(0, kN);
      for (size_t t = 0; t < kN; ++t) {
        EXPECT_EQ(w2[t], ew[t]) << t;
        EXPECT_EQ(l2[t], el[t]) << t;
        EXPECT_EQ(h2[t], eh[t]) << t;
      }
    }
  }
}

// The invariant the engine's fast-vs-reference bit-equality rests on: a
// reduction over [b, e) equals the SAME reduction over a wider range whose
// extra elements are exact zeros — identical doubles, per tier.
TEST(KernelPhaseAlignment, ZeroPaddedRangesAreBitIdentical) {
  const size_t kN = 300;
  RandomArrays arr(kN, 77);
  for (const KernelOps* ks : SupportedKernels()) {
    SCOPED_TRACE(ks->name);
    for (size_t b : {5u, 6u, 7u, 8u, 13u}) {
      for (size_t e : {b + 1, b + 30, b + 97, kN - 3}) {
        // Padded copies: zero outside [b, e).
        std::vector<double> pa(kN, 0.0), pb(kN, 0.0), pc(kN, 0.0);
        std::copy(arr.a.begin() + b, arr.a.begin() + e, pa.begin() + b);
        std::copy(arr.b.begin() + b, arr.b.begin() + e, pb.begin() + b);
        std::copy(arr.c.begin() + b, arr.c.begin() + e, pc.begin() + b);

        double x = ks->sum(arr.a.data(), b, e);
        double y = ks->sum(pa.data(), 0, kN);
        EXPECT_EQ(x, y);
        double o1[3], o2[3];
        ks->sum3(arr.a.data(), arr.b.data(), arr.c.data(), b, e, o1);
        ks->sum3(pa.data(), pb.data(), pc.data(), 0, kN, o2);
        EXPECT_EQ(0, std::memcmp(o1, o2, sizeof o1));
        // Dot: zero weights kill the padded terms exactly.
        x = ks->dot(arr.b.data(), arr.c.data(), b, e);
        y = ks->dot(pb.data(), arr.c.data(), 0, kN);
        EXPECT_EQ(x, y);
        ks->moments(arr.b.data(), arr.c.data(), b, e, o1);
        ks->moments(pb.data(), arr.c.data(), 0, kN, o2);
        EXPECT_EQ(0, std::memcmp(o1, o2, sizeof o1));
        // Prefix scan: identical values on the overlap, and the final
        // value (the walk's total) unchanged by trailing zeros.
        std::vector<double> s1(kN, -1), s2(kN, -1);
        ks->prefix_sum(arr.b.data(), b, e, s1.data());
        ks->prefix_sum(pb.data(), 0, kN, s2.data());
        for (size_t t = b; t < e; ++t) EXPECT_EQ(s1[t], s2[t]);
        EXPECT_EQ(s1[e - 1], s2[kN - 1]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized query equivalence: kScalar vs kWidest engines on the same
// synopsis (reusing the fastpath_test random query harness).

struct ColumnStats {
  std::string name;
  DataType type = DataType::kFloat64;
  double min = 0, max = 0;
  std::vector<std::string> dictionary;
};

std::vector<ColumnStats> CollectStats(const Table& t) {
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    ColumnStats s;
    s.name = col.name();
    s.type = col.type();
    bool any = false;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      if (!any || v < s.min) s.min = v;
      if (!any || v > s.max) s.max = v;
      any = true;
    }
    if (col.type() == DataType::kCategorical) s.dictionary = col.dictionary();
    stats.push_back(std::move(s));
  }
  return stats;
}

Condition RandCondition(Rng* rng, const std::vector<ColumnStats>& stats) {
  const ColumnStats& s = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  Condition c;
  c.column = s.name;
  c.op = kOps[rng->UniformInt(6)];
  if (s.type == DataType::kCategorical && !s.dictionary.empty() &&
      rng->Uniform(0, 1) < 0.7) {
    c.is_string = true;
    c.text_value = s.dictionary[static_cast<size_t>(
        rng->UniformInt(static_cast<uint64_t>(s.dictionary.size())))];
    c.op = rng->Uniform(0, 1) < 0.5 ? CmpOp::kEq : CmpOp::kNe;
    return c;
  }
  double span = s.max - s.min;
  double v = s.min + rng->Uniform(-0.1, 1.1) * (span > 0 ? span : 1.0);
  if (rng->Uniform(0, 1) < 0.5) v = std::floor(v);
  c.value = v;
  return c;
}

PredicateNode RandTree(Rng* rng, const std::vector<ColumnStats>& stats,
                       int depth) {
  if (depth <= 0 || rng->Uniform(0, 1) < 0.45) {
    PredicateNode n;
    n.type = PredicateNode::Type::kCondition;
    n.condition = RandCondition(rng, stats);
    return n;
  }
  PredicateNode n;
  n.type = rng->Uniform(0, 1) < 0.5 ? PredicateNode::Type::kAnd
                                    : PredicateNode::Type::kOr;
  size_t kids = 2 + rng->UniformInt(2);
  for (size_t i = 0; i < kids; ++i) {
    n.children.push_back(RandTree(rng, stats, depth - 1));
  }
  return n;
}

Query RandQuery(Rng* rng, const std::vector<ColumnStats>& stats,
                const std::string& table_name) {
  static const AggFunc kFuncs[] = {AggFunc::kCount,  AggFunc::kSum,
                                   AggFunc::kAvg,    AggFunc::kVar,
                                   AggFunc::kMin,    AggFunc::kMax,
                                   AggFunc::kMedian};
  Query q;
  q.table = table_name;
  q.func = kFuncs[rng->UniformInt(7)];
  const ColumnStats& agg = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  q.agg_column = agg.name;
  if (rng->Uniform(0, 1) < 0.92) q.where = RandTree(rng, stats, 2);
  if (rng->Uniform(0, 1) < 0.15) {
    for (const ColumnStats& s : stats) {
      if (s.type == DataType::kCategorical) {
        q.group_by = s.name;
        break;
      }
    }
  }
  return q;
}

void ExpectResultsClose(const QueryResult& a, const QueryResult& b,
                        const std::string& ctx) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << ctx;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << ctx;
    EXPECT_EQ(a.groups[g].agg.empty_selection, b.groups[g].agg.empty_selection)
        << ctx;
    EXPECT_TRUE(Close(a.groups[g].agg.estimate, b.groups[g].agg.estimate))
        << ctx << " est scalar=" << a.groups[g].agg.estimate
        << " simd=" << b.groups[g].agg.estimate;
    EXPECT_TRUE(Close(a.groups[g].agg.lower, b.groups[g].agg.lower))
        << ctx << " lower scalar=" << a.groups[g].agg.lower
        << " simd=" << b.groups[g].agg.lower;
    EXPECT_TRUE(Close(a.groups[g].agg.upper, b.groups[g].agg.upper))
        << ctx << " upper scalar=" << a.groups[g].agg.upper
        << " simd=" << b.groups[g].agg.upper;
  }
}

void RunScalarVsWidest(const Table& table, const PairwiseHistConfig& cfg,
                       uint64_t seed, size_t n_queries) {
  auto ph = PairwiseHist::BuildFromTable(table, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  AqpEngineOptions scalar_opt;
  scalar_opt.kernels = KernelMode::kScalar;
  AqpEngineOptions simd_opt;
  simd_opt.kernels = KernelMode::kWidest;
  AqpEngine scalar_eng(&ph.value(), scalar_opt);
  AqpEngine simd_eng(&ph.value(), simd_opt);

  std::vector<ColumnStats> stats = CollectStats(table);
  Rng rng(seed);
  size_t executed = 0;
  for (size_t i = 0; i < n_queries; ++i) {
    Query q = RandQuery(&rng, stats, table.name());
    auto a = scalar_eng.Execute(q);
    auto b = simd_eng.Execute(q);
    ASSERT_EQ(a.ok(), b.ok()) << q.ToSql();
    if (!a.ok()) continue;
    ++executed;
    ExpectResultsClose(a.value(), b.value(), q.ToSql());
  }
  EXPECT_GT(executed, n_queries / 2);
}

TEST(KernelQueryEquivalence, PowerSampled600) {
  auto t = MakeDataset("power", 30000, 5);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 8000;  // Eq. 29 widening active
  RunScalarVsWidest(t.value(), cfg, 101, 600);
}

TEST(KernelQueryEquivalence, TaxisFullSample500) {
  auto t = MakeDataset("taxis", 25000, 11);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;  // rho = 1
  RunScalarVsWidest(t.value(), cfg, 103, 500);
}

// ---------------------------------------------------------------------------
// Determinism: per kernel setting, repeated runs are bit-identical — also
// across exec_threads on a segmented Db.

std::vector<double> Fingerprint(const Db& db,
                                const std::vector<std::string>& sqls) {
  std::vector<double> out;
  for (const std::string& sql : sqls) {
    auto r = db.ExecuteSql(sql);
    if (!r.ok()) {
      out.push_back(-1e308);
      continue;
    }
    for (const auto& g : r->groups) {
      out.push_back(g.agg.estimate);
      out.push_back(g.agg.lower);
      out.push_back(g.agg.upper);
    }
  }
  return out;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(KernelDeterminism, RepeatRunsAndThreadCountsBitIdentical) {
  const std::vector<std::string> sqls = {
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236 AND global_intensity > 0.4;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;",
      "SELECT VAR(voltage) FROM power WHERE voltage > 238;",
      "SELECT MIN(voltage) FROM power WHERE hour = 3;",
      "SELECT AVG(voltage) FROM power GROUP BY day_of_week;",
      "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;",
  };
  for (KernelMode mode : {KernelMode::kScalar, KernelMode::kWidest}) {
    SCOPED_TRACE(KernelModeName(mode));
    std::vector<double> base;
    for (int rep = 0; rep < 2; ++rep) {
      DbOptions opt;
      opt.synopsis.sample_size = 6000;
      opt.kernels = mode;
      opt.target_segment_rows = 5000;  // multi-segment
      opt.exec_threads = rep == 0 ? 1 : 4;
      auto db = Db::FromGenerator("power", 20000, 9, opt);
      ASSERT_TRUE(db.ok()) << db.status().ToString();
      std::vector<double> fp = Fingerprint(db.value(), sqls);
      // Executing twice from the same Db must also be bit-stable.
      EXPECT_TRUE(BitIdentical(fp, Fingerprint(db.value(), sqls)));
      if (rep == 0) {
        base = std::move(fp);
      } else {
        EXPECT_TRUE(BitIdentical(base, fp))
            << "results changed across exec_threads";
      }
    }
  }
}

// DbOptions::kernels is actually wired through to the engines: scalar and
// auto Dbs agree within tolerance on a nontrivial workload.
TEST(KernelKnob, DbOptionKernelsIsWired) {
  DbOptions scalar_opt;
  scalar_opt.synopsis.sample_size = 5000;
  scalar_opt.kernels = KernelMode::kScalar;
  DbOptions auto_opt = scalar_opt;
  auto_opt.kernels = KernelMode::kAuto;
  auto a = Db::FromGenerator("power", 15000, 33, scalar_opt);
  auto b = Db::FromGenerator("power", 15000, 33, auto_opt);
  ASSERT_TRUE(a.ok() && b.ok());
  const char* kSqls[] = {
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236;",
      "SELECT MEDIAN(voltage) FROM power WHERE hour < 12;",
      "SELECT AVG(global_intensity) FROM power WHERE day_of_week < 4;",
  };
  for (const char* sql : kSqls) {
    auto ra = a->ExecuteSql(sql);
    auto rb = b->ExecuteSql(sql);
    ASSERT_TRUE(ra.ok() && rb.ok()) << sql;
    ExpectResultsClose(ra.value(), rb.value(), sql);
  }
}

}  // namespace
}  // namespace pairwisehist
