// Monte-Carlo validation of the paper's mathematical results:
//   Theorem 1 (weighted-centre bounds) and Theorem 2 (partial-bin-count /
//   coverage bounds) must hold with probability >= 1 - alpha for bins whose
//   contents actually pass the uniformity test, across many random draws.
// Plus deterministic properties of the coverage machinery.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "hist/uniformity.h"
#include "query/coverage.h"

namespace pairwisehist {
namespace {

// Draws `h` integer points uniformly from [0, span) and returns them
// sorted.
std::vector<double> DrawUniformBin(size_t h, double span, Rng* rng) {
  std::vector<double> v(h);
  for (size_t i = 0; i < h; ++i) {
    v[i] = std::floor(rng->Uniform(0, span));
  }
  std::sort(v.begin(), v.end());
  return v;
}

HistogramDim BinFromValues(const std::vector<double>& sorted) {
  HistogramDim dim;
  dim.edges = {sorted.front(), sorted.back() + 1};
  dim.counts = {sorted.size()};
  dim.v_min = {sorted.front()};
  dim.v_max = {sorted.back()};
  dim.unique = {CountUniqueSorted(sorted.data(),
                                  sorted.data() + sorted.size())};
  return dim;
}

// ---------------------------------------------------------------------------
// Theorem 1: the weighted-centre bound formula (Eq. 4/10 passing case).

TEST(Theorem1Test, BoundsHoldOnUniformDraws) {
  const double alpha = 0.01;
  Chi2CriticalCache crit(alpha);
  Rng rng(201);
  int violations = 0;
  const int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto v = DrawUniformBin(2000, 1000.0, &rng);
    double v_lo = v.front(), v_hi = v.back();
    uint64_t u = CountUniqueSorted(v.data(), v.data() + v.size());
    // Only score draws that pass the test (the theorem's premise).
    UniformityResult test =
        TestUniform(v.data(), v.data() + v.size(), v_lo, v_hi + 1, u, crit);
    if (!test.uniform) continue;

    int s = TerrellScottSubBins(u);
    double delta = (v_hi - v_lo) / s;
    double chi2 = crit.Get(s - 1);
    double spread = delta / 6.0 *
                    std::sqrt(3.0 * chi2 * (double(s) * s - 1.0) / v.size());
    double lo = v_lo + (s - 1) * delta / 2.0 - spread;
    double hi = v_lo + (s + 1) * delta / 2.0 + spread;

    double mean = 0;
    for (double x : v) mean += x;
    mean /= v.size();
    if (mean < lo || mean > hi) ++violations;
  }
  // The bound is conservative by construction; a handful of violations in
  // 400 trials would already be suspicious.
  EXPECT_LE(violations, 8) << violations << " violations in " << kTrials;
}

TEST(Theorem1Test, SpreadShrinksWithMorePoints) {
  Chi2CriticalCache crit(0.001);
  auto spread = [&](double h, uint64_t u) {
    int s = TerrellScottSubBins(u);
    double chi2 = crit.Get(s - 1);
    return 1.0 / 6.0 * std::sqrt(3.0 * chi2 * (double(s) * s - 1.0) / h);
  };
  EXPECT_GT(spread(100, 50), spread(10000, 50));
  EXPECT_GT(spread(1000, 50), spread(100000, 50));
}

// ---------------------------------------------------------------------------
// Theorem 2: coverage bounds on uniform bins.

TEST(Theorem2Test, CoverageBoundsHoldOnUniformDraws) {
  const double alpha = 0.01;
  Chi2CriticalCache crit(alpha);
  Rng rng(202);
  int violations = 0, scored = 0;
  const int kTrials = 300;
  for (int trial = 0; trial < kTrials; ++trial) {
    auto v = DrawUniformBin(3000, 1200.0, &rng);
    HistogramDim dim = BinFromValues(v);
    UniformityResult test =
        TestUniform(v.data(), v.data() + v.size(), dim.v_min[0],
                    dim.v_max[0] + 1, dim.unique[0], crit);
    if (!test.uniform) continue;

    // A random one-sided predicate.
    double threshold = std::floor(rng.Uniform(dim.v_min[0], dim.v_max[0]));
    IntervalSet pred = IntervalSet::Of(-IntervalSet::kInf, threshold);
    Coverage cov = ComputeCoverage(dim, pred, /*min_points=*/100, crit);
    if (cov.beta[0] <= 0.0 || cov.beta[0] >= 1.0) continue;

    // True coverage.
    size_t satisfied =
        std::upper_bound(v.begin(), v.end(), threshold) - v.begin();
    double true_beta = static_cast<double>(satisfied) / v.size();
    ++scored;
    if (true_beta < cov.lo[0] - 1e-12 || true_beta > cov.hi[0] + 1e-12) {
      ++violations;
    }
  }
  ASSERT_GT(scored, 100);
  // Allow alpha-level violations with slack for discreteness.
  EXPECT_LE(violations, scored / 20)
      << violations << " violations in " << scored;
}

TEST(Theorem2Test, BoundsTightenWithCount) {
  Chi2CriticalCache crit(0.001);
  Rng rng(203);
  auto width_at = [&](size_t h) {
    auto v = DrawUniformBin(h, 1000.0, &rng);
    HistogramDim dim = BinFromValues(v);
    IntervalSet pred = IntervalSet::Of(-IntervalSet::kInf, 499.0);
    Coverage cov = ComputeCoverage(dim, pred, 100, crit);
    return cov.hi[0] - cov.lo[0];
  };
  double w_small = width_at(500);
  double w_large = width_at(50000);
  EXPECT_GT(w_small, w_large);
}

// ---------------------------------------------------------------------------
// Coverage machinery properties over random interval sets.

class CoverageProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverageProperties, OrderAndComplementInvariants) {
  Rng rng(GetParam());
  Chi2CriticalCache crit(0.001);
  auto v = DrawUniformBin(4000, 800.0, &rng);
  HistogramDim dim = BinFromValues(v);

  for (int i = 0; i < 40; ++i) {
    double a = std::floor(rng.Uniform(-50, 850));
    double b = std::floor(rng.Uniform(-50, 850));
    if (a > b) std::swap(a, b);
    IntervalSet s = IntervalSet::Of(a, b);
    Coverage cov = ComputeCoverage(dim, s, 100, crit);
    // Ordering invariant.
    ASSERT_LE(cov.lo[0], cov.beta[0] + 1e-12);
    ASSERT_GE(cov.hi[0], cov.beta[0] - 1e-12);
    ASSERT_GE(cov.lo[0], 0.0);
    ASSERT_LE(cov.hi[0], 1.0);
    // Complement estimate sums to ~1 (within the integer-uniform model's
    // granularity of one code width).
    IntervalSet comp = IntervalSet::Union(
        IntervalSet::Of(-IntervalSet::kInf, a - 1),
        IntervalSet::Of(b + 1, IntervalSet::kInf));
    Coverage ccov = ComputeCoverage(dim, comp, 100, crit);
    ASSERT_NEAR(cov.beta[0] + ccov.beta[0], 1.0, 0.01) << a << "," << b;
  }
}

TEST_P(CoverageProperties, MonotoneInInterval) {
  Rng rng(GetParam() + 1000);
  Chi2CriticalCache crit(0.001);
  auto v = DrawUniformBin(4000, 800.0, &rng);
  HistogramDim dim = BinFromValues(v);
  // Coverage must be monotone non-decreasing as the interval grows.
  double prev = 0;
  for (double hi = 0; hi <= 800; hi += 40) {
    Coverage cov =
        ComputeCoverage(dim, IntervalSet::Of(-IntervalSet::kInf, hi), 100,
                        crit);
    ASSERT_GE(cov.beta[0], prev - 1e-12) << hi;
    prev = cov.beta[0];
  }
  ASSERT_NEAR(prev, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverageProperties,
                         ::testing::Values(301, 302, 303, 304, 305));

// ---------------------------------------------------------------------------
// Eq. 10 non-passing case: extremal packing really is extremal.

TEST(PackingBoundTest, AdversarialPackingStaysInside) {
  // Construct the adversarial distribution the bound is derived from:
  // h-u+1 points at the lower extremum, the rest packed µ=1 apart above it.
  const uint64_t h = 60, u = 9;
  std::vector<double> v;
  for (uint64_t i = 0; i < h - u + 1; ++i) v.push_back(0);
  for (uint64_t i = 1; i < u - 1; ++i) v.push_back(static_cast<double>(i));
  v.push_back(100);  // v_max
  double mean = 0;
  for (double x : v) mean += x;
  mean /= v.size();
  // Eq. 10: c- = v- + (u-1)u/(2h).
  double c_lo = 0 + static_cast<double>((u - 1) * u) / (2.0 * h);
  // The adversarial mean exceeds the bound only through the single v_max
  // point; the bound must still sit below the mean.
  EXPECT_LE(c_lo, mean);
}

}  // namespace
}  // namespace pairwisehist
