// Segment lifecycle validation: the tiered compaction policy must pick
// deterministically (adjacency, tier bounds, output caps, error ranking,
// quarantine priority), Db must apply specs in place without invalidating
// prepared statements, sustained append traffic must converge to a bounded
// segment count whose answers agree with a freshly built synopsis over the
// same rows, ServingDb must publish compaction swaps concurrently with
// readers and replay its event log bit-identically, quarantine must drain
// through WAL-retained rows, and a crash at every compaction failpoint
// must recover a consistent pre-compaction state.
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/failpoint.h"
#include "core/pws3.h"
#include "datagen/datasets.h"
#include "query/batch_exec.h"
#include "serve/serving_db.h"
#include "storage/compactor.h"
#include "storage/table.h"

namespace pairwisehist {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveDirIfPresent(const std::string& dir) {
  for (const char* f : {"wal.log", "ack.log"}) {
    ::unlink((dir + "/" + f).c_str());
  }
  for (uint64_t e = 0; e < 128; ++e) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(e));
    for (const char* suffix : {".pws2", ".pws2.tmp", ".pws3", ".pws3.tmp"}) {
      ::unlink((dir + "/checkpoint-" + buf + suffix).c_str());
    }
  }
  ::rmdir(dir.c_str());
}

Table MakeBatch(size_t rows, int i) {
  auto batch = MakeDataset("power", rows, 3000 + i);
  EXPECT_TRUE(batch.ok());
  return std::move(batch).value();
}

const std::vector<std::string>& LifecycleSqls() {
  static const std::vector<std::string> kSqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(voltage) FROM power WHERE hour < 6;",
      "SELECT AVG(global_intensity) FROM power WHERE day_of_week < 6;",
  };
  return kSqls;
}

void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& context) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << context;
    const double av[3] = {a.groups[g].agg.estimate, a.groups[g].agg.lower,
                          a.groups[g].agg.upper};
    const double bv[3] = {b.groups[g].agg.estimate, b.groups[g].agg.lower,
                          b.groups[g].agg.upper};
    for (int k = 0; k < 3; ++k) {
      const bool both_nan = std::isnan(av[k]) && std::isnan(bv[k]);
      EXPECT_TRUE(both_nan || av[k] == bv[k])
          << context << " group " << g << " field " << k << ": " << av[k]
          << " vs " << bv[k];
    }
  }
}

/// Two CI answers for the same question must claim overlapping truth.
void ExpectIntervalsOverlap(const QueryResult& a, const QueryResult& b,
                            const std::string& context) {
  ASSERT_EQ(a.groups.size(), 1u) << context;
  ASSERT_EQ(b.groups.size(), 1u) << context;
  const auto& ga = a.groups[0].agg;
  const auto& gb = b.groups[0].agg;
  ASSERT_FALSE(ga.empty_selection) << context;
  ASSERT_FALSE(gb.empty_selection) << context;
  EXPECT_LE(ga.lower, gb.upper) << context;
  EXPECT_LE(gb.lower, ga.upper) << context;
}

/// Standard lifecycle knobs for tests: small tiers so merges trigger on
/// test-sized segments.
CompactionOptions TestCompaction() {
  CompactionOptions c;
  c.enabled = true;
  c.tier0_rows = 1024;
  c.tier_factor = 4;
  c.min_merge = 4;
  c.max_merge = 16;
  return c;
}

/// A Db sharded into `rows / seg_rows` equal segments (compaction off so
/// the policy under test sees the raw structure).
Db MakeSegmented(size_t rows, size_t seg_rows, uint64_t seed = 7) {
  DbOptions options;
  options.target_segment_rows = seg_rows;
  auto db = Db::FromGenerator("power", rows, seed, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

// ---------------------------------------------------------------------------
// Policy units

TEST(CompactionPolicy, TierBoundariesAreGeometric) {
  CompactionOptions opts = TestCompaction();  // tier0 = 1024, factor = 4
  EXPECT_EQ(CompactionTier(0, opts), 0u);
  EXPECT_EQ(CompactionTier(1023, opts), 0u);
  EXPECT_EQ(CompactionTier(1024, opts), 1u);
  EXPECT_EQ(CompactionTier(4095, opts), 1u);
  EXPECT_EQ(CompactionTier(4096, opts), 2u);
  EXPECT_EQ(CompactionTier(16384, opts), 3u);
}

TEST(CompactionPolicy, SeedIsDeterministicAndRangeDependent) {
  const uint64_t s = CompactionSeed(42, 0, 2000);
  EXPECT_EQ(s, CompactionSeed(42, 0, 2000));
  EXPECT_NE(s, CompactionSeed(42, 0, 2001));
  EXPECT_NE(s, CompactionSeed(42, 500, 2000));
  EXPECT_NE(s, CompactionSeed(43, 0, 2000));
}

TEST(CompactionPolicy, LedgerTracksMeanAndForgets) {
  FeedbackLedger ledger;
  ledger.Record(100, 0.2);
  ledger.Record(100, 0.4);
  ledger.Record(100, -1.0);  // dropped: negative
  ledger.Record(100, std::nan(""));  // dropped: non-finite
  FeedbackLedger::Entry e = ledger.Get(100);
  EXPECT_EQ(e.samples, 2u);
  EXPECT_NEAR(e.mean_rel_width, 0.3, 1e-12);
  ledger.Record(900, 100.0);  // clamps to 16
  EXPECT_NEAR(ledger.Get(900).mean_rel_width, 16.0, 1e-12);
  ledger.Forget(0, 500);
  EXPECT_EQ(ledger.Get(100).samples, 0u);
  EXPECT_EQ(ledger.Get(900).samples, 1u);
  EXPECT_EQ(ledger.Snapshot().size(), 1u);
}

TEST(CompactionPolicy, PicksAdjacentSameTierRun) {
  Db db = MakeSegmented(4000, 500);  // 8 tier-0 segments
  CompactionOptions opts = TestCompaction();
  opts.max_merge = 4;
  auto spec = PickCompaction(db.synopses(), opts, nullptr, {});
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->row_begin, 0u);
  EXPECT_EQ(spec->row_end, 2000u);  // leftmost prefix, clipped to max_merge
  EXPECT_DOUBLE_EQ(spec->budget_boost, 1.0);
  EXPECT_FALSE(spec->quarantine_drain);
  EXPECT_EQ(CompactionBacklog(db.synopses(), opts), 8u);
}

TEST(CompactionPolicy, ShortRunsAndOverClippedRunsAreIneligible) {
  Db db = MakeSegmented(4000, 500);
  CompactionOptions opts = TestCompaction();
  opts.min_merge = 9;  // run of 8 is one short
  EXPECT_FALSE(PickCompaction(db.synopses(), opts, nullptr, {}).has_value());
  EXPECT_EQ(CompactionBacklog(db.synopses(), opts), 0u);

  opts = TestCompaction();
  opts.max_output_rows = 1000;  // clips the window below min_merge
  EXPECT_FALSE(PickCompaction(db.synopses(), opts, nullptr, {}).has_value());
}

TEST(CompactionPolicy, RebuildableGateSkipsRuns) {
  Db db = MakeSegmented(4000, 500);
  CompactionOptions opts = TestCompaction();
  auto spec = PickCompaction(db.synopses(), opts, nullptr,
                             [](uint64_t, uint64_t) { return false; });
  EXPECT_FALSE(spec.has_value());
}

TEST(CompactionPolicy, ErrorFeedbackPrefersWorstRunAndBoostsBudget) {
  // Two tier-0 runs separated by a tier-1 segment: [0, 2000) in 4 x 500,
  // one 2000-row merged segment, then [4000, 6000) in 4 x 500.
  Db db = MakeSegmented(6000, 500);
  CompactionSpec middle;
  middle.row_begin = 2000;
  middle.row_end = 4000;
  auto merged = db.CompactOnce(nullptr, &middle);
  ASSERT_TRUE(merged.ok() && merged.value());
  ASSERT_EQ(db.num_segments(), 9u);

  CompactionOptions opts = TestCompaction();
  // No feedback: leftmost run wins.
  auto spec = PickCompaction(db.synopses(), opts, nullptr, {});
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->row_begin, 0u);
  EXPECT_EQ(spec->row_end, 2000u);

  // Wide observed CIs on the right-hand run flip the pick and earn a
  // budget boost (clamped to error_boost_max).
  FeedbackLedger ledger;
  for (size_t i = 0; i < db.num_segments(); ++i) {
    const uint64_t rb = db.segment_meta(i).row_begin;
    ledger.Record(rb, rb >= 4000 ? 0.8 : 0.01);
  }
  spec = PickCompaction(db.synopses(), opts, &ledger, {});
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->row_begin, 4000u);
  EXPECT_EQ(spec->row_end, 6000u);
  EXPECT_GT(spec->budget_boost, 1.0);
  EXPECT_LE(spec->budget_boost, opts.error_boost_max);
}

// ---------------------------------------------------------------------------
// Db: in-place application

TEST(DbCompaction, CompactMergesEligibleRuns) {
  DbOptions options;
  options.target_segment_rows = 500;
  options.compact = TestCompaction();
  auto built = Db::FromGenerator("power", 4000, 7, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Db db = std::move(built).value();
  ASSERT_EQ(db.num_segments(), 8u);

  auto applied = db.Compact();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  EXPECT_GE(applied.value(), 1u);
  EXPECT_LT(db.num_segments(), 8u);
  EXPECT_EQ(db.total_rows(), 4000u);

  // The merged synopsis still answers within CI of the exact truth.
  for (const std::string& sql : LifecycleSqls()) {
    auto pq = db.Prepare(sql);
    ASSERT_TRUE(pq.ok()) << sql;
    auto approx = pq->Execute();
    auto exact = pq->ExecuteExact();
    ASSERT_TRUE(approx.ok() && exact.ok()) << sql;
    ExpectIntervalsOverlap(approx.value(), exact.value(), sql);
  }
}

// Satellite regression: prepared statements (and prepared batches) whose
// plans were compiled BEFORE a compaction must keep executing afterwards,
// and must answer exactly like a statement prepared fresh against the
// compacted structure — i.e. a cached plan never reads a retired segment.
TEST(DbCompaction, PreparedStatementsSurviveCompact) {
  DbOptions options;
  options.target_segment_rows = 500;
  options.compact = TestCompaction();
  auto built = Db::FromGenerator("power", 4000, 7, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  Db db = std::move(built).value();
  ASSERT_EQ(db.num_segments(), 8u);

  auto pq = db.Prepare(LifecycleSqls()[1]);
  ASSERT_TRUE(pq.ok());
  auto pb = db.PrepareBatch(LifecycleSqls());
  ASSERT_TRUE(pb.ok());
  ASSERT_TRUE(pq->Execute().ok());  // plans compiled against 8 segments
  ASSERT_TRUE(pb->Execute().ok());

  auto applied = db.Compact();
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  ASSERT_GE(applied.value(), 1u);

  // The stale plans recompile transparently; answers match fresh plans.
  auto stale = pq->Execute();
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  auto fresh_pq = db.Prepare(LifecycleSqls()[1]);
  ASSERT_TRUE(fresh_pq.ok());
  auto fresh = fresh_pq->Execute();
  ASSERT_TRUE(fresh.ok());
  ExpectBitEqual(stale.value(), fresh.value(), "prepared across compact");

  auto stale_batch = pb->Execute();
  ASSERT_TRUE(stale_batch.ok()) << stale_batch.status().ToString();
  for (size_t q = 0; q < LifecycleSqls().size(); ++q) {
    auto one = db.ExecuteSql(LifecycleSqls()[q]);
    ASSERT_TRUE(one.ok());
    ExpectBitEqual(stale_batch.value()[q], one.value(),
                   "batch across compact: " + LifecycleSqls()[q]);
  }
}

// Replaying the recorded spec sequence on an identical Db reproduces the
// exact structure and bit-identical answers (what serving recovery and
// the per-epoch replay drill rely on).
TEST(DbCompaction, SpecReplayReproducesStructure) {
  DbOptions options;
  options.target_segment_rows = 500;
  options.compact = TestCompaction();
  auto a = Db::FromGenerator("power", 4000, 7, options);
  auto b = Db::FromGenerator("power", 4000, 7, options);
  ASSERT_TRUE(a.ok() && b.ok());

  std::vector<CompactionSpec> specs;
  for (;;) {
    CompactionSpec spec;
    auto did = a->CompactOnce(&spec);
    ASSERT_TRUE(did.ok()) << did.status().ToString();
    if (!did.value()) break;
    specs.push_back(spec);
  }
  ASSERT_GE(specs.size(), 1u);

  for (const CompactionSpec& spec : specs) {
    auto did = b->CompactOnce(nullptr, &spec);
    ASSERT_TRUE(did.ok()) << did.status().ToString();
    EXPECT_TRUE(did.value());
  }
  ASSERT_EQ(a->num_segments(), b->num_segments());
  for (size_t i = 0; i < a->num_segments(); ++i) {
    EXPECT_EQ(a->segment_meta(i).row_begin, b->segment_meta(i).row_begin);
    EXPECT_EQ(a->segment_meta(i).row_end, b->segment_meta(i).row_end);
    EXPECT_EQ(a->synopsis(i).StorageBytes(), b->synopsis(i).StorageBytes());
  }
  for (const std::string& sql : LifecycleSqls()) {
    auto ra = a->ExecuteSql(sql);
    auto rb = b->ExecuteSql(sql);
    ASSERT_TRUE(ra.ok() && rb.ok()) << sql;
    ExpectBitEqual(ra.value(), rb.value(), "replay: " + sql);
  }
}

// The append soak: hundreds of small sealed appends with compaction on
// must converge to a bounded segment count, stay bit-deterministic across
// exec_threads, and answer within CI of a synopsis built fresh over the
// same rows with the same options.
TEST(DbCompaction, AppendSoakBoundsSegmentsAndPreservesAccuracy) {
  constexpr size_t kBaseRows = 2000;
  constexpr size_t kBatchRows = 200;
  constexpr int kAppends = 150;

  DbOptions options;
  options.target_segment_rows = 1000;
  options.compact = TestCompaction();

  DbOptions threaded = options;
  threaded.exec_threads = 8;

  auto built1 = Db::FromGenerator("power", kBaseRows, 7, options);
  auto built8 = Db::FromGenerator("power", kBaseRows, 7, threaded);
  ASSERT_TRUE(built1.ok() && built8.ok());
  Db db1 = std::move(built1).value();
  Db db8 = std::move(built8).value();

  // The fresh-build comparison target accumulates the identical rows.
  auto base = MakeDataset("power", kBaseRows, 7);
  ASSERT_TRUE(base.ok());
  Table all_rows = std::move(base).value();

  size_t max_segments = 0;
  for (int i = 0; i < kAppends; ++i) {
    Table batch = MakeBatch(kBatchRows, i);
    ASSERT_TRUE(db1.Append(batch).ok()) << "append " << i;
    ASSERT_TRUE(db8.Append(batch).ok()) << "append " << i;
    ASSERT_TRUE(AppendTableRows(&all_rows, batch).ok());
    max_segments = std::max(max_segments, db1.num_segments());
  }
  const size_t total = kBaseRows + kAppends * kBatchRows;
  ASSERT_EQ(db1.total_rows(), total);
  ASSERT_EQ(all_rows.NumRows(), total);

  // Bounded lifecycle: O(tiers * min_merge), nowhere near one segment per
  // append. 150 appends without compaction would leave 152 segments.
  EXPECT_LE(db1.num_segments(), 16u);
  EXPECT_LE(max_segments, 24u);

  // Bit-determinism: exec_threads never changes an answer.
  ASSERT_EQ(db1.num_segments(), db8.num_segments());
  for (const std::string& sql : LifecycleSqls()) {
    auto r1 = db1.ExecuteSql(sql);
    auto r8 = db8.ExecuteSql(sql);
    ASSERT_TRUE(r1.ok() && r8.ok()) << sql;
    ExpectBitEqual(r1.value(), r8.value(), "exec_threads: " + sql);
  }

  // Accuracy: within CI of a one-shot build over the same rows with the
  // same options (the acceptance baseline), and of the exact answer.
  auto fresh_built = Db::FromTable(std::move(all_rows), options);
  ASSERT_TRUE(fresh_built.ok()) << fresh_built.status().ToString();
  Db fresh = std::move(fresh_built).value();
  for (const std::string& sql : LifecycleSqls()) {
    auto soaked = db1.ExecuteSql(sql);
    auto target = fresh.ExecuteSql(sql);
    ASSERT_TRUE(soaked.ok() && target.ok()) << sql;
    ExpectIntervalsOverlap(soaked.value(), target.value(), "fresh: " + sql);
    // Against ground truth the CI is not a strict containment guarantee
    // for ratio aggregates, so gate on relative error instead.
    auto pq = db1.Prepare(sql);
    ASSERT_TRUE(pq.ok());
    auto exact = pq->ExecuteExact();
    ASSERT_TRUE(exact.ok());
    const double truth = exact.value().groups[0].agg.estimate;
    const double est = soaked.value().groups[0].agg.estimate;
    EXPECT_LE(std::fabs(est - truth), 0.1 * std::fabs(truth) + 1e-9)
        << "exact: " << sql;
  }
}

// Queries feed the refit ledger: after executing a workload, the touched
// segments carry feedback samples (what error-driven picking runs on).
TEST(DbCompaction, ExecutionFeedsFeedbackLedger) {
  DbOptions options;
  options.target_segment_rows = 500;
  options.compact = TestCompaction();
  auto built = Db::FromGenerator("power", 2000, 7, options);
  ASSERT_TRUE(built.ok());
  Db db = std::move(built).value();
  ASSERT_NE(db.feedback_ledger(), nullptr);

  for (const std::string& sql : LifecycleSqls()) {
    ASSERT_TRUE(db.ExecuteSql(sql).ok());
  }
  uint64_t samples = 0;
  for (const auto& [rb, e] : db.feedback_ledger()->Snapshot()) {
    samples += e.samples;
  }
  EXPECT_GT(samples, 0u);
}

// ---------------------------------------------------------------------------
// ServingDb: concurrent swaps + deterministic replay

TEST(ServingCompaction, SwapsConcurrentWithReadersAndReplaysBitEqual) {
  constexpr size_t kBaseRows = 3200;
  constexpr size_t kBatchRows = 200;
  constexpr int kAppends = 40;

  DbOptions db_options;
  db_options.target_segment_rows = 400;
  auto built = Db::FromGenerator("power", kBaseRows, 7, db_options);
  ASSERT_TRUE(built.ok());

  ServingOptions so;
  so.compaction = TestCompaction();
  so.compaction.interval_ms = 2;  // background compactor on
  ServingDb sdb(std::move(built).value(), so);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      const std::string& sql = LifecycleSqls()[t % LifecycleSqls().size()];
      while (!stop.load(std::memory_order_relaxed)) {
        QueryResult result;
        if (!sdb.Query(sql, &result).ok()) {
          read_errors.fetch_add(1);
        }
        reads.fetch_add(1);
      }
    });
  }

  for (int i = 0; i < kAppends; ++i) {
    ASSERT_TRUE(sdb.Append(MakeBatch(kBatchRows, i)).ok()) << i;
    if (i % 8 == 7) {
      // Explicit steps interleave with the background thread.
      ASSERT_TRUE(sdb.CompactNow().ok());
    }
  }
  // Drain whatever is still eligible, then stop the readers.
  for (int step = 0; step < 16; ++step) {
    bool did = false;
    ASSERT_TRUE(sdb.CompactNow(&did).ok());
    if (!did) break;
  }
  stop.store(true);
  for (std::thread& t : readers) t.join();

  const ServingStats stats = sdb.Stats();
  EXPECT_EQ(read_errors.load(), 0u) << "of " << reads.load() << " reads";
  EXPECT_GT(reads.load(), 0u);
  EXPECT_TRUE(stats.compaction_enabled);
  EXPECT_GE(stats.compaction_runs, 1u);
  EXPECT_EQ(stats.compaction_errors, 0u);
  EXPECT_EQ(stats.rows, kBaseRows + kAppends * kBatchRows);

  auto snap = sdb.snapshot();
  EXPECT_LE(snap->db.num_segments(), 16u);
  EXPECT_EQ(snap->compaction_seq, stats.compaction_seq);

  // Per-epoch replay: re-apply each logged event's spec right after its
  // epoch's append on a clean Db; the result must be bit-identical.
  const std::vector<ServingDb::CompactionEvent> log = sdb.CompactionLog();
  ASSERT_EQ(log.size(), stats.compaction_runs);
  DbOptions replay_options = db_options;
  replay_options.compact = so.compaction;
  replay_options.compact.enabled = false;  // only the logged specs apply
  auto replay_built =
      Db::FromGenerator("power", kBaseRows, 7, replay_options);
  ASSERT_TRUE(replay_built.ok());
  Db replay = std::move(replay_built).value();
  size_t next_event = 0;
  for (uint64_t epoch = 0; epoch <= static_cast<uint64_t>(kAppends);
       ++epoch) {
    if (epoch > 0) {
      ASSERT_TRUE(
          replay.Append(MakeBatch(kBatchRows, static_cast<int>(epoch) - 1))
              .ok());
    }
    while (next_event < log.size() && log[next_event].epoch == epoch) {
      auto did = replay.CompactOnce(nullptr, &log[next_event].spec);
      ASSERT_TRUE(did.ok()) << did.status().ToString();
      ASSERT_TRUE(did.value()) << "event " << next_event;
      ++next_event;
    }
  }
  ASSERT_EQ(next_event, log.size());
  ASSERT_EQ(replay.num_segments(), snap->db.num_segments());
  for (const std::string& sql : LifecycleSqls()) {
    QueryResult served;
    ASSERT_TRUE(sdb.Query(sql, &served).ok()) << sql;
    auto expect = replay.ExecuteSql(sql);
    ASSERT_TRUE(expect.ok()) << sql;
    ExpectBitEqual(expect.value(), served, "serving replay: " + sql);
  }
}

// ---------------------------------------------------------------------------
// Quarantine drain through WAL-retained rows

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(f)),
                              std::istreambuf_iterator<char>());
}

uint64_t ReadU64At(const std::vector<uint8_t>& bytes, size_t off) {
  uint64_t v = 0;
  std::memcpy(&v, bytes.data() + off, sizeof(v));
  return v;
}

std::string NewestCheckpoint(const std::string& dir, uint64_t max_epoch) {
  for (uint64_t e = max_epoch + 1; e-- > 0;) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(e));
    const std::string path = dir + "/checkpoint-" + buf + ".pws3";
    struct ::stat st;
    if (::stat(path.c_str(), &st) == 0) return path;
  }
  return "";
}

// A corrupt checkpoint block quarantines recovered segments; compaction
// rebuilds them from the WAL-retained rows and the quarantine drains.
TEST(ServingCompaction, QuarantineDrainsThroughRetainedRows) {
  constexpr size_t kBaseRows = 1000;
  constexpr size_t kBatchRows = 500;
  constexpr int kAppends = 80;
  const std::string dir = TestPath("compaction_quarantine");
  RemoveDirIfPresent(dir);

  ServingOptions so;
  so.durability.dir = dir;
  so.compaction = TestCompaction();
  so.compaction.checkpoint_after = false;  // keep the corrupt file mapped

  {
    DbOptions db_options;
    db_options.target_segment_rows = 1000;
    auto base = Db::FromGenerator("power", kBaseRows, 7, db_options);
    ASSERT_TRUE(base.ok());
    auto created = ServingDb::CreateDurable(std::move(base).value(), so);
    ASSERT_TRUE(created.ok()) << created.status().ToString();
    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(created.value()->Append(MakeBatch(kBatchRows, i)).ok());
    }
    // Checkpoint the appended state but keep the WAL: the injected
    // truncate failure models the crash window recovery already handles,
    // and leaves every appended batch recoverable from the WAL.
    ASSERT_TRUE(failpoint::Set("checkpoint.truncate_wal", "error").ok());
    EXPECT_FALSE(created.value()->Checkpoint().ok());
    failpoint::ClearAll();
  }

  auto recovered = ServingDb::Recover(so);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ServingDb& sdb = *recovered.value();
  const uint64_t total = kBaseRows + kAppends * kBatchRows;
  ASSERT_EQ(sdb.Stats().rows, total);
  EXPECT_GT(sdb.Stats().retained_bytes, 0u);

  // Rot the last data block of the mapped checkpoint (the recovered
  // serving state has no raw table — retained WAL rows are the only way
  // those segments can ever be rebuilt).
  const std::string checkpoint =
      NewestCheckpoint(dir, static_cast<uint64_t>(kAppends));
  ASSERT_FALSE(checkpoint.empty());
  {
    std::vector<uint8_t> bytes = ReadAll(checkpoint);
    const uint64_t data_end = ReadU64At(bytes, 16);
    ASSERT_GT(data_end - Pws3Codec::kHeaderSize, Pws3Codec::kCrcBlockSize)
        << "fixture too small: one CRC block would quarantine the "
           "unretained base segment too";
    std::fstream f(checkpoint,
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(static_cast<std::streamoff>(data_end - 1));
    char flip;
    f.read(&flip, 1);
    flip = static_cast<char>(flip ^ 0x01);
    f.seekp(static_cast<std::streamoff>(data_end - 1));
    f.write(&flip, 1);
  }
  auto snap = sdb.snapshot();
  EXPECT_EQ(snap->db.VerifyIntegrity().code(), StatusCode::kDataLoss);
  ASSERT_GT(sdb.Stats().quarantined_segments, 0u);

  // Every quarantined segment must be appended (WAL-covered) rows;
  // corruption confined to the last block guarantees it for this layout.
  for (size_t i = 0; i < snap->db.num_segments(); ++i) {
    if (snap->db.synopses().SegmentQuarantined(i)) {
      ASSERT_GE(snap->db.segment_meta(i).row_begin, kBaseRows)
          << "corruption reached the unretained base segment";
    }
  }
  snap.reset();

  // Drain: each step rebuilds quarantined rows from the retention buffer.
  for (int step = 0; step < 32 && sdb.Stats().quarantined_segments > 0;
       ++step) {
    bool did = false;
    ASSERT_TRUE(sdb.CompactNow(&did).ok());
    ASSERT_TRUE(did) << "quarantine not drainable at step " << step;
  }
  EXPECT_EQ(sdb.Stats().quarantined_segments, 0u);
  EXPECT_GE(sdb.Stats().quarantine_drained, 1u);

  QueryResult result;
  ASSERT_TRUE(sdb.Query("SELECT COUNT(*) FROM power;", &result).ok());
  EXPECT_DOUBLE_EQ(result.groups[0].agg.estimate,
                   static_cast<double>(total));
  RemoveDirIfPresent(dir);
}

// ---------------------------------------------------------------------------
// Crash drills at the compaction failpoints

struct CompactCrashSpec {
  const char* point;
};

constexpr size_t kDrillBaseRows = 3000;
constexpr size_t kDrillBatchRows = 250;
constexpr int kDrillAppends = 2;

/// Child: durable serving with an eligible merge run, crash inside
/// CompactNow at the armed point. Exit codes as in chaos_test.
void RunCompactCrashChild(const std::string& dir, const CompactCrashSpec& spec) {
  ServingOptions so;
  so.durability.dir = dir;
  so.compaction = TestCompaction();
  DbOptions db_options;
  db_options.target_segment_rows = 500;
  auto base = Db::FromGenerator("power", kDrillBaseRows, 7, db_options);
  if (!base.ok()) _Exit(20);
  auto sdb = ServingDb::CreateDurable(std::move(base).value(), so);
  if (!sdb.ok()) _Exit(21);

  const int ack_fd =
      ::open((dir + "/ack.log").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _Exit(22);
  for (int i = 0; i < kDrillAppends; ++i) {
    if (!sdb.value()->Append(MakeBatch(kDrillBatchRows, i)).ok()) _Exit(23);
    char line[16];
    const int n = std::snprintf(line, sizeof(line), "%d\n", i);
    if (::write(ack_fd, line, n) != n || ::fsync(ack_fd) != 0) _Exit(24);
  }

  if (!failpoint::Set(spec.point, "crash").ok()) _Exit(25);
  (void)sdb.value()->CompactNow();
  _Exit(0);  // compaction finished = the failpoint never fired
}

/// Parent: a crash anywhere inside CompactNow leaves the durable state
/// PRE-compaction (the WAL carries no compaction records; the compacted
/// checkpoint had not landed). Recovery must agree bit-exactly with a
/// clean no-compaction replay of the acked appends.
void ValidateCompactCrashRecovery(const std::string& dir) {
  std::vector<int> acked;
  {
    std::ifstream ack(dir + "/ack.log");
    int v;
    while (ack >> v) acked.push_back(v);
  }
  ASSERT_EQ(acked.size(), static_cast<size_t>(kDrillAppends));

  ServingOptions so;
  so.durability.dir = dir;  // compaction off: recover the state as-is
  auto recovered = ServingDb::Recover(so);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered.value()->Stats().epoch, acked.size());
  ASSERT_EQ(recovered.value()->Stats().rows,
            kDrillBaseRows + acked.size() * kDrillBatchRows);

  DbOptions db_options;
  db_options.target_segment_rows = 500;
  const std::string clean_path = dir + "/clean-replay.pws3";
  {
    auto base = Db::FromGenerator("power", kDrillBaseRows, 7, db_options);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(base->Save(clean_path).ok());
  }
  auto clean = Db::Open(clean_path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  Db clean_db = std::move(clean).value();
  for (int i = 0; i < kDrillAppends; ++i) {
    auto next = clean_db.WithAppended(MakeBatch(kDrillBatchRows, i));
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    clean_db = std::move(next).value();
  }
  for (const std::string& sql : LifecycleSqls()) {
    QueryResult served;
    ASSERT_TRUE(recovered.value()->Query(sql, &served).ok()) << sql;
    auto expect = clean_db.ExecuteSql(sql);
    ASSERT_TRUE(expect.ok()) << sql;
    ExpectBitEqual(expect.value(), served, sql);
  }
  ::unlink(clean_path.c_str());
}

class CompactCrashDrill : public ::testing::TestWithParam<CompactCrashSpec> {};

TEST_P(CompactCrashDrill, RecoversConsistentPreCompactionState) {
  const CompactCrashSpec spec = GetParam();
  const std::string dir = TestPath(std::string("compact_crash_") + spec.point);
  RemoveDirIfPresent(dir);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunCompactCrashChild(dir, spec);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode)
      << "failpoint " << spec.point << " never fired (exit "
      << WEXITSTATUS(wstatus) << ")";

  ValidateCompactCrashRecovery(dir);
  RemoveDirIfPresent(dir);
}

INSTANTIATE_TEST_SUITE_P(
    EveryCompactionFailpoint, CompactCrashDrill,
    ::testing::Values(
        // Death while building the merged segment: off the write path,
        // nothing published, nothing durable.
        CompactCrashSpec{"compact.build"},
        // Merged segment built, swap not yet published.
        CompactCrashSpec{"compact.publish"},
        // Swap published to readers, compacted checkpoint not yet taken:
        // the durable state is still the pre-compaction segment set.
        CompactCrashSpec{"compact.checkpoint"}),
    [](const ::testing::TestParamInfo<CompactCrashSpec>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace pairwisehist
