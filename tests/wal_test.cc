// WAL + durable-ServingDb validation: frame codec round-trips, the
// crash-shaped corruption contract (torn tail truncated, mid-file
// corruption = DataLoss), double-recovery idempotence, checkpoint/WAL
// epoch skew, and end-to-end crash-free recovery bit-equality.
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/failpoint.h"
#include "datagen/datasets.h"
#include "serve/serving_db.h"
#include "storage/table.h"
#include "storage/wal.h"

namespace pairwisehist {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveDirIfPresent(const std::string& dir) {
  // The serving dirs only ever hold flat files (wal.log, checkpoints).
  for (const char* f : {"wal.log"}) ::unlink((dir + "/" + f).c_str());
  for (uint64_t e = 0; e < 64; ++e) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(e));
    for (const char* suffix : {".pws2", ".pws2.tmp", ".pws3", ".pws3.tmp"}) {
      ::unlink((dir + "/checkpoint-" + buf + suffix).c_str());
    }
  }
  ::rmdir(dir.c_str());
}

Table MakeMixedBatch(int salt) {
  Table t("power");
  Column a("a", DataType::kInt64, 0);
  Column b("b", DataType::kFloat64, 3);
  Column c("c", DataType::kCategorical, 0);
  for (int i = 0; i < 20; ++i) {
    a.Append(i * 3 + salt);
    if ((i + salt) % 5 == 0) {
      b.AppendNull();
    } else {
      b.Append(i * 0.125 + salt * 1e-3);
    }
    c.AppendCategory((i + salt) % 2 ? "odd" : "even");
  }
  t.AddColumn(std::move(a));
  t.AddColumn(std::move(b));
  t.AddColumn(std::move(c));
  return t;
}

void ExpectTablesBitEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.NumColumns(), b.NumColumns());
  ASSERT_EQ(a.NumRows(), b.NumRows());
  for (size_t c = 0; c < a.NumColumns(); ++c) {
    const Column& ca = a.column(c);
    const Column& cb = b.column(c);
    EXPECT_EQ(ca.name(), cb.name());
    EXPECT_EQ(ca.type(), cb.type());
    EXPECT_EQ(ca.decimals(), cb.decimals());
    for (size_t r = 0; r < ca.size(); ++r) {
      ASSERT_EQ(ca.IsNull(r), cb.IsNull(r)) << "col " << c << " row " << r;
      if (ca.IsNull(r)) continue;
      // Bit-exact doubles, not approximate.
      double va = ca.Value(r), vb = cb.Value(r);
      EXPECT_EQ(std::memcmp(&va, &vb, sizeof(double)), 0)
          << "col " << c << " row " << r << ": " << va << " vs " << vb;
    }
    if (ca.type() == DataType::kCategorical) {
      EXPECT_EQ(ca.dictionary(), cb.dictionary());
    }
  }
}

// ---------------------------------------------------------------------------
// CRC + batch codec

TEST(WalCodec, Crc32KnownVector) {
  // The standard zlib check value: crc32("123456789") = 0xCBF43926.
  const char* s = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(s), 9), 0xCBF43926u);
  EXPECT_EQ(Crc32(nullptr, 0), 0u);
}

TEST(WalCodec, BatchRoundTripIsBitExact) {
  Table batch = MakeMixedBatch(3);
  std::vector<uint8_t> payload = EncodeWalBatch(17, batch);
  auto decoded = DecodeWalBatch(payload.data(), payload.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->epoch, 17u);
  ExpectTablesBitEqual(batch, decoded->batch);
}

TEST(WalCodec, RejectsTruncatedPayloads) {
  std::vector<uint8_t> payload = EncodeWalBatch(1, MakeMixedBatch(0));
  for (size_t cut : {size_t(0), size_t(1), payload.size() / 2,
                     payload.size() - 1}) {
    auto decoded = DecodeWalBatch(payload.data(), cut);
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

TEST(WalCodec, ParsesFsyncPolicies) {
  EXPECT_EQ(ParseFsyncPolicy("always").value(), WalOptions::Fsync::kAlways);
  EXPECT_EQ(ParseFsyncPolicy("interval").value(),
            WalOptions::Fsync::kInterval);
  EXPECT_EQ(ParseFsyncPolicy("never").value(), WalOptions::Fsync::kNever);
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_STREQ(FsyncPolicyName(WalOptions::Fsync::kInterval), "interval");
}

// ---------------------------------------------------------------------------
// WAL file behavior

std::vector<std::vector<uint8_t>> ReplayAll(const std::string& path,
                                            Wal::ReplayResult* out) {
  std::vector<std::vector<uint8_t>> records;
  auto result = Wal::Replay(path, [&](const uint8_t* d, size_t n) {
    records.emplace_back(d, d + n);
    return Status::OK();
  });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && out != nullptr) *out = result.value();
  return records;
}

TEST(WalFile, AppendReplayRoundTrip) {
  const std::string path = TestPath("wal_roundtrip.log");
  ::unlink(path.c_str());
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int i = 0; i < 5; ++i) {
      std::vector<uint8_t> payload(i * 7 + 1, static_cast<uint8_t>(i));
      ASSERT_TRUE(wal->Append(payload).ok());
    }
    EXPECT_EQ(wal->records_written(), 5u);
    EXPECT_GT(wal->fsyncs(), 0u);  // default policy = always
  }
  Wal::ReplayResult rr;
  auto records = ReplayAll(path, &rr);
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(rr.records, 5u);
  EXPECT_FALSE(rr.tail_truncated);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(records[i].size(), size_t(i * 7 + 1));
    for (uint8_t byte : records[i]) EXPECT_EQ(byte, i);
  }
  ::unlink(path.c_str());
}

TEST(WalFile, MissingFileIsEmptyLog) {
  Wal::ReplayResult rr;
  auto records = ReplayAll(TestPath("wal_never_created.log"), &rr);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(rr.records, 0u);
  EXPECT_FALSE(rr.tail_truncated);
}

TEST(WalFile, TornTailIsTruncatedAndIdempotent) {
  const std::string path = TestPath("wal_torn.log");
  ::unlink(path.c_str());
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({1, 2, 3, 4}).ok());
    ASSERT_TRUE(wal->Append({5, 6}).ok());
  }
  // Simulate a crash mid-write: append half of a frame header.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00", 2);
  }
  Wal::ReplayResult rr;
  auto records = ReplayAll(path, &rr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(rr.tail_truncated);

  // Double recovery: the first replay repaired the file, so the second is
  // clean — same records, no truncation.
  Wal::ReplayResult rr2;
  auto records2 = ReplayAll(path, &rr2);
  ASSERT_EQ(records2.size(), 2u);
  EXPECT_FALSE(rr2.tail_truncated);
  EXPECT_EQ(records[0], records2[0]);
  EXPECT_EQ(records[1], records2[1]);
  ::unlink(path.c_str());
}

TEST(WalFile, CrcBreakAtTailIsTruncated) {
  const std::string path = TestPath("wal_crc_tail.log");
  ::unlink(path.c_str());
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append({1, 2, 3, 4}).ok());
    ASSERT_TRUE(wal->Append({5, 6, 7, 8}).ok());
  }
  // Flip a byte inside the LAST record's payload.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put('\xFF');
  }
  Wal::ReplayResult rr;
  auto records = ReplayAll(path, &rr);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(rr.tail_truncated);
  EXPECT_EQ(records[0], (std::vector<uint8_t>{1, 2, 3, 4}));
  ::unlink(path.c_str());
}

TEST(WalFile, CrcBreakMidFileIsDataLoss) {
  const std::string path = TestPath("wal_crc_mid.log");
  ::unlink(path.c_str());
  {
    auto wal = Wal::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(std::vector<uint8_t>(16, 0xAA)).ok());
    ASSERT_TRUE(wal->Append(std::vector<uint8_t>(16, 0xBB)).ok());
  }
  // Flip a payload byte of the FIRST record: valid data follows, so this
  // cannot be crash damage — replay must refuse, not silently truncate.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10, std::ios::beg);
    f.put('\x00');
  }
  auto result = Wal::Replay(path, [](const uint8_t*, size_t) {
    return Status::OK();
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  ::unlink(path.c_str());
}

TEST(WalFile, InjectedSyncFaultRepairsTheFile) {
  const std::string path = TestPath("wal_fault.log");
  ::unlink(path.c_str());
  auto wal = Wal::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append({1, 2, 3}).ok());

  ASSERT_TRUE(failpoint::Set("wal.append.sync", "error").ok());
  Status st = wal->Append({4, 5, 6});
  failpoint::ClearAll();
  EXPECT_FALSE(st.ok());

  // The NACKed record must not be replayable, and the log stays usable.
  ASSERT_TRUE(wal->Append({7, 8, 9}).ok());
  auto records = ReplayAll(path, nullptr);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(records[1], (std::vector<uint8_t>{7, 8, 9}));
  ::unlink(path.c_str());
}

// ---------------------------------------------------------------------------
// Durable ServingDb: create / recover

Db MakePowerDb(size_t rows, size_t segment_rows) {
  DbOptions options;
  options.target_segment_rows = segment_rows;
  auto db = Db::FromGenerator("power", rows, 7, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

const std::vector<std::string>& RecoverySqls() {
  static const std::vector<std::string> kSqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(voltage) FROM power WHERE hour < 6;",
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
  };
  return kSqls;
}

void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& context) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << context;
    const double av[3] = {a.groups[g].agg.estimate, a.groups[g].agg.lower,
                          a.groups[g].agg.upper};
    const double bv[3] = {b.groups[g].agg.estimate, b.groups[g].agg.lower,
                          b.groups[g].agg.upper};
    for (int k = 0; k < 3; ++k) {
      const bool both_nan = std::isnan(av[k]) && std::isnan(bv[k]);
      EXPECT_TRUE(both_nan || av[k] == bv[k])
          << context << " group " << g << " field " << k;
    }
  }
}

TEST(DurableServing, CreateAppendRecoverPreservesAnswers) {
  const std::string dir = TestPath("durable_basic");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;

  std::vector<QueryResult> before(RecoverySqls().size());
  {
    auto sdb = ServingDb::CreateDurable(MakePowerDb(4000, 2000), opts);
    ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
    for (int i = 0; i < 3; ++i) {
      auto batch = MakeDataset("power", 400, 100 + i);
      ASSERT_TRUE(batch.ok());
      ASSERT_TRUE(sdb.value()->Append(batch.value()).ok());
    }
    ServingStats s = sdb.value()->Stats();
    EXPECT_TRUE(s.durable);
    EXPECT_EQ(s.epoch, 3u);
    EXPECT_EQ(s.rows, 4000u + 3 * 400u);
    EXPECT_EQ(s.wal_records, 3u);
    EXPECT_GT(s.wal_bytes, 0u);
    for (size_t q = 0; q < RecoverySqls().size(); ++q) {
      ASSERT_TRUE(
          sdb.value()->Query(RecoverySqls()[q], &before[q]).ok());
    }
  }

  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryInfo& info = recovered.value()->recovery_info();
  EXPECT_EQ(info.checkpoint_epoch, 0u);
  EXPECT_EQ(info.wal_records, 3u);
  EXPECT_EQ(info.wal_records_applied, 3u);
  EXPECT_EQ(info.rows_recovered, 3 * 400u);
  EXPECT_FALSE(info.tail_truncated);
  ServingStats s = recovered.value()->Stats();
  EXPECT_EQ(s.epoch, 3u);
  EXPECT_EQ(s.rows, 4000u + 3 * 400u);

  // Note: the recovered instance serves from the synopsis alone (Db::Open
  // drops the raw table) — answers must still be bit-identical, matching
  // the Save/Open round-trip guarantee.
  for (size_t q = 0; q < RecoverySqls().size(); ++q) {
    QueryResult after;
    ASSERT_TRUE(recovered.value()->Query(RecoverySqls()[q], &after).ok());
    ExpectBitEqual(before[q], after, RecoverySqls()[q]);
  }
  RemoveDirIfPresent(dir);
}

TEST(DurableServing, CreateRefusesNonEmptyDir) {
  const std::string dir = TestPath("durable_nonempty");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  {
    auto sdb = ServingDb::CreateDurable(MakePowerDb(1000, 1000), opts);
    ASSERT_TRUE(sdb.ok());
  }
  auto again = ServingDb::CreateDurable(MakePowerDb(1000, 1000), opts);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kInvalidArgument);
  RemoveDirIfPresent(dir);
}

TEST(DurableServing, RecoverWithoutStateIsNotFound) {
  const std::string dir = TestPath("durable_missing");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  EXPECT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kNotFound);
}

TEST(DurableServing, CheckpointRotatesWalAndSurvivesSkew) {
  const std::string dir = TestPath("durable_skew");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  {
    auto sdb = ServingDb::CreateDurable(MakePowerDb(2000, 1000), opts);
    ASSERT_TRUE(sdb.ok());
    auto b1 = MakeDataset("power", 300, 11);
    auto b2 = MakeDataset("power", 300, 12);
    ASSERT_TRUE(b1.ok() && b2.ok());
    ASSERT_TRUE(sdb.value()->Append(b1.value()).ok());
    ASSERT_TRUE(sdb.value()->Append(b2.value()).ok());

    // Crash between checkpoint-rename and WAL-truncate: the checkpoint at
    // epoch 2 lands but the WAL keeps both already-checkpointed records.
    ASSERT_TRUE(failpoint::Set("checkpoint.truncate_wal", "error").ok());
    Status st = sdb.value()->Checkpoint();
    failpoint::ClearAll();
    EXPECT_FALSE(st.ok());
  }

  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryInfo& info = recovered.value()->recovery_info();
  EXPECT_EQ(info.checkpoint_epoch, 2u);
  EXPECT_EQ(info.wal_records, 2u);          // both read...
  EXPECT_EQ(info.wal_records_applied, 0u);  // ...neither re-applied
  ServingStats s = recovered.value()->Stats();
  EXPECT_EQ(s.epoch, 2u);
  EXPECT_EQ(s.rows, 2000u + 600u);

  // A clean checkpoint on the recovered instance truncates the WAL and
  // drops the stale epoch-0 base checkpoint.
  ASSERT_TRUE(recovered.value()->Checkpoint().ok());
  ServingStats s2 = recovered.value()->Stats();
  EXPECT_EQ(s2.last_checkpoint_epoch, 2u);
  EXPECT_EQ(s2.checkpoints, 1u);
  RemoveDirIfPresent(dir);
}

TEST(DurableServing, RecoverTruncatesTornWalTail) {
  const std::string dir = TestPath("durable_torn");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  {
    auto sdb = ServingDb::CreateDurable(MakePowerDb(2000, 1000), opts);
    ASSERT_TRUE(sdb.ok());
    auto b1 = MakeDataset("power", 300, 21);
    ASSERT_TRUE(b1.ok());
    ASSERT_TRUE(sdb.value()->Append(b1.value()).ok());
  }
  {
    std::ofstream f(dir + "/wal.log", std::ios::binary | std::ios::app);
    f.write("\x99\x00\x00\x00partial", 11);  // torn frame from a crash
  }
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(recovered.value()->recovery_info().tail_truncated);
  EXPECT_EQ(recovered.value()->recovery_info().wal_records_applied, 1u);
  EXPECT_EQ(recovered.value()->Stats().rows, 2300u);

  // The new instance keeps appending to the repaired WAL.
  auto b2 = MakeDataset("power", 300, 22);
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(recovered.value()->Append(b2.value()).ok());
  RemoveDirIfPresent(dir);
}

TEST(DurableServing, BackgroundCheckpointerRotates) {
  const std::string dir = TestPath("durable_bg");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  opts.durability.checkpoint_interval_ms = 25;
  {
    auto sdb = ServingDb::CreateDurable(MakePowerDb(2000, 1000), opts);
    ASSERT_TRUE(sdb.ok());
    auto b = MakeDataset("power", 200, 31);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(sdb.value()->Append(b.value()).ok());
    for (int spin = 0; spin < 100; ++spin) {
      if (sdb.value()->Stats().checkpoints > 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ServingStats s = sdb.value()->Stats();
    EXPECT_GE(s.checkpoints, 1u);
    EXPECT_EQ(s.last_checkpoint_epoch, 1u);
  }
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_info().checkpoint_epoch, 1u);
  EXPECT_EQ(recovered.value()->Stats().rows, 2200u);
  RemoveDirIfPresent(dir);
}

TEST(DurableServing, TakeDbIsUnsupportedWhenDurable) {
  const std::string dir = TestPath("durable_takedb");
  RemoveDirIfPresent(dir);
  ServingOptions opts;
  opts.durability.dir = dir;
  auto sdb = ServingDb::CreateDurable(MakePowerDb(1000, 1000), opts);
  ASSERT_TRUE(sdb.ok());
  auto taken = sdb.value()->TakeDb();
  EXPECT_FALSE(taken.ok());
  EXPECT_EQ(taken.status().code(), StatusCode::kUnsupported);
  RemoveDirIfPresent(dir);
}

}  // namespace
}  // namespace pairwisehist
