// Tests for PWS3 zero-copy memory-mapped synopsis persistence: mmap-vs-heap
// bit-equality across kernel tiers and exec-thread counts, copy-on-write
// promotion when a mapped synopsis is appended to or mutated, rejection of
// torn/truncated/corrupt files with a clean Status, multi-process shared
// opens, the PWH_OPEN environment override, and the legacy PWS2 fixture
// regression (transparent heap conversion + re-save as PWS3).
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "core/pws3.h"
#include "core/synopsis_set.h"
#include "datagen/datasets.h"
#include "storage/mmap_file.h"

namespace pairwisehist {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}

// Bit-identical result comparison: the acceptance bar for the mmap path is
// exactness, not tolerance — the mapped arrays are the same bytes the heap
// path decodes, so every downstream double must match bit for bit.
void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& ctx) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << ctx;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << ctx;
    const AggResult& x = a.groups[g].agg;
    const AggResult& y = b.groups[g].agg;
    ASSERT_EQ(x.empty_selection, y.empty_selection) << ctx;
    if (x.empty_selection) continue;
    EXPECT_EQ(Bits(x.estimate), Bits(y.estimate)) << ctx;
    EXPECT_EQ(Bits(x.lower), Bits(y.lower)) << ctx;
    EXPECT_EQ(Bits(x.upper), Bits(y.upper)) << ctx;
  }
}

// Fixed query shapes (every aggregate, AND/OR, GROUP BY) plus randomized
// range predicates generated per test from a fixed seed.
const char* kFixedWorkload[] = {
    "SELECT COUNT(*) FROM power;",
    "SELECT COUNT(*) FROM power WHERE voltage > 240;",
    "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
    "SELECT SUM(sub_metering_3) FROM power WHERE voltage > 240 AND "
    "hour < 12;",
    "SELECT MIN(voltage) FROM power WHERE voltage > 235 AND voltage < 245;",
    "SELECT MAX(global_intensity) FROM power WHERE hour < 6 OR hour > 22;",
    "SELECT MEDIAN(global_active_power) FROM power WHERE day_of_week = 6;",
    "SELECT VAR(global_active_power) FROM power WHERE hour > 6;",
    "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;",
    "SELECT COUNT(*) FROM power GROUP BY day_of_week;",
};

std::vector<std::string> MakeWorkload(uint32_t seed, size_t randomized) {
  std::vector<std::string> sqls;
  for (const char* sql : kFixedWorkload) sqls.push_back(sql);
  std::mt19937 rng(seed);
  const char* aggs[] = {"COUNT(*)", "AVG(global_active_power)",
                        "SUM(global_intensity)", "MIN(voltage)",
                        "MAX(sub_metering_3)"};
  for (size_t i = 0; i < randomized; ++i) {
    const double vlo = 228.0 + (rng() % 160) / 10.0;
    const int hlo = static_cast<int>(rng() % 20);
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "SELECT %s FROM power WHERE voltage > %.1f AND hour >= %d;",
                  aggs[rng() % 5], vlo, hlo);
    sqls.push_back(buf);
  }
  return sqls;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

class MmapTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbOptions options;
    options.synopsis.sample_size = 3000;
    options.target_segment_rows = 6000;  // 24000 rows -> 4 segments
    auto db = Db::FromGenerator("power", 24000, 7, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    pws3_path_ = new std::string(::testing::TempDir() + "/mmap_test.pws3");
    pws2_path_ = new std::string(::testing::TempDir() + "/mmap_test.pws2");
    ASSERT_TRUE(db->Save(*pws3_path_, SaveFormat::kPws3).ok());
    ASSERT_TRUE(db->Save(*pws2_path_, SaveFormat::kPws2).ok());
  }
  static void TearDownTestSuite() {
    std::remove(pws3_path_->c_str());
    std::remove(pws2_path_->c_str());
    delete pws3_path_;
    delete pws2_path_;
  }

  static Db OpenOrDie(const std::string& path, OpenMode mode,
                      KernelMode kernels = KernelMode::kAuto,
                      unsigned exec_threads = 0) {
    DbOptions options;
    options.open_mode = mode;
    options.kernels = kernels;
    options.exec_threads = exec_threads;
    auto db = Db::Open(path, options);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    return std::move(db).value();
  }

  static std::string* pws3_path_;
  static std::string* pws2_path_;
};

std::string* MmapTest::pws3_path_ = nullptr;
std::string* MmapTest::pws2_path_ = nullptr;

// The hard safety rail: for every kernel tier and both serial and parallel
// cross-segment execution, a mmap-opened Db answers bit-identically to a
// heap-opened one over fixed + randomized workloads.
TEST_F(MmapTest, MmapBitEqualsHeapAcrossKernelsAndThreads) {
  const std::vector<std::string> sqls = MakeWorkload(11, 20);
  for (KernelMode kernels : {KernelMode::kScalar, KernelMode::kWidest}) {
    for (unsigned threads : {1u, 8u}) {
      Db heap = OpenOrDie(*pws3_path_, OpenMode::kHeap, kernels, threads);
      Db mmap = OpenOrDie(*pws3_path_, OpenMode::kMmap, kernels, threads);
      EXPECT_FALSE(heap.mapped());
      ASSERT_TRUE(mmap.mapped());
      EXPECT_GT(mmap.mapped_bytes(), 0u);
      EXPECT_EQ(mmap.num_segments(), 4u);
      EXPECT_EQ(mmap.total_rows(), heap.total_rows());
      for (const std::string& sql : sqls) {
        auto h = heap.ExecuteSql(sql);
        auto m = mmap.ExecuteSql(sql);
        ASSERT_TRUE(h.ok()) << sql << ": " << h.status().ToString();
        ASSERT_TRUE(m.ok()) << sql << ": " << m.status().ToString();
        ExpectBitEqual(h.value(), m.value(),
                       sql + " kernels=" +
                           std::to_string(static_cast<int>(kernels)) +
                           " threads=" + std::to_string(threads));
      }
    }
  }
}

// The PWS3 image decodes to the same synopsis as the compact PWS2 one
// (both round-trip the built synopsis exactly), so answers agree bit for
// bit across formats too.
TEST_F(MmapTest, Pws3AgreesWithPws2AcrossFormats) {
  Db pws2 = OpenOrDie(*pws2_path_, OpenMode::kHeap);
  Db pws3 = OpenOrDie(*pws3_path_, OpenMode::kMmap);
  for (const std::string& sql : MakeWorkload(13, 10)) {
    auto a = pws2.ExecuteSql(sql);
    auto b = pws3.ExecuteSql(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ExpectBitEqual(a.value(), b.value(), sql);
  }
}

// Appending to a mmap-opened Db seals new heap segments next to the
// borrowed ones (no write ever lands on the read-only mapping) and stays
// bit-identical to the same append on a heap-opened Db.
TEST_F(MmapTest, AppendAfterMmapOpenStaysBitEqual) {
  Db heap = OpenOrDie(*pws3_path_, OpenMode::kHeap);
  Db mmap = OpenOrDie(*pws3_path_, OpenMode::kMmap);
  auto batch = MakeDataset("power", 3000, 99);
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(heap.Append(batch.value()).ok());
  ASSERT_TRUE(mmap.Append(batch.value()).ok());
  EXPECT_TRUE(mmap.mapped());  // original segments still borrow the file
  EXPECT_EQ(mmap.num_segments(), heap.num_segments());
  EXPECT_EQ(mmap.total_rows(), 27000u);
  for (const std::string& sql : MakeWorkload(17, 10)) {
    auto h = heap.ExecuteSql(sql);
    auto m = mmap.ExecuteSql(sql);
    ASSERT_TRUE(h.ok() && m.ok()) << sql;
    ExpectBitEqual(h.value(), m.value(), sql);
  }
}

// The kMutateBins update path writes through VecView mutators into arrays
// that borrow the read-only mapping: every touched array must copy-on-write
// promote (ASan/SEGV would catch a write to the mapping) and end up
// byte-identical to the same mutation applied to a heap-opened set.
TEST_F(MmapTest, MutateBinsPromotesBorrowedArrays) {
  auto mapped = SynopsisSet::OpenMapped(*pws3_path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(mapped->mapped());
  auto heap = SynopsisSet::Deserialize(ReadAll(*pws3_path_));
  ASSERT_TRUE(heap.ok());
  EXPECT_FALSE(heap->mapped());

  auto batch = MakeDataset("power", 1000, 123);
  ASSERT_TRUE(batch.ok());
  const size_t last = mapped->NumSegments() - 1;
  ASSERT_TRUE(
      mapped->mutable_synopsis(last)->UpdateFromTable(batch.value()).ok());
  ASSERT_TRUE(
      heap->mutable_synopsis(last)->UpdateFromTable(batch.value()).ok());

  // Same bytes out of both sets: the promotion copied the mapped arrays
  // exactly before mutating them.
  EXPECT_EQ(mapped->Serialize(), heap->Serialize());
  EXPECT_EQ(mapped->SerializeMapped(), heap->SerializeMapped());
}

TEST_F(MmapTest, CorruptFilesRejectedCleanly) {
  const std::vector<uint8_t> good = ReadAll(*pws3_path_);
  ASSERT_GT(good.size(), 128u);
  const std::string path = ::testing::TempDir() + "/mmap_corrupt.pws3";

  struct Case {
    const char* name;
    std::vector<uint8_t> bytes;
  };
  std::vector<Case> cases;
  cases.push_back({"empty", {}});
  cases.push_back(
      {"header only half written",
       std::vector<uint8_t>(good.begin(), good.begin() + 32)});
  cases.push_back({"truncated tail", std::vector<uint8_t>(
                                         good.begin(), good.end() - 7)});
  {
    std::vector<uint8_t> b = good;
    b[b.size() - 3] ^= 0xff;  // flip a metadata byte -> CRC mismatch
    cases.push_back({"metadata bit flip", std::move(b)});
  }
  {
    std::vector<uint8_t> b = good;
    b[1] ^= 0xff;  // bad magic
    cases.push_back({"bad magic", std::move(b)});
  }
  {
    std::vector<uint8_t> b = good;
    b[8] ^= 0x01;  // header file_size no longer matches the real size
    cases.push_back({"file size mismatch", std::move(b)});
  }

  for (const Case& c : cases) {
    WriteAll(path, c.bytes);
    for (OpenMode mode : {OpenMode::kMmap, OpenMode::kHeap}) {
      auto db = Db::Open(path, [&] {
        DbOptions o;
        o.open_mode = mode;
        return o;
      }());
      EXPECT_FALSE(db.ok()) << c.name;
    }
    auto set = SynopsisSet::OpenMapped(path);
    EXPECT_FALSE(set.ok()) << c.name;
  }
  std::remove(path.c_str());
}

// Two processes mapping the same synopsis file share one page-cache copy;
// both must answer queries independently.
TEST_F(MmapTest, MultiProcessSharedOpen) {
  const std::string sql = "SELECT COUNT(*) FROM power;";
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: open + query; report via exit code only (no gtest here).
    auto db = Db::Open(*pws3_path_);
    if (!db.ok() || !db->mapped()) _exit(1);
    auto r = db->ExecuteSql(sql);
    _exit(r.ok() && r->Scalar().estimate == 24000.0 ? 0 : 2);
  }
  Db db = OpenOrDie(*pws3_path_, OpenMode::kMmap);
  auto r = db.ExecuteSql(sql);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 24000.0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

// PWH_OPEN overrides the kAuto default (how CI forces one path globally);
// an explicit open_mode always wins over the environment.
TEST_F(MmapTest, EnvOverrideSelectsOpenPath) {
  ::setenv("PWH_OPEN", "heap", 1);
  {
    auto db = Db::Open(*pws3_path_);
    ASSERT_TRUE(db.ok());
    EXPECT_FALSE(db->mapped());
    Db forced = OpenOrDie(*pws3_path_, OpenMode::kMmap);
    EXPECT_TRUE(forced.mapped());
  }
  ::setenv("PWH_OPEN", "mmap", 1);
  {
    auto db = Db::Open(*pws3_path_);
    ASSERT_TRUE(db.ok());
    EXPECT_TRUE(db->mapped());
    Db forced = OpenOrDie(*pws3_path_, OpenMode::kHeap);
    EXPECT_FALSE(forced.mapped());
  }
  ::unsetenv("PWH_OPEN");
}

// The mapping must outlive any Db sharing its segments: snapshots taken
// with WithAppended keep borrowing after the original Db is destroyed.
TEST_F(MmapTest, MappingOutlivesOriginalDbAcrossSnapshots) {
  auto batch = MakeDataset("power", 1500, 31);
  ASSERT_TRUE(batch.ok());
  StatusOr<Db> snapshot = Status::Internal("unset");
  {
    Db db = OpenOrDie(*pws3_path_, OpenMode::kMmap);
    snapshot = db.WithAppended(batch.value());
    ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  }  // original Db destroyed; shared segments keep the mapping alive
  EXPECT_TRUE(snapshot->mapped());
  auto r = snapshot->ExecuteSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 25500.0);
}

// Regression: a checked-in PWS2 file written by the pre-PWS3 code opens
// transparently (heap conversion), answers queries, and re-saves as PWS3
// with bit-identical answers.
TEST_F(MmapTest, LegacyPws2FixtureOpensAndUpgrades) {
#ifndef PWH_TESTDATA_DIR
  GTEST_SKIP() << "PWH_TESTDATA_DIR not defined";
#else
  const std::string fixture =
      std::string(PWH_TESTDATA_DIR) + "/legacy_power.pws2";
  auto legacy = Db::Open(fixture);  // kAuto: legacy files heap-convert
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_FALSE(legacy->mapped());
  EXPECT_EQ(legacy->total_rows(), 12000u);

  const std::string upgraded = ::testing::TempDir() + "/upgraded.pws3";
  ASSERT_TRUE(legacy->Save(upgraded).ok());  // default format: PWS3
  Db reopened = OpenOrDie(upgraded, OpenMode::kMmap);
  ASSERT_TRUE(reopened.mapped());
  for (const std::string& sql : MakeWorkload(19, 8)) {
    auto a = legacy->ExecuteSql(sql);
    auto b = reopened.ExecuteSql(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ExpectBitEqual(a.value(), b.value(), sql);
  }
  std::remove(upgraded.c_str());
#endif
}

// MappedFile unit coverage: open/advise/move semantics, missing files,
// atomic replacement, and mapping survival across rename-over (the
// checkpoint-rotation property ServingDb relies on).
TEST(MappedFileTest, OpenAdviseMoveAndAtomicReplace) {
  const std::string path = ::testing::TempDir() + "/mmap_unit.bin";
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_TRUE(WriteFileAtomic(path, payload.data(), payload.size()).ok());

  auto mf = MappedFile::Open(path);
  ASSERT_TRUE(mf.ok()) << mf.status().ToString();
  ASSERT_EQ(mf->size(), payload.size());
  EXPECT_EQ(0, std::memcmp(mf->bytes().data(), payload.data(),
                           payload.size()));
  mf->Advise(MappedFile::Advice::kSequential);
  mf->Advise(MappedFile::Advice::kWillNeed);

  // Atomically replace the file while mapped: the old mapping still sees
  // the old bytes (POSIX rename-over semantics).
  const std::vector<uint8_t> fresh = {9, 9, 9};
  ASSERT_TRUE(WriteFileAtomic(path, fresh.data(), fresh.size()).ok());
  EXPECT_EQ(mf->bytes()[0], 1);
  auto mf2 = MappedFile::Open(path);
  ASSERT_TRUE(mf2.ok());
  EXPECT_EQ(mf2->size(), 3u);
  EXPECT_EQ(mf2->bytes()[0], 9);

  MappedFile moved = std::move(mf).value();
  EXPECT_EQ(moved.size(), payload.size());

  EXPECT_FALSE(MappedFile::Open(path + ".nope").ok());
  DropFileCache(path);  // best-effort, must not fail or crash
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pairwisehist
