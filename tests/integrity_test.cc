// End-to-end data-integrity tests for the PWS3 v2 checksum layer: v2
// round-trip bit-equality, legacy v1 opens (warn counter, no payload
// checksums), a 200-iteration single-bit-flip fuzz drill (every flip
// detected or provably harmless), SIGBUS-safe truncation-under-map,
// background-scrubber rot detection, copy-on-write promotion
// verification, quarantine fail-closed vs degraded serving over the HTTP
// surface, /healthz lifecycle phases, checkpoint-fallback recovery, and
// kill-at-every-new-failpoint crash drills.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/failpoint.h"
#include "core/integrity.h"
#include "core/pws3.h"
#include "core/synopsis_set.h"
#include "datagen/datasets.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/sigbus_guard.h"

namespace pairwisehist {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}

void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& ctx) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << ctx;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << ctx;
    const AggResult& x = a.groups[g].agg;
    const AggResult& y = b.groups[g].agg;
    ASSERT_EQ(x.empty_selection, y.empty_selection) << ctx;
    if (x.empty_selection) continue;
    EXPECT_EQ(Bits(x.estimate), Bits(y.estimate)) << ctx;
    EXPECT_EQ(Bits(x.lower), Bits(y.lower)) << ctx;
    EXPECT_EQ(Bits(x.upper), Bits(y.upper)) << ctx;
  }
}

const std::vector<std::string>& Workload() {
  static const std::vector<std::string> kSqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(voltage) FROM power WHERE voltage > 240;",
      "SELECT AVG(global_intensity) FROM power GROUP BY day_of_week;",
  };
  return kSqls;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

uint64_t ReadU64At(const std::vector<uint8_t>& bytes, size_t off) {
  uint64_t v;
  std::memcpy(&v, bytes.data() + off, 8);
  return v;
}

DbOptions MmapNoScrub() {
  DbOptions o;
  o.open_mode = OpenMode::kMmap;
  o.scrub = false;
  return o;
}

DbOptions HeapOpen() {
  DbOptions o;
  o.open_mode = OpenMode::kHeap;
  return o;
}

/// Shared fixture: one PWS3 v2 file (4 segments) plus the baseline
/// answers a clean open produces — the bit-equality reference for every
/// corruption drill below.
class IntegrityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbOptions options;
    options.synopsis.sample_size = 3000;
    options.target_segment_rows = 6000;  // 24000 rows -> 4 segments
    auto db = Db::FromGenerator("power", 24000, 7, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    path_ = new std::string(::testing::TempDir() + "/integrity.pws3");
    ASSERT_TRUE(db->Save(*path_, SaveFormat::kPws3).ok());
    image_ = new std::vector<uint8_t>(ReadAll(*path_));
    baseline_ = new std::vector<QueryResult>();
    for (const std::string& sql : Workload()) {
      auto r = db->ExecuteSql(sql);
      ASSERT_TRUE(r.ok()) << sql;
      baseline_->push_back(std::move(r).value());
    }
  }
  static void TearDownTestSuite() {
    std::remove(path_->c_str());
    delete path_;
    delete image_;
    delete baseline_;
  }

  static void ExpectBaselineAnswers(Db* db, const std::string& ctx) {
    for (size_t i = 0; i < Workload().size(); ++i) {
      auto r = db->ExecuteSql(Workload()[i]);
      ASSERT_TRUE(r.ok()) << ctx << ": " << Workload()[i];
      ExpectBitEqual((*baseline_)[i], r.value(), ctx + ": " + Workload()[i]);
    }
  }

  static std::string* path_;
  static std::vector<uint8_t>* image_;       ///< pristine file bytes
  static std::vector<QueryResult>* baseline_;
};

std::string* IntegrityTest::path_ = nullptr;
std::vector<uint8_t>* IntegrityTest::image_ = nullptr;
std::vector<QueryResult>* IntegrityTest::baseline_ = nullptr;

TEST_F(IntegrityTest, V2RoundTripVerifiesAndAnswersBitEqual) {
  auto heap = Db::Open(*path_, HeapOpen());
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  EXPECT_TRUE(heap->VerifyIntegrity().ok());
  EXPECT_FALSE(heap->has_quarantine());
  ExpectBaselineAnswers(&heap.value(), "heap");

  auto mmap = Db::Open(*path_, MmapNoScrub());
  ASSERT_TRUE(mmap.ok()) << mmap.status().ToString();
  ASSERT_TRUE(mmap->mapped());
  // The mapped open carries live integrity state; a full sweep passes.
  ASSERT_NE(mmap->synopses().integrity(), nullptr);
  EXPECT_TRUE(mmap->VerifyIntegrity().ok());
  EXPECT_GT(mmap->synopses().integrity()->blocks_verified(), 0u);
  ExpectBaselineAnswers(&mmap.value(), "mmap");
}

// A v1 file (synthesized from the v2 image by dropping the CRC region)
// still opens on both paths — upgrade compatibility — but each open bumps
// the legacy counter /healthz surfaces, and it carries no integrity
// state: payload corruption there is only caught by the meta stream.
TEST_F(IntegrityTest, LegacyV1OpensAndBumpsWarnCounter) {
  const std::vector<uint8_t>& v2 = *image_;
  const uint64_t data_end = ReadU64At(v2, 16);
  const uint64_t meta_size = ReadU64At(v2, 24);
  const uint64_t meta_off = v2.size() - meta_size;  // after the CRC table
  ASSERT_GT(meta_off, data_end);                    // v2 really has one

  std::vector<uint8_t> v1(v2.begin(), v2.begin() + data_end);
  v1.insert(v1.end(), v2.begin() + meta_off, v2.end());
  const uint32_t version = 1;
  std::memcpy(v1.data() + 4, &version, 4);
  const uint64_t file_size = v1.size();
  std::memcpy(v1.data() + 8, &file_size, 8);
  std::fill(v1.begin() + 40, v1.begin() + 64, uint8_t{0});

  const std::string path = ::testing::TempDir() + "/integrity_v1.pws3";
  WriteAll(path, v1);
  const uint64_t before = Pws3LegacyOpenCount();
  for (const DbOptions& opts : {HeapOpen(), MmapNoScrub()}) {
    auto db = Db::Open(path, opts);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->synopses().integrity(), nullptr);
    EXPECT_TRUE(db->VerifyIntegrity().ok());  // trivially: no state
    ExpectBaselineAnswers(&db.value(), "v1");
  }
  EXPECT_EQ(Pws3LegacyOpenCount(), before + 2);
  std::remove(path.c_str());
}

// The acceptance drill: 200 single-bit flips at LCG-chosen offsets across
// the whole file (header, data, CRC table, meta). Every flip must either
// be detected (open or verify fails) or be provably harmless (all answers
// bit-equal to the pristine baseline) — never a silent wrong answer.
TEST_F(IntegrityTest, SingleBitFlipFuzzNeverAnswersWrong) {
  const std::string path = ::testing::TempDir() + "/integrity_fuzz.pws3";
  uint64_t lcg = 0x9E3779B97F4A7C15ull;
  auto next = [&lcg]() {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 16;
  };
  int detected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> bytes = *image_;
    const size_t off = next() % bytes.size();
    bytes[off] ^= static_cast<uint8_t>(1u << (next() % 8));
    WriteAll(path, bytes);
    const std::string ctx =
        "iter " + std::to_string(iter) + " offset " + std::to_string(off);

    // Heap path: Decode verifies eagerly, so a bad open never exists.
    {
      auto db = Db::Open(path, HeapOpen());
      if (!db.ok()) {
        ++detected;
      } else {
        ExpectBaselineAnswers(&db.value(), ctx + " heap");
      }
    }
    // Mmap path: open is O(metadata), so run the synchronous sweep the
    // scrubber would do before trusting any answer.
    {
      auto db = Db::Open(path, MmapNoScrub());
      if (!db.ok() || !db->VerifyIntegrity().ok()) {
        ++detected;
      } else {
        ExpectBaselineAnswers(&db.value(), ctx + " mmap");
      }
    }
  }
  // The file is almost entirely checksummed bytes; if nothing was ever
  // detected the verification layer is not actually wired in.
  EXPECT_GT(detected, 300) << "of 400 open attempts";
  std::remove(path.c_str());
}

// Truncating the file under an established mapping must surface as a
// clean DataLoss from the SIGBUS guard — never a process kill — and the
// failing blocks quarantine their segments.
TEST_F(IntegrityTest, TruncationUnderMapIsCleanDataLoss) {
  const std::string path = ::testing::TempDir() + "/integrity_trunc.pws3";
  WriteAll(path, *image_);
  auto db = Db::Open(path, MmapNoScrub());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(db->mapped());
  EXPECT_TRUE(db->VerifyIntegrity().ok());

  ASSERT_EQ(::truncate(path.c_str(), 0), 0);
  const uint64_t absorbed_before = SigbusFaultsAbsorbed();
  Status st = db->VerifyIntegrity();
  EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.ToString();
  EXPECT_GT(SigbusFaultsAbsorbed(), absorbed_before);
  EXPECT_TRUE(db->has_quarantine());
  std::remove(path.c_str());
}

// The background scrubber detects at-rest rot: corrupt the file through
// the filesystem (the shared mapping sees the write) and poll until a
// continuous-scrub pass quarantines the segment.
TEST_F(IntegrityTest, BackgroundScrubberDetectsRot) {
  const std::string path = ::testing::TempDir() + "/integrity_scrub.pws3";
  WriteAll(path, *image_);
  DbOptions opts = MmapNoScrub();
  opts.scrub = true;
  opts.scrub_mb_per_s = 0;    // unthrottled
  opts.scrub_repeat_ms = 2;   // continuous
  auto db = Db::Open(path, opts);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const auto& integrity = db->synopses().integrity();
  ASSERT_NE(integrity, nullptr);

  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(Pws3Codec::kHeaderSize));
    char flip;
    f.seekg(static_cast<std::streamoff>(Pws3Codec::kHeaderSize));
    f.read(&flip, 1);
    flip = static_cast<char>(flip ^ 0x01);
    f.seekp(static_cast<std::streamoff>(Pws3Codec::kHeaderSize));
    f.write(&flip, 1);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!db->has_quarantine() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(db->has_quarantine());
  EXPECT_GE(db->scrub_errors(), 1u);
  std::remove(path.c_str());
}

// Copy-on-write promotion re-verifies the source blocks at the moment of
// the copy: with one corrupt byte per 64 KB block, any in-place update of
// a mapped synopsis must raise a checksum error before the copied bytes
// are trusted.
TEST_F(IntegrityTest, CowPromotionVerifiesSourceBlocks) {
  const std::string path = ::testing::TempDir() + "/integrity_cow.pws3";
  std::vector<uint8_t> bytes = *image_;
  const uint64_t data_end = ReadU64At(bytes, 16);
  for (uint64_t off = Pws3Codec::kHeaderSize; off < data_end;
       off += Pws3Codec::kCrcBlockSize) {
    bytes[off] ^= 0x01;
  }
  WriteAll(path, bytes);

  auto set = SynopsisSet::OpenMapped(path);  // open itself is O(metadata)
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE(set->mapped());
  auto batch = MakeDataset("power", 1000, 123);
  ASSERT_TRUE(batch.ok());
  // The update path promotes every touched borrowed array; each
  // promotion verifies the blocks it copies from and finds the rot.
  (void)set->mutable_synopsis(set->NumSegments() - 1)
      ->UpdateFromTable(batch.value());
  EXPECT_GE(set->scrub_errors(), 1u);
  EXPECT_TRUE(set->has_quarantine());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Quarantine serving semantics over the HTTP surface

/// A ServingDb whose last segment is quarantined (corruption planted in
/// the final data block), plus the clean answers for comparison.
class DegradedServing : public IntegrityTest {
 protected:
  void SetUp() override {
    path2_ = ::testing::TempDir() + "/integrity_degraded.pws3";
    std::vector<uint8_t> bytes = *image_;
    const uint64_t data_end = ReadU64At(bytes, 16);
    ASSERT_GT(data_end - Pws3Codec::kHeaderSize, Pws3Codec::kCrcBlockSize)
        << "fixture too small to leave surviving segments";
    bytes[data_end - 1] ^= 0x01;  // last block -> tail segment(s) only
    WriteAll(path2_, bytes);
  }
  void TearDown() override { std::remove(path2_.c_str()); }

  Db OpenQuarantined(bool allow_degraded) {
    DbOptions opts = MmapNoScrub();
    opts.allow_degraded = allow_degraded;
    auto db = Db::Open(path2_, opts);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ(db->VerifyIntegrity().code(), StatusCode::kDataLoss);
    EXPECT_TRUE(db->has_quarantine());
    EXPECT_LT(db->quarantined_segment_count(), db->num_segments())
        << "corruption in the last block quarantined every segment";
    return std::move(db).value();
  }

  static HttpRequest Post(const std::string& path, const std::string& body,
                          bool allow_degraded) {
    HttpRequest req;
    req.method = "POST";
    req.path = path;
    req.body = body;
    if (allow_degraded) req.headers.emplace_back("X-Allow-Degraded", "1");
    return req;
  }

  std::string path2_;
};

TEST_F(DegradedServing, FailsClosedThenDegradesWithHeader) {
  ServingDb sdb(OpenQuarantined(/*allow_degraded=*/false));
  const std::string body = "{\"sql\":\"SELECT COUNT(*) FROM power;\"}";

  // Default: fail closed. The 503 names the escape hatch.
  QueryResult unused;
  Status st = sdb.Query("SELECT COUNT(*) FROM power;", &unused);
  ASSERT_EQ(st.code(), StatusCode::kDataLoss);
  EXPECT_NE(st.message().find("quarantined"), std::string::npos);
  EXPECT_NE(st.message().find("X-Allow-Degraded"), std::string::npos);

  auto handler = MakeServingHandler(&sdb);
  HttpResponse closed = handler(Post("/query", body, false));
  EXPECT_EQ(closed.status, 503);
  EXPECT_NE(closed.body.find("quarantined"), std::string::npos);

  // Opt-in: answers from the surviving segments, flagged as degraded.
  HttpResponse degraded = handler(Post("/query", body, true));
  EXPECT_EQ(degraded.status, 200) << degraded.body;
  EXPECT_NE(degraded.body.find("\"degraded\":true"), std::string::npos);
  EXPECT_NE(degraded.body.find("\"rows_skipped\":"), std::string::npos);

  // The degraded COUNT covers exactly the surviving rows.
  DegradedInfo info;
  QueryResult result;
  ASSERT_TRUE(sdb.Query("SELECT COUNT(*) FROM power;",
                        ReadOptions{/*allow_degraded=*/true}, &result, &info)
                  .ok());
  EXPECT_TRUE(info.degraded);
  EXPECT_GT(info.rows_skipped, 0u);
  EXPECT_DOUBLE_EQ(result.Scalar().estimate,
                   static_cast<double>(24000 - info.rows_skipped));

  // Batch: same fail-closed / opt-in split.
  const std::string batch =
      "{\"sqls\":[\"SELECT COUNT(*) FROM power;\","
      "\"SELECT AVG(voltage) FROM power;\"]}";
  EXPECT_EQ(handler(Post("/batch", batch, false)).status, 503);
  HttpResponse bd = handler(Post("/batch", batch, true));
  EXPECT_EQ(bd.status, 200) << bd.body;
  EXPECT_NE(bd.body.find("\"degraded\":true"), std::string::npos);

  EXPECT_GE(sdb.Stats().degraded_reads, 2u);
  EXPECT_GT(sdb.Stats().quarantined_segments, 0u);
}

// DbOptions::allow_degraded makes degradation the db-wide policy: plain
// reads (including the coalesced path, which carries no per-read
// options) degrade instead of failing.
TEST_F(DegradedServing, DbLevelOptInDegradesPlainReads) {
  ServingDb sdb(OpenQuarantined(/*allow_degraded=*/true));
  QueryResult result;
  ASSERT_TRUE(sdb.Query("SELECT COUNT(*) FROM power;", &result).ok());
  EXPECT_LT(result.Scalar().estimate, 24000.0);
  EXPECT_GE(sdb.Stats().degraded_reads, 1u);
}

// In a pipelined burst, a request opting into degraded reads bypasses
// the coalescer (per-request options don't coalesce) while its neighbors
// fail closed.
TEST_F(DegradedServing, PipelinedBurstHonorsPerRequestOptIn) {
  ServingDb sdb(OpenQuarantined(/*allow_degraded=*/false));
  auto batch_handler = MakeServingBatchHandler(&sdb);
  const std::string body = "{\"sql\":\"SELECT COUNT(*) FROM power;\"}";
  std::vector<HttpRequest> burst = {Post("/query", body, false),
                                    Post("/query", body, true),
                                    Post("/query", body, false)};
  std::vector<HttpResponse> out = batch_handler(burst);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].status, 503);
  EXPECT_EQ(out[1].status, 200) << out[1].body;
  EXPECT_NE(out[1].body.find("\"degraded\":true"), std::string::npos);
  EXPECT_EQ(out[2].status, 503);
}

// ---------------------------------------------------------------------------
// /healthz

TEST_F(IntegrityTest, HealthzReportsLifecycleAndIntegrity) {
  auto db = Db::Open(*path_, MmapNoScrub());
  ASSERT_TRUE(db.ok());
  ServingDb sdb(std::move(db).value());
  ServiceState state;
  ServiceGate gate({.max_inflight = 1});
  auto handler = MakeServingHandler(&sdb, &gate, &state);

  HttpRequest req;
  req.method = "GET";
  req.path = "/healthz";
  HttpResponse starting = handler(req);
  EXPECT_EQ(starting.status, 503);
  EXPECT_NE(starting.body.find("\"status\":\"starting\""), std::string::npos);

  state.Set(ServiceState::Phase::kOk);
  HttpResponse ok = handler(req);
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(ok.body.find("\"quarantined_segments\":0"), std::string::npos);
  EXPECT_NE(ok.body.find("\"scrub_errors\":"), std::string::npos);
  EXPECT_NE(ok.body.find("\"legacy_pws3v1_opens\":"), std::string::npos);

  state.Set(ServiceState::Phase::kDraining);
  HttpResponse draining = handler(req);
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("\"status\":\"draining\""),
            std::string::npos);

  // Probes are gate-exempt: the shed counters stay untouched.
  EXPECT_EQ(gate.stats().shed_reads, 0u);
  EXPECT_EQ(gate.stats().admitted, 0u);

  // Without a ServiceState the endpoint reports ok (embedders that don't
  // manage lifecycle still get the integrity counters).
  auto stateless = MakeServingHandler(&sdb);
  EXPECT_EQ(stateless(req).status, 200);
}

// ---------------------------------------------------------------------------
// Checkpoint-fallback recovery

std::string CheckpointPath(const std::string& dir, uint64_t epoch) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%020llu",
                static_cast<unsigned long long>(epoch));
  return dir + "/checkpoint-" + buf + ".pws3";
}

void RemoveDirIfPresent(const std::string& dir) {
  for (const char* f : {"wal.log"}) ::unlink((dir + "/" + f).c_str());
  for (uint64_t e = 0; e < 16; ++e) {
    for (const char* suffix : {".pws2", ".pws3"}) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%020llu",
                    static_cast<unsigned long long>(e));
      ::unlink((dir + "/checkpoint-" + buf + suffix).c_str());
    }
  }
  ::rmdir(dir.c_str());
}

Db MakeBaseDb() {
  DbOptions options;
  options.target_segment_rows = 1500;
  auto db = Db::FromGenerator("power", 3000, 7, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

Table MakeBatch(int i) {
  auto batch = MakeDataset("power", 250, 1000 + i);
  EXPECT_TRUE(batch.ok());
  return std::move(batch).value();
}

/// Leaves `dir` with two checkpoints — epoch 1 (healthy) and epoch 2
/// (newest) — and a WAL still holding the epoch-2 record, by failing the
/// post-checkpoint WAL truncation. Exactly the crash window the fallback
/// exists for.
void BuildTwoCheckpointDir(const std::string& dir) {
  ServingOptions opts;
  opts.durability.dir = dir;
  auto sdb = ServingDb::CreateDurable(MakeBaseDb(), opts);
  ASSERT_TRUE(sdb.ok()) << sdb.status().ToString();
  ASSERT_TRUE(sdb.value()->Append(MakeBatch(0)).ok());
  ASSERT_TRUE(sdb.value()->Checkpoint().ok());  // epoch 1, WAL truncated
  ASSERT_TRUE(sdb.value()->Append(MakeBatch(1)).ok());
  ASSERT_TRUE(failpoint::Set("checkpoint.truncate_wal", "error").ok());
  Status cp = sdb.value()->Checkpoint();  // epoch 2 lands, WAL survives
  failpoint::ClearAll();
  EXPECT_FALSE(cp.ok());
  sdb.value().reset();
  struct ::stat st;
  ASSERT_EQ(::stat(CheckpointPath(dir, 1).c_str(), &st), 0);
  ASSERT_EQ(::stat(CheckpointPath(dir, 2).c_str(), &st), 0);
}

void CorruptDataByte(const std::string& path) {
  std::vector<uint8_t> bytes = ReadAll(path);
  ASSERT_GT(bytes.size(), Pws3Codec::kHeaderSize + 64);
  const uint64_t data_end = ReadU64At(bytes, 16);
  bytes[Pws3Codec::kHeaderSize + (data_end - Pws3Codec::kHeaderSize) / 2] ^=
      0x01;
  WriteAll(path, bytes);
}

TEST(RecoverFallback, SkipsCorruptNewestCheckpointWhenWalCovers) {
  const std::string dir = ::testing::TempDir() + "/integrity_recover";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);
  CorruptDataByte(CheckpointPath(dir, 2));

  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const RecoveryInfo& info = recovered.value()->recovery_info();
  EXPECT_EQ(info.checkpoints_skipped, 1u);
  EXPECT_EQ(info.corrupt_checkpoint, CheckpointPath(dir, 2));
  EXPECT_EQ(recovered.value()->Stats().epoch, 2u);
  EXPECT_EQ(recovered.value()->Stats().rows, 3000u + 2 * 250u);

  // Answers match a clean in-memory replay of the same appends.
  Db clean = MakeBaseDb();
  for (int i = 0; i < 2; ++i) {
    auto next = clean.WithAppended(MakeBatch(i));
    ASSERT_TRUE(next.ok());
    clean = std::move(next).value();
  }
  for (const std::string& sql : Workload()) {
    QueryResult served;
    ASSERT_TRUE(recovered.value()->Query(sql, &served).ok()) << sql;
    auto expect = clean.ExecuteSql(sql);
    ASSERT_TRUE(expect.ok()) << sql;
    ExpectBitEqual(expect.value(), served, sql);
  }
  recovered.value().reset();
  RemoveDirIfPresent(dir);
}

// The regression the satellite demands: when the WAL does NOT cover the
// gap back to the corrupt newest checkpoint, recovery refuses to serve
// silently-stale data, and the error names the corrupt file.
TEST(RecoverFallback, RefusesWhenWalDoesNotCoverTheGap) {
  const std::string dir = ::testing::TempDir() + "/integrity_recover_gap";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);
  CorruptDataByte(CheckpointPath(dir, 2));
  ASSERT_EQ(::truncate((dir + "/wal.log").c_str(), 0), 0);

  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(recovered.status().ToString().find(CheckpointPath(dir, 2)),
            std::string::npos)
      << recovered.status().ToString();
  RemoveDirIfPresent(dir);
}

// Every checkpoint corrupt: recovery fails and names the newest one.
TEST(RecoverFallback, AllCheckpointsCorruptNamesNewest) {
  const std::string dir = ::testing::TempDir() + "/integrity_recover_all";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);
  CorruptDataByte(CheckpointPath(dir, 1));
  CorruptDataByte(CheckpointPath(dir, 2));

  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(recovered.status().ToString().find(CheckpointPath(dir, 2)),
            std::string::npos)
      << recovered.status().ToString();
  RemoveDirIfPresent(dir);
}

// The recover.checkpoint_open failpoint skips the newest candidate the
// same way real corruption does — the injection path CI chaos runs use.
TEST(RecoverFallback, CheckpointOpenFailpointFallsBack) {
  const std::string dir = ::testing::TempDir() + "/integrity_recover_fp";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);

  ASSERT_TRUE(failpoint::Set("recover.checkpoint_open", "error@1").ok());
  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  failpoint::ClearAll();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->recovery_info().checkpoints_skipped, 1u);
  EXPECT_EQ(recovered.value()->Stats().epoch, 2u);
  recovered.value().reset();
  RemoveDirIfPresent(dir);
}

// Recovered state surfaces the fallback in /stats.
TEST(RecoverFallback, StatsSurfaceSkippedCheckpoints) {
  const std::string dir = ::testing::TempDir() + "/integrity_recover_stats";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);
  CorruptDataByte(CheckpointPath(dir, 2));

  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  auto handler = MakeServingHandler(recovered.value().get());
  HttpRequest req;
  req.method = "GET";
  req.path = "/stats";
  const std::string body = handler(req).body;
  EXPECT_NE(body.find("\"checkpoints_skipped\":1"), std::string::npos)
      << body;
  EXPECT_NE(body.find("\"corrupt_checkpoint\":"), std::string::npos) << body;
  recovered.value().reset();
  RemoveDirIfPresent(dir);
}

// ---------------------------------------------------------------------------
// Kill drills at every new failpoint: the process dies exactly at the
// injected point; nothing half-written survives to corrupt later runs.

TEST_F(IntegrityTest, KillDuringScrubVerify) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!failpoint::Set("scrub.verify", "crash@1").ok()) ::_Exit(20);
    auto db = Db::Open(*path_, MmapNoScrub());
    if (!db.ok()) ::_Exit(21);
    (void)db->VerifyIntegrity();  // crashes on the first block
    ::_Exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  EXPECT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);
}

TEST(RecoverFallback, KillDuringCheckpointOpen) {
  const std::string dir = ::testing::TempDir() + "/integrity_kill_recover";
  RemoveDirIfPresent(dir);
  BuildTwoCheckpointDir(dir);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!failpoint::Set("recover.checkpoint_open", "crash@1").ok()) {
      ::_Exit(20);
    }
    ServingOptions opts;
    opts.durability.dir = dir;
    (void)ServingDb::Recover(opts);
    ::_Exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  EXPECT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);

  // The crash touched nothing: recovery still works afterwards.
  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  recovered.value().reset();
  RemoveDirIfPresent(dir);
}

TEST_F(IntegrityTest, KillDuringSaveLeavesOriginalIntact) {
  const std::string out = ::testing::TempDir() + "/integrity_kill_save.pws3";
  std::remove(out.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!failpoint::Set("pws3.block_corrupt", "crash@1").ok()) ::_Exit(20);
    auto db = Db::Open(*path_, HeapOpen());
    if (!db.ok()) ::_Exit(21);
    (void)db->Save(out, SaveFormat::kPws3);  // crashes before file I/O
    ::_Exit(0);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  EXPECT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);

  // Crash fired inside Encode, before any write: no output file exists
  // and the source file still opens and verifies.
  struct ::stat st;
  EXPECT_NE(::stat(out.c_str(), &st), 0);
  auto db = Db::Open(*path_, MmapNoScrub());
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->VerifyIntegrity().ok());
}

// The corruption generator itself: pws3.block_corrupt=error flips a data
// byte after the CRCs are computed, so the written file must fail
// verification — the hook CI chaos legs use to prove detection end to
// end.
TEST_F(IntegrityTest, BlockCorruptFailpointProducesDetectableFile) {
  const std::string out = ::testing::TempDir() + "/integrity_rotgen.pws3";
  auto db = Db::Open(*path_, HeapOpen());
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(failpoint::Set("pws3.block_corrupt", "error").ok());
  Status saved = db->Save(out, SaveFormat::kPws3);
  failpoint::ClearAll();
  ASSERT_TRUE(saved.ok()) << saved.ToString();

  auto heap = Db::Open(out, HeapOpen());
  EXPECT_FALSE(heap.ok());  // eager verify catches it
  auto mapped = Db::Open(out, MmapNoScrub());
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped->VerifyIntegrity().code(), StatusCode::kDataLoss);
  std::remove(out.c_str());
}

TEST(FailpointRegistry, NewIntegrityPointsAreKnown) {
  const auto& points = failpoint::KnownPoints();
  for (const char* p :
       {"scrub.verify", "pws3.block_corrupt", "recover.checkpoint_open"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), p), points.end()) << p;
  }
}

}  // namespace
}  // namespace pairwisehist
