// Unit tests for the storage layer: columns, tables, sampling, CSV.
#include <cmath>

#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/table.h"

namespace pairwisehist {
namespace {

Table MakeSmallTable() {
  Table t("demo");
  Column a("a", DataType::kInt64, 0);
  for (int i = 0; i < 10; ++i) a.Append(i);
  Column b("b", DataType::kFloat64, 2);
  for (int i = 0; i < 10; ++i) {
    if (i % 4 == 3) {
      b.AppendNull();
    } else {
      b.Append(i * 1.25);
    }
  }
  Column c("c", DataType::kCategorical, 0);
  for (int i = 0; i < 10; ++i) c.AppendCategory(i % 2 ? "odd" : "even");
  t.AddColumn(std::move(a));
  t.AddColumn(std::move(b));
  t.AddColumn(std::move(c));
  return t;
}

TEST(ColumnTest, AppendAndRead) {
  Column c("x", DataType::kFloat64, 1);
  c.Append(1.5);
  c.AppendNull();
  c.Append(-2.0);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_FALSE(c.IsNull(0));
  EXPECT_TRUE(c.IsNull(1));
  EXPECT_DOUBLE_EQ(c.Value(0), 1.5);
  EXPECT_DOUBLE_EQ(c.Value(2), -2.0);
  EXPECT_EQ(c.null_count(), 1u);
  EXPECT_EQ(c.non_null_count(), 2u);
  EXPECT_TRUE(c.has_nulls());
}

TEST(ColumnTest, MinMaxIgnoreNulls) {
  Column c("x", DataType::kFloat64, 1);
  c.AppendNull();
  c.Append(5.0);
  c.Append(-1.0);
  c.AppendNull();
  EXPECT_DOUBLE_EQ(c.Min(), -1.0);
  EXPECT_DOUBLE_EQ(c.Max(), 5.0);
}

TEST(ColumnTest, MinMaxAllNullIsNaN) {
  Column c("x", DataType::kFloat64, 1);
  c.AppendNull();
  EXPECT_TRUE(std::isnan(c.Min()));
  EXPECT_TRUE(std::isnan(c.Max()));
}

TEST(ColumnTest, CountDistinct) {
  Column c("x", DataType::kInt64, 0);
  for (double v : {3.0, 1.0, 3.0, 2.0, 1.0}) c.Append(v);
  c.AppendNull();
  EXPECT_EQ(c.CountDistinct(), 3u);
}

TEST(ColumnTest, CategoryInterning) {
  Column c("x", DataType::kCategorical, 0);
  c.AppendCategory("red");
  c.AppendCategory("blue");
  c.AppendCategory("red");
  EXPECT_EQ(c.dictionary().size(), 2u);
  EXPECT_DOUBLE_EQ(c.Value(0), 0.0);
  EXPECT_DOUBLE_EQ(c.Value(1), 1.0);
  EXPECT_DOUBLE_EQ(c.Value(2), 0.0);
  EXPECT_EQ(c.CategoryCode("blue").value(), 1);
  EXPECT_FALSE(c.CategoryCode("green").ok());
  EXPECT_EQ(c.CategoryName(0).value(), "red");
  EXPECT_FALSE(c.CategoryName(9).ok());
}

TEST(TableTest, ColumnLookup) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.NumColumns(), 3u);
  EXPECT_EQ(t.NumRows(), 10u);
  EXPECT_EQ(t.ColumnIndex("b").value(), 1u);
  EXPECT_FALSE(t.ColumnIndex("zz").ok());
  EXPECT_EQ(t.FindColumn("c").value()->name(), "c");
}

TEST(TableTest, ValidateCatchesLengthMismatch) {
  Table t("bad");
  Column a("a", DataType::kInt64, 0);
  a.Append(1);
  Column b("b", DataType::kInt64, 0);
  t.AddColumn(std::move(a));
  t.AddColumn(std::move(b));
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TableTest, SampleSizeAndDeterminism) {
  Table t = MakeSmallTable();
  Table s1 = t.Sample(4, 7);
  Table s2 = t.Sample(4, 7);
  EXPECT_EQ(s1.NumRows(), 4u);
  ASSERT_EQ(s2.NumRows(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(s1.column(0).Value(r), s2.column(0).Value(r));
  }
}

TEST(TableTest, SampleLargerThanTableReturnsAll) {
  Table t = MakeSmallTable();
  Table s = t.Sample(100, 7);
  EXPECT_EQ(s.NumRows(), 10u);
}

TEST(TableTest, SamplePreservesNullsAndDictionary) {
  Table t = MakeSmallTable();
  Table s = t.Sample(10, 7);
  EXPECT_EQ(s.column(2).dictionary().size(), 2u);
  EXPECT_EQ(s.column(1).null_count(), t.column(1).null_count());
}

TEST(TableTest, SliceRange) {
  Table t = MakeSmallTable();
  Table s = t.Slice(2, 5);
  EXPECT_EQ(s.NumRows(), 3u);
  EXPECT_DOUBLE_EQ(s.column(0).Value(0), 2.0);
}

TEST(TableTest, RawSizeBytesPositive) {
  Table t = MakeSmallTable();
  EXPECT_GT(t.RawSizeBytes(), 10u * 8u);
}

TEST(TableTest, SchemaString) {
  Table t = MakeSmallTable();
  EXPECT_EQ(t.SchemaString(),
            "a(int64), b(float64), c(categorical)");
}

// ---------------------------------------------------------------------------
// CSV

TEST(CsvTest, ParseWithTypeInference) {
  auto t = ParseCsv("id,value,label\n1,2.50,x\n2,3.75,y\n3,,x\n", "t");
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->NumRows(), 3u);
  EXPECT_EQ(t->column(0).type(), DataType::kInt64);
  EXPECT_EQ(t->column(1).type(), DataType::kFloat64);
  EXPECT_EQ(t->column(1).decimals(), 2);
  EXPECT_EQ(t->column(2).type(), DataType::kCategorical);
  EXPECT_TRUE(t->column(1).IsNull(2));
}

TEST(CsvTest, QuotedFieldsAndEscapes) {
  auto t = ParseCsv("name\n\"a,b\"\n\"say \"\"hi\"\"\"\n", "t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->column(0).CategoryName(0).value(), "a,b");
  EXPECT_EQ(t->column(0).CategoryName(1).value(), "say \"hi\"");
}

TEST(CsvTest, RejectsRaggedRows) {
  EXPECT_FALSE(ParseCsv("a,b\n1\n", "t").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("", "t").ok()); }

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a\n\"oops\n", "t").ok());
}

TEST(CsvTest, RoundTripPreservesValues) {
  Table t = MakeSmallTable();
  std::string csv = ToCsvString(t);
  auto back = ParseCsv(csv, "demo");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->NumRows(), t.NumRows());
  ASSERT_EQ(back->NumColumns(), t.NumColumns());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    EXPECT_DOUBLE_EQ(back->column(0).Value(r), t.column(0).Value(r));
    EXPECT_EQ(back->column(1).IsNull(r), t.column(1).IsNull(r));
    if (!t.column(1).IsNull(r)) {
      EXPECT_NEAR(back->column(1).Value(r), t.column(1).Value(r), 1e-9);
    }
  }
}

TEST(CsvTest, WriteAndReadFile) {
  Table t = MakeSmallTable();
  std::string path = ::testing::TempDir() + "/ph_csv_test.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumRows(), t.NumRows());
  EXPECT_EQ(back->name(), "ph_csv_test");
}

TEST(CsvTest, MissingFileFails) {
  EXPECT_FALSE(ReadCsv("/nonexistent/path.csv").ok());
}

}  // namespace
}  // namespace pairwisehist
