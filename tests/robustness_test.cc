// Failure injection and adversarial-input robustness: corrupt synopses,
// degenerate schemas, extreme data shapes. Nothing here may crash; every
// failure must surface as a Status.
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exact.h"

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Corrupt synopsis bytes.

TEST(CorruptionTest, RandomTruncationsNeverCrash) {
  Table t = MakePower(3000, 130);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  auto bytes = ph->Serialize();
  Rng rng(131);
  for (int i = 0; i < 50; ++i) {
    size_t cut = static_cast<size_t>(rng.UniformInt(uint64_t(bytes.size())));
    std::vector<uint8_t> trunc(bytes.begin(), bytes.begin() + cut);
    auto result = PairwiseHist::Deserialize(trunc);  // must not crash
    EXPECT_FALSE(result.ok()) << cut;
  }
}

TEST(CorruptionTest, RandomBitFlipsEitherFailOrStayConsistent) {
  Table t = MakeLight(2000, 132);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  auto bytes = ph->Serialize();
  Rng rng(133);
  for (int i = 0; i < 60; ++i) {
    auto copy = bytes;
    size_t pos = static_cast<size_t>(rng.UniformInt(uint64_t(copy.size())));
    copy[pos] ^= static_cast<uint8_t>(1u << rng.UniformInt(uint64_t{8}));
    auto result = PairwiseHist::Deserialize(copy);
    if (!result.ok()) continue;  // rejected: fine
    // Accepted: structure must still be internally coherent enough to
    // answer a query without crashing.
    AqpEngine engine(&result.value());
    auto r = engine.ExecuteSql("SELECT COUNT(*) FROM t;");
    (void)r;  // no crash is the assertion
  }
}

// ---------------------------------------------------------------------------
// Degenerate schemas and data shapes.

TEST(DegenerateTest, SingleRowTable) {
  Table t("one");
  Column x("x", DataType::kInt64, 0);
  x.Append(42);
  t.AddColumn(std::move(x));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto r = engine.ExecuteSql("SELECT AVG(x) FROM one;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 42.0);
  auto m = engine.ExecuteSql("SELECT MIN(x) FROM one WHERE x > 100;");
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Scalar().empty_selection);
}

TEST(DegenerateTest, SingleColumnTable) {
  Rng rng(134);
  Table t("mono");
  Column x("x", DataType::kFloat64, 1);
  for (int i = 0; i < 5000; ++i) {
    x.Append(std::round(rng.Normal(50, 10) * 10) / 10);
  }
  t.AddColumn(std::move(x));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(ph->num_pairs(), 0u);
  AqpEngine engine(&ph.value());
  auto exact = ExecuteExactSql(t, "SELECT MEDIAN(x) FROM mono WHERE x > 45;");
  auto approx = engine.ExecuteSql("SELECT MEDIAN(x) FROM mono WHERE x > 45;");
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->Scalar().estimate, exact->Scalar().estimate, 3.0);
}

TEST(DegenerateTest, ConstantColumn) {
  Table t("c");
  Column x("x", DataType::kInt64, 0);
  Column y("y", DataType::kInt64, 0);
  Rng rng(135);
  for (int i = 0; i < 3000; ++i) {
    x.Append(7);
    y.Append(static_cast<double>(rng.UniformInt(uint64_t{100})));
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  EXPECT_DOUBLE_EQ(
      engine.ExecuteSql("SELECT MAX(x) FROM c;")->Scalar().estimate, 7.0);
  EXPECT_DOUBLE_EQ(
      engine.ExecuteSql("SELECT VAR(x) FROM c;")->Scalar().estimate, 0.0);
  // Predicate on the constant column.
  EXPECT_DOUBLE_EQ(
      engine.ExecuteSql("SELECT COUNT(y) FROM c WHERE x = 7;")
          ->Scalar()
          .estimate,
      3000.0);
  EXPECT_DOUBLE_EQ(
      engine.ExecuteSql("SELECT COUNT(y) FROM c WHERE x = 8;")
          ->Scalar()
          .estimate,
      0.0);
}

TEST(DegenerateTest, MostlyNullColumn) {
  Table t("n");
  Column x("x", DataType::kFloat64, 1);
  Column y("y", DataType::kInt64, 0);
  Rng rng(136);
  for (int i = 0; i < 4000; ++i) {
    if (i % 100 == 0) {
      x.Append(std::round(rng.Uniform(0, 100) * 10) / 10);
    } else {
      x.AppendNull();
    }
    y.Append(static_cast<double>(i % 50));
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  // COUNT(x) must reflect only the non-null values.
  auto r = engine.ExecuteSql("SELECT COUNT(x) FROM n;");
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->Scalar().estimate, 40.0, 1.0);
  // Predicating on the sparse column from another aggregation column.
  auto exact =
      ExecuteExactSql(t, "SELECT COUNT(y) FROM n WHERE x > 50;");
  auto approx = engine.ExecuteSql("SELECT COUNT(y) FROM n WHERE x > 50;");
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->Scalar().estimate, exact->Scalar().estimate, 15.0);
}

TEST(DegenerateTest, AllNullColumnBuildsAndAnswers) {
  Table t("an");
  Column x("x", DataType::kFloat64, 1);
  Column y("y", DataType::kInt64, 0);
  for (int i = 0; i < 1000; ++i) {
    x.AppendNull();
    y.Append(i % 10);
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto r = engine.ExecuteSql("SELECT COUNT(x) FROM an;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 0.0);
  auto s = engine.ExecuteSql("SELECT AVG(y) FROM an WHERE x > 1;");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->Scalar().empty_selection);
}

TEST(DegenerateTest, ExtremeValueRanges) {
  Table t("ex");
  Column x("x", DataType::kInt64, 0);
  Rng rng(137);
  for (int i = 0; i < 3000; ++i) {
    // Mix of tiny and huge magnitudes (but within the 2^53 code budget).
    x.Append(rng.Bernoulli(0.5)
                 ? static_cast<double>(rng.UniformInt(uint64_t{100}))
                 : 1e12 + static_cast<double>(rng.UniformInt(uint64_t{1000})));
  }
  t.AddColumn(std::move(x));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto exact = ExecuteExactSql(t, "SELECT COUNT(x) FROM ex WHERE x < 1000;");
  auto approx = engine.ExecuteSql("SELECT COUNT(x) FROM ex WHERE x < 1000;");
  ASSERT_TRUE(approx.ok());
  EXPECT_NEAR(approx->Scalar().estimate, exact->Scalar().estimate,
              exact->Scalar().estimate * 0.05 + 5);
}

TEST(DegenerateTest, NegativeValuesDecodeCorrectly) {
  Table t("neg");
  Column x("x", DataType::kFloat64, 2);
  Rng rng(138);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    double v = std::round(rng.Normal(-100, 20) * 100) / 100;
    sum += v;
    x.Append(v);
  }
  t.AddColumn(std::move(x));
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto avg = engine.ExecuteSql("SELECT AVG(x) FROM neg;");
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->Scalar().estimate, sum / 5000, 2.0);
  auto s = engine.ExecuteSql("SELECT SUM(x) FROM neg WHERE x < -100;");
  auto e = ExecuteExactSql(t, "SELECT SUM(x) FROM neg WHERE x < -100;");
  ASSERT_TRUE(s.ok());
  EXPECT_LT(std::fabs(s->Scalar().estimate - e->Scalar().estimate),
            std::fabs(e->Scalar().estimate) * 0.1);
  // SUM bounds with negative values must still bracket the estimate.
  EXPECT_LE(s->Scalar().lower, s->Scalar().estimate);
  EXPECT_GE(s->Scalar().upper, s->Scalar().estimate);
}

// ---------------------------------------------------------------------------
// Query-level adversarial cases.

TEST(AdversarialQueryTest, ContradictionsAndTautologies) {
  Table t = MakePower(5000, 139);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  // Contradiction on one column.
  auto c = engine.ExecuteSql(
      "SELECT COUNT(voltage) FROM power WHERE hour > 20 AND hour < 3;");
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Scalar().estimate, 0.0);
  // Tautology via OR of complements.
  auto u = engine.ExecuteSql(
      "SELECT COUNT(voltage) FROM power WHERE hour >= 12 OR hour < 12;");
  ASSERT_TRUE(u.ok());
  EXPECT_NEAR(u->Scalar().estimate, 5000.0, 1.0);
  // != on a never-present value matches everything.
  auto n = engine.ExecuteSql(
      "SELECT COUNT(voltage) FROM power WHERE hour != 99;");
  ASSERT_TRUE(n.ok());
  EXPECT_NEAR(n->Scalar().estimate, 5000.0, 1.0);
}

TEST(AdversarialQueryTest, LiteralOutsideDataRange) {
  Table t = MakePower(4000, 140);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  EXPECT_DOUBLE_EQ(engine
                       .ExecuteSql("SELECT COUNT(voltage) FROM power WHERE "
                                   "voltage > 10000;")
                       ->Scalar()
                       .estimate,
                   0.0);
  EXPECT_NEAR(engine
                  .ExecuteSql("SELECT COUNT(voltage) FROM power WHERE "
                              "voltage > -10000;")
                  ->Scalar()
                  .estimate,
              4000.0, 1.0);
}

TEST(AdversarialQueryTest, DeepNestingParsesAndRuns) {
  Table t = MakePower(4000, 141);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  std::string sql = "SELECT COUNT(voltage) FROM power WHERE ";
  // ((((hour > 0 AND hour < 23) OR voltage > 1) AND ...) ...)
  sql +=
      "((((hour > 0 AND hour < 23) OR voltage > 500) AND "
      "(global_intensity > 0 OR sub_metering_1 >= 0)) AND "
      "(day_of_week <= 6 OR (hour = 2 AND voltage != 0)));";
  auto r = engine.ExecuteSql(sql);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto e = ExecuteExactSql(t, sql);
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(r->Scalar().estimate, e->Scalar().estimate,
              e->Scalar().estimate * 0.1 + 10);
}

TEST(AdversarialQueryTest, RepeatedSameColumnConditions) {
  Table t = MakePower(6000, 142);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  // Five conditions on the same column — delayed transformation must
  // consolidate them into one interval, not multiply coverages.
  const char* sql =
      "SELECT COUNT(voltage) FROM power WHERE hour > 2 AND hour > 4 AND "
      "hour < 20 AND hour < 18 AND hour != 10;";
  auto r = engine.ExecuteSql(sql);
  auto e = ExecuteExactSql(t, sql);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_LT(std::fabs(r->Scalar().estimate - e->Scalar().estimate),
            e->Scalar().estimate * 0.05 + 5);
}

}  // namespace
}  // namespace pairwisehist
