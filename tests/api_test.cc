// Tests for the unified Db facade and the prepared-query (parse-once,
// execute-many) API: open paths, plan/execute equivalence with the one-shot
// engine entry points, Save/Open round trips, incremental Append, and
// backend swapping through AqpMethod.
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "baselines/sampling_aqp.h"
#include "common/rng.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/exact.h"
#include "query/sql_parser.h"
#include "storage/csv.h"

namespace pairwisehist {
namespace {

// Query shapes covering every execution path: scalar/grouped, AND/OR,
// same-column consolidation, COUNT(*), every aggregate of Table 3.
const char* kWorkload[] = {
    "SELECT COUNT(*) FROM power;",
    "SELECT COUNT(*) FROM power WHERE voltage > 240;",
    "SELECT COUNT(voltage) FROM power WHERE voltage > 240 AND hour < 12;",
    "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
    "SELECT SUM(sub_metering_3) FROM power WHERE voltage > 240 AND "
    "hour < 12;",
    "SELECT MIN(voltage) FROM power WHERE voltage > 235 AND voltage < 245;",
    "SELECT MAX(global_intensity) FROM power WHERE hour < 6 OR hour > 22;",
    "SELECT MEDIAN(global_active_power) FROM power WHERE day_of_week = 6;",
    "SELECT VAR(global_active_power) FROM power WHERE hour > 6;",
    "SELECT AVG(global_active_power) FROM power WHERE hour >= 6 AND "
    "hour <= 18 OR voltage > 242;",
    "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;",
    "SELECT COUNT(*) FROM power GROUP BY day_of_week;",
};

void ExpectSameResult(const QueryResult& a, const QueryResult& b,
                      const std::string& sql) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << sql;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << sql;
    const AggResult& x = a.groups[g].agg;
    const AggResult& y = b.groups[g].agg;
    EXPECT_EQ(x.empty_selection, y.empty_selection) << sql;
    if (x.empty_selection) continue;
    EXPECT_DOUBLE_EQ(x.estimate, y.estimate) << sql;
    EXPECT_DOUBLE_EQ(x.lower, y.lower) << sql;
    EXPECT_DOUBLE_EQ(x.upper, y.upper) << sql;
  }
}

class ApiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DbOptions options;
    options.synopsis.sample_size = 10000;
    auto db = Db::FromGenerator("power", 40000, 7, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    db_ = new Db(std::move(db).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Db* db_;
};

Db* ApiTest::db_ = nullptr;

TEST_F(ApiTest, OpenFromTable) {
  Table table = MakePower(20000, 3);
  DbOptions options;
  options.synopsis.sample_size = 5000;
  auto db = Db::FromTable(std::move(table), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->name(), "power");
  EXPECT_EQ(db->synopsis().total_rows(), 20000u);
  ASSERT_NE(db->table(), nullptr);
  EXPECT_EQ(db->table()->NumRows(), 20000u);
  auto r = db->ExecuteSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 20000.0);
}

TEST_F(ApiTest, OpenFromCsv) {
  Table table = MakeTemp(2000, 5);
  std::string path = ::testing::TempDir() + "/api_test_temp.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());

  DbOptions options;
  options.synopsis.sample_size = 2000;
  auto db = Db::FromCsv(path, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ(db->synopsis().total_rows(), 2000u);

  // The facade answers SQL from CSV data end to end.
  auto approx = db->ExecuteSql("SELECT COUNT(*) FROM t;");
  ASSERT_TRUE(approx.ok());
  EXPECT_DOUBLE_EQ(approx->Scalar().estimate, 2000.0);
  std::remove(path.c_str());
}

TEST_F(ApiTest, OpenFromCsvMissingFile) {
  auto db = Db::FromCsv("/nonexistent/nope.csv");
  EXPECT_FALSE(db.ok());
}

TEST_F(ApiTest, PreparedReExecutionMatchesExecuteSql) {
  for (const char* sql : kWorkload) {
    auto prepared = db_->Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql << ": "
                               << prepared.status().ToString();
    EXPECT_TRUE(prepared->compiled());

    auto oneshot = db_->engine().ExecuteSql(sql);
    ASSERT_TRUE(oneshot.ok()) << sql;

    // Execute the prepared statement several times: identical answers to
    // the parse-per-call path every time.
    for (int rep = 0; rep < 3; ++rep) {
      auto r = prepared->Execute();
      ASSERT_TRUE(r.ok()) << sql;
      ExpectSameResult(r.value(), oneshot.value(), sql);
    }
  }
}

TEST_F(ApiTest, PreparedExactMatchesExactSql) {
  const char* sql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
  auto prepared = db_->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  auto exact_prepared = prepared->ExecuteExact();
  ASSERT_TRUE(exact_prepared.ok());
  auto exact_direct = ExecuteExactSql(*db_->table(), sql);
  ASSERT_TRUE(exact_direct.ok());
  ExpectSameResult(exact_prepared.value(), exact_direct.value(), sql);
}

TEST_F(ApiTest, CompileOnceIsDeterministicUnderPairGrid) {
  // The pair-grid choice happens at compile time; re-executions must not
  // drift from each other.
  auto prepared = db_->Prepare(
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236 AND global_intensity > 0.4;");
  ASSERT_TRUE(prepared.ok());
  auto first = prepared->Execute();
  ASSERT_TRUE(first.ok());
  for (int rep = 0; rep < 5; ++rep) {
    auto again = prepared->Execute();
    ASSERT_TRUE(again.ok());
    ExpectSameResult(again.value(), first.value(), "pair-grid repeat");
  }
}

TEST_F(ApiTest, SaveOpenRoundTripPreservesAnswers) {
  std::string path = ::testing::TempDir() + "/api_test_synopsis.ph";
  ASSERT_TRUE(db_->Save(path).ok());

  auto restored = Db::Open(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->synopsis().total_rows(), db_->synopsis().total_rows());
  EXPECT_EQ(restored->table(), nullptr);  // synopsis-only

  for (const char* sql : kWorkload) {
    auto a = db_->ExecuteSql(sql);
    auto b = restored->ExecuteSql(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ExpectSameResult(a.value(), b.value(), sql);
  }

  // Exact fallback is gone but reports a clean status, not a crash.
  auto exact = restored->ExecuteExactSql("SELECT COUNT(*) FROM power;");
  EXPECT_FALSE(exact.ok());
  EXPECT_EQ(exact.status().code(), StatusCode::kUnsupported);
  std::remove(path.c_str());
}

TEST_F(ApiTest, BlobRoundTrip) {
  std::vector<uint8_t> blob = db_->ToBlob();
  auto restored = Db::FromBlob(blob);
  ASSERT_TRUE(restored.ok());
  auto a = db_->ExecuteSql("SELECT AVG(voltage) FROM power;");
  auto b = restored->ExecuteSql("SELECT AVG(voltage) FROM power;");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a->Scalar().estimate, b->Scalar().estimate);
}

TEST_F(ApiTest, AppendReflectedInResults) {
  DbOptions options;
  options.synopsis.sample_size = 8000;
  auto db = Db::FromGenerator("power", 30000, 11, options);
  ASSERT_TRUE(db.ok());

  // Prepare BEFORE the append: plans must survive incremental updates and
  // see the new rows.
  auto count = db->Prepare("SELECT COUNT(*) FROM power;");
  auto filtered = db->Prepare(
      "SELECT COUNT(voltage) FROM power WHERE voltage > 230;");
  ASSERT_TRUE(count.ok() && filtered.ok());
  auto before = count->Execute();
  auto filtered_before = filtered->Execute();
  ASSERT_TRUE(before.ok() && filtered_before.ok());
  EXPECT_DOUBLE_EQ(before->Scalar().estimate, 30000.0);

  Table batch = MakePower(5000, 77);
  ASSERT_TRUE(db->Append(batch).ok());

  auto after = count->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->Scalar().estimate, 35000.0);
  auto filtered_after = filtered->Execute();
  ASSERT_TRUE(filtered_after.ok());
  EXPECT_GT(filtered_after->Scalar().estimate,
            filtered_before->Scalar().estimate);

  // The kept table grew too, so exact answers track the append.
  auto exact = db->ExecuteExactSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(exact.ok());
  EXPECT_DOUBLE_EQ(exact->Scalar().estimate, 35000.0);
}

TEST_F(ApiTest, AppendRecodesMismatchedDictionaries) {
  // Two tables with the same categorical strings interned in different
  // orders: the batch's codes must be re-mapped through the fitted
  // dictionary before reaching the synopsis, or category predicates
  // silently count the wrong values after an append.
  auto make = [](size_t n, bool fault_first, uint64_t seed) {
    Table t("sensors");
    Column reading("reading", DataType::kFloat64, 1);
    Column status("status", DataType::kCategorical, 0);
    status.SetDictionary(fault_first
                             ? std::vector<std::string>{"fault", "ok"}
                             : std::vector<std::string>{"ok", "fault"});
    Rng rng(seed);
    for (size_t r = 0; r < n; ++r) {
      reading.Append(std::round(rng.Uniform(0, 100) * 10) / 10);
      bool fault = rng.Uniform(0, 1) < 0.2;
      // Code of the chosen string under THIS table's dictionary order.
      status.Append(fault == fault_first ? 0.0 : 1.0);
    }
    t.AddColumn(std::move(reading));
    t.AddColumn(std::move(status));
    return t;
  };
  // Base: "ok" interned first (80% of rows). Batch: "fault" first.
  Table base = make(8000, /*fault_first=*/false, 5);
  Table batch = make(2000, /*fault_first=*/true, 6);
  ASSERT_NE(base.column(1).dictionary(), batch.column(1).dictionary());

  DbOptions options;
  options.synopsis.sample_size = 0;  // every row; exact counts per bin
  auto db = Db::FromTable(std::move(base), options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(db->Append(batch).ok());

  const char* sql =
      "SELECT COUNT(reading) FROM sensors WHERE status = 'fault';";
  auto approx = db->ExecuteSql(sql);
  auto exact = db->ExecuteExactSql(sql);
  ASSERT_TRUE(approx.ok() && exact.ok());
  // ~20% of 10000 rows; a code-domain mix-up would put the batch's
  // 'fault' rows (interned as code 0 there) under 'ok' instead.
  EXPECT_NEAR(approx->Scalar().estimate, exact->Scalar().estimate,
              0.02 * 10000);
}

TEST_F(ApiTest, AppendSchemaMismatchRejected) {
  DbOptions options;
  options.synopsis.sample_size = 2000;
  auto db = Db::FromGenerator("temp", 2000, 1, options);
  ASSERT_TRUE(db.ok());
  Table wrong = MakePower(100, 1);
  EXPECT_FALSE(db->Append(wrong).ok());
}

TEST_F(ApiTest, CompressedDbAnswersAndAppends) {
  DbOptions options;
  options.synopsis.sample_size = 8000;
  options.compress = true;
  auto db = Db::FromGenerator("power", 20000, 13, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_NE(db->compressed(), nullptr);
  EXPECT_EQ(db->compressed()->num_rows(), 20000u);

  auto r = db->ExecuteSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Scalar().estimate, 20000.0);

  Table batch = MakePower(3000, 99);
  ASSERT_TRUE(db->Append(batch).ok());
  EXPECT_EQ(db->compressed()->num_rows(), 23000u);
  auto after = db->ExecuteSql("SELECT COUNT(*) FROM power;");
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->Scalar().estimate, 23000.0);
}

TEST_F(ApiTest, BackendSwap) {
  DbOptions options;
  options.synopsis.sample_size = 8000;
  auto db = Db::FromGenerator("power", 30000, 21, options);
  ASSERT_TRUE(db.ok());
  const char* sql = "SELECT COUNT(voltage) FROM power WHERE voltage > 238;";

  auto ph_result = db->ExecuteSql(sql);
  ASSERT_TRUE(ph_result.ok());

  // Swap in the sampling baseline behind the same interface.
  auto sampling = db->MakeBaselineBackend("sampling", 5000, 3);
  ASSERT_TRUE(sampling.ok()) << sampling.status().ToString();
  ASSERT_TRUE(db->SetBackend(std::move(sampling).value()).ok());
  ASSERT_NE(db->backend(), nullptr);
  EXPECT_EQ(db->backend()->name(), "Sampling");

  auto prepared = db->Prepare(sql);
  ASSERT_TRUE(prepared.ok());
  EXPECT_FALSE(prepared->compiled());  // backend path, no compiled plan
  auto sampled = prepared->Execute();
  ASSERT_TRUE(sampled.ok());
  // Both methods estimate the same quantity within loose agreement.
  EXPECT_NEAR(sampled->Scalar().estimate, ph_result->Scalar().estimate,
              0.25 * ph_result->Scalar().estimate + 50.0);

  // Direct injection of a caller-built AqpMethod also works.
  ASSERT_TRUE(db->SetBackend(std::make_unique<SamplingAqp>(
                                 *db->table(), 4000, 5))
                  .ok());
  auto injected = db->ExecuteSql(sql);
  ASSERT_TRUE(injected.ok());

  // Restoring the built-in engine restores the compiled hot path.
  db->ResetBackend();
  EXPECT_EQ(db->backend(), nullptr);
  auto back = db->Prepare(sql);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->compiled());
  auto back_result = back->Execute();
  ASSERT_TRUE(back_result.ok());
  EXPECT_DOUBLE_EQ(back_result->Scalar().estimate,
                   ph_result->Scalar().estimate);
}

TEST_F(ApiTest, KeepTableFalseDropsExactFallback) {
  DbOptions options;
  options.synopsis.sample_size = 2000;
  options.keep_table = false;
  auto db = Db::FromGenerator("temp", 4000, 2, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->table(), nullptr);
  auto approx = db->ExecuteSql("SELECT COUNT(*) FROM temp;");
  ASSERT_TRUE(approx.ok());
  auto exact = db->ExecuteExactSql("SELECT COUNT(*) FROM temp;");
  EXPECT_EQ(exact.status().code(), StatusCode::kUnsupported);
  auto backend = db->MakeBaselineBackend("sampling", 100);
  EXPECT_EQ(backend.status().code(), StatusCode::kUnsupported);
}

TEST_F(ApiTest, PreparedSurvivesDbMove) {
  DbOptions options;
  options.synopsis.sample_size = 2000;
  auto built = Db::FromGenerator("temp", 4000, 9, options);
  ASSERT_TRUE(built.ok());
  auto prepared = built->Prepare("SELECT COUNT(*) FROM temp;");
  ASSERT_TRUE(prepared.ok());
  auto expected = prepared->Execute();
  ASSERT_TRUE(expected.ok());

  Db moved = std::move(built).value();
  auto after = prepared->Execute();
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(after->Scalar().estimate, expected->Scalar().estimate);
  auto exact = prepared->ExecuteExact();
  ASSERT_TRUE(exact.ok());
}

// The engine-level compile/execute split that Prepare builds on.
TEST(CompiledQueryTest, CompileExecuteMatchesDirectExecute) {
  Table table = MakePower(30000, 17);
  PairwiseHistConfig cfg;
  cfg.sample_size = 10000;
  auto ph = PairwiseHist::BuildFromTable(table, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());

  for (const char* sql : kWorkload) {
    auto q = ParseSql(sql);
    ASSERT_TRUE(q.ok()) << sql;
    auto plan = engine.Compile(q.value());
    ASSERT_TRUE(plan.ok()) << sql;
    auto from_plan = engine.Execute(plan.value());
    auto direct = engine.Execute(q.value());
    ASSERT_TRUE(from_plan.ok() && direct.ok()) << sql;
    ExpectSameResult(from_plan.value(), direct.value(), sql);
  }
}

TEST(CompiledQueryTest, PlanIntrospection) {
  Table table = MakePower(20000, 19);
  PairwiseHistConfig cfg;
  cfg.sample_size = 8000;
  auto ph = PairwiseHist::BuildFromTable(table, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());

  auto q = ParseSql(
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;");
  ASSERT_TRUE(q.ok());
  auto plan = engine.Compile(q.value());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->grouped());
  EXPECT_EQ(plan->query().func, AggFunc::kAvg);

  auto grouped = engine.Compile(
      ParseSql("SELECT COUNT(*) FROM power GROUP BY day_of_week;").value());
  ASSERT_TRUE(grouped.ok());
  EXPECT_TRUE(grouped->grouped());
}

TEST(CompiledQueryTest, CompileRejectsUnknownColumn) {
  Table table = MakeTemp(2000, 1);
  PairwiseHistConfig cfg;
  cfg.sample_size = 2000;
  auto ph = PairwiseHist::BuildFromTable(table, cfg);
  ASSERT_TRUE(ph.ok());
  AqpEngine engine(&ph.value());
  auto plan = engine.Compile(
      ParseSql("SELECT AVG(nope) FROM temp;").value());
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace pairwisehist
