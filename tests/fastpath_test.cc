// Fast-path validation: the zero-allocation execution path (scratch arena,
// cell prefix index, interval-localized coverage, COUNT prefix-sum
// shortcut) must produce results IDENTICAL to the reference path — same
// doubles, not approximately equal — across every query shape, plus stay
// allocation-free in steady state and safe under concurrent execution.
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/rng.h"
#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "query/engine.h"
#include "query/sql_parser.h"

// ---------------------------------------------------------------------------
// Global allocation counter (this binary only): counts every operator-new
// so the zero-allocation claim is asserted, not assumed. Disabled under
// AddressSanitizer — ASan pairs its own operator new/delete interceptors,
// and a malloc-based replacement trips alloc-dealloc-mismatch; the
// zero-allocation property is still enforced by the regular CI job.

#if defined(__SANITIZE_ADDRESS__)
#define PH_COUNTING_ALLOCATOR 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PH_COUNTING_ALLOCATOR 0
#endif
#endif
#ifndef PH_COUNTING_ALLOCATOR
#define PH_COUNTING_ALLOCATOR 1
#endif

namespace {
std::atomic<size_t> g_alloc_count{0};
}  // namespace

#if PH_COUNTING_ALLOCATOR
void* operator new(size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
#endif  // PH_COUNTING_ALLOCATOR

namespace pairwisehist {
namespace {

// ---------------------------------------------------------------------------
// Random query generation over an arbitrary table.

struct ColumnStats {
  std::string name;
  DataType type = DataType::kFloat64;
  double min = 0, max = 0;
  std::vector<std::string> dictionary;
};

std::vector<ColumnStats> CollectStats(const Table& t) {
  std::vector<ColumnStats> stats;
  for (size_t c = 0; c < t.NumColumns(); ++c) {
    const Column& col = t.column(c);
    ColumnStats s;
    s.name = col.name();
    s.type = col.type();
    bool any = false;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      if (!any || v < s.min) s.min = v;
      if (!any || v > s.max) s.max = v;
      any = true;
    }
    if (col.type() == DataType::kCategorical) s.dictionary = col.dictionary();
    stats.push_back(std::move(s));
  }
  return stats;
}

Condition RandCondition(Rng* rng, const std::vector<ColumnStats>& stats) {
  const ColumnStats& s = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe, CmpOp::kEq, CmpOp::kNe};
  Condition c;
  c.column = s.name;
  c.op = kOps[rng->UniformInt(6)];
  if (s.type == DataType::kCategorical && !s.dictionary.empty() &&
      rng->Uniform(0, 1) < 0.7) {
    c.is_string = true;
    if (rng->Uniform(0, 1) < 0.1) {
      c.text_value = "no-such-category";
    } else {
      c.text_value = s.dictionary[static_cast<size_t>(
          rng->UniformInt(static_cast<uint64_t>(s.dictionary.size())))];
    }
    // Only equality semantics are meaningful on categoricals.
    c.op = rng->Uniform(0, 1) < 0.5 ? CmpOp::kEq : CmpOp::kNe;
    return c;
  }
  double span = s.max - s.min;
  double v = s.min + rng->Uniform(-0.1, 1.1) * (span > 0 ? span : 1.0);
  if (rng->Uniform(0, 1) < 0.5) v = std::floor(v);  // mix integral literals
  c.value = v;
  return c;
}

PredicateNode RandTree(Rng* rng, const std::vector<ColumnStats>& stats,
                       int depth) {
  if (depth <= 0 || rng->Uniform(0, 1) < 0.45) {
    PredicateNode n;
    n.type = PredicateNode::Type::kCondition;
    n.condition = RandCondition(rng, stats);
    return n;
  }
  PredicateNode n;
  n.type = rng->Uniform(0, 1) < 0.5 ? PredicateNode::Type::kAnd
                                    : PredicateNode::Type::kOr;
  size_t kids = 2 + rng->UniformInt(2);
  for (size_t i = 0; i < kids; ++i) {
    n.children.push_back(RandTree(rng, stats, depth - 1));
  }
  return n;
}

Query RandQuery(Rng* rng, const std::vector<ColumnStats>& stats,
                const std::string& table_name, bool allow_group) {
  static const AggFunc kFuncs[] = {AggFunc::kCount,  AggFunc::kSum,
                                   AggFunc::kAvg,    AggFunc::kVar,
                                   AggFunc::kMin,    AggFunc::kMax,
                                   AggFunc::kMedian};
  Query q;
  q.table = table_name;
  q.func = kFuncs[rng->UniformInt(7)];
  const ColumnStats& agg = stats[static_cast<size_t>(
      rng->UniformInt(static_cast<uint64_t>(stats.size())))];
  q.agg_column = agg.name;
  if (q.func == AggFunc::kCount && rng->Uniform(0, 1) < 0.25) {
    q.count_star = true;
    q.agg_column.clear();
  }
  if (rng->Uniform(0, 1) < 0.92) {
    q.where = RandTree(rng, stats, 2);
  }
  if (allow_group && rng->Uniform(0, 1) < 0.15) {
    for (const ColumnStats& s : stats) {
      if (s.type == DataType::kCategorical) {
        q.group_by = s.name;
        break;
      }
    }
  }
  return q;
}

// ---------------------------------------------------------------------------
// Identical-result assertion (exact doubles, NaN-aware).

bool SameDouble(double x, double y) {
  return (std::isnan(x) && std::isnan(y)) || x == y;
}

void ExpectIdentical(const QueryResult& ref, const QueryResult& fast,
                     const std::string& ctx) {
  ASSERT_EQ(ref.groups.size(), fast.groups.size()) << ctx;
  for (size_t g = 0; g < ref.groups.size(); ++g) {
    const auto& a = ref.groups[g];
    const auto& b = fast.groups[g];
    EXPECT_EQ(a.label, b.label) << ctx;
    EXPECT_EQ(a.agg.empty_selection, b.agg.empty_selection) << ctx;
    EXPECT_TRUE(SameDouble(a.agg.estimate, b.agg.estimate))
        << ctx << "  est ref=" << a.agg.estimate
        << " fast=" << b.agg.estimate;
    EXPECT_TRUE(SameDouble(a.agg.lower, b.agg.lower))
        << ctx << "  lower ref=" << a.agg.lower << " fast=" << b.agg.lower;
    EXPECT_TRUE(SameDouble(a.agg.upper, b.agg.upper))
        << ctx << "  upper ref=" << a.agg.upper << " fast=" << b.agg.upper;
  }
}

// Runs `n` random queries against both engines and asserts identical
// output (including which queries fail, and how).
void RunEquivalence(const PairwiseHist& ph, const Table& table, uint64_t seed,
                    size_t n) {
  AqpEngineOptions ref_opt;
  ref_opt.use_fast_path = false;
  AqpEngine ref(&ph, ref_opt);
  AqpEngine fast(&ph);  // fast path on by default

  std::vector<ColumnStats> stats = CollectStats(table);
  Rng rng(seed);
  size_t executed = 0;
  for (size_t i = 0; i < n; ++i) {
    Query q = RandQuery(&rng, stats, table.name(), /*allow_group=*/true);
    auto a = ref.Execute(q);
    auto b = fast.Execute(q);
    ASSERT_EQ(a.ok(), b.ok()) << q.ToSql();
    if (!a.ok()) continue;
    ++executed;
    ExpectIdentical(a.value(), b.value(), q.ToSql());
  }
  // The generator should produce mostly executable queries.
  EXPECT_GT(executed, n / 2);
}

// ---------------------------------------------------------------------------
// Fixtures.

Table ControlledTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  Table t("ctl");
  Column x("x", DataType::kInt64, 0);
  Column y("y", DataType::kFloat64, 1);
  Column g("g", DataType::kCategorical, 0);
  g.SetDictionary({"small", "mid", "big"});
  for (size_t r = 0; r < n; ++r) {
    double xv = std::floor(rng.Uniform(0, 1000));
    x.Append(xv);
    y.Append(std::round((2 * xv + rng.Normal(0, 25)) * 10) / 10);
    g.Append(xv < 250 ? 0.0 : (xv < 750 ? 1.0 : 2.0));
  }
  t.AddColumn(std::move(x));
  t.AddColumn(std::move(y));
  t.AddColumn(std::move(g));
  return t;
}

TEST(FastPathEquivalence, ControlledFullSample) {
  Table t = ControlledTable(30000, 91);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;  // ρ = 1: no widening
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  RunEquivalence(ph.value(), t, 7, 300);
}

TEST(FastPathEquivalence, TaxisSampledWithNulls) {
  auto t = MakeDataset("taxis", 30000, 11);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  PairwiseHistConfig cfg;
  cfg.sample_size = 8000;  // ρ < 1: Eq. 29 widening active
  auto ph = PairwiseHist::BuildFromTable(t.value(), cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  RunEquivalence(ph.value(), t.value(), 13, 300);
}

TEST(FastPathEquivalence, PowerSampled) {
  auto t = MakeDataset("power", 40000, 5);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  PairwiseHistConfig cfg;
  cfg.sample_size = 10000;
  auto ph = PairwiseHist::BuildFromTable(t.value(), cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  RunEquivalence(ph.value(), t.value(), 17, 250);
}

TEST(FastPathEquivalence, SerializeRoundTripRebuildsIndex) {
  Table t = ControlledTable(20000, 29);
  PairwiseHistConfig cfg;
  cfg.sample_size = 6000;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  auto back = PairwiseHist::Deserialize(ph->Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  // Fast vs reference on the deserialized synopsis: proves the exec index
  // rebuilt at decode time is consistent with the decoded cells.
  RunEquivalence(back.value(), t, 23, 200);
}

TEST(FastPathEquivalence, AfterIncrementalUpdate) {
  Table t = ControlledTable(20000, 37);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  Table batch = ControlledTable(4000, 38);
  ASSERT_TRUE(ph->UpdateFromTable(batch).ok());
  // Counts changed; the rebuilt sparse index and prefix sums must agree
  // with the reference dense scans.
  RunEquivalence(ph.value(), t, 31, 200);
}

// Directed COUNT shapes around the prefix-sum shortcut: full-range,
// half-open, equality, negation, empty, and unbounded predicates.
TEST(FastPathEquivalence, CountShortcutShapes) {
  Table t = ControlledTable(25000, 43);
  PairwiseHistConfig cfg;
  cfg.sample_size = 5000;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  AqpEngineOptions ref_opt;
  ref_opt.use_fast_path = false;
  AqpEngine ref(&ph.value(), ref_opt);
  AqpEngine fast(&ph.value());
  const char* kShapes[] = {
      "SELECT COUNT(x) FROM ctl WHERE x >= 0;",
      "SELECT COUNT(x) FROM ctl WHERE x > 500;",
      "SELECT COUNT(x) FROM ctl WHERE x <= 123;",
      "SELECT COUNT(x) FROM ctl WHERE x = 400;",
      "SELECT COUNT(x) FROM ctl WHERE x != 400;",
      "SELECT COUNT(x) FROM ctl WHERE x > 2000;",
      "SELECT COUNT(x) FROM ctl WHERE x < -5;",
      "SELECT COUNT(x) FROM ctl WHERE x >= 250 AND x < 750;",
      "SELECT COUNT(g) FROM ctl WHERE g = 'mid';",
  };
  for (const char* sql : kShapes) {
    auto a = ref.ExecuteSql(sql);
    auto b = fast.ExecuteSql(sql);
    ASSERT_TRUE(a.ok() && b.ok()) << sql;
    ExpectIdentical(a.value(), b.value(), sql);
  }
}

// ---------------------------------------------------------------------------
// Zero allocations in steady state.

TEST(FastPathAllocation, ScalarExecuteIntoIsAllocationFree) {
#if !PH_COUNTING_ALLOCATOR
  GTEST_SKIP() << "counting allocator disabled under AddressSanitizer";
#endif
  auto db = Db::FromGenerator("power", 30000, 3);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const char* kShapes[] = {
      // COUNT shortcut + general branch-1 coverage.
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
      // Cross-column transfer (branch 3) with pair grid.
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      // Deep conjunction across five columns.
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
      "AND day_of_week < 6;",
      // Disjunction.
      "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;",
      // Heavier aggregators.
      "SELECT VAR(voltage) FROM power WHERE voltage > 238;",
      "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;",
      "SELECT MIN(voltage) FROM power WHERE hour = 3;",
  };
  for (const char* sql : kShapes) {
    auto prepared = db->Prepare(sql);
    ASSERT_TRUE(prepared.ok()) << sql;
    QueryResult result;
    // Warm up: grows the arena blocks, the scratch pool and the result
    // storage to their steady-state sizes.
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(prepared->ExecuteInto(&result).ok()) << sql;
    }
    size_t before = g_alloc_count.load(std::memory_order_relaxed);
    for (int i = 0; i < 100; ++i) {
      Status st = prepared->ExecuteInto(&result);
      ASSERT_TRUE(st.ok()) << sql;
    }
    size_t after = g_alloc_count.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << sql << "  (" << (after - before) << " allocations in 100 calls)";
  }
}

// ---------------------------------------------------------------------------
// Concurrency: one Db hammered from many threads must return the same
// results as single-threaded execution (scratch pool isolation + lock-free
// chi-squared cache).

TEST(FastPathConcurrency, ParallelExecuteMatchesSerial) {
  auto db = Db::FromGenerator("power", 30000, 9);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  const std::vector<std::string> sqls = {
      "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(sub_metering_3) FROM power WHERE day_of_week < 3 AND "
      "hour >= 8;",
      "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;",
      "SELECT VAR(voltage) FROM power WHERE global_intensity > 0.5;",
      "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;",
  };
  std::vector<PreparedQuery> prepared;
  std::vector<QueryResult> expected;
  for (const std::string& sql : sqls) {
    auto pq = db->Prepare(sql);
    ASSERT_TRUE(pq.ok()) << sql;
    auto r = pq->Execute();
    ASSERT_TRUE(r.ok()) << sql;
    prepared.push_back(std::move(pq).value());
    expected.push_back(std::move(r).value());
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < kThreads; ++th) {
    threads.emplace_back([&, th]() {
      QueryResult result;
      for (int i = 0; i < kIters; ++i) {
        size_t q = static_cast<size_t>((i + th) % sqls.size());
        if (!prepared[q].ExecuteInto(&result).ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        const QueryResult& want = expected[q];
        bool same = result.groups.size() == want.groups.size();
        for (size_t g = 0; same && g < want.groups.size(); ++g) {
          same = result.groups[g].label == want.groups[g].label &&
                 SameDouble(result.groups[g].agg.estimate,
                            want.groups[g].agg.estimate) &&
                 SameDouble(result.groups[g].agg.lower,
                            want.groups[g].agg.lower) &&
                 SameDouble(result.groups[g].agg.upper,
                            want.groups[g].agg.upper);
        }
        if (!same) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// Concurrent first-touch of a fresh synopsis: the chi-squared critical
// cache and scratch pool start cold on every thread simultaneously.
TEST(FastPathConcurrency, ColdStartRace) {
  Table t = ControlledTable(20000, 57);
  PairwiseHistConfig cfg;
  cfg.sample_size = 5000;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok()) << ph.status().ToString();
  AqpEngine engine(&ph.value());
  auto plan = engine.Compile(
      *ParseSql("SELECT AVG(y) FROM ctl WHERE x > 100 AND x < 900;"));
  ASSERT_TRUE(plan.ok());
  auto serial = engine.Execute(plan.value());
  ASSERT_TRUE(serial.ok());
  double want = serial->Scalar().estimate;

  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  for (int th = 0; th < 8; ++th) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 50; ++i) {
        auto r = engine.Execute(plan.value());
        if (!r.ok() || !SameDouble(r->Scalar().estimate, want)) {
          bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t2 : threads) t2.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// Parallel construction determinism: any thread count produces a
// byte-identical synopsis.

TEST(ParallelBuild, DeterministicAcrossThreadCounts) {
  auto t = MakeDataset("power", 20000, 21);
  ASSERT_TRUE(t.ok());
  PairwiseHistConfig serial_cfg;
  serial_cfg.sample_size = 8000;
  serial_cfg.build_threads = 1;
  PairwiseHistConfig par_cfg = serial_cfg;
  par_cfg.build_threads = 0;  // one per core
  auto a = PairwiseHist::BuildFromTable(t.value(), serial_cfg);
  auto b = PairwiseHist::BuildFromTable(t.value(), par_cfg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->Serialize(), b->Serialize());
}

TEST(ParallelBuild, DbOptionsKnobIsWired) {
  DbOptions options;
  options.synopsis.sample_size = 5000;
  options.build_threads = 2;
  auto db = Db::FromGenerator("power", 15000, 33, options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto r = db->ExecuteSql("SELECT COUNT(voltage) FROM power WHERE voltage > 240;");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->Scalar().estimate, 0);
}

}  // namespace
}  // namespace pairwisehist
