// Fault-injection harness: failpoint registry unit tests, then the
// kill-at-every-failpoint crash drill — a forked child serves an append
// stream with a crash armed at each durability failpoint in turn, dies
// mid-flight, and the parent recovers the directory and proves (a) every
// acknowledged append survived and (b) query answers are bit-identical to
// a clean replay of the same batches.
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/db.h"
#include "common/failpoint.h"
#include "datagen/datasets.h"
#include "serve/serving_db.h"
#include "storage/wal.h"

namespace pairwisehist {
namespace {

constexpr size_t kBaseRows = 3000;
constexpr size_t kBatchRows = 250;
constexpr int kAppendAttempts = 5;

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveDirIfPresent(const std::string& dir) {
  for (const char* f : {"wal.log", "ack.log"}) {
    ::unlink((dir + "/" + f).c_str());
  }
  for (uint64_t e = 0; e < 64; ++e) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(e));
    for (const char* suffix : {".pws2", ".pws2.tmp", ".pws3", ".pws3.tmp"}) {
      ::unlink((dir + "/checkpoint-" + buf + suffix).c_str());
    }
  }
  ::rmdir(dir.c_str());
}

Db MakeBaseDb() {
  DbOptions options;
  options.target_segment_rows = 1500;
  auto db = Db::FromGenerator("power", kBaseRows, 7, options);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return std::move(db).value();
}

Table MakeBatch(int i) {
  auto batch = MakeDataset("power", kBatchRows, 1000 + i);
  EXPECT_TRUE(batch.ok());
  return std::move(batch).value();
}

const std::vector<std::string>& ChaosSqls() {
  static const std::vector<std::string> kSqls = {
      "SELECT COUNT(*) FROM power;",
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
      "SELECT SUM(voltage) FROM power WHERE hour < 6;",
      "SELECT AVG(global_intensity) FROM power WHERE day_of_week < 6;",
  };
  return kSqls;
}

void ExpectBitEqual(const QueryResult& a, const QueryResult& b,
                    const std::string& context) {
  ASSERT_EQ(a.groups.size(), b.groups.size()) << context;
  for (size_t g = 0; g < a.groups.size(); ++g) {
    EXPECT_EQ(a.groups[g].label, b.groups[g].label) << context;
    const double av[3] = {a.groups[g].agg.estimate, a.groups[g].agg.lower,
                          a.groups[g].agg.upper};
    const double bv[3] = {b.groups[g].agg.estimate, b.groups[g].agg.lower,
                          b.groups[g].agg.upper};
    for (int k = 0; k < 3; ++k) {
      const bool both_nan = std::isnan(av[k]) && std::isnan(bv[k]);
      EXPECT_TRUE(both_nan || av[k] == bv[k])
          << context << " group " << g << " field " << k << ": " << av[k]
          << " vs " << bv[k];
    }
  }
}

// ---------------------------------------------------------------------------
// Failpoint registry

TEST(Failpoint, KnownPointsAreEnumerable) {
  const auto& points = failpoint::KnownPoints();
  EXPECT_GE(points.size(), 8u);
  for (const char* p : {"wal.append.write", "wal.append.sync",
                        "checkpoint.save", "recovery.replay",
                        "service.handle", "http.send"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), p), points.end()) << p;
  }
}

TEST(Failpoint, RejectsUnknownPointsAndActions) {
  EXPECT_FALSE(failpoint::Set("no.such.point", "error").ok());
  EXPECT_FALSE(failpoint::Set("wal.append.sync", "explode").ok());
  EXPECT_FALSE(failpoint::Set("wal.append.sync", "error@0").ok());
  EXPECT_FALSE(failpoint::Set("wal.append.sync", "delay:abc").ok());
}

TEST(Failpoint, ErrorFiresOnTriggeredHitOnly) {
  ASSERT_TRUE(failpoint::Set("wal.append.sync", "error@2").ok());
  EXPECT_TRUE(failpoint::Fire("wal.append.sync").status.ok());
  EXPECT_FALSE(failpoint::Fire("wal.append.sync").status.ok());
  EXPECT_TRUE(failpoint::Fire("wal.append.sync").status.ok());
  EXPECT_EQ(failpoint::HitCount("wal.append.sync"), 3u);
  failpoint::ClearAll();
  EXPECT_TRUE(failpoint::Fire("wal.append.sync").status.ok());
}

TEST(Failpoint, DelayAndPartialAndOff) {
  ASSERT_TRUE(failpoint::Set("service.handle", "delay:1").ok());
  EXPECT_TRUE(failpoint::Fire("service.handle").status.ok());
  ASSERT_TRUE(failpoint::Set("wal.append.write", "partial").ok());
  EXPECT_TRUE(failpoint::Fire("wal.append.write").partial);
  ASSERT_TRUE(failpoint::Set("wal.append.write", "off").ok());
  EXPECT_FALSE(failpoint::Fire("wal.append.write").partial);
  failpoint::ClearAll();
}

// ---------------------------------------------------------------------------
// Crash drill

struct CrashSpec {
  const char* point;
  const char* action;     // armed in the child before the append stream
  bool with_checkpoints;  // child checkpoints after every append
};

/// Child body (no gtest here — exit codes report the outcome):
///   0  = stream finished without the failpoint firing (drill failure)
///   86 = injected crash (failpoint::kCrashExitCode)
///   2x = unexpected error
void RunCrashChild(const std::string& dir, const CrashSpec& spec) {
  ServingOptions opts;
  opts.durability.dir = dir;
  auto sdb = ServingDb::CreateDurable(MakeBaseDb(), opts);
  if (!sdb.ok()) _Exit(20);

  const int ack_fd =
      ::open((dir + "/ack.log").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (ack_fd < 0) _Exit(21);

  if (!failpoint::Set(spec.point, spec.action).ok()) _Exit(22);
  for (int i = 0; i < kAppendAttempts; ++i) {
    Table batch = MakeBatch(i);
    Status st = sdb.value()->Append(batch);
    if (st.ok()) {
      // The ack log is the client's view: only appends recorded here were
      // acknowledged, and recovery must preserve every one of them.
      char line[16];
      const int n = std::snprintf(line, sizeof(line), "%d\n", i);
      if (::write(ack_fd, line, n) != n || ::fsync(ack_fd) != 0) _Exit(23);
    }
    if (spec.with_checkpoints) (void)sdb.value()->Checkpoint();
  }
  _Exit(0);
}

/// Parent-side validation after the child died: recover, check
/// acknowledged ⊆ recovered, and compare answers against a clean replay
/// built through the same synopsis save/open path recovery uses.
void ValidateRecovery(const std::string& dir) {
  std::vector<int> acked;
  {
    std::ifstream ack(dir + "/ack.log");
    int v;
    while (ack >> v) acked.push_back(v);
  }

  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const uint64_t epoch = recovered.value()->Stats().epoch;

  // Appends are acknowledged in order, so epoch (appends applied) must
  // cover every ack; unacked-but-recovered is allowed (crash after the
  // WAL write, before the ack reached the client).
  ASSERT_GE(epoch, acked.size());
  ASSERT_LE(epoch, static_cast<uint64_t>(kAppendAttempts));
  EXPECT_EQ(recovered.value()->Stats().rows,
            kBaseRows + epoch * kBatchRows);

  // Clean replay: same base, same batches, through Save + Open so both
  // sides serve from an identically serialized synopsis.
  const std::string clean_path = dir + "/clean-replay.pws2";
  {
    Db base = MakeBaseDb();
    ASSERT_TRUE(base.Save(clean_path).ok());
  }
  auto clean = Db::Open(clean_path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  Db clean_db = std::move(clean).value();
  for (uint64_t i = 0; i < epoch; ++i) {
    auto next = clean_db.WithAppended(MakeBatch(static_cast<int>(i)));
    ASSERT_TRUE(next.ok()) << next.status().ToString();
    clean_db = std::move(next).value();
  }
  for (const std::string& sql : ChaosSqls()) {
    QueryResult served;
    ASSERT_TRUE(recovered.value()->Query(sql, &served).ok()) << sql;
    auto expect = clean_db.ExecuteSql(sql);
    ASSERT_TRUE(expect.ok()) << sql;
    ExpectBitEqual(expect.value(), served, sql);
  }
  ::unlink(clean_path.c_str());
}

class CrashDrill : public ::testing::TestWithParam<CrashSpec> {};

TEST_P(CrashDrill, AckedAppendsSurviveCrash) {
  const CrashSpec spec = GetParam();
  const std::string dir = TestPath(std::string("chaos_") + spec.point);
  RemoveDirIfPresent(dir);

  // Fork BEFORE any ServingDb exists in this process: the child must not
  // inherit half-alive worker threads or their mutexes.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RunCrashChild(dir, spec);  // never returns
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus)) << "child killed by signal";
  ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode)
      << "failpoint " << spec.point << " never fired (exit "
      << WEXITSTATUS(wstatus) << ")";

  ValidateRecovery(dir);
  RemoveDirIfPresent(dir);
}

INSTANTIATE_TEST_SUITE_P(
    EveryFailpoint, CrashDrill,
    ::testing::Values(
        // Crash before the successor snapshot exists: nothing acked,
        // nothing lost.
        CrashSpec{"serve.append.build", "crash@3", false},
        // Torn frame: half the record reaches disk, then death. Recovery
        // must truncate it and keep every earlier record.
        CrashSpec{"wal.append.write", "partial@3", false},
        // Crash between the WAL write and the fsync.
        CrashSpec{"wal.append.sync", "crash@3", false},
        // Record durable, ack never sent: recovered > acked is legal.
        CrashSpec{"wal.append.acked", "crash@3", false},
        // Checkpoint crashes: before the tmp save, between save and
        // rename, and between rename and WAL truncation.
        CrashSpec{"checkpoint.save", "crash@2", true},
        CrashSpec{"checkpoint.rename", "crash@2", true},
        CrashSpec{"checkpoint.truncate_wal", "crash@2", true}),
    [](const ::testing::TestParamInfo<CrashSpec>& info) {
      std::string name = info.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(CrashDrillRecovery, CrashDuringReplayThenRecoverAgain) {
  const std::string dir = TestPath("chaos_recovery_replay");
  RemoveDirIfPresent(dir);

  // Child 1: build durable state with three appends, exit cleanly.
  {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      ServingOptions opts;
      opts.durability.dir = dir;
      auto sdb = ServingDb::CreateDurable(MakeBaseDb(), opts);
      if (!sdb.ok()) _Exit(20);
      for (int i = 0; i < 3; ++i) {
        if (!sdb.value()->Append(MakeBatch(i)).ok()) _Exit(21);
      }
      _Exit(0);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);
  }

  // Child 2: crash in the middle of WAL replay.
  {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      if (!failpoint::Set("recovery.replay", "crash@2").ok()) _Exit(22);
      ServingOptions opts;
      opts.durability.dir = dir;
      auto sdb = ServingDb::Recover(opts);
      (void)sdb;
      _Exit(0);  // recovery finished = failpoint never fired
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFEXITED(wstatus));
    ASSERT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);
  }

  // Recovery is read-only over the checkpoint and repaired WAL, so dying
  // mid-replay must not damage anything: recover again, all three
  // appends present.
  ServingOptions opts;
  opts.durability.dir = dir;
  auto recovered = ServingDb::Recover(opts);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered.value()->Stats().epoch, 3u);
  EXPECT_EQ(recovered.value()->Stats().rows, kBaseRows + 3 * kBatchRows);
  RemoveDirIfPresent(dir);
}

// Helper for FailpointsArmFromEnvironment: runs only when re-executed
// with --gtest_also_run_disabled_tests in a fresh process.
TEST(CrashDrillEnv, DISABLED_FireHelper) {
  (void)failpoint::Fire("wal.append.sync");
}

TEST(CrashDrillEnv, FailpointsArmFromEnvironment) {
  // PWH_FAILPOINTS is parsed on the first Fire of a process's lifetime;
  // earlier tests in this binary already consumed that, so re-exec
  // ourselves for a genuinely fresh registry.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::setenv("PWH_FAILPOINTS", "wal.append.sync=crash@1", 1);
    ::execl("/proc/self/exe", "chaos_test",
            "--gtest_filter=CrashDrillEnv.DISABLED_FireHelper",
            "--gtest_also_run_disabled_tests", (char*)nullptr);
    _Exit(30);  // exec failed
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), failpoint::kCrashExitCode);
}

}  // namespace
}  // namespace pairwisehist
