// Tests for the incremental-update extension (paper §7 future work).
#include <cmath>

#include <gtest/gtest.h>

#include "core/pairwise_hist.h"
#include "datagen/datasets.h"
#include "harness/metrics.h"
#include "query/engine.h"
#include "query/exact.h"

namespace pairwisehist {
namespace {

TEST(UpdateTest, CountsGrowByBatchSize) {
  Table t = MakePower(10000, 120);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  EXPECT_EQ(ph->total_rows(), 10000u);

  Table more = MakePower(2000, 121);
  ASSERT_TRUE(ph->UpdateFromTable(more).ok());
  EXPECT_EQ(ph->total_rows(), 12000u);
  EXPECT_EQ(ph->sample_rows(), 12000u);
  // 1-d histogram counts include the new rows.
  auto idx = ph->ColumnIndex("voltage");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(ph->hist1d(idx.value()).TotalCount(), 12000u);
}

TEST(UpdateTest, QueriesReflectNewData) {
  Table t = MakePower(20000, 122);
  Table part1 = t.Slice(0, 15000);
  Table part2 = t.Slice(15000, 20000);

  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(part1, cfg);
  ASSERT_TRUE(ph.ok());
  ASSERT_TRUE(ph->UpdateFromTable(part2).ok());
  AqpEngine engine(&ph.value());

  const char* sql = "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
  auto exact = ExecuteExactSql(t, sql);
  auto approx = engine.ExecuteSql(sql);
  ASSERT_TRUE(exact.ok());
  ASSERT_TRUE(approx.ok());
  // The updated synopsis answers over the full 20k rows.
  EXPECT_LT(RelativeErrorPct(exact->Scalar().estimate,
                             approx->Scalar().estimate),
            6.0)
      << "exact " << exact->Scalar().estimate << " approx "
      << approx->Scalar().estimate;

  auto all = engine.ExecuteSql("SELECT COUNT(*) FROM power;");
  EXPECT_DOUBLE_EQ(all->Scalar().estimate, 20000.0);
}

TEST(UpdateTest, PairCellsStayConsistentWithMarginals) {
  Table t = MakeGas(6000, 123);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t.Slice(0, 4000), cfg);
  ASSERT_TRUE(ph.ok());
  ASSERT_TRUE(ph->UpdateFromTable(t.Slice(4000, 6000)).ok());
  for (size_t p = 0; p < ph->num_pairs(); ++p) {
    const PairHistogram& pair = ph->pair_at(p);
    size_t kj = pair.dim_j.NumBins();
    for (size_t ti = 0; ti < pair.dim_i.NumBins(); ++ti) {
      uint64_t sum = 0;
      for (size_t tj = 0; tj < kj; ++tj) sum += pair.CellCount(ti, tj);
      ASSERT_EQ(sum, pair.dim_i.counts[ti]) << p << "," << ti;
    }
  }
}

TEST(UpdateTest, ExtremaExtendWhenNewValuesArrive) {
  // Build on a narrow slice, then update with wider values (clamped into
  // the fitted code domain, but extending observed [v-, v+] spans).
  Table narrow("t");
  {
    Column x("x", DataType::kInt64, 0);
    for (int i = 400; i < 600; ++i) x.Append(i);
    narrow.AddColumn(std::move(x));
  }
  // Fit transforms over a WIDER domain so updates are representable.
  Table wide("t");
  {
    Column x("x", DataType::kInt64, 0);
    for (int i = 0; i < 1000; ++i) x.Append(i);
    wide.AddColumn(std::move(x));
  }
  auto transforms = FitColumnTransforms(wide);
  auto pre_narrow = ApplyTransforms(narrow, transforms);
  ASSERT_TRUE(pre_narrow.ok());
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::Build(*pre_narrow, nullptr, cfg);
  ASSERT_TRUE(ph.ok());
  double before_max = ph->hist1d(0).v_max.back();

  auto pre_wide = ApplyTransforms(wide, transforms);
  ASSERT_TRUE(pre_wide.ok());
  ASSERT_TRUE(ph->Update(*pre_wide).ok());
  double after_max = ph->hist1d(0).v_max.back();
  EXPECT_GT(after_max, before_max);
}

TEST(UpdateTest, RejectsSchemaMismatch) {
  Table t = MakePower(2000, 124);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  Table other = MakeGas(500, 125);
  EXPECT_FALSE(ph->UpdateFromTable(other).ok());
}

TEST(UpdateTest, RejectsForeignTransforms) {
  Table t = MakePower(2000, 126);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t, cfg);
  ASSERT_TRUE(ph.ok());
  // Pre-process the batch with ITS OWN fitted transforms (different mins)
  // rather than the synopsis's — must be rejected.
  Table batch = MakePower(500, 127);
  auto foreign = Preprocess(batch);
  ASSERT_TRUE(foreign.ok());
  Status st = ph->Update(*foreign);
  // Either rejected for transform mismatch, or (if the mins happen to
  // coincide for every column) accepted; the invariant is: never silently
  // corrupt. Check the strict case only when mins differ.
  bool mins_differ = false;
  auto own = FitColumnTransforms(t);
  for (size_t c = 0; c < own.size(); ++c) {
    if (own[c].min_scaled != foreign->transforms[c].min_scaled) {
      mins_differ = true;
    }
  }
  if (mins_differ) EXPECT_FALSE(st.ok());
}

TEST(UpdateTest, SerializationAfterUpdateRoundTrips) {
  Table t = MakeLight(5000, 128);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto ph = PairwiseHist::BuildFromTable(t.Slice(0, 4000), cfg);
  ASSERT_TRUE(ph.ok());
  ASSERT_TRUE(ph->UpdateFromTable(t.Slice(4000, 5000)).ok());
  auto back = PairwiseHist::Deserialize(ph->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->total_rows(), ph->total_rows());
  EXPECT_EQ(back->Serialize(), ph->Serialize());
}

TEST(UpdateTest, ManySmallBatchesMatchOneBigBatch) {
  Table t = MakeTemp(9000, 129);
  PairwiseHistConfig cfg;
  cfg.sample_size = 0;
  auto incremental = PairwiseHist::BuildFromTable(t.Slice(0, 3000), cfg);
  ASSERT_TRUE(incremental.ok());
  for (size_t start = 3000; start < 9000; start += 1000) {
    ASSERT_TRUE(
        incremental->UpdateFromTable(t.Slice(start, start + 1000)).ok());
  }
  // Counts must equal a single update of the same rows (bin structure is
  // fixed, so folding is order-independent at the count level).
  auto bulk = PairwiseHist::BuildFromTable(t.Slice(0, 3000), cfg);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(bulk->UpdateFromTable(t.Slice(3000, 9000)).ok());
  for (size_t c = 0; c < incremental->num_columns(); ++c) {
    ASSERT_EQ(incremental->hist1d(c).counts, bulk->hist1d(c).counts) << c;
  }
}

}  // namespace
}  // namespace pairwisehist
