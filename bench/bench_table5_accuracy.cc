// Reproduces Table 5: median relative error (%) by aggregation function on
// the scaled Power and Flights datasets, for PairwiseHist (PH), the SPN
// baseline (DeepDB-lite) and DBEst-lite.
//
// Paper workload: 445/427 random queries, all seven aggregation functions,
// 1–5 predicates, minimum selectivity 1e-6. Paper headline: PH wins overall
// (0.20% / 0.43%) and is the only method covering MIN/MAX/MEDIAN/VAR.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

void RunDataset(const std::string& name, size_t scale_rows, size_t queries,
                size_t ns) {
  BenchDataset ds = MakeScaledDataset(name, scale_rows, queries, 21);
  if (ds.workload.empty()) {
    std::fprintf(stderr, "%s: workload generation failed\n", name.c_str());
    return;
  }
  BuiltMethod ph = BuildPairwiseHistMethod(ds.table, ns);
  BuiltMethod spn = BuildSpnMethod(ds.table, ns);
  BuiltMethod dbest =
      BuildDbestMethod(ds.table, ds.workload, std::min<size_t>(ns, 10000));

  std::vector<const AqpMethod*> methods = {
      ph.method.get(), spn.method.get(), dbest.method.get()};
  std::vector<QueryRecord> records;
  auto runs = RunWorkload(ds.table, ds.workload, methods, &records);
  if (!runs.ok()) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(),
                 runs.status().ToString().c_str());
    return;
  }

  // Bucket per-query errors by aggregation function and method.
  std::map<AggFunc, std::vector<std::vector<double>>> by_func;
  for (const QueryRecord& rec : records) {
    auto& rows = by_func[rec.func];
    rows.resize(methods.size());
    for (size_t m = 0; m < methods.size(); ++m) {
      if (!std::isnan(rec.errors_pct[m])) {
        rows[m].push_back(rec.errors_pct[m]);
      }
    }
  }

  std::printf("\n--- %s dataset (%zu rows, %zu queries) ---\n",
              name.c_str(), ds.table.NumRows(), ds.workload.size());
  std::printf("%-12s %10s %10s %10s\n", "Aggregation", "PH", "SPN",
              "DBEst");
  const AggFunc order[] = {AggFunc::kCount, AggFunc::kSum,   AggFunc::kAvg,
                           AggFunc::kVar,   AggFunc::kMin,   AggFunc::kMax,
                           AggFunc::kMedian};
  for (AggFunc f : order) {
    auto it = by_func.find(f);
    if (it == by_func.end()) continue;
    std::printf("%-12s", AggFuncName(f));
    for (size_t m = 0; m < methods.size(); ++m) {
      double med = Median(it->second[m]);
      if (std::isnan(med)) {
        std::printf(" %10s", "-");
      } else {
        std::printf(" %10.2f", med);
      }
    }
    std::printf("\n");
  }
  const auto& r = runs.value();
  std::printf("%-12s %10.2f %10.2f %10.2f\n", "Overall",
              r[0].MedianErrorPct(), r[1].MedianErrorPct(),
              r[2].MedianErrorPct());
  std::printf("supported    %10zu %10zu %10zu  (of %zu)\n",
              r[0].queries_supported, r[1].queries_supported,
              r[2].queries_supported, ds.workload.size());
}

}  // namespace

int main() {
  Banner("Table 5: median relative error (%) by aggregation function");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 200);
  const size_t ns = EnvSize("PH_NS", scale_rows / 10);
  RunDataset("power", scale_rows, queries, ns);
  RunDataset("flights", scale_rows, queries, ns);
  std::printf(
      "\n(paper shape: PH lowest overall; SPN '-' on VAR/MIN/MAX/MEDIAN; "
      "DBEst large errors)\n");
  return 0;
}
