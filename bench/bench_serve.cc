// Serving-layer benchmark: closed-loop HTTP clients against the embedded
// server (serve/ServingDb + serve/http_server.h), measuring sustained QPS
// and latency percentiles for grid-sharing dashboard traffic in three
// scenarios: read coalescing off, coalescing on, and coalescing on while
// a writer streams /append batches concurrently. Each client sends its
// dashboard page as one pipelined burst; with coalescing on, the server
// batch-executes each burst on the connection thread (and the
// cross-connection ReadCoalescer groups whatever overlaps beyond that).
// The win is the batch-execution win (PR 5) delivered end-to-end:
// statements sharing an aggregation grid run as one Db::ExecuteBatch, so
// coverage + weighting run once per group instead of once per statement.
// Emits BENCH_serve.json for CI's perf trajectory.
//
// Environment knobs (see bench_util.h for the shared ones):
//   PH_SCALE_ROWS     dataset rows (default 200000)
//   PH_SERVE_CLIENTS  closed-loop client connections (default 16)
//   PH_SERVE_SECS     measured seconds per scenario (default 2)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/csv.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

// The grid-sharing dashboard page: every aggregate of one filtered view
// (the five-predicate shape — the engine's most coverage-heavy scalar
// query). All eight statements share one aggregation grid + predicate, so
// the coalescer's batch execution pays coverage + weighting once per
// group while only the cheap per-aggregate readout runs per statement.
const std::vector<std::string>& GridSharingSqls() {
  static const std::vector<std::string> kSqls = []() {
    const std::string where =
        " FROM power WHERE hour >= 6 AND voltage > 236 AND "
        "global_intensity > 0.4 AND sub_metering_3 < 20 AND "
        "day_of_week < 6;";
    std::vector<std::string> sqls;
    for (const char* agg :
         {"COUNT", "SUM", "AVG", "VAR", "MIN", "MAX", "MEDIAN", "MEAN"}) {
      sqls.push_back(std::string("SELECT ") + agg +
                     "(global_active_power)" + where);
    }
    return sqls;
  }();
  return kSqls;
}

struct ScenarioResult {
  std::string name;
  uint64_t pages = 0;     ///< pipelined rounds completed
  uint64_t requests = 0;  ///< statements (pages * page size)
  uint64_t errors = 0;
  double seconds = 0;
  double qps = 0;       ///< statements per second
  double p50_us = 0;    ///< page (8-statement round) latency percentiles
  double p99_us = 0;
  double p999_us = 0;
  uint64_t coalesced_groups = 0;
  uint64_t coalesced_statements = 0;
  uint64_t max_group = 0;
  uint64_t batch_groups = 0;      ///< pipelined bursts batch-executed
  uint64_t batch_statements = 0;  ///< statements inside those bursts
  uint64_t cache_hits = 0;
  uint64_t appends = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[idx];
}

Db BuildDb(size_t rows) {
  DbOptions options;
  options.synopsis.sample_size = rows / 2;
  // High-resolution synopsis (small M): dashboards trade build time for
  // tighter bounds, and the resulting large aggregation grids are exactly
  // where coalescing's shared coverage + weighting pays off.
  options.synopsis.min_points_override = 64;
  // Serving doesn't need the raw table; keep_table=false makes the
  // copy-on-append snapshots cheap (no O(rows) table copy per append).
  options.keep_table = false;
  auto db = Db::FromGenerator("power", rows, 71, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

/// Runs one closed-loop scenario: `clients` connections hammering /query
/// for `secs` seconds; optionally a writer posting /append batches.
ScenarioResult RunScenario(const std::string& name, size_t rows,
                           size_t clients, double secs, bool coalesce,
                           bool with_appends) {
  ServingOptions serving_options;
  serving_options.coalesce = coalesce;
  ServingDb serving(BuildDb(rows), serving_options);
  HttpServer server(MakeServingHandler(&serving),
                    MakeServingBatchHandler(&serving));
  Status st = server.Start(0);
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  const std::vector<std::string>& sqls = GridSharingSqls();
  std::vector<std::string> bodies;
  for (const std::string& sql : sqls) {
    std::string body = "{\"sql\":";
    AppendJsonString(&body, sql);
    body += "}";
    bodies.push_back(body);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(clients);
  std::vector<std::thread> threads;
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};

  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      latencies[t].reserve(1 << 14);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      // Each round is one dashboard page: all statements pipelined down
      // the keep-alive connection (see HttpClient::RequestPipelined).
      while (!stop.load(std::memory_order_acquire)) {
        const double t0 = NowSeconds();
        auto resps = client.RequestPipelined("POST", "/query", bodies);
        const double dt = NowSeconds() - t0;
        bool ok = resps.ok();
        if (ok) {
          for (const HttpResponse& resp : resps.value()) {
            if (resp.status != 200) ok = false;
          }
        }
        if (!ok) {
          errors.fetch_add(1);
        } else {
          latencies[t].push_back(dt * 1e6);
        }
      }
    });
  }
  std::thread writer;
  if (with_appends) {
    writer = std::thread([&] {
      auto batch = MakeDataset("power", 5000, 1234);
      if (!batch.ok()) return;
      const std::string csv = ToCsvString(batch.value());
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) return;
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_acquire)) {
        auto resp = client.Request("POST", "/append", csv, "text/csv");
        if (!resp.ok() || resp->status != 200) {
          errors.fetch_add(1);
          return;
        }
        // Pace appends: one new sealed segment every ~300 ms.
        for (int i = 0; i < 30 && !stop.load(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
      }
    });
  }

  while (ready.load() < clients) std::this_thread::yield();
  const double t0 = NowSeconds();
  go.store(true, std::memory_order_release);
  while (NowSeconds() - t0 < secs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  if (writer.joinable()) writer.join();
  const double elapsed = NowSeconds() - t0;
  server.Stop();

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  const ServingStats stats = serving.Stats();
  ScenarioResult r;
  r.name = name;
  r.pages = all.size();
  r.requests = all.size() * sqls.size();
  r.errors = errors.load();
  r.seconds = elapsed;
  r.qps = elapsed > 0 ? static_cast<double>(r.requests) / elapsed : 0;
  r.p50_us = Percentile(all, 0.50);
  r.p99_us = Percentile(all, 0.99);
  r.p999_us = Percentile(all, 0.999);
  r.coalesced_groups = stats.coalesced_groups;
  r.coalesced_statements = stats.coalesced_statements;
  r.max_group = stats.max_group;
  r.batch_groups = stats.batches;
  r.batch_statements = stats.batch_statements;
  r.cache_hits = stats.cache_hits;
  r.appends = stats.appends;
  return r;
}

}  // namespace

int main() {
  Banner("Serving layer: closed-loop HTTP clients, coalescing on/off");
  const size_t rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t clients = EnvSize("PH_SERVE_CLIENTS", 16);
  const double secs =
      static_cast<double>(EnvSize("PH_SERVE_SECS", 2));

  std::vector<ScenarioResult> results;
  results.push_back(RunScenario("uncoalesced", rows, clients, secs,
                                /*coalesce=*/false, /*with_appends=*/false));
  results.push_back(RunScenario("coalesced", rows, clients, secs,
                                /*coalesce=*/true, /*with_appends=*/false));
  results.push_back(RunScenario("coalesced_with_appends", rows, clients, secs,
                                /*coalesce=*/true, /*with_appends=*/true));

  std::printf("%-24s %9s %10s %10s %10s %10s %7s %6s\n", "scenario",
              "requests", "qps", "p50 us", "p99 us", "p99.9 us", "avggrp",
              "appends");
  uint64_t total_errors = 0;
  std::string rows_json;
  for (const ScenarioResult& r : results) {
    total_errors += r.errors;
    // Statements per executed group, over both coalescing paths (the
    // in-connection pipelined-burst batches and the cross-connection
    // coalescer groups).
    const uint64_t groups = r.batch_groups + r.coalesced_groups;
    const double avg_group =
        groups > 0 ? static_cast<double>(r.batch_statements +
                                         r.coalesced_statements) /
                         static_cast<double>(groups)
                   : 1.0;
    std::printf("%-24s %9llu %10.0f %10.0f %10.0f %10.0f %7.1f %6llu\n",
                r.name.c_str(), (unsigned long long)r.requests, r.qps,
                r.p50_us, r.p99_us, r.p999_us, avg_group,
                (unsigned long long)r.appends);
    char row[640];
    std::snprintf(
        row, sizeof(row),
        "%s    {\"name\": \"%s\", \"pages\": %llu, \"requests\": %llu, "
        "\"errors\": %llu, "
        "\"seconds\": %.3f, \"qps\": %.1f, \"p50_us\": %.1f, "
        "\"p99_us\": %.1f, \"p999_us\": %.1f, \"coalesced_groups\": %llu, "
        "\"max_group\": %llu, \"batch_groups\": %llu, "
        "\"batch_statements\": %llu, \"cache_hits\": %llu, "
        "\"appends\": %llu}",
        rows_json.empty() ? "" : ",\n", r.name.c_str(),
        (unsigned long long)r.pages, (unsigned long long)r.requests,
        (unsigned long long)r.errors, r.seconds, r.qps, r.p50_us, r.p99_us,
        r.p999_us, (unsigned long long)r.coalesced_groups,
        (unsigned long long)r.max_group, (unsigned long long)r.batch_groups,
        (unsigned long long)r.batch_statements,
        (unsigned long long)r.cache_hits, (unsigned long long)r.appends);
    rows_json += row;
  }

  const double speedup =
      results[0].qps > 0 ? results[1].qps / results[0].qps : 0;
  const bool p99_ok = results[1].p99_us <= results[0].p99_us;
  std::printf(
      "\ncoalescing QPS speedup: %.2fx (target >= 2x), p99 %s (%.0f us vs "
      "%.0f us)%s\n",
      speedup, p99_ok ? "improved" : "regressed", results[1].p99_us,
      results[0].p99_us, total_errors == 0 ? "" : "  [HTTP ERRORS!]");

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"serve\",\n  \"scale_rows\": %zu,\n"
                "  \"clients\": %zu,\n  \"coalesce_qps_speedup\": %.3f,\n"
                "  \"p99_equal_or_better\": %s,\n  \"errors\": %llu,\n"
                "  \"scenarios\": [\n",
                rows, clients, speedup, p99_ok ? "true" : "false",
                (unsigned long long)total_errors);
  WriteBenchJson("BENCH_serve.json",
                 std::string(head) + rows_json + "\n  ]\n}");
  return total_errors == 0 ? 0 : 1;
}
