// Ablation benches for the design choices DESIGN.md calls out:
//   1. hypothesis-test refinement vs fixed equi-width binning (the paper's
//      core construction idea),
//   2. GreedyGD bases vs min/max seeding of the initial 1-d edges
//      (Section 3's compression<->AQP link: construction time effect),
//   3. the engine's pair-grid aggregation and same-column value clipping
//      (this implementation's additions; see engine.h),
//   4. dense vs sparse (Golomb) bin-count encoding win rates.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pairwise_hist.h"
#include "gd/greedy_gd.h"
#include "query/engine.h"
#include "query/exact.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

double MedianError(const Table& table, const std::vector<Query>& workload,
                   const PairwiseHist& ph, AqpEngineOptions options) {
  AqpEngine engine(&ph, options);
  std::vector<double> errors;
  for (const Query& q : workload) {
    auto exact = ExecuteExact(table, q);
    auto approx = engine.Execute(q);
    if (!exact.ok() || !approx.ok()) continue;
    if (exact->Scalar().empty_selection ||
        approx->Scalar().empty_selection) {
      continue;
    }
    errors.push_back(RelativeErrorPct(exact->Scalar().estimate,
                                      approx->Scalar().estimate));
  }
  return Median(errors);
}

}  // namespace

int main() {
  const size_t rows = EnvSize("PH_ROWS", 30000);
  const size_t queries = EnvSize("PH_QUERIES", 80);

  // ------------------------------------------------------------------
  Banner("Ablation 1: hypothesis-test refinement vs coarse M");
  // Large M effectively disables refinement (bins stay at their seeds),
  // which is the closest in-framework proxy for "no hypothesis testing".
  for (const char* name : {"furnace", "taxis"}) {
    auto t = MakeDataset(name, rows, 101);
    if (!t.ok()) continue;
    WorkloadConfig wcfg = InitialWorkloadConfig(102);
    wcfg.num_queries = queries;
    auto workload = GenerateWorkload(*t, wcfg);
    if (!workload.ok()) continue;
    std::printf("%-10s:", name);
    for (uint64_t m :
         {uint64_t{150}, uint64_t{1500}, uint64_t{1000000}}) {
      PairwiseHistConfig cfg;
      cfg.sample_size = 0;
      cfg.min_points_override = m;
      auto ph = PairwiseHist::BuildFromTable(*t, cfg);
      if (!ph.ok()) continue;
      std::printf("  M=%-8llu err=%6.2f%% size=%-10s",
                  static_cast<unsigned long long>(m),
                  MedianError(*t, *workload, ph.value(), {}),
                  HumanBytes(ph->StorageBytes()).c_str());
    }
    std::printf("\n");
  }
  std::printf("(expected: refinement (small M) cuts error; M=1e6 ~= "
              "unrefined single bins)\n");

  // ------------------------------------------------------------------
  Banner("Ablation 2: GD-bases seeding vs min/max seeding");
  for (const char* name : {"power", "gas"}) {
    auto t = MakeDataset(name, rows, 103);
    if (!t.ok()) continue;
    auto gd = CompressTable(*t);
    if (!gd.ok()) continue;
    PairwiseHistConfig cfg;
    cfg.sample_size = rows / 2;

    double t0 = NowSeconds();
    auto seeded = PairwiseHist::BuildFromCompressed(*gd, cfg);
    double seeded_time = NowSeconds() - t0;

    PairwiseHistConfig plain_cfg = cfg;
    plain_cfg.use_bases_for_edges = false;
    PreprocessedTable codes = gd->DecompressCodes();
    t0 = NowSeconds();
    auto plain = PairwiseHist::Build(codes, nullptr, plain_cfg);
    double plain_time = NowSeconds() - t0;

    if (!seeded.ok() || !plain.ok()) continue;
    WorkloadConfig wcfg = InitialWorkloadConfig(104);
    wcfg.num_queries = queries;
    auto workload = GenerateWorkload(*t, wcfg);
    if (!workload.ok()) continue;
    std::printf(
        "%-10s: bases-seeded build %8s err %5.2f%% | min/max build %8s "
        "err %5.2f%%\n",
        name, HumanSeconds(seeded_time).c_str(),
        MedianError(*t, *workload, seeded.value(), {}),
        HumanSeconds(plain_time).c_str(),
        MedianError(*t, *workload, plain.value(), {}));
  }
  std::printf("(paper: seeding with bases mainly accelerates construction; "
              "accuracy comparable)\n");

  // ------------------------------------------------------------------
  Banner("Ablation 3: engine options (pair-grid / value clipping)");
  {
    auto t = MakeDataset("power", rows, 105);
    WorkloadConfig wcfg = ScaledWorkloadConfig(106);
    wcfg.num_queries = queries;
    wcfg.min_selectivity = 1e-4;
    auto workload = GenerateWorkload(*t, wcfg);
    PairwiseHistConfig cfg;
    cfg.sample_size = 0;
    auto ph = PairwiseHist::BuildFromTable(*t, cfg);
    if (workload.ok() && ph.ok()) {
      struct Case {
        const char* label;
        AqpEngineOptions opt;
      };
      AqpEngineOptions none{false, false, false};
      AqpEngineOptions grid_only{true, false, false};
      AqpEngineOptions clip_only{false, true, false};
      AqpEngineOptions all{true, true, true};
      for (const Case& c :
           {Case{"paper-literal (all off)", none},
            Case{"+pair-grid", grid_only}, Case{"+value-clip", clip_only},
            Case{"all on (default)", all}}) {
        std::printf("  %-26s median err %6.2f%%\n", c.label,
                    MedianError(*t, *workload, ph.value(), c.opt));
      }
    }
  }

  // ------------------------------------------------------------------
  Banner("Ablation 4: dense vs sparse bin-count encoding");
  {
    auto t = MakeDataset("flights", rows, 107);
    PairwiseHistConfig cfg;
    cfg.sample_size = rows / 2;
    auto ph = PairwiseHist::BuildFromTable(*t, cfg);
    if (ph.ok()) {
      // The codec picks per pair; report the aggregate outcome by
      // serializing and measuring, then compare against a counterfactual
      // estimate of all-dense storage.
      size_t actual = ph->StorageBytes();
      size_t dense_cells_bits = 0, cells_total = 0, cells_nonzero = 0;
      for (size_t p = 0; p < ph->num_pairs(); ++p) {
        const auto& pair = ph->pair_at(p);
        uint64_t mx = 0;
        for (uint64_t c : pair.cells) {
          mx = std::max(mx, c);
          cells_nonzero += (c != 0);
        }
        int bits = 1;
        while ((uint64_t{1} << bits) <= mx && bits < 63) ++bits;
        dense_cells_bits += pair.cells.size() * bits;
        cells_total += pair.cells.size();
      }
      std::printf(
          "  serialized synopsis: %s | cells: %zu (%.1f%% non-zero) | "
          "all-dense counts alone would need %s\n",
          HumanBytes(actual).c_str(), cells_total,
          100.0 * cells_nonzero / std::max<size_t>(1, cells_total),
          HumanBytes(dense_cells_bits / 8.0).c_str());
    }
  }
  return 0;
}
