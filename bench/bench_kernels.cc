// SIMD kernel benchmark: ns/element for each reduction/scan kernel per
// compiled tier at n = 16 / 256 / 4096, plus end-to-end prepared-query
// latency per shape with kernels forced to kScalar vs kAuto — the
// dispatch-level speedup the kernel layer buys on this machine. Emits
// BENCH_kernels.json for CI's perf trajectory.
//
// No google-benchmark dependency: self-calibrating timing loops, so this
// runs on bare machines (and in every CI configuration).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "harness/metrics.h"
#include "common/rng.h"
#include "common/simd.h"
#include "query/engine.h"
#include "query/sql_parser.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

template <typename F>
double TimePerCallUs(F&& body) {
  int reps = 1;
  for (;;) {
    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) body();
    double dt = NowSeconds() - t0;
    if (dt > 0.05 || reps >= (1 << 24)) {
      return dt * 1e6 / reps;
    }
    reps *= 4;
  }
}

volatile double g_sink = 0;  // keeps reductions observable

struct Shape {
  const char* name;
  const char* sql;
};

}  // namespace

int main() {
  Banner("SIMD kernels: ns/element per tier, end-to-end scalar-vs-auto");

  // ---- Microbenchmarks ----------------------------------------------------
  const size_t kSizes[] = {16, 256, 4096};
  const size_t kMaxN = 4096;
  Rng rng(17);
  std::vector<double> a(kMaxN), b(kMaxN), c(kMaxN), d(kMaxN), out(kMaxN);
  std::vector<uint64_t> h(kMaxN);
  for (size_t i = 0; i < kMaxN; ++i) {
    a[i] = rng.Uniform(0, 3);
    b[i] = rng.Uniform(-2, 2);
    c[i] = rng.Uniform(-1, 4);
    d[i] = rng.Uniform(0, 1);
    h[i] = rng.UniformInt(5000);
  }

  std::string micro_json;
  auto emit_micro = [&](const char* tier, const char* kernel, size_t n,
                        double ns_per_elem) {
    char row[192];
    std::snprintf(row, sizeof(row),
                  "%s    {\"tier\": \"%s\", \"kernel\": \"%s\", \"n\": %zu, "
                  "\"ns_per_element\": %.4f}",
                  micro_json.empty() ? "" : ",\n", tier, kernel, n,
                  ns_per_elem);
    micro_json += row;
  };

  std::printf("%-8s %-16s %8s %8s %8s   (ns/element)\n", "tier", "kernel",
              "n=16", "n=256", "n=4096");
  for (const KernelOps* ks : SupportedKernels()) {
    struct Micro {
      const char* name;
      std::function<void(size_t)> run;
    };
    double o3[3], o2[2];
    const Micro micros[] = {
        {"sum", [&](size_t n) { g_sink = ks->sum(a.data(), 0, n); }},
        {"sum3",
         [&](size_t n) {
           ks->sum3(a.data(), b.data(), c.data(), 0, n, o3);
           g_sink = o3[0];
         }},
        {"dot", [&](size_t n) { g_sink = ks->dot(a.data(), c.data(), 0, n); }},
        {"dot3",
         [&](size_t n) {
           ks->dot3(a.data(), b.data(), c.data(), 0, n, o3);
           g_sink = o3[2];
         }},
        {"moments",
         [&](size_t n) {
           ks->moments(a.data(), c.data(), 0, n, o3);
           g_sink = o3[2];
         }},
        {"corner_bounds",
         [&](size_t n) {
           ks->corner_bounds(a.data(), d.data(), b.data(), c.data(), 0, n,
                             o2);
           g_sink = o2[0];
         }},
        {"prefix_sum",
         [&](size_t n) {
           ks->prefix_sum(a.data(), 0, n, out.data());
           g_sink = out[n - 1];
         }},
        {"weights_nowiden",
         [&](size_t n) {
           ks->weights_nowiden(h.data(), a.data(), b.data(), c.data(),
                               out.data(), out.data(), out.data(), 0, n);
           g_sink = out[n - 1];
         }},
        {"norm_prob3",
         [&](size_t n) {
           ks->norm_prob3(h.data(), a.data(), b.data(), c.data(), out.data(),
                          out.data(), out.data(), 0, n);
           g_sink = out[n - 1];
         }},
    };
    for (const Micro& m : micros) {
      double ns[3];
      for (size_t si = 0; si < 3; ++si) {
        size_t n = kSizes[si];
        double us = TimePerCallUs([&]() { m.run(n); });
        ns[si] = us * 1000.0 / static_cast<double>(n);
        emit_micro(ks->name, m.name, n, ns[si]);
      }
      std::printf("%-8s %-16s %8.3f %8.3f %8.3f\n", ks->name, m.name, ns[0],
                  ns[1], ns[2]);
    }
  }

  // ---- End-to-end: prepared execution, kScalar vs kAuto -------------------
  const size_t rows = EnvSize("PH_SCALE_ROWS", 200000);
  DbOptions options;
  options.synopsis.sample_size = 0;  // rho = 1 (no Eq. 29 widening)
  auto db = Db::FromGenerator("power", rows, 71, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  AqpEngineOptions scalar_opt;
  scalar_opt.kernels = KernelMode::kScalar;
  AqpEngine scalar_engine(&db->synopsis(), scalar_opt);
  AqpEngineOptions auto_opt;
  auto_opt.kernels = KernelMode::kAuto;
  AqpEngine auto_engine(&db->synopsis(), auto_opt);
  const char* auto_tier = GetKernels(KernelMode::kAuto).name;

  const Shape kShapes[] = {
      {"sum_same_col_range",
       "SELECT SUM(global_active_power) FROM power WHERE "
       "global_active_power > 0.3 AND global_active_power < 3;"},
      {"avg_same_col_range",
       "SELECT AVG(voltage) FROM power WHERE voltage > 234 AND "
       "voltage < 248;"},
      {"median_same_col_range",
       "SELECT MEDIAN(voltage) FROM power WHERE voltage > 234 AND "
       "voltage < 248;"},
      {"sum_three_pred",
       "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
       "voltage > 236 AND global_intensity > 0.4;"},
      {"sum_five_pred",
       "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
       "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
       "AND day_of_week < 6;"},
      {"avg_two_pred",
       "SELECT AVG(global_active_power) FROM power WHERE hour >= 18 AND "
       "voltage > 235;"},
      {"avg_cross_column",
       "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;"},
      {"median_two_pred",
       "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12 AND "
       "voltage > 235;"},
      {"median_cross_column",
       "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;"},
      {"count_single_pred",
       "SELECT COUNT(voltage) FROM power WHERE voltage > 240;"},
      {"count_or_pred",
       "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;"},
      {"var_two_pred",
       "SELECT VAR(voltage) FROM power WHERE voltage > 238 AND hour >= 6;"},
      {"no_predicate_avg", "SELECT AVG(voltage) FROM power;"},
  };

  std::printf("\n%-22s %12s %12s %9s   (prepared ExecuteInto)\n", "shape",
              "scalar us", "auto us", "speedup");
  std::string shapes_json;
  std::vector<double> speedups;       // all shapes
  std::vector<double> core_speedups;  // the SUM/AVG/MEDIAN target shapes
  for (const Shape& shape : kShapes) {
    auto q = ParseSql(shape.sql);
    if (!q.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", shape.sql);
      return 1;
    }
    auto scalar_plan = scalar_engine.Compile(*q);
    auto auto_plan = auto_engine.Compile(*q);
    if (!scalar_plan.ok() || !auto_plan.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", shape.sql);
      return 1;
    }
    QueryResult reused;
    double scalar_us = TimePerCallUs([&]() {
      Status st = scalar_engine.ExecuteInto(scalar_plan.value(), &reused);
      (void)st;
    });
    double auto_us = TimePerCallUs([&]() {
      Status st = auto_engine.ExecuteInto(auto_plan.value(), &reused);
      (void)st;
    });
    double speedup = auto_us > 0 ? scalar_us / auto_us : 0.0;
    speedups.push_back(speedup);
    std::string name(shape.name);
    if (name.rfind("sum_", 0) == 0 || name.rfind("avg_", 0) == 0 ||
        name.rfind("median_", 0) == 0) {
      core_speedups.push_back(speedup);
    }
    std::printf("%-22s %12.3f %12.3f %8.2fx\n", shape.name, scalar_us,
                auto_us, speedup);
    char row[224];
    std::snprintf(row, sizeof(row),
                  "%s    {\"name\": \"%s\", \"scalar_us\": %.4f, "
                  "\"auto_us\": %.4f, \"speedup\": %.3f}",
                  shapes_json.empty() ? "" : ",\n", shape.name, scalar_us,
                  auto_us, speedup);
    shapes_json += row;
  }

  double med_all = Median(speedups);
  double med_core = Median(core_speedups);
  std::printf(
      "\nauto tier: %s   median speedup: %.2fx (all)  %.2fx "
      "(SUM/AVG/MEDIAN shapes)\n",
      auto_tier, med_all, med_core);

  char head[320];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"kernels\",\n  \"scale_rows\": %zu,\n"
                "  \"auto_tier\": \"%s\",\n"
                "  \"median_speedup\": %.3f,\n"
                "  \"median_speedup_sum_avg_median\": %.3f,\n"
                "  \"shapes\": [\n",
                rows, auto_tier, med_all, med_core);
  WriteBenchJson("BENCH_kernels.json", std::string(head) + shapes_json +
                                           "\n  ],\n  \"micro\": [\n" +
                                           micro_json + "\n  ]\n}");
  return 0;
}
