// Reproduces Fig. 11(c): median query latency per method on the scaled
// datasets, plus google-benchmark micro-latency for the PairwiseHist
// engine broken down by query shape, plus the exact-execution reference
// (the paper's SQLite comparison: 306.8 s median vs sub-ms AQP).
//
// Extended for the prepared-query API: every shape is measured both
// prepared (Db::Prepare once, Execute per call — coverage + weighting +
// aggregation only) and unprepared (Db::ExecuteSql per call — parse +
// normalize + grid selection every time), and a workload-level summary
// reports the per-query overhead the parse-once hot path removes.
#include <algorithm>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "api/db.h"
#include "bench/bench_util.h"
#include "query/sql_parser.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

struct LatencyFixture {
  std::optional<Db> db;
  std::vector<Query> workload;

  static LatencyFixture* Get() {
    static LatencyFixture* fixture = [] {
      auto* f = new LatencyFixture();
      size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
      BenchDataset ds = MakeScaledDataset(
          "power", scale_rows, EnvSize("PH_QUERIES", 100), 71);
      f->workload = std::move(ds.workload);
      DbOptions options;
      options.synopsis.sample_size = scale_rows / 10;
      auto db = Db::FromTable(std::move(ds.table), options);
      if (db.ok()) f->db.emplace(std::move(db).value());
      return f;
    }();
    return fixture;
  }
};

// Each shape benchmarked twice: the prepared plan re-executed per
// iteration, and the full parse-per-call path.
void RunPrepared(benchmark::State& state, const char* sql) {
  LatencyFixture* f = LatencyFixture::Get();
  auto prepared = f->db->Prepare(sql);
  for (auto _ : state) {
    auto r = prepared->Execute();
    benchmark::DoNotOptimize(r);
  }
}

void RunUnprepared(benchmark::State& state, const char* sql) {
  LatencyFixture* f = LatencyFixture::Get();
  for (auto _ : state) {
    auto r = f->db->ExecuteSql(sql);
    benchmark::DoNotOptimize(r);
  }
}

constexpr const char* kCountSingle =
    "SELECT COUNT(voltage) FROM power WHERE voltage > 240;";
constexpr const char* kAvgCross =
    "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;";
constexpr const char* kFivePred =
    "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
    "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
    "AND day_of_week < 6;";
constexpr const char* kMedian =
    "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;";
constexpr const char* kOrPred =
    "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;";
constexpr const char* kGroupBy =
    "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;";

void BM_CountSinglePredicate_Prepared(benchmark::State& state) {
  RunPrepared(state, kCountSingle);
}
BENCHMARK(BM_CountSinglePredicate_Prepared);
void BM_CountSinglePredicate_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kCountSingle);
}
BENCHMARK(BM_CountSinglePredicate_Unprepared);

void BM_AvgCrossColumn_Prepared(benchmark::State& state) {
  RunPrepared(state, kAvgCross);
}
BENCHMARK(BM_AvgCrossColumn_Prepared);
void BM_AvgCrossColumn_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kAvgCross);
}
BENCHMARK(BM_AvgCrossColumn_Unprepared);

void BM_FivePredicates_Prepared(benchmark::State& state) {
  RunPrepared(state, kFivePred);
}
BENCHMARK(BM_FivePredicates_Prepared);
void BM_FivePredicates_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kFivePred);
}
BENCHMARK(BM_FivePredicates_Unprepared);

void BM_MedianAggregate_Prepared(benchmark::State& state) {
  RunPrepared(state, kMedian);
}
BENCHMARK(BM_MedianAggregate_Prepared);
void BM_MedianAggregate_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kMedian);
}
BENCHMARK(BM_MedianAggregate_Unprepared);

void BM_OrPredicate_Prepared(benchmark::State& state) {
  RunPrepared(state, kOrPred);
}
BENCHMARK(BM_OrPredicate_Prepared);
void BM_OrPredicate_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kOrPred);
}
BENCHMARK(BM_OrPredicate_Unprepared);

void BM_GroupBy_Prepared(benchmark::State& state) {
  RunPrepared(state, kGroupBy);
}
BENCHMARK(BM_GroupBy_Prepared);
void BM_GroupBy_Unprepared(benchmark::State& state) {
  RunUnprepared(state, kGroupBy);
}
BENCHMARK(BM_GroupBy_Unprepared);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q = ParseSql(
        "SELECT AVG(a) FROM t WHERE b > 1 AND c < 2 OR d = 3;");
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_SqlParseOnly);

void BM_CompileOnly(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  auto q = ParseSql(kFivePred);
  for (auto _ : state) {
    auto plan = f->db->engine().Compile(*q);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_CompileOnly);

// Workload-level comparison results, also emitted as BENCH_latency.json so
// CI keeps a machine-readable perf trajectory across PRs.
struct SummaryStats {
  size_t queries = 0;
  int reps = 0;
  double prepared_us = 0;
  double unprepared_us = 0;
  size_t mismatches = 0;
};

// Workload-level comparison: re-execute every workload query `reps` times
// through both paths and report the median per-query latency.
SummaryStats PreparedVsUnpreparedSummary(const Db& db,
                                         const std::vector<Query>& workload) {
  const int reps = static_cast<int>(EnvSize("PH_PREPARED_REPS", 20));
  std::vector<double> prepared_us, unprepared_us;
  size_t mismatches = 0;
  for (const Query& q : workload) {
    std::string sql = q.ToSql();
    auto prepared = db.Prepare(sql);
    if (!prepared.ok()) continue;

    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) {
      auto r = prepared->Execute();
      benchmark::DoNotOptimize(r);
    }
    prepared_us.push_back((NowSeconds() - t0) * 1e6 / reps);

    t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) {
      auto r = db.ExecuteSql(sql);
      benchmark::DoNotOptimize(r);
    }
    unprepared_us.push_back((NowSeconds() - t0) * 1e6 / reps);

    // Sanity: both paths agree, per group (GROUP BY shapes included).
    auto same = [](const QueryResult& x, const QueryResult& y) {
      if (x.groups.size() != y.groups.size()) return false;
      for (size_t g = 0; g < x.groups.size(); ++g) {
        if (x.groups[g].label != y.groups[g].label) return false;
        const AggResult& xa = x.groups[g].agg;
        const AggResult& ya = y.groups[g].agg;
        if (xa.empty_selection != ya.empty_selection) return false;
        if (!xa.empty_selection &&
            (xa.estimate != ya.estimate || xa.lower != ya.lower ||
             xa.upper != ya.upper)) {
          return false;
        }
      }
      return true;
    };
    auto a = prepared->Execute();
    auto b = db.ExecuteSql(sql);
    if (a.ok() != b.ok() || (a.ok() && !same(a.value(), b.value()))) {
      ++mismatches;
    }
  }
  SummaryStats stats;
  if (prepared_us.empty()) return stats;
  double med_prep = Median(prepared_us);
  double med_unprep = Median(unprepared_us);
  stats.queries = prepared_us.size();
  stats.reps = reps;
  stats.prepared_us = med_prep;
  stats.unprepared_us = med_unprep;
  stats.mismatches = mismatches;
  std::printf(
      "\nPrepared vs parse-per-call over %zu workload queries "
      "(%d reps each):\n",
      prepared_us.size(), reps);
  std::printf("  %-28s %10.1f us median/query\n",
              "prepared Execute()", med_prep);
  std::printf("  %-28s %10.1f us median/query\n",
              "unprepared ExecuteSql()", med_unprep);
  std::printf("  parse+normalize+grid overhead removed: %.1f us/query "
              "(%.2fx speedup)%s\n",
              med_unprep - med_prep,
              med_prep > 0 ? med_unprep / med_prep : 0.0,
              mismatches == 0 ? "" : "  [RESULT MISMATCHES!]");
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  Banner("Fig. 11(c): median query latency");
  LatencyFixture* f = LatencyFixture::Get();
  if (f->db.has_value() && !f->workload.empty()) {
    const Table& table = *f->db->table();
    size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
    size_t ns = scale_rows / 10;
    BuiltMethod ph = BuildPairwiseHistMethod(table, ns);
    BuiltMethod spn = BuildSpnMethod(table, ns);
    BuiltMethod sampling = BuildSamplingMethod(table, ns);
    BuiltMethod dbest = BuildDbestMethod(table, f->workload, ns / 10);
    std::vector<const AqpMethod*> methods = {
        ph.method.get(), spn.method.get(), sampling.method.get(),
        dbest.method.get()};
    std::string methods_json;
    auto runs = RunWorkload(table, f->workload, methods);
    if (runs.ok()) {
      std::printf("%-14s %16s %10s\n", "Method", "median latency",
                  "queries");
      for (const MethodRun& run : runs.value()) {
        std::printf("%-14s %16s %10zu\n", run.method.c_str(),
                    HumanSeconds(run.MedianLatencyUs() / 1e6).c_str(),
                    run.queries_supported);
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%s    {\"name\": \"%s\", \"median_latency_us\": %.3f, "
                      "\"queries\": %zu}",
                      methods_json.empty() ? "" : ",\n", run.method.c_str(),
                      run.MedianLatencyUs(), run.queries_supported);
        methods_json += row;
      }
      double exact_us = MedianExactLatencyUs(table, f->workload);
      std::printf("%-14s %16s %10zu  (the paper's SQLite reference)\n",
                  "Exact scan", HumanSeconds(exact_us / 1e6).c_str(),
                  f->workload.size());
      std::printf(
          "\n(paper shape: PH fastest AQP, orders of magnitude under the "
          "exact scan)\n");
      char row[256];
      std::snprintf(row, sizeof(row),
                    ",\n    {\"name\": \"ExactScan\", "
                    "\"median_latency_us\": %.3f, \"queries\": %zu}",
                    exact_us, f->workload.size());
      methods_json += row;
    }
    SummaryStats stats = PreparedVsUnpreparedSummary(*f->db, f->workload);
    char head[512];
    std::snprintf(
        head, sizeof(head),
        "{\n  \"bench\": \"fig11_latency\",\n  \"scale_rows\": %zu,\n"
        "  \"workload_queries\": %zu,\n  \"reps\": %d,\n"
        "  \"prepared_median_us\": %.3f,\n  \"unprepared_median_us\": %.3f,\n"
        "  \"prepared_speedup\": %.3f,\n  \"mismatches\": %zu,\n"
        "  \"methods\": [\n",
        scale_rows, stats.queries, stats.reps, stats.prepared_us,
        stats.unprepared_us,
        stats.prepared_us > 0 ? stats.unprepared_us / stats.prepared_us : 0.0,
        stats.mismatches);
    WriteBenchJson("BENCH_latency.json",
                   std::string(head) + methods_json + "\n  ]\n}");
    std::printf("\nMicro-benchmarks by query shape:\n");
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
