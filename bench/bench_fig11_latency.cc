// Reproduces Fig. 11(c): median query latency per method on the scaled
// datasets, plus google-benchmark micro-latency for the PairwiseHist
// engine broken down by query shape, plus the exact-execution reference
// (the paper's SQLite comparison: 306.8 s median vs sub-ms AQP).
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pairwise_hist.h"
#include "query/engine.h"
#include "query/sql_parser.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

struct LatencyFixture {
  Table table;
  std::optional<PairwiseHist> synopsis;
  std::vector<Query> workload;

  static LatencyFixture* Get() {
    static LatencyFixture* fixture = [] {
      auto* f = new LatencyFixture();
      size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
      BenchDataset ds = MakeScaledDataset(
          "power", scale_rows, EnvSize("PH_QUERIES", 100), 71);
      f->table = std::move(ds.table);
      f->workload = std::move(ds.workload);
      PairwiseHistConfig cfg;
      cfg.sample_size = scale_rows / 10;
      auto ph = PairwiseHist::BuildFromTable(f->table, cfg);
      if (ph.ok()) f->synopsis.emplace(std::move(ph).value());
      return f;
    }();
    return fixture;
  }
};

void BM_CountSinglePredicate(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql("SELECT COUNT(voltage) FROM power WHERE voltage > 240;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CountSinglePredicate);

void BM_AvgCrossColumn(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql(
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_AvgCrossColumn);

void BM_FivePredicates(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql(
      "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
      "AND day_of_week < 6;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FivePredicates);

void BM_MedianAggregate(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql(
      "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_MedianAggregate);

void BM_OrPredicate(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql(
      "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_OrPredicate);

void BM_GroupBy(benchmark::State& state) {
  LatencyFixture* f = LatencyFixture::Get();
  AqpEngine engine(&*f->synopsis);
  auto q = ParseSql(
      "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;");
  for (auto _ : state) {
    auto r = engine.Execute(*q);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_GroupBy);

void BM_SqlParseOnly(benchmark::State& state) {
  for (auto _ : state) {
    auto q = ParseSql(
        "SELECT AVG(a) FROM t WHERE b > 1 AND c < 2 OR d = 3;");
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace

int main(int argc, char** argv) {
  Banner("Fig. 11(c): median query latency");
  LatencyFixture* f = LatencyFixture::Get();
  if (!f->workload.empty()) {
    size_t ns = EnvSize("PH_SCALE_ROWS", 200000) / 10;
    BuiltMethod ph = BuildPairwiseHistMethod(f->table, ns);
    BuiltMethod spn = BuildSpnMethod(f->table, ns);
    BuiltMethod sampling = BuildSamplingMethod(f->table, ns);
    BuiltMethod dbest = BuildDbestMethod(f->table, f->workload, ns / 10);
    std::vector<const AqpMethod*> methods = {
        ph.method.get(), spn.method.get(), sampling.method.get(),
        dbest.method.get()};
    auto runs = RunWorkload(f->table, f->workload, methods);
    if (runs.ok()) {
      std::printf("%-14s %16s %10s\n", "Method", "median latency",
                  "queries");
      for (const MethodRun& run : runs.value()) {
        std::printf("%-14s %16s %10zu\n", run.method.c_str(),
                    HumanSeconds(run.MedianLatencyUs() / 1e6).c_str(),
                    run.queries_supported);
      }
      double exact_us = MedianExactLatencyUs(f->table, f->workload);
      std::printf("%-14s %16s %10zu  (the paper's SQLite reference)\n",
                  "Exact scan", HumanSeconds(exact_us / 1e6).c_str(),
                  f->workload.size());
      std::printf(
          "\n(paper shape: PH fastest AQP, orders of magnitude under the "
          "exact scan)\n\nMicro-benchmarks by query shape:\n");
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
