// Execution fast-path microbenchmark: prepared Execute latency per query
// shape, reference path (use_fast_path = false) vs the zero-allocation
// fast path, plus the allocation-free ExecuteInto variant with a reused
// result. Verifies the two paths return identical results on every shape
// and emits BENCH_exec_fastpath.json for CI's perf trajectory.
//
// No google-benchmark dependency: self-calibrating timing loops, so this
// runs on bare machines (and in every CI configuration).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "query/engine.h"
#include "query/sql_parser.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

// Average per-call microseconds, with geometric rep growth until the
// measurement window is long enough to trust.
template <typename F>
double TimePerCallUs(F&& body) {
  int reps = 1;
  for (;;) {
    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) body();
    double dt = NowSeconds() - t0;
    if (dt > 0.05 || reps >= (1 << 24)) {
      return dt * 1e6 / reps;
    }
    reps *= 4;
  }
}

bool SameResult(const QueryResult& a, const QueryResult& b) {
  if (a.groups.size() != b.groups.size()) return false;
  auto same = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  for (size_t g = 0; g < a.groups.size(); ++g) {
    if (a.groups[g].label != b.groups[g].label) return false;
    const AggResult& x = a.groups[g].agg;
    const AggResult& y = b.groups[g].agg;
    if (x.empty_selection != y.empty_selection) return false;
    if (!same(x.estimate, y.estimate) || !same(x.lower, y.lower) ||
        !same(x.upper, y.upper)) {
      return false;
    }
  }
  return true;
}

struct Shape {
  const char* name;
  const char* sql;
};

}  // namespace

int main() {
  Banner("Execution fast path: prepared Execute latency by shape");
  const size_t rows = EnvSize("PH_SCALE_ROWS", 200000);
  DbOptions options;
  options.synopsis.sample_size = rows / 10;
  auto db = Db::FromGenerator("power", rows, 71, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  AqpEngineOptions ref_opt;
  ref_opt.use_fast_path = false;
  AqpEngine ref_engine(&db->synopsis(), ref_opt);
  const AqpEngine& fast_engine = db->engine();  // fast path on by default

  const Shape kShapes[] = {
      {"count_single_pred",
       "SELECT COUNT(voltage) FROM power WHERE voltage > 240;"},
      {"count_or_pred",
       "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;"},
      {"avg_cross_column",
       "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;"},
      {"sum_five_pred",
       "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
       "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
       "AND day_of_week < 6;"},
      {"var_single_column",
       "SELECT VAR(voltage) FROM power WHERE voltage > 238;"},
      {"median_cross_column",
       "SELECT MEDIAN(global_active_power) FROM power WHERE hour < 12;"},
      {"group_by_avg",
       "SELECT AVG(global_active_power) FROM power GROUP BY day_of_week;"},
  };

  std::printf("%-22s %12s %12s %12s %9s\n", "shape", "ref us/op",
              "fast us/op", "into us/op", "speedup");
  std::string shapes_json;
  std::vector<double> speedups;
  size_t mismatches = 0;
  for (const Shape& shape : kShapes) {
    auto q = ParseSql(shape.sql);
    if (!q.ok()) {
      std::fprintf(stderr, "parse failed: %s\n", shape.sql);
      return 1;
    }
    auto ref_plan = ref_engine.Compile(*q);
    auto fast_plan = fast_engine.Compile(*q);
    if (!ref_plan.ok() || !fast_plan.ok()) {
      std::fprintf(stderr, "compile failed: %s\n", shape.sql);
      return 1;
    }

    auto a = ref_engine.Execute(ref_plan.value());
    auto b = fast_engine.Execute(fast_plan.value());
    if (!a.ok() || !b.ok() || !SameResult(a.value(), b.value())) {
      ++mismatches;
    }

    double ref_us = TimePerCallUs([&]() {
      auto r = ref_engine.Execute(ref_plan.value());
      (void)r;
    });
    double fast_us = TimePerCallUs([&]() {
      auto r = fast_engine.Execute(fast_plan.value());
      (void)r;
    });
    QueryResult reused;
    double into_us = TimePerCallUs([&]() {
      Status st = fast_engine.ExecuteInto(fast_plan.value(), &reused);
      (void)st;
    });
    double speedup = into_us > 0 ? ref_us / into_us : 0.0;
    speedups.push_back(speedup);
    std::printf("%-22s %12.3f %12.3f %12.3f %8.2fx\n", shape.name, ref_us,
                fast_us, into_us, speedup);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s    {\"name\": \"%s\", \"ref_us\": %.4f, "
                  "\"fast_us\": %.4f, \"into_us\": %.4f, \"speedup\": %.3f}",
                  shapes_json.empty() ? "" : ",\n", shape.name, ref_us,
                  fast_us, into_us, speedup);
    shapes_json += row;
  }

  double med = Median(speedups);
  std::printf("\nmedian fast-path speedup: %.2fx%s\n", med,
              mismatches == 0 ? "" : "  [RESULT MISMATCHES!]");

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"exec_fastpath\",\n  \"scale_rows\": %zu,\n"
                "  \"median_speedup\": %.3f,\n  \"mismatches\": %zu,\n"
                "  \"shapes\": [\n",
                rows, med, mismatches);
  WriteBenchJson("BENCH_exec_fastpath.json",
                 std::string(head) + shapes_json + "\n  ]\n}");
  return mismatches == 0 ? 0 : 1;
}
