// Reproduces Fig. 1 / Table 1: the cross-method summary over the paper's
// six axes — accuracy, latency, query bounds, construction time, synopsis
// size and total storage — measured on one scaled dataset and printed as a
// comparison table (the paper renders the same data as a radar chart).
#include <cstdio>

#include "bench/bench_util.h"
#include "gd/greedy_gd.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Fig. 1 / Table 1: cross-method summary (scaled Power)");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 120);
  const size_t ns = EnvSize("PH_NS", scale_rows / 10);

  BenchDataset ds = MakeScaledDataset("power", scale_rows, queries, 91);
  if (ds.workload.empty()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  BuiltMethod ph = BuildPairwiseHistMethod(ds.table, ns);
  BuiltMethod spn = BuildSpnMethod(ds.table, ns);
  BuiltMethod sampling = BuildSamplingMethod(ds.table, ns);
  BuiltMethod avi = BuildAviMethod(ds.table, ns);
  BuiltMethod dbest = BuildDbestMethod(ds.table, ds.workload, ns / 10);

  std::vector<const BuiltMethod*> built = {&ph, &spn, &sampling, &avi,
                                           &dbest};
  std::vector<const AqpMethod*> methods;
  for (const BuiltMethod* b : built) methods.push_back(b->method.get());
  auto runs = RunWorkload(ds.table, ds.workload, methods);
  if (!runs.ok()) {
    std::fprintf(stderr, "%s\n", runs.status().ToString().c_str());
    return 1;
  }

  auto gd = CompressTable(ds.table);
  double raw = static_cast<double>(ds.table.RawSizeBytes());

  std::printf("%-14s %10s %12s %9s %11s %11s %10s %10s\n", "Method",
              "err(med%)", "latency", "bounds%", "build", "size",
              "storage*", "supported");
  for (size_t i = 0; i < built.size(); ++i) {
    const MethodRun& r = runs.value()[i];
    double total_storage = raw + built[i]->method->StorageBytes();
    if (i == 0 && gd.ok()) {
      // PairwiseHist rides on GD-compressed data (the paper's framework).
      total_storage = static_cast<double>(gd->CompressedSizeBytes()) +
                      built[i]->method->StorageBytes();
    }
    std::printf("%-14s %10.2f %12s %9.1f %11s %11s %9.2fx %7zu/%zu\n",
                built[i]->label.c_str(), r.MedianErrorPct(),
                HumanSeconds(r.MedianLatencyUs() / 1e6).c_str(),
                r.BoundsCorrectRate(),
                HumanSeconds(built[i]->build_seconds).c_str(),
                HumanBytes(built[i]->method->StorageBytes()).c_str(),
                raw / total_storage, r.queries_supported,
                ds.workload.size());
  }
  std::printf(
      "\n*storage = raw bytes / (data-at-rest + synopsis); PairwiseHist "
      "stores data GD-compressed.\n");
  std::printf(
      "(paper's Fig. 1: PairwiseHist on the outer ring of every axis)\n");
  return 0;
}
