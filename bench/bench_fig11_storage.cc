// Reproduces Fig. 11(a)+(b): synopsis sizes for every method at two sample
// sizes, and total storage (data + synopsis) with and without GreedyGD
// compression.
//
// Paper headline: PairwiseHist synopses are >= 11x smaller (0.25 MB vs
// 2.75 MB on scaled Power), and GD compression cuts total storage 3.2-4.3x.
#include <cstdio>

#include "bench/bench_util.h"
#include "gd/greedy_gd.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Fig. 11(a): synopsis size / (b): total storage with compression");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 60);
  const size_t ns_large = EnvSize("PH_NS", scale_rows / 10);
  const size_t ns_small = ns_large / 10;

  for (const char* name : {"power", "flights"}) {
    BenchDataset ds = MakeScaledDataset(name, scale_rows, queries, 61);
    if (ds.table.NumRows() == 0) continue;

    BuiltMethod ph_lg = BuildPairwiseHistMethod(ds.table, ns_large);
    BuiltMethod ph_sm = BuildPairwiseHistMethod(ds.table, ns_small);
    BuiltMethod spn_lg = BuildSpnMethod(ds.table, ns_large);
    BuiltMethod spn_sm = BuildSpnMethod(ds.table, ns_small);
    BuiltMethod dbest = BuildDbestMethod(ds.table, ds.workload, ns_small);
    BuiltMethod sampling = BuildSamplingMethod(ds.table, ns_large);

    std::printf("\n--- %s (%zu rows) --- (a) synopsis size\n", name,
                ds.table.NumRows());
    for (const BuiltMethod* m :
         {&ph_lg, &ph_sm, &spn_lg, &spn_sm, &dbest, &sampling}) {
      if (!m->method) continue;
      std::printf("  %-18s %12s\n",
                  (m->label + (m == &ph_lg || m == &spn_lg
                                   ? " (large Ns)"
                                   : (m == &ph_sm || m == &spn_sm
                                          ? " (small Ns)"
                                          : "")))
                      .c_str(),
                  HumanBytes(m->method->StorageBytes()).c_str());
    }

    // (b) total storage: raw data vs GD-compressed data + PH synopsis.
    double t0 = NowSeconds();
    auto gd = CompressTable(ds.table);
    double gd_time = NowSeconds() - t0;
    if (!gd.ok()) continue;
    size_t raw = ds.table.RawSizeBytes();
    size_t compressed = gd->CompressedSizeBytes();
    size_t synopsis = ph_lg.method->StorageBytes();
    std::printf("  (b) total storage:\n");
    std::printf("      raw data              %12s\n",
                HumanBytes(raw).c_str());
    std::printf("      GD-compressed data    %12s  (ratio %.2fx, built in %s,"
                " %zu bases)\n",
                HumanBytes(compressed).c_str(),
                static_cast<double>(raw) / compressed,
                HumanSeconds(gd_time).c_str(), gd->num_bases());
    std::printf("      + PH synopsis         %12s\n",
                HumanBytes(synopsis).c_str());
    std::printf("      total saving          %11.2fx\n",
                static_cast<double>(raw) / (compressed + synopsis));
  }
  std::printf(
      "\n(paper shape: PH smallest synopsis by >=11x; total saving "
      "3.2-4.3x)\n");
  return 0;
}
