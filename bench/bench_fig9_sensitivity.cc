// Reproduces Fig. 9: PairwiseHist parameter sensitivity on the scaled
// Flights dataset — median error (a) and synopsis size (b) as functions of
// the minimum split points M, for several (Ns, α) settings.
//
// Paper headline: Ns dominates accuracy, α has near-zero impact, larger M
// shrinks the synopsis at a modest accuracy cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/pairwise_hist.h"
#include "query/engine.h"
#include "query/exact.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Fig. 9: parameter sensitivity (scaled Flights)");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 80);

  BenchDataset ds = MakeScaledDataset("flights", scale_rows, queries, 11);
  if (ds.workload.empty()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  struct Setting {
    size_t ns;
    double alpha;
  };
  const Setting settings[] = {
      {scale_rows / 2, 0.01}, {scale_rows / 20, 0.001},
      {scale_rows / 20, 0.01}, {scale_rows / 20, 0.1}};
  const uint64_t m_values[] = {1000, 4000, 7000, 10000};

  std::printf("%-26s|", "setting");
  for (uint64_t m : m_values) {
    std::printf(" M=%-7llu|", (unsigned long long)m);
  }
  std::printf("\n");

  for (const Setting& s : settings) {
    // (a) median error per M.
    std::printf("err%%  Ns=%-7zu a=%-5g |", s.ns, s.alpha);
    for (uint64_t m : m_values) {
      PairwiseHistConfig cfg;
      cfg.sample_size = s.ns;
      cfg.min_points_override = m;
      cfg.alpha = s.alpha;
      auto ph = PairwiseHist::BuildFromTable(ds.table, cfg);
      if (!ph.ok()) {
        std::printf(" build-err |");
        continue;
      }
      AqpEngine engine(&ph.value());
      std::vector<double> errors;
      for (const Query& q : ds.workload) {
        auto exact = ExecuteExact(ds.table, q);
        auto approx = engine.Execute(q);
        if (!exact.ok() || !approx.ok()) continue;
        const AggResult& e = exact->Scalar();
        const AggResult& a = approx->Scalar();
        if (e.empty_selection || a.empty_selection) continue;
        errors.push_back(RelativeErrorPct(e.estimate, a.estimate));
      }
      std::printf(" %8.2f |", Median(errors));
    }
    std::printf("\n");
  }
  std::printf("\n");
  for (const Setting& s : {settings[0], settings[1]}) {
    // (b) synopsis size per M.
    std::printf("size  Ns=%-7zu a=%-5g |", s.ns, s.alpha);
    for (uint64_t m : m_values) {
      PairwiseHistConfig cfg;
      cfg.sample_size = s.ns;
      cfg.min_points_override = m;
      cfg.alpha = s.alpha;
      auto ph = PairwiseHist::BuildFromTable(ds.table, cfg);
      std::printf(" %9s|",
                  ph.ok() ? HumanBytes(ph->StorageBytes()).c_str() : "err");
    }
    std::printf("\n");
  }
  std::printf(
      "\n(paper shape: error falls with Ns, is flat in alpha; size falls "
      "as M grows)\n");
  return 0;
}
