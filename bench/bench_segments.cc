// Segmented synopsis benchmark: query latency + accuracy vs segment count.
//
// Builds the same dataset as one monolithic synopsis and as 4- and
// 16-segment sharded Dbs, runs a selectivity-floored workload against
// each, and reports build time, prepared-execute latency, median relative
// error vs exact, and CI coverage. Emits BENCH_segments.json for CI's perf
// trajectory. Expected shape: latency grows mildly with segment count
// (fan-out + merge), accuracy degrades as segments shrink relative to M
// (sparse 2-d refinement), and build parallelism improves wall-clock.
//
// No google-benchmark dependency: self-calibrating timing loops, so this
// runs on bare machines and in every CI configuration.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "query/exact.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

template <typename F>
double TimePerCallUs(F&& body) {
  int reps = 1;
  for (;;) {
    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) body();
    double dt = NowSeconds() - t0;
    if (dt > 0.02 || reps >= (1 << 22)) {
      return dt * 1e6 / reps;
    }
    reps *= 4;
  }
}

}  // namespace

int main() {
  Banner("Segmented synopsis: latency + accuracy vs segment count");
  const size_t rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t nqueries = EnvSize("PH_QUERIES", 40);

  auto table = MakeDataset("power", rows, 71);
  if (!table.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }

  WorkloadConfig wcfg = InitialWorkloadConfig(17);
  wcfg.num_queries = nqueries;
  wcfg.min_predicates = 1;
  wcfg.max_predicates = 3;
  wcfg.functions = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg,
                    AggFunc::kMin,   AggFunc::kMax, AggFunc::kMedian};
  auto workload = GenerateWorkload(table.value(), wcfg);
  if (!workload.ok() || workload->empty()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  // Exact ground truth, once.
  std::vector<double> exact;
  exact.reserve(workload->size());
  for (const Query& q : workload.value()) {
    auto r = ExecuteExact(table.value(), q);
    exact.push_back(r.ok() ? r->Scalar().estimate : 0.0);
  }

  std::printf("%8s %12s %14s %14s %12s %12s\n", "segments", "build s",
              "med lat us", "med err %", "CI cover %", "storage");
  std::string configs_json;
  const size_t kSegmentCounts[] = {1, 4, 16};
  for (size_t nseg : kSegmentCounts) {
    DbOptions options;
    options.synopsis.sample_size = 0;  // full-scan builds: same data seen
    options.target_segment_rows = nseg == 1 ? 0 : (rows + nseg - 1) / nseg;
    auto t0 = NowSeconds();
    auto db = Db::FromTable(table->Slice(0, rows), options);
    double build_s = NowSeconds() - t0;
    if (!db.ok()) {
      std::fprintf(stderr, "build (%zu segments) failed: %s\n", nseg,
                   db.status().ToString().c_str());
      return 1;
    }

    std::vector<double> latencies, errors;
    size_t bounds_total = 0, bounds_correct = 0;
    for (size_t i = 0; i < workload->size(); ++i) {
      auto pq = db->Prepare((*workload)[i]);
      if (!pq.ok()) continue;
      auto first = pq->Execute();
      if (!first.ok() || first->Scalar().empty_selection) continue;
      QueryResult reused;
      latencies.push_back(TimePerCallUs(
          [&]() { (void)pq->ExecuteInto(&reused); }));
      const AggResult& agg = first->Scalar();
      errors.push_back(RelativeErrorPct(exact[i], agg.estimate));
      ++bounds_total;
      if (exact[i] >= agg.lower && exact[i] <= agg.upper) ++bounds_correct;
    }

    double med_lat = Median(latencies);
    double med_err = Median(errors);
    double cover = bounds_total == 0
                       ? 0.0
                       : 100.0 * bounds_correct / bounds_total;
    size_t bytes = db->StorageBytes();
    std::printf("%8zu %12.2f %14.2f %14.3f %12.1f %12s\n", nseg, build_s,
                med_lat, med_err, cover, HumanBytes(bytes).c_str());

    char row[320];
    std::snprintf(row, sizeof(row),
                  "%s    {\"segments\": %zu, \"build_seconds\": %.3f, "
                  "\"median_latency_us\": %.3f, \"median_error_pct\": %.4f, "
                  "\"bounds_correct_rate\": %.2f, \"storage_bytes\": %zu, "
                  "\"queries\": %zu}",
                  configs_json.empty() ? "" : ",\n", nseg, build_s, med_lat,
                  med_err, cover, bytes, latencies.size());
    configs_json += row;
  }

  char head[160];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"segments\",\n  \"scale_rows\": %zu,\n"
                "  \"configs\": [\n",
                rows);
  WriteBenchJson("BENCH_segments.json",
                 std::string(head) + configs_json + "\n  ]\n}");
  return 0;
}
