// PWS3 zero-copy open benchmark — the perf artifact for the mmap
// persistence layer (BENCH_mmap.json).
//
// Experiment 1 (open latency + memory): one synopsis saved at 1, 4 and 16
// segments in both formats, then opened via
//   - pws2 heap  (the legacy startup path: Fig.-6 decode + FinishExecIndex)
//   - pws3 heap  (raw-array memcpy decode)
//   - pws3 mmap  (O(1): header validation + span fix-up, no array I/O)
// cold (page cache dropped via posix_fadvise DONTNEED) and warm. RSS
// growth is recorded per open path: the mmap open touches only metadata
// pages, so resident growth stays near zero until queries fault pages in.
// The acceptance bar: mmap open >= 10x faster than the legacy heap
// deserialize at 16 segments, with near-flat latency from 1 -> 16 segments.
//
// Experiment 2 (instant recovery): ServingDb::Recover wall time on a
// durable directory whose checkpoint is PWS3 — the end-to-end serving
// restart path (list checkpoints + mmap open + WAL tail replay).
//
// Environment knobs:
//   PH_SCALE_ROWS   dataset rows (default 48000)
//   PH_OPEN_REPS    timed repetitions per open path (default 5, min kept)
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "datagen/datasets.h"
#include "serve/serving_db.h"
#include "storage/mmap_file.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

double NowMs() { return NowSeconds() * 1e3; }

// Resident set size in bytes (Linux /proc/self/statm, page granularity).
size_t RssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0, resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<size_t>(resident) *
         static_cast<size_t>(::sysconf(_SC_PAGESIZE));
}

size_t FileBytes(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long n = std::ftell(f);
  std::fclose(f);
  return n < 0 ? 0 : static_cast<size_t>(n);
}

struct OpenSample {
  double ms = 0;        ///< best-of-reps open latency
  double rss_mb = 0;    ///< RSS growth across the reps' opens
  double query_ms = 0;  ///< first query after the last open (page-in cost)
};

OpenSample TimeOpen(const std::string& path, OpenMode mode, bool cold,
                    int reps) {
  OpenSample s;
  s.ms = 1e30;
  const size_t rss0 = RssBytes();
  for (int r = 0; r < reps; ++r) {
    if (cold) DropFileCache(path);
    const double t0 = NowMs();
    DbOptions options;
    options.open_mode = mode;
    auto db = Db::Open(path, options);
    const double dt = NowMs() - t0;
    if (!db.ok()) {
      std::fprintf(stderr, "open %s failed: %s\n", path.c_str(),
                   db.status().ToString().c_str());
      std::exit(1);
    }
    s.ms = std::min(s.ms, dt);
    if (r == reps - 1) {
      const double q0 = NowMs();
      auto res = db->ExecuteSql(
          "SELECT AVG(global_active_power) FROM power WHERE hour >= 6;");
      s.query_ms = NowMs() - q0;
      if (!res.ok()) std::exit(1);
    }
  }
  s.rss_mb = RssBytes() > rss0 ? (RssBytes() - rss0) / (1024.0 * 1024.0)
                               : 0.0;
  return s;
}

}  // namespace

int main() {
  const size_t rows = EnvSize("PH_SCALE_ROWS", 48000);
  const int reps =
      static_cast<int>(EnvSize("PH_OPEN_REPS", 5));
  Banner("PWS3 mmap open (rows=" + std::to_string(rows) +
         ", reps=" + std::to_string(reps) + ")");

  const std::string dir = "/tmp";
  std::string open_json;
  double mmap_warm_1seg = 0, mmap_warm_16seg = 0;
  double heap3_warm_16seg = 0, pws2_warm_16seg = 0;

  for (const size_t nseg : {size_t{1}, size_t{4}, size_t{16}}) {
    DbOptions options;
    options.synopsis.sample_size = rows / nseg < 4000 ? 0 : 4000;
    options.target_segment_rows = (rows + nseg - 1) / nseg;
    auto db = Db::FromGenerator("power", rows, 7, options);
    if (!db.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
    char tag[64];
    std::snprintf(tag, sizeof(tag), "%s/bench_mmap_%zuseg", dir.c_str(),
                  nseg);
    const std::string pws2 = std::string(tag) + ".pws2";
    const std::string pws3 = std::string(tag) + ".pws3";
    if (!db->Save(pws2, SaveFormat::kPws2).ok() ||
        !db->Save(pws3, SaveFormat::kPws3).ok()) {
      return 1;
    }

    const OpenSample p2_cold = TimeOpen(pws2, OpenMode::kHeap, true, reps);
    const OpenSample p2_warm = TimeOpen(pws2, OpenMode::kHeap, false, reps);
    const OpenSample p3h_cold = TimeOpen(pws3, OpenMode::kHeap, true, reps);
    const OpenSample p3h_warm = TimeOpen(pws3, OpenMode::kHeap, false, reps);
    const OpenSample p3m_cold = TimeOpen(pws3, OpenMode::kMmap, true, reps);
    const OpenSample p3m_warm = TimeOpen(pws3, OpenMode::kMmap, false, reps);

    if (nseg == 1) mmap_warm_1seg = p3m_warm.ms;
    if (nseg == 16) {
      mmap_warm_16seg = p3m_warm.ms;
      heap3_warm_16seg = p3h_warm.ms;
      pws2_warm_16seg = p2_warm.ms;
    }

    std::printf(
        "%2zu seg  pws2 %s / pws3 %s\n"
        "  open ms (cold/warm): pws2-heap %8.3f/%8.3f  pws3-heap "
        "%8.3f/%8.3f  pws3-mmap %8.3f/%8.3f\n"
        "  rss mb: heap %.1f vs mmap %.1f   first-query ms after mmap "
        "open: %.2f\n",
        nseg, HumanBytes(FileBytes(pws2)).c_str(),
        HumanBytes(FileBytes(pws3)).c_str(), p2_cold.ms, p2_warm.ms,
        p3h_cold.ms, p3h_warm.ms, p3m_cold.ms, p3m_warm.ms,
        p2_cold.rss_mb + p2_warm.rss_mb,
        p3m_cold.rss_mb + p3m_warm.rss_mb, p3m_warm.query_ms);

    char row[1024];
    std::snprintf(
        row, sizeof(row),
        "%s    {\"segments\": %zu, \"pws2_bytes\": %zu, \"pws3_bytes\": "
        "%zu,\n"
        "     \"pws2_heap_cold_ms\": %.4f, \"pws2_heap_warm_ms\": %.4f,\n"
        "     \"pws3_heap_cold_ms\": %.4f, \"pws3_heap_warm_ms\": %.4f,\n"
        "     \"pws3_mmap_cold_ms\": %.4f, \"pws3_mmap_warm_ms\": %.4f,\n"
        "     \"heap_open_rss_mb\": %.2f, \"mmap_open_rss_mb\": %.2f,\n"
        "     \"mmap_first_query_ms\": %.4f, \"speedup_vs_pws2_cold\": "
        "%.1f, \"speedup_vs_pws2_warm\": %.1f}",
        open_json.empty() ? "" : ",\n", nseg, FileBytes(pws2),
        FileBytes(pws3), p2_cold.ms, p2_warm.ms, p3h_cold.ms, p3h_warm.ms,
        p3m_cold.ms, p3m_warm.ms, p2_cold.rss_mb + p2_warm.rss_mb,
        p3m_cold.rss_mb + p3m_warm.rss_mb, p3m_warm.query_ms,
        p3m_cold.ms > 0 ? p2_cold.ms / p3m_cold.ms : 0.0,
        p3m_warm.ms > 0 ? p2_warm.ms / p3m_warm.ms : 0.0);
    open_json += row;

    std::remove(pws2.c_str());
    std::remove(pws3.c_str());
  }

  // ---- Experiment 2: serving restart (Recover = list + mmap + replay) ----
  const std::string serve_dir = dir + "/bench_mmap_serve";
  double recover_ms = 0;
  uint64_t recovered_rows = 0;
  {
    DbOptions options;
    options.synopsis.sample_size = 4000;
    options.target_segment_rows = rows / 4;
    auto db = Db::FromGenerator("power", rows, 7, options);
    if (!db.ok()) return 1;

    ServingOptions so;
    so.durability.dir = serve_dir;
    // Sweep any previous run's state (both checkpoint generations).
    ::unlink((serve_dir + "/wal.log").c_str());
    for (uint64_t e = 0; e < 64; ++e) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%020llu",
                    static_cast<unsigned long long>(e));
      for (const char* suffix : {".pws2", ".pws2.tmp", ".pws3", ".pws3.tmp"}) {
        ::unlink((serve_dir + "/checkpoint-" + buf + suffix).c_str());
      }
    }
    ::rmdir(serve_dir.c_str());
    auto sdb = ServingDb::CreateDurable(std::move(db).value(), so);
    if (!sdb.ok()) {
      std::fprintf(stderr, "CreateDurable: %s\n",
                   sdb.status().ToString().c_str());
      return 1;
    }
    // A couple of appended batches leave a WAL tail for replay.
    for (uint64_t b = 0; b < 2; ++b) {
      auto batch = MakeDataset("power", 1000, 100 + b);
      if (!batch.ok() || !(*sdb)->Append(batch.value()).ok()) return 1;
    }
    sdb->reset();  // clean shutdown; state lives in dir

    const double t0 = NowMs();
    auto recovered = ServingDb::Recover(so);
    recover_ms = NowMs() - t0;
    if (!recovered.ok()) {
      std::fprintf(stderr, "Recover: %s\n",
                   recovered.status().ToString().c_str());
      return 1;
    }
    recovered_rows = (*recovered)->Stats().rows;
    std::printf("ServingDb::Recover: %.2f ms to serve %llu rows "
                "(mapped_bytes=%llu)\n",
                recover_ms,
                static_cast<unsigned long long>(recovered_rows),
                static_cast<unsigned long long>(
                    (*recovered)->Stats().mapped_bytes));
  }

  // Acceptance: at 16 segments, a warm mmap Db::Open must be >= 10x
  // faster than heap-deserializing the same PWS3 file (cold opens are
  // disk-bound for every path, so warm isolates the decode work the mmap
  // path eliminates). The 1->16 segment latency ratio is reported but not
  // gated: the per-segment metadata walk keeps open O(num_segments) with
  // a ~40us/segment constant, 20-30x smaller than heap decode's.
  const double flatness =
      mmap_warm_1seg > 0 ? mmap_warm_16seg / mmap_warm_1seg : 0.0;
  const double speedup =
      mmap_warm_16seg > 0 ? heap3_warm_16seg / mmap_warm_16seg : 0.0;
  const double speedup_pws2 =
      mmap_warm_16seg > 0 ? pws2_warm_16seg / mmap_warm_16seg : 0.0;
  const bool pass = speedup >= 10.0;
  std::printf("16-seg warm mmap open: %.1fx vs pws3 heap decode, %.1fx vs "
              "pws2 decode; 1->16 seg latency ratio %.2f  [%s]\n",
              speedup, speedup_pws2, flatness, pass ? "PASS" : "FAIL");

  char tail[512];
  std::snprintf(tail, sizeof(tail),
                "\n  ],\n  \"speedup_16seg_warm_vs_pws3_heap\": %.1f,\n"
                "  \"speedup_16seg_warm_vs_pws2_heap\": %.1f,\n"
                "  \"mmap_latency_ratio_1_to_16_seg\": %.3f,\n"
                "  \"recover_ms\": %.3f,\n  \"recovered_rows\": %llu,\n"
                "  \"accept_speedup_10x\": %s\n}",
                speedup, speedup_pws2, flatness, recover_ms,
                static_cast<unsigned long long>(recovered_rows),
                pass ? "true" : "false");
  WriteBenchJson("BENCH_mmap.json",
                 "{\n  \"rows\": " + std::to_string(rows) +
                     ",\n  \"open\": [\n" + open_json + tail);
  return pass ? 0 : 1;
}
