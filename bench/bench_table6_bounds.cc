// Reproduces Table 6: bounds accuracy rate (%) and median bound width (% of
// the exact result) on original and scaled Power/Flights, over the query
// subset both bound-producing methods support.
//
// Paper headline: PairwiseHist bounds are correct 70–80% of the time vs
// DeepDB's 40–76%; DeepDB's bounds are narrower but optimistic.
#include <cstdio>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

void RunOne(const std::string& label, const Table& table,
            const std::vector<Query>& workload, size_t ns) {
  BuiltMethod ph = BuildPairwiseHistMethod(table, ns);
  BuiltMethod spn = BuildSpnMethod(table, ns);
  std::vector<const AqpMethod*> methods = {ph.method.get(),
                                           spn.method.get()};
  auto runs = RunWorkload(table, workload, methods);
  if (!runs.ok()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 runs.status().ToString().c_str());
    return;
  }
  const auto& r = runs.value();
  std::printf("%-20s | %11.1f %11.1f | %11.1f %11.1f\n", label.c_str(),
              r[0].BoundsCorrectRate(), r[1].BoundsCorrectRate(),
              r[0].MedianBoundWidthPct(), r[1].MedianBoundWidthPct());
}

}  // namespace

int main() {
  Banner("Table 6: bounds accuracy rate (%) and median width (%)");
  const size_t rows = EnvSize("PH_ROWS", 0);
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 120);

  std::printf("%-20s | %11s %11s | %11s %11s\n", "Dataset", "PH corr%",
              "SPN corr%", "PH width%", "SPN width%");

  for (const char* name : {"power", "flights"}) {
    auto real = MakeDataset(name, rows, 51);
    if (!real.ok()) continue;
    WorkloadConfig cfg = InitialWorkloadConfig(52);
    cfg.num_queries = queries;
    auto workload = GenerateWorkload(*real, cfg);
    if (!workload.ok()) continue;
    RunOne(std::string(name) + " (original)", *real, *workload,
           real->NumRows() / 4);

    BenchDataset scaled = MakeScaledDataset(name, scale_rows, queries, 53);
    if (scaled.workload.empty()) continue;
    RunOne(std::string(name) + " (scaled)", scaled.table, scaled.workload,
           scale_rows / 10);
  }
  std::printf(
      "\n(paper shape: PH correct-rate above SPN's; SPN widths narrower "
      "but over-optimistic)\n");
  return 0;
}
