// Reproduces Fig. 11(d): synopsis construction time per method at two
// sample sizes on the scaled datasets.
//
// Paper headline: PairwiseHist builds 1.2-4x faster than DeepDB and more
// than two orders of magnitude faster than DBEst++ (<3 min at 1m samples
// vs 30+ hours).
#include <cstdio>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Fig. 11(d): synopsis construction time");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 40);
  const size_t ns_large = EnvSize("PH_NS", scale_rows / 10);
  const size_t ns_small = ns_large / 10;

  for (const char* name : {"power", "flights"}) {
    BenchDataset ds = MakeScaledDataset(name, scale_rows, queries, 81);
    if (ds.table.NumRows() == 0) continue;
    std::printf("\n--- %s (%zu rows) ---\n", name, ds.table.NumRows());
    std::printf("%-26s %14s\n", "Method", "build time");

    BuiltMethod ph_lg = BuildPairwiseHistMethod(ds.table, ns_large);
    std::printf("%-26s %14s\n", "PairwiseHist (large Ns)",
                HumanSeconds(ph_lg.build_seconds).c_str());
    BuiltMethod ph_sm = BuildPairwiseHistMethod(ds.table, ns_small);
    std::printf("%-26s %14s\n", "PairwiseHist (small Ns)",
                HumanSeconds(ph_sm.build_seconds).c_str());
    BuiltMethod spn_lg = BuildSpnMethod(ds.table, ns_large);
    std::printf("%-26s %14s\n", "SPN (large Ns)",
                HumanSeconds(spn_lg.build_seconds).c_str());
    BuiltMethod spn_sm = BuildSpnMethod(ds.table, ns_small);
    std::printf("%-26s %14s\n", "SPN (small Ns)",
                HumanSeconds(spn_sm.build_seconds).c_str());
    BuiltMethod dbest = BuildDbestMethod(ds.table, ds.workload, ns_small);
    std::printf("%-26s %14s  (%zu templates)\n", "DBEst (small Ns)",
                HumanSeconds(dbest.build_seconds).c_str(),
                static_cast<DbestBaseline*>(dbest.method.get())
                    ->num_templates());
    if (ph_lg.build_seconds > 0) {
      std::printf("%-26s %13.1fx\n", "SPN/PH build-time ratio",
                  spn_lg.build_seconds / ph_lg.build_seconds);
      std::printf("%-26s %13.1fx\n", "DBEst/PH build-time ratio",
                  dbest.build_seconds / ph_lg.build_seconds);
    }
  }
  std::printf(
      "\n(paper shape: PH fastest; DBEst slowest by orders of magnitude)\n");
  return 0;
}
