// Shared plumbing for the per-table/figure benchmark binaries.
//
// Every bench binary honours these environment variables:
//   PH_ROWS        rows per original dataset (0 = laptop-scale default)
//   PH_SCALE_ROWS  rows for the IDEBench-scaled datasets (default 200000;
//                  the paper uses 1e9 — see DESIGN.md §3.4)
//   PH_QUERIES     workload size cap (default: per-bench)
// Output is the paper's row/series structure printed as aligned text.
#ifndef PAIRWISEHIST_BENCH_BENCH_UTIL_H_
#define PAIRWISEHIST_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/aqp_method.h"
#include "baselines/avi_hist.h"
#include "baselines/dbest.h"
#include "baselines/sampling_aqp.h"
#include "baselines/spn.h"
#include "datagen/datasets.h"
#include "datagen/idebench_scaler.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "storage/table.h"

namespace pairwisehist {
namespace bench {

/// Reads a size_t environment variable with a default.
size_t EnvSize(const char* name, size_t def);

/// Seconds wall-clock now (monotonic).
double NowSeconds();

/// Prints a section banner.
void Banner(const std::string& title);

/// Formats bytes as "12.3 KB" / "4.56 MB".
std::string HumanBytes(double bytes);
/// Formats seconds as "850 ms" / "12.3 s" / "2.1 min".
std::string HumanSeconds(double seconds);

/// Writes a machine-readable benchmark artifact (already-composed JSON) to
/// `filename`, under the directory named by PH_BENCH_JSON_DIR (default:
/// current directory). Returns false (and warns on stderr) on I/O failure.
bool WriteBenchJson(const std::string& filename, const std::string& json);

/// An AQP method plus its measured construction cost.
struct BuiltMethod {
  std::string label;
  std::unique_ptr<AqpMethod> method;
  double build_seconds = 0;
};

/// Builds PairwiseHist on `table` with the given sample size (paper
/// defaults: M = 1% of Ns, α = 0.001), measuring construction time.
BuiltMethod BuildPairwiseHistMethod(const Table& table, size_t sample_size,
                                    const std::string& label_suffix = "");

/// Builds the SPN (DeepDB-lite) baseline.
BuiltMethod BuildSpnMethod(const Table& table, size_t sample_size,
                           const std::string& label_suffix = "");

/// Builds the DBEst-lite baseline, training one model per template the
/// workload needs.
BuiltMethod BuildDbestMethod(const Table& table,
                             const std::vector<Query>& workload,
                             size_t sample_size,
                             const std::string& label_suffix = "");

/// Builds the uniform-sampling baseline.
BuiltMethod BuildSamplingMethod(const Table& table, size_t sample_size,
                                const std::string& label_suffix = "");

/// Builds the AVI 1-d histogram baseline.
BuiltMethod BuildAviMethod(const Table& table, size_t sample_size,
                           const std::string& label_suffix = "");

/// An evaluation dataset: original or IDEBench-scaled, with a workload.
struct BenchDataset {
  std::string name;
  Table table;
  std::vector<Query> workload;
};

/// Original dataset + initial-experiment workload (Fig. 8 setting).
BenchDataset MakeInitialDataset(const std::string& name, size_t rows,
                                size_t queries, uint64_t seed);

/// IDEBench-scaled dataset + scaled workload (Table 5 setting).
BenchDataset MakeScaledDataset(const std::string& name, size_t scale_rows,
                               size_t queries, uint64_t seed);

}  // namespace bench
}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BENCH_BENCH_UTIL_H_
