// Reproduces Fig. 10(a)–(c): CDFs of relative query error over (a) the
// DBEst-supported query subset, (b) the SPN/DeepDB-supported subset and
// (c) all queries, across both scaled datasets.
//
// Paper headline: PairwiseHist's error CDF dominates at every percentile;
// 85.1% of all queries land under 10% error.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

void PrintCdf(const std::string& label, std::vector<double> errors) {
  if (errors.empty()) {
    std::printf("%-24s (no data)\n", label.c_str());
    return;
  }
  std::sort(errors.begin(), errors.end());
  std::printf("%-24s", label.c_str());
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95}) {
    std::printf("  p%-3.0f=%8.3f%%", p * 100, Percentile(errors, p));
  }
  double sub10 = 0;
  for (double e : errors) sub10 += (e < 10.0);
  std::printf("  sub-10%%: %5.1f%%  (n=%zu)\n",
              100.0 * sub10 / errors.size(), errors.size());
}

}  // namespace

int main() {
  Banner("Fig. 10(a-c): error CDFs over method-supported query subsets");
  const size_t scale_rows = EnvSize("PH_SCALE_ROWS", 200000);
  const size_t queries = EnvSize("PH_QUERIES", 150);
  const size_t ns_large = EnvSize("PH_NS", scale_rows / 10);
  const size_t ns_small = ns_large / 10;

  std::vector<double> ph_lg_all, ph_sm_all;
  std::vector<double> ph_spnsub, spn_lg_sub, spn_sm_sub;
  std::vector<double> ph_dbsub, dbest_sub;

  for (const char* name : {"power", "flights"}) {
    BenchDataset ds = MakeScaledDataset(name, scale_rows, queries, 31);
    if (ds.workload.empty()) continue;
    BuiltMethod ph_lg = BuildPairwiseHistMethod(ds.table, ns_large, " lg");
    BuiltMethod ph_sm = BuildPairwiseHistMethod(ds.table, ns_small, " sm");
    BuiltMethod spn_lg = BuildSpnMethod(ds.table, ns_large, " lg");
    BuiltMethod spn_sm = BuildSpnMethod(ds.table, ns_small, " sm");
    BuiltMethod dbest = BuildDbestMethod(ds.table, ds.workload, ns_small);

    std::vector<const AqpMethod*> methods = {
        ph_lg.method.get(), ph_sm.method.get(), spn_lg.method.get(),
        spn_sm.method.get(), dbest.method.get()};
    std::vector<QueryRecord> records;
    auto runs = RunWorkload(ds.table, ds.workload, methods, &records);
    if (!runs.ok()) continue;

    for (const QueryRecord& rec : records) {
      bool ph_ok = !std::isnan(rec.errors_pct[0]);
      bool spn_ok = !std::isnan(rec.errors_pct[2]);
      bool dbest_ok = !std::isnan(rec.errors_pct[4]);
      if (ph_ok) ph_lg_all.push_back(rec.errors_pct[0]);
      if (!std::isnan(rec.errors_pct[1])) {
        ph_sm_all.push_back(rec.errors_pct[1]);
      }
      if (spn_ok && ph_ok) {
        ph_spnsub.push_back(rec.errors_pct[0]);
        spn_lg_sub.push_back(rec.errors_pct[2]);
        if (!std::isnan(rec.errors_pct[3])) {
          spn_sm_sub.push_back(rec.errors_pct[3]);
        }
      }
      if (dbest_ok && ph_ok) {
        ph_dbsub.push_back(rec.errors_pct[0]);
        dbest_sub.push_back(rec.errors_pct[4]);
      }
    }
  }

  std::printf("\n(a) DBEst-supported subset (n=%zu)\n", dbest_sub.size());
  PrintCdf("  PairwiseHist", ph_dbsub);
  PrintCdf("  DBEst", dbest_sub);

  std::printf("\n(b) SPN/DeepDB-supported subset (n=%zu)\n",
              spn_lg_sub.size());
  PrintCdf("  PairwiseHist", ph_spnsub);
  PrintCdf("  SPN large-sample", spn_lg_sub);
  PrintCdf("  SPN small-sample", spn_sm_sub);

  std::printf("\n(c) All queries\n");
  PrintCdf("  PairwiseHist lg", ph_lg_all);
  PrintCdf("  PairwiseHist sm", ph_sm_all);
  std::printf(
      "\n(paper shape: PH CDF dominates; paper reports 85.1%% of queries "
      "under 10%% error)\n");
  return 0;
}
