// Robustness benchmark for the hardened serving layer. Three experiments,
// one artifact (BENCH_robustness.json):
//
//  1. Durability cost: closed-loop readers plus a continuous /append
//     writer, with the WAL fsync policy swept over in-memory (no WAL),
//     always, interval, and never. Reports read QPS/p99 and append
//     throughput/p99 per policy — the price of "every acked append
//     survives a crash" in one table.
//
//  2. Overload shedding: the same read workload at ~2x the measured
//     uncontended concurrency, with admission control off vs on. With
//     shedding on, excess requests get fast 503s instead of queueing, so
//     the p99 of ACCEPTED requests must stay within 3x of the
//     uncontended p99 (the acceptance bar; recorded as p99_within_3x).
//
//  3. Integrity cost: the price of the PWS3 v2 checksum layer — cold
//     mmap open + synchronous full verification (what recovery pays per
//     checkpoint candidate), and in-process read QPS with the continuous
//     background scrubber off vs on. Acceptance bar: the scrubber steals
//     at most 5% of read throughput (recorded as scrub_within_5pct).
//
// Environment knobs (see bench_util.h for the shared ones):
//   PH_SCALE_ROWS  dataset rows (default 100000)
//   PH_SERVE_SECS  measured seconds per scenario (default 2)
//   PH_CAPACITY    uncontended client count (default 4; overload runs 2x)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/db.h"
#include "bench/bench_util.h"
#include "core/integrity.h"
#include "datagen/datasets.h"
#include "serve/http_client.h"
#include "serve/http_server.h"
#include "serve/json.h"
#include "serve/service.h"
#include "serve/serving_db.h"
#include "storage/csv.h"
#include "storage/wal.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

// The coverage-heavy five-predicate scalar query (same shape bench_serve
// leans on) — enough work per request that concurrency actually contends.
const std::string& HeavySql() {
  static const std::string kSql =
      "SELECT AVG(global_active_power) FROM power WHERE hour >= 6 AND "
      "voltage > 236 AND global_intensity > 0.4 AND sub_metering_3 < 20 "
      "AND day_of_week < 6;";
  return kSql;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = std::min(
      sorted.size() - 1, static_cast<size_t>(q * (sorted.size() - 1) + 0.5));
  return sorted[idx];
}

Db BuildDb(size_t rows) {
  DbOptions options;
  options.synopsis.sample_size = rows / 2;
  options.synopsis.min_points_override = 64;
  // Synopsis-only serving: copy-on-append snapshots stay cheap, and the
  // WAL (not the raw table) carries the durable batch bytes.
  options.keep_table = false;
  auto db = Db::FromGenerator("power", rows, 71, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

void RemoveDurableDir(const std::string& dir) {
  ::unlink((dir + "/wal.log").c_str());
  for (uint64_t e = 0; e < 4096; ++e) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%020llu",
                  static_cast<unsigned long long>(e));
    for (const char* suffix : {".pws2", ".pws2.tmp", ".pws3", ".pws3.tmp"}) {
      ::unlink((dir + "/checkpoint-" + buf + suffix).c_str());
    }
  }
  ::rmdir(dir.c_str());
}

struct DurabilityResult {
  std::string name;
  uint64_t reads = 0;
  uint64_t appends = 0;
  uint64_t errors = 0;
  double seconds = 0;
  double read_qps = 0;
  double read_p50_us = 0;
  double read_p99_us = 0;
  double append_p50_us = 0;
  double append_p99_us = 0;
  double appends_per_sec = 0;
  uint64_t wal_fsyncs = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;
};

/// One durability scenario: `readers` query clients + one append client,
/// all closed-loop for `secs` seconds.
DurabilityResult RunDurability(const std::string& name, size_t rows,
                               size_t readers, double secs, bool durable,
                               WalOptions::Fsync fsync) {
  std::unique_ptr<ServingDb> serving;
  const std::string dir = "/tmp/ph_bench_robustness_" + name;
  if (durable) {
    RemoveDurableDir(dir);
    ServingOptions options;
    options.durability.dir = dir;
    options.durability.fsync = fsync;
    options.durability.fsync_interval_ms = 20;
    options.durability.checkpoint_interval_ms = 500;
    options.durability.checkpoint_min_appends = 8;
    auto created = ServingDb::CreateDurable(BuildDb(rows), options);
    if (!created.ok()) {
      std::fprintf(stderr, "CreateDurable failed: %s\n",
                   created.status().ToString().c_str());
      std::exit(1);
    }
    serving = std::move(created).value();
  } else {
    serving = std::make_unique<ServingDb>(BuildDb(rows));
  }
  HttpServer server(MakeServingHandler(serving.get()),
                    MakeServingBatchHandler(serving.get()));
  if (!server.Start(0).ok()) std::exit(1);

  std::string query_body = "{\"sql\":";
  AppendJsonString(&query_body, HeavySql());
  query_body += "}";
  auto batch = MakeDataset("power", 2000, 1234);
  if (!batch.ok()) std::exit(1);
  const std::string csv = ToCsvString(batch.value());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> errors{0};
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> read_lat(readers);
  std::vector<double> append_lat;
  std::vector<std::thread> threads;

  for (size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      read_lat[t].reserve(1 << 14);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const double t0 = NowSeconds();
        auto resp = client.Request("POST", "/query", query_body);
        const double dt = NowSeconds() - t0;
        if (!resp.ok() || resp->status != 200) {
          errors.fetch_add(1);
        } else {
          read_lat[t].push_back(dt * 1e6);
        }
      }
    });
  }
  std::thread writer([&] {
    HttpClient client;
    if (!client.Connect("127.0.0.1", server.port()).ok()) {
      errors.fetch_add(1);
      return;
    }
    append_lat.reserve(1 << 12);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    while (!stop.load(std::memory_order_acquire)) {
      const double t0 = NowSeconds();
      auto resp = client.Request("POST", "/append", csv, "text/csv");
      const double dt = NowSeconds() - t0;
      if (!resp.ok() || resp->status != 200) {
        errors.fetch_add(1);
        return;
      }
      append_lat.push_back(dt * 1e6);
    }
  });

  while (ready.load() < readers) std::this_thread::yield();
  const double t0 = NowSeconds();
  go.store(true, std::memory_order_release);
  while (NowSeconds() - t0 < secs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  writer.join();
  const double elapsed = NowSeconds() - t0;

  const ServingStats stats = serving->Stats();
  server.Stop();
  serving.reset();  // final WAL sync / checkpointer shutdown
  if (durable) RemoveDurableDir(dir);

  std::vector<double> reads_all;
  for (const auto& v : read_lat) {
    reads_all.insert(reads_all.end(), v.begin(), v.end());
  }
  std::sort(reads_all.begin(), reads_all.end());
  std::sort(append_lat.begin(), append_lat.end());

  DurabilityResult r;
  r.name = name;
  r.reads = reads_all.size();
  r.appends = append_lat.size();
  r.errors = errors.load();
  r.seconds = elapsed;
  r.read_qps = elapsed > 0 ? static_cast<double>(r.reads) / elapsed : 0;
  r.read_p50_us = Percentile(reads_all, 0.50);
  r.read_p99_us = Percentile(reads_all, 0.99);
  r.append_p50_us = Percentile(append_lat, 0.50);
  r.append_p99_us = Percentile(append_lat, 0.99);
  r.appends_per_sec =
      elapsed > 0 ? static_cast<double>(r.appends) / elapsed : 0;
  r.wal_fsyncs = stats.wal_fsyncs;
  r.wal_bytes = stats.wal_bytes;
  r.checkpoints = stats.checkpoints;
  return r;
}

struct OverloadResult {
  std::string name;
  size_t clients = 0;
  uint64_t accepted = 0;
  uint64_t shed = 0;
  uint64_t errors = 0;
  double seconds = 0;
  double accepted_qps = 0;
  double p50_us = 0;   ///< accepted (200) requests only
  double p99_us = 0;
};

/// One overload scenario: `clients` closed-loop query clients; when
/// `max_inflight` > 0 a ServiceGate sheds the excess with 503s (clients
/// back off ~Retry-After on a shed).
OverloadResult RunOverload(const std::string& name, size_t rows,
                           size_t clients, double secs,
                           uint32_t max_inflight) {
  ServingDb serving(BuildDb(rows));
  std::unique_ptr<ServiceGate> gate;
  if (max_inflight > 0) {
    ServiceLimits limits;
    limits.max_inflight = max_inflight;
    limits.retry_after_ms = 5;
    gate = std::make_unique<ServiceGate>(limits);
  }
  HttpServer server(MakeServingHandler(&serving, gate.get()));
  if (!server.Start(0).ok()) std::exit(1);

  std::string query_body = "{\"sql\":";
  AppendJsonString(&query_body, HeavySql());
  query_body += "}";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<size_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::vector<double>> lat(clients);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        errors.fetch_add(1);
        ready.fetch_add(1);
        return;
      }
      lat[t].reserve(1 << 14);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      while (!stop.load(std::memory_order_acquire)) {
        const double t0 = NowSeconds();
        auto resp = client.Request("POST", "/query", query_body);
        const double dt = NowSeconds() - t0;
        if (!resp.ok()) {
          errors.fetch_add(1);
        } else if (resp->status == 503) {
          shed.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        } else if (resp->status == 200) {
          lat[t].push_back(dt * 1e6);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }

  while (ready.load() < clients) std::this_thread::yield();
  const double t0 = NowSeconds();
  go.store(true, std::memory_order_release);
  while (NowSeconds() - t0 < secs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed = NowSeconds() - t0;
  server.Stop();

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());

  OverloadResult r;
  r.name = name;
  r.clients = clients;
  r.accepted = all.size();
  r.shed = shed.load();
  r.errors = errors.load();
  r.seconds = elapsed;
  r.accepted_qps = elapsed > 0 ? static_cast<double>(r.accepted) / elapsed : 0;
  r.p50_us = Percentile(all, 0.50);
  r.p99_us = Percentile(all, 0.99);
  return r;
}

struct IntegrityResult {
  double cold_open_ms = 0;    ///< mmap open, page cache dropped, no verify
  double verify_ms = 0;       ///< synchronous full checksum sweep
  uint64_t verified_blocks = 0;
  double qps_scrub_off = 0;   ///< in-process readers, no scrubber
  double qps_scrub_on = 0;    ///< same readers, continuous scrub passes
  uint64_t scrub_passes_hint = 0;  ///< blocks verified during the on-run
};

/// In-process read throughput over a mmap-opened Db: `readers` threads
/// hammer the heavy query for `secs` seconds. No HTTP — this isolates
/// exactly what the scrubber's page walks steal from query execution.
double MeasureReadQps(const Db& db, size_t readers, double secs) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> done{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < readers; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto r = db.ExecuteSql(HeavySql());
        if (r.ok()) done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  const double t0 = NowSeconds();
  while (NowSeconds() - t0 < secs) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed = NowSeconds() - t0;
  return elapsed > 0 ? static_cast<double>(done.load()) / elapsed : 0;
}

IntegrityResult RunIntegrity(size_t rows, size_t readers, double secs) {
  const std::string path = "/tmp/ph_bench_robustness_integrity.pws3";
  {
    Db db = BuildDb(rows);
    if (!db.Save(path, SaveFormat::kPws3).ok()) std::exit(1);
  }
  IntegrityResult r;

  // Cold open + verify: what Recover pays per checkpoint candidate.
  DropFileCache(path);
  DbOptions opts;
  opts.open_mode = OpenMode::kMmap;
  opts.scrub = false;
  {
    double t0 = NowSeconds();
    auto cold = Db::Open(path, opts);
    r.cold_open_ms = (NowSeconds() - t0) * 1e3;
    if (!cold.ok()) std::exit(1);
    t0 = NowSeconds();
    if (!cold->VerifyIntegrity().ok()) std::exit(1);
    r.verify_ms = (NowSeconds() - t0) * 1e3;
    r.verified_blocks = cold->synopses().integrity() != nullptr
                            ? cold->synopses().integrity()->blocks_verified()
                            : 0;
    r.qps_scrub_off = MeasureReadQps(cold.value(), readers, secs);
  }

  // Same workload with the continuous scrubber sweeping underneath.
  DbOptions scrub_opts = opts;
  scrub_opts.scrub = true;
  scrub_opts.scrub_repeat_ms = 10;
  auto scrubbed = Db::Open(path, scrub_opts);
  if (!scrubbed.ok()) std::exit(1);
  r.qps_scrub_on = MeasureReadQps(scrubbed.value(), readers, secs);
  r.scrub_passes_hint =
      scrubbed->synopses().integrity() != nullptr
          ? scrubbed->synopses().integrity()->blocks_verified()
          : 0;
  ::unlink(path.c_str());
  return r;
}

}  // namespace

int main() {
  Banner("Serving robustness: durability cost + overload shedding");
  const size_t rows = EnvSize("PH_SCALE_ROWS", 100000);
  const double secs = static_cast<double>(EnvSize("PH_SERVE_SECS", 2));
  const size_t capacity = EnvSize("PH_CAPACITY", 4);

  // Experiment 1: durability cost.
  std::vector<DurabilityResult> durability;
  durability.push_back(RunDurability("no_wal", rows, capacity, secs,
                                     /*durable=*/false,
                                     WalOptions::Fsync::kNever));
  durability.push_back(RunDurability("wal_always", rows, capacity, secs, true,
                                     WalOptions::Fsync::kAlways));
  durability.push_back(RunDurability("wal_interval", rows, capacity, secs,
                                     true, WalOptions::Fsync::kInterval));
  durability.push_back(RunDurability("wal_never", rows, capacity, secs, true,
                                     WalOptions::Fsync::kNever));

  std::printf("%-14s %10s %10s %10s %11s %11s %8s %6s\n", "durability",
              "read qps", "rd p99us", "appends/s", "ap p50us", "ap p99us",
              "fsyncs", "ckpts");
  uint64_t total_errors = 0;
  std::string durability_json;
  for (const DurabilityResult& r : durability) {
    total_errors += r.errors;
    std::printf("%-14s %10.0f %10.0f %10.1f %11.0f %11.0f %8llu %6llu\n",
                r.name.c_str(), r.read_qps, r.read_p99_us, r.appends_per_sec,
                r.append_p50_us, r.append_p99_us,
                (unsigned long long)r.wal_fsyncs,
                (unsigned long long)r.checkpoints);
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "%s    {\"name\": \"%s\", \"reads\": %llu, \"read_qps\": %.1f, "
        "\"read_p50_us\": %.1f, \"read_p99_us\": %.1f, \"appends\": %llu, "
        "\"appends_per_sec\": %.2f, \"append_p50_us\": %.1f, "
        "\"append_p99_us\": %.1f, \"wal_fsyncs\": %llu, \"wal_bytes\": %llu, "
        "\"checkpoints\": %llu, \"errors\": %llu}",
        durability_json.empty() ? "" : ",\n", r.name.c_str(),
        (unsigned long long)r.reads, r.read_qps, r.read_p50_us, r.read_p99_us,
        (unsigned long long)r.appends, r.appends_per_sec, r.append_p50_us,
        r.append_p99_us, (unsigned long long)r.wal_fsyncs,
        (unsigned long long)r.wal_bytes, (unsigned long long)r.checkpoints,
        (unsigned long long)r.errors);
    durability_json += row;
  }

  // Experiment 2: overload shedding at 2x capacity.
  std::vector<OverloadResult> overload;
  overload.push_back(
      RunOverload("uncontended", rows, capacity, secs, /*max_inflight=*/0));
  overload.push_back(RunOverload("overload_no_shed", rows, capacity * 2, secs,
                                 /*max_inflight=*/0));
  overload.push_back(
      RunOverload("overload_shed", rows, capacity * 2, secs,
                  /*max_inflight=*/static_cast<uint32_t>(capacity)));

  std::printf("\n%-18s %8s %10s %10s %10s %10s\n", "overload", "clients",
              "acc qps", "p50 us", "p99 us", "shed");
  std::string overload_json;
  for (const OverloadResult& r : overload) {
    total_errors += r.errors;
    std::printf("%-18s %8zu %10.0f %10.0f %10.0f %10llu\n", r.name.c_str(),
                r.clients, r.accepted_qps, r.p50_us, r.p99_us,
                (unsigned long long)r.shed);
    char row[448];
    std::snprintf(
        row, sizeof(row),
        "%s    {\"name\": \"%s\", \"clients\": %zu, \"accepted\": %llu, "
        "\"accepted_qps\": %.1f, \"p50_us\": %.1f, \"p99_us\": %.1f, "
        "\"shed\": %llu, \"errors\": %llu}",
        overload_json.empty() ? "" : ",\n", r.name.c_str(), r.clients,
        (unsigned long long)r.accepted, r.accepted_qps, r.p50_us, r.p99_us,
        (unsigned long long)r.shed, (unsigned long long)r.errors);
    overload_json += row;
  }

  // Experiment 3: integrity cost (checksummed open + background scrub).
  const IntegrityResult integrity = RunIntegrity(rows, capacity, secs);
  const double scrub_ratio = integrity.qps_scrub_off > 0
                                 ? integrity.qps_scrub_on /
                                       integrity.qps_scrub_off
                                 : 0;
  const bool scrub_within_5pct = scrub_ratio >= 0.95;
  std::printf(
      "\n%-18s %12s %12s %12s %12s\n", "integrity", "open ms", "verify ms",
      "qps off", "qps on");
  std::printf("%-18s %12.2f %12.2f %12.0f %12.0f\n", "mmap_v2",
              integrity.cold_open_ms, integrity.verify_ms,
              integrity.qps_scrub_off, integrity.qps_scrub_on);

  const double p99_ratio =
      overload[0].p99_us > 0 ? overload[2].p99_us / overload[0].p99_us : 0;
  const bool p99_within_3x = p99_ratio > 0 && p99_ratio <= 3.0;
  const double wal_cost =
      durability[1].read_qps > 0 && durability[0].read_qps > 0
          ? durability[0].read_qps / durability[1].read_qps
          : 0;
  std::printf(
      "\nshed p99 vs uncontended: %.2fx (bar: <= 3x, %s); "
      "read QPS no_wal/wal_always: %.2fx; "
      "scrub-on/scrub-off QPS: %.3fx (bar: >= 0.95, %s)%s\n",
      p99_ratio, p99_within_3x ? "PASS" : "FAIL", wal_cost, scrub_ratio,
      scrub_within_5pct ? "PASS" : "FAIL",
      total_errors == 0 ? "" : "  [HTTP ERRORS!]");

  char integrity_json[448];
  std::snprintf(
      integrity_json, sizeof(integrity_json),
      "    {\"cold_open_ms\": %.3f, \"verify_ms\": %.3f, "
      "\"verified_blocks\": %llu, \"qps_scrub_off\": %.1f, "
      "\"qps_scrub_on\": %.1f, \"scrub_qps_ratio\": %.4f, "
      "\"scrub_within_5pct\": %s}",
      integrity.cold_open_ms, integrity.verify_ms,
      (unsigned long long)integrity.verified_blocks, integrity.qps_scrub_off,
      integrity.qps_scrub_on, scrub_ratio,
      scrub_within_5pct ? "true" : "false");

  char head[320];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"robustness\",\n  \"scale_rows\": %zu,\n"
                "  \"capacity_clients\": %zu,\n"
                "  \"shed_p99_over_uncontended\": %.3f,\n"
                "  \"p99_within_3x\": %s,\n  \"errors\": %llu,\n"
                "  \"durability\": [\n",
                rows, capacity, p99_ratio, p99_within_3x ? "true" : "false",
                (unsigned long long)total_errors);
  WriteBenchJson("BENCH_robustness.json",
                 std::string(head) + durability_json +
                     "\n  ],\n  \"overload\": [\n" + overload_json +
                     "\n  ],\n  \"integrity\": [\n" +
                     std::string(integrity_json) + "\n  ]\n}");
  return total_errors == 0 && p99_within_3x && scrub_within_5pct ? 0 : 1;
}
