// Reproduces Fig. 8: median query error (a) and synopsis size (b) across
// the 11 real-world datasets for PairwiseHist, the SPN baseline
// (DeepDB-lite) and DBEst-lite, each at two sample sizes.
//
// Paper workload: 100 random single-predicate COUNT/SUM/AVG queries per
// dataset with minimum selectivity 1e-5. Paper headline: PairwiseHist has
// the lowest error on 10/11 datasets (overall medians 0.28% vs 0.73% vs
// 28.9%) and synopses 1–2 orders of magnitude smaller.
#include <cstdio>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Fig. 8: median error (%) and synopsis size across 11 datasets");
  const size_t rows = EnvSize("PH_ROWS", 0);
  const size_t queries = EnvSize("PH_QUERIES", 60);
  // Sample sizes scaled to the laptop-scale data (paper: 100k / 10k on
  // 0.4M–14M rows; we keep the same 10:1 ratio against smaller tables).
  const size_t ns_large = EnvSize("PH_NS_LARGE", 10000);
  const size_t ns_small = EnvSize("PH_NS_SMALL", 1000);

  std::printf("%-10s | %14s %14s %14s | %12s %12s %12s\n", "Dataset",
              "PH err%", "SPN err%", "DBEst err%", "PH size", "SPN size",
              "DBEst size");
  std::printf("%-10s | %14s %14s %14s | %12s %12s %12s\n", "", "(lg/sm)",
              "(lg/sm)", "(lg)", "(lg)", "(lg)", "(lg)");

  std::vector<double> ph_all, spn_all, dbest_all;
  for (const DatasetSpec& spec : AllDatasets()) {
    BenchDataset ds = MakeInitialDataset(spec.name, rows, queries, 7);
    if (ds.workload.empty()) {
      std::printf("%-10s | workload generation failed\n", spec.name.c_str());
      continue;
    }
    BuiltMethod ph_lg = BuildPairwiseHistMethod(ds.table, ns_large);
    BuiltMethod ph_sm = BuildPairwiseHistMethod(ds.table, ns_small);
    BuiltMethod spn_lg = BuildSpnMethod(ds.table, ns_large);
    BuiltMethod spn_sm = BuildSpnMethod(ds.table, ns_small);
    // DBEst trains on the small sample, as the paper did for DBEst++
    // ("a smaller sample size was used ... due to its prohibitively long
    // training time", Section 6.3).
    BuiltMethod dbest_lg =
        BuildDbestMethod(ds.table, ds.workload, ns_small);

    std::vector<const AqpMethod*> methods = {
        ph_lg.method.get(), ph_sm.method.get(), spn_lg.method.get(),
        spn_sm.method.get(), dbest_lg.method.get()};
    auto runs = RunWorkload(ds.table, ds.workload, methods);
    if (!runs.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   runs.status().ToString().c_str());
      continue;
    }
    const auto& r = runs.value();
    std::printf("%-10s | %6.2f /%6.2f %6.2f /%6.2f %14.2f | %12s %12s %12s\n",
                spec.name.c_str(), r[0].MedianErrorPct(),
                r[1].MedianErrorPct(), r[2].MedianErrorPct(),
                r[3].MedianErrorPct(), r[4].MedianErrorPct(),
                HumanBytes(ph_lg.method->StorageBytes()).c_str(),
                HumanBytes(spn_lg.method->StorageBytes()).c_str(),
                HumanBytes(dbest_lg.method->StorageBytes()).c_str());
    for (double e : r[0].errors_pct) ph_all.push_back(e);
    for (double e : r[2].errors_pct) spn_all.push_back(e);
    for (double e : r[4].errors_pct) dbest_all.push_back(e);
  }

  std::printf("\nOverall median error (large samples): PairwiseHist %.2f%%"
              "  SPN %.2f%%  DBEst %.2f%%\n",
              Median(ph_all), Median(spn_all), Median(dbest_all));
  std::printf("(paper: 0.28%% vs DeepDB 0.73%% vs DBEst++ 28.9%%; shape "
              "check = PairwiseHist lowest, DBEst worst)\n");
  return 0;
}
