// Segment-lifecycle benchmark: the append decay curve with and without
// tiered compaction.
//
// Starting from 1-, 4- and 16-segment builds, streams PH_APPENDS sealed
// append batches (~1k rows each) and samples the serving cost at regular
// checkpoints: segment count, prepared-execute p50/p99 latency and the
// median relative CI width over a fixed workload. With compaction off the
// curve decays (fan-out latency grows, small segments widen CIs); with
// compaction on it must flatten. The final compaction-on state is gated
// against a synopsis built fresh over the same rows with the SAME
// DbOptions (including target_segment_rows): p50 latency and median CI
// width each within 1.3x. Emits BENCH_compaction.json for CI's perf
// trajectory.
//
// No google-benchmark dependency: self-calibrating timing loops, so this
// runs on bare machines and in every CI configuration.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

/// Lighter than bench_segments' timer (many checkpoints x queries): ~2 ms
/// per measurement is enough resolution for multi-microsecond latencies.
template <typename F>
double TimePerCallUs(F&& body) {
  int reps = 1;
  for (;;) {
    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) body();
    double dt = NowSeconds() - t0;
    if (dt > 0.002 || reps >= (1 << 22)) {
      return dt * 1e6 / reps;
    }
    reps *= 4;
  }
}

struct Sample {
  size_t appends = 0;
  uint64_t rows = 0;
  size_t segments = 0;
  double p50_us = 0;
  double p99_us = 0;
  double median_ci_width = 0;
};

/// Latency + CI width of `db` over the workload.
Sample Measure(const Db& db, const std::vector<Query>& workload) {
  Sample s;
  s.rows = db.total_rows();
  s.segments = db.num_segments();
  std::vector<double> latencies, widths;
  for (const Query& q : workload) {
    auto pq = db.Prepare(q);
    if (!pq.ok()) continue;
    auto first = pq->Execute();
    if (!first.ok() || first->Scalar().empty_selection) continue;
    QueryResult reused;
    latencies.push_back(
        TimePerCallUs([&]() { (void)pq->ExecuteInto(&reused); }));
    const AggResult& agg = first->Scalar();
    widths.push_back((agg.upper - agg.lower) /
                     std::max(1e-12, std::fabs(agg.estimate)));
  }
  s.p50_us = Percentile(latencies, 0.5);
  s.p99_us = Percentile(latencies, 0.99);
  s.median_ci_width = Median(widths);
  return s;
}

}  // namespace

int main() {
  Banner("Segment lifecycle: append decay with tiered compaction on/off");
  const size_t base_rows = EnvSize("PH_ROWS", 8000);
  const size_t batch_rows = 1000;
  const size_t appends = EnvSize("PH_APPENDS", 100);
  const size_t nqueries = EnvSize("PH_QUERIES", 24);
  const size_t checkpoint_every = std::max<size_t>(1, appends / 5);

  auto base_table = MakeDataset("power", base_rows, 71);
  if (!base_table.ok()) {
    std::fprintf(stderr, "dataset failed: %s\n",
                 base_table.status().ToString().c_str());
    return 1;
  }
  WorkloadConfig wcfg = InitialWorkloadConfig(17);
  wcfg.num_queries = nqueries;
  wcfg.min_predicates = 1;
  wcfg.max_predicates = 2;
  wcfg.functions = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg};
  auto workload = GenerateWorkload(base_table.value(), wcfg);
  if (!workload.ok() || workload->empty()) {
    std::fprintf(stderr, "workload generation failed\n");
    return 1;
  }

  std::printf("%5s %6s %8s %8s %10s %10s %10s\n", "init", "cmpct", "appends",
              "segs", "p50 us", "p99 us", "ci width");
  std::string configs_json;
  bool all_within_gate = true;
  const size_t kInitialSegments[] = {1, 4, 16};
  for (size_t nseg : kInitialSegments) {
    for (int compaction = 0; compaction <= 1; ++compaction) {
      DbOptions options;
      // base_rows / nseg initial segments; nseg == 1 keeps ONE sealed
      // base segment (target = base_rows) rather than a monolithic
      // target-0 build, so the fresh-build gate compares like for like.
      options.target_segment_rows = (base_rows + nseg - 1) / nseg;
      options.compact.enabled = compaction != 0;
      auto db = Db::FromTable(base_table->Slice(0, base_rows), options);
      if (!db.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     db.status().ToString().c_str());
        return 1;
      }

      // The fresh-build comparison target accumulates identical rows.
      Table all_rows = base_table->Slice(0, base_rows);
      std::string series_json;
      Sample last;
      for (size_t i = 0; i < appends; ++i) {
        auto batch =
            MakeDataset("power", batch_rows, 9000 + static_cast<int>(i));
        if (!batch.ok() || !db->Append(batch.value()).ok() ||
            !AppendTableRows(&all_rows, batch.value()).ok()) {
          std::fprintf(stderr, "append %zu failed\n", i);
          return 1;
        }
        if ((i + 1) % checkpoint_every == 0 || i + 1 == appends) {
          last = Measure(db.value(), workload.value());
          last.appends = i + 1;
          std::printf("%5zu %6s %8zu %8zu %10.2f %10.2f %10.4f\n", nseg,
                      compaction ? "on" : "off", last.appends, last.segments,
                      last.p50_us, last.p99_us, last.median_ci_width);
          char row[256];
          std::snprintf(
              row, sizeof(row),
              "%s        {\"appends\": %zu, \"rows\": %llu, "
              "\"segments\": %zu, \"p50_latency_us\": %.3f, "
              "\"p99_latency_us\": %.3f, \"median_ci_width\": %.5f}",
              series_json.empty() ? "" : ",\n", last.appends,
              static_cast<unsigned long long>(last.rows), last.segments,
              last.p50_us, last.p99_us, last.median_ci_width);
          series_json += row;
        }
      }

      // Gate: the decayed-then-compacted state vs a one-shot build of the
      // same rows with the same options.
      auto fresh = Db::FromTable(std::move(all_rows), options);
      if (!fresh.ok()) {
        std::fprintf(stderr, "fresh build failed: %s\n",
                     fresh.status().ToString().c_str());
        return 1;
      }
      const Sample fb = Measure(fresh.value(), workload.value());
      const double p50_ratio = last.p50_us / std::max(1e-9, fb.p50_us);
      const double width_ratio =
          last.median_ci_width / std::max(1e-9, fb.median_ci_width);
      const bool within = p50_ratio <= 1.3 && width_ratio <= 1.3;
      if (compaction && !within) all_within_gate = false;
      std::printf(
          "%5zu %6s    fresh %8zu %10.2f %10.2f %10.4f   "
          "p50 ratio %.2fx, ci ratio %.2fx%s\n",
          nseg, compaction ? "on" : "off", fb.segments, fb.p50_us, fb.p99_us,
          fb.median_ci_width, p50_ratio, width_ratio,
          compaction ? (within ? "  [within 1.3x]" : "  [GATE MISS]") : "");

      char tail[512];
      std::snprintf(
          tail, sizeof(tail),
          "%s    {\"initial_segments\": %zu, \"compaction\": %s,\n"
          "      \"series\": [\n%s\n      ],\n"
          "      \"fresh\": {\"segments\": %zu, \"p50_latency_us\": %.3f, "
          "\"p99_latency_us\": %.3f, \"median_ci_width\": %.5f},\n"
          "      \"p50_ratio_vs_fresh\": %.4f, "
          "\"ci_width_ratio_vs_fresh\": %.4f, \"within_1_3x\": %s}",
          configs_json.empty() ? "" : ",\n", nseg,
          compaction ? "true" : "false", series_json.c_str(), fb.segments,
          fb.p50_us, fb.p99_us, fb.median_ci_width, p50_ratio, width_ratio,
          within ? "true" : "false");
      configs_json += tail;
    }
  }

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"compaction\",\n  \"base_rows\": %zu,\n"
                "  \"batch_rows\": %zu,\n  \"appends\": %zu,\n"
                "  \"compaction_on_within_1_3x\": %s,\n  \"configs\": [\n",
                base_rows, batch_rows, appends,
                all_within_gate ? "true" : "false");
  WriteBenchJson("BENCH_compaction.json",
                 std::string(head) + configs_json + "\n  ]\n}");
  if (!all_within_gate) {
    std::fprintf(stderr,
                 "warning: a compaction-on config exceeded the 1.3x gate "
                 "(see BENCH_compaction.json)\n");
  }
  return 0;
}
