// Reproduces Fig. 10(d): query accuracy on the original ("real") data vs
// IDEBench-generated synthetic data of the same size, for PairwiseHist and
// the SPN baseline.
//
// Paper headline: DeepDB looks far better on IDEBench-smoothed data than on
// real data (up to 31x), while PairwiseHist is consistent on both — the
// Gaussian-model smoothing hides exactly the structure learned models rely
// on being simple.
#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/idebench_scaler.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

double MedianErrorOn(const Table& table, const std::vector<Query>& workload,
                     const AqpMethod& method) {
  std::vector<const AqpMethod*> methods = {&method};
  auto runs = RunWorkload(table, workload, methods);
  if (!runs.ok()) return -1;
  return runs.value()[0].MedianErrorPct();
}

}  // namespace

int main() {
  Banner("Fig. 10(d): real vs IDEBench-generated data");
  const size_t rows = EnvSize("PH_ROWS", 0);
  const size_t queries = EnvSize("PH_QUERIES", 80);

  std::printf("%-10s | %16s %16s | %16s %16s\n", "Dataset", "PH real",
              "PH IDEBench", "SPN real", "SPN IDEBench");
  for (const char* name : {"power", "flights"}) {
    auto real = MakeDataset(name, rows, 41);
    if (!real.ok()) continue;
    auto scaler = IdebenchScaler::Fit(*real);
    if (!scaler.ok()) continue;
    Table synthetic = scaler->Generate(real->NumRows(), 43);
    synthetic.set_name(real->name());

    // Identical query templates on both tables (generated on the real one).
    WorkloadConfig cfg = InitialWorkloadConfig(44);
    cfg.num_queries = queries;
    auto workload = GenerateWorkload(*real, cfg);
    if (!workload.ok()) continue;

    size_t ns = real->NumRows() / 2;
    BuiltMethod ph_real = BuildPairwiseHistMethod(*real, ns);
    BuiltMethod ph_syn = BuildPairwiseHistMethod(synthetic, ns);
    BuiltMethod spn_real = BuildSpnMethod(*real, ns);
    BuiltMethod spn_syn = BuildSpnMethod(synthetic, ns);

    double ph_r = MedianErrorOn(*real, *workload, *ph_real.method);
    double ph_s = MedianErrorOn(synthetic, *workload, *ph_syn.method);
    double spn_r = MedianErrorOn(*real, *workload, *spn_real.method);
    double spn_s = MedianErrorOn(synthetic, *workload, *spn_syn.method);
    std::printf("%-10s | %15.2f%% %15.2f%% | %15.2f%% %15.2f%%\n", name,
                ph_r, ph_s, spn_r, spn_s);
  }
  std::printf(
      "\n(paper shape: SPN error drops sharply on IDEBench data; PH stays "
      "consistent)\n");
  return 0;
}
