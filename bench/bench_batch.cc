// Batched multi-query execution benchmark: a dashboard-style batch of
// grid-sharing prepared queries executed via PreparedBatch vs looping the
// same prepared queries one at a time. Also times a batch of
// distinct-predicate queries (grid shared, coverage not) to show what the
// dedup alone is worth. Verifies batch results are identical to the loop
// on every workload and emits BENCH_batch.json for CI's perf trajectory.
//
// No google-benchmark dependency: self-calibrating timing loops.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "api/db.h"
#include "bench/bench_util.h"
#include "query/batch_exec.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

template <typename F>
double TimePerCallUs(F&& body) {
  int reps = 1;
  for (;;) {
    double t0 = NowSeconds();
    for (int i = 0; i < reps; ++i) body();
    double dt = NowSeconds() - t0;
    if (dt > 0.1 || reps >= (1 << 24)) {
      return dt * 1e6 / reps;
    }
    reps *= 4;
  }
}

bool SameResult(const QueryResult& a, const QueryResult& b) {
  if (a.groups.size() != b.groups.size()) return false;
  auto same = [](double x, double y) {
    return (std::isnan(x) && std::isnan(y)) || x == y;
  };
  for (size_t g = 0; g < a.groups.size(); ++g) {
    if (a.groups[g].label != b.groups[g].label) return false;
    const AggResult& x = a.groups[g].agg;
    const AggResult& y = b.groups[g].agg;
    if (x.empty_selection != y.empty_selection) return false;
    if (!same(x.estimate, y.estimate) || !same(x.lower, y.lower) ||
        !same(x.upper, y.upper)) {
      return false;
    }
  }
  return true;
}

struct Workload {
  const char* name;
  std::vector<std::string> sqls;
};

struct Measured {
  double loop_us = 0;   // whole batch, per-query loop
  double batch_us = 0;  // whole batch, PreparedBatch
  double speedup = 0;
  size_t batch_size = 0;
  size_t distinct = 0;
  size_t mismatches = 0;
};

Measured MeasureWorkload(const Db& db, const Workload& wl) {
  Measured m;
  m.batch_size = wl.sqls.size();

  std::vector<PreparedQuery> prepared;
  for (const std::string& sql : wl.sqls) {
    auto pq = db.Prepare(sql);
    if (!pq.ok()) {
      std::fprintf(stderr, "prepare failed: %s: %s\n", sql.c_str(),
                   pq.status().ToString().c_str());
      ++m.mismatches;
      return m;
    }
    prepared.push_back(std::move(pq).value());
  }
  auto batch = db.PrepareBatch(wl.sqls);
  if (!batch.ok()) {
    std::fprintf(stderr, "PrepareBatch failed: %s\n",
                 batch.status().ToString().c_str());
    ++m.mismatches;
    return m;
  }
  m.distinct = batch->NumDistinctPlans();

  // Correctness first: batch output must match the loop exactly.
  std::vector<QueryResult> loop_results(prepared.size());
  for (size_t i = 0; i < prepared.size(); ++i) {
    Status st = prepared[i].ExecuteInto(&loop_results[i]);
    if (!st.ok()) ++m.mismatches;
  }
  std::vector<QueryResult> batch_results;
  Status st = batch->ExecuteInto(&batch_results);
  if (!st.ok() || batch_results.size() != loop_results.size()) {
    ++m.mismatches;
    return m;
  }
  for (size_t i = 0; i < loop_results.size(); ++i) {
    if (!SameResult(loop_results[i], batch_results[i])) ++m.mismatches;
  }

  m.loop_us = TimePerCallUs([&]() {
    for (size_t i = 0; i < prepared.size(); ++i) {
      Status s = prepared[i].ExecuteInto(&loop_results[i]);
      (void)s;
    }
  });
  m.batch_us = TimePerCallUs([&]() {
    Status s = batch->ExecuteInto(&batch_results);
    (void)s;
  });
  m.speedup = m.batch_us > 0 ? m.loop_us / m.batch_us : 0.0;
  return m;
}

}  // namespace

int main() {
  Banner("Batched execution: PreparedBatch vs per-query loop");
  const size_t rows = EnvSize("PH_SCALE_ROWS", 200000);
  DbOptions options;
  options.synopsis.sample_size = rows / 10;
  auto db = Db::FromGenerator("power", rows, 71, options);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    return 1;
  }

  // The acceptance workload: >= 8 prepared queries sharing one
  // aggregation grid (every aggregate of a dashboard tile over the same
  // filter, plus repeated tiles). Coverage + weighting runs once.
  Workload shared{"grid_sharing_dashboard",
                  {
                      "SELECT COUNT(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT SUM(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT VAR(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT MIN(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT MAX(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT MEDIAN(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT COUNT(global_active_power) FROM power WHERE hour >= 18;",
                      "SELECT SUM(global_active_power) FROM power WHERE hour >= 18;",
                  }};

  // Same grid, distinct predicates: only the per-segment fan-out and the
  // SoA weighting batch are shared; coverage runs per predicate.
  Workload distinct{"grid_sharing_distinct_predicates",
                    {
                        "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
                        "SELECT AVG(global_active_power) FROM power WHERE hour >= 6;",
                        "SELECT AVG(global_active_power) FROM power WHERE hour < 12;",
                        "SELECT SUM(global_active_power) FROM power WHERE hour >= 20;",
                        "SELECT COUNT(global_active_power) FROM power WHERE hour < 4;",
                        "SELECT MEDIAN(global_active_power) FROM power WHERE hour >= 8;",
                        "SELECT VAR(global_active_power) FROM power WHERE hour < 22;",
                        "SELECT MAX(global_active_power) FROM power WHERE hour >= 12;",
                    }};

  // Mixed columns and predicate shapes: what a whole dashboard page
  // (several tiles over different columns) looks like.
  Workload mixed{"mixed_dashboard_page",
                 {
                     "SELECT COUNT(voltage) FROM power WHERE voltage > 240;",
                     "SELECT AVG(voltage) FROM power WHERE voltage > 240;",
                     "SELECT AVG(global_active_power) FROM power WHERE hour >= 18;",
                     "SELECT SUM(global_active_power) FROM power WHERE hour >= 18;",
                     "SELECT MEDIAN(global_active_power) FROM power WHERE hour >= 18;",
                     "SELECT SUM(global_active_power) FROM power WHERE hour >= 6 AND "
                     "voltage > 236 AND global_intensity > 0.4;",
                     "SELECT COUNT(voltage) FROM power WHERE hour < 4 OR hour > 20;",
                     "SELECT VAR(sub_metering_3) FROM power WHERE day_of_week < 6;",
                     "SELECT AVG(sub_metering_3) FROM power WHERE day_of_week < 6;",
                     "SELECT MAX(global_intensity) FROM power WHERE hour >= 18;",
                 }};

  std::printf("%-34s %6s %9s %12s %12s %9s\n", "workload", "n", "distinct",
              "loop us/q", "batch us/q", "speedup");
  std::string rows_json;
  size_t mismatches = 0;
  double shared_speedup = 0;
  for (const Workload* wl : {&shared, &distinct, &mixed}) {
    Measured m = MeasureWorkload(db.value(), *wl);
    mismatches += m.mismatches;
    if (std::string(wl->name) == "grid_sharing_dashboard") {
      shared_speedup = m.speedup;
    }
    std::printf("%-34s %6zu %9zu %12.3f %12.3f %8.2fx\n", wl->name,
                m.batch_size, m.distinct, m.loop_us / m.batch_size,
                m.batch_us / m.batch_size, m.speedup);
    char row[384];
    std::snprintf(row, sizeof(row),
                  "%s    {\"name\": \"%s\", \"batch_size\": %zu, "
                  "\"distinct_plans\": %zu, \"loop_us\": %.4f, "
                  "\"batch_us\": %.4f, \"speedup\": %.3f}",
                  rows_json.empty() ? "" : ",\n", wl->name, m.batch_size,
                  m.distinct, m.loop_us, m.batch_us, m.speedup);
    rows_json += row;
  }

  std::printf("\ngrid-sharing batch speedup: %.2fx (target >= 2x)%s\n",
              shared_speedup, mismatches == 0 ? "" : "  [RESULT MISMATCHES!]");

  char head[256];
  std::snprintf(head, sizeof(head),
                "{\n  \"bench\": \"batch\",\n  \"scale_rows\": %zu,\n"
                "  \"grid_sharing_speedup\": %.3f,\n  \"mismatches\": %zu,\n"
                "  \"workloads\": [\n",
                rows, shared_speedup, mismatches);
  WriteBenchJson("BENCH_batch.json",
                 std::string(head) + rows_json + "\n  ]\n}");
  return mismatches == 0 ? 0 : 1;
}
