// Reproduces Table 4: the evaluation-dataset inventory (rows, columns,
// size), using the synthetic generators at their laptop-scale defaults.
// Paper row counts are listed alongside for reference.
#include <cstdio>

#include "bench/bench_util.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

int main() {
  Banner("Table 4: datasets used for evaluation (synthetic generators)");
  size_t rows_override = EnvSize("PH_ROWS", 0);

  std::printf("%-10s %10s %14s %8s %12s  %s\n", "Dataset", "Rows",
              "Paper rows", "Columns", "Size", "Description");
  for (const DatasetSpec& spec : AllDatasets()) {
    auto table = MakeDataset(spec.name, rows_override, 1);
    if (!table.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }
    std::printf("%-10s %10zu %14zu %8zu %12s  %s\n", spec.name.c_str(),
                table->NumRows(), spec.paper_rows, table->NumColumns(),
                HumanBytes(static_cast<double>(table->RawSizeBytes()))
                    .c_str(),
                spec.description.c_str());
  }
  std::printf(
      "\nNote: row counts are laptop-scale defaults (PH_ROWS overrides); "
      "column counts match the paper's Table 4.\n");
  return 0;
}
