#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/pairwise_hist.h"

namespace pairwisehist {
namespace bench {

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v) return def;
  return static_cast<size_t>(parsed);
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

std::string HumanBytes(double bytes) {
  char buf[64];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  } else if (bytes < 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024);
  } else if (bytes < 1024.0 * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB",
                  bytes / (1024.0 * 1024 * 1024));
  }
  return buf;
}

bool WriteBenchJson(const std::string& filename, const std::string& json) {
  const char* dir = std::getenv("PH_BENCH_JSON_DIR");
  std::string path =
      (dir != nullptr && *dir != '\0') ? std::string(dir) + "/" + filename
                                       : filename;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(json.c_str(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\n[bench json written to %s]\n", path.c_str());
  return true;
}

std::string HumanSeconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", seconds * 1e3);
  } else if (seconds < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f min", seconds / 60);
  }
  return buf;
}

BuiltMethod BuildPairwiseHistMethod(const Table& table, size_t sample_size,
                                    const std::string& label_suffix) {
  BuiltMethod out;
  out.label = "PairwiseHist" + label_suffix;
  PairwiseHistConfig cfg;
  cfg.sample_size = sample_size;
  double t0 = NowSeconds();
  auto ph = PairwiseHist::BuildFromTable(table, cfg);
  out.build_seconds = NowSeconds() - t0;
  if (ph.ok()) {
    out.method =
        std::make_unique<PairwiseHistMethod>(std::move(ph).value());
  } else {
    std::fprintf(stderr, "PairwiseHist build failed: %s\n",
                 ph.status().ToString().c_str());
  }
  return out;
}

BuiltMethod BuildSpnMethod(const Table& table, size_t sample_size,
                           const std::string& label_suffix) {
  BuiltMethod out;
  out.label = "SPN" + label_suffix;
  SpnBaseline::Config cfg;
  cfg.sample_size = sample_size;
  double t0 = NowSeconds();
  out.method = std::make_unique<SpnBaseline>(table, cfg);
  out.build_seconds = NowSeconds() - t0;
  return out;
}

BuiltMethod BuildDbestMethod(const Table& table,
                             const std::vector<Query>& workload,
                             size_t sample_size,
                             const std::string& label_suffix) {
  BuiltMethod out;
  out.label = "DBEst" + label_suffix;
  DbestBaseline::Config cfg;
  cfg.sample_size = sample_size;
  auto dbest = std::make_unique<DbestBaseline>(cfg);
  double t0 = NowSeconds();
  auto trained = dbest->TrainForWorkload(table, workload);
  out.build_seconds = NowSeconds() - t0;
  if (!trained.ok()) {
    std::fprintf(stderr, "DBEst training failed: %s\n",
                 trained.status().ToString().c_str());
  }
  out.method = std::move(dbest);
  return out;
}

BuiltMethod BuildSamplingMethod(const Table& table, size_t sample_size,
                                const std::string& label_suffix) {
  BuiltMethod out;
  out.label = "Sampling" + label_suffix;
  double t0 = NowSeconds();
  out.method = std::make_unique<SamplingAqp>(table, sample_size, 17);
  out.build_seconds = NowSeconds() - t0;
  return out;
}

BuiltMethod BuildAviMethod(const Table& table, size_t sample_size,
                           const std::string& label_suffix) {
  BuiltMethod out;
  out.label = "AVI-Hist" + label_suffix;
  double t0 = NowSeconds();
  out.method = std::make_unique<AviHistogram>(table, sample_size, 64, 17);
  out.build_seconds = NowSeconds() - t0;
  return out;
}

BenchDataset MakeInitialDataset(const std::string& name, size_t rows,
                                size_t queries, uint64_t seed) {
  BenchDataset out;
  out.name = name;
  auto table = MakeDataset(name, rows, seed);
  if (!table.ok()) {
    std::fprintf(stderr, "dataset %s failed: %s\n", name.c_str(),
                 table.status().ToString().c_str());
    return out;
  }
  out.table = std::move(table).value();
  WorkloadConfig cfg = InitialWorkloadConfig(seed + 1);
  cfg.num_queries = queries;
  auto workload = GenerateWorkload(out.table, cfg);
  if (workload.ok()) out.workload = std::move(workload).value();
  return out;
}

BenchDataset MakeScaledDataset(const std::string& name, size_t scale_rows,
                               size_t queries, uint64_t seed) {
  BenchDataset out;
  out.name = name + "-scaled";
  auto base = MakeDataset(name, 0, seed);
  if (!base.ok()) return out;
  auto scaler = IdebenchScaler::Fit(*base);
  if (!scaler.ok()) {
    std::fprintf(stderr, "scaler fit failed for %s\n", name.c_str());
    return out;
  }
  out.table = scaler->Generate(scale_rows, seed + 2);
  out.table.set_name(name);
  WorkloadConfig cfg = ScaledWorkloadConfig(seed + 3);
  cfg.num_queries = queries;
  auto workload = GenerateWorkload(out.table, cfg);
  if (workload.ok()) out.workload = std::move(workload).value();
  return out;
}

}  // namespace bench
}  // namespace pairwisehist
