// GreedyGD compression behaviour across all 11 datasets (the Fig. 3
// mechanics and the Section-3 framework claims): compression ratio,
// base/deviation split, base counts, random-access cost and the
// bases-as-bin-edges link to PairwiseHist.
#include <cstdio>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "gd/greedy_gd.h"

using namespace pairwisehist;
using namespace pairwisehist::bench;

namespace {

void BM_RandomAccessRow(benchmark::State& state) {
  static const CompressedTable* compressed = [] {
    Table t = MakePower(20000, 3);
    auto c = CompressTable(t);
    return c.ok() ? new CompressedTable(std::move(c).value()) : nullptr;
  }();
  if (compressed == nullptr) {
    state.SkipWithError("compression failed");
    return;
  }
  size_t row = 0;
  for (auto _ : state) {
    auto codes = compressed->GetRowCodes(row);
    benchmark::DoNotOptimize(codes);
    row = (row + 7919) % compressed->num_rows();
  }
}
BENCHMARK(BM_RandomAccessRow);

void BM_CompressPower10k(benchmark::State& state) {
  Table t = MakePower(10000, 3);
  auto pre = Preprocess(t);
  for (auto _ : state) {
    auto c = CompressedTable::Compress(*pre);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_CompressPower10k)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  Banner("GreedyGD compression across the 11 datasets");
  const size_t rows = EnvSize("PH_ROWS", 0);

  std::printf("%-10s %10s %10s %8s %8s %10s %10s\n", "Dataset", "raw",
              "compressed", "ratio", "bases", "base-bits", "dev-bits");
  for (const DatasetSpec& spec : AllDatasets()) {
    auto t = MakeDataset(spec.name, rows, 3);
    if (!t.ok()) continue;
    auto c = CompressTable(*t);
    if (!c.ok()) {
      std::printf("%-10s compression failed: %s\n", spec.name.c_str(),
                  c.status().ToString().c_str());
      continue;
    }
    int base_bits = 0, dev_bits = 0;
    for (size_t col = 0; col < c->num_columns(); ++col) {
      base_bits += c->base_bits(col);
      dev_bits += c->deviation_bits(col);
    }
    std::printf("%-10s %10s %10s %7.2fx %8zu %10d %10d\n",
                spec.name.c_str(),
                HumanBytes(static_cast<double>(t->RawSizeBytes())).c_str(),
                HumanBytes(static_cast<double>(c->CompressedSizeBytes()))
                    .c_str(),
                static_cast<double>(t->RawSizeBytes()) /
                    c->CompressedSizeBytes(),
                c->num_bases(), base_bits, dev_bits);
  }

  std::printf("\nRandom access / compression micro-benchmarks:\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
