// Evaluation metrics and the method runner used by every bench binary.
#ifndef PAIRWISEHIST_HARNESS_METRICS_H_
#define PAIRWISEHIST_HARNESS_METRICS_H_

#include <string>
#include <vector>

#include "baselines/aqp_method.h"
#include "common/status.h"
#include "query/ast.h"
#include "storage/table.h"

namespace pairwisehist {

/// p-th percentile (p in [0,1]) with linear interpolation; NaN when empty.
double Percentile(std::vector<double> values, double p);
/// Median shorthand.
double Median(std::vector<double> values);

/// Relative error in percent; 0 when both are zero, 100 when only the exact
/// value is zero.
double RelativeErrorPct(double exact, double estimate);

/// Everything measured for one method over one workload.
struct MethodRun {
  std::string method;
  size_t queries_total = 0;
  size_t queries_supported = 0;   ///< method accepted the query shape
  size_t queries_evaluated = 0;   ///< error was computable
  std::vector<double> errors_pct;
  std::vector<double> latencies_us;
  size_t bounds_evaluated = 0;
  size_t bounds_correct = 0;      ///< exact inside [lower, upper]
  std::vector<double> bound_widths_pct;

  double MedianErrorPct() const;
  double MedianLatencyUs() const;
  double BoundsCorrectRate() const;   ///< in percent
  double MedianBoundWidthPct() const;
};

/// Per-query record for CDF-style plots.
struct QueryRecord {
  std::string sql;
  AggFunc func;
  double exact = 0;
  /// Parallel to the method list passed to RunWorkload; NaN = unsupported.
  std::vector<double> estimates;
  std::vector<double> errors_pct;
};

/// Runs every method over the workload with exact ground truth, timing each
/// query. `records` (optional) receives per-query details.
StatusOr<std::vector<MethodRun>> RunWorkload(
    const Table& table, const std::vector<Query>& workload,
    const std::vector<const AqpMethod*>& methods,
    std::vector<QueryRecord>* records = nullptr);

/// Measures the median exact-execution latency (the paper's SQLite
/// reference point in Section 6.5).
double MedianExactLatencyUs(const Table& table,
                            const std::vector<Query>& workload);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_HARNESS_METRICS_H_
