#include "harness/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "query/exact.h"

namespace pairwisehist {

namespace {

const double kNaN = std::numeric_limits<double>::quiet_NaN();

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return kNaN;
  std::sort(values.begin(), values.end());
  double idx = p * (values.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(idx));
  size_t hi = static_cast<size_t>(std::ceil(idx));
  double t = idx - lo;
  return values[lo] * (1 - t) + values[hi] * t;
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 0.5);
}

double RelativeErrorPct(double exact, double estimate) {
  if (std::isnan(estimate)) return kNaN;
  if (exact == 0.0) return estimate == 0.0 ? 0.0 : 100.0;
  return std::fabs(estimate - exact) / std::fabs(exact) * 100.0;
}

double MethodRun::MedianErrorPct() const { return Median(errors_pct); }
double MethodRun::MedianLatencyUs() const { return Median(latencies_us); }
double MethodRun::BoundsCorrectRate() const {
  return bounds_evaluated == 0
             ? kNaN
             : 100.0 * bounds_correct / bounds_evaluated;
}
double MethodRun::MedianBoundWidthPct() const {
  return Median(bound_widths_pct);
}

StatusOr<std::vector<MethodRun>> RunWorkload(
    const Table& table, const std::vector<Query>& workload,
    const std::vector<const AqpMethod*>& methods,
    std::vector<QueryRecord>* records) {
  std::vector<MethodRun> runs(methods.size());
  for (size_t i = 0; i < methods.size(); ++i) {
    runs[i].method = methods[i]->name();
    runs[i].queries_total = workload.size();
  }

  for (const Query& q : workload) {
    PH_ASSIGN_OR_RETURN(QueryResult exact_result, ExecuteExact(table, q));
    if (exact_result.groups.empty()) continue;
    const AggResult& exact = exact_result.groups[0].agg;
    if (exact.empty_selection || std::isnan(exact.estimate)) continue;

    QueryRecord record;
    record.sql = q.ToSql();
    record.func = q.func;
    record.exact = exact.estimate;
    record.estimates.assign(methods.size(), kNaN);
    record.errors_pct.assign(methods.size(), kNaN);

    for (size_t i = 0; i < methods.size(); ++i) {
      MethodRun& run = runs[i];
      if (!methods[i]->SupportsQuery(q)) continue;
      double t0 = NowUs();
      auto result = methods[i]->Execute(q);
      double t1 = NowUs();
      if (!result.ok() ||
          result.value().groups.empty()) {
        continue;  // method rejected the query at runtime
      }
      run.queries_supported += 1;
      run.latencies_us.push_back(t1 - t0);
      const AggResult& est = result.value().groups[0].agg;
      double err = RelativeErrorPct(exact.estimate, est.estimate);
      if (!std::isnan(err)) {
        run.queries_evaluated += 1;
        run.errors_pct.push_back(err);
        record.estimates[i] = est.estimate;
        record.errors_pct[i] = err;
      }
      if (methods[i]->ProvidesBounds() && !est.empty_selection &&
          !std::isnan(est.lower) && !std::isnan(est.upper)) {
        run.bounds_evaluated += 1;
        const double tol =
            1e-9 * std::max(1.0, std::fabs(exact.estimate));
        if (exact.estimate >= est.lower - tol &&
            exact.estimate <= est.upper + tol) {
          run.bounds_correct += 1;
        }
        if (exact.estimate != 0.0) {
          run.bound_widths_pct.push_back((est.upper - est.lower) /
                                         std::fabs(exact.estimate) * 100.0);
        }
      }
    }
    if (records != nullptr) records->push_back(std::move(record));
  }
  return runs;
}

double MedianExactLatencyUs(const Table& table,
                            const std::vector<Query>& workload) {
  std::vector<double> lat;
  for (const Query& q : workload) {
    double t0 = NowUs();
    auto result = ExecuteExact(table, q);
    double t1 = NowUs();
    if (result.ok()) lat.push_back(t1 - t0);
  }
  return Median(std::move(lat));
}

}  // namespace pairwisehist
