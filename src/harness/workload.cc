#include "harness/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "query/exact.h"

namespace pairwisehist {

WorkloadConfig InitialWorkloadConfig(uint64_t seed) {
  WorkloadConfig c;
  c.num_queries = 100;
  c.min_predicates = 1;
  c.max_predicates = 1;
  c.functions = {AggFunc::kCount, AggFunc::kSum, AggFunc::kAvg};
  c.min_selectivity = 1e-5;
  c.or_probability = 0.0;
  c.seed = seed;
  return c;
}

WorkloadConfig ScaledWorkloadConfig(uint64_t seed) {
  WorkloadConfig c;
  c.num_queries = 430;
  c.min_predicates = 1;
  c.max_predicates = 5;
  c.functions = {AggFunc::kCount, AggFunc::kSum,    AggFunc::kAvg,
                 AggFunc::kMin,   AggFunc::kMax,    AggFunc::kMedian,
                 AggFunc::kVar};
  c.min_selectivity = 1e-6;
  c.or_probability = 0.25;
  c.seed = seed;
  return c;
}

namespace {

bool IsNumeric(const Column& col) {
  return col.type() == DataType::kFloat64 || col.type() == DataType::kInt64 ||
         col.type() == DataType::kTimestamp;
}

// Quantile of the non-null values (approximate, via sampling for large
// columns) for drawing plausible literals.
double ColumnQuantile(const Column& col, double q, Rng* rng) {
  std::vector<double> sample;
  const size_t target = 2000;
  size_t stride = std::max<size_t>(1, col.size() / target);
  size_t start = col.size() > stride
                     ? static_cast<size_t>(rng->UniformInt(uint64_t(stride)))
                     : 0;
  for (size_t r = start; r < col.size(); r += stride) {
    if (!col.IsNull(r)) sample.push_back(col.Value(r));
  }
  if (sample.empty()) return 0;
  std::sort(sample.begin(), sample.end());
  size_t idx = std::min(sample.size() - 1,
                        static_cast<size_t>(q * sample.size()));
  return sample[idx];
}

Condition MakeCondition(const Table& table, size_t col_idx, Rng* rng) {
  const Column& col = table.column(col_idx);
  Condition cond;
  cond.column = col.name();
  if (col.type() == DataType::kCategorical) {
    cond.op = rng->Bernoulli(0.8) ? CmpOp::kEq : CmpOp::kNe;
    // Draw an actually occurring category.
    for (int tries = 0; tries < 20; ++tries) {
      size_t r = static_cast<size_t>(rng->UniformInt(uint64_t(col.size())));
      if (col.IsNull(r)) continue;
      auto name = col.CategoryName(static_cast<int64_t>(col.Value(r)));
      if (name.ok()) {
        cond.is_string = true;
        cond.text_value = name.value();
        return cond;
      }
    }
    cond.is_string = true;
    cond.text_value = col.dictionary().empty() ? "?" : col.dictionary()[0];
    return cond;
  }
  // Numeric: one-sided range with a quantile-drawn threshold, keeping the
  // satisfied side reasonably large so the selectivity floor is reachable.
  static const CmpOp kOps[] = {CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                               CmpOp::kGe};
  cond.op = kOps[rng->UniformInt(uint64_t{4})];
  double q = rng->Uniform(0.02, 0.98);
  double value = ColumnQuantile(col, q, rng);
  if (col.type() == DataType::kFloat64) {
    // Perturb inside the quantile gap so literals are not always data values.
    double span = std::fabs(ColumnQuantile(col, std::min(0.999, q + 0.05),
                                           rng) -
                            value);
    value += rng->Uniform(-0.5, 0.5) * span * 0.1;
    double scale = std::pow(10.0, col.decimals());
    value = std::round(value * scale) / scale;
  }
  cond.value = value;
  return cond;
}

}  // namespace

StatusOr<std::vector<Query>> GenerateWorkload(const Table& table,
                                              const WorkloadConfig& config) {
  if (table.NumRows() == 0 || table.NumColumns() == 0) {
    return Status::InvalidArgument("GenerateWorkload: empty table");
  }
  Rng rng(config.seed);

  // Candidate columns.
  std::vector<size_t> numeric_cols, all_pred_cols;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    if (col.non_null_count() == 0) continue;
    if (IsNumeric(col) && col.CountDistinct() > 1) numeric_cols.push_back(c);
    if (col.CountDistinct() > 1) all_pred_cols.push_back(c);
  }
  if (numeric_cols.empty()) {
    return Status::InvalidArgument("GenerateWorkload: no numeric columns");
  }

  std::vector<Query> workload;
  int attempts = 0;
  while (workload.size() < config.num_queries &&
         attempts < config.max_attempts * static_cast<int>(
                                               config.num_queries)) {
    ++attempts;
    Query q;
    q.table = table.name();
    q.func = config.functions[rng.UniformInt(
        uint64_t(config.functions.size()))];
    q.agg_column =
        table.column(numeric_cols[rng.UniformInt(
                         uint64_t(numeric_cols.size()))])
            .name();

    int npreds = static_cast<int>(
        rng.UniformInt(int64_t(config.min_predicates),
                       int64_t(config.max_predicates)));
    // Distinct predicate columns.
    std::vector<size_t> cols = all_pred_cols;
    for (int i = 0; i < npreds && static_cast<size_t>(i) < cols.size();
         ++i) {
      size_t j = i + static_cast<size_t>(
                         rng.UniformInt(uint64_t(cols.size() - i)));
      std::swap(cols[i], cols[j]);
    }
    npreds = std::min<int>(npreds, static_cast<int>(cols.size()));

    if (npreds > 0) {
      std::vector<PredicateNode> leaves;
      for (int i = 0; i < npreds; ++i) {
        PredicateNode leaf;
        leaf.type = PredicateNode::Type::kCondition;
        leaf.condition = MakeCondition(table, cols[i], &rng);
        leaves.push_back(std::move(leaf));
      }
      if (leaves.size() == 1) {
        q.where = std::move(leaves[0]);
      } else if (rng.Bernoulli(config.or_probability)) {
        // OR of two AND groups (exercises the precedence handling).
        size_t split = 1 + rng.UniformInt(uint64_t(leaves.size() - 1));
        auto make_group = [](std::vector<PredicateNode> nodes) {
          if (nodes.size() == 1) return std::move(nodes[0]);
          PredicateNode g;
          g.type = PredicateNode::Type::kAnd;
          g.children = std::move(nodes);
          return g;
        };
        std::vector<PredicateNode> left(leaves.begin(),
                                        leaves.begin() + split);
        std::vector<PredicateNode> right(leaves.begin() + split,
                                         leaves.end());
        PredicateNode root;
        root.type = PredicateNode::Type::kOr;
        root.children.push_back(make_group(std::move(left)));
        root.children.push_back(make_group(std::move(right)));
        q.where = std::move(root);
      } else {
        PredicateNode root;
        root.type = PredicateNode::Type::kAnd;
        root.children = std::move(leaves);
        q.where = std::move(root);
      }
    }

    // Selectivity floor and non-degenerate exact answer.
    auto sel = ExactSelectivity(table, q);
    if (!sel.ok() || sel.value() < config.min_selectivity) continue;
    auto exact = ExecuteExact(table, q);
    if (!exact.ok() || exact.value().groups.empty()) continue;
    const AggResult& r = exact.value().groups[0].agg;
    if (r.empty_selection || std::isnan(r.estimate)) continue;
    workload.push_back(std::move(q));
  }
  return workload;
}

}  // namespace pairwisehist
