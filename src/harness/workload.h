// Random workload generation matching the paper's evaluation settings
// (Section 6): random aggregation functions over numeric columns, 1–5
// predicate conditions with AND/OR connectors, literals drawn from the data
// ranges, and a minimum-selectivity floor enforced with the exact engine
// (10^-5 for the initial experiments, 10^-6 for the scaled ones).
#ifndef PAIRWISEHIST_HARNESS_WORKLOAD_H_
#define PAIRWISEHIST_HARNESS_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "query/ast.h"
#include "storage/table.h"

namespace pairwisehist {

struct WorkloadConfig {
  size_t num_queries = 100;
  int min_predicates = 1;
  int max_predicates = 1;
  std::vector<AggFunc> functions = {AggFunc::kCount, AggFunc::kSum,
                                    AggFunc::kAvg};
  double min_selectivity = 1e-5;
  /// Probability that a multi-predicate query uses an OR connector.
  double or_probability = 0.25;
  uint64_t seed = 123;
  /// Give up on a candidate query after this many regeneration attempts.
  int max_attempts = 200;
};

/// Paper presets.
WorkloadConfig InitialWorkloadConfig(uint64_t seed);   ///< Fig. 8 setting
WorkloadConfig ScaledWorkloadConfig(uint64_t seed);    ///< Table 5 setting

/// Generates `config.num_queries` queries against `table`, each satisfying
/// the selectivity floor (verified exactly). May return fewer queries than
/// requested if the table cannot support them.
StatusOr<std::vector<Query>> GenerateWorkload(const Table& table,
                                              const WorkloadConfig& config);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_HARNESS_WORKLOAD_H_
