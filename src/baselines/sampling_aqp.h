// Uniform-sampling AQP baseline (the VerdictDB / BlinkDB method family).
//
// Keeps a uniform row sample and answers queries by exact execution on the
// sample, scaling COUNT/SUM by 1/ρ and attaching CLT confidence bounds with
// finite-population correction. This is the classical comparator the paper's
// Table 1 cites for the sampling column.
#ifndef PAIRWISEHIST_BASELINES_SAMPLING_AQP_H_
#define PAIRWISEHIST_BASELINES_SAMPLING_AQP_H_

#include "baselines/aqp_method.h"
#include "storage/table.h"

namespace pairwisehist {

class SamplingAqp : public AqpMethod {
 public:
  /// Draws a `sample_size`-row uniform sample from `table`.
  SamplingAqp(const Table& table, size_t sample_size, uint64_t seed,
              double confidence = 0.98);

  std::string name() const override { return "Sampling"; }
  StatusOr<QueryResult> Execute(const Query& query) const override;
  size_t StorageBytes() const override;
  bool ProvidesBounds() const override { return true; }

  double sampling_ratio() const { return rho_; }

 private:
  Table sample_;
  size_t total_rows_;
  double rho_;
  double z_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BASELINES_SAMPLING_AQP_H_
