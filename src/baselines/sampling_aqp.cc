#include "baselines/sampling_aqp.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "query/exact.h"

namespace pairwisehist {

SamplingAqp::SamplingAqp(const Table& table, size_t sample_size,
                         uint64_t seed, double confidence)
    : sample_(table.Sample(sample_size, seed)),
      total_rows_(table.NumRows()),
      rho_(table.NumRows() == 0
               ? 1.0
               : static_cast<double>(sample_.NumRows()) / table.NumRows()),
      z_(NormalQuantile(0.5 + confidence / 2.0)) {}

StatusOr<QueryResult> SamplingAqp::Execute(const Query& query) const {
  // Exact execution on the sample...
  PH_ASSIGN_OR_RETURN(QueryResult result, ExecuteExact(sample_, query));

  // ...then scale and attach CLT bounds. The finite-population correction
  // uses n/N over the full table.
  const double n = static_cast<double>(sample_.NumRows());
  const double fpc =
      total_rows_ > 1
          ? std::sqrt(std::max(0.0, (static_cast<double>(total_rows_) - n) /
                                        (static_cast<double>(total_rows_) -
                                         1.0)))
          : 0.0;

  for (auto& group : result.groups) {
    AggResult& r = group.agg;
    if (r.empty_selection) continue;
    switch (query.func) {
      case AggFunc::kCount: {
        double matched = r.estimate;
        double p = std::clamp(matched / n, 0.0, 1.0);
        double se = std::sqrt(p * (1.0 - p) / n) * fpc;
        r.estimate = matched / rho_;
        r.lower = std::max(0.0, (p - z_ * se)) * total_rows_;
        r.upper = std::min(1.0, (p + z_ * se)) * total_rows_;
        break;
      }
      case AggFunc::kSum: {
        // Treat each sampled row's contribution (value if it matched, else
        // 0) as the CLT variable; the exact result already sums matches.
        double sum = r.estimate;
        double mean = sum / n;
        // Approximate per-row second moment from the matched mean: without
        // per-row residuals we fall back to a conservative spread using the
        // matched count (available through a COUNT re-run).
        Query count_query = query;
        count_query.func = AggFunc::kCount;
        auto count_res = ExecuteExact(sample_, count_query);
        double matched =
            count_res.ok() && !count_res.value().groups.empty()
                ? count_res.value().groups[0].agg.estimate
                : n;
        double avg_match = matched > 0 ? sum / matched : 0.0;
        double var = matched / n * avg_match * avg_match *
                     (1.0 - matched / n + 1.0);
        double se = std::sqrt(var / n) * fpc;
        r.estimate = sum / rho_;
        r.lower = (mean - z_ * se) * total_rows_;
        r.upper = (mean + z_ * se) * total_rows_;
        break;
      }
      case AggFunc::kAvg:
      case AggFunc::kVar:
      case AggFunc::kMedian: {
        // Spread from a COUNT of matched rows: se ~ z * sd / sqrt(m).
        Query count_query = query;
        count_query.func = AggFunc::kCount;
        count_query.count_star = query.agg_column.empty();
        auto count_res = ExecuteExact(sample_, count_query);
        double m = count_res.ok() && !count_res.value().groups.empty()
                       ? count_res.value().groups[0].agg.estimate
                       : 1.0;
        m = std::max(1.0, m);
        // Use the variance of the matched values when available.
        Query var_query = query;
        var_query.func = AggFunc::kVar;
        auto var_res = ExecuteExact(sample_, var_query);
        double var = 0.0;
        if (var_res.ok() && !var_res.value().groups.empty() &&
            !var_res.value().groups[0].agg.empty_selection) {
          var = std::max(0.0, var_res.value().groups[0].agg.estimate);
        }
        double se = std::sqrt(var / m) * fpc;
        if (query.func == AggFunc::kAvg) {
          r.lower = r.estimate - z_ * se;
          r.upper = r.estimate + z_ * se;
        } else if (query.func == AggFunc::kMedian) {
          // Median CI ≈ 1.25x the mean's (normal reference rule).
          r.lower = r.estimate - 1.25 * z_ * se;
          r.upper = r.estimate + 1.25 * z_ * se;
        } else {
          // VAR: chi-squared-ish spread around the sample variance.
          double rel = z_ * std::sqrt(2.0 / m);
          r.lower = std::max(0.0, r.estimate * (1.0 - rel));
          r.upper = r.estimate * (1.0 + rel);
        }
        break;
      }
      case AggFunc::kMin:
      case AggFunc::kMax:
        // Sample extrema are biased inward and carry no distribution-free
        // bounds; report the estimate (the paper notes sampling methods'
        // weak support for extremal aggregates).
        r.lower = r.estimate;
        r.upper = r.estimate;
        break;
    }
  }
  return result;
}

size_t SamplingAqp::StorageBytes() const { return sample_.RawSizeBytes(); }

}  // namespace pairwisehist
