#include "baselines/spn.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "common/rng.h"
#include "common/stats.h"

namespace pairwisehist {

namespace {

// Column-major training matrix with explicit null flags.
struct Matrix {
  size_t rows = 0;
  std::vector<std::vector<double>> values;  // [col][row]
  std::vector<std::vector<uint8_t>> nulls;  // [col][row]
};

// Union-find for the column-dependency partitioning.
struct UnionFind {
  std::vector<size_t> parent;
  explicit UnionFind(size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void Merge(size_t a, size_t b) { parent[Find(a)] = Find(b); }
};

double PearsonOnRows(const Matrix& m, const std::vector<uint32_t>& rows,
                     size_t a, size_t b) {
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  size_t n = 0;
  for (uint32_t r : rows) {
    if (m.nulls[a][r] || m.nulls[b][r]) continue;
    double x = m.values[a][r], y = m.values[b][r];
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
    ++n;
  }
  if (n < 8) return 0.0;
  double vx = sxx - sx * sx / n;
  double vy = syy - sy * sy / n;
  if (vx <= 0 || vy <= 0) return 0.0;
  return (sxy - sx * sy / n) / std::sqrt(vx * vy);
}

}  // namespace

// ---------------------------------------------------------------------------
// Structure learning.

SpnBaseline::SpnBaseline(const Table& table, const Config& config)
    : total_rows_(table.NumRows()),
      z_(NormalQuantile(0.5 + config.confidence / 2.0)) {
  Table sample = table.Sample(config.sample_size, config.seed);
  sample_rows_ = sample.NumRows();
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    schema_.emplace_back(table.column(c).name(),
                         table.column(c).dictionary());
  }

  Matrix m;
  m.rows = sample.NumRows();
  m.values.resize(sample.NumColumns());
  m.nulls.resize(sample.NumColumns());
  for (size_t c = 0; c < sample.NumColumns(); ++c) {
    const Column& col = sample.column(c);
    m.values[c].resize(m.rows);
    m.nulls[c].resize(m.rows);
    for (size_t r = 0; r < m.rows; ++r) {
      m.nulls[c][r] = col.IsNull(r) ? 1 : 0;
      m.values[c][r] = col.IsNull(r) ? 0.0 : col.Value(r);
    }
  }

  Rng rng(config.seed + 1);

  // Leaf construction: equi-depth histogram over the rows' non-null values.
  auto make_leaf = [&](const std::vector<uint32_t>& rows, size_t col) {
    Leaf leaf;
    leaf.col = col;
    std::vector<double> vals;
    vals.reserve(rows.size());
    for (uint32_t r : rows) {
      if (!m.nulls[col][r]) vals.push_back(m.values[col][r]);
    }
    leaf.null_fraction =
        rows.empty() ? 0.0
                     : 1.0 - static_cast<double>(vals.size()) / rows.size();
    std::sort(vals.begin(), vals.end());
    if (!vals.empty()) {
      size_t k = std::min(config.leaf_bins, vals.size());
      leaf.edges.push_back(vals.front());
      size_t prev = 0;
      for (size_t b = 1; b <= k; ++b) {
        double edge = (b == k) ? vals.back() + 1.0
                               : vals[std::min(vals.size() - 1,
                                               b * vals.size() / k)];
        if (edge <= leaf.edges.back()) continue;
        size_t end =
            std::lower_bound(vals.begin() + prev, vals.end(), edge) -
            vals.begin();
        double sum = 0;
        for (size_t i = prev; i < end; ++i) sum += vals[i];
        leaf.edges.push_back(edge);
        leaf.counts.push_back(static_cast<double>(end - prev));
        leaf.means.push_back(end > prev ? sum / (end - prev) : 0.0);
        prev = end;
      }
      size_t distinct = 1;
      for (size_t i = 1; i < vals.size(); ++i) {
        if (vals[i] != vals[i - 1]) ++distinct;
      }
      leaf.distinct_per_bucket =
          std::max(1.0, static_cast<double>(distinct) /
                            std::max<size_t>(1, leaf.counts.size()));
    }
    return leaf;
  };

  // 2-means row clustering on z-scored values (nulls at the mean).
  auto cluster_rows = [&](const std::vector<uint32_t>& rows,
                          const std::vector<size_t>& cols,
                          std::vector<uint32_t>* left,
                          std::vector<uint32_t>* right) {
    // Normalize per column.
    std::vector<double> mean(cols.size(), 0), sd(cols.size(), 1);
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      double s = 0, s2 = 0;
      size_t n = 0;
      for (uint32_t r : rows) {
        if (m.nulls[cols[ci]][r]) continue;
        double v = m.values[cols[ci]][r];
        s += v;
        s2 += v * v;
        ++n;
      }
      if (n > 1) {
        mean[ci] = s / n;
        double var = s2 / n - mean[ci] * mean[ci];
        sd[ci] = var > 1e-12 ? std::sqrt(var) : 1.0;
      }
    }
    auto feature = [&](uint32_t r, size_t ci) {
      if (m.nulls[cols[ci]][r]) return 0.0;
      return (m.values[cols[ci]][r] - mean[ci]) / sd[ci];
    };
    // Init centroids from two random rows.
    std::vector<double> c0(cols.size()), c1(cols.size());
    uint32_t r0 = rows[rng.UniformInt(uint64_t(rows.size()))];
    uint32_t r1 = rows[rng.UniformInt(uint64_t(rows.size()))];
    for (size_t ci = 0; ci < cols.size(); ++ci) {
      c0[ci] = feature(r0, ci);
      c1[ci] = feature(r1, ci) + 1e-3;
    }
    std::vector<uint8_t> assign(rows.size(), 0);
    for (int iter = 0; iter < 8; ++iter) {
      // Assign.
      for (size_t i = 0; i < rows.size(); ++i) {
        double d0 = 0, d1 = 0;
        for (size_t ci = 0; ci < cols.size(); ++ci) {
          double f = feature(rows[i], ci);
          d0 += (f - c0[ci]) * (f - c0[ci]);
          d1 += (f - c1[ci]) * (f - c1[ci]);
        }
        assign[i] = d1 < d0 ? 1 : 0;
      }
      // Update.
      std::vector<double> n0(cols.size(), 0), n1(cols.size(), 0);
      size_t k0 = 0, k1 = 0;
      for (size_t i = 0; i < rows.size(); ++i) {
        for (size_t ci = 0; ci < cols.size(); ++ci) {
          double f = feature(rows[i], ci);
          (assign[i] ? n1[ci] : n0[ci]) += f;
        }
        (assign[i] ? k1 : k0) += 1;
      }
      if (k0 == 0 || k1 == 0) break;
      for (size_t ci = 0; ci < cols.size(); ++ci) {
        c0[ci] = n0[ci] / k0;
        c1[ci] = n1[ci] / k1;
      }
    }
    left->clear();
    right->clear();
    for (size_t i = 0; i < rows.size(); ++i) {
      (assign[i] ? *right : *left).push_back(rows[i]);
    }
  };

  // Recursive structure learning.
  std::function<std::unique_ptr<Node>(std::vector<uint32_t>,
                                      std::vector<size_t>, int)>
      build = [&](std::vector<uint32_t> rows, std::vector<size_t> cols,
                  int depth) -> std::unique_ptr<Node> {
    auto node = std::make_unique<Node>();
    if (cols.size() == 1) {
      node->type = Node::Type::kLeaf;
      node->leaf = make_leaf(rows, cols[0]);
      return node;
    }
    // Column partitioning by pairwise correlation.
    UnionFind uf(cols.size());
    for (size_t a = 0; a < cols.size(); ++a) {
      for (size_t b = a + 1; b < cols.size(); ++b) {
        if (std::fabs(PearsonOnRows(m, rows, cols[a], cols[b])) >=
            config.corr_threshold) {
          uf.Merge(a, b);
        }
      }
    }
    std::vector<std::vector<size_t>> groups;
    {
      std::vector<int> group_of(cols.size(), -1);
      for (size_t a = 0; a < cols.size(); ++a) {
        size_t root = uf.Find(a);
        if (group_of[root] < 0) {
          group_of[root] = static_cast<int>(groups.size());
          groups.emplace_back();
        }
        groups[group_of[root]].push_back(cols[a]);
      }
    }
    if (groups.size() > 1) {
      node->type = Node::Type::kProduct;
      for (auto& g : groups) {
        node->children.push_back(build(rows, std::move(g), depth + 1));
      }
      return node;
    }
    // All columns dependent: try a sum split.
    if (rows.size() >= 2 * config.min_instances &&
        depth < config.max_depth) {
      std::vector<uint32_t> left, right;
      cluster_rows(rows, cols, &left, &right);
      if (left.size() >= config.min_instances / 4 &&
          right.size() >= config.min_instances / 4) {
        node->type = Node::Type::kSum;
        node->weights.push_back(static_cast<double>(left.size()) /
                                rows.size());
        node->weights.push_back(static_cast<double>(right.size()) /
                                rows.size());
        node->children.push_back(build(std::move(left), cols, depth + 1));
        node->children.push_back(build(std::move(right), cols, depth + 1));
        return node;
      }
    }
    // Give up on dependence: naive factorization into leaves.
    node->type = Node::Type::kProduct;
    for (size_t col : cols) {
      auto child = std::make_unique<Node>();
      child->type = Node::Type::kLeaf;
      child->leaf = make_leaf(rows, col);
      node->children.push_back(std::move(child));
    }
    return node;
  };

  std::vector<uint32_t> all_rows(m.rows);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<size_t> all_cols(sample.NumColumns());
  std::iota(all_cols.begin(), all_cols.end(), 0);
  if (m.rows == 0 || all_cols.empty()) {
    root_ = std::make_unique<Node>();
    root_->type = Node::Type::kLeaf;
  } else {
    root_ = build(std::move(all_rows), std::move(all_cols), 0);
  }
}

// ---------------------------------------------------------------------------
// Evaluation.

double SpnBaseline::LeafSelectivity(const Leaf& leaf, CmpOp op,
                                    double value) {
  double total = 0;
  for (double c : leaf.counts) total += c;
  if (total <= 0) return 0.0;
  double satisfied = 0;
  for (size_t b = 0; b < leaf.counts.size(); ++b) {
    double lo = leaf.edges[b], hi = leaf.edges[b + 1];
    double width = std::max(hi - lo, 1e-12);
    double frac = 0;
    switch (op) {
      case CmpOp::kLt:
      case CmpOp::kLe:
        frac = std::clamp((value - lo) / width, 0.0, 1.0);
        break;
      case CmpOp::kGt:
      case CmpOp::kGe:
        frac = std::clamp((hi - value) / width, 0.0, 1.0);
        break;
      case CmpOp::kEq:
        frac = (value >= lo && value < hi) ? 1.0 / leaf.distinct_per_bucket
                                           : 0.0;
        break;
      case CmpOp::kNe:
        frac = (value >= lo && value < hi)
                   ? 1.0 - 1.0 / leaf.distinct_per_bucket
                   : 1.0;
        break;
    }
    satisfied += leaf.counts[b] * frac;
  }
  return std::clamp(satisfied / total, 0.0, 1.0);
}

SpnBaseline::EvalOut SpnBaseline::Eval(const Node& node,
                                       const std::vector<Cond>& conds,
                                       int agg_col) const {
  EvalOut out;
  switch (node.type) {
    case Node::Type::kLeaf: {
      const Leaf& leaf = node.leaf;
      double p = 1.0;
      // All conditions on this leaf's column apply conjunctively; the
      // within-leaf product over bucket fractions is an approximation in
      // the same spirit as DeepDB's leaf likelihoods.
      bool has_cond = false;
      double cond_sel = 1.0;
      for (const Cond& c : conds) {
        if (c.col != leaf.col) continue;
        has_cond = true;
        cond_sel *= LeafSelectivity(leaf, c.op, c.value);
      }
      if (has_cond) p = (1.0 - leaf.null_fraction) * cond_sel;
      out.prob = p;
      if (agg_col >= 0 && static_cast<size_t>(agg_col) == leaf.col) {
        // E[x * 1(conds)]: restrict buckets by the conditions.
        double total = 0;
        for (double c : leaf.counts) total += c;
        double expect = 0, nn = 0;
        if (total > 0) {
          for (size_t b = 0; b < leaf.counts.size(); ++b) {
            double w = leaf.counts[b] / total;
            for (const Cond& c : conds) {
              if (c.col != leaf.col) continue;
              Leaf single;
              single.edges = {leaf.edges[b], leaf.edges[b + 1]};
              single.counts = {1.0};
              single.means = {leaf.means[b]};
              single.distinct_per_bucket = leaf.distinct_per_bucket;
              w *= LeafSelectivity(single, c.op, c.value);
            }
            expect += w * leaf.means[b];
            nn += w;
          }
        }
        out.expect = (1.0 - leaf.null_fraction) * expect;
        out.nn_prob = (1.0 - leaf.null_fraction) * nn;
      } else {
        out.expect = 0.0;
        out.nn_prob = p;
      }
      return out;
    }
    case Node::Type::kProduct: {
      // The child whose subtree holds the aggregation column contributes
      // its expectation; every other child contributes only a probability.
      out.prob = 1.0;
      double others_p = 1.0;
      EvalOut agg_out;
      bool found = false;
      for (const auto& child : node.children) {
        if (agg_col >= 0 &&
            SubtreeContains(*child, static_cast<size_t>(agg_col))) {
          agg_out = Eval(*child, conds, agg_col);
          out.prob *= agg_out.prob;
          found = true;
        } else {
          double p = Eval(*child, conds, -1).prob;
          out.prob *= p;
          others_p *= p;
        }
      }
      if (found) {
        out.expect = agg_out.expect * others_p;
        out.nn_prob = agg_out.nn_prob * others_p;
      } else {
        out.expect = 0;
        out.nn_prob = out.prob;
      }
      return out;
    }
    case Node::Type::kSum: {
      out.prob = 0;
      out.expect = 0;
      out.nn_prob = 0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        EvalOut c = Eval(*node.children[i], conds, agg_col);
        out.prob += node.weights[i] * c.prob;
        out.expect += node.weights[i] * c.expect;
        out.nn_prob += node.weights[i] * c.nn_prob;
      }
      return out;
    }
  }
  return out;
}

bool SpnBaseline::SupportsQuery(const Query& query) const {
  if (query.func != AggFunc::kCount && query.func != AggFunc::kSum &&
      query.func != AggFunc::kAvg) {
    return false;
  }
  if (!query.group_by.empty()) return false;
  if (query.where.has_value()) {
    const PredicateNode& root = *query.where;
    if (root.type == PredicateNode::Type::kOr) return false;
    if (root.type == PredicateNode::Type::kAnd) {
      for (const auto& child : root.children) {
        if (child.type != PredicateNode::Type::kCondition) return false;
      }
    }
  }
  return true;
}

StatusOr<QueryResult> SpnBaseline::Execute(const Query& query) const {
  if (!SupportsQuery(query)) {
    return Status::Unsupported("SPN: unsupported query shape (no OR, no " +
                               std::string(AggFuncName(query.func)) +
                               " beyond COUNT/SUM/AVG)");
  }
  // Resolve conditions.
  std::vector<Cond> conds;
  if (query.where.has_value()) {
    std::vector<const Condition*> raw;
    const PredicateNode& root = *query.where;
    if (root.type == PredicateNode::Type::kCondition) {
      raw.push_back(&root.condition);
    } else {
      for (const auto& c : root.children) raw.push_back(&c.condition);
    }
    for (const Condition* c : raw) {
      Cond resolved;
      bool found = false;
      for (size_t i = 0; i < schema_.size(); ++i) {
        if (schema_[i].first == c->column) {
          resolved.col = i;
          found = true;
          break;
        }
      }
      if (!found) return Status::NotFound("SPN: column " + c->column);
      resolved.op = c->op;
      resolved.value = c->value;
      if (c->is_string) {
        const auto& dict = schema_[resolved.col].second;
        resolved.value = -1;
        for (size_t i = 0; i < dict.size(); ++i) {
          if (dict[i] == c->text_value) {
            resolved.value = static_cast<double>(i);
            break;
          }
        }
      }
      conds.push_back(resolved);
    }
  }

  int agg_col = -1;
  if (!query.count_star) {
    bool found = false;
    for (size_t i = 0; i < schema_.size(); ++i) {
      if (schema_[i].first == query.agg_column) {
        agg_col = static_cast<int>(i);
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("SPN: column " + query.agg_column);
  }

  EvalOut e = Eval(*root_, conds, agg_col);
  const double n = static_cast<double>(total_rows_);
  const double ns = static_cast<double>(sample_rows_);

  AggResult r;
  switch (query.func) {
    case AggFunc::kCount: {
      double p = query.count_star ? e.prob : e.nn_prob;
      r.estimate = n * p;
      double se = std::sqrt(std::max(0.0, p * (1.0 - p) / ns));
      r.lower = std::max(0.0, n * (p - z_ * se));
      r.upper = n * (p + z_ * se);
      r.empty_selection = r.estimate <= 0;
      break;
    }
    case AggFunc::kSum: {
      r.estimate = n * e.expect;
      double m_eff = std::max(1.0, ns * e.nn_prob);
      double rel = z_ / std::sqrt(m_eff);
      r.lower = r.estimate - std::fabs(r.estimate) * rel;
      r.upper = r.estimate + std::fabs(r.estimate) * rel;
      r.empty_selection = e.nn_prob <= 0;
      break;
    }
    case AggFunc::kAvg: {
      if (e.nn_prob <= 1e-12) {
        r.empty_selection = true;
        r.estimate = r.lower = r.upper =
            std::numeric_limits<double>::quiet_NaN();
      } else {
        r.estimate = e.expect / e.nn_prob;
        double m_eff = std::max(1.0, ns * e.nn_prob);
        double rel = z_ / std::sqrt(m_eff);
        r.lower = r.estimate - std::fabs(r.estimate) * rel;
        r.upper = r.estimate + std::fabs(r.estimate) * rel;
      }
      break;
    }
    default:
      return Status::Unsupported("SPN: aggregation not supported");
  }
  QueryResult result;
  result.groups.push_back({"", r});
  return result;
}

bool SpnBaseline::SubtreeContains(const Node& node, size_t col) {
  if (node.type == Node::Type::kLeaf) return node.leaf.col == col;
  for (const auto& child : node.children) {
    if (SubtreeContains(*child, col)) return true;
  }
  return false;
}

SpnBaseline::Stats SpnBaseline::GetStats() const {
  Stats stats;
  std::function<void(const Node&, int)> walk = [&](const Node& node,
                                                   int depth) {
    stats.depth = std::max(stats.depth, depth);
    switch (node.type) {
      case Node::Type::kSum:
        ++stats.sum_nodes;
        break;
      case Node::Type::kProduct:
        ++stats.product_nodes;
        break;
      case Node::Type::kLeaf:
        ++stats.leaves;
        break;
    }
    for (const auto& c : node.children) walk(*c, depth + 1);
  };
  if (root_) walk(*root_, 0);
  return stats;
}

size_t SpnBaseline::StorageBytes() const {
  size_t bytes = 64;
  std::function<void(const Node&)> walk = [&](const Node& node) {
    bytes += 24;
    if (node.type == Node::Type::kLeaf) {
      bytes += node.leaf.edges.size() * 8 + node.leaf.counts.size() * 4 +
               node.leaf.means.size() * 8 + 24;
    }
    bytes += node.weights.size() * 8;
    for (const auto& c : node.children) walk(*c);
  };
  if (root_) walk(*root_);
  return bytes;
}

}  // namespace pairwisehist
