// Sum-Product Network AQP baseline ("DeepDB-lite").
//
// Reimplements the model family of DeepDB [20] from scratch: structure
// learning that alternates row clustering (sum nodes) and column
// independence partitioning (product nodes), with per-column histogram
// leaves, evaluated by expectation propagation over the tree. Mirrors the
// public DeepDB's query support that the paper measured: COUNT/SUM/AVG,
// conjunctive predicates only (no OR), no MIN/MAX/MEDIAN/VAR, probabilistic
// bounds that tend to be narrow but optimistic. See DESIGN.md §3.2.
#ifndef PAIRWISEHIST_BASELINES_SPN_H_
#define PAIRWISEHIST_BASELINES_SPN_H_

#include <memory>
#include <vector>

#include "baselines/aqp_method.h"
#include "storage/table.h"

namespace pairwisehist {

class SpnBaseline : public AqpMethod {
 public:
  struct Config {
    size_t sample_size = 100000;  ///< rows sampled for structure learning
    size_t min_instances = 512;   ///< stop row-splitting below this
    double corr_threshold = 0.3;  ///< |corr| above which columns stay joint
    size_t leaf_bins = 64;        ///< histogram buckets per leaf
    int max_depth = 12;
    uint64_t seed = 7;
    double confidence = 0.98;     ///< for the root CLT bounds
  };

  SpnBaseline(const Table& table, const Config& config);

  std::string name() const override { return "SPN"; }
  StatusOr<QueryResult> Execute(const Query& query) const override;
  size_t StorageBytes() const override;
  bool ProvidesBounds() const override { return true; }
  bool SupportsQuery(const Query& query) const override;

  /// Structure statistics for documentation/ablation output.
  struct Stats {
    size_t sum_nodes = 0;
    size_t product_nodes = 0;
    size_t leaves = 0;
    int depth = 0;
  };
  Stats GetStats() const;

 private:
  struct Leaf {
    size_t col = 0;
    double null_fraction = 0;
    std::vector<double> edges;   // k+1 (equi-depth over non-null values)
    std::vector<double> counts;  // k
    std::vector<double> means;   // k
    double distinct_per_bucket = 1.0;
  };
  struct Node {
    enum class Type { kSum, kProduct, kLeaf };
    Type type = Type::kLeaf;
    std::vector<std::unique_ptr<Node>> children;
    std::vector<double> weights;  // sum nodes
    Leaf leaf;                    // leaf nodes
  };

  /// A single resolved conjunctive condition.
  struct Cond {
    size_t col;
    CmpOp op;
    double value;
  };

  // prob = P(all conds); expect = E[agg * 1(conds) * 1(agg non-null)];
  // nn_prob = P(all conds and agg non-null).
  struct EvalOut {
    double prob = 1.0;
    double expect = 0.0;
    double nn_prob = 1.0;
  };
  EvalOut Eval(const Node& node, const std::vector<Cond>& conds,
               int agg_col) const;

  static double LeafSelectivity(const Leaf& leaf, CmpOp op, double value);
  static bool SubtreeContains(const Node& node, size_t col);

  std::unique_ptr<Node> root_;
  size_t total_rows_ = 0;
  size_t sample_rows_ = 0;
  double z_ = 2.326;
  std::vector<std::pair<std::string, std::vector<std::string>>> schema_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BASELINES_SPN_H_
