#include "baselines/avi_hist.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pairwisehist {

AviHistogram::AviHistogram(const Table& table, size_t sample_size,
                           size_t buckets, uint64_t seed)
    : total_rows_(table.NumRows()) {
  Table sample = table.Sample(sample_size, seed);
  for (size_t c = 0; c < sample.NumColumns(); ++c) {
    const Column& col = sample.column(c);
    ColumnHist h;
    h.name = col.name();
    std::vector<double> vals;
    vals.reserve(col.non_null_count());
    for (size_t r = 0; r < col.size(); ++r) {
      if (!col.IsNull(r)) vals.push_back(col.Value(r));
    }
    h.non_null_fraction =
        col.size() == 0 ? 1.0
                        : static_cast<double>(vals.size()) / col.size();
    std::sort(vals.begin(), vals.end());
    if (!vals.empty()) {
      size_t k = std::min(buckets, vals.size());
      h.edges.push_back(vals.front());
      size_t prev = 0;
      for (size_t b = 1; b <= k; ++b) {
        size_t idx = std::min(vals.size() - 1, b * vals.size() / k);
        double edge = (b == k) ? vals.back() + 1
                               : vals[idx];
        if (edge <= h.edges.back()) continue;  // merge ties
        size_t end = std::lower_bound(vals.begin() + prev, vals.end(), edge) -
                     vals.begin();
        double sum = 0;
        for (size_t i = prev; i < end; ++i) sum += vals[i];
        size_t n = end - prev;
        h.edges.push_back(edge);
        h.counts.push_back(static_cast<double>(n));
        h.means.push_back(n > 0 ? sum / n : 0.0);
        prev = end;
      }
      size_t distinct = 1;
      for (size_t i = 1; i < vals.size(); ++i) {
        if (vals[i] != vals[i - 1]) ++distinct;
      }
      h.distinct_per_bucket =
          std::max(1.0, static_cast<double>(distinct) /
                            std::max<size_t>(1, h.counts.size()));
    }
    columns_.push_back(std::move(h));
    dicts_.emplace_back(col.name(), col.dictionary());
  }
}

const AviHistogram::ColumnHist* AviHistogram::Find(
    const std::string& name) const {
  for (const auto& h : columns_) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double AviHistogram::Selectivity(const ColumnHist& h, CmpOp op,
                                 double value) const {
  double total = 0;
  for (double c : h.counts) total += c;
  if (total <= 0) return 0.0;
  double satisfied = 0;
  for (size_t b = 0; b < h.counts.size(); ++b) {
    double lo = h.edges[b], hi = h.edges[b + 1];
    double width = std::max(hi - lo, 1e-12);
    double frac = 0;
    switch (op) {
      case CmpOp::kLt:
      case CmpOp::kLe:
        frac = std::clamp((value - lo) / width, 0.0, 1.0);
        break;
      case CmpOp::kGt:
      case CmpOp::kGe:
        frac = std::clamp((hi - value) / width, 0.0, 1.0);
        break;
      case CmpOp::kEq:
        frac = (value >= lo && value < hi)
                   ? 1.0 / h.distinct_per_bucket
                   : 0.0;
        break;
      case CmpOp::kNe:
        frac = (value >= lo && value < hi)
                   ? 1.0 - 1.0 / h.distinct_per_bucket
                   : 1.0;
        break;
    }
    satisfied += h.counts[b] * frac;
  }
  return std::clamp(satisfied / total, 0.0, 1.0);
}

bool AviHistogram::SupportsQuery(const Query& query) const {
  if (query.func != AggFunc::kCount && query.func != AggFunc::kSum &&
      query.func != AggFunc::kAvg) {
    return false;
  }
  if (!query.group_by.empty()) return false;
  // Only conjunctive predicates (the classical AVI setting).
  if (query.where.has_value()) {
    const PredicateNode& root = *query.where;
    if (root.type == PredicateNode::Type::kOr) return false;
    if (root.type == PredicateNode::Type::kAnd) {
      for (const auto& child : root.children) {
        if (child.type != PredicateNode::Type::kCondition) return false;
      }
    }
  }
  return true;
}

StatusOr<QueryResult> AviHistogram::Execute(const Query& query) const {
  if (!SupportsQuery(query)) {
    return Status::Unsupported("AVI-Hist: unsupported query shape");
  }
  // Gather flat conjunctive conditions.
  std::vector<const Condition*> conditions;
  if (query.where.has_value()) {
    const PredicateNode& root = *query.where;
    if (root.type == PredicateNode::Type::kCondition) {
      conditions.push_back(&root.condition);
    } else {
      for (const auto& child : root.children) {
        conditions.push_back(&child.condition);
      }
    }
  }

  double selectivity = 1.0;
  for (const Condition* cond : conditions) {
    const ColumnHist* h = Find(cond->column);
    if (h == nullptr) {
      return Status::NotFound("AVI-Hist: unknown column " + cond->column);
    }
    double literal = cond->value;
    if (cond->is_string) {
      // Resolve category strings through the stored dictionary.
      bool found = false;
      for (const auto& [name, dict] : dicts_) {
        if (name != cond->column) continue;
        for (size_t i = 0; i < dict.size(); ++i) {
          if (dict[i] == cond->text_value) {
            literal = static_cast<double>(i);
            found = true;
            break;
          }
        }
      }
      if (!found) literal = -1;
    }
    selectivity *= h->non_null_fraction *
                   Selectivity(*h, cond->op, literal);
  }

  const ColumnHist* agg =
      query.count_star ? nullptr : Find(query.agg_column);
  if (!query.count_star && agg == nullptr) {
    return Status::NotFound("AVI-Hist: unknown column " + query.agg_column);
  }

  AggResult r;
  double matched = selectivity * total_rows_;
  if (query.func == AggFunc::kCount) {
    double frac = query.count_star ? 1.0 : agg->non_null_fraction;
    // Same-column predicates already include the non-null fraction.
    bool pred_on_agg = false;
    for (const Condition* c : conditions) {
      if (!query.count_star && c->column == query.agg_column) {
        pred_on_agg = true;
      }
    }
    r.estimate = matched * (pred_on_agg ? 1.0 : frac);
    r.empty_selection = r.estimate <= 0;
  } else {
    // AVI: predicates on other columns do not change the aggregation
    // column's distribution; same-column predicates restrict buckets.
    double total = 0, weighted = 0;
    for (size_t b = 0; b < agg->counts.size(); ++b) {
      double w = agg->counts[b];
      for (const Condition* cond : conditions) {
        if (cond->column != agg->name) continue;
        ColumnHist single;
        single.edges = {agg->edges[b], agg->edges[b + 1]};
        single.counts = {1.0};
        single.means = {agg->means[b]};
        single.distinct_per_bucket = agg->distinct_per_bucket;
        w *= Selectivity(single, cond->op, cond->value);
      }
      total += w;
      weighted += w * agg->means[b];
    }
    if (total <= 0) {
      r.empty_selection = true;
      r.estimate = std::numeric_limits<double>::quiet_NaN();
    } else if (query.func == AggFunc::kAvg) {
      r.estimate = weighted / total;
    } else {  // SUM
      bool pred_on_agg = false;
      for (const Condition* c : conditions) {
        if (c->column == agg->name) pred_on_agg = true;
      }
      double mean = weighted / total;
      double count = pred_on_agg
                         ? selectivity * total_rows_
                         : matched * agg->non_null_fraction;
      r.estimate = mean * count;
    }
  }
  r.lower = r.estimate;
  r.upper = r.estimate;
  QueryResult result;
  result.groups.push_back({"", r});
  return result;
}

size_t AviHistogram::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& h : columns_) {
    bytes += h.name.size() + 16;
    bytes += h.edges.size() * 8 + h.counts.size() * 4 + h.means.size() * 8;
  }
  return bytes;
}

}  // namespace pairwisehist
