#include "baselines/dbest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace pairwisehist {

namespace {

constexpr double kInf = 1e300;

double GaussKernel(double u) {
  return std::exp(-0.5 * u * u) / std::sqrt(2.0 * M_PI);
}

// Leave-some-out negative log likelihood of a KDE with bandwidth `h`,
// evaluated on `eval` points against `train` points. This is the expensive
// step that makes DBEst-family training slow; we keep it honest rather than
// shortcutting it.
double KdeCvScore(const std::vector<double>& train,
                  const std::vector<double>& eval, double h) {
  double nll = 0;
  for (double x : eval) {
    double density = 0;
    for (double t : train) {
      density += GaussKernel((x - t) / h);
    }
    density /= train.size() * h;
    nll -= std::log(std::max(density, 1e-12));
  }
  return nll;
}

}  // namespace

Status DbestBaseline::TrainTemplate(const Table& table,
                                    const std::string& agg_column,
                                    const std::string& pred_column) {
  auto key = std::make_pair(agg_column, pred_column);
  if (models_.count(key)) return Status::OK();
  total_rows_ = table.NumRows();

  PH_ASSIGN_OR_RETURN(size_t pred_idx, table.ColumnIndex(pred_column));
  size_t agg_idx = pred_idx;
  if (!agg_column.empty() && agg_column != pred_column) {
    PH_ASSIGN_OR_RETURN(agg_idx, table.ColumnIndex(agg_column));
  }
  const Column& pred_col = table.column(pred_idx);
  const Column& agg_col = table.column(agg_idx);
  dicts_[pred_column] = pred_col.dictionary();

  // Collect training pairs from a sample.
  Table sample = table.Sample(config_.sample_size, config_.seed);
  PH_ASSIGN_OR_RETURN(size_t s_pred, sample.ColumnIndex(pred_column));
  size_t s_agg = s_pred;
  if (!agg_column.empty() && agg_column != pred_column) {
    PH_ASSIGN_OR_RETURN(s_agg, sample.ColumnIndex(agg_column));
  }
  std::vector<double> xs, ys;
  size_t pred_nn = 0;
  for (size_t r = 0; r < sample.NumRows(); ++r) {
    if (sample.column(s_pred).IsNull(r)) continue;
    ++pred_nn;
    if (sample.column(s_agg).IsNull(r)) continue;
    xs.push_back(sample.column(s_pred).Value(r));
    ys.push_back(sample.column(s_agg).Value(r));
  }
  if (xs.empty()) {
    return Status::InvalidArgument("DBEst: no training pairs for template " +
                                   agg_column + "|" + pred_column);
  }
  Model m;
  m.n_pairs = static_cast<double>(xs.size());
  m.pred_non_null = sample.NumRows() == 0
                        ? 1.0
                        : static_cast<double>(pred_nn) / sample.NumRows();
  m.both_non_null = sample.NumRows() == 0
                        ? 1.0
                        : m.n_pairs / sample.NumRows();
  m.x_min = *std::min_element(xs.begin(), xs.end());
  m.x_max = *std::max_element(xs.begin(), xs.end());
  if (m.x_max <= m.x_min) m.x_max = m.x_min + 1.0;
  (void)pred_col;
  (void)agg_col;

  // --- KDE bandwidth selection (the slow part) --------------------------
  double mean = 0, var = 0;
  for (double x : xs) mean += x;
  mean /= xs.size();
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  double sigma = std::sqrt(std::max(var, 1e-12));
  double silverman =
      1.06 * sigma * std::pow(static_cast<double>(xs.size()), -0.2);
  silverman = std::max(silverman, (m.x_max - m.x_min) * 1e-4 + 1e-12);

  // Split train/eval deterministically.
  std::vector<double> train, eval;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i % 5 == 0 ? eval : train).push_back(xs[i]);
  }
  if (train.empty()) train = xs;
  if (eval.empty()) eval = xs;
  if (eval.size() > 1000) eval.resize(1000);
  if (train.size() > 5000) train.resize(5000);

  double best_h = silverman, best_score = kInf;
  for (int c = 0; c < config_.bandwidth_candidates; ++c) {
    double factor = std::pow(
        2.0, -2.0 + 4.0 * c /
                        std::max(1, config_.bandwidth_candidates - 1));
    double h = silverman * factor;
    double score = KdeCvScore(train, eval, h);
    if (score < best_score) {
      best_score = score;
      best_h = h;
    }
  }

  // --- Density grid ------------------------------------------------------
  m.density.assign(config_.grid_points, 0.0);
  double width = m.x_max - m.x_min;
  for (size_t g = 0; g < config_.grid_points; ++g) {
    double x = m.x_min + width * (g + 0.5) / config_.grid_points;
    double d = 0;
    for (double t : xs) d += GaussKernel((x - t) / best_h);
    m.density[g] = d / (xs.size() * best_h);
  }
  // Normalize so the grid integrates to one over [x_min, x_max].
  double integral = 0;
  for (double d : m.density) integral += d * width / config_.grid_points;
  if (integral > 0) {
    for (double& d : m.density) d /= integral;
  }

  // --- Regression knots (equal-count buckets) ----------------------------
  std::vector<size_t> order(xs.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });
  size_t k = std::min<size_t>(config_.regression_knots, xs.size());
  for (size_t b = 0; b < k; ++b) {
    size_t lo = b * xs.size() / k;
    size_t hi = (b + 1) * xs.size() / k;
    if (hi <= lo) continue;
    double sx = 0, sy = 0;
    for (size_t i = lo; i < hi; ++i) {
      sx += xs[order[i]];
      sy += ys[order[i]];
    }
    m.reg_x.push_back(sx / (hi - lo));
    m.reg_y.push_back(sy / (hi - lo));
  }
  models_[key] = std::move(m);
  return Status::OK();
}

StatusOr<size_t> DbestBaseline::TrainForWorkload(
    const Table& table, const std::vector<Query>& workload) {
  size_t trained = 0;
  for (const Query& q : workload) {
    if (!SupportsQuery(q)) continue;
    std::vector<std::string> cols = q.PredicateColumns();
    std::string pred = cols.empty() ? q.agg_column : cols[0];
    std::string agg = q.count_star ? pred : q.agg_column;
    Status st = TrainTemplate(table, agg, pred);
    if (st.ok()) ++trained;
  }
  return trained;
}

double DbestBaseline::RegressionAt(const Model& m, double x) {
  if (m.reg_x.empty()) return 0.0;
  if (x <= m.reg_x.front()) return m.reg_y.front();
  if (x >= m.reg_x.back()) return m.reg_y.back();
  auto it = std::lower_bound(m.reg_x.begin(), m.reg_x.end(), x);
  size_t hi = static_cast<size_t>(it - m.reg_x.begin());
  size_t lo = hi - 1;
  double t = (x - m.reg_x[lo]) / (m.reg_x[hi] - m.reg_x[lo]);
  return m.reg_y[lo] + t * (m.reg_y[hi] - m.reg_y[lo]);
}

double DbestBaseline::Integrate(const Model& m, double lo, double hi,
                                bool weighted) {
  lo = std::max(lo, m.x_min);
  hi = std::min(hi, m.x_max);
  if (hi <= lo) return 0.0;
  const size_t n = m.density.size();
  const double width = m.x_max - m.x_min;
  const double step = width / n;
  double acc = 0;
  for (size_t g = 0; g < n; ++g) {
    double cell_lo = m.x_min + g * step;
    double cell_hi = cell_lo + step;
    double overlap = std::min(hi, cell_hi) - std::max(lo, cell_lo);
    if (overlap <= 0) continue;
    double x = (cell_lo + cell_hi) / 2;
    double w = weighted ? RegressionAt(m, x) : 1.0;
    acc += m.density[g] * w * overlap;
  }
  return acc;
}

bool DbestBaseline::SupportsQuery(const Query& query) const {
  if (query.func != AggFunc::kCount && query.func != AggFunc::kSum &&
      query.func != AggFunc::kAvg) {
    return false;
  }
  if (!query.group_by.empty()) return false;
  // Exactly one predicate condition on one column; at most two columns in
  // the whole query (the paper's observed DBEst++ limitations).
  if (!query.where.has_value()) return false;
  const PredicateNode& root = *query.where;
  if (root.type != PredicateNode::Type::kCondition) return false;
  if (root.condition.op == CmpOp::kNe) return false;
  return true;
}

StatusOr<std::pair<std::string, std::pair<double, double>>>
DbestBaseline::PredRange(const Query& query, const Table*) const {
  const Condition& c = query.where->condition;
  double value = c.value;
  if (c.is_string) {
    auto it = dicts_.find(c.column);
    value = -1;
    if (it != dicts_.end()) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i] == c.text_value) {
          value = static_cast<double>(i);
          break;
        }
      }
    }
  }
  double lo = -kInf, hi = kInf;
  switch (c.op) {
    case CmpOp::kLt:
    case CmpOp::kLe:
      hi = value;
      break;
    case CmpOp::kGt:
    case CmpOp::kGe:
      lo = value;
      break;
    case CmpOp::kEq:
      // Model a point predicate as a narrow band around the value.
      lo = value - 0.5;
      hi = value + 0.5;
      break;
    case CmpOp::kNe:
      return Status::Unsupported("DBEst: != not supported");
  }
  return std::make_pair(c.column, std::make_pair(lo, hi));
}

StatusOr<QueryResult> DbestBaseline::Execute(const Query& query) const {
  if (!SupportsQuery(query)) {
    return Status::Unsupported("DBEst: unsupported query shape");
  }
  PH_ASSIGN_OR_RETURN(auto pred_range, PredRange(query, nullptr));
  const std::string& pred = pred_range.first;
  std::string agg = query.count_star ? pred : query.agg_column;
  auto it = models_.find(std::make_pair(agg, pred));
  if (it == models_.end()) {
    return Status::NotFound("DBEst: no model for template " + agg + "|" +
                            pred);
  }
  const Model& m = it->second;
  double lo = pred_range.second.first;
  double hi = pred_range.second.second;

  AggResult r;
  double mass = Integrate(m, lo, hi, /*weighted=*/false);
  double rows_with_pred = total_rows_ * m.pred_non_null;
  switch (query.func) {
    case AggFunc::kCount: {
      double base = query.count_star ? rows_with_pred
                                     : total_rows_ * m.both_non_null;
      r.estimate = base * mass;
      r.empty_selection = r.estimate <= 0;
      break;
    }
    case AggFunc::kSum: {
      double weighted = Integrate(m, lo, hi, /*weighted=*/true);
      r.estimate = total_rows_ * m.both_non_null * weighted;
      r.empty_selection = mass <= 0;
      break;
    }
    case AggFunc::kAvg: {
      if (mass <= 1e-12) {
        r.empty_selection = true;
        r.estimate = std::numeric_limits<double>::quiet_NaN();
      } else {
        r.estimate = Integrate(m, lo, hi, /*weighted=*/true) / mass;
      }
      break;
    }
    default:
      return Status::Unsupported("DBEst: aggregation not supported");
  }
  r.lower = r.estimate;  // DBEst++ provides no bounds
  r.upper = r.estimate;
  QueryResult result;
  result.groups.push_back({"", r});
  return result;
}

size_t DbestBaseline::StorageBytes() const {
  size_t bytes = 0;
  for (const auto& [key, m] : models_) {
    bytes += key.first.size() + key.second.size() + 48;
    bytes += m.density.size() * 8;
    bytes += (m.reg_x.size() + m.reg_y.size()) * 8;
  }
  return bytes;
}

}  // namespace pairwisehist
