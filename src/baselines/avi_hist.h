// Classical per-column equi-depth histograms with the attribute-value-
// independence (AVI) assumption — the textbook selectivity-estimation
// synopsis (the family the paper's Section 2 discusses before
// multi-dimensional histograms). Used as the ablation reference that shows
// what PairwiseHist's pairwise histograms and hypothesis-test refinement
// buy over naive 1-d histograms.
#ifndef PAIRWISEHIST_BASELINES_AVI_HIST_H_
#define PAIRWISEHIST_BASELINES_AVI_HIST_H_

#include <vector>

#include "baselines/aqp_method.h"
#include "storage/table.h"

namespace pairwisehist {

class AviHistogram : public AqpMethod {
 public:
  /// Builds `buckets`-bucket equi-depth histograms per column from a
  /// `sample_size`-row sample.
  AviHistogram(const Table& table, size_t sample_size, size_t buckets,
               uint64_t seed);

  std::string name() const override { return "AVI-Hist"; }
  StatusOr<QueryResult> Execute(const Query& query) const override;
  size_t StorageBytes() const override;
  bool SupportsQuery(const Query& query) const override;

 private:
  struct ColumnHist {
    std::string name;
    std::vector<double> edges;    // k+1
    std::vector<double> counts;   // k (sample counts)
    std::vector<double> means;    // k (mean value per bucket)
    double non_null_fraction = 1.0;
    double distinct_per_bucket = 1.0;
  };

  /// Fraction of the column's non-null values satisfying the condition.
  double Selectivity(const ColumnHist& h, CmpOp op, double value) const;
  const ColumnHist* Find(const std::string& name) const;

  std::vector<ColumnHist> columns_;
  size_t total_rows_;
  // Categorical dictionaries for literal resolution.
  std::vector<std::pair<std::string, std::vector<std::string>>> dicts_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BASELINES_AVI_HIST_H_
