// Per-template density + regression AQP baseline ("DBEst-lite").
//
// Reimplements the model family of DBEst [40] / DBEst++ [21] from scratch:
// one model per query template (aggregation column, predicate column),
// combining a kernel density estimate of the predicate column with a
// binned local regression E[agg | pred]. Mirrors the published systems'
// defining behaviours that the paper measures: a separate model per
// template (so storage grows with the workload), expensive training
// (bandwidth cross-validation), COUNT/SUM/AVG only, at most two columns per
// query, a single range/equality predicate, no OR, no bounds.
#ifndef PAIRWISEHIST_BASELINES_DBEST_H_
#define PAIRWISEHIST_BASELINES_DBEST_H_

#include <map>
#include <string>
#include <vector>

#include "baselines/aqp_method.h"
#include "storage/table.h"

namespace pairwisehist {

class DbestBaseline : public AqpMethod {
 public:
  struct Config {
    size_t sample_size = 10000;     ///< training rows per template
    size_t grid_points = 256;       ///< density grid resolution
    size_t regression_knots = 64;   ///< regression buckets
    int bandwidth_candidates = 10;  ///< CV grid for the KDE bandwidth
    uint64_t seed = 9;
  };

  explicit DbestBaseline(Config config) : config_(config) {}

  /// Trains the model for template (agg_column, pred_column). Idempotent.
  /// Training is deliberately faithful to the family's cost profile:
  /// bandwidth selection cross-validates over a candidate grid.
  Status TrainTemplate(const Table& table, const std::string& agg_column,
                       const std::string& pred_column);

  /// Trains every template a workload of queries needs (skipping
  /// unsupported queries). Returns the number of templates trained.
  StatusOr<size_t> TrainForWorkload(const Table& table,
                                    const std::vector<Query>& workload);

  std::string name() const override { return "DBEst"; }
  StatusOr<QueryResult> Execute(const Query& query) const override;
  size_t StorageBytes() const override;
  bool SupportsQuery(const Query& query) const override;

  size_t num_templates() const { return models_.size(); }

 private:
  struct Model {
    double x_min = 0, x_max = 0;
    std::vector<double> density;     // grid_points, normalized to integrate 1
    std::vector<double> reg_x;       // knot centres
    std::vector<double> reg_y;       // E[agg | x] at knots
    double n_pairs = 0;              // training pairs (both non-null)
    double pred_non_null = 1.0;      // fraction of rows with pred non-null
    double both_non_null = 1.0;      // fraction with pred & agg non-null
  };

  /// Integral of the density over [lo, hi], optionally weighted by the
  /// regression mean.
  static double Integrate(const Model& m, double lo, double hi,
                          bool weighted);
  static double RegressionAt(const Model& m, double x);

  /// Extracts (pred column, interval) for a supported query.
  StatusOr<std::pair<std::string, std::pair<double, double>>> PredRange(
      const Query& query, const Table* dict_lookup) const;

  Config config_;
  size_t total_rows_ = 0;
  std::map<std::pair<std::string, std::string>, Model> models_;
  // Dictionaries captured at training time for string literals.
  std::map<std::string, std::vector<std::string>> dicts_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BASELINES_DBEST_H_
