// Common interface for every AQP method in the evaluation: PairwiseHist
// itself plus the comparison baselines (sampling, AVI histograms, the SPN
// "DeepDB-lite" and the per-template "DBEst-lite"). The harness treats all
// of them uniformly when reproducing the paper's tables and figures.
#ifndef PAIRWISEHIST_BASELINES_AQP_METHOD_H_
#define PAIRWISEHIST_BASELINES_AQP_METHOD_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "core/pairwise_hist.h"
#include "query/ast.h"
#include "query/engine.h"

namespace pairwisehist {

/// Abstract AQP method: a fitted synopsis/model that answers queries.
class AqpMethod {
 public:
  virtual ~AqpMethod() = default;

  /// Display name, e.g. "PairwiseHist", "SPN".
  virtual std::string name() const = 0;

  /// Answers a query; Unsupported for query shapes the method cannot
  /// handle (the paper reports per-method supported-query subsets).
  virtual StatusOr<QueryResult> Execute(const Query& query) const = 0;

  /// Synopsis/model size in bytes.
  virtual size_t StorageBytes() const = 0;

  /// True if the method returns meaningful lower/upper bounds.
  virtual bool ProvidesBounds() const { return false; }

  /// Cheap static check whether the query shape is supported (used to
  /// build the per-method supported-query subsets for Fig. 10).
  virtual bool SupportsQuery(const Query& query) const {
    (void)query;
    return true;
  }
};

/// PairwiseHist exposed through the common interface. Owns the synopsis.
class PairwiseHistMethod : public AqpMethod {
 public:
  explicit PairwiseHistMethod(PairwiseHist synopsis)
      : synopsis_(std::move(synopsis)), engine_(&synopsis_) {}

  std::string name() const override { return "PairwiseHist"; }
  StatusOr<QueryResult> Execute(const Query& query) const override {
    return engine_.Execute(query);
  }
  size_t StorageBytes() const override { return synopsis_.StorageBytes(); }
  bool ProvidesBounds() const override { return true; }

  const PairwiseHist& synopsis() const { return synopsis_; }

 private:
  PairwiseHist synopsis_;
  AqpEngine engine_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_BASELINES_AQP_METHOD_H_
