// Generic W-lane kernel bodies (see simd.h for the semantics contract).
//
// Each kernel keeps W scalar lane accumulators with element t assigned to
// lane t % W: a scalar head up to the first absolute W-boundary, a blocked
// body the compiler can vectorize under the translation unit's ISA flags,
// and a scalar tail. The numerical result depends only on W — whether the
// body actually vectorizes changes speed, never bits — which is what makes
// the per-ISA tables deterministic by construction.
//
// Instantiated with W = 1 (scalar table) and W = 2 (SSE2/NEON tier) in
// simd.cc, and with W = 4 by simd_avx2.cc for the blocks its intrinsics
// don't cover (prefix-scan boundary blocks).
#ifndef PAIRWISEHIST_COMMON_SIMD_GENERIC_H_
#define PAIRWISEHIST_COMMON_SIMD_GENERIC_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/simd.h"

namespace pairwisehist {
namespace simd_detail {

/// Shared run-walk driver for the batched Eq.-29 weighting
/// (KernelOps::weights_batch): one place owns the gap / fully-covered-run
/// / tail walk over every row; each tier supplies its own per-range
/// weighting kernels. This keeps the generic and AVX2 tables from
/// carrying divergent copies of the walk — the walk itself is scalar
/// dispatch, all SIMD lives in the supplied kernels.
inline void WeightsBatchWalk(
    const WeightRow* rows, size_t n_rows, double z, double fpc, int widen,
    void (*nowiden_fn)(const uint64_t*, const double*, const double*,
                       const double*, double*, double*, double*, size_t,
                       size_t),
    void (*widen_fn)(const uint64_t*, const double*, const double*,
                     const double*, double, double, double*, double*,
                     double*, size_t, size_t),
    void (*run_fn)(const uint64_t*, double*, double*, double*, size_t,
                   size_t)) {
  for (size_t r = 0; r < n_rows; ++r) {
    const WeightRow& row = rows[r];
    auto weigh = [&](size_t b, size_t e) {
      if (b >= e) return;
      if (widen != 0) {
        widen_fn(row.h, row.p, row.pl, row.ph, z, fpc, row.w, row.lo,
                 row.hi, b, e);
      } else {
        nowiden_fn(row.h, row.p, row.pl, row.ph, row.w, row.lo, row.hi, b,
                   e);
      }
    };
    size_t t = row.begin;
    for (size_t i = 0; i < row.n_runs; ++i) {
      const size_t f0 = row.runs[2 * i];
      const size_t f1 = row.runs[2 * i + 1];
      weigh(t, f0);
      run_fn(row.h, row.w, row.lo, row.hi, f0, f1);
      t = f1;
    }
    weigh(t, row.end);
  }
}

/// Fixed lane-combine order, shared by the generic bodies and the AVX2
/// intrinsics: pairwise for W = 4 ((l0+l1) + (l2+l3)), left-to-right
/// otherwise.
template <int W>
inline double CombineLanes(const double* acc) {
  if (W == 4) return (acc[0] + acc[1]) + (acc[2] + acc[3]);
  double s = acc[0];
  for (int j = 1; j < W; ++j) s += acc[j];
  return s;
}

template <int W>
struct Kernels {
  static double Sum(const double* x, size_t begin, size_t end) {
    double acc[W] = {};
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) acc[t % W] += x[t];
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) acc[j] += x[t + j];
    }
    for (; t < end; ++t) acc[t % W] += x[t];
    return CombineLanes<W>(acc);
  }

  static void Sum3(const double* a, const double* b, const double* c,
                   size_t begin, size_t end, double out[3]) {
    double aa[W] = {}, ab[W] = {}, ac[W] = {};
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) {
      aa[t % W] += a[t];
      ab[t % W] += b[t];
      ac[t % W] += c[t];
    }
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) {
        aa[j] += a[t + j];
        ab[j] += b[t + j];
        ac[j] += c[t + j];
      }
    }
    for (; t < end; ++t) {
      aa[t % W] += a[t];
      ab[t % W] += b[t];
      ac[t % W] += c[t];
    }
    out[0] = CombineLanes<W>(aa);
    out[1] = CombineLanes<W>(ab);
    out[2] = CombineLanes<W>(ac);
  }

  static double Dot(const double* w, const double* x, size_t begin,
                    size_t end) {
    double acc[W] = {};
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) acc[t % W] += w[t] * x[t];
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) acc[j] += w[t + j] * x[t + j];
    }
    for (; t < end; ++t) acc[t % W] += w[t] * x[t];
    return CombineLanes<W>(acc);
  }

  static void Dot3(const double* w, const double* x, const double* y,
                   size_t begin, size_t end, double out[3]) {
    double aw[W] = {}, ax[W] = {}, ay[W] = {};
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) {
      aw[t % W] += w[t];
      ax[t % W] += w[t] * x[t];
      ay[t % W] += w[t] * y[t];
    }
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) {
        aw[j] += w[t + j];
        ax[j] += w[t + j] * x[t + j];
        ay[j] += w[t + j] * y[t + j];
      }
    }
    for (; t < end; ++t) {
      aw[t % W] += w[t];
      ax[t % W] += w[t] * x[t];
      ay[t % W] += w[t] * y[t];
    }
    out[0] = CombineLanes<W>(aw);
    out[1] = CombineLanes<W>(ax);
    out[2] = CombineLanes<W>(ay);
  }

  static void Moments(const double* w, const double* x, size_t begin,
                      size_t end, double out[3]) {
    double aw[W] = {}, a1[W] = {}, a2[W] = {};
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) {
      double wx = w[t] * x[t];
      aw[t % W] += w[t];
      a1[t % W] += wx;
      a2[t % W] += wx * x[t];
    }
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) {
        double wx = w[t + j] * x[t + j];
        aw[j] += w[t + j];
        a1[j] += wx;
        a2[j] += wx * x[t + j];
      }
    }
    for (; t < end; ++t) {
      double wx = w[t] * x[t];
      aw[t % W] += w[t];
      a1[t % W] += wx;
      a2[t % W] += wx * x[t];
    }
    out[0] = CombineLanes<W>(aw);
    out[1] = CombineLanes<W>(a1);
    out[2] = CombineLanes<W>(a2);
  }

  static void CornerBounds(const double* wlo, const double* whi,
                           const double* vlo, const double* vhi, size_t begin,
                           size_t end, double out[2]) {
    double alo[W] = {}, ahi[W] = {};
    auto corner = [](double wl, double wh, double vl, double vh, double* lo,
                     double* hi) {
      double p1 = wl * vl, p2 = wl * vh, p3 = wh * vl, p4 = wh * vh;
      *lo += std::min(std::min(std::min(p1, p2), p3), p4);
      *hi += std::max(std::max(std::max(p1, p2), p3), p4);
    };
    size_t t = begin;
    for (; t < end && t % W != 0; ++t) {
      corner(wlo[t], whi[t], vlo[t], vhi[t], &alo[t % W], &ahi[t % W]);
    }
    for (; t + W <= end; t += W) {
      for (int j = 0; j < W; ++j) {
        corner(wlo[t + j], whi[t + j], vlo[t + j], vhi[t + j], &alo[j],
               &ahi[j]);
      }
    }
    for (; t < end; ++t) {
      corner(wlo[t], whi[t], vlo[t], vhi[t], &alo[t % W], &ahi[t % W]);
    }
    out[0] = CombineLanes<W>(alo);
    out[1] = CombineLanes<W>(ahi);
  }

  /// One absolute block [block, block + W) of the inclusive scan: lanes
  /// outside [begin, end) count as zero, the in-block combination follows
  /// the Hillis–Steele doubling pattern (l[j] += l[j - s] for s = 1, 2,
  /// ... simultaneously per step), the carry advances by the full block
  /// sum. Exposed so simd_avx2.cc can reuse it for boundary blocks.
  static void PrefixBlock(const double* x, size_t block, size_t begin,
                          size_t end, double* carry, double* out) {
    double l[W];
    for (int j = 0; j < W; ++j) {
      size_t t = block + j;
      l[j] = (t >= begin && t < end) ? x[t] : 0.0;
    }
    for (int s = 1; s < W; s <<= 1) {
      double prev[W];
      for (int j = 0; j < W; ++j) prev[j] = l[j];
      for (int j = s; j < W; ++j) l[j] = prev[j] + prev[j - s];
    }
    for (int j = 0; j < W; ++j) {
      size_t t = block + j;
      if (t >= begin && t < end) out[t] = *carry + l[j];
    }
    *carry = *carry + l[W - 1];
  }

  static void PrefixSum(const double* x, size_t begin, size_t end,
                        double* out) {
    if (W == 1) {
      double carry = 0.0;
      for (size_t t = begin; t < end; ++t) {
        carry += x[t];
        out[t] = carry;
      }
      return;
    }
    double carry = 0.0;
    for (size_t block = begin - begin % W; block < end; block += W) {
      PrefixBlock(x, block, begin, end, &carry, out);
    }
  }

  static size_t FindFirstGt(const double* x, size_t begin, size_t end,
                            double threshold) {
    for (size_t t = begin; t < end; ++t) {
      if (x[t] > threshold) return t;
    }
    return kKernelNotFound;
  }

  static size_t FindLastGt(const double* x, size_t begin, size_t end,
                           double threshold) {
    for (size_t t = end; t-- > begin;) {
      if (x[t] > threshold) return t;
    }
    return kKernelNotFound;
  }

  static void Mul3(double* ap, double* al, double* ah, const double* bp,
                   const double* bl, const double* bh, size_t begin,
                   size_t end) {
    for (size_t t = begin; t < end; ++t) {
      ap[t] *= bp[t];
      al[t] *= bl[t];
      ah[t] *= bh[t];
    }
  }

  static void OrMul3(double* ap, double* al, double* ah, const double* bp,
                     const double* bl, const double* bh, size_t begin,
                     size_t end) {
    for (size_t t = begin; t < end; ++t) {
      ap[t] *= 1.0 - bp[t];
      al[t] *= 1.0 - bh[t];  // complement swaps the bounds
      ah[t] *= 1.0 - bl[t];
    }
  }

  static void Complement3(double* p, double* lo, double* hi, size_t begin,
                          size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double np = 1.0 - p[t];
      double nlo = 1.0 - hi[t];
      double nhi = 1.0 - lo[t];
      p[t] = np;
      lo[t] = nlo;
      hi[t] = nhi;
    }
  }

  static void CountsToWeights3(const uint64_t* h, double* w, double* lo,
                               double* hi, size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double hd = static_cast<double>(h[t]);
      w[t] = hd;
      lo[t] = hd;
      hi[t] = hd;
    }
  }

  static void WeightsNoWiden(const uint64_t* h, const double* p,
                             const double* pl, const double* ph, double* w,
                             double* lo, double* hi, size_t begin,
                             size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double hd = static_cast<double>(h[t]);
      w[t] = hd * p[t];
      lo[t] = std::clamp(hd * pl[t], 0.0, hd);
      hi[t] = std::clamp(hd * ph[t], 0.0, hd);
    }
  }

  static void NormProb3(const uint64_t* h, const double* np,
                        const double* nlo, const double* nhi, double* p,
                        double* lo, double* hi, size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double hd = static_cast<double>(h[t]);
      if (hd <= 0) {
        p[t] = lo[t] = hi[t] = 0.0;
        continue;
      }
      double vp = std::clamp(np[t] / hd, 0.0, 1.0);
      double vlo = std::clamp(nlo[t] / hd, 0.0, vp);
      double vhi = std::clamp(nhi[t] / hd, vp, 1.0);
      p[t] = vp;
      lo[t] = vlo;
      hi[t] = vhi;
    }
  }

  static void GatherDot3(const uint64_t* cnt, const uint32_t* col,
                         const double* b0, const double* b1, const double* b2,
                         size_t begin, size_t end, double out[3]) {
    double a0[W] = {}, a1[W] = {}, a2[W] = {};
    size_t e = begin;
    for (; e < end && e % W != 0; ++e) {
      double c = static_cast<double>(cnt[e]);
      size_t t = col[e];
      a0[e % W] += c * b0[t];
      a1[e % W] += c * b1[t];
      a2[e % W] += c * b2[t];
    }
    for (; e + W <= end; e += W) {
      for (int j = 0; j < W; ++j) {
        double c = static_cast<double>(cnt[e + j]);
        size_t t = col[e + j];
        a0[j] += c * b0[t];
        a1[j] += c * b1[t];
        a2[j] += c * b2[t];
      }
    }
    for (; e < end; ++e) {
      double c = static_cast<double>(cnt[e]);
      size_t t = col[e];
      a0[e % W] += c * b0[t];
      a1[e % W] += c * b1[t];
      a2[e % W] += c * b2[t];
    }
    out[0] = CombineLanes<W>(a0);
    out[1] = CombineLanes<W>(a1);
    out[2] = CombineLanes<W>(a2);
  }

  static void RunMass3(const uint64_t* pre_b, const uint64_t* pre_e,
                       double* ap, double* al, double* ah, size_t begin,
                       size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double m = static_cast<double>(pre_e[t] - pre_b[t]);
      ap[t] += m;
      al[t] += m;
      ah[t] += m;
    }
  }

  static void CellAxpy3(const uint64_t* pre_b, const uint64_t* pre_e,
                        double bp, double bl, double bh, double* ap,
                        double* al, double* ah, size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double m = static_cast<double>(pre_e[t] - pre_b[t]);
      ap[t] += m * bp;
      al[t] += m * bl;
      ah[t] += m * bh;
    }
  }

  static void WeightsBatch(const WeightRow* rows, size_t n_rows, double z,
                           double fpc, int widen) {
    WeightsBatchWalk(rows, n_rows, z, fpc, widen, &WeightsNoWiden,
                     &WeightsWiden, &CountsToWeights3);
  }

  static void WeightsWiden(const uint64_t* h, const double* p,
                           const double* pl, const double* ph, double z,
                           double fpc, double* w, double* lo, double* hi,
                           size_t begin, size_t end) {
    for (size_t t = begin; t < end; ++t) {
      double hd = static_cast<double>(h[t]);
      w[t] = hd * p[t];
      double l = hd * pl[t];
      double u = hd * ph[t];
      if (hd > 0) {
        double beta_lo = std::clamp(l / hd, 0.0, 1.0);
        double beta_hi = std::clamp(u / hd, 0.0, 1.0);
        l -= z * std::sqrt(hd * beta_lo * (1.0 - beta_lo) * fpc);
        u += z * std::sqrt(hd * beta_hi * (1.0 - beta_hi) * fpc);
      }
      lo[t] = std::clamp(l, 0.0, hd);
      hi[t] = std::clamp(u, 0.0, hd);
    }
  }
};

/// Fills a KernelOps table from one instantiation.
template <int W>
constexpr KernelOps MakeTable(const char* name) {
  KernelOps ops{};
  ops.name = name;
  ops.lanes = W;
  ops.sum = &Kernels<W>::Sum;
  ops.sum3 = &Kernels<W>::Sum3;
  ops.dot = &Kernels<W>::Dot;
  ops.dot3 = &Kernels<W>::Dot3;
  ops.moments = &Kernels<W>::Moments;
  ops.corner_bounds = &Kernels<W>::CornerBounds;
  ops.prefix_sum = &Kernels<W>::PrefixSum;
  ops.find_first_gt = &Kernels<W>::FindFirstGt;
  ops.find_last_gt = &Kernels<W>::FindLastGt;
  ops.mul3 = &Kernels<W>::Mul3;
  ops.or_mul3 = &Kernels<W>::OrMul3;
  ops.complement3 = &Kernels<W>::Complement3;
  ops.counts_to_weights3 = &Kernels<W>::CountsToWeights3;
  ops.weights_nowiden = &Kernels<W>::WeightsNoWiden;
  ops.weights_widen = &Kernels<W>::WeightsWiden;
  ops.norm_prob3 = &Kernels<W>::NormProb3;
  ops.gather_dot3 = &Kernels<W>::GatherDot3;
  ops.run_mass3 = &Kernels<W>::RunMass3;
  ops.cell_axpy3 = &Kernels<W>::CellAxpy3;
  ops.weights_batch = &Kernels<W>::WeightsBatch;
  return ops;
}

}  // namespace simd_detail
}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_SIMD_GENERIC_H_
