// VecView<T>: the storage cell behind every histogram array — either an
// owning std::vector<T> or a borrowed read-only span into memory someone
// else keeps alive (a memory-mapped PWS3 synopsis file).
//
// The two modes sit behind one vector-like interface so the execution
// layer reads flat arrays without knowing where they live:
//  - const access (data/size/operator[]/begin/end) never allocates and is
//    identical in both modes;
//  - any mutating call (resize, assign, push_back, non-const operator[],
//    mut_data, vec) first *promotes* a borrowed view to a private owned
//    copy — copy-on-write, so the legacy kMutateBins append path can fold
//    rows into a mapped segment and only then pays for the copy.
//
// Lifetime: a borrowed VecView does NOT keep its backing memory alive.
// The object that binds views (SynopsisSet's PWS3 open path) must hold the
// mapping (see PairwiseHist's backing handle) for as long as any borrowed
// view can be read.
#ifndef PAIRWISEHIST_COMMON_VEC_VIEW_H_
#define PAIRWISEHIST_COMMON_VEC_VIEW_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace pairwisehist {

namespace internal {
/// Called once per borrowed→owned promotion, BEFORE the bytes are copied,
/// with the borrowed source range. The PWS3 integrity layer installs a
/// hook here that checksum-verifies the mapped blocks a copy-on-write
/// promotion reads from; with no hook installed this is one relaxed
/// atomic load. Defined in vec_view.cc.
void NotifyVecViewPromotion(const void* data, size_t bytes);
using VecViewPromotionHook = void (*)(const void* data, size_t bytes);
void SetVecViewPromotionHook(VecViewPromotionHook hook);
}  // namespace internal

template <typename T>
class VecView {
 public:
  VecView() = default;
  VecView(std::vector<T> v) : own_(std::move(v)) {}  // NOLINT(runtime/explicit)

  VecView(const VecView& o) { *this = o; }
  VecView& operator=(const VecView& o) {
    if (this == &o) return *this;
    own_ = o.own_;
    view_ = o.view_;  // a copy of a borrow is another borrow
    view_size_ = o.view_size_;
    return *this;
  }
  VecView(VecView&& o) noexcept { *this = std::move(o); }
  VecView& operator=(VecView&& o) noexcept {
    if (this == &o) return *this;
    own_ = std::move(o.own_);
    view_ = o.view_;
    view_size_ = o.view_size_;
    o.own_.clear();
    o.view_ = nullptr;
    o.view_size_ = 0;
    return *this;
  }

  VecView& operator=(std::vector<T> v) {
    own_ = std::move(v);
    view_ = nullptr;
    view_size_ = 0;
    return *this;
  }

  /// Borrows [data, data + n) without copying. The caller guarantees the
  /// memory outlives every read through this view.
  void BindView(const T* data, size_t n) {
    own_.clear();
    own_.shrink_to_fit();
    view_ = data;
    view_size_ = n;
  }

  bool borrowed() const { return view_ != nullptr; }

  // ---- Const access (no allocation, identical in both modes) ------------
  const T* data() const { return borrowed() ? view_ : own_.data(); }
  size_t size() const { return borrowed() ? view_size_ : own_.size(); }
  bool empty() const { return size() == 0; }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  operator std::span<const T>() const { return {data(), size()}; }

  // ---- Mutation (promotes a borrow to an owned copy first) --------------
  T& operator[](size_t i) { return EnsureOwned()[i]; }
  T* mut_data() { return EnsureOwned().data(); }
  T* begin_mut() { return mut_data(); }
  void resize(size_t n) { EnsureOwned().resize(n); }
  void resize(size_t n, const T& v) { EnsureOwned().resize(n, v); }
  void assign(size_t n, const T& v) { EnsureOwned().assign(n, v); }
  template <typename It>
  void assign(It first, It last) {
    EnsureOwned().assign(first, last);
  }
  void push_back(const T& v) { EnsureOwned().push_back(v); }
  void reserve(size_t n) { EnsureOwned().reserve(n); }
  void clear() {
    own_.clear();
    view_ = nullptr;
    view_size_ = 0;
  }
  /// The underlying owned vector (promoting if borrowed), for bulk ops.
  std::vector<T>& vec() { return EnsureOwned(); }

  /// Element-wise equality, mode-agnostic (a borrow equals an owned copy).
  friend bool operator==(const VecView& a, const VecView& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const VecView& a, const std::vector<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<T>& a, const VecView& b) {
    return b == a;
  }

 private:
  std::vector<T>& EnsureOwned() {
    if (borrowed()) {
      internal::NotifyVecViewPromotion(view_, view_size_ * sizeof(T));
      own_.assign(view_, view_ + view_size_);
      view_ = nullptr;
      view_size_ = 0;
    }
    return own_;
  }

  std::vector<T> own_;
  const T* view_ = nullptr;  ///< non-null iff borrowed
  size_t view_size_ = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_VEC_VIEW_H_
