#include "common/parallel.h"

#include <algorithm>

namespace pairwisehist {

void ParallelFor(size_t n, unsigned nthreads,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (nthreads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    nthreads = hw > 0 ? hw : 1;
  }
  nthreads = static_cast<unsigned>(std::min<size_t>(nthreads, n));
  if (nthreads <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(nthreads - 1);
  for (unsigned t = 0; t + 1 < nthreads; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
}

TaskPool::TaskPool(unsigned nthreads) {
  if (nthreads == 0) {
    unsigned hw = std::thread::hardware_concurrency();
    nthreads = hw > 0 ? hw : 1;
  }
  workers_.reserve(nthreads > 0 ? nthreads - 1 : 0);
  for (unsigned t = 0; t + 1 < nthreads; ++t) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void TaskPool::RunJob(const std::shared_ptr<Job>& job) {
  const size_t n = job->n;
  for (;;) {
    size_t i = job->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) break;
    (*job->fn)(i);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void TaskPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&]() { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    // A worker that overslept its generation gets the current job (or an
    // exhausted one): every job carries its own counters, so stale workers
    // can never touch a newer job's indices.
    if (job != nullptr) RunJob(job);
  }
}

void TaskPool::Run(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // No workers, or another job already in flight: execute the whole range
  // on the calling thread. Correctness does not depend on who runs which
  // index, only that each runs exactly once.
  std::unique_lock<std::mutex> busy(run_mu_, std::try_to_lock);
  if (workers_.empty() || !busy.owns_lock()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  cv_.notify_all();
  RunJob(job);
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&]() {
      return job->done.load(std::memory_order_acquire) == n;
    });
    job_.reset();
  }
}

}  // namespace pairwisehist
