// Deterministic fork-join parallelism shared by synopsis construction and
// cross-segment query execution.
//
// Both helpers run fn(0) .. fn(n-1) with workers pulling indices from a
// shared atomic counter; each index is executed exactly once and callers
// write results to fixed per-index slots, so output is identical for any
// thread count or scheduling.
//
//  * ParallelFor spawns transient threads — right for build-time work
//    (milliseconds and up) where thread start-up cost is noise.
//  * TaskPool keeps a set of persistent workers parked on a condition
//    variable — right for query-time fan-out, where a microsecond-scale
//    execution cannot afford thread creation per call.
#ifndef PAIRWISEHIST_COMMON_PARALLEL_H_
#define PAIRWISEHIST_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pairwisehist {

/// Runs fn(i) for every i in [0, n) on up to `nthreads` transient threads
/// (0 = one per hardware core, 1 = serial on the calling thread). Blocks
/// until every index has run. `fn` must be safe to call concurrently for
/// distinct indices and must not throw.
void ParallelFor(size_t n, unsigned nthreads,
                 const std::function<void(size_t)>& fn);

/// A small pool of persistent worker threads for repeated low-latency
/// fork-join dispatch. One job runs at a time; if Run is called while
/// another job is in flight (or the pool was created with a single
/// thread), the caller simply executes the whole range itself — results
/// are index-deterministic either way.
class TaskPool {
 public:
  /// `nthreads` counts the calling thread: the pool spawns nthreads - 1
  /// workers (0 = one per hardware core).
  explicit TaskPool(unsigned nthreads);
  ~TaskPool();
  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Blocks until fn(0) .. fn(n-1) have all executed. The calling thread
  /// participates in the work.
  void Run(size_t n, const std::function<void(size_t)>& fn);

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

 private:
  /// One dispatched range. Each job owns its counters so a worker that
  /// oversleeps a generation can never corrupt a newer job.
  struct Job {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
  };

  void WorkerLoop();
  void RunJob(const std::shared_ptr<Job>& job);

  std::mutex mu_;
  std::condition_variable cv_;       // workers wait for a new generation
  std::condition_variable done_cv_;  // Run waits for completion
  uint64_t generation_ = 0;
  bool stop_ = false;
  std::shared_ptr<Job> job_;

  std::mutex run_mu_;  // serializes concurrent Run callers
  std::vector<std::thread> workers_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_PARALLEL_H_
