#include "common/golomb.h"

#include <cmath>

namespace pairwisehist {

namespace {

// Number of bits needed to represent values 0..n-1 (ceil(log2 n)), n >= 1.
int CeilLog2(uint64_t n) {
  int bits = 0;
  uint64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

}  // namespace

void GolombEncode(uint64_t value, uint64_t m, BitWriter* writer) {
  if (m == 0) m = 1;
  uint64_t q = value / m;
  uint64_t r = value % m;
  writer->WriteUnary(q);
  if (m == 1) return;  // remainder is always 0; no bits needed
  // Truncated binary encoding of the remainder.
  int b = CeilLog2(m);
  uint64_t cutoff = (uint64_t{1} << b) - m;
  if (r < cutoff) {
    writer->WriteBits(r, b - 1);
  } else {
    writer->WriteBits(r + cutoff, b);
  }
}

StatusOr<uint64_t> GolombDecode(uint64_t m, BitReader* reader) {
  if (m == 0) m = 1;
  PH_ASSIGN_OR_RETURN(uint64_t q, reader->ReadUnary());
  if (m == 1) return q;
  int b = CeilLog2(m);
  uint64_t cutoff = (uint64_t{1} << b) - m;
  PH_ASSIGN_OR_RETURN(uint64_t r, reader->ReadBits(b - 1));
  if (r >= cutoff) {
    PH_ASSIGN_OR_RETURN(uint64_t extra, reader->ReadBits(1));
    r = (r << 1 | extra) - cutoff;
  }
  return q * m + r;
}

uint64_t GolombOptimalM(double mean) {
  if (!(mean > 0)) return 1;
  double p = mean / (mean + 1.0);
  // Golomb's rule: m = ceil(log(1+p)/log(1/p)) is also common; the simple
  // -1/log2(p) estimator is within one bit of optimal for all p.
  double m = -1.0 / std::log2(p);
  if (m < 1.0) return 1;
  return static_cast<uint64_t>(std::llround(m));
}

uint64_t GolombCodeLengthBits(uint64_t value, uint64_t m) {
  if (m == 0) m = 1;
  uint64_t q = value / m;
  uint64_t r = value % m;
  uint64_t bits = q + 1;  // unary quotient
  if (m == 1) return bits;
  int b = CeilLog2(m);
  uint64_t cutoff = (uint64_t{1} << b) - m;
  bits += (r < cutoff) ? static_cast<uint64_t>(b - 1)
                       : static_cast<uint64_t>(b);
  return bits;
}

}  // namespace pairwisehist
