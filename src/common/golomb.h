// Golomb coding for non-negative integers.
//
// The PairwiseHist sparse bin-count encoding stores deltas between non-zero
// matrix indices with a Golomb code, which is optimal for geometrically
// distributed values (Section 4.3 of the paper). We implement the general
// Golomb code with parameter m (quotient in unary, remainder in truncated
// binary) plus the standard m estimator from the sample mean.
#ifndef PAIRWISEHIST_COMMON_GOLOMB_H_
#define PAIRWISEHIST_COMMON_GOLOMB_H_

#include <cstdint>
#include <vector>

#include "common/bitio.h"
#include "common/status.h"

namespace pairwisehist {

/// Encodes `value` with Golomb parameter `m` (m >= 1) into `writer`.
void GolombEncode(uint64_t value, uint64_t m, BitWriter* writer);

/// Decodes one Golomb(m)-coded value from `reader`.
StatusOr<uint64_t> GolombDecode(uint64_t m, BitReader* reader);

/// Chooses the (near-)optimal Golomb parameter for geometrically distributed
/// data with the given sample mean: m = max(1, round(-1/log2(p)) ) with
/// p = mean/(mean+1). Returns 1 for mean <= 0.
uint64_t GolombOptimalM(double mean);

/// Total bits Golomb(m) uses for `value` (without encoding).
uint64_t GolombCodeLengthBits(uint64_t value, uint64_t m);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_GOLOMB_H_
