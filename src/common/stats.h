// Statistical special functions implemented from scratch.
//
// PairwiseHist needs the chi-squared distribution (uniformity hypothesis
// tests and the Theorem-1/2 bound formulas use the critical value χ²_α) and
// the standard normal quantile (Eq. 29 sampling-uncertainty widening).
// Everything is built on the regularized incomplete gamma function using the
// classic series / continued-fraction split (Numerical Recipes style), so the
// library has no dependency beyond <cmath>.
#ifndef PAIRWISEHIST_COMMON_STATS_H_
#define PAIRWISEHIST_COMMON_STATS_H_

#include <cstdint>

namespace pairwisehist {

/// Regularized lower incomplete gamma P(a, x) = γ(a,x)/Γ(a), a > 0, x >= 0.
/// Accuracy ~1e-12 over the ranges used by the library.
double RegularizedGammaP(double a, double x);

/// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double RegularizedGammaQ(double a, double x);

/// CDF of the chi-squared distribution with `df` degrees of freedom.
double Chi2Cdf(double x, double df);

/// Quantile (inverse CDF) of the chi-squared distribution: the x such that
/// Chi2Cdf(x, df) = p, for p in (0, 1). Uses a Wilson–Hilferty initial guess
/// refined by Newton iterations with bisection fallback.
double Chi2Quantile(double p, double df);

/// Upper critical value χ²_α with significance α: Pr(X > x) = α.
/// Equivalent to Chi2Quantile(1 - α, df).
double Chi2CriticalValue(double alpha, double df);

/// Standard normal CDF Φ(x).
double NormalCdf(double x);

/// Standard normal quantile Φ⁻¹(p), p in (0,1). Acklam's rational
/// approximation refined with one Halley step (absolute error < 1e-9).
double NormalQuantile(double p);

/// Pearson chi-squared statistic for observed sub-bin counts against a
/// uniform expectation. `counts` has `s` entries summing to `total`.
double Chi2UniformStatistic(const uint64_t* counts, int s, uint64_t total);

/// Terrell–Scott sub-bin count used throughout the paper:
/// s = ceil((2u)^(1/3)) for u unique values, clamped to >= 1.
int TerrellScottSubBins(uint64_t unique_values);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_STATS_H_
