#include "common/failpoint.h"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

namespace pairwisehist {
namespace failpoint {

namespace {

enum class Action { kOff, kError, kCrash, kPartial, kDelay };

struct PointState {
  Action action = Action::kOff;
  uint32_t delay_ms = 0;
  uint64_t trigger_hit = 0;  // 0 = every hit; n = only the n-th
  uint64_t hits = 0;         // evaluations while armed
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, PointState> points;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Armed-point count; the Fire fast path is a single relaxed load of this.
std::atomic<uint64_t> g_active{0};

// The canonical point list. Central (rather than registered at first
// execution) so harnesses can enumerate points that a given run never
// reaches.
const std::vector<std::string>& Points() {
  static const std::vector<std::string>* kPoints = new std::vector<std::string>{
      "serve.append.build",     // before the successor snapshot is built
      "wal.append.write",       // WAL record framing write (partial-capable)
      "wal.append.sync",        // before the WAL fsync for a record
      "wal.append.acked",       // record durable, acknowledgement not sent
      "checkpoint.save",        // before Db::Save of the checkpoint tmp file
      "checkpoint.rename",      // tmp checkpoint durable, not yet renamed
      "checkpoint.truncate_wal",// checkpoint live, WAL not yet truncated
      "recovery.replay",        // before applying each replayed WAL record
      "http.send",              // socket write in the HTTP layer
      "service.handle",         // request admitted, handler about to run
      "scrub.verify",           // per-block CRC verify (scrub + CoW hook)
      "pws3.block_corrupt",     // flips a data byte after Encode's CRCs
      "recover.checkpoint_open",// before opening each checkpoint candidate
      "compact.build",          // before building the merged segment
      "compact.publish",        // merged segment built, swap not published
      "compact.checkpoint",     // compacted snapshot live, not yet durable
  };
  return *kPoints;
}

Status ParseAction(const std::string& spec, PointState* out) {
  std::string action = spec;
  const size_t at = spec.find('@');
  if (at != std::string::npos) {
    action = spec.substr(0, at);
    char* end = nullptr;
    const unsigned long long n = std::strtoull(spec.c_str() + at + 1, &end, 10);
    if (end == spec.c_str() + at + 1 || *end != '\0' || n == 0) {
      return Status::InvalidArgument("failpoint: bad hit count in '" + spec +
                                     "'");
    }
    out->trigger_hit = n;
  }
  if (action == "off") {
    out->action = Action::kOff;
  } else if (action == "error") {
    out->action = Action::kError;
  } else if (action == "crash") {
    out->action = Action::kCrash;
  } else if (action == "partial") {
    out->action = Action::kPartial;
  } else if (action.rfind("delay:", 0) == 0) {
    char* end = nullptr;
    const unsigned long ms = std::strtoul(action.c_str() + 6, &end, 10);
    if (end == action.c_str() + 6 || *end != '\0') {
      return Status::InvalidArgument("failpoint: bad delay in '" + spec + "'");
    }
    out->action = Action::kDelay;
    out->delay_ms = static_cast<uint32_t>(ms);
  } else {
    return Status::InvalidArgument("failpoint: unknown action '" + spec +
                                   "' (off|error|crash|partial|delay:<ms>)");
  }
  return Status::OK();
}

void ArmFromEnv() {
  const char* env = std::getenv("PWH_FAILPOINTS");
  if (env == nullptr || *env == '\0') return;
  std::string spec(env);
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find_first_of(",;", start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos) continue;
    Status st = Set(entry.substr(0, eq), entry.substr(eq + 1));
    if (!st.ok()) {
      std::fprintf(stderr, "PWH_FAILPOINTS: %s\n", st.ToString().c_str());
    }
  }
}

std::once_flag g_env_once;

}  // namespace

void CrashNow() { _Exit(kCrashExitCode); }

Injection Fire(const char* point) {
  std::call_once(g_env_once, ArmFromEnv);
  Injection out;
  if (g_active.load(std::memory_order_relaxed) == 0) return out;

  Action action = Action::kOff;
  uint32_t delay_ms = 0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    auto it = r.points.find(point);
    if (it == r.points.end() || it->second.action == Action::kOff) return out;
    PointState& ps = it->second;
    ++ps.hits;
    if (ps.trigger_hit != 0 && ps.hits != ps.trigger_hit) return out;
    action = ps.action;
    delay_ms = ps.delay_ms;
  }
  switch (action) {
    case Action::kOff:
      break;
    case Action::kError:
      out.status = Status::Internal(std::string("injected fault at ") + point);
      break;
    case Action::kCrash:
      CrashNow();
    case Action::kPartial:
      out.partial = true;
      break;
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      break;
  }
  return out;
}

Status Set(const std::string& point, const std::string& action) {
  bool known = false;
  for (const std::string& p : Points()) {
    if (p == point) {
      known = true;
      break;
    }
  }
  if (!known) {
    return Status::InvalidArgument("failpoint: unknown point '" + point + "'");
  }
  PointState next;
  PH_RETURN_IF_ERROR(ParseAction(action, &next));

  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  PointState& ps = r.points[point];
  const bool was_armed = ps.action != Action::kOff;
  const bool now_armed = next.action != Action::kOff;
  next.hits = 0;
  ps = next;
  if (was_armed != now_armed) {
    g_active.fetch_add(now_armed ? 1 : uint64_t(-1),
                       std::memory_order_relaxed);
  }
  return Status::OK();
}

void ClearAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  uint64_t armed = 0;
  for (auto& kv : r.points) {
    if (kv.second.action != Action::kOff) ++armed;
  }
  r.points.clear();
  g_active.fetch_sub(armed, std::memory_order_relaxed);
}

uint64_t HitCount(const std::string& point) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.points.find(point);
  return it == r.points.end() ? 0 : it->second.hits;
}

const std::vector<std::string>& KnownPoints() { return Points(); }

}  // namespace failpoint
}  // namespace pairwisehist
