// Bit-granular writer/reader over a byte buffer.
//
// Used by the GreedyGD base/deviation packing and the PairwiseHist storage
// encoding (dense bin counts at ℓh bits per count; Golomb codes).
// Bits are written MSB-first within each byte so that the encoded stream is
// byte-order independent and prefix codes decode naturally.
#ifndef PAIRWISEHIST_COMMON_BITIO_H_
#define PAIRWISEHIST_COMMON_BITIO_H_

#include <cstdint>
#include <cstddef>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

/// Appends bit fields to a growable byte buffer (MSB-first).
class BitWriter {
 public:
  BitWriter() = default;

  /// Writes the low `nbits` bits of `value` (0 <= nbits <= 64),
  /// most-significant first.
  void WriteBits(uint64_t value, int nbits);

  /// Writes a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Writes `count` consecutive one-bits followed by a zero (unary code).
  void WriteUnary(uint64_t count);

  /// Number of bits written so far.
  size_t bit_count() const { return bit_count_; }

  /// Pads to a byte boundary with zero bits and returns the buffer.
  std::vector<uint8_t> Finish();

  /// Read-only view of the (possibly unpadded) bytes written so far.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_count_ = 0;
};

/// Reads bit fields from a byte buffer written by BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}
  explicit BitReader(const std::vector<uint8_t>& data)
      : BitReader(data.data(), data.size()) {}

  /// Reads `nbits` bits (0 <= nbits <= 64) into the low bits of the result.
  StatusOr<uint64_t> ReadBits(int nbits);

  /// Reads a unary code: the number of one-bits before the next zero.
  StatusOr<uint64_t> ReadUnary();

  /// Bits remaining.
  size_t remaining_bits() const { return size_bits_ - pos_; }
  size_t position_bits() const { return pos_; }

  /// Skips forward; fails if past the end.
  Status Skip(size_t nbits);

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_BITIO_H_
