#include "common/bitio.h"

namespace pairwisehist {

void BitWriter::WriteBits(uint64_t value, int nbits) {
  if (nbits <= 0) return;
  if (nbits < 64) value &= (uint64_t{1} << nbits) - 1;
  for (int i = nbits - 1; i >= 0; --i) {
    size_t byte_index = bit_count_ >> 3;
    int bit_in_byte = 7 - static_cast<int>(bit_count_ & 7);
    if (byte_index >= bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1) {
      bytes_[byte_index] |= static_cast<uint8_t>(1u << bit_in_byte);
    }
    ++bit_count_;
  }
}

void BitWriter::WriteUnary(uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) WriteBit(true);
  WriteBit(false);
}

std::vector<uint8_t> BitWriter::Finish() {
  // Buffer already contains zero padding in the final partial byte.
  return std::move(bytes_);
}

StatusOr<uint64_t> BitReader::ReadBits(int nbits) {
  if (nbits < 0 || nbits > 64) {
    return Status::InvalidArgument("ReadBits: nbits out of [0,64]");
  }
  if (pos_ + static_cast<size_t>(nbits) > size_bits_) {
    return Status::DataLoss("BitReader: read past end of stream");
  }
  uint64_t value = 0;
  for (int i = 0; i < nbits; ++i) {
    size_t byte_index = pos_ >> 3;
    int bit_in_byte = 7 - static_cast<int>(pos_ & 7);
    value = (value << 1) | ((data_[byte_index] >> bit_in_byte) & 1);
    ++pos_;
  }
  return value;
}

StatusOr<uint64_t> BitReader::ReadUnary() {
  uint64_t count = 0;
  while (true) {
    if (pos_ >= size_bits_) {
      return Status::DataLoss("BitReader: unterminated unary code");
    }
    size_t byte_index = pos_ >> 3;
    int bit_in_byte = 7 - static_cast<int>(pos_ & 7);
    bool bit = (data_[byte_index] >> bit_in_byte) & 1;
    ++pos_;
    if (!bit) break;
    ++count;
  }
  return count;
}

Status BitReader::Skip(size_t nbits) {
  if (pos_ + nbits > size_bits_) {
    return Status::DataLoss("BitReader: skip past end of stream");
  }
  pos_ += nbits;
  return Status::OK();
}

}  // namespace pairwisehist
