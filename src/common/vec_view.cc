// Out-of-line home of the VecView promotion hook: a single process-wide
// atomic function pointer, so the header-only template stays dependency-
// free and promotions cost one relaxed load when no hook is installed.
#include "common/vec_view.h"

#include <atomic>

namespace pairwisehist {
namespace internal {

namespace {
std::atomic<VecViewPromotionHook> g_hook{nullptr};
}  // namespace

void NotifyVecViewPromotion(const void* data, size_t bytes) {
  VecViewPromotionHook hook = g_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook(data, bytes);
}

void SetVecViewPromotionHook(VecViewPromotionHook hook) {
  g_hook.store(hook, std::memory_order_release);
}

}  // namespace internal
}  // namespace pairwisehist
