#include "common/rng.h"

namespace pairwisehist {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  // Cumulative inversion over precomputed weights would allocate per call;
  // for generator use we accept O(n) scan, n is small (categorical domains).
  double total = 0;
  for (size_t i = 1; i <= n; ++i) total += 1.0 / std::pow(double(i), s);
  double u = Uniform() * total;
  double acc = 0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u < acc) return i - 1;
  }
  return n - 1;
}

std::vector<double> ZipfWeights(size_t n, double s) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(double(i + 1), s);
  return w;
}

}  // namespace pairwisehist
