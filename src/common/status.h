// Status / StatusOr: exception-free error handling for the public API.
//
// The library follows the Google C++ style guide convention of returning
// Status (or StatusOr<T>) from any operation that can fail, instead of
// throwing. Status carries a code and a human-readable message; StatusOr<T>
// carries either a value or a non-OK Status.
#ifndef PAIRWISEHIST_COMMON_STATUS_H_
#define PAIRWISEHIST_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pairwisehist {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kNotFound,          ///< named column/table/value does not exist
  kOutOfRange,        ///< index or literal outside the valid domain
  kUnimplemented,     ///< feature intentionally not supported
  kInternal,          ///< invariant violation inside the library
  kDataLoss,          ///< corrupt serialized synopsis / compressed data
  kUnsupported,       ///< query shape a given engine cannot answer
};

/// Returns a stable lowercase name for a status code (for messages/logs).
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail. Cheap to copy when OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   StatusOr<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: allows `return value;` in functions returning
  /// StatusOr<T>.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status. Must not be OK (an OK status carries no
  /// value, which would make the object unusable).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pairwisehist

/// Propagates a non-OK Status from an expression, Google-style.
#define PH_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::pairwisehist::Status _st = (expr);        \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value or propagating the
/// error. `lhs` must be a declaration or assignable lvalue.
#define PH_ASSIGN_OR_RETURN(lhs, expr)          \
  PH_ASSIGN_OR_RETURN_IMPL_(                    \
      PH_STATUS_CONCAT_(_status_or, __LINE__), lhs, expr)

#define PH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PH_STATUS_CONCAT_(a, b) PH_STATUS_CONCAT_IMPL_(a, b)
#define PH_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // PAIRWISEHIST_COMMON_STATUS_H_
