#include "common/simd.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/simd_generic.h"

namespace pairwisehist {

#if PWH_HAVE_AVX2
extern const KernelOps kAvx2Kernels;  // defined in simd_avx2.cc
#endif

namespace {

// The 2-lane tier needs no special compile flags: SSE2 is baseline on
// x86-64 and NEON on aarch64, so the generic 2-lane bodies compile
// straight to those ISAs under the default flags.
#if defined(__x86_64__) || defined(_M_X64)
constexpr const char* kVec2Name = "sse2";
#elif defined(__aarch64__) || defined(_M_ARM64)
constexpr const char* kVec2Name = "neon";
#else
constexpr const char* kVec2Name = "vec2";
#endif

const KernelOps kScalarTable = simd_detail::MakeTable<1>("scalar");
const KernelOps kVec2Table = simd_detail::MakeTable<2>(kVec2Name);

const KernelOps* Avx2Table() {
#if PWH_HAVE_AVX2
#if defined(__GNUC__) || defined(__clang__)
  if (__builtin_cpu_supports("avx2")) return &kAvx2Kernels;
#endif
#endif
  return nullptr;
}

const KernelOps* TableByName(const char* name) {
  if (std::strcmp(name, "scalar") == 0) return &kScalarTable;
  if (std::strcmp(name, kVec2Name) == 0 || std::strcmp(name, "vec2") == 0) {
    return &kVec2Table;
  }
  if (std::strcmp(name, "avx2") == 0) return Avx2Table();
  return nullptr;
}

/// Widest table for this binary + CPU, honouring the PWH_KERNELS override.
/// Runs once (function-local static); the result never changes afterwards.
/// Parsing is case-insensitive ("AVX2" == "avx2"); unrecognized or
/// CPU-unsupported values warn once on stderr and fall back to detection.
const KernelOps* DetectBest() {
  const KernelOps* best = Avx2Table();
  if (best == nullptr) best = &kVec2Table;
  if (const char* env = std::getenv("PWH_KERNELS")) {
    char lower[32];
    size_t n = 0;
    for (; env[n] != '\0' && n + 1 < sizeof(lower); ++n) {
      lower[n] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(env[n])));
    }
    lower[n] = '\0';
    if (std::strcmp(lower, "auto") == 0 ||
        std::strcmp(lower, "widest") == 0 || lower[0] == '\0') {
      return best;
    }
    if (const KernelOps* forced = TableByName(lower)) return forced;
    // Valid-value list reflects what TableByName would actually accept on
    // this build + CPU (the vec2 alias only when it differs from the
    // tier's own name, avx2 only when the table is usable here).
    std::fprintf(stderr,
                 "pairwisehist: PWH_KERNELS='%s' unknown or unsupported on "
                 "this CPU (valid: scalar, %s%s%s, auto, widest); "
                 "using '%s'\n",
                 env, kVec2Name,
                 std::strcmp(kVec2Name, "vec2") == 0 ? "" : ", vec2",
                 Avx2Table() != nullptr ? ", avx2" : "", best->name);
  }
  return best;
}

}  // namespace

const KernelOps& ScalarKernels() { return kScalarTable; }

const KernelOps& GetKernels(KernelMode mode) {
  static const KernelOps* best = DetectBest();
  switch (mode) {
    case KernelMode::kScalar:
      return kScalarTable;
    case KernelMode::kAuto:
    case KernelMode::kWidest:
      break;
  }
  return *best;
}

std::vector<const KernelOps*> SupportedKernels() {
  std::vector<const KernelOps*> all{&kScalarTable, &kVec2Table};
  if (const KernelOps* avx2 = Avx2Table()) all.push_back(avx2);
  return all;
}

const char* KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto:
      return "auto";
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kWidest:
      return "widest";
  }
  return "?";
}

}  // namespace pairwisehist
