// Portable SIMD execution kernels with runtime dispatch.
//
// Query execution spends nearly all of its time in a handful of loop
// shapes over per-bin weight tables: plain reductions (Σw), fused triple
// reductions (Σw, Σw−, Σw+ in one pass), dot products (Σw·c), inclusive
// prefix scans (the MEDIAN CDF walk) and a few elementwise combiners
// (Eq. 28 AND/OR products, Eq. 29 weighting). This header defines those
// kernels as a function-pointer table (`KernelOps`) with three
// implementations selected once at startup: scalar, a 2-lane tier (SSE2
// on x86-64, NEON on aarch64 — both are baseline ISAs there, so the
// generic 2-lane code compiles straight to them), and hand-written AVX2
// (own translation unit, compiled with -mavx2, gated by the CMake option
// PWH_DISABLE_AVX2 and a runtime CPUID check).
//
// ## Determinism contract
//
// Results are a pure function of (kernel table, inputs): the same build
// with the same `kernels` setting produces bit-identical results across
// runs, thread counts and call sites. Different tables may differ in the
// last ulp on reductions (lane reassociation); the engine's randomized
// equivalence suite bounds scalar-vs-SIMD disagreement at 1e-9 relative.
//
// ## Phase-aligned lane semantics
//
// Every reduction kernel takes a logical index range [begin, end) over
// arrays indexed from their base pointer, and assigns element t to lane
// accumulator t % W (W = lane count), combining lanes in a fixed order at
// the end. Head/tail elements that don't fill a vector are accumulated
// into their lane scalar-wise, in ascending t, so per-lane addition
// sequences are independent of how the range is blocked.
//
// This buys a load-bearing invariant: a kernel over [begin, end) returns
// the exact same double as the kernel over any wider range whose extra
// elements contribute exact zeros (adding +0.0 to a lane accumulator, or
// carrying +0.0 across prefix-scan blocks, is an identity). The engine's
// reference path reduces full bin ranges [0, k) with zero weight outside
// the touched span while the fast path reduces only [begin, end); the
// fastpath equivalence suite asserts their results are identical doubles,
// and phase alignment is what keeps that true under SIMD.
//
// Elementwise kernels (mul3 / or_mul3 / complement3 / weighting) need no
// phase: out[t] depends only on in[t], so they are bit-identical across
// tables up to the sign of zero in clamps.
#ifndef PAIRWISEHIST_COMMON_SIMD_H_
#define PAIRWISEHIST_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pairwisehist {

/// Kernel selection knob (DbOptions::kernels / AqpEngineOptions::kernels).
enum class KernelMode {
  /// Widest ISA supported by this CPU and compiled into this binary,
  /// detected once at startup. The environment variable PWH_KERNELS
  /// (scalar | sse2 | neon | vec2 | avx2 | auto | widest) overrides the
  /// detection for kAuto/kWidest — that is how CI forces the fallback
  /// paths through the full test suite.
  kAuto = 0,
  /// Force the scalar kernels (bit-compatible with the pre-kernel-layer
  /// scalar loops).
  kScalar = 1,
  /// Alias of kAuto today; reserved so future size-based heuristics in
  /// kAuto keep an explicit "always widest" setting for testing.
  kWidest = 2,
};

/// Returned by the find kernels when no element matches.
constexpr size_t kKernelNotFound = ~size_t{0};

/// One plan's slice of a batched Eq.-29 weighting call (KernelOps::
/// weights_batch): satisfaction probabilities in, weight lanes out, over
/// the touched bin range [begin, end) with the fully-covered run
/// descriptors coverage emitted (see query/exec_scratch.h ProbTable). The
/// pointers typically index rows of one plan-major SoA block so a whole
/// batch weights in a single kernel call.
struct WeightRow {
  const uint64_t* h = nullptr;  ///< grid bin counts (rows may differ)
  const double* p = nullptr;   ///< β per bin
  const double* pl = nullptr;  ///< β−
  const double* ph = nullptr;  ///< β+
  double* w = nullptr;         ///< out: w
  double* lo = nullptr;        ///< out: w−
  double* hi = nullptr;        ///< out: w+
  size_t begin = 0;            ///< touched bin range
  size_t end = 0;
  const uint32_t* runs = nullptr;  ///< 2*n_runs absolute bin indices
  size_t n_runs = 0;
};

/// One kernel implementation tier. All reduction kernels follow the
/// phase-aligned lane semantics described in the header comment.
struct KernelOps {
  const char* name;  ///< "scalar", "sse2", "neon", "vec2", "avx2"
  int lanes;         ///< W: elements per vector (1 for scalar)

  /// Σ x[t], t in [begin, end).
  double (*sum)(const double* x, size_t begin, size_t end);
  /// Fused {Σ a[t], Σ b[t], Σ c[t]} in one pass.
  void (*sum3)(const double* a, const double* b, const double* c,
               size_t begin, size_t end, double out[3]);
  /// Σ w[t]·x[t].
  double (*dot)(const double* w, const double* x, size_t begin, size_t end);
  /// Fused {Σ w[t], Σ w[t]·x[t], Σ w[t]·y[t]} in one pass.
  void (*dot3)(const double* w, const double* x, const double* y,
               size_t begin, size_t end, double out[3]);
  /// Fused {Σ w[t], Σ w[t]·x[t], Σ (w[t]·x[t])·x[t]} (first two moments).
  void (*moments)(const double* w, const double* x, size_t begin, size_t end,
                  double out[3]);
  /// Per-bin corner bounds of a weighted sum (Table 3 SUM):
  /// out[0] = Σ min(wlo·vlo, wlo·vhi, whi·vlo, whi·vhi),
  /// out[1] = Σ max(...), ties resolved leftmost like std::min/std::max.
  void (*corner_bounds)(const double* wlo, const double* whi,
                        const double* vlo, const double* vhi, size_t begin,
                        size_t end, double out[2]);
  /// Inclusive prefix scan: out[t] = Σ x[begin..t] for t in [begin, end),
  /// computed blockwise on absolute W-aligned blocks (lanes outside
  /// [begin, end) count as exact zeros) so the scan values are identical
  /// for any enclosing zero-padded range.
  void (*prefix_sum)(const double* x, size_t begin, size_t end, double* out);
  /// Smallest t in [begin, end) with x[t] > threshold (kKernelNotFound if
  /// none). Exact comparisons: identical across tables.
  size_t (*find_first_gt)(const double* x, size_t begin, size_t end,
                          double threshold);
  /// Largest such t (kKernelNotFound if none).
  size_t (*find_last_gt)(const double* x, size_t begin, size_t end,
                         double threshold);

  // ---- Elementwise combiners (Eq. 28 / Eq. 29) --------------------------
  /// AND combine: ap[t] *= bp[t]; al[t] *= bl[t]; ah[t] *= bh[t].
  void (*mul3)(double* ap, double* al, double* ah, const double* bp,
               const double* bl, const double* bh, size_t begin, size_t end);
  /// OR complement-product step: ap[t] *= 1 - bp[t]; al[t] *= 1 - bh[t];
  /// ah[t] *= 1 - bl[t] (the complement swaps the bounds).
  void (*or_mul3)(double* ap, double* al, double* ah, const double* bp,
                  const double* bl, const double* bh, size_t begin,
                  size_t end);
  /// Final OR flip: p = 1 - p with lo/hi complemented and swapped.
  void (*complement3)(double* p, double* lo, double* hi, size_t begin,
                      size_t end);
  /// Bulk fully-covered-run weighting: w[t] = lo[t] = hi[t] = double(h[t])
  /// (β = β− = β+ = 1 makes Eq. 29 collapse to the bin count, including
  /// under sampling widening, where the variance term is exactly zero).
  void (*counts_to_weights3)(const uint64_t* h, double* w, double* lo,
                             double* hi, size_t begin, size_t end);
  /// Eq. 29 weighting, ρ = 1 (no widening): w = h·p, lo = clamp(h·pl, 0, h),
  /// hi = clamp(h·ph, 0, h).
  void (*weights_nowiden)(const uint64_t* h, const double* p,
                          const double* pl, const double* ph, double* w,
                          double* lo, double* hi, size_t begin, size_t end);
  /// Eq. 29 weighting with sampling widening (z = two-sided 98% normal
  /// quantile, fpc = finite population correction).
  void (*weights_widen)(const uint64_t* h, const double* p, const double* pl,
                        const double* ph, double z, double fpc, double* w,
                        double* lo, double* hi, size_t begin, size_t end);
  /// Conditional-probability normalization (Eq. 27): per bin, p =
  /// clamp(np/h, 0, 1), lo = clamp(nlo/h, 0, p), hi = clamp(nhi/h, p, 1);
  /// bins with h = 0 produce exact zeros. Source and destination may
  /// alias. Division dominates the scalar loop; the SIMD tiers divide
  /// four lanes at once with bit-identical results.
  void (*norm_prob3)(const uint64_t* h, const double* np, const double* nlo,
                     const double* nhi, double* p, double* lo, double* hi,
                     size_t begin, size_t end);
  /// Sparse gather reduction: out[j] = Σ_e cnt[e] · bj[col[e]] for e in
  /// [begin, end), phase-aligned on the element index e like the dense
  /// reductions (a sub-range whose excluded elements hit zero entries of
  /// bj reduces identically to the full range). Not currently on the
  /// engine's hot path — the cell scans moved to dense prefix
  /// differences (query/engine.cc ReduceRow), which beat hardware
  /// gathers on gather-mitigated CPUs — but kept, tested and benched as
  /// the building block for sparse-index consumers.
  void (*gather_dot3)(const uint64_t* cnt, const uint32_t* col,
                      const double* b0, const double* b1, const double* b2,
                      size_t begin, size_t end, double out[3]);

  // ---- Multi-row reductions (column-major cell prefixes) ----------------
  // The batched counterpart of the engine's per-row ReduceRow walk: one
  // call updates the accumulators of EVERY aggregation bin for one
  // coverage event, vectorizing across rows. `pre_b` / `pre_e` are two
  // boundary rows of a column-major cell prefix (PairView::AggPrefixCol),
  // so pre_e[t] - pre_b[t] is row t's exact integer cell mass over the
  // event's pred-bin range. Per-element accumulation order is preserved
  // (lanes never cross rows), so driving the events in ReduceRow's order
  // leaves every row's accumulator bit-identical to the per-row walk.

  /// Fully-covered run: ap/al/ah[t] += double(pre_e[t] - pre_b[t]).
  void (*run_mass3)(const uint64_t* pre_b, const uint64_t* pre_e, double* ap,
                    double* al, double* ah, size_t begin, size_t end);
  /// Partial coverage bin: m = double(pre_e[t] - pre_b[t]); ap[t] += m·bp;
  /// al[t] += m·bl; ah[t] += m·bh (bp/bl/bh = that bin's β, β−, β+).
  void (*cell_axpy3)(const uint64_t* pre_b, const uint64_t* pre_e, double bp,
                     double bl, double bh, double* ap, double* al, double* ah,
                     size_t begin, size_t end);

  /// Batched Eq. 29 weighting: every row of a batch in one call, fully-
  /// covered runs collapsing to counts_to_weights3 and the rest going
  /// through weights_widen (widen != 0) / weights_nowiden. Row r's output
  /// is bit-identical to weighting that row alone with those kernels.
  void (*weights_batch)(const WeightRow* rows, size_t n_rows, double z,
                        double fpc, int widen);
};

/// Resolves a mode to a kernel table. Detection (CPUID + PWH_KERNELS
/// override) runs once; subsequent calls return the cached table.
const KernelOps& GetKernels(KernelMode mode);

/// The scalar table (always available; what kScalar resolves to).
const KernelOps& ScalarKernels();

/// Every table compiled into this binary and usable on this CPU, widest
/// last. Exposed for the exhaustive kernel tests and the kernel bench.
std::vector<const KernelOps*> SupportedKernels();

const char* KernelModeName(KernelMode mode);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_SIMD_H_
