// A tiny lock-light pool of reusable heap objects.
//
// Execution hot paths lease scratch state (bump arenas, bookkeeping
// vectors) from a per-owner pool instead of allocating per call: Acquire
// returns a previously released object when one is free, so steady-state
// repeated calls reuse warmed capacity, and concurrent callers never share
// one object. A single-slot atomic exchange serves the common
// one-caller-at-a-time case without touching the mutex; the locked
// overflow list only engages under real concurrency.
#ifndef PAIRWISEHIST_COMMON_OBJECT_POOL_H_
#define PAIRWISEHIST_COMMON_OBJECT_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace pairwisehist {

template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ~ObjectPool() { delete slot_.load(std::memory_order_acquire); }
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  /// Returns a pooled object, or nullptr when none is free (the caller
  /// allocates a fresh one outside any lock).
  std::unique_ptr<T> Acquire() {
    T* fast = slot_.exchange(nullptr, std::memory_order_acq_rel);
    if (fast != nullptr) return std::unique_ptr<T>(fast);
    std::lock_guard<std::mutex> lock(mu_);
    if (overflow_.empty()) return nullptr;
    std::unique_ptr<T> obj = std::move(overflow_.back());
    overflow_.pop_back();
    return obj;
  }

  /// Returns an object to the pool for reuse.
  void Release(std::unique_ptr<T> obj) {
    T* expected = nullptr;
    T* raw = obj.get();
    if (slot_.compare_exchange_strong(expected, raw,
                                      std::memory_order_acq_rel)) {
      obj.release();
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    overflow_.push_back(std::move(obj));
  }

 private:
  std::atomic<T*> slot_{nullptr};
  std::mutex mu_;
  std::vector<std::unique_ptr<T>> overflow_;
};

/// RAII lease of one pooled object: acquires on construction (allocating
/// only when the pool is dry) and releases on destruction.
template <typename T>
class PoolLease {
 public:
  explicit PoolLease(ObjectPool<T>* pool) : pool_(pool), obj_(pool->Acquire()) {
    if (obj_ == nullptr) obj_ = std::make_unique<T>();
  }
  ~PoolLease() { pool_->Release(std::move(obj_)); }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;

  T& operator*() { return *obj_; }
  T* operator->() { return obj_.get(); }

 private:
  ObjectPool<T>* pool_;
  std::unique_ptr<T> obj_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_OBJECT_POOL_H_
