#include "common/stats.h"

#include <cmath>
#include <limits>

namespace pairwisehist {

namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-15;
constexpr double kFpMin = 1e-300;

// std::lgamma is not thread-safe on glibc/BSD libms: it writes the global
// `signgam` on every call, a data race when parallel builds or the batch
// fan-out evaluate chi-squared quantiles concurrently (caught by the TSan
// CI job). Use the reentrant variant where available; every argument here
// is positive, so the sign output is irrelevant.
double LGamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__) || defined(_REENTRANT)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

// Series representation of P(a,x), converges quickly for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LGamma(a));
}

// Continued fraction for Q(a,x) (modified Lentz), converges for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return std::exp(-x + a * std::log(x) - LGamma(a)) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (!(a > 0) || x < 0 || std::isnan(a) || std::isnan(x)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedGammaQ(double a, double x) {
  if (!(a > 0) || x < 0 || std::isnan(a) || std::isnan(x)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (x == 0) return 1.0;
  if (x < a + 1.0) return 1.0 - GammaPSeries(a, x);
  return GammaQContinuedFraction(a, x);
}

double Chi2Cdf(double x, double df) {
  if (x <= 0) return 0.0;
  return RegularizedGammaP(df / 2.0, x / 2.0);
}

double Chi2Quantile(double p, double df) {
  if (!(p > 0.0) || !(p < 1.0) || !(df > 0)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Wilson–Hilferty: chi2 ≈ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
  double z = NormalQuantile(p);
  double t = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
  double x = df * t * t * t;
  if (x <= 0 || std::isnan(x)) x = df;  // fall back to the mean

  // Newton refinement on F(x) - p = 0; the chi-squared pdf is the derivative.
  double lo = 0.0, hi = std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < 100; ++iter) {
    double f = Chi2Cdf(x, df) - p;
    if (f > 0) {
      hi = x;
    } else {
      lo = x;
    }
    double log_pdf = (df / 2.0 - 1.0) * std::log(x) - x / 2.0 -
                     LGamma(df / 2.0) - (df / 2.0) * std::log(2.0);
    double pdf = std::exp(log_pdf);
    double step = (pdf > 0) ? f / pdf : 0.0;
    double next = x - step;
    // Keep the iterate inside the bisection bracket.
    if (!(next > lo) || !(next < hi) || pdf <= 0) {
      next = std::isinf(hi) ? (lo > 0 ? lo * 2.0 : 1.0) : (lo + hi) / 2.0;
    }
    if (std::fabs(next - x) < 1e-12 * (1.0 + std::fabs(x))) {
      x = next;
      break;
    }
    x = next;
  }
  return x;
}

double Chi2CriticalValue(double alpha, double df) {
  return Chi2Quantile(1.0 - alpha, df);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double NormalQuantile(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  double x;
  if (p < plow) {
    double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - plow) {
    double q = p - 0.5;
    double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
          c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley step using the exact CDF for ~1e-12 accuracy.
  double e = NormalCdf(x) - p;
  double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double Chi2UniformStatistic(const uint64_t* counts, int s, uint64_t total) {
  if (s <= 0 || total == 0) return 0.0;
  double expected = static_cast<double>(total) / s;
  double stat = 0.0;
  for (int r = 0; r < s; ++r) {
    double diff = static_cast<double>(counts[r]) - expected;
    stat += diff * diff / expected;
  }
  return stat;
}

int TerrellScottSubBins(uint64_t unique_values) {
  if (unique_values <= 1) return 1;
  double s = std::ceil(std::cbrt(2.0 * static_cast<double>(unique_values)));
  return static_cast<int>(s);
}

}  // namespace pairwisehist
