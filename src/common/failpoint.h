// Failpoint registry: named fault-injection points for chaos testing.
//
// Production code marks crash-critical moments with failpoint::Fire("name");
// a test harness (or the PWH_FAILPOINTS environment variable) arms a point
// with an action — inject an error, sleep, crash the process, or perform a
// torn partial write — and the call site reacts. Disarmed points cost one
// relaxed atomic load, so the hooks stay in release builds and the chaos
// suite exercises the exact binary that ships.
//
// Actions (the string grammar used by Set() and PWH_FAILPOINTS):
//   off          disarm
//   error        Fire returns an Internal status ("injected fault at <p>")
//   crash        Fire calls _Exit(kCrashExitCode) — simulates kill -9: no
//                atexit handlers, no buffer flushes, nothing durable beyond
//                what already reached the kernel
//   partial      partial-write-capable sites (WAL framing) write a prefix of
//                the record and then crash — the realistic torn-tail producer
//   delay:<ms>   Fire sleeps <ms> milliseconds, then passes
// Any action takes an optional "@<n>" suffix: trigger only on the n-th hit
// of that point (1-based); other hits pass. PWH_FAILPOINTS holds a
// comma/semicolon-separated list: "wal.append.sync=error,http.send=crash@3".
#ifndef PAIRWISEHIST_COMMON_FAILPOINT_H_
#define PAIRWISEHIST_COMMON_FAILPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace pairwisehist {
namespace failpoint {

/// Exit code used by the crash action (and CrashNow), so a supervising
/// process can tell an injected crash from any other death.
constexpr int kCrashExitCode = 86;

/// What an armed point injected at this hit. `status` non-OK for the error
/// action; `partial` true when the site should write a torn prefix and then
/// call CrashNow(). Both fields inert for disarmed/pass-through hits.
struct Injection {
  Status status;
  bool partial = false;
};

/// Evaluates the point. Disarmed: one relaxed load, returns a clean
/// Injection. Armed: applies the action (crash never returns; delay sleeps
/// here). The first call also arms everything named in PWH_FAILPOINTS.
Injection Fire(const char* point);

/// _Exit(kCrashExitCode) — the crash action, callable directly by
/// partial-write sites after laying down the torn prefix.
[[noreturn]] void CrashNow();

/// Arms `point` with `action` (grammar above; "off" disarms). Unknown point
/// names are InvalidArgument so typos in harnesses fail loudly.
Status Set(const std::string& point, const std::string& action);

/// Disarms every point.
void ClearAll();

/// Times `point` has been evaluated while armed (pass-through hits count).
uint64_t HitCount(const std::string& point);

/// Every registered point name, for kill-at-every-failpoint harnesses.
const std::vector<std::string>& KnownPoints();

}  // namespace failpoint
}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_FAILPOINT_H_
