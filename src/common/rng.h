// Deterministic random number generation helpers.
//
// Every component that involves randomness (dataset generators, sampling,
// workload generation, the IDEBench-style scaler) takes an explicit seed so
// experiments are reproducible bit-for-bit. This wraps a SplitMix64-seeded
// xoshiro256** generator plus the distribution helpers the generators need
// (uniform, normal, exponential, Pareto, Zipf, categorical).
#ifndef PAIRWISEHIST_COMMON_RNG_H_
#define PAIRWISEHIST_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace pairwisehist {

/// xoshiro256** PRNG. Fast, high-quality, and fully deterministic from the
/// seed (unlike std::mt19937_64's unspecified distribution implementations,
/// our distribution code below is pinned, so streams never change between
/// standard library versions).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding, recommended by the xoshiro authors.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal).
  double Normal() {
    double u1 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Exponential with the given rate (mean 1/rate).
  double Exponential(double rate) {
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    return -std::log(u) / rate;
  }

  /// Pareto with scale x_m and shape alpha (heavy-tailed).
  double Pareto(double x_m, double alpha) {
    double u = Uniform();
    while (u <= 1e-300) u = Uniform();
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Bernoulli with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Index drawn from the (unnormalized) weights.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0;
    for (double w : weights) total += w;
    double u = Uniform() * total;
    double acc = 0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (u < acc) return i;
    }
    return weights.empty() ? 0 : weights.size() - 1;
  }

  /// Zipf-distributed rank in [0, n) with exponent `s` (s > 0). Uses the
  /// cumulative method; intended for modest n (categorical cardinalities).
  size_t Zipf(size_t n, double s);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

/// Returns Zipf weights (1/rank^s) for n ranks; useful for building
/// frequency-skewed categorical dictionaries.
std::vector<double> ZipfWeights(size_t n, double s);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_RNG_H_
