#include "common/status.h"

namespace pairwisehist {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kDataLoss:
      return "data-loss";
    case StatusCode::kUnsupported:
      return "unsupported";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace pairwisehist
