// AVX2 kernel table (see simd.h). Compiled with -mavx2 in its own
// translation unit, referenced only when PWH_HAVE_AVX2 is defined and the
// CPU reports AVX2 at runtime.
//
// Reductions keep one 4-lane accumulator vector with element t in lane
// t % 4 and scalar head/tail per-lane accumulation, matching the generic
// W = 4 bodies bit-for-bit (same per-lane addition sequences, same
// (l0+l1)+(l2+l3) combine). Elementwise kernels evaluate the same
// expressions as the generic bodies; _mm256_sqrt_pd and arithmetic are
// IEEE-exact, so they differ from scalar only in the sign of zero
// produced by min/max tie-breaking.
#if PWH_HAVE_AVX2

#include <immintrin.h>

#include <cstddef>
#include <cstdint>

#include "common/simd.h"
#include "common/simd_generic.h"

namespace pairwisehist {

namespace {

using Gen4 = simd_detail::Kernels<4>;

inline double Combine(const double acc[4]) {
  return (acc[0] + acc[1]) + (acc[2] + acc[3]);
}

// Exact u64 -> f64 for values < 2^52 (bin counts are row counts, far
// below): OR in the 2^52 exponent pattern and subtract 2^52.
inline __m256d U64ToDouble(__m256i vi) {
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);
  return _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(vi, magic)),
                       _mm256_set1_pd(4503599627370496.0));
}

inline __m256d CountsToDouble(const uint64_t* h) {
  return U64ToDouble(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(h)));
}

double SumAvx2(const double* x, size_t begin, size_t end) {
  double acc[4] = {0, 0, 0, 0};
  size_t t = begin;
  for (; t < end && (t & 3); ++t) acc[t & 3] += x[t];
  if (t + 4 <= end) {
    __m256d v = _mm256_loadu_pd(acc);
    for (; t + 4 <= end; t += 4) {
      v = _mm256_add_pd(v, _mm256_loadu_pd(x + t));
    }
    _mm256_storeu_pd(acc, v);
  }
  for (; t < end; ++t) acc[t & 3] += x[t];
  return Combine(acc);
}

void Sum3Avx2(const double* a, const double* b, const double* c, size_t begin,
              size_t end, double out[3]) {
  double aa[4] = {}, ab[4] = {}, ac[4] = {};
  size_t t = begin;
  for (; t < end && (t & 3); ++t) {
    aa[t & 3] += a[t];
    ab[t & 3] += b[t];
    ac[t & 3] += c[t];
  }
  if (t + 4 <= end) {
    __m256d va = _mm256_loadu_pd(aa);
    __m256d vb = _mm256_loadu_pd(ab);
    __m256d vc = _mm256_loadu_pd(ac);
    for (; t + 4 <= end; t += 4) {
      va = _mm256_add_pd(va, _mm256_loadu_pd(a + t));
      vb = _mm256_add_pd(vb, _mm256_loadu_pd(b + t));
      vc = _mm256_add_pd(vc, _mm256_loadu_pd(c + t));
    }
    _mm256_storeu_pd(aa, va);
    _mm256_storeu_pd(ab, vb);
    _mm256_storeu_pd(ac, vc);
  }
  for (; t < end; ++t) {
    aa[t & 3] += a[t];
    ab[t & 3] += b[t];
    ac[t & 3] += c[t];
  }
  out[0] = Combine(aa);
  out[1] = Combine(ab);
  out[2] = Combine(ac);
}

double DotAvx2(const double* w, const double* x, size_t begin, size_t end) {
  double acc[4] = {0, 0, 0, 0};
  size_t t = begin;
  for (; t < end && (t & 3); ++t) acc[t & 3] += w[t] * x[t];
  if (t + 4 <= end) {
    __m256d v = _mm256_loadu_pd(acc);
    for (; t + 4 <= end; t += 4) {
      v = _mm256_add_pd(
          v, _mm256_mul_pd(_mm256_loadu_pd(w + t), _mm256_loadu_pd(x + t)));
    }
    _mm256_storeu_pd(acc, v);
  }
  for (; t < end; ++t) acc[t & 3] += w[t] * x[t];
  return Combine(acc);
}

void Dot3Avx2(const double* w, const double* x, const double* y, size_t begin,
              size_t end, double out[3]) {
  double aw[4] = {}, ax[4] = {}, ay[4] = {};
  size_t t = begin;
  for (; t < end && (t & 3); ++t) {
    aw[t & 3] += w[t];
    ax[t & 3] += w[t] * x[t];
    ay[t & 3] += w[t] * y[t];
  }
  if (t + 4 <= end) {
    __m256d vw = _mm256_loadu_pd(aw);
    __m256d vx = _mm256_loadu_pd(ax);
    __m256d vy = _mm256_loadu_pd(ay);
    for (; t + 4 <= end; t += 4) {
      __m256d lw = _mm256_loadu_pd(w + t);
      vw = _mm256_add_pd(vw, lw);
      vx = _mm256_add_pd(vx, _mm256_mul_pd(lw, _mm256_loadu_pd(x + t)));
      vy = _mm256_add_pd(vy, _mm256_mul_pd(lw, _mm256_loadu_pd(y + t)));
    }
    _mm256_storeu_pd(aw, vw);
    _mm256_storeu_pd(ax, vx);
    _mm256_storeu_pd(ay, vy);
  }
  for (; t < end; ++t) {
    aw[t & 3] += w[t];
    ax[t & 3] += w[t] * x[t];
    ay[t & 3] += w[t] * y[t];
  }
  out[0] = Combine(aw);
  out[1] = Combine(ax);
  out[2] = Combine(ay);
}

void MomentsAvx2(const double* w, const double* x, size_t begin, size_t end,
                 double out[3]) {
  double aw[4] = {}, a1[4] = {}, a2[4] = {};
  size_t t = begin;
  for (; t < end && (t & 3); ++t) {
    double wx = w[t] * x[t];
    aw[t & 3] += w[t];
    a1[t & 3] += wx;
    a2[t & 3] += wx * x[t];
  }
  if (t + 4 <= end) {
    __m256d vw = _mm256_loadu_pd(aw);
    __m256d v1 = _mm256_loadu_pd(a1);
    __m256d v2 = _mm256_loadu_pd(a2);
    for (; t + 4 <= end; t += 4) {
      __m256d lw = _mm256_loadu_pd(w + t);
      __m256d lx = _mm256_loadu_pd(x + t);
      __m256d wx = _mm256_mul_pd(lw, lx);
      vw = _mm256_add_pd(vw, lw);
      v1 = _mm256_add_pd(v1, wx);
      v2 = _mm256_add_pd(v2, _mm256_mul_pd(wx, lx));
    }
    _mm256_storeu_pd(aw, vw);
    _mm256_storeu_pd(a1, v1);
    _mm256_storeu_pd(a2, v2);
  }
  for (; t < end; ++t) {
    double wx = w[t] * x[t];
    aw[t & 3] += w[t];
    a1[t & 3] += wx;
    a2[t & 3] += wx * x[t];
  }
  out[0] = Combine(aw);
  out[1] = Combine(a1);
  out[2] = Combine(a2);
}

void CornerBoundsAvx2(const double* wlo, const double* whi, const double* vlo,
                      const double* vhi, size_t begin, size_t end,
                      double out[2]) {
  double alo[4] = {}, ahi[4] = {};
  auto corner = [](double wl, double wh, double vl, double vh, double* lo,
                   double* hi) {
    double p1 = wl * vl, p2 = wl * vh, p3 = wh * vl, p4 = wh * vh;
    double mn = p1 < p2 ? p1 : p2;
    mn = mn < p3 ? mn : p3;
    mn = mn < p4 ? mn : p4;
    double mx = p1 > p2 ? p1 : p2;
    mx = mx > p3 ? mx : p3;
    mx = mx > p4 ? mx : p4;
    *lo += mn;
    *hi += mx;
  };
  size_t t = begin;
  for (; t < end && (t & 3); ++t) {
    corner(wlo[t], whi[t], vlo[t], vhi[t], &alo[t & 3], &ahi[t & 3]);
  }
  if (t + 4 <= end) {
    __m256d vl_acc = _mm256_loadu_pd(alo);
    __m256d vh_acc = _mm256_loadu_pd(ahi);
    for (; t + 4 <= end; t += 4) {
      __m256d wl = _mm256_loadu_pd(wlo + t);
      __m256d wh = _mm256_loadu_pd(whi + t);
      __m256d vl = _mm256_loadu_pd(vlo + t);
      __m256d vh = _mm256_loadu_pd(vhi + t);
      __m256d p1 = _mm256_mul_pd(wl, vl);
      __m256d p2 = _mm256_mul_pd(wl, vh);
      __m256d p3 = _mm256_mul_pd(wh, vl);
      __m256d p4 = _mm256_mul_pd(wh, vh);
      __m256d mn = _mm256_min_pd(_mm256_min_pd(_mm256_min_pd(p1, p2), p3), p4);
      __m256d mx = _mm256_max_pd(_mm256_max_pd(_mm256_max_pd(p1, p2), p3), p4);
      vl_acc = _mm256_add_pd(vl_acc, mn);
      vh_acc = _mm256_add_pd(vh_acc, mx);
    }
    _mm256_storeu_pd(alo, vl_acc);
    _mm256_storeu_pd(ahi, vh_acc);
  }
  for (; t < end; ++t) {
    corner(wlo[t], whi[t], vlo[t], vhi[t], &alo[t & 3], &ahi[t & 3]);
  }
  out[0] = Combine(alo);
  out[1] = Combine(ahi);
}

void PrefixSumAvx2(const double* x, size_t begin, size_t end, double* out) {
  double carry = 0.0;
  size_t block = begin & ~size_t{3};
  for (; block < end; block += 4) {
    if (block >= begin && block + 4 <= end) {
      __m256d v = _mm256_loadu_pd(x + block);
      // Hillis–Steele within the vector: v += shift1(v); v += shift2(v).
      __m256d s1 = _mm256_permute4x64_pd(v, _MM_SHUFFLE(2, 1, 0, 0));
      s1 = _mm256_blend_pd(s1, _mm256_setzero_pd(), 0x1);
      v = _mm256_add_pd(v, s1);
      __m256d s2 = _mm256_insertf128_pd(_mm256_setzero_pd(),
                                        _mm256_castpd256_pd128(v), 1);
      v = _mm256_add_pd(v, s2);
      _mm256_storeu_pd(out + block, _mm256_add_pd(_mm256_set1_pd(carry), v));
      __m128d hi128 = _mm256_extractf128_pd(v, 1);
      carry = carry + _mm_cvtsd_f64(_mm_unpackhi_pd(hi128, hi128));
    } else {
      // Boundary blocks: the generic W = 4 block is bit-identical.
      Gen4::PrefixBlock(x, block, begin, end, &carry, out);
    }
  }
}

size_t FindFirstGtAvx2(const double* x, size_t begin, size_t end,
                       double threshold) {
  size_t t = begin;
  const __m256d thr = _mm256_set1_pd(threshold);
  for (; t + 4 <= end; t += 4) {
    __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(x + t), thr, _CMP_GT_OQ);
    int m = _mm256_movemask_pd(cmp);
    if (m != 0) return t + static_cast<size_t>(__builtin_ctz(m));
  }
  for (; t < end; ++t) {
    if (x[t] > threshold) return t;
  }
  return kKernelNotFound;
}

size_t FindLastGtAvx2(const double* x, size_t begin, size_t end,
                      double threshold) {
  size_t t = end;
  const __m256d thr = _mm256_set1_pd(threshold);
  while (t - begin >= 4) {
    t -= 4;
    __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(x + t), thr, _CMP_GT_OQ);
    int m = _mm256_movemask_pd(cmp);
    if (m != 0) return t + static_cast<size_t>(31 - __builtin_clz(m));
  }
  while (t-- > begin) {
    if (x[t] > threshold) return t;
  }
  return kKernelNotFound;
}

void Mul3Avx2(double* ap, double* al, double* ah, const double* bp,
              const double* bl, const double* bh, size_t begin, size_t end) {
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    _mm256_storeu_pd(ap + t, _mm256_mul_pd(_mm256_loadu_pd(ap + t),
                                           _mm256_loadu_pd(bp + t)));
    _mm256_storeu_pd(al + t, _mm256_mul_pd(_mm256_loadu_pd(al + t),
                                           _mm256_loadu_pd(bl + t)));
    _mm256_storeu_pd(ah + t, _mm256_mul_pd(_mm256_loadu_pd(ah + t),
                                           _mm256_loadu_pd(bh + t)));
  }
  for (; t < end; ++t) {
    ap[t] *= bp[t];
    al[t] *= bl[t];
    ah[t] *= bh[t];
  }
}

void OrMul3Avx2(double* ap, double* al, double* ah, const double* bp,
                const double* bl, const double* bh, size_t begin, size_t end) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    _mm256_storeu_pd(
        ap + t, _mm256_mul_pd(_mm256_loadu_pd(ap + t),
                              _mm256_sub_pd(one, _mm256_loadu_pd(bp + t))));
    _mm256_storeu_pd(
        al + t, _mm256_mul_pd(_mm256_loadu_pd(al + t),
                              _mm256_sub_pd(one, _mm256_loadu_pd(bh + t))));
    _mm256_storeu_pd(
        ah + t, _mm256_mul_pd(_mm256_loadu_pd(ah + t),
                              _mm256_sub_pd(one, _mm256_loadu_pd(bl + t))));
  }
  for (; t < end; ++t) {
    ap[t] *= 1.0 - bp[t];
    al[t] *= 1.0 - bh[t];
    ah[t] *= 1.0 - bl[t];
  }
}

void Complement3Avx2(double* p, double* lo, double* hi, size_t begin,
                     size_t end) {
  const __m256d one = _mm256_set1_pd(1.0);
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256d np = _mm256_sub_pd(one, _mm256_loadu_pd(p + t));
    __m256d nlo = _mm256_sub_pd(one, _mm256_loadu_pd(hi + t));
    __m256d nhi = _mm256_sub_pd(one, _mm256_loadu_pd(lo + t));
    _mm256_storeu_pd(p + t, np);
    _mm256_storeu_pd(lo + t, nlo);
    _mm256_storeu_pd(hi + t, nhi);
  }
  for (; t < end; ++t) {
    double np = 1.0 - p[t];
    double nlo = 1.0 - hi[t];
    double nhi = 1.0 - lo[t];
    p[t] = np;
    lo[t] = nlo;
    hi[t] = nhi;
  }
}

void CountsToWeights3Avx2(const uint64_t* h, double* w, double* lo, double* hi,
                          size_t begin, size_t end) {
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256d hd = CountsToDouble(h + t);
    _mm256_storeu_pd(w + t, hd);
    _mm256_storeu_pd(lo + t, hd);
    _mm256_storeu_pd(hi + t, hd);
  }
  for (; t < end; ++t) {
    double hd = static_cast<double>(h[t]);
    w[t] = hd;
    lo[t] = hd;
    hi[t] = hd;
  }
}

void WeightsNoWidenAvx2(const uint64_t* h, const double* p, const double* pl,
                        const double* ph, double* w, double* lo, double* hi,
                        size_t begin, size_t end) {
  const __m256d zero = _mm256_setzero_pd();
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256d hd = CountsToDouble(h + t);
    _mm256_storeu_pd(w + t, _mm256_mul_pd(hd, _mm256_loadu_pd(p + t)));
    __m256d l = _mm256_mul_pd(hd, _mm256_loadu_pd(pl + t));
    __m256d u = _mm256_mul_pd(hd, _mm256_loadu_pd(ph + t));
    _mm256_storeu_pd(lo + t, _mm256_min_pd(_mm256_max_pd(l, zero), hd));
    _mm256_storeu_pd(hi + t, _mm256_min_pd(_mm256_max_pd(u, zero), hd));
  }
  for (; t < end; ++t) {
    double hd = static_cast<double>(h[t]);
    w[t] = hd * p[t];
    double l = hd * pl[t];
    double u = hd * ph[t];
    lo[t] = l < 0.0 ? 0.0 : (l > hd ? hd : l);
    hi[t] = u < 0.0 ? 0.0 : (u > hd ? hd : u);
  }
}

void WeightsWidenAvx2(const uint64_t* h, const double* p, const double* pl,
                      const double* ph, double z, double fpc, double* w,
                      double* lo, double* hi, size_t begin, size_t end) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d vz = _mm256_set1_pd(z);
  const __m256d vfpc = _mm256_set1_pd(fpc);
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256d hd = CountsToDouble(h + t);
    _mm256_storeu_pd(w + t, _mm256_mul_pd(hd, _mm256_loadu_pd(p + t)));
    __m256d l = _mm256_mul_pd(hd, _mm256_loadu_pd(pl + t));
    __m256d u = _mm256_mul_pd(hd, _mm256_loadu_pd(ph + t));
    // Widened bounds; lanes with h == 0 divide 0/0 and are blended away.
    __m256d mask = _mm256_cmp_pd(hd, zero, _CMP_GT_OQ);
    __m256d bl =
        _mm256_min_pd(_mm256_max_pd(_mm256_div_pd(l, hd), zero), one);
    __m256d bh =
        _mm256_min_pd(_mm256_max_pd(_mm256_div_pd(u, hd), zero), one);
    __m256d tl = _mm256_mul_pd(
        vz, _mm256_sqrt_pd(_mm256_mul_pd(
                _mm256_mul_pd(_mm256_mul_pd(hd, bl), _mm256_sub_pd(one, bl)),
                vfpc)));
    __m256d th = _mm256_mul_pd(
        vz, _mm256_sqrt_pd(_mm256_mul_pd(
                _mm256_mul_pd(_mm256_mul_pd(hd, bh), _mm256_sub_pd(one, bh)),
                vfpc)));
    l = _mm256_blendv_pd(l, _mm256_sub_pd(l, tl), mask);
    u = _mm256_blendv_pd(u, _mm256_add_pd(u, th), mask);
    _mm256_storeu_pd(lo + t, _mm256_min_pd(_mm256_max_pd(l, zero), hd));
    _mm256_storeu_pd(hi + t, _mm256_min_pd(_mm256_max_pd(u, zero), hd));
  }
  for (; t < end; ++t) {
    double hd = static_cast<double>(h[t]);
    w[t] = hd * p[t];
    double l = hd * pl[t];
    double u = hd * ph[t];
    if (hd > 0) {
      double bl = l / hd;
      bl = bl < 0.0 ? 0.0 : (bl > 1.0 ? 1.0 : bl);
      double bh = u / hd;
      bh = bh < 0.0 ? 0.0 : (bh > 1.0 ? 1.0 : bh);
      l -= z * __builtin_sqrt(hd * bl * (1.0 - bl) * fpc);
      u += z * __builtin_sqrt(hd * bh * (1.0 - bh) * fpc);
    }
    lo[t] = l < 0.0 ? 0.0 : (l > hd ? hd : l);
    hi[t] = u < 0.0 ? 0.0 : (u > hd ? hd : u);
  }
}

void NormProb3Avx2(const uint64_t* h, const double* np, const double* nlo,
                   const double* nhi, double* p, double* lo, double* hi,
                   size_t begin, size_t end) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256d hd = CountsToDouble(h + t);
    __m256d mask = _mm256_cmp_pd(hd, zero, _CMP_GT_OQ);
    __m256d vp = _mm256_min_pd(
        _mm256_max_pd(_mm256_div_pd(_mm256_loadu_pd(np + t), hd), zero), one);
    __m256d vlo = _mm256_min_pd(
        _mm256_max_pd(_mm256_div_pd(_mm256_loadu_pd(nlo + t), hd), zero), vp);
    __m256d vhi = _mm256_min_pd(
        _mm256_max_pd(_mm256_div_pd(_mm256_loadu_pd(nhi + t), hd), vp), one);
    _mm256_storeu_pd(p + t, _mm256_and_pd(vp, mask));
    _mm256_storeu_pd(lo + t, _mm256_and_pd(vlo, mask));
    _mm256_storeu_pd(hi + t, _mm256_and_pd(vhi, mask));
  }
  for (; t < end; ++t) {
    double hd = static_cast<double>(h[t]);
    if (hd <= 0) {
      p[t] = lo[t] = hi[t] = 0.0;
      continue;
    }
    double d = np[t] / hd;
    double vp = d < 0.0 ? 0.0 : (d > 1.0 ? 1.0 : d);
    d = nlo[t] / hd;
    double vlo = d < 0.0 ? 0.0 : (d > vp ? vp : d);
    d = nhi[t] / hd;
    double vhi = d < vp ? vp : (d > 1.0 ? 1.0 : d);
    p[t] = vp;
    lo[t] = vlo;
    hi[t] = vhi;
  }
}

// GCC's 3-operand _mm256_i32gather_pd expands with an undefined initial
// destination, tripping -Wmaybe-uninitialized inside avx2intrin.h.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
void GatherDot3Avx2(const uint64_t* cnt, const uint32_t* col,
                    const double* b0, const double* b1, const double* b2,
                    size_t begin, size_t end, double out[3]) {
  double a0[4] = {}, a1[4] = {}, a2[4] = {};
  size_t e = begin;
  for (; e < end && (e & 3); ++e) {
    double c = static_cast<double>(cnt[e]);
    size_t t = col[e];
    a0[e & 3] += c * b0[t];
    a1[e & 3] += c * b1[t];
    a2[e & 3] += c * b2[t];
  }
  if (e + 4 <= end) {
    __m256d v0 = _mm256_loadu_pd(a0);
    __m256d v1 = _mm256_loadu_pd(a1);
    __m256d v2 = _mm256_loadu_pd(a2);
    for (; e + 4 <= end; e += 4) {
      __m256d c = CountsToDouble(cnt + e);
      __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(col + e));
      v0 = _mm256_add_pd(
          v0, _mm256_mul_pd(c, _mm256_i32gather_pd(b0, idx, 8)));
      v1 = _mm256_add_pd(
          v1, _mm256_mul_pd(c, _mm256_i32gather_pd(b1, idx, 8)));
      v2 = _mm256_add_pd(
          v2, _mm256_mul_pd(c, _mm256_i32gather_pd(b2, idx, 8)));
    }
    _mm256_storeu_pd(a0, v0);
    _mm256_storeu_pd(a1, v1);
    _mm256_storeu_pd(a2, v2);
  }
  for (; e < end; ++e) {
    double c = static_cast<double>(cnt[e]);
    size_t t = col[e];
    a0[e & 3] += c * b0[t];
    a1[e & 3] += c * b1[t];
    a2[e & 3] += c * b2[t];
  }
  out[0] = Combine(a0);
  out[1] = Combine(a1);
  out[2] = Combine(a2);
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

// Multi-row reductions over column-major cell prefixes (elementwise across
// rows — each row's accumulator sees the same addend as the scalar body,
// so results are bit-identical on every tier).

void RunMass3Avx2(const uint64_t* pre_b, const uint64_t* pre_e, double* ap,
                  double* al, double* ah, size_t begin, size_t end) {
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pre_b + t));
    __m256i e =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pre_e + t));
    __m256d m = U64ToDouble(_mm256_sub_epi64(e, b));
    _mm256_storeu_pd(ap + t, _mm256_add_pd(_mm256_loadu_pd(ap + t), m));
    _mm256_storeu_pd(al + t, _mm256_add_pd(_mm256_loadu_pd(al + t), m));
    _mm256_storeu_pd(ah + t, _mm256_add_pd(_mm256_loadu_pd(ah + t), m));
  }
  for (; t < end; ++t) {
    double m = static_cast<double>(pre_e[t] - pre_b[t]);
    ap[t] += m;
    al[t] += m;
    ah[t] += m;
  }
}

void CellAxpy3Avx2(const uint64_t* pre_b, const uint64_t* pre_e, double bp,
                   double bl, double bh, double* ap, double* al, double* ah,
                   size_t begin, size_t end) {
  const __m256d vp = _mm256_set1_pd(bp);
  const __m256d vl = _mm256_set1_pd(bl);
  const __m256d vh = _mm256_set1_pd(bh);
  size_t t = begin;
  for (; t + 4 <= end; t += 4) {
    __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pre_b + t));
    __m256i e =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(pre_e + t));
    __m256d m = U64ToDouble(_mm256_sub_epi64(e, b));
    _mm256_storeu_pd(
        ap + t, _mm256_add_pd(_mm256_loadu_pd(ap + t), _mm256_mul_pd(m, vp)));
    _mm256_storeu_pd(
        al + t, _mm256_add_pd(_mm256_loadu_pd(al + t), _mm256_mul_pd(m, vl)));
    _mm256_storeu_pd(
        ah + t, _mm256_add_pd(_mm256_loadu_pd(ah + t), _mm256_mul_pd(m, vh)));
  }
  for (; t < end; ++t) {
    double m = static_cast<double>(pre_e[t] - pre_b[t]);
    ap[t] += m * bp;
    al[t] += m * bl;
    ah[t] += m * bh;
  }
}

// Batched Eq. 29 weighting: the shared run-walk driver dispatching to the
// AVX2 elementwise weighting kernels per range.
void WeightsBatchAvx2(const WeightRow* rows, size_t n_rows, double z,
                      double fpc, int widen) {
  simd_detail::WeightsBatchWalk(rows, n_rows, z, fpc, widen,
                                &WeightsNoWidenAvx2, &WeightsWidenAvx2,
                                &CountsToWeights3Avx2);
}

}  // namespace

extern const KernelOps kAvx2Kernels;
const KernelOps kAvx2Kernels = {
    "avx2",
    4,
    &SumAvx2,
    &Sum3Avx2,
    &DotAvx2,
    &Dot3Avx2,
    &MomentsAvx2,
    &CornerBoundsAvx2,
    &PrefixSumAvx2,
    &FindFirstGtAvx2,
    &FindLastGtAvx2,
    &Mul3Avx2,
    &OrMul3Avx2,
    &Complement3Avx2,
    &CountsToWeights3Avx2,
    &WeightsNoWidenAvx2,
    &WeightsWidenAvx2,
    &NormProb3Avx2,
    &GatherDot3Avx2,
    &RunMass3Avx2,
    &CellAxpy3Avx2,
    &WeightsBatchAvx2,
};

}  // namespace pairwisehist

#endif  // PWH_HAVE_AVX2
