// Byte-level serialization helpers for synopses and compressed tables.
//
// Little-endian fixed-width primitives plus LEB128 varints. The PairwiseHist
// storage encoding (Fig. 6 of the paper) is byte-oriented at the section
// level with bit-packed payloads produced by BitWriter.
#ifndef PAIRWISEHIST_COMMON_SERIALIZE_H_
#define PAIRWISEHIST_COMMON_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

/// Appends primitives to a growable byte buffer.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU16(uint16_t v) { WriteLE(&v, 2); }
  void WriteU32(uint32_t v) { WriteLE(&v, 4); }
  void WriteU64(uint64_t v) { WriteLE(&v, 8); }
  void WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }
  void WriteF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    WriteU64(bits);
  }

  /// Unsigned LEB128.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void WriteSignedVarint(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed string.
  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed raw bytes.
  void WriteBytes(const std::vector<uint8_t>& b) {
    WriteVarint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Finish() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void WriteLE(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);  // assumes little-endian host
  }
  std::vector<uint8_t> buf_;
};

/// Reads primitives written by ByteWriter. All reads are bounds-checked and
/// return DataLoss on truncation.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}
  explicit ByteReader(std::span<const uint8_t> data)
      : ByteReader(data.data(), data.size()) {}

  StatusOr<uint8_t> ReadU8() {
    if (pos_ + 1 > size_) return Truncated();
    return data_[pos_++];
  }
  StatusOr<uint16_t> ReadU16() { return ReadLE<uint16_t>(); }
  StatusOr<uint32_t> ReadU32() { return ReadLE<uint32_t>(); }
  StatusOr<uint64_t> ReadU64() { return ReadLE<uint64_t>(); }
  StatusOr<int64_t> ReadI64() {
    PH_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }
  StatusOr<double> ReadF64() {
    PH_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  StatusOr<uint64_t> ReadVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return Truncated();
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
      if (shift >= 64) return Status::DataLoss("varint too long");
    }
    return v;
  }

  /// Allocation-free ReadVarint for hot decode loops (PWS3 walks two of
  /// these per persisted array): returns false on truncation or overflow
  /// instead of materializing a Status.
  bool ReadVarintFast(uint64_t* out) {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= size_) return false;
      uint8_t byte = data_[pos_++];
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if (!(byte & 0x80)) break;
      shift += 7;
      if (shift >= 64) return false;
    }
    *out = v;
    return true;
  }

  StatusOr<int64_t> ReadSignedVarint() {
    PH_ASSIGN_OR_RETURN(uint64_t z, ReadVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  StatusOr<std::string> ReadString() {
    PH_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (pos_ + n > size_) return Truncated();
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  StatusOr<std::vector<uint8_t>> ReadBytes() {
    PH_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (pos_ + n > size_) return Truncated();
    std::vector<uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Zero-copy variant of ReadBytes: the span aliases the reader's buffer,
  /// so it is valid only while the underlying bytes outlive it.
  StatusOr<std::span<const uint8_t>> ReadBytesView() {
    PH_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (pos_ + n > size_) return Truncated();
    std::span<const uint8_t> b(data_ + pos_, n);
    pos_ += n;
    return b;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  template <typename T>
  StatusOr<T> ReadLE() {
    if (pos_ + sizeof(T) > size_) return Truncated();
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  static Status Truncated() {
    return Status::DataLoss("ByteReader: truncated input");
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_COMMON_SERIALIZE_H_
