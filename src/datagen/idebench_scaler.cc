#include "datagen/idebench_scaler.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace pairwisehist {

namespace {

// Cholesky factorization with diagonal jitter escalation. `a` is d x d
// row-major symmetric; returns lower-triangular L (row-major) with a(=LL^T).
std::vector<double> RobustCholesky(std::vector<double> a, size_t d) {
  for (double jitter = 0.0;; jitter = jitter == 0.0 ? 1e-8 : jitter * 10) {
    std::vector<double> m = a;
    for (size_t i = 0; i < d; ++i) m[i * d + i] += jitter;
    std::vector<double> l(d * d, 0.0);
    bool ok = true;
    for (size_t i = 0; i < d && ok; ++i) {
      for (size_t j = 0; j <= i; ++j) {
        double sum = m[i * d + j];
        for (size_t k = 0; k < j; ++k) sum -= l[i * d + k] * l[j * d + k];
        if (i == j) {
          if (sum <= 0) {
            ok = false;
            break;
          }
          l[i * d + i] = std::sqrt(sum);
        } else {
          l[i * d + j] = sum / l[j * d + j];
        }
      }
    }
    if (ok) {
      // Re-normalize rows so the implied marginals stay N(0,1).
      for (size_t i = 0; i < d; ++i) {
        double norm = 0;
        for (size_t k = 0; k <= i; ++k) norm += l[i * d + k] * l[i * d + k];
        norm = std::sqrt(norm);
        if (norm > 0) {
          for (size_t k = 0; k <= i; ++k) l[i * d + k] /= norm;
        } else {
          l[i * d + i] = 1.0;
        }
      }
      return l;
    }
    if (jitter > 1.0) {
      // Give up on correlation: identity copula.
      std::vector<double> id(d * d, 0.0);
      for (size_t i = 0; i < d; ++i) id[i * d + i] = 1.0;
      return id;
    }
  }
}

}  // namespace

StatusOr<IdebenchScaler> IdebenchScaler::Fit(const Table& source,
                                             int mixture_components) {
  if (source.NumColumns() == 0 || source.NumRows() == 0) {
    return Status::InvalidArgument("IdebenchScaler: empty source table");
  }
  if (mixture_components < 1) mixture_components = 1;
  const size_t d = source.NumColumns();
  const size_t n = source.NumRows();

  IdebenchScaler scaler;
  scaler.table_name_ = source.name() + "_idebench";
  scaler.columns_.resize(d);

  // Normal scores per column for the copula fit (null rows -> 0).
  std::vector<std::vector<double>> scores(d, std::vector<double>(n, 0.0));

  for (size_t c = 0; c < d; ++c) {
    const Column& col = source.column(c);
    ColumnModel& m = scaler.columns_[c];
    m.name = col.name();
    m.type = col.type();
    m.decimals = col.decimals();
    m.null_prob = static_cast<double>(col.null_count()) / n;
    m.dictionary = col.dictionary();

    // Sorted non-null values.
    std::vector<double> vals;
    vals.reserve(col.non_null_count());
    for (size_t r = 0; r < n; ++r) {
      if (!col.IsNull(r)) vals.push_back(col.Value(r));
    }
    if (vals.empty()) {
      m.min_value = 0;
      m.max_value = 0;
      m.mixture.push_back({1.0, 0.0, 0.0});
      continue;
    }
    std::sort(vals.begin(), vals.end());
    m.min_value = vals.front();
    m.max_value = vals.back();

    if (col.type() == DataType::kCategorical) {
      size_t ncats = std::max<size_t>(col.dictionary().size(),
                                      static_cast<size_t>(vals.back()) + 1);
      std::vector<double> freq(ncats, 0.0);
      for (double v : vals) {
        size_t code = static_cast<size_t>(v);
        if (code < ncats) freq[code] += 1.0;
      }
      m.category_cdf.resize(ncats);
      double acc = 0;
      for (size_t i = 0; i < ncats; ++i) {
        acc += freq[i] / vals.size();
        m.category_cdf[i] = acc;
      }
    } else {
      // Quantile-bucket Gaussian mixture: k equal-probability buckets, each
      // modelled by its own Gaussian. This is the "normalisation + Gaussian
      // models" smoothing the paper attributes to IDEBench.
      int k = mixture_components;
      size_t per = std::max<size_t>(1, vals.size() / k);
      for (int b = 0; b < k; ++b) {
        size_t lo = b * per;
        size_t hi = (b == k - 1) ? vals.size() : (b + 1) * per;
        if (lo >= vals.size()) break;
        hi = std::min(hi, vals.size());
        double sum = 0, sum2 = 0;
        for (size_t i = lo; i < hi; ++i) {
          sum += vals[i];
          sum2 += vals[i] * vals[i];
        }
        double cnt = static_cast<double>(hi - lo);
        double mean = sum / cnt;
        double var = std::max(0.0, sum2 / cnt - mean * mean);
        scaler.columns_[c].mixture.push_back(
            {cnt / vals.size(), mean, std::sqrt(var)});
      }
    }

    // Normal scores: rank within the sorted values -> N(0,1) quantile.
    for (size_t r = 0; r < n; ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      auto lo = std::lower_bound(vals.begin(), vals.end(), v);
      auto hi = std::upper_bound(vals.begin(), vals.end(), v);
      double rank = (static_cast<double>(lo - vals.begin()) +
                     static_cast<double>(hi - vals.begin())) /
                    2.0;
      double u = (rank + 0.5) / (vals.size() + 1.0);
      u = std::clamp(u, 1e-9, 1.0 - 1e-9);
      scores[c][r] = NormalQuantile(u);
    }
  }

  // Correlation matrix of the normal scores.
  std::vector<double> corr(d * d, 0.0);
  for (size_t i = 0; i < d; ++i) {
    corr[i * d + i] = 1.0;
    for (size_t j = 0; j < i; ++j) {
      double sxy = 0, sxx = 0, syy = 0;
      for (size_t r = 0; r < n; ++r) {
        double x = scores[i][r], y = scores[j][r];
        sxy += x * y;
        sxx += x * x;
        syy += y * y;
      }
      double rho = (sxx > 0 && syy > 0) ? sxy / std::sqrt(sxx * syy) : 0.0;
      rho = std::clamp(rho, -0.999, 0.999);
      corr[i * d + j] = corr[j * d + i] = rho;
    }
  }
  scaler.chol_ = RobustCholesky(std::move(corr), d);
  return scaler;
}

double IdebenchScaler::SampleNumeric(const ColumnModel& m, double u) const {
  // Pick the mixture bucket by cumulative weight, then invert the bucket's
  // Gaussian with the within-bucket residual uniform.
  double acc = 0;
  for (const auto& b : m.mixture) {
    if (u < acc + b.weight || &b == &m.mixture.back()) {
      double local = (u - acc) / std::max(1e-12, b.weight);
      local = std::clamp(local, 1e-9, 1.0 - 1e-9);
      double v = b.mean + b.stddev * NormalQuantile(local);
      return std::clamp(v, m.min_value, m.max_value);
    }
    acc += b.weight;
  }
  return m.min_value;
}

Table IdebenchScaler::Generate(size_t rows, uint64_t seed) const {
  Rng rng(seed);
  const size_t d = columns_.size();
  Table out(table_name_);
  for (const auto& m : columns_) {
    Column col(m.name, m.type, m.decimals);
    col.SetDictionary(m.dictionary);
    col.Reserve(rows);
    out.AddColumn(std::move(col));
  }

  std::vector<double> z(d), zc(d);
  double pow10[10];
  for (int i = 0; i < 10; ++i) pow10[i] = std::pow(10.0, i);

  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < d; ++c) z[c] = rng.Normal();
    for (size_t c = 0; c < d; ++c) {
      double acc = 0;
      for (size_t k = 0; k <= c; ++k) acc += chol_[c * d + k] * z[k];
      zc[c] = acc;
    }
    for (size_t c = 0; c < d; ++c) {
      const ColumnModel& m = columns_[c];
      Column& col = out.column(c);
      if (m.null_prob > 0 && rng.Bernoulli(m.null_prob)) {
        col.AppendNull();
        continue;
      }
      double u = std::clamp(NormalCdf(zc[c]), 1e-9, 1.0 - 1e-9);
      if (m.type == DataType::kCategorical) {
        size_t code = 0;
        while (code + 1 < m.category_cdf.size() &&
               u > m.category_cdf[code]) {
          ++code;
        }
        col.Append(static_cast<double>(code));
      } else {
        double v = SampleNumeric(m, u);
        if (m.type == DataType::kInt64 || m.type == DataType::kTimestamp) {
          v = std::round(v);
        } else {
          int dec = std::clamp(m.decimals, 0, 9);
          v = std::round(v * pow10[dec]) / pow10[dec];
        }
        col.Append(v);
      }
    }
  }
  return out;
}

}  // namespace pairwisehist
