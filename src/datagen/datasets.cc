#include "datagen/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace pairwisehist {

namespace {

constexpr double kSecondsPerDay = 86400.0;

// Diurnal shape in [0,1]: low overnight, morning ramp, evening peak.
double DiurnalProfile(double t_seconds) {
  double hour = std::fmod(t_seconds / 3600.0, 24.0);
  double morning = std::exp(-std::pow(hour - 8.0, 2) / 8.0);
  double evening = std::exp(-std::pow(hour - 19.0, 2) / 6.0);
  double base = 0.15;
  return base + 0.45 * morning + 0.75 * evening;
}

// Seasonal shape in [-1,1] over a year starting at t=0.
double SeasonalProfile(double t_seconds) {
  return std::sin(2.0 * M_PI * t_seconds / (365.25 * kSecondsPerDay));
}

// Two-state Markov regime (e.g. an appliance that is on or off). `p_on` and
// `p_off` are per-step switching probabilities.
class OnOffRegime {
 public:
  OnOffRegime(Rng* rng, double p_turn_on, double p_turn_off)
      : rng_(rng), p_on_(p_turn_on), p_off_(p_turn_off) {}
  bool Step() {
    if (on_) {
      if (rng_->Bernoulli(p_off_)) on_ = false;
    } else {
      if (rng_->Bernoulli(p_on_)) on_ = true;
    }
    return on_;
  }

 private:
  Rng* rng_;
  double p_on_, p_off_;
  bool on_ = false;
};

// Mean-reverting random walk (Ornstein–Uhlenbeck-ish), used for sensor
// baselines that drift slowly.
class DriftWalk {
 public:
  DriftWalk(Rng* rng, double mean, double revert, double step)
      : rng_(rng), mean_(mean), revert_(revert), step_(step), x_(mean) {}
  double Step() {
    x_ += revert_ * (mean_ - x_) + rng_->Normal(0.0, step_);
    return x_;
  }

 private:
  Rng* rng_;
  double mean_, revert_, step_;
  double x_;
};

double Round(double v, int decimals) {
  double scale = std::pow(10.0, decimals);
  return std::round(v * scale) / scale;
}

Column TimestampColumn(const std::string& name, size_t rows,
                       double interval_s, double jitter_s, Rng* rng) {
  Column c(name, DataType::kTimestamp, 0);
  c.Reserve(rows);
  double t = 1577836800.0;  // 2020-01-01 00:00 UTC
  for (size_t i = 0; i < rows; ++i) {
    c.Append(std::floor(t));
    t += interval_s + (jitter_s > 0 ? rng->Uniform(0, jitter_s) : 0.0);
  }
  return c;
}

std::vector<std::string> NamedCategories(const std::string& prefix, int n) {
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* kSpecs =
      new std::vector<DatasetSpec>{
          {"aqua", 25000, 913465, 13, "aquaponics ponds, async sampling"},
          {"basement", 25000, 1051200, 12, "basement power meters"},
          {"build", 40000, 14381639, 7, "smart building room sensors"},
          {"current", 25000, 1051200, 24, "electric meter currents"},
          {"flights", 50000, 5819079, 32, "flight delays & cancellations"},
          {"furnace", 25000, 1051200, 12, "furnace power, cycling load"},
          {"gas", 25000, 928991, 12, "home gas sensor array"},
          {"light", 15000, 405184, 9, "IoT light detection"},
          {"power", 40000, 2049280, 10, "household power consumption"},
          {"taxis", 40000, 3889032, 23, "Chicago taxi trips 2020"},
          {"temp", 40000, 10553597, 5, "temperature IoT"},
      };
  return *kSpecs;
}

StatusOr<Table> MakeDataset(const std::string& name, size_t rows,
                            uint64_t seed) {
  for (const auto& spec : AllDatasets()) {
    if (spec.name != name) continue;
    size_t n = rows == 0 ? spec.default_rows : rows;
    if (name == "aqua") return MakeAqua(n, seed);
    if (name == "basement") return MakeBasement(n, seed);
    if (name == "build") return MakeBuild(n, seed);
    if (name == "current") return MakeCurrent(n, seed);
    if (name == "flights") return MakeFlights(n, seed);
    if (name == "furnace") return MakeFurnace(n, seed);
    if (name == "gas") return MakeGas(n, seed);
    if (name == "light") return MakeLight(n, seed);
    if (name == "power") return MakePower(n, seed);
    if (name == "taxis") return MakeTaxis(n, seed);
    if (name == "temp") return MakeTemp(n, seed);
  }
  return Status::NotFound("unknown dataset: " + name);
}

// ---------------------------------------------------------------------------
// Aqua: 4 aquaponics ponds, each reporting (temperature, pH, dissolved
// oxygen) on its own schedule, merged on a shared timestamp. Every row comes
// from exactly one pond, so 9 of the 12 sensor columns are null — the
// asynchronous-sampling null pattern the paper calls out.
// Columns (13): timestamp + 4 × (temp, ph, do).
Table MakeAqua(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("aqua");
  t.AddColumn(TimestampColumn("timestamp", rows, 30.0, 15.0, &rng));

  std::vector<DriftWalk> temp_walks, ph_walks, do_walks;
  for (int p = 0; p < 4; ++p) {
    temp_walks.emplace_back(&rng, 24.0 + p * 1.5, 0.01, 0.08);
    ph_walks.emplace_back(&rng, 6.8 + 0.2 * p, 0.02, 0.02);
    do_walks.emplace_back(&rng, 5.5 + 0.8 * p, 0.02, 0.10);
  }
  std::vector<Column> cols;
  for (int p = 0; p < 4; ++p) {
    cols.emplace_back("pond" + std::to_string(p) + "_temp",
                      DataType::kFloat64, 2);
    cols.emplace_back("pond" + std::to_string(p) + "_ph", DataType::kFloat64,
                      2);
    cols.emplace_back("pond" + std::to_string(p) + "_do", DataType::kFloat64,
                      2);
  }
  for (auto& c : cols) c.Reserve(rows);

  for (size_t r = 0; r < rows; ++r) {
    int pond = static_cast<int>(rng.UniformInt(uint64_t{4}));
    double temp = temp_walks[pond].Step();
    double ph = ph_walks[pond].Step();
    // Dissolved oxygen anti-correlates with temperature.
    double dox = do_walks[pond].Step() - 0.12 * (temp - 24.0) +
                 rng.Normal(0.0, 0.05);
    for (int p = 0; p < 4; ++p) {
      if (p == pond) {
        cols[p * 3 + 0].Append(Round(temp, 2));
        cols[p * 3 + 1].Append(Round(std::clamp(ph, 4.0, 9.5), 2));
        cols[p * 3 + 2].Append(Round(std::max(0.1, dox), 2));
      } else {
        cols[p * 3 + 0].AppendNull();
        cols[p * 3 + 1].AppendNull();
        cols[p * 3 + 2].AppendNull();
      }
    }
  }
  for (auto& c : cols) t.AddColumn(std::move(c));
  return t;
}

// ---------------------------------------------------------------------------
// Basement: minutely power metering of a basement circuit (AMPds2-style).
// Columns (12): timestamp, V, I, f, pf, P, Q, S, energy counter, plus three
// appliance sub-loads with on/off regimes (bimodal marginals).
Table MakeBasement(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("basement");
  t.AddColumn(TimestampColumn("timestamp", rows, 60.0, 0.0, &rng));

  Column volt("voltage", DataType::kFloat64, 1);
  Column curr("current", DataType::kFloat64, 2);
  Column freq("frequency", DataType::kFloat64, 2);
  Column pf("power_factor", DataType::kFloat64, 3);
  Column p("active_power", DataType::kFloat64, 1);
  Column q("reactive_power", DataType::kFloat64, 1);
  Column s("apparent_power", DataType::kFloat64, 1);
  Column energy("energy_wh", DataType::kInt64, 0);
  Column light_load("light_load", DataType::kFloat64, 1);
  Column freezer_load("freezer_load", DataType::kFloat64, 1);
  Column pump_load("pump_load", DataType::kFloat64, 1);

  OnOffRegime light_r(&rng, 0.02, 0.05), freezer_r(&rng, 0.08, 0.12),
      pump_r(&rng, 0.01, 0.20);
  double energy_acc = 0;
  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 60.0) {
    double v = 119.5 + 1.5 * std::sin(2 * M_PI * t_s / kSecondsPerDay) +
               rng.Normal(0, 0.4);
    double lights = light_r.Step() ? 60.0 + rng.Normal(0, 2.0) : 0.0;
    double freezer = freezer_r.Step() ? 130.0 + rng.Normal(0, 5.0) : 4.0;
    double pump = pump_r.Step() ? 480.0 + rng.Normal(0, 12.0) : 0.0;
    double active = 25.0 + lights + freezer + pump +
                    15.0 * DiurnalProfile(t_s) + rng.Normal(0, 3.0);
    active = std::max(5.0, active);
    double pf_v = std::clamp(0.88 + 0.06 * (pump > 100 ? -1 : 1) +
                                 rng.Normal(0, 0.02),
                             0.5, 1.0);
    double apparent = active / pf_v;
    double reactive = std::sqrt(std::max(
        0.0, apparent * apparent - active * active));
    energy_acc += active / 60.0;

    volt.Append(Round(v, 1));
    curr.Append(Round(apparent / v, 2));
    freq.Append(Round(60.0 + rng.Normal(0, 0.02), 2));
    pf.Append(Round(pf_v, 3));
    p.Append(Round(active, 1));
    q.Append(Round(reactive, 1));
    s.Append(Round(apparent, 1));
    energy.Append(std::floor(energy_acc));
    light_load.Append(Round(lights, 1));
    freezer_load.Append(Round(freezer, 1));
    pump_load.Append(Round(pump, 1));
  }
  for (auto* c : {&volt, &curr, &freq, &pf, &p, &q, &s, &energy, &light_load,
                  &freezer_load, &pump_load}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Build: smart-building room sensors (KETI-style). Each row is one reading
// from one of 50 rooms; readings carry CO2/humidity/temperature/light/PIR.
// Columns (7): timestamp, room, co2, humidity, temperature, light, pir.
Table MakeBuild(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("build");
  t.AddColumn(TimestampColumn("timestamp", rows, 6.0, 4.0, &rng));

  const int kRooms = 50;
  Column room("room", DataType::kCategorical, 0);
  room.SetDictionary(NamedCategories("room_", kRooms));
  Column co2("co2", DataType::kFloat64, 1);
  Column hum("humidity", DataType::kFloat64, 2);
  Column temp("temperature", DataType::kFloat64, 2);
  Column light("light", DataType::kFloat64, 1);
  Column pir("pir", DataType::kInt64, 0);

  // Per-room occupancy bias: some rooms are busy, most are quiet (Zipf).
  std::vector<double> busy(kRooms);
  for (int i = 0; i < kRooms; ++i) busy[i] = 1.0 / std::sqrt(i + 1.0);

  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 6.0) {
    int rm = static_cast<int>(rng.Zipf(kRooms, 1.1));
    double occ = busy[rm] * DiurnalProfile(t_s);
    bool occupied = rng.Bernoulli(std::min(0.9, occ));
    double c = 420 + 600 * occ + (occupied ? rng.Uniform(0, 300) : 0) +
               rng.Normal(0, 20);
    double h = 45 + 8 * SeasonalProfile(t_s) + (occupied ? 3 : 0) +
               rng.Normal(0, 1.5);
    double tp = 21.5 + 2.0 * SeasonalProfile(t_s) + (occupied ? 0.8 : 0) +
                rng.Normal(0, 0.4);
    double lt = occupied ? rng.Uniform(180, 520)
                         : 20 * DiurnalProfile(t_s) + rng.Uniform(0, 10);

    room.Append(rm);
    co2.Append(Round(std::max(380.0, c), 1));
    hum.Append(Round(std::clamp(h, 10.0, 95.0), 2));
    temp.Append(Round(tp, 2));
    light.Append(Round(std::max(0.0, lt), 1));
    pir.Append(occupied ? rng.UniformInt(int64_t{1}, int64_t{36}) : 0);
  }
  for (auto* c : {&room, &co2, &hum, &temp, &light, &pir}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Current: per-breaker current measurements for 23 circuits plus timestamp
// (AMPds2 current dataset shape). Circuits have distinct base loads, duty
// cycles and spike behaviour; several share the same diurnal driver so
// pairwise correlation is strong.
// Columns (24): timestamp + 23 circuit currents.
Table MakeCurrent(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("current");
  t.AddColumn(TimestampColumn("timestamp", rows, 60.0, 0.0, &rng));

  const int kCircuits = 23;
  std::vector<Column> cols;
  std::vector<OnOffRegime> regimes;
  std::vector<double> base(kCircuits), amp(kCircuits);
  for (int i = 0; i < kCircuits; ++i) {
    cols.emplace_back("circuit_" + std::to_string(i), DataType::kFloat64, 2);
    cols.back().Reserve(rows);
    regimes.emplace_back(&rng, 0.01 + 0.004 * (i % 7), 0.05 + 0.01 * (i % 5));
    base[i] = 0.05 + 0.1 * (i % 4);
    amp[i] = 0.8 + 1.7 * (i % 6);
  }
  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 60.0) {
    double diurnal = DiurnalProfile(t_s);
    for (int i = 0; i < kCircuits; ++i) {
      bool on = regimes[i].Step();
      double share = (i % 3 == 0) ? diurnal : 1.0;
      double a = base[i] + (on ? amp[i] * share : 0.0) +
                 std::fabs(rng.Normal(0, 0.03));
      cols[i].Append(Round(a, 2));
    }
  }
  for (auto& c : cols) t.AddColumn(std::move(c));
  return t;
}

// ---------------------------------------------------------------------------
// Flights: USDOT-style flight records with all 32 columns the paper uses.
// Delay columns are heavy-tailed mixtures; arrival delay is strongly coupled
// to departure delay; cancelled flights null out the in-air fields — the
// missing-value pattern the paper highlights.
Table MakeFlights(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("flights");

  const int kAirlines = 14, kAirports = 60, kTails = 240;
  std::vector<double> airline_w = ZipfWeights(kAirlines, 0.8);
  std::vector<double> airport_w = ZipfWeights(kAirports, 1.05);

  Column year("year", DataType::kInt64, 0);
  Column month("month", DataType::kInt64, 0);
  Column day("day", DataType::kInt64, 0);
  Column dow("day_of_week", DataType::kInt64, 0);
  Column airline("airline", DataType::kCategorical, 0);
  airline.SetDictionary(NamedCategories("AL", kAirlines));
  Column flight_number("flight_number", DataType::kInt64, 0);
  Column tail("tail_number", DataType::kCategorical, 0);
  tail.SetDictionary(NamedCategories("N", kTails));
  Column origin("origin_airport", DataType::kCategorical, 0);
  origin.SetDictionary(NamedCategories("AP", kAirports));
  Column dest("destination_airport", DataType::kCategorical, 0);
  dest.SetDictionary(NamedCategories("AP", kAirports));
  Column sched_dep("scheduled_departure", DataType::kInt64, 0);
  Column dep_time("departure_time", DataType::kInt64, 0);
  Column dep_delay("departure_delay", DataType::kFloat64, 1);
  Column taxi_out("taxi_out", DataType::kFloat64, 1);
  Column wheels_off("wheels_off", DataType::kInt64, 0);
  Column sched_time("scheduled_time", DataType::kFloat64, 1);
  Column elapsed("elapsed_time", DataType::kFloat64, 1);
  Column air_time("air_time", DataType::kFloat64, 1);
  Column distance("distance", DataType::kInt64, 0);
  Column wheels_on("wheels_on", DataType::kInt64, 0);
  Column taxi_in("taxi_in", DataType::kFloat64, 1);
  Column sched_arr("scheduled_arrival", DataType::kInt64, 0);
  Column arr_time("arrival_time", DataType::kInt64, 0);
  Column arr_delay("arrival_delay", DataType::kFloat64, 1);
  Column diverted("diverted", DataType::kInt64, 0);
  Column cancelled("cancelled", DataType::kInt64, 0);
  Column cancel_reason("cancellation_reason", DataType::kCategorical, 0);
  cancel_reason.SetDictionary({"A", "B", "C", "D"});
  Column delay_system("air_system_delay", DataType::kFloat64, 1);
  Column delay_security("security_delay", DataType::kFloat64, 1);
  Column delay_airline("airline_delay", DataType::kFloat64, 1);
  Column delay_late("late_aircraft_delay", DataType::kFloat64, 1);
  Column delay_weather("weather_delay", DataType::kFloat64, 1);

  for (size_t r = 0; r < rows; ++r) {
    int m = 1 + static_cast<int>(rng.UniformInt(uint64_t{12}));
    int d = 1 + static_cast<int>(rng.UniformInt(uint64_t{28}));
    int wk = 1 + static_cast<int>(rng.UniformInt(uint64_t{7}));
    year.Append(2015);
    month.Append(m);
    day.Append(d);
    dow.Append(wk);

    size_t al = rng.Categorical(airline_w);
    airline.Append(static_cast<double>(al));
    flight_number.Append(rng.UniformInt(int64_t{1}, int64_t{7999}));
    tail.Append(static_cast<double>(rng.UniformInt(uint64_t{kTails})));

    size_t o = rng.Categorical(airport_w);
    size_t de = rng.Categorical(airport_w);
    if (de == o) de = (de + 1) % kAirports;
    origin.Append(static_cast<double>(o));
    dest.Append(static_cast<double>(de));

    // Scheduled departure in HHMM, biased to daytime.
    int dep_hour = std::clamp(
        static_cast<int>(std::floor(rng.Normal(13.0, 4.5))), 0, 23);
    int dep_min = static_cast<int>(rng.UniformInt(uint64_t{60}));
    int sd = dep_hour * 100 + dep_min;
    sched_dep.Append(sd);

    // Distance: short-haul dominated, heavy right tail.
    double dist = std::min(4950.0, 150.0 + rng.Pareto(180.0, 1.6));
    distance.Append(std::floor(dist));
    double speed = 420.0 + rng.Normal(0, 25.0);
    double airt = dist / speed * 60.0 + rng.Normal(0, 6.0);
    airt = std::max(18.0, airt);
    double sched = airt + 28.0 + rng.Normal(0, 8.0);
    sched_time.Append(Round(sched, 1));

    bool is_cancelled = rng.Bernoulli(0.016);
    cancelled.Append(is_cancelled ? 1 : 0);
    if (is_cancelled) {
      cancel_reason.Append(
          static_cast<double>(rng.Categorical({0.25, 0.55, 0.18, 0.02})));
      // In-air fields are unknown for cancelled flights.
      dep_time.AppendNull();
      dep_delay.AppendNull();
      taxi_out.AppendNull();
      wheels_off.AppendNull();
      elapsed.AppendNull();
      air_time.AppendNull();
      wheels_on.AppendNull();
      taxi_in.AppendNull();
      sched_arr.Append((sd + static_cast<int>(sched) / 60 * 100 +
                        static_cast<int>(sched) % 60) %
                       2400);
      arr_time.AppendNull();
      arr_delay.AppendNull();
      diverted.Append(0);
      delay_system.AppendNull();
      delay_security.AppendNull();
      delay_airline.AppendNull();
      delay_late.AppendNull();
      delay_weather.AppendNull();
      continue;
    }
    cancel_reason.AppendNull();

    // Departure delay: mostly small/negative, exponential late tail.
    double dd;
    if (rng.Bernoulli(0.62)) {
      dd = rng.Normal(-3.0, 4.5);
    } else {
      dd = rng.Exponential(1.0 / 28.0);
      if (rng.Bernoulli(0.04)) dd += rng.Exponential(1.0 / 120.0);
    }
    dd = std::max(-25.0, dd);
    dep_delay.Append(Round(dd, 1));
    int dt = (sd + static_cast<int>(dd) + 2400) % 2400;
    dep_time.Append(dt);

    double tout = std::max(2.0, rng.Normal(14.0, 5.0));
    taxi_out.Append(Round(tout, 1));
    wheels_off.Append((dt + static_cast<int>(tout)) % 2400);

    double tin = std::max(2.0, rng.Normal(7.0, 3.0));
    taxi_in.Append(Round(tin, 1));

    // Arrival delay = departure delay + en-route adjustment (some recovery).
    double ad = dd * 0.92 + rng.Normal(-4.0, 9.0);
    if (rng.Bernoulli(0.02)) ad += rng.Exponential(1.0 / 45.0);
    arr_delay.Append(Round(ad, 1));

    double el = sched + (ad - dd);
    elapsed.Append(Round(std::max(20.0, el), 1));
    air_time.Append(Round(std::max(15.0, el - tout - tin), 1));

    int sa = (sd + static_cast<int>(sched) / 60 * 100 +
              static_cast<int>(sched) % 60) %
             2400;
    sched_arr.Append(sa);
    arr_time.Append((sa + static_cast<int>(ad) + 4800) % 2400);
    wheels_on.Append((sa + static_cast<int>(ad) + 4800 -
                      static_cast<int>(tin)) %
                     2400);
    diverted.Append(rng.Bernoulli(0.002) ? 1 : 0);

    // Delay attribution: only recorded when arrival delay >= 15 (as USDOT).
    if (ad >= 15.0) {
      double remaining = ad;
      double late = rng.Bernoulli(0.4) ? rng.Uniform(0, remaining) : 0;
      remaining -= late;
      double airl = rng.Bernoulli(0.5) ? rng.Uniform(0, remaining) : 0;
      remaining -= airl;
      double wx = rng.Bernoulli(0.12) ? rng.Uniform(0, remaining) : 0;
      remaining -= wx;
      double sec = rng.Bernoulli(0.01) ? rng.Uniform(0, remaining) : 0;
      remaining -= sec;
      delay_late.Append(Round(late, 1));
      delay_airline.Append(Round(airl, 1));
      delay_weather.Append(Round(wx, 1));
      delay_security.Append(Round(sec, 1));
      delay_system.Append(Round(std::max(0.0, remaining), 1));
    } else {
      delay_system.AppendNull();
      delay_security.AppendNull();
      delay_airline.AppendNull();
      delay_late.AppendNull();
      delay_weather.AppendNull();
    }
  }

  for (auto* c :
       {&year, &month, &day, &dow, &airline, &flight_number, &tail, &origin,
        &dest, &sched_dep, &dep_time, &dep_delay, &taxi_out, &wheels_off,
        &sched_time, &elapsed, &air_time, &distance, &wheels_on, &taxi_in,
        &sched_arr, &arr_time, &arr_delay, &diverted, &cancelled,
        &cancel_reason, &delay_system, &delay_security, &delay_airline,
        &delay_late, &delay_weather}) {
    t.AddColumn(std::move(*c));
  }
  // 31 columns so far; add a synthetic primary key to reach the paper's 32.
  Column fid("flight_id", DataType::kInt64, 0);
  fid.Reserve(rows);
  for (size_t r = 0; r < rows; ++r) fid.Append(static_cast<double>(r));
  t.AddColumn(std::move(fid));
  return t;
}

// ---------------------------------------------------------------------------
// Furnace: heavily duty-cycled heating load (AMPds2 furnace shape): long
// off periods, sharp on periods whose duty follows the season. Strongly
// bimodal marginals that punish single-Gaussian models.
// Columns (12): mirror of Basement with furnace-specific loads.
Table MakeFurnace(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("furnace");
  t.AddColumn(TimestampColumn("timestamp", rows, 60.0, 0.0, &rng));

  Column volt("voltage", DataType::kFloat64, 1);
  Column curr("current", DataType::kFloat64, 2);
  Column freq("frequency", DataType::kFloat64, 2);
  Column pf("power_factor", DataType::kFloat64, 3);
  Column p("active_power", DataType::kFloat64, 1);
  Column q("reactive_power", DataType::kFloat64, 1);
  Column s("apparent_power", DataType::kFloat64, 1);
  Column energy("energy_wh", DataType::kInt64, 0);
  Column blower("blower_load", DataType::kFloat64, 1);
  Column igniter("igniter_load", DataType::kFloat64, 1);
  Column duty("duty_cycle", DataType::kFloat64, 3);

  double t_s = 0;
  double energy_acc = 0;
  bool burning = false;
  int state_left = 0;
  double recent_on = 0.0;
  for (size_t r = 0; r < rows; ++r, t_s += 60.0) {
    // Season drives how often the furnace runs.
    double season = 0.5 - 0.45 * SeasonalProfile(t_s + 90 * kSecondsPerDay);
    if (state_left <= 0) {
      if (burning) {
        burning = false;
        state_left = static_cast<int>(rng.Uniform(20, 90) / season);
      } else {
        burning = true;
        state_left = static_cast<int>(rng.Uniform(8, 25) * (0.5 + season));
      }
    }
    --state_left;
    recent_on = 0.995 * recent_on + (burning ? 0.005 : 0.0);

    double blower_w = burning ? 310.0 + rng.Normal(0, 8.0) : 0.0;
    double ign_w =
        (burning && state_left > 18) ? 180.0 + rng.Normal(0, 6.0) : 0.0;
    double active = 6.0 + blower_w + ign_w + std::fabs(rng.Normal(0, 1.5));
    double v = 120.2 + rng.Normal(0, 0.5);
    double pf_v = std::clamp(burning ? 0.82 + rng.Normal(0, 0.015)
                                     : 0.97 + rng.Normal(0, 0.01),
                             0.5, 1.0);
    double apparent = active / pf_v;
    energy_acc += active / 60.0;

    volt.Append(Round(v, 1));
    curr.Append(Round(apparent / v, 2));
    freq.Append(Round(60.0 + rng.Normal(0, 0.02), 2));
    pf.Append(Round(pf_v, 3));
    p.Append(Round(active, 1));
    q.Append(Round(std::sqrt(std::max(0.0, apparent * apparent -
                                               active * active)),
                   1));
    s.Append(Round(apparent, 1));
    energy.Append(std::floor(energy_acc));
    blower.Append(Round(blower_w, 1));
    igniter.Append(Round(ign_w, 1));
    duty.Append(Round(recent_on, 3));
  }
  for (auto* c : {&volt, &curr, &freq, &pf, &p, &q, &s, &energy, &blower,
                  &igniter, &duty}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Gas: metal-oxide gas sensor array in a home (UCI HT-style): 8 sensor
// resistances that share a slowly drifting baseline and respond together to
// activity events (cooking), plus temperature and humidity that the sensors
// cross-correlate with.
// Columns (12): timestamp + 8 sensors + temperature + humidity + event flag.
Table MakeGas(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("gas");
  t.AddColumn(TimestampColumn("timestamp", rows, 4.0, 2.0, &rng));

  std::vector<Column> sensors;
  std::vector<double> gain(8);
  for (int i = 0; i < 8; ++i) {
    sensors.emplace_back("sensor_r" + std::to_string(i), DataType::kFloat64,
                         3);
    sensors.back().Reserve(rows);
    gain[i] = 0.6 + 0.1 * i;
  }
  Column temp("temperature", DataType::kFloat64, 2);
  Column hum("humidity", DataType::kFloat64, 2);
  Column event("activity", DataType::kInt64, 0);

  DriftWalk baseline(&rng, 11.0, 0.002, 0.02);
  DriftWalk temp_walk(&rng, 23.0, 0.01, 0.05);
  DriftWalk hum_walk(&rng, 48.0, 0.01, 0.2);
  double event_level = 0.0;
  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 4.0) {
    if (rng.Bernoulli(0.0015 * (0.3 + DiurnalProfile(t_s)))) {
      event_level += rng.Uniform(2.0, 7.0);  // cooking event
    }
    event_level *= 0.995;
    double base = baseline.Step();
    double tp = temp_walk.Step() + 1.2 * SeasonalProfile(t_s);
    double hm = std::clamp(hum_walk.Step() - 0.8 * (tp - 23.0), 15.0, 90.0);
    for (int i = 0; i < 8; ++i) {
      double rs = base - gain[i] * event_level - 0.05 * (hm - 48.0) +
                  rng.Normal(0, 0.08);
      sensors[i].Append(Round(std::max(0.5, rs), 3));
    }
    temp.Append(Round(tp, 2));
    hum.Append(Round(hm, 2));
    event.Append(event_level > 1.0 ? 1 : 0);
  }
  for (auto& c : sensors) t.AddColumn(std::move(c));
  t.AddColumn(std::move(temp));
  t.AddColumn(std::move(hum));
  t.AddColumn(std::move(event));
  return t;
}

// ---------------------------------------------------------------------------
// Light: IoT light-detection node: photodiode reading with hard day/night
// regimes, plus battery, RSSI and a motion counter.
// Columns (9): timestamp, lux, is_day, battery_v, rssi, motion, temp,
// humidity, uptime.
Table MakeLight(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("light");
  t.AddColumn(TimestampColumn("timestamp", rows, 120.0, 30.0, &rng));

  Column lux("lux", DataType::kFloat64, 1);
  Column is_day("is_day", DataType::kInt64, 0);
  Column battery("battery_v", DataType::kFloat64, 3);
  Column rssi("rssi", DataType::kInt64, 0);
  Column motion("motion_count", DataType::kInt64, 0);
  Column temp("temperature", DataType::kFloat64, 2);
  Column hum("humidity", DataType::kFloat64, 2);
  Column uptime("uptime_s", DataType::kInt64, 0);

  double t_s = 0;
  double batt = 4.15;
  int64_t up = 0;
  for (size_t r = 0; r < rows; ++r) {
    double hour = std::fmod(t_s / 3600.0, 24.0);
    bool day = hour > 6.5 && hour < 20.0;
    double sun = day ? std::sin(M_PI * (hour - 6.5) / 13.5) : 0.0;
    double l = day ? 120.0 + 850.0 * sun + rng.Normal(0, 40.0)
                   : rng.Uniform(0.0, 3.0);
    batt -= 1.2e-6 * 120.0 + (day ? -2.0e-6 * sun * 120.0 : 0);  // solar top-up
    batt = std::clamp(batt, 3.3, 4.2);
    up += 120;
    if (rng.Bernoulli(0.0004)) up = 0;  // occasional reboot

    lux.Append(Round(std::max(0.0, l), 1));
    is_day.Append(day ? 1 : 0);
    battery.Append(Round(batt + rng.Normal(0, 0.004), 3));
    rssi.Append(-55 - static_cast<int64_t>(rng.UniformInt(uint64_t{35})));
    motion.Append(day ? rng.UniformInt(int64_t{0}, int64_t{14}) : 0);
    temp.Append(Round(18.0 + 8.0 * sun + 2.0 * SeasonalProfile(t_s) +
                          rng.Normal(0, 0.5),
                      2));
    hum.Append(Round(std::clamp(55.0 - 12.0 * sun + rng.Normal(0, 2.0), 10.0,
                                95.0),
                     2));
    uptime.Append(static_cast<double>(up));
    t_s += 120.0 + rng.Uniform(0, 30.0);
  }
  for (auto* c :
       {&lux, &is_day, &battery, &rssi, &motion, &temp, &hum, &uptime}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Power: UCI individual-household electric power shape.
// Columns (10): timestamp, global_active_power, global_reactive_power,
// voltage, global_intensity, sub_metering_1..3, day_of_week, hour.
Table MakePower(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("power");
  t.AddColumn(TimestampColumn("timestamp", rows, 60.0, 0.0, &rng));

  Column gap("global_active_power", DataType::kFloat64, 3);
  Column grp("global_reactive_power", DataType::kFloat64, 3);
  Column volt("voltage", DataType::kFloat64, 2);
  Column gi("global_intensity", DataType::kFloat64, 1);
  Column sm1("sub_metering_1", DataType::kFloat64, 1);  // kitchen
  Column sm2("sub_metering_2", DataType::kFloat64, 1);  // laundry
  Column sm3("sub_metering_3", DataType::kFloat64, 1);  // heater/AC
  Column dow("day_of_week", DataType::kInt64, 0);
  Column hour("hour", DataType::kInt64, 0);

  OnOffRegime kitchen(&rng, 0.015, 0.10), laundry(&rng, 0.006, 0.05),
      heater(&rng, 0.02, 0.03);
  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 60.0) {
    double diurnal = DiurnalProfile(t_s);
    double season = SeasonalProfile(t_s);
    double k_w = kitchen.Step() ? rng.Uniform(20, 72) : 0.0;
    double l_w = laundry.Step() ? rng.Uniform(25, 80) : rng.Uniform(0, 2);
    double h_w = heater.Step() ? (17.0 - 6.0 * season) : 1.0;
    double other = 180.0 * diurnal + rng.Normal(0, 25.0);
    double active_w = 90.0 + (k_w + l_w + h_w) * 16.0 + other;
    active_w = std::max(60.0, active_w);
    double v = 240.5 - 1.2 * diurnal * 4.0 + rng.Normal(0, 1.3);
    double active_kw = active_w / 1000.0;
    double reactive_kw =
        std::max(0.0, 0.08 + 0.06 * diurnal + rng.Normal(0, 0.03));

    gap.Append(Round(active_kw, 3));
    grp.Append(Round(reactive_kw, 3));
    volt.Append(Round(v, 2));
    gi.Append(Round(active_w / v * 1.05, 1));
    sm1.Append(Round(k_w, 1));
    sm2.Append(Round(l_w, 1));
    sm3.Append(Round(h_w, 1));
    dow.Append(static_cast<double>(
        (static_cast<int64_t>(t_s / kSecondsPerDay) + 2) % 7));
    hour.Append(std::floor(std::fmod(t_s / 3600.0, 24.0)));
  }
  for (auto* c : {&gap, &grp, &volt, &gi, &sm1, &sm2, &sm3, &dow, &hour}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Taxis: Chicago taxi-trip shape: heavy-tailed miles/duration, fares that
// are near-deterministic in miles+time, tips that depend on payment type,
// skewed categorical company/payment fields, ~5% missing GPS.
// Columns (23).
Table MakeTaxis(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("taxis");

  const int kCompanies = 28, kAreas = 77;
  std::vector<double> company_w = ZipfWeights(kCompanies, 1.2);
  std::vector<double> area_w = ZipfWeights(kAreas, 0.9);

  Column trip_id("trip_id", DataType::kInt64, 0);
  Column taxi_id("taxi_id", DataType::kInt64, 0);
  Column start_ts("trip_start_timestamp", DataType::kTimestamp, 0);
  Column end_ts("trip_end_timestamp", DataType::kTimestamp, 0);
  Column seconds("trip_seconds", DataType::kInt64, 0);
  Column miles("trip_miles", DataType::kFloat64, 2);
  Column pickup_tract("pickup_census_tract", DataType::kInt64, 0);
  Column pickup_area("pickup_community_area", DataType::kInt64, 0);
  Column dropoff_area("dropoff_community_area", DataType::kInt64, 0);
  Column fare("fare", DataType::kFloat64, 2);
  Column tips("tips", DataType::kFloat64, 2);
  Column tolls("tolls", DataType::kFloat64, 2);
  Column extras("extras", DataType::kFloat64, 2);
  Column total("trip_total", DataType::kFloat64, 2);
  Column payment("payment_type", DataType::kCategorical, 0);
  payment.SetDictionary({"Credit Card", "Cash", "Prcard", "Mobile",
                         "Unknown"});
  Column company("company", DataType::kCategorical, 0);
  company.SetDictionary(NamedCategories("Taxi Co ", kCompanies));
  Column pu_lat("pickup_latitude", DataType::kFloat64, 6);
  Column pu_lon("pickup_longitude", DataType::kFloat64, 6);
  Column do_lat("dropoff_latitude", DataType::kFloat64, 6);
  Column do_lon("dropoff_longitude", DataType::kFloat64, 6);
  Column shared("shared_trip_authorized", DataType::kInt64, 0);
  Column pooled("trips_pooled", DataType::kInt64, 0);
  Column month("month", DataType::kInt64, 0);

  double base_t = 1577836800.0;
  for (size_t r = 0; r < rows; ++r) {
    trip_id.Append(static_cast<double>(r));
    taxi_id.Append(
        static_cast<double>(rng.UniformInt(int64_t{1000}, int64_t{4999})));

    double day_offset = rng.Uniform(0, 365.0) * kSecondsPerDay;
    double hour_bias = 3600.0 * (6.0 + 16.0 * DiurnalProfile(
                                            rng.Uniform(0, kSecondsPerDay)));
    double st = base_t + day_offset + hour_bias + rng.Uniform(0, 3600.0);
    st = std::floor(st / 900.0) * 900.0;  // 15-min rounding, as Chicago does
    start_ts.Append(st);

    double mi = std::min(60.0, rng.Pareto(0.9, 1.35));
    double mph = std::clamp(rng.Normal(17.0, 5.0), 4.0, 45.0);
    double sec = mi / mph * 3600.0 * rng.Uniform(0.9, 1.25);
    sec = std::max(60.0, sec);
    seconds.Append(std::floor(sec));
    miles.Append(Round(mi, 2));
    end_ts.Append(std::floor((st + sec) / 900.0) * 900.0);

    int pa = 1 + static_cast<int>(rng.Categorical(area_w));
    int da = 1 + static_cast<int>(rng.Categorical(area_w));
    // Census tract is frequently withheld in the real data (~25% missing).
    if (rng.Bernoulli(0.25)) {
      pickup_tract.AppendNull();
    } else {
      pickup_tract.Append(17031000000.0 + pa * 10000 +
                          rng.UniformInt(int64_t{100}, int64_t{9900}));
    }
    pickup_area.Append(pa);
    dropoff_area.Append(da);

    double f = 3.25 + 2.25 * mi + 0.004 * sec + rng.Normal(0, 0.8);
    f = std::max(3.25, std::round(f * 4) / 4);  // quarter rounding
    fare.Append(Round(f, 2));

    size_t pay = rng.Categorical({0.55, 0.32, 0.05, 0.06, 0.02});
    payment.Append(static_cast<double>(pay));
    double tip = 0.0;
    if (pay == 0 || pay == 3) {  // card/mobile tips are recorded
      tip = rng.Bernoulli(0.85) ? f * rng.Uniform(0.12, 0.28) : 0.0;
    }
    tips.Append(Round(tip, 2));
    double tl = rng.Bernoulli(0.03) ? rng.Uniform(1.0, 8.0) : 0.0;
    tolls.Append(Round(tl, 2));
    double ex = rng.Bernoulli(0.22) ? std::round(rng.Uniform(0.5, 6.0)) : 0.0;
    extras.Append(Round(ex, 2));
    total.Append(Round(f + tip + tl + ex, 2));
    company.Append(static_cast<double>(rng.Categorical(company_w)));

    if (rng.Bernoulli(0.05)) {
      pu_lat.AppendNull();
      pu_lon.AppendNull();
      do_lat.AppendNull();
      do_lon.AppendNull();
    } else {
      // Community-area anchored coordinates around Chicago.
      pu_lat.Append(Round(41.78 + 0.002 * pa + rng.Normal(0, 0.01), 6));
      pu_lon.Append(Round(-87.75 + 0.0015 * pa + rng.Normal(0, 0.01), 6));
      do_lat.Append(Round(41.78 + 0.002 * da + rng.Normal(0, 0.01), 6));
      do_lon.Append(Round(-87.75 + 0.0015 * da + rng.Normal(0, 0.01), 6));
    }
    bool sh = rng.Bernoulli(0.07);
    shared.Append(sh ? 1 : 0);
    pooled.Append(sh ? rng.UniformInt(int64_t{1}, int64_t{3}) : 1);
    month.Append(1 + std::floor(day_offset / (30.44 * kSecondsPerDay)));
  }
  for (auto* c : {&trip_id, &taxi_id, &start_ts, &end_ts, &seconds, &miles,
                  &pickup_tract, &pickup_area, &dropoff_area, &fare, &tips,
                  &tolls, &extras, &total, &payment, &company, &pu_lat,
                  &pu_lon, &do_lat, &do_lon, &shared, &pooled, &month}) {
    t.AddColumn(std::move(*c));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Temp: large simple temperature feed from a handful of devices.
// Columns (5): timestamp, device, temperature, humidity, battery.
Table MakeTemp(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Table t("temp");
  t.AddColumn(TimestampColumn("timestamp", rows, 15.0, 5.0, &rng));

  const int kDevices = 12;
  Column device("device", DataType::kCategorical, 0);
  device.SetDictionary(NamedCategories("dev_", kDevices));
  Column temp("temperature", DataType::kFloat64, 2);
  Column hum("humidity", DataType::kFloat64, 2);
  Column battery("battery_pct", DataType::kInt64, 0);

  std::vector<double> offsets(kDevices);
  for (int i = 0; i < kDevices; ++i) offsets[i] = rng.Uniform(-4.0, 4.0);
  std::vector<double> batt(kDevices, 100.0);

  double t_s = 0;
  for (size_t r = 0; r < rows; ++r, t_s += 15.0) {
    int dev = static_cast<int>(rng.Zipf(kDevices, 0.7));
    double hour = std::fmod(t_s / 3600.0, 24.0);
    double day_swing = 4.0 * std::sin(M_PI * (hour - 6.0) / 12.0);
    double tp = 15.0 + offsets[dev] + 9.0 * SeasonalProfile(t_s) + day_swing +
                rng.Normal(0, 0.3);
    batt[dev] = std::max(5.0, batt[dev] - 0.0008);
    device.Append(dev);
    temp.Append(Round(tp, 2));
    hum.Append(Round(std::clamp(60.0 - 1.6 * (tp - 15.0) + rng.Normal(0, 3.0),
                                8.0, 99.0),
                     2));
    battery.Append(std::floor(batt[dev]));
  }
  for (auto* c : {&device, &temp, &hum, &battery}) t.AddColumn(std::move(*c));
  return t;
}

}  // namespace pairwisehist
