// Synthetic versions of the paper's 11 evaluation datasets.
//
// The paper evaluates on real Kaggle/UCI datasets (Table 4) that are not
// redistributable here. Each generator below reproduces the statistical
// character that matters for AQP evaluation — schema shape and column count
// from Table 4, data types, decimal precision, diurnal/periodic structure,
// regime switching (bimodal loads), heavy tails, skewed categorical
// frequencies, inter-column correlation, asynchronous-sampling nulls — on a
// configurable number of rows with a deterministic seed. See DESIGN.md §3
// for the substitution rationale.
#ifndef PAIRWISEHIST_DATAGEN_DATASETS_H_
#define PAIRWISEHIST_DATAGEN_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// Descriptor for one of the 11 evaluation datasets.
struct DatasetSpec {
  std::string name;        ///< lowercase id, e.g. "flights"
  size_t default_rows;     ///< laptop-scale default (paper sizes in DESIGN.md)
  size_t paper_rows;       ///< row count reported in Table 4
  int columns;             ///< column count per Table 4
  std::string description; ///< one-line provenance summary
};

/// All 11 datasets in the paper's Table 4 order.
const std::vector<DatasetSpec>& AllDatasets();

/// Builds the named dataset with `rows` rows (0 = the laptop-scale default).
/// Fails with NotFound for unknown names.
StatusOr<Table> MakeDataset(const std::string& name, size_t rows,
                            uint64_t seed);

// Individual generators (rows = exact row count).
Table MakeAqua(size_t rows, uint64_t seed);      ///< 13 cols, async nulls
Table MakeBasement(size_t rows, uint64_t seed);  ///< 12 cols, meter loads
Table MakeBuild(size_t rows, uint64_t seed);     ///< 7 cols, room sensors
Table MakeCurrent(size_t rows, uint64_t seed);   ///< 24 cols, meter currents
Table MakeFlights(size_t rows, uint64_t seed);   ///< 32 cols, delays
Table MakeFurnace(size_t rows, uint64_t seed);   ///< 12 cols, cycling load
Table MakeGas(size_t rows, uint64_t seed);       ///< 12 cols, sensor drift
Table MakeLight(size_t rows, uint64_t seed);     ///< 9 cols, day/night
Table MakePower(size_t rows, uint64_t seed);     ///< 10 cols, household power
Table MakeTaxis(size_t rows, uint64_t seed);     ///< 23 cols, trip records
Table MakeTemp(size_t rows, uint64_t seed);      ///< 5 cols, temperature

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_DATAGEN_DATASETS_H_
