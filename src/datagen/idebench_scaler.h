// IDEBench-style dataset scale-up generator.
//
// The paper scales Power and Flights to one billion rows with IDEBench [22],
// which "generates synthetic data by applying normalisation and Gaussian
// models" (Section 6.3). This module implements that method class from
// scratch: per-column Gaussian mixture marginals (fitted on quantile
// buckets) tied together with a Gaussian copula fitted on normal scores, so
// the scaled data preserves marginal shape coarsely and pairwise correlation
// structure, while being smoother than the source — which reproduces the
// paper's observation that learned models (DeepDB) look better on IDEBench
// data than on real data (Fig. 10(d)).
#ifndef PAIRWISEHIST_DATAGEN_IDEBENCH_SCALER_H_
#define PAIRWISEHIST_DATAGEN_IDEBENCH_SCALER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// Fitted generator that can produce any number of rows resembling the
/// source table.
class IdebenchScaler {
 public:
  /// Fits marginal models and the copula correlation on `source`.
  /// `mixture_components` controls marginal fidelity (the paper's observed
  /// IDEBench behaviour corresponds to a small number, default 4).
  static StatusOr<IdebenchScaler> Fit(const Table& source,
                                      int mixture_components = 4);

  /// Generates `rows` synthetic rows with the fitted model.
  Table Generate(size_t rows, uint64_t seed) const;

  /// Number of columns in the fitted schema.
  size_t NumColumns() const { return columns_.size(); }

 private:
  struct GaussianBucket {
    double weight;
    double mean;
    double stddev;
  };
  struct ColumnModel {
    std::string name;
    DataType type;
    int decimals;
    double null_prob;
    double min_value;
    double max_value;
    // Numeric marginal: quantile-bucket Gaussian mixture.
    std::vector<GaussianBucket> mixture;
    // Categorical marginal: cumulative frequencies over codes 0..n-1,
    // ordered by code.
    std::vector<double> category_cdf;
    std::vector<std::string> dictionary;
  };

  std::string table_name_;
  std::vector<ColumnModel> columns_;
  // Lower-triangular Cholesky factor of the copula correlation matrix,
  // row-major d x d.
  std::vector<double> chol_;

  double SampleNumeric(const ColumnModel& m, double u) const;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_DATAGEN_IDEBENCH_SCALER_H_
