// Chi-squared uniformity hypothesis testing (paper Section 4.1, IsUniform).
//
// A bin passes if a chi-squared test cannot reject the null hypothesis that
// its points are uniformly distributed across s = ceil((2u)^(1/3)) equal
// sub-bins (Terrell–Scott), at significance α.
#ifndef PAIRWISEHIST_HIST_UNIFORMITY_H_
#define PAIRWISEHIST_HIST_UNIFORMITY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace pairwisehist {

/// Caches chi-squared critical values χ²_α by degrees of freedom for a fixed
/// significance level (they are needed millions of times during refinement
/// and on the query hot path).
///
/// Thread-safe and allocation-free after construction: the memo table has a
/// fixed capacity and each slot is an atomic memoized value. Concurrent
/// first touches of the same df may both compute the (deterministic) value
/// and store identical bits, which is a benign and well-defined race. df
/// beyond the table capacity is computed on demand without caching — it only
/// occurs for bins with ~kSlots³/2 unique values, where the quantile cost is
/// negligible against everything else done with such a bin.
class Chi2CriticalCache {
 public:
  explicit Chi2CriticalCache(double alpha);

  /// Critical value for `df` degrees of freedom (df >= 1). Lock-free,
  /// never allocates; safe for concurrent calls.
  double Get(int df) const;

  double alpha() const { return alpha_; }

 private:
  /// Memo capacity: covers every df up to Terrell–Scott sub-bin counts for
  /// bins with ~3.4e10 unique values.
  static constexpr int kSlots = 4096;
  /// Slots eagerly populated at construction (the df range that query-time
  /// coverage bounds touch in practice), so steady-state reads never hit
  /// the compute path.
  static constexpr int kEager = 64;

  double alpha_;
  // 0.0 marks "not yet computed" (critical values are strictly positive).
  mutable std::vector<std::atomic<double>> slots_;
};

/// Process-wide memo of caches keyed by alpha, for deserialization paths
/// that materialize many segments sharing a handful of significance
/// levels: the eager fill (kEager quantile computations) runs once per
/// distinct alpha per process instead of once per segment per open.
/// Thread-safe; the returned cache is immutable apart from its internal
/// memoization and lives for the process.
std::shared_ptr<Chi2CriticalCache> SharedChi2CriticalCache(double alpha);

/// Result of a uniformity test.
struct UniformityResult {
  bool uniform = true;     ///< true if the null hypothesis was NOT rejected
  double statistic = 0.0;  ///< χ² statistic
  double critical = 0.0;   ///< χ²_α for the test's df
  int sub_bins = 1;        ///< s used
  /// Normalized excess: statistic / critical (>1 means rejected). Used by
  /// RefineBin2D to pick the "least uniform" dimension.
  double Ratio() const { return critical > 0 ? statistic / critical : 0.0; }
};

/// Tests whether the sorted values in [begin, end) are uniformly distributed
/// over the bin [lower_edge, upper_edge). `unique_values` is the number of
/// distinct values among them (drives the Terrell–Scott sub-bin count).
/// Bins that cannot support a test (fewer than 2 sub-bins) pass trivially.
UniformityResult TestUniform(const double* begin, const double* end,
                             double lower_edge, double upper_edge,
                             uint64_t unique_values,
                             const Chi2CriticalCache& critical);

/// Counts distinct values in a sorted range.
uint64_t CountUniqueSorted(const double* begin, const double* end);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_HIST_UNIFORMITY_H_
