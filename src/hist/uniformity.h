// Chi-squared uniformity hypothesis testing (paper Section 4.1, IsUniform).
//
// A bin passes if a chi-squared test cannot reject the null hypothesis that
// its points are uniformly distributed across s = ceil((2u)^(1/3)) equal
// sub-bins (Terrell–Scott), at significance α.
#ifndef PAIRWISEHIST_HIST_UNIFORMITY_H_
#define PAIRWISEHIST_HIST_UNIFORMITY_H_

#include <cstdint>
#include <vector>

namespace pairwisehist {

/// Caches chi-squared critical values χ²_α by degrees of freedom for a fixed
/// significance level (they are needed millions of times during refinement).
class Chi2CriticalCache {
 public:
  explicit Chi2CriticalCache(double alpha) : alpha_(alpha) {}

  /// Critical value for `df` degrees of freedom (df >= 1).
  double Get(int df) const;

  double alpha() const { return alpha_; }

 private:
  double alpha_;
  mutable std::vector<double> cache_;  // index df-1
};

/// Result of a uniformity test.
struct UniformityResult {
  bool uniform = true;     ///< true if the null hypothesis was NOT rejected
  double statistic = 0.0;  ///< χ² statistic
  double critical = 0.0;   ///< χ²_α for the test's df
  int sub_bins = 1;        ///< s used
  /// Normalized excess: statistic / critical (>1 means rejected). Used by
  /// RefineBin2D to pick the "least uniform" dimension.
  double Ratio() const { return critical > 0 ? statistic / critical : 0.0; }
};

/// Tests whether the sorted values in [begin, end) are uniformly distributed
/// over the bin [lower_edge, upper_edge). `unique_values` is the number of
/// distinct values among them (drives the Terrell–Scott sub-bin count).
/// Bins that cannot support a test (fewer than 2 sub-bins) pass trivially.
UniformityResult TestUniform(const double* begin, const double* end,
                             double lower_edge, double upper_edge,
                             uint64_t unique_values,
                             const Chi2CriticalCache& critical);

/// Counts distinct values in a sorted range.
uint64_t CountUniqueSorted(const double* begin, const double* end);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_HIST_UNIFORMITY_H_
