#include "hist/uniformity.h"

#include <algorithm>

#include "common/stats.h"

namespace pairwisehist {

double Chi2CriticalCache::Get(int df) const {
  if (df < 1) df = 1;
  if (static_cast<size_t>(df) > cache_.size()) {
    size_t old = cache_.size();
    cache_.resize(df, 0.0);
    for (size_t i = old; i < cache_.size(); ++i) {
      cache_[i] = Chi2CriticalValue(alpha_, static_cast<double>(i + 1));
    }
  }
  return cache_[df - 1];
}

uint64_t CountUniqueSorted(const double* begin, const double* end) {
  if (begin == end) return 0;
  uint64_t u = 1;
  for (const double* p = begin + 1; p != end; ++p) {
    if (*p != *(p - 1)) ++u;
  }
  return u;
}

UniformityResult TestUniform(const double* begin, const double* end,
                             double lower_edge, double upper_edge,
                             uint64_t unique_values,
                             const Chi2CriticalCache& critical) {
  UniformityResult result;
  const size_t n = static_cast<size_t>(end - begin);
  int s = TerrellScottSubBins(unique_values);
  result.sub_bins = s;
  if (n == 0 || s < 2 || upper_edge <= lower_edge) {
    result.uniform = true;
    return result;
  }
  // Sub-bin counts via binary search on the sorted range: boundary r is at
  // lower + r * width / s; count in sub-bin r is the index delta.
  double width = upper_edge - lower_edge;
  double expected = static_cast<double>(n) / s;
  double stat = 0.0;
  const double* prev = begin;
  for (int r = 1; r <= s; ++r) {
    const double* next =
        (r == s) ? end
                 : std::lower_bound(prev, end,
                                    lower_edge + width * r / s);
    double count = static_cast<double>(next - prev);
    double diff = count - expected;
    stat += diff * diff / expected;
    prev = next;
  }
  result.statistic = stat;
  result.critical = critical.Get(s - 1);
  result.uniform = stat <= result.critical;
  return result;
}

}  // namespace pairwisehist
