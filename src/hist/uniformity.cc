#include "hist/uniformity.h"

#include <algorithm>
#include <map>
#include <mutex>

#include "common/stats.h"

namespace pairwisehist {

Chi2CriticalCache::Chi2CriticalCache(double alpha)
    : alpha_(alpha), slots_(kSlots) {
  for (int df = 1; df <= kEager; ++df) {
    slots_[df - 1].store(Chi2CriticalValue(alpha_, static_cast<double>(df)),
                         std::memory_order_relaxed);
  }
}

double Chi2CriticalCache::Get(int df) const {
  if (df < 1) df = 1;
  if (df > kSlots) {
    return Chi2CriticalValue(alpha_, static_cast<double>(df));
  }
  std::atomic<double>& slot = slots_[df - 1];
  double v = slot.load(std::memory_order_relaxed);
  if (v == 0.0) {
    // Deterministic value: concurrent first touches store identical bits.
    v = Chi2CriticalValue(alpha_, static_cast<double>(df));
    slot.store(v, std::memory_order_relaxed);
  }
  return v;
}

std::shared_ptr<Chi2CriticalCache> SharedChi2CriticalCache(double alpha) {
  static std::mutex mu;
  static std::map<double, std::shared_ptr<Chi2CriticalCache>>* memo =
      new std::map<double, std::shared_ptr<Chi2CriticalCache>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = memo->find(alpha);
  if (it != memo->end()) return it->second;
  auto cache = std::make_shared<Chi2CriticalCache>(alpha);
  // Alphas come from persisted synopses — a handful of values, so the map
  // never meaningfully grows and entries are deliberately immortal.
  memo->emplace(alpha, cache);
  return cache;
}

uint64_t CountUniqueSorted(const double* begin, const double* end) {
  if (begin == end) return 0;
  uint64_t u = 1;
  for (const double* p = begin + 1; p != end; ++p) {
    if (*p != *(p - 1)) ++u;
  }
  return u;
}

UniformityResult TestUniform(const double* begin, const double* end,
                             double lower_edge, double upper_edge,
                             uint64_t unique_values,
                             const Chi2CriticalCache& critical) {
  UniformityResult result;
  const size_t n = static_cast<size_t>(end - begin);
  int s = TerrellScottSubBins(unique_values);
  result.sub_bins = s;
  if (n == 0 || s < 2 || upper_edge <= lower_edge) {
    result.uniform = true;
    return result;
  }
  // Sub-bin counts via binary search on the sorted range: boundary r is at
  // lower + r * width / s; count in sub-bin r is the index delta.
  double width = upper_edge - lower_edge;
  double expected = static_cast<double>(n) / s;
  double stat = 0.0;
  const double* prev = begin;
  for (int r = 1; r <= s; ++r) {
    const double* next =
        (r == s) ? end
                 : std::lower_bound(prev, end,
                                    lower_edge + width * r / s);
    double count = static_cast<double>(next - prev);
    double diff = count - expected;
    stat += diff * diff / expected;
    prev = next;
  }
  result.statistic = stat;
  result.critical = critical.Get(s - 1);
  result.uniform = stat <= result.critical;
  return result;
}

}  // namespace pairwisehist
