#include "hist/histogram.h"

#include <algorithm>
#include <cmath>

namespace pairwisehist {

size_t HistogramDim::BinIndex(double value) const {
  // upper_bound - 1: first edge strictly greater than value, minus one.
  auto it = std::upper_bound(edges.begin(), edges.end(), value);
  if (it == edges.begin()) return 0;
  size_t t = static_cast<size_t>(it - edges.begin()) - 1;
  if (t >= NumBins()) t = NumBins() - 1;
  return t;
}

uint64_t HistogramDim::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

void HistogramDim::BuildCountPrefix() {
  const size_t k = NumBins();
  count_prefix.resize(k + 1);
  count_prefix[0] = 0;
  for (size_t t = 0; t < k; ++t) {
    count_prefix[t + 1] = count_prefix[t] + counts[t];
  }
}

void PairHistogram::BuildCellPrefix() {
  const size_t ki = dim_i.NumBins();
  const size_t kj = dim_j.NumBins();
  // Dense per-row cell prefixes (exact: totals stay below 2^53). Costs
  // 2x the dense cell matrix in memory, all execution-index-only.
  cell_prefix_i.resize(ki * (kj + 1));
  for (size_t ti = 0; ti < ki; ++ti) {
    const uint64_t* row = cells.data() + ti * kj;
    uint64_t* pre = cell_prefix_i.mut_data() + ti * (kj + 1);
    pre[0] = 0;
    for (size_t tj = 0; tj < kj; ++tj) pre[tj + 1] = pre[tj] + row[tj];
  }
  cell_prefix_j.resize(kj * (ki + 1));
  for (size_t tj = 0; tj < kj; ++tj) {
    uint64_t* pre = cell_prefix_j.mut_data() + tj * (ki + 1);
    pre[0] = 0;
    for (size_t ti = 0; ti < ki; ++ti) {
      pre[ti + 1] = pre[ti] + cells[ti * kj + tj];
    }
  }
  // Column-major transposes: row tp holds the prefix up to pred bin tp for
  // every aggregation bin at once (contiguous), enabling whole-grid run
  // reductions. Built by accumulating each boundary row from the previous
  // one plus the matching cell column/row.
  cell_colpre_i.assign((kj + 1) * ki, 0);
  for (size_t tp = 0; tp < kj; ++tp) {
    const uint64_t* prev = cell_colpre_i.data() + tp * ki;
    uint64_t* next = cell_colpre_i.mut_data() + (tp + 1) * ki;
    for (size_t ti = 0; ti < ki; ++ti) {
      next[ti] = prev[ti] + cells[ti * kj + tp];
    }
  }
  cell_colpre_j.assign((ki + 1) * kj, 0);
  for (size_t tp = 0; tp < ki; ++tp) {
    const uint64_t* prev = cell_colpre_j.data() + tp * kj;
    uint64_t* next = cell_colpre_j.mut_data() + (tp + 1) * kj;
    const uint64_t* row = cells.data() + tp * kj;
    for (size_t tj = 0; tj < kj; ++tj) {
      next[tj] = prev[tj] + row[tj];
    }
  }
}

namespace {

// Midpoint snapped to the half-integer grid (see the comment at the use
// site). Falls back to the exact midpoint if snapping would leave the bin.
double SplitPoint(double lower, double upper) {
  double mid = (lower + upper) / 2.0;
  double snapped = std::floor(mid) + 0.5;
  if (snapped > lower && snapped < upper) return snapped;
  return mid;
}

// Appends one finished bin's metadata.
void EmitBin(HistogramDim* out, double upper_edge, double v_min, double v_max,
             uint64_t unique, uint64_t count) {
  out->edges.push_back(upper_edge);
  out->v_min.push_back(v_min);
  out->v_max.push_back(v_max);
  out->unique.push_back(unique);
  out->counts.push_back(count);
}

// Algorithm 2 (RefineBin1D): recursively split [lower, upper) over the
// sorted values [begin, end) until each bin is uniform or unsplittable.
// Emits finished bins (in ascending order) into `out`.
void RefineBin1D(const double* begin, const double* end, double lower,
                 double upper, int depth, const RefineConfig& config,
                 const Chi2CriticalCache& critical, HistogramDim* out) {
  const size_t n = static_cast<size_t>(end - begin);
  if (n == 0) {
    // Empty bin: keep the slot with edge metadata (Algorithm 2 line 4).
    EmitBin(out, upper, lower, upper, 0, 0);
    return;
  }
  uint64_t u = CountUniqueSorted(begin, end);
  if (u == 1) {
    EmitBin(out, upper, *begin, *begin, 1, n);
    return;
  }
  bool splittable = n >= config.min_points && depth < config.max_depth &&
                    (upper - lower) > config.min_width;
  if (splittable) {
    UniformityResult test =
        TestUniform(begin, end, lower, upper, u, critical);
    splittable = !test.uniform;
  }
  if (!splittable) {
    EmitBin(out, upper, *begin, *(end - 1), u, n);
    return;
  }
  // Equal-width split at the bin midpoint (the paper found equal-width
  // slightly better than equal-depth). The midpoint is snapped to a
  // half-integer so every edge stays on the 0.5 grid of the integer code
  // domain — which keeps edges exactly representable in the compact
  // storage encoding (all edges x2 are integers).
  double z = SplitPoint(lower, upper);
  const double* mid = std::lower_bound(begin, end, z);
  RefineBin1D(begin, mid, lower, z, depth + 1, config, critical, out);
  RefineBin1D(mid, end, z, upper, depth + 1, config, critical, out);
}

}  // namespace

HistogramDim BuildHistogram1D(const std::vector<double>& sorted_values,
                              const std::vector<double>& initial_edges,
                              const RefineConfig& config,
                              const Chi2CriticalCache& critical) {
  HistogramDim out;
  if (initial_edges.size() < 2) return out;
  out.edges.push_back(initial_edges.front());
  const double* data = sorted_values.data();
  const double* data_end = data + sorted_values.size();
  const double* cursor = data;
  for (size_t t = 0; t + 1 < initial_edges.size(); ++t) {
    double lower = initial_edges[t];
    double upper = initial_edges[t + 1];
    const double* next = (t + 2 == initial_edges.size())
                             ? data_end
                             : std::lower_bound(cursor, data_end, upper);
    RefineBin1D(cursor, next, lower, upper, 0, config, critical, &out);
    cursor = next;
  }
  return out;
}

namespace {

// A point set inside one rectangle during 2-d refinement. Holds indices into
// the caller's xi/xj arrays.
struct RectPoints {
  std::vector<uint32_t> rows;
};

// Collects the sorted values of one dimension for the given rows.
void SortedDimValues(const std::vector<double>& coords,
                     const std::vector<uint32_t>& rows,
                     std::vector<double>* scratch) {
  scratch->clear();
  scratch->reserve(rows.size());
  for (uint32_t r : rows) scratch->push_back(coords[r]);
  std::sort(scratch->begin(), scratch->end());
}

// RefineBin2D: recursively split the rectangle until both dimensions test
// uniform or the point count / width floor stops us. New interior edges are
// appended to `new_edges_i` / `new_edges_j` (they apply to the whole row or
// column of this pair's histogram, matching the paper's Fig. 5).
void RefineBin2D(const std::vector<double>& xi, const std::vector<double>& xj,
                 std::vector<uint32_t> rows, double lo_i, double hi_i,
                 double lo_j, double hi_j, int depth,
                 const RefineConfig& config, const Chi2CriticalCache& critical,
                 std::vector<double>* new_edges_i,
                 std::vector<double>* new_edges_j,
                 std::vector<double>* scratch) {
  if (rows.size() <= config.min_points || depth >= config.max_depth) return;

  SortedDimValues(xi, rows, scratch);
  uint64_t ui = CountUniqueSorted(scratch->data(),
                                  scratch->data() + scratch->size());
  UniformityResult ti = TestUniform(scratch->data(),
                                    scratch->data() + scratch->size(), lo_i,
                                    hi_i, ui, critical);
  SortedDimValues(xj, rows, scratch);
  uint64_t uj = CountUniqueSorted(scratch->data(),
                                  scratch->data() + scratch->size());
  UniformityResult tj = TestUniform(scratch->data(),
                                    scratch->data() + scratch->size(), lo_j,
                                    hi_j, uj, critical);

  bool can_split_i = !ti.uniform && ui > 1 && (hi_i - lo_i) > config.min_width;
  bool can_split_j = !tj.uniform && uj > 1 && (hi_j - lo_j) > config.min_width;
  if (!can_split_i && !can_split_j) return;

  // Split the least uniform dimension (largest statistic/critical ratio).
  bool split_i = can_split_i && (!can_split_j || ti.Ratio() >= tj.Ratio());

  const std::vector<double>& coords = split_i ? xi : xj;
  double z = split_i ? SplitPoint(lo_i, hi_i) : SplitPoint(lo_j, hi_j);
  (split_i ? new_edges_i : new_edges_j)->push_back(z);

  std::vector<uint32_t> left, right;
  left.reserve(rows.size() / 2);
  right.reserve(rows.size() / 2);
  for (uint32_t r : rows) {
    (coords[r] < z ? left : right).push_back(r);
  }
  rows.clear();
  rows.shrink_to_fit();
  if (split_i) {
    RefineBin2D(xi, xj, std::move(left), lo_i, z, lo_j, hi_j, depth + 1,
                config, critical, new_edges_i, new_edges_j, scratch);
    RefineBin2D(xi, xj, std::move(right), z, hi_i, lo_j, hi_j, depth + 1,
                config, critical, new_edges_i, new_edges_j, scratch);
  } else {
    RefineBin2D(xi, xj, std::move(left), lo_i, hi_i, lo_j, z, depth + 1,
                config, critical, new_edges_i, new_edges_j, scratch);
    RefineBin2D(xi, xj, std::move(right), lo_i, hi_i, z, hi_j, depth + 1,
                config, critical, new_edges_i, new_edges_j, scratch);
  }
}

// Builds per-dimension metadata (counts, v±, unique, parent) for refined
// edges over the paired values.
HistogramDim BuildDimMetadata(const std::vector<double>& values,
                              std::vector<double> refined_edges,
                              const HistogramDim& h1) {
  HistogramDim dim;
  dim.edges = std::move(refined_edges);
  size_t k = dim.edges.size() - 1;
  dim.counts.assign(k, 0);
  dim.v_min.assign(k, 0);
  dim.v_max.assign(k, 0);
  dim.unique.assign(k, 0);
  dim.parent.resize(k);
  for (size_t t = 0; t < k; ++t) {
    // Parent 1-d bin: the one containing this refined bin's lower edge
    // (refined edges are a superset of the 1-d edges).
    dim.parent[t] = static_cast<uint32_t>(h1.BinIndex(dim.edges[t]));
    // Empty-bin defaults mirror RefineBin1D's convention.
    dim.v_min[t] = dim.edges[t];
    dim.v_max[t] = dim.edges[t + 1];
  }
  // Sort a copy of the values once; walk bins over it.
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  size_t cursor = 0;
  for (size_t t = 0; t < k && cursor < sorted.size(); ++t) {
    size_t begin = cursor;
    double upper = dim.edges[t + 1];
    bool last = (t + 1 == k);
    while (cursor < sorted.size() &&
           (last || sorted[cursor] < upper)) {
      ++cursor;
    }
    if (cursor > begin) {
      dim.counts[t] = cursor - begin;
      dim.v_min[t] = sorted[begin];
      dim.v_max[t] = sorted[cursor - 1];
      dim.unique[t] =
          CountUniqueSorted(sorted.data() + begin, sorted.data() + cursor);
    }
  }
  return dim;
}

}  // namespace

PairHistogram BuildPairHistogram(const std::vector<double>& xi,
                                 const std::vector<double>& xj,
                                 uint32_t col_i, uint32_t col_j,
                                 const HistogramDim& h1_i,
                                 const HistogramDim& h1_j,
                                 const RefineConfig& config,
                                 const Chi2CriticalCache& critical) {
  PairHistogram ph;
  ph.col_i = col_i;
  ph.col_j = col_j;
  const size_t n = xi.size();
  const size_t ki0 = h1_i.NumBins();
  const size_t kj0 = h1_j.NumBins();

  // Initial cell assignment on the 1-d edges.
  std::vector<uint32_t> cell_of(n);
  std::vector<uint32_t> cell_count(ki0 * kj0, 0);
  for (size_t r = 0; r < n; ++r) {
    size_t ti = h1_i.BinIndex(xi[r]);
    size_t tj = h1_j.BinIndex(xj[r]);
    uint32_t cell = static_cast<uint32_t>(ti * kj0 + tj);
    cell_of[r] = cell;
    ++cell_count[cell];
  }

  // Group row indices by cell (counting sort).
  std::vector<uint32_t> offset(ki0 * kj0 + 1, 0);
  for (size_t c = 0; c < cell_count.size(); ++c) {
    offset[c + 1] = offset[c] + cell_count[c];
  }
  std::vector<uint32_t> grouped(n);
  {
    std::vector<uint32_t> cursor(offset.begin(), offset.end() - 1);
    for (size_t r = 0; r < n; ++r) {
      grouped[cursor[cell_of[r]]++] = static_cast<uint32_t>(r);
    }
  }

  // Refine each over-full cell; gather new edges per dimension.
  std::vector<double> new_edges_i, new_edges_j, scratch;
  for (size_t ti = 0; ti < ki0; ++ti) {
    for (size_t tj = 0; tj < kj0; ++tj) {
      size_t cell = ti * kj0 + tj;
      uint32_t cnt = cell_count[cell];
      if (cnt <= config.min_points) continue;
      std::vector<uint32_t> rows(grouped.begin() + offset[cell],
                                 grouped.begin() + offset[cell + 1]);
      RefineBin2D(xi, xj, std::move(rows), h1_i.edges[ti],
                  h1_i.edges[ti + 1], h1_j.edges[tj], h1_j.edges[tj + 1], 0,
                  config, critical, &new_edges_i, &new_edges_j, &scratch);
    }
  }

  // Merge refined edges with the 1-d edges.
  auto merge_edges = [](std::span<const double> base,
                        std::vector<double>& extra) {
    std::vector<double> all(base.begin(), base.end());
    all.insert(all.end(), extra.begin(), extra.end());
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    return all;
  };
  std::vector<double> edges_i = merge_edges(h1_i.edges, new_edges_i);
  std::vector<double> edges_j = merge_edges(h1_j.edges, new_edges_j);

  ph.dim_i = BuildDimMetadata(xi, edges_i, h1_i);
  ph.dim_j = BuildDimMetadata(xj, edges_j, h1_j);

  // Final cell counts on the refined grid.
  size_t ki = ph.dim_i.NumBins();
  size_t kj = ph.dim_j.NumBins();
  ph.cells.assign(ki * kj, 0);
  for (size_t r = 0; r < n; ++r) {
    size_t ti = ph.dim_i.BinIndex(xi[r]);
    size_t tj = ph.dim_j.BinIndex(xj[r]);
    ++ph.cells[ti * kj + tj];
  }
  return ph;
}

}  // namespace pairwisehist
