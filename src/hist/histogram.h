// Refined 1-d and 2-d (pairwise) histograms with per-bin metadata.
//
// Implements Algorithm 1's histogram machinery: recursive hypothesis-test
// refinement (RefineBin1D / RefineBin2D), per-bin metadata (actual min/max,
// unique counts), and the pairwise count matrices. Everything operates in
// the GD pre-processed integer code domain, carried as double (exact for
// codes below 2^53).
#ifndef PAIRWISEHIST_HIST_HISTOGRAM_H_
#define PAIRWISEHIST_HIST_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/vec_view.h"
#include "hist/uniformity.h"

namespace pairwisehist {

/// Refinement parameters (paper notation: M and α).
struct RefineConfig {
  uint64_t min_points = 1000;  ///< M: a bin needs more than M points to split
  double alpha = 0.001;        ///< hypothesis-test significance
  double min_width = 1.0;      ///< never split below the code spacing µ
  int max_depth = 64;          ///< recursion guard
};

/// One dimension of a histogram: k bins delimited by k+1 edges, with the
/// paper's per-bin metadata. For pairwise histograms, `parent` maps each
/// refined bin to the 1-d bin of the same column that contains it.
///
/// Every array is a VecView: an owned vector for built/deserialized
/// synopses, a borrowed zero-copy span into the mapped file for
/// PWS3-opened ones (mutation copy-on-write-promotes; see
/// common/vec_view.h).
struct HistogramDim {
  VecView<double> edges;        ///< k+1 ascending edges, bins [e_t, e_{t+1})
  VecView<uint64_t> counts;     ///< k bin counts (marginal for 2-d)
  VecView<double> v_min;        ///< k actual minimum values (v−)
  VecView<double> v_max;        ///< k actual maximum values (v+)
  VecView<uint64_t> unique;     ///< k unique-value counts (u)
  VecView<uint32_t> parent;     ///< k parent 1-d bin indices (2-d only)
  /// k+1 exclusive prefix sums of `counts` (execution index, not part of
  /// the compact PWS2 encoding but persisted verbatim by PWS3): count over
  /// bins [a, b) is count_prefix[b] - count_prefix[a]. Rebuilt by
  /// BuildCountPrefix after counts change.
  VecView<uint64_t> count_prefix;
  /// Per-bin aggregation metadata cache (execution index, persisted only
  /// by PWS3): midpoint (v− + v+)/2 and the Theorem-1 weighted-centre
  /// bounds already clamped to [v−, v+]. Filled by
  /// PairwiseHist::FinishExecIndex (the bounds need M and the chi-squared
  /// cache) so Table-3 aggregation reads flat arrays instead of
  /// recomputing a sqrt per bin per query.
  VecView<double> centre_mid;
  VecView<double> centre_lo;
  VecView<double> centre_hi;

  size_t NumBins() const { return counts.size(); }
  bool HasCentreCache() const { return centre_mid.size() == counts.size(); }

  /// (Re)derives count_prefix from counts.
  void BuildCountPrefix();

  /// Bin midpoint c_t = (v− + v+)/2.
  double Midpoint(size_t t) const { return (v_min[t] + v_max[t]) / 2.0; }

  /// Index of the bin containing `value` (edges[t] <= value < edges[t+1]),
  /// clamped to [0, k-1]. Callers must check the value is within range
  /// when exactness matters.
  size_t BinIndex(double value) const;

  /// Total count across bins.
  uint64_t TotalCount() const;
};

/// Builds a refined one-dimensional histogram from `sorted_values`
/// (ascending, nulls excluded) with the given initial edges (ascending;
/// first <= min value, last > max value). Implements Algorithm 1 lines 3–12
/// including RefineBin1D (Algorithm 2) with equal-width splits.
HistogramDim BuildHistogram1D(const std::vector<double>& sorted_values,
                              const std::vector<double>& initial_edges,
                              const RefineConfig& config,
                              const Chi2CriticalCache& critical);

/// A pairwise (2-d) histogram for columns (i, j): refined edges and
/// metadata in both dimensions plus the dense cell-count matrix.
struct PairHistogram {
  uint32_t col_i = 0;
  uint32_t col_j = 0;
  HistogramDim dim_i;  ///< refined e(i|j) with metadata and parent mapping
  HistogramDim dim_j;  ///< refined e(j|i)
  /// Row-major dim_i.NumBins() x dim_j.NumBins() cell counts H(ij).
  VecView<uint64_t> cells;

  // ---- Cell prefix index (execution index, not serialized) --------------
  // Dense per-row cell prefixes (exact integers): row ti of
  // cell_prefix_i has kj+1 entries with entry tj = Σ cells[ti][0..tj), so
  // the cell mass of any pred-bin range — and any single cell — is a
  // difference of two lookups. cell_prefix_j is the transposed
  // orientation (kj rows of ki+1). This is what lets query execution
  // answer fully-covered coverage runs per aggregation bin in O(1)
  // instead of walking cells. Rebuilt by BuildCellPrefix whenever cells
  // change.
  VecView<uint64_t> cell_prefix_i;
  VecView<uint64_t> cell_prefix_j;
  // Column-major transpose of the prefixes: cell_colpre_i has kj+1 rows of
  // ki entries, entry [tp][ti] = Σ cells[ti][0..tp). For one pred-bin
  // boundary tp the values of EVERY aggregation bin are contiguous, so a
  // coverage run's mass for all aggregation bins is one vectorized
  // subtraction of two adjacent-ish rows (see PairView::AggPrefixCol and
  // the multi-row reduction kernels in common/simd.h). cell_colpre_j is
  // the swapped orientation (ki+1 rows of kj). Same exact integers as
  // cell_prefix_*, laid out for cross-row sweeps.
  VecView<uint64_t> cell_colpre_i;
  VecView<uint64_t> cell_colpre_j;
  /// Per 1-d bin of col_i / col_j: fraction of the 1-d rows that have the
  /// OTHER column non-null (clamped to [0, 1]; 1.0 for empty 1-d bins).
  /// Filled by PairwiseHist::FinishExecIndex (needs the 1-d histograms).
  VecView<double> nonnull_frac_i;
  VecView<double> nonnull_frac_j;

  uint64_t CellCount(size_t ti, size_t tj) const {
    return cells[ti * dim_j.NumBins() + tj];
  }

  /// (Re)derives both cell prefix orientations from `cells`.
  void BuildCellPrefix();
};

/// Builds the pairwise histogram for one column pair. `xi` / `xj` are the
/// paired values for rows where BOTH columns are non-null. `h1_i` / `h1_j`
/// are the already-built 1-d histograms providing initial edges (Algorithm 1
/// lines 14–26).
PairHistogram BuildPairHistogram(const std::vector<double>& xi,
                                 const std::vector<double>& xj,
                                 uint32_t col_i, uint32_t col_j,
                                 const HistogramDim& h1_i,
                                 const HistogramDim& h1_j,
                                 const RefineConfig& config,
                                 const Chi2CriticalCache& critical);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_HIST_HISTOGRAM_H_
