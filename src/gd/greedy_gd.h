// GreedyGD: Generalized Deduplication compression with greedy bit selection.
//
// GD splits each data chunk (here: one pre-processed row) into a *base* (the
// most significant bits of each column) and a *deviation* (the remaining
// bits). Bases are deduplicated — each row stores only a base ID plus its
// deviation bits verbatim (Fig. 3 of the paper). Compression is achieved
// when few distinct bases cover many rows.
//
// The greedy part (following GreedyGD [8]) selects *how many* bits of each
// column belong to the base: starting from all-bits-in-base, it repeatedly
// demotes the least-significant base bit of whichever column most reduces
// the estimated compressed size on a row sample, until no demotion helps.
//
// The deduplicated bases double as the seed bin edges for PairwiseHist
// construction (Section 3), which is the paper's key compression↔AQP link.
#ifndef PAIRWISEHIST_GD_GREEDY_GD_H_
#define PAIRWISEHIST_GD_GREEDY_GD_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gd/preprocess.h"
#include "storage/table.h"

namespace pairwisehist {

/// Tuning knobs for compression.
struct GdConfig {
  /// Rows sampled (strided) for the greedy bit-selection search.
  size_t greedy_sample_rows = 2048;
  /// Hard floor on deviation bits per column (0 = let the search decide).
  int min_deviation_bits = 0;
};

/// A GD-compressed table: deduplicated bases + per-row (base ID, deviation)
/// records, with bit-packed storage, O(1) random access and incremental
/// append.
class CompressedTable {
 public:
  /// Compresses a pre-processed table.
  static StatusOr<CompressedTable> Compress(const PreprocessedTable& pre,
                                            const GdConfig& config = {});

  size_t num_rows() const { return num_rows_; }
  size_t num_bases() const { return bases_.size() / std::max<size_t>(1, d_); }
  size_t num_columns() const { return d_; }

  /// Bits per column in the code domain.
  int total_bits(size_t col) const { return total_bits_[col]; }
  /// Bits of column `col` included in the base.
  int base_bits(size_t col) const { return base_bits_[col]; }
  /// Bits of column `col` stored verbatim per row.
  int deviation_bits(size_t col) const {
    return total_bits_[col] - base_bits_[col];
  }

  /// Appends more pre-processed rows (same schema). New bases are created
  /// as needed; the base-ID field width grows automatically.
  Status Append(const PreprocessedTable& more);

  /// Random access: reconstructs the codes of one row.
  StatusOr<std::vector<uint64_t>> GetRowCodes(size_t row) const;

  /// Reconstructs the full code matrix (column-major), i.e. lossless
  /// decompression in the code domain.
  PreprocessedTable DecompressCodes() const;

  /// Lossless decompression back to a raw Table. `dictionary_source`
  /// restores categorical strings (pass the original table or nullptr).
  Table Decompress(const Table* dictionary_source) const;

  /// Distinct base-aligned lower edges of `col` in the code domain, sorted.
  /// One value per distinct base prefix: (base_value << deviation_bits).
  /// These seed PairwiseHist's initial 1-d bin edges.
  std::vector<uint64_t> ColumnBaseValues(size_t col) const;

  /// Bytes of the bit-packed representation (bases + base IDs + deviations
  /// + header/transform metadata).
  size_t CompressedSizeBytes() const;

  const std::vector<ColumnTransform>& transforms() const {
    return transforms_;
  }

 private:
  CompressedTable() = default;

  uint64_t BaseKeyHash(const std::vector<uint64_t>& base_fields) const;
  /// Finds or inserts a base; returns its ID.
  uint32_t InternBase(const std::vector<uint64_t>& base_fields);
  void AppendRowRecord(uint32_t base_id,
                       const std::vector<uint64_t>& deviations);
  void RepackBaseIds(int new_bits);

  size_t d_ = 0;
  size_t num_rows_ = 0;
  std::vector<ColumnTransform> transforms_;
  std::vector<int> total_bits_;
  std::vector<int> base_bits_;

  // Decoded bases, flattened num_bases x d (base field values).
  std::vector<uint64_t> bases_;
  // Dedup index: hash -> base ids with that hash.
  std::unordered_map<uint64_t, std::vector<uint32_t>> base_index_;

  // Bit-packed per-row base IDs (fixed base_id_bits_ per row).
  int base_id_bits_ = 1;
  std::vector<uint8_t> base_id_store_;
  // Bit-packed per-row deviations (fixed dev_total_bits_ per row).
  int dev_total_bits_ = 0;
  std::vector<uint8_t> deviation_store_;
};

/// End-to-end convenience: preprocess + compress.
StatusOr<CompressedTable> CompressTable(const Table& table,
                                        const GdConfig& config = {});

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_GD_GREEDY_GD_H_
