#include "gd/greedy_gd.h"

#include <algorithm>
#include <cmath>

#include "common/bitio.h"

namespace pairwisehist {

namespace {

// 64-bit mixer (SplitMix64 finalizer) for base-key hashing.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Hash contribution of column c holding base value v. XOR-combining these
// per-column contributions lets the greedy search update a row hash in O(1)
// when a single column's base width changes.
uint64_t ColumnContribution(size_t c, uint64_t v) {
  return Mix64(v * 0x9e3779b97f4a7c15ULL + c * 0xc2b2ae3d27d4eb4fULL + 1);
}

int BitsFor(uint64_t n) {  // bits to address n distinct values
  int bits = 1;
  while ((uint64_t{1} << bits) < n && bits < 63) ++bits;
  return bits;
}

// Open-addressing set for distinct-count estimation, reusable across
// candidate evaluations without reallocation.
class ScratchSet {
 public:
  explicit ScratchSet(size_t capacity_hint) {
    size_t cap = 64;
    while (cap < capacity_hint * 2) cap <<= 1;
    slots_.assign(cap, 0);
  }
  void Clear() { std::fill(slots_.begin(), slots_.end(), 0); count_ = 0; }
  void Insert(uint64_t h) {
    if (h == 0) h = 1;  // reserve 0 for "empty"
    size_t mask = slots_.size() - 1;
    size_t i = h & mask;
    while (slots_[i] != 0) {
      if (slots_[i] == h) return;
      i = (i + 1) & mask;
    }
    slots_[i] = h;
    ++count_;
    if (count_ * 2 > slots_.size()) Grow();
  }
  size_t count() const { return count_; }

 private:
  void Grow() {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, 0);
    count_ = 0;
    for (uint64_t h : old) {
      if (h) Insert(h);
    }
  }
  std::vector<uint64_t> slots_;
  size_t count_ = 0;
};

void PackBits(std::vector<uint8_t>* store, size_t bit_offset, uint64_t value,
              int nbits) {
  for (int i = nbits - 1; i >= 0; --i) {
    size_t byte_index = bit_offset >> 3;
    int bit_in_byte = 7 - static_cast<int>(bit_offset & 7);
    if (byte_index >= store->size()) store->resize(byte_index + 1, 0);
    if ((value >> i) & 1) {
      (*store)[byte_index] |= static_cast<uint8_t>(1u << bit_in_byte);
    } else {
      (*store)[byte_index] &= static_cast<uint8_t>(~(1u << bit_in_byte));
    }
    ++bit_offset;
  }
}

uint64_t UnpackBits(const std::vector<uint8_t>& store, size_t bit_offset,
                    int nbits) {
  uint64_t value = 0;
  for (int i = 0; i < nbits; ++i) {
    size_t byte_index = bit_offset >> 3;
    int bit_in_byte = 7 - static_cast<int>(bit_offset & 7);
    value = (value << 1) | ((store[byte_index] >> bit_in_byte) & 1);
    ++bit_offset;
  }
  return value;
}

}  // namespace

StatusOr<CompressedTable> CompressedTable::Compress(
    const PreprocessedTable& pre, const GdConfig& config) {
  const size_t d = pre.NumColumns();
  const size_t n = pre.NumRows();
  if (d == 0) return Status::InvalidArgument("Compress: no columns");

  CompressedTable ct;
  ct.d_ = d;
  ct.transforms_ = pre.transforms;
  ct.total_bits_.resize(d);
  for (size_t c = 0; c < d; ++c) {
    ct.total_bits_[c] = pre.transforms[c].bit_width;
  }
  ct.base_bits_ = ct.total_bits_;

  // ---- Greedy bit selection on a strided sample ----------------------
  // Grow the base from empty (all bits deviation, one universal base):
  // each step promotes the next most-significant unpromoted bit of
  // whichever column most reduces the estimated compressed size. Growing
  // in this direction sees an immediate strict gain whenever a bit is
  // shared across rows (one bit removed from every row record at the cost
  // of a few extra base bits), which is the GreedyGD selection behaviour;
  // the reverse direction (shrinking from all-base) stalls because single
  // demotions rarely merge bases.
  if (n > 0) {
    size_t sample_n = std::min(config.greedy_sample_rows, n);
    size_t stride = std::max<size_t>(1, n / sample_n);
    std::vector<size_t> sample_rows;
    sample_rows.reserve(sample_n);
    for (size_t r = 0; r < n && sample_rows.size() < sample_n; r += stride) {
      sample_rows.push_back(r);
    }
    sample_n = sample_rows.size();

    std::vector<int> base_bits(d, 0);
    // contrib[r*d + c]: hash contribution of column c at current widths.
    std::vector<uint64_t> contrib(sample_n * d);
    std::vector<uint64_t> row_hash(sample_n, 0);
    for (size_t s = 0; s < sample_n; ++s) {
      for (size_t c = 0; c < d; ++c) {
        contrib[s * d + c] = ColumnContribution(c, 0);  // empty base
        row_hash[s] ^= contrib[s * d + c];
      }
    }

    auto estimated_bits = [&](size_t n_bases, const std::vector<int>& bb) {
      size_t base_width = 0, dev_width = 0;
      for (size_t c = 0; c < d; ++c) {
        base_width += bb[c];
        dev_width += ct.total_bits_[c] - bb[c];
      }
      return static_cast<double>(n_bases) * base_width +
             static_cast<double>(sample_n) *
                 (dev_width + BitsFor(std::max<size_t>(2, n_bases)));
    };

    ScratchSet set(sample_n);
    double best_cost = estimated_bits(1, base_bits);

    const int max_steps = [&] {
      int total = 0;
      for (size_t c = 0; c < d; ++c) total += ct.total_bits_[c];
      return total;
    }();
    for (int step = 0; step < max_steps; ++step) {
      int best_col = -1;
      double best_candidate_cost = best_cost;
      for (size_t c = 0; c < d; ++c) {
        int max_base =
            std::max(0, ct.total_bits_[c] -
                            std::max(0, config.min_deviation_bits));
        if (base_bits[c] >= max_base) continue;
        int new_shift = ct.total_bits_[c] - (base_bits[c] + 1);
        std::vector<int> bb = base_bits;
        bb[c] += 1;
        set.Clear();
        for (size_t s = 0; s < sample_n; ++s) {
          uint64_t v = pre.codes[c][sample_rows[s]] >> new_shift;
          uint64_t h =
              row_hash[s] ^ contrib[s * d + c] ^ ColumnContribution(c, v);
          set.Insert(h);
        }
        double cost = estimated_bits(set.count(), bb);
        if (cost < best_candidate_cost) {
          best_candidate_cost = cost;
          best_col = static_cast<int>(c);
        }
      }
      if (best_col < 0) break;
      // Apply the winning promotion.
      base_bits[best_col] += 1;
      int shift = ct.total_bits_[best_col] - base_bits[best_col];
      for (size_t s = 0; s < sample_n; ++s) {
        uint64_t v = pre.codes[best_col][sample_rows[s]] >> shift;
        uint64_t nc = ColumnContribution(best_col, v);
        row_hash[s] ^= contrib[s * d + best_col] ^ nc;
        contrib[s * d + best_col] = nc;
      }
      best_cost = best_candidate_cost;
    }
    ct.base_bits_ = base_bits;
  }

  ct.dev_total_bits_ = 0;
  for (size_t c = 0; c < d; ++c) {
    ct.dev_total_bits_ += ct.total_bits_[c] - ct.base_bits_[c];
  }
  ct.base_id_bits_ = 8;  // grows on demand

  // ---- Full compression pass ------------------------------------------
  PH_RETURN_IF_ERROR(ct.Append(pre));
  return ct;
}

uint64_t CompressedTable::BaseKeyHash(
    const std::vector<uint64_t>& base_fields) const {
  uint64_t h = 0;
  for (size_t c = 0; c < d_; ++c) h ^= ColumnContribution(c, base_fields[c]);
  return h;
}

uint32_t CompressedTable::InternBase(
    const std::vector<uint64_t>& base_fields) {
  uint64_t h = BaseKeyHash(base_fields);
  auto it = base_index_.find(h);
  if (it != base_index_.end()) {
    for (uint32_t id : it->second) {
      bool equal = true;
      for (size_t c = 0; c < d_; ++c) {
        if (bases_[static_cast<size_t>(id) * d_ + c] != base_fields[c]) {
          equal = false;
          break;
        }
      }
      if (equal) return id;
    }
  }
  uint32_t id = static_cast<uint32_t>(num_bases());
  bases_.insert(bases_.end(), base_fields.begin(), base_fields.end());
  base_index_[h].push_back(id);
  return id;
}

void CompressedTable::AppendRowRecord(
    uint32_t base_id, const std::vector<uint64_t>& deviations) {
  // Grow the base-ID field if the new ID does not fit.
  int needed = BitsFor(static_cast<uint64_t>(base_id) + 1);
  if (needed > base_id_bits_) RepackBaseIds(needed + 2);

  PackBits(&base_id_store_, num_rows_ * base_id_bits_, base_id,
           base_id_bits_);
  size_t off = num_rows_ * dev_total_bits_;
  for (size_t c = 0; c < d_; ++c) {
    int dev = deviation_bits(c);
    if (dev == 0) continue;
    PackBits(&deviation_store_, off, deviations[c], dev);
    off += dev;
  }
  ++num_rows_;
}

void CompressedTable::RepackBaseIds(int new_bits) {
  std::vector<uint8_t> fresh((num_rows_ * new_bits + 7) / 8, 0);
  for (size_t r = 0; r < num_rows_; ++r) {
    uint64_t id = UnpackBits(base_id_store_, r * base_id_bits_,
                             base_id_bits_);
    PackBits(&fresh, r * new_bits, id, new_bits);
  }
  base_id_store_ = std::move(fresh);
  base_id_bits_ = new_bits;
}

Status CompressedTable::Append(const PreprocessedTable& more) {
  if (more.NumColumns() != d_) {
    return Status::InvalidArgument("Append: column count mismatch");
  }
  std::vector<uint64_t> base_fields(d_), deviations(d_);
  for (size_t r = 0; r < more.NumRows(); ++r) {
    for (size_t c = 0; c < d_; ++c) {
      uint64_t code = more.codes[c][r];
      int dev = deviation_bits(c);
      base_fields[c] = code >> dev;
      deviations[c] =
          dev == 0 ? 0 : (code & ((uint64_t{1} << dev) - 1));
    }
    uint32_t id = InternBase(base_fields);
    AppendRowRecord(id, deviations);
  }
  return Status::OK();
}

StatusOr<std::vector<uint64_t>> CompressedTable::GetRowCodes(
    size_t row) const {
  if (row >= num_rows_) return Status::OutOfRange("GetRowCodes: bad row");
  std::vector<uint64_t> codes(d_);
  uint64_t id = UnpackBits(base_id_store_, row * base_id_bits_,
                           base_id_bits_);
  size_t off = row * dev_total_bits_;
  for (size_t c = 0; c < d_; ++c) {
    int dev = deviation_bits(c);
    uint64_t base = bases_[static_cast<size_t>(id) * d_ + c];
    uint64_t dv = 0;
    if (dev > 0) {
      dv = UnpackBits(deviation_store_, off, dev);
      off += dev;
    }
    codes[c] = (base << dev) | dv;
  }
  return codes;
}

PreprocessedTable CompressedTable::DecompressCodes() const {
  PreprocessedTable pre;
  pre.name = "decompressed";
  pre.transforms = transforms_;
  pre.codes.assign(d_, std::vector<uint64_t>(num_rows_));
  for (size_t r = 0; r < num_rows_; ++r) {
    auto codes = GetRowCodes(r);
    for (size_t c = 0; c < d_; ++c) pre.codes[c][r] = codes.value()[c];
  }
  return pre;
}

Table CompressedTable::Decompress(const Table* dictionary_source) const {
  PreprocessedTable pre = DecompressCodes();
  return InverseTransform(pre, dictionary_source);
}

std::vector<uint64_t> CompressedTable::ColumnBaseValues(size_t col) const {
  std::vector<uint64_t> values;
  size_t nb = num_bases();
  values.reserve(nb);
  int dev = deviation_bits(col);
  for (size_t b = 0; b < nb; ++b) {
    values.push_back(bases_[b * d_ + col] << dev);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

size_t CompressedTable::CompressedSizeBytes() const {
  size_t base_width_bits = 0;
  for (size_t c = 0; c < d_; ++c) base_width_bits += base_bits_[c];
  size_t bits = num_bases() * base_width_bits +
                num_rows_ * (static_cast<size_t>(base_id_bits_) +
                             static_cast<size_t>(dev_total_bits_));
  // Header: per-column transform metadata (name, widths, min, scale) plus
  // categorical rank permutations.
  size_t header = 32;
  for (const auto& tr : transforms_) {
    header += tr.name.size() + 24 + tr.rank_to_code.size() * 4;
  }
  return bits / 8 + header;
}

StatusOr<CompressedTable> CompressTable(const Table& table,
                                        const GdConfig& config) {
  PH_ASSIGN_OR_RETURN(PreprocessedTable pre, Preprocess(table));
  return CompressedTable::Compress(pre, config);
}

}  // namespace pairwisehist
