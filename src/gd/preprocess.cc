#include "gd/preprocess.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace pairwisehist {

namespace {

int BitWidthFor(uint64_t max_code) {
  int bits = 1;
  while ((uint64_t{1} << bits) <= max_code && bits < 63) ++bits;
  return bits;
}

}  // namespace

uint64_t ColumnTransform::Encode(double value) const {
  if (type == DataType::kCategorical) {
    int64_t code = static_cast<int64_t>(value);
    if (code >= 0 && code < static_cast<int64_t>(code_to_rank.size())) {
      return static_cast<uint64_t>(code_to_rank[code]) + 1;
    }
    return 1;  // unseen category clamps to the most common rank
  }
  int64_t scaled = static_cast<int64_t>(std::llround(value * scale));
  int64_t code = scaled - min_scaled + 1;
  if (code < 1) code = 1;
  if (code > static_cast<int64_t>(max_code)) code = max_code;
  return static_cast<uint64_t>(code);
}

double ColumnTransform::Decode(uint64_t code) const {
  if (type == DataType::kCategorical) {
    size_t rank = static_cast<size_t>(code - 1);
    if (rank < rank_to_code.size()) {
      return static_cast<double>(rank_to_code[rank]);
    }
    return 0;
  }
  int64_t scaled = static_cast<int64_t>(code) - 1 + min_scaled;
  return static_cast<double>(scaled) / scale;
}

StatusOr<uint64_t> ColumnTransform::EncodeCategory(
    const std::string& category) const {
  for (size_t code = 0; code < dictionary.size(); ++code) {
    if (dictionary[code] == category) {
      return static_cast<uint64_t>(code_to_rank[code]) + 1;
    }
  }
  return Status::NotFound("category '" + category + "' not in column '" +
                          name + "'");
}

StatusOr<std::string> ColumnTransform::DecodeCategory(uint64_t code) const {
  size_t rank = static_cast<size_t>(code) - 1;
  if (code == 0 || rank >= rank_to_code.size()) {
    return Status::OutOfRange("bad category code in column '" + name + "'");
  }
  size_t dict_code = static_cast<size_t>(rank_to_code[rank]);
  if (dict_code >= dictionary.size()) {
    return Status::OutOfRange("bad dictionary code in column '" + name + "'");
  }
  return dictionary[dict_code];
}

double ColumnTransform::EncodeContinuous(double literal) const {
  if (type == DataType::kCategorical) {
    return static_cast<double>(Encode(literal));
  }
  return literal * scale - static_cast<double>(min_scaled) + 1.0;
}

std::vector<ColumnTransform> FitColumnTransforms(const Table& table) {
  std::vector<ColumnTransform> transforms;
  transforms.reserve(table.NumColumns());
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    ColumnTransform tr;
    tr.name = col.name();
    tr.type = col.type();
    tr.decimals = col.type() == DataType::kFloat64 ? col.decimals() : 0;
    tr.scale = std::pow(10.0, tr.decimals);
    tr.has_nulls = col.has_nulls();

    if (col.type() == DataType::kCategorical) {
      // Frequency-ranked encoding: most common category gets rank 0.
      size_t ncats = col.dictionary().size();
      std::vector<uint64_t> freq(ncats, 0);
      for (size_t r = 0; r < col.size(); ++r) {
        if (col.IsNull(r)) continue;
        size_t code = static_cast<size_t>(col.Value(r));
        if (code >= freq.size()) freq.resize(code + 1, 0);
      }
      ncats = freq.size();
      for (size_t r = 0; r < col.size(); ++r) {
        if (col.IsNull(r)) continue;
        ++freq[static_cast<size_t>(col.Value(r))];
      }
      std::vector<int64_t> order(ncats);
      for (size_t i = 0; i < ncats; ++i) order[i] = static_cast<int64_t>(i);
      std::stable_sort(order.begin(), order.end(),
                       [&](int64_t a, int64_t b) { return freq[a] > freq[b]; });
      tr.rank_to_code = order;
      tr.code_to_rank.assign(ncats, 0);
      for (size_t rank = 0; rank < ncats; ++rank) {
        tr.code_to_rank[static_cast<size_t>(order[rank])] =
            static_cast<int64_t>(rank);
      }
      tr.dictionary = col.dictionary();
      tr.min_scaled = 0;
      tr.max_code = ncats == 0 ? 1 : ncats;  // ranks 0..n-1 → codes 1..n
    } else {
      bool any = false;
      int64_t min_s = 0, max_s = 0;
      for (size_t r = 0; r < col.size(); ++r) {
        if (col.IsNull(r)) continue;
        int64_t s = static_cast<int64_t>(std::llround(col.Value(r) * tr.scale));
        if (!any) {
          min_s = max_s = s;
          any = true;
        } else {
          min_s = std::min(min_s, s);
          max_s = std::max(max_s, s);
        }
      }
      tr.min_scaled = min_s;
      tr.max_code = any ? static_cast<uint64_t>(max_s - min_s) + 1 : 1;
    }
    tr.bit_width = BitWidthFor(tr.max_code);
    transforms.push_back(std::move(tr));
  }
  return transforms;
}

StatusOr<PreprocessedTable> ApplyTransforms(
    const Table& table, const std::vector<ColumnTransform>& transforms) {
  if (transforms.size() != table.NumColumns()) {
    return Status::InvalidArgument(
        "ApplyTransforms: transform count does not match column count");
  }
  PreprocessedTable pre;
  pre.name = table.name();
  pre.transforms = transforms;
  pre.codes.resize(table.NumColumns());
  size_t rows = table.NumRows();
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    const Column& col = table.column(c);
    if (col.name() != transforms[c].name) {
      return Status::InvalidArgument("ApplyTransforms: column '" +
                                     col.name() + "' does not match fitted '" +
                                     transforms[c].name + "'");
    }
    auto& out = pre.codes[c];
    out.resize(rows);
    const ColumnTransform& tr = transforms[c];
    for (size_t r = 0; r < rows; ++r) {
      out[r] = col.IsNull(r) ? kMissingCode : tr.Encode(col.Value(r));
    }
  }
  return pre;
}

StatusOr<PreprocessedTable> Preprocess(const Table& table) {
  return ApplyTransforms(table, FitColumnTransforms(table));
}

Table InverseTransform(const PreprocessedTable& pre,
                       const Table* dictionary_source) {
  Table out(pre.name);
  for (size_t c = 0; c < pre.NumColumns(); ++c) {
    const ColumnTransform& tr = pre.transforms[c];
    Column col(tr.name, tr.type, tr.decimals);
    if (tr.type == DataType::kCategorical && dictionary_source &&
        c < dictionary_source->NumColumns()) {
      col.SetDictionary(dictionary_source->column(c).dictionary());
    }
    col.Reserve(pre.NumRows());
    for (size_t r = 0; r < pre.NumRows(); ++r) {
      uint64_t code = pre.codes[c][r];
      if (code == kMissingCode) {
        col.AppendNull();
      } else {
        col.Append(tr.Decode(code));
      }
    }
    out.AddColumn(std::move(col));
  }
  return out;
}

}  // namespace pairwisehist
