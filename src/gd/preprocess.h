// GreedyGD pre-processing (Section 3 of the paper).
//
// Converts every column to a non-negative integer code domain so that
// Generalized Deduplication can split rows into base and deviation bits:
//   * minimum-value subtraction,
//   * floating point → integer conversion (10.22 → 1022, per the column's
//     decimal precision),
//   * frequency-ranked categorical encoding (most common value → rank 0),
//   * missing-value encoding (reserved code 0; non-null codes start at 1).
//
// The same transform maps query predicate literals into the code domain
// (Fig. 7's "GreedyGD pre-process" step) and aggregation results back out.
// Pre-processing is streaming-friendly: FitColumnTransforms only needs
// per-column min/max and category frequencies, which can be accumulated in
// arbitrary-size batches.
#ifndef PAIRWISEHIST_GD_PREPROCESS_H_
#define PAIRWISEHIST_GD_PREPROCESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// Reserved code for missing values in the pre-processed domain.
inline constexpr uint64_t kMissingCode = 0;

/// Per-column transform between the raw value domain and the GD code domain.
struct ColumnTransform {
  std::string name;
  DataType type = DataType::kFloat64;
  int decimals = 0;        ///< float columns: preserved decimal places
  double scale = 1.0;      ///< 10^decimals for floats, 1 otherwise
  int64_t min_scaled = 0;  ///< minimum of round(value*scale) over non-nulls
  uint64_t max_code = 0;   ///< largest code produced (missing = 0 reserved)
  int bit_width = 1;       ///< bits needed for codes in [0, max_code]
  bool has_nulls = false;

  /// Categorical only: frequency rank r (0 = most common) → original
  /// dictionary code, and its inverse.
  std::vector<int64_t> rank_to_code;
  std::vector<int64_t> code_to_rank;
  /// Categorical only: dictionary strings (indexed by original code), so a
  /// serialized synopsis can resolve string literals and label GROUP BY
  /// results without the source table.
  std::vector<std::string> dictionary;

  /// Resolves a category string to its pre-processed code (>= 1);
  /// NotFound for unseen categories.
  StatusOr<uint64_t> EncodeCategory(const std::string& category) const;
  /// Category string for a pre-processed code.
  StatusOr<std::string> DecodeCategory(uint64_t code) const;

  /// Raw value → integer code (>= 1). Categorical input is the dictionary
  /// code. Values outside the fitted domain are clamped into it.
  uint64_t Encode(double value) const;

  /// Integer code (>= 1) → raw value (categorical: dictionary code).
  double Decode(uint64_t code) const;

  /// Raw literal → continuous position in the code domain, for inequality
  /// comparisons (no rounding: 10.225 maps strictly between the codes of
  /// 10.22 and 10.23).
  double EncodeContinuous(double literal) const;

  /// Minimum spacing µ between distinct codes (always 1 in the integer
  /// domain; used by the Theorem-1 bounds for non-passing bins).
  double min_spacing() const { return 1.0; }
};

/// A table converted to the GD code domain: column-major codes plus the
/// transforms needed to invert them.
struct PreprocessedTable {
  std::string name;
  std::vector<ColumnTransform> transforms;
  /// codes[c][r]: code of row r in column c; kMissingCode for nulls.
  std::vector<std::vector<uint64_t>> codes;

  size_t NumColumns() const { return codes.size(); }
  size_t NumRows() const { return codes.empty() ? 0 : codes[0].size(); }
};

/// Fits transforms on `table` (one pass per column).
std::vector<ColumnTransform> FitColumnTransforms(const Table& table);

/// Applies `transforms` to `table`. Transforms must have been fitted on a
/// table with the same schema (typically the same one, or a superset batch).
StatusOr<PreprocessedTable> ApplyTransforms(
    const Table& table, const std::vector<ColumnTransform>& transforms);

/// Convenience: fit + apply.
StatusOr<PreprocessedTable> Preprocess(const Table& table);

/// Reconstructs a raw Table from codes (lossless inverse; categorical
/// dictionaries must be supplied from the original table to restore
/// strings, otherwise codes are kept).
Table InverseTransform(const PreprocessedTable& pre,
                       const Table* dictionary_source);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_GD_PREPROCESS_H_
