// Row-range partitioning of a Table into immutable, contiguous segments.
//
// A SegmentedTable is the build-time view behind the segmented synopsis
// architecture: one table is split into ceil(rows / target) contiguous row
// ranges, each of which seals into its own PairwiseHist (see
// core/synopsis_set.h). Segments share one canonical categorical
// dictionary — Materialize() copies each column's dictionary from the base
// table verbatim, so the same category string carries the same dictionary
// code in every segment. Appends extend dictionaries append-only (see
// Db::Append), which keeps old segments' codes valid forever.
#ifndef PAIRWISEHIST_STORAGE_SEGMENT_H_
#define PAIRWISEHIST_STORAGE_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// Half-open row range [begin, end) of one segment within its base table.
struct SegmentSpan {
  size_t begin = 0;
  size_t end = 0;
  size_t rows() const { return end - begin; }
};

/// Exact per-column value ranges of one row range, used by the query
/// planner to prune segments a predicate cannot match. min/max are raw
/// (pre-transform) values over non-null rows; valid[c] == 0 marks columns
/// with no non-null rows in the range (or unknown ranges after loading a
/// legacy synopsis file) — such columns never prune.
struct ColumnRanges {
  std::vector<double> min;
  std::vector<double> max;
  std::vector<uint8_t> valid;
};

/// Computes exact raw-domain min/max per column over rows [begin, end).
ColumnRanges ComputeColumnRanges(const Table& table, size_t begin, size_t end);

/// A non-owning partition of `table` into contiguous segments. The base
/// table must outlive the view; segments are materialized on demand so the
/// partition itself costs no row copies.
class SegmentedTable {
 public:
  /// Partitions into ceil(rows / target_rows) contiguous segments
  /// (target_rows == 0 means one segment spanning everything). An empty
  /// table yields a single empty segment.
  static StatusOr<SegmentedTable> Partition(const Table* table,
                                            size_t target_rows);

  size_t NumSegments() const { return spans_.size(); }
  SegmentSpan span(size_t i) const { return spans_[i]; }
  const Table& base() const { return *base_; }

  /// Copies segment i out as its own Table. Columns carry the base table's
  /// dictionaries unchanged (the shared canonical dictionary).
  Table Materialize(size_t i) const;

  /// Exact per-column min/max of segment i (planner pruning metadata).
  ColumnRanges Ranges(size_t i) const;

 private:
  SegmentedTable(const Table* table, std::vector<SegmentSpan> spans)
      : base_(table), spans_(std::move(spans)) {}

  const Table* base_;
  std::vector<SegmentSpan> spans_;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_SEGMENT_H_
