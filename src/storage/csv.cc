#include "storage/csv.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace pairwisehist {

namespace {

// Splits one CSV record honouring double quotes. Returns false on an
// unterminated quote.
bool SplitCsvLine(const std::string& line, std::vector<std::string>* out) {
  out->clear();
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      out->push_back(field);
      field.clear();
    } else if (c == '\r') {
      // Skip CR of CRLF endings.
    } else {
      field += c;
    }
  }
  out->push_back(field);
  return !in_quotes;
}

bool LooksLikeInt(const std::string& s) {
  if (s.empty()) return false;
  size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  for (; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

bool LooksLikeFloat(const std::string& s, int* decimals) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  size_t dot = s.find('.');
  *decimals = 0;
  if (dot != std::string::npos) {
    size_t frac = s.size() - dot - 1;
    // Strip exponent part if present.
    size_t e = s.find_first_of("eE", dot);
    if (e != std::string::npos) frac = e - dot - 1;
    *decimals = static_cast<int>(frac);
  }
  return true;
}

std::string EscapeCsv(const std::string& s) {
  bool needs_quote = s.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += "\"";
  return out;
}

}  // namespace

StatusOr<Table> ParseCsv(const std::string& text, const std::string& name) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("CSV: empty input");
  }
  std::vector<std::string> header;
  if (!SplitCsvLine(line, &header)) {
    return Status::InvalidArgument("CSV: unterminated quote in header");
  }
  size_t ncols = header.size();

  std::vector<std::vector<std::string>> cells(ncols);
  std::vector<std::string> fields;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (!SplitCsvLine(line, &fields)) {
      return Status::InvalidArgument("CSV: unterminated quote at line " +
                                     std::to_string(line_no));
    }
    if (fields.size() != ncols) {
      return Status::InvalidArgument(
          "CSV: wrong field count at line " + std::to_string(line_no) +
          " (expected " + std::to_string(ncols) + ", got " +
          std::to_string(fields.size()) + ")");
    }
    for (size_t c = 0; c < ncols; ++c) cells[c].push_back(fields[c]);
  }

  Table table(name);
  for (size_t c = 0; c < ncols; ++c) {
    // Infer type: every non-empty value int => int64; else every value
    // numeric => float64 (max decimals); else categorical.
    bool all_int = true, all_float = true;
    int max_decimals = 0;
    bool any_value = false;
    for (const auto& v : cells[c]) {
      if (v.empty()) continue;
      any_value = true;
      if (!LooksLikeInt(v)) all_int = false;
      int dec = 0;
      if (!LooksLikeFloat(v, &dec)) all_float = false;
      else if (dec > max_decimals) max_decimals = dec;
      if (!all_int && !all_float) break;
    }
    DataType type = DataType::kCategorical;
    if (any_value && all_int) type = DataType::kInt64;
    else if (any_value && all_float) type = DataType::kFloat64;

    Column col(header[c], type,
               type == DataType::kFloat64 ? std::min(max_decimals, 6) : 0);
    col.Reserve(cells[c].size());
    for (const auto& v : cells[c]) {
      if (v.empty()) {
        col.AppendNull();
      } else if (type == DataType::kCategorical) {
        col.AppendCategory(v);
      } else {
        col.Append(std::strtod(v.c_str(), nullptr));
      }
    }
    table.AddColumn(std::move(col));
  }
  PH_RETURN_IF_ERROR(table.Validate());
  return table;
}

StatusOr<Table> ReadCsv(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  // Table name = file stem.
  size_t slash = path.find_last_of('/');
  std::string stem = (slash == std::string::npos) ? path
                                                  : path.substr(slash + 1);
  size_t dot = stem.find_last_of('.');
  if (dot != std::string::npos) stem = stem.substr(0, dot);
  return ParseCsv(ss.str(), stem);
}

std::string ToCsvString(const Table& table) {
  std::ostringstream out;
  for (size_t c = 0; c < table.NumColumns(); ++c) {
    if (c) out << ',';
    out << EscapeCsv(table.column(c).name());
  }
  out << '\n';
  char buf[64];
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < table.NumColumns(); ++c) {
      if (c) out << ',';
      const Column& col = table.column(c);
      if (col.IsNull(r)) continue;
      switch (col.type()) {
        case DataType::kCategorical: {
          auto name = col.CategoryName(static_cast<int64_t>(col.Value(r)));
          out << EscapeCsv(name.ok() ? name.value() : "?");
          break;
        }
        case DataType::kFloat64:
          std::snprintf(buf, sizeof(buf), "%.*f", col.decimals(),
                        col.Value(r));
          out << buf;
          break;
        case DataType::kInt64:
        case DataType::kTimestamp:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(col.Value(r)));
          out << buf;
          break;
      }
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  f << ToCsvString(table);
  if (!f) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace pairwisehist
