// Minimal CSV reader/writer with type inference.
//
// Used by the examples to round-trip datasets to disk and to demonstrate
// ingesting external data into the AQP framework. Supports quoted fields,
// empty fields as nulls, and infers int64 → float64 → categorical.
#ifndef PAIRWISEHIST_STORAGE_CSV_H_
#define PAIRWISEHIST_STORAGE_CSV_H_

#include <string>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// Parses the CSV file at `path` (first row = header) into a Table.
/// Empty fields become nulls. Column types are inferred from the data.
StatusOr<Table> ReadCsv(const std::string& path);

/// Parses CSV from an in-memory string (first row = header).
StatusOr<Table> ParseCsv(const std::string& text, const std::string& name);

/// Writes `table` as CSV to `path`. Categorical codes are written as their
/// dictionary strings; nulls as empty fields.
Status WriteCsv(const Table& table, const std::string& path);

/// Serializes `table` as a CSV string.
std::string ToCsvString(const Table& table);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_CSV_H_
