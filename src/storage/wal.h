// Write-ahead log for the serving layer's append durability.
//
// One append-only file of framed records:
//
//   [u32 payload length][u32 CRC32(payload)][payload bytes]
//
// An append batch's payload is a versioned epoch + serialized Table (see
// EncodeWalBatch). Appends are framed, written, and — per WalOptions::fsync
// — fsynced before the caller acknowledges anything, so every acknowledged
// record survives a crash. Replay walks the frames back, tolerating exactly
// the corruption a crash can produce: a torn or CRC-broken FINAL record is
// dropped and truncated off the file; a broken record with valid data after
// it cannot come from a crash of this writer and is reported as DataLoss.
//
// Checkpoint rotation (serve/serving_db.cc): after a successful snapshot
// checkpoint at epoch E the WAL is truncated to empty; records carry their
// epoch so a crash between "checkpoint durable" and "WAL truncated" is
// harmless — recovery skips records with epoch <= E.
#ifndef PAIRWISEHIST_STORAGE_WAL_H_
#define PAIRWISEHIST_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace pairwisehist {

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) of `data`.
uint32_t Crc32(const uint8_t* data, size_t size);

struct WalOptions {
  enum class Fsync {
    kAlways,    ///< fsync before every Append returns (full durability)
    kInterval,  ///< fsync at most every fsync_interval_ms (bounded loss)
    kNever,     ///< never fsync (durability = OS page-cache flush policy)
  };
  Fsync fsync = Fsync::kAlways;
  /// Max acknowledged-but-unsynced staleness under kInterval.
  uint32_t fsync_interval_ms = 20;
};

/// Parses "always" / "interval" / "never" (case-sensitive).
StatusOr<WalOptions::Fsync> ParseFsyncPolicy(const std::string& name);
const char* FsyncPolicyName(WalOptions::Fsync policy);

class Wal {
 public:
  /// Opens (creating if absent) the WAL at `path`, positioned to append
  /// after the existing valid records. Callers that need the existing
  /// records should Replay() first — Open does not validate old frames.
  static StatusOr<Wal> Open(const std::string& path, WalOptions options = {});

  Wal(Wal&&) noexcept;
  Wal& operator=(Wal&&) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  /// Frames and writes `payload`, then applies the fsync policy. On any
  /// write failure the file is truncated back to the record's start offset
  /// (a NACKed record never leaves torn bytes for the next record to land
  /// after), and the error is returned. Fault injection: fires failpoints
  /// "wal.append.write" (partial-capable) and "wal.append.sync".
  Status Append(const std::vector<uint8_t>& payload);

  /// Explicit fsync (used by interval shutdown paths).
  Status Sync();

  /// Truncates the log to empty (checkpoint rotation) and fsyncs.
  Status Truncate();

  // Counters (safe to read concurrently with Append from another thread).
  uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }
  uint64_t records_written() const {
    return records_written_.load(std::memory_order_relaxed);
  }
  uint64_t fsyncs() const { return fsyncs_.load(std::memory_order_relaxed); }

  const std::string& path() const { return path_; }

  struct ReplayResult {
    uint64_t records = 0;        ///< valid records delivered to the callback
    uint64_t bytes = 0;          ///< payload bytes delivered
    bool tail_truncated = false; ///< a torn/corrupt final record was dropped
  };

  /// Reads the log at `path`, invoking `cb(payload, size)` per valid record
  /// in order. A missing file is an empty log (OK, zero records). A torn or
  /// CRC-mismatched final record is truncated off the file and reported via
  /// tail_truncated; the same corruption mid-file (valid bytes follow)
  /// returns DataLoss. A non-OK callback status aborts and propagates.
  static StatusOr<ReplayResult> Replay(
      const std::string& path,
      const std::function<Status(const uint8_t*, size_t)>& cb);

 private:
  Wal() = default;

  std::string path_;
  int fd_ = -1;
  WalOptions options_;
  std::chrono::steady_clock::time_point last_sync_;
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> records_written_{0};
  std::atomic<uint64_t> fsyncs_{0};
};

/// WAL payload codec for one append batch: version byte, epoch, and the
/// full Table (schema, null bitmaps, values, dictionaries) — bit-exact
/// round-trip, unlike a CSV re-parse.
std::vector<uint8_t> EncodeWalBatch(uint64_t epoch, const Table& batch);
struct WalBatch {
  uint64_t epoch = 0;
  Table batch;
};
StatusOr<WalBatch> DecodeWalBatch(const uint8_t* data, size_t size);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_WAL_H_
