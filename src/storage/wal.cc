#include "storage/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/serialize.h"

namespace pairwisehist {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc
constexpr uint8_t kWalBatchVersion = 1;
/// Frames larger than this are rejected as corrupt rather than allocated.
constexpr uint32_t kMaxPayloadBytes = 1u << 30;

/// write() the whole buffer, retrying EINTR and short writes.
Status WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("WAL: write failed: ") +
                              std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FsyncFd(int fd) {
  if (::fsync(fd) != 0) {
    return Status::Internal(std::string("WAL: fsync failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  // Slicing-by-8: eight derived tables, eight input bytes per iteration.
  // Same polynomial (0xEDB88320) and same values as the classic
  // byte-at-a-time loop, so existing WAL frames and PWS3 checksums verify
  // unchanged — this only matters for speed, since PWS3 open checksums the
  // whole metadata stream on every Db::Open.
  using Tables = uint32_t[8][256];
  static const Tables* kTables = [] {
    static Tables t;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int s = 1; s < 8; ++s) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return &t;
  }();
  const Tables& t = *kTables;
  uint32_t crc = 0xFFFFFFFFu;
  while (size >= 8) {
    uint32_t lo, hi;  // little-endian load (raw formats assume LE already)
    std::memcpy(&lo, data, 4);
    std::memcpy(&hi, data + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^
          t[5][(lo >> 16) & 0xFF] ^ t[4][lo >> 24] ^ t[3][hi & 0xFF] ^
          t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    data += 8;
    size -= 8;
  }
  for (size_t i = 0; i < size; ++i) {
    crc = t[0][(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

StatusOr<WalOptions::Fsync> ParseFsyncPolicy(const std::string& name) {
  if (name == "always") return WalOptions::Fsync::kAlways;
  if (name == "interval") return WalOptions::Fsync::kInterval;
  if (name == "never") return WalOptions::Fsync::kNever;
  return Status::InvalidArgument("bad fsync policy '" + name +
                                 "' (always|interval|never)");
}

const char* FsyncPolicyName(WalOptions::Fsync policy) {
  switch (policy) {
    case WalOptions::Fsync::kAlways: return "always";
    case WalOptions::Fsync::kInterval: return "interval";
    case WalOptions::Fsync::kNever: return "never";
  }
  return "?";
}

StatusOr<Wal> Wal::Open(const std::string& path, WalOptions options) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::Internal("WAL: cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  Wal wal;
  wal.path_ = path;
  wal.fd_ = fd;
  wal.options_ = options;
  wal.last_sync_ = std::chrono::steady_clock::now();
  return wal;
}

Wal::Wal(Wal&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      options_(other.options_),
      last_sync_(other.last_sync_),
      bytes_written_(other.bytes_written_.load(std::memory_order_relaxed)),
      records_written_(
          other.records_written_.load(std::memory_order_relaxed)),
      fsyncs_(other.fsyncs_.load(std::memory_order_relaxed)) {
  other.fd_ = -1;
}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(other.path_);
    fd_ = other.fd_;
    options_ = other.options_;
    last_sync_ = other.last_sync_;
    bytes_written_.store(other.bytes_written_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    records_written_.store(
        other.records_written_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    fsyncs_.store(other.fsyncs_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    other.fd_ = -1;
  }
  return *this;
}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

Status Wal::Append(const std::vector<uint8_t>& payload) {
  if (fd_ < 0) return Status::Internal("WAL: not open");
  if (payload.empty() || payload.size() > kMaxPayloadBytes) {
    return Status::InvalidArgument("WAL: bad payload size " +
                                   std::to_string(payload.size()));
  }
  const off_t start = ::lseek(fd_, 0, SEEK_END);
  if (start < 0) {
    return Status::Internal(std::string("WAL: lseek failed: ") +
                            std::strerror(errno));
  }

  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::memcpy(frame.data(), &len, 4);
  std::memcpy(frame.data() + 4, &crc, 4);
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size());

  Status st;
  const failpoint::Injection inj = failpoint::Fire("wal.append.write");
  if (inj.partial) {
    // Torn-tail producer: half the frame reaches the file, then the
    // process dies exactly as a mid-write crash would leave it.
    (void)WriteAll(fd_, frame.data(), frame.size() / 2);
    failpoint::CrashNow();
  }
  st = inj.status;
  if (st.ok()) st = WriteAll(fd_, frame.data(), frame.size());
  if (st.ok()) {
    const failpoint::Injection sync_inj = failpoint::Fire("wal.append.sync");
    st = sync_inj.status;
    if (st.ok()) {
      switch (options_.fsync) {
        case WalOptions::Fsync::kAlways:
          st = Sync();
          break;
        case WalOptions::Fsync::kInterval: {
          const auto now = std::chrono::steady_clock::now();
          if (now - last_sync_ >=
              std::chrono::milliseconds(options_.fsync_interval_ms)) {
            st = Sync();
          }
          break;
        }
        case WalOptions::Fsync::kNever:
          break;
      }
    }
  }
  if (!st.ok()) {
    // Repair: a NACKed append must not leave torn bytes that would corrupt
    // the frame stream for subsequent (acknowledged) records.
    (void)::ftruncate(fd_, start);
    return st;
  }
  bytes_written_.fetch_add(frame.size(), std::memory_order_relaxed);
  records_written_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::Internal("WAL: not open");
  PH_RETURN_IF_ERROR(FsyncFd(fd_));
  fsyncs_.fetch_add(1, std::memory_order_relaxed);
  last_sync_ = std::chrono::steady_clock::now();
  return Status::OK();
}

Status Wal::Truncate() {
  if (fd_ < 0) return Status::Internal("WAL: not open");
  if (::ftruncate(fd_, 0) != 0) {
    return Status::Internal(std::string("WAL: ftruncate failed: ") +
                            std::strerror(errno));
  }
  return Sync();
}

StatusOr<Wal::ReplayResult> Wal::Replay(
    const std::string& path,
    const std::function<Status(const uint8_t*, size_t)>& cb) {
  ReplayResult result;
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no WAL yet = empty log
    return Status::Internal("WAL: cannot open '" + path +
                            "': " + std::strerror(errno));
  }

  // Read the whole file (synopsis-scale WALs are KBs–MBs by design).
  std::vector<uint8_t> data;
  {
    struct stat sb;
    if (::fstat(fd, &sb) != 0) {
      ::close(fd);
      return Status::Internal("WAL: fstat failed");
    }
    data.resize(static_cast<size_t>(sb.st_size));
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::read(fd, data.data() + off, data.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return Status::Internal("WAL: read failed");
      }
      if (n == 0) break;  // raced a concurrent truncate; treat as EOF
      off += static_cast<size_t>(n);
    }
    data.resize(off);
  }

  size_t pos = 0;
  size_t valid_end = 0;
  Status bad = Status::OK();
  while (pos < data.size()) {
    uint32_t len = 0, crc = 0;
    if (pos + kFrameHeaderBytes > data.size()) {
      bad = Status::DataLoss("WAL: torn frame header");
      break;
    }
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len == 0 || len > kMaxPayloadBytes ||
        pos + kFrameHeaderBytes + len > data.size()) {
      bad = Status::DataLoss("WAL: torn or oversized record");
      break;
    }
    const uint8_t* payload = data.data() + pos + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) {
      bad = Status::DataLoss("WAL: CRC mismatch");
      break;
    }
    Status cb_st = cb(payload, len);
    if (!cb_st.ok()) {
      ::close(fd);
      return cb_st;
    }
    ++result.records;
    result.bytes += len;
    pos += kFrameHeaderBytes + len;
    valid_end = pos;
  }

  if (!bad.ok()) {
    // Distinguish crash-shaped tail damage from mid-file corruption: a torn
    // header/payload only happens at literal EOF, and a CRC break is tail
    // damage only if nothing follows the bad record's claimed extent.
    bool is_tail = true;
    if (bad.message().find("CRC") != std::string::npos) {
      uint32_t len = 0;
      std::memcpy(&len, data.data() + valid_end, 4);
      is_tail = valid_end + kFrameHeaderBytes + len >= data.size();
    }
    if (!is_tail) {
      ::close(fd);
      return Status::DataLoss(bad.message() +
                              " mid-file (valid data follows; refusing to "
                              "drop acknowledged records)");
    }
    if (::ftruncate(fd, static_cast<off_t>(valid_end)) != 0) {
      ::close(fd);
      return Status::Internal("WAL: cannot truncate torn tail");
    }
    (void)::fsync(fd);
    result.tail_truncated = true;
  }
  ::close(fd);
  return result;
}

// ---------------------------------------------------------------------------
// Batch payload codec.

std::vector<uint8_t> EncodeWalBatch(uint64_t epoch, const Table& batch) {
  ByteWriter w;
  w.WriteU8(kWalBatchVersion);
  w.WriteU64(epoch);
  w.WriteString(batch.name());
  w.WriteVarint(batch.NumColumns());
  for (size_t c = 0; c < batch.NumColumns(); ++c) {
    const Column& col = batch.column(c);
    w.WriteString(col.name());
    w.WriteU8(static_cast<uint8_t>(col.type()));
    w.WriteSignedVarint(col.decimals());
    w.WriteVarint(col.size());
    // Null bitmap, packed.
    uint8_t bits = 0;
    for (size_t r = 0; r < col.size(); ++r) {
      if (col.IsNull(r)) bits |= static_cast<uint8_t>(1u << (r & 7));
      if ((r & 7) == 7) {
        w.WriteU8(bits);
        bits = 0;
      }
    }
    if ((col.size() & 7) != 0) w.WriteU8(bits);
    // Values bit-exact as doubles (null slots hold 0 by Column contract).
    for (size_t r = 0; r < col.size(); ++r) w.WriteF64(col.Value(r));
    w.WriteVarint(col.dictionary().size());
    for (const std::string& s : col.dictionary()) w.WriteString(s);
  }
  return w.Finish();
}

StatusOr<WalBatch> DecodeWalBatch(const uint8_t* data, size_t size) {
  ByteReader r(data, size);
  PH_ASSIGN_OR_RETURN(uint8_t version, r.ReadU8());
  if (version != kWalBatchVersion) {
    return Status::DataLoss("WAL batch: unknown version " +
                            std::to_string(version));
  }
  WalBatch out;
  PH_ASSIGN_OR_RETURN(out.epoch, r.ReadU64());
  PH_ASSIGN_OR_RETURN(std::string name, r.ReadString());
  out.batch.set_name(std::move(name));
  PH_ASSIGN_OR_RETURN(uint64_t ncols, r.ReadVarint());
  if (ncols > 100000) return Status::DataLoss("WAL batch: absurd ncols");
  for (uint64_t c = 0; c < ncols; ++c) {
    PH_ASSIGN_OR_RETURN(std::string cname, r.ReadString());
    PH_ASSIGN_OR_RETURN(uint8_t type, r.ReadU8());
    if (type > static_cast<uint8_t>(DataType::kTimestamp)) {
      return Status::DataLoss("WAL batch: bad column type");
    }
    PH_ASSIGN_OR_RETURN(int64_t decimals, r.ReadSignedVarint());
    PH_ASSIGN_OR_RETURN(uint64_t nrows, r.ReadVarint());
    if (nrows > r.remaining() / 8) {
      return Status::DataLoss("WAL batch: truncated column");
    }
    Column col(std::move(cname), static_cast<DataType>(type),
               static_cast<int>(decimals));
    col.Reserve(nrows);
    std::vector<uint8_t> nulls((nrows + 7) / 8);
    for (size_t i = 0; i < nulls.size(); ++i) {
      PH_ASSIGN_OR_RETURN(nulls[i], r.ReadU8());
    }
    for (uint64_t row = 0; row < nrows; ++row) {
      PH_ASSIGN_OR_RETURN(double v, r.ReadF64());
      if (nulls[row >> 3] & (1u << (row & 7))) {
        col.AppendNull();
      } else {
        col.Append(v);
      }
    }
    PH_ASSIGN_OR_RETURN(uint64_t dict_size, r.ReadVarint());
    if (dict_size > 0) {
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (uint64_t i = 0; i < dict_size; ++i) {
        PH_ASSIGN_OR_RETURN(std::string s, r.ReadString());
        dict.push_back(std::move(s));
      }
      col.SetDictionary(std::move(dict));
    }
    out.batch.AddColumn(std::move(col));
  }
  if (r.remaining() != 0) {
    return Status::DataLoss("WAL batch: trailing bytes");
  }
  return out;
}

}  // namespace pairwisehist
