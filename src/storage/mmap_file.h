// Read-only memory-mapped files and the atomic file writer.
//
// MappedFile is the zero-copy substrate of PWS3 synopsis persistence: open
// maps the whole file MAP_SHARED/PROT_READ, so N processes opening the
// same synopsis share one page-cache copy and cold sections page in on
// demand instead of being deserialized up front (the technique of
// ExpressionMatrix2's MemoryMappedVector, applied to the Fig.-6 synopsis).
//
// WriteFileAtomic is the PR-7 checkpoint discipline as a reusable helper:
// write <path>.tmp, fsync it, rename over <path>, fsync the directory —
// a reader never observes a torn file, only the old or the new bytes.
#ifndef PAIRWISEHIST_STORAGE_MMAP_FILE_H_
#define PAIRWISEHIST_STORAGE_MMAP_FILE_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/status.h"

namespace pairwisehist {

/// A whole file mapped read-only. Movable, not copyable; unmaps on
/// destruction. The mapping stays valid if the file is later unlinked or
/// renamed over (POSIX), so checkpoint rotation never invalidates readers.
class MappedFile {
 public:
  /// Access-pattern hint forwarded to madvise(2).
  enum class Advice { kNormal, kSequential, kRandom, kWillNeed, kDontNeed };

  /// Opens and maps `path` read-only. The file descriptor is closed before
  /// returning (the mapping keeps the file alive). Empty files map as a
  /// valid zero-length view.
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& o) noexcept { *this = std::move(o); }
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::span<const uint8_t> bytes() const {
    return {static_cast<const uint8_t*>(base_), size_};
  }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Applies `advice` to the whole mapping (best-effort; errors ignored).
  void Advise(Advice advice) const;

  /// Applies `advice` to [offset, offset + length) only, rounded out to
  /// page boundaries (best-effort). Lets the PWS3 open path prefetch the
  /// metadata section in one readahead batch instead of faulting it in
  /// page by page during the cold decode walk.
  void Advise(Advice advice, size_t offset, size_t length) const;

 private:
  void* base_ = nullptr;
  size_t size_ = 0;
  std::string path_;
};

/// Atomically replaces `path` with `bytes`: tmp + fsync + rename + parent
/// directory fsync. On failure the previous file (if any) is untouched.
Status WriteFileAtomic(const std::string& path, const uint8_t* data,
                       size_t size);

/// Drops `path`'s pages from the page cache (posix_fadvise DONTNEED),
/// best-effort. Lets benchmarks measure cold-open latency without root.
void DropFileCache(const std::string& path);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_MMAP_FILE_H_
