#include "storage/table.h"

#include <algorithm>
#include <numeric>

namespace pairwisehist {

StatusOr<size_t> Table::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  return Status::NotFound("column '" + name + "' not in table '" + name_ +
                          "'");
}

StatusOr<const Column*> Table::FindColumn(const std::string& name) const {
  PH_ASSIGN_OR_RETURN(size_t i, ColumnIndex(name));
  return &columns_[i];
}

Status Table::Validate() const {
  if (columns_.empty()) return Status::OK();
  size_t rows = columns_[0].size();
  for (const auto& c : columns_) {
    if (c.size() != rows) {
      return Status::Internal("table '" + name_ + "': column '" + c.name() +
                              "' length mismatch");
    }
  }
  return Status::OK();
}

namespace {

// Copies row `row` of every column in `src` into `dst`. The dst table must
// have the same schema (created by the callers below).
void CopyRow(const Table& src, size_t row, Table* dst) {
  for (size_t c = 0; c < src.NumColumns(); ++c) {
    const Column& in = src.column(c);
    Column& out = dst->column(c);
    if (in.IsNull(row)) {
      out.AppendNull();
    } else {
      out.Append(in.Value(row));
    }
  }
}

// Builds an empty table with the same schema (and dictionaries) as `src`.
Table EmptyLike(const Table& src, const std::string& name) {
  Table out(name);
  for (size_t c = 0; c < src.NumColumns(); ++c) {
    const Column& in = src.column(c);
    Column col(in.name(), in.type(), in.decimals());
    col.SetDictionary(in.dictionary());
    out.AddColumn(std::move(col));
  }
  return out;
}

}  // namespace

Table Table::Sample(size_t n, uint64_t seed) const {
  size_t rows = NumRows();
  Table out = EmptyLike(*this, name_ + "_sample");
  if (rows == 0) return out;
  if (n >= rows) {
    for (size_t r = 0; r < rows; ++r) CopyRow(*this, r, &out);
    return out;
  }
  // Floyd-style selection then sort: keeps original row order, which the
  // builder relies on only for determinism, not correctness.
  Rng rng(seed);
  std::vector<size_t> picks(rows);
  std::iota(picks.begin(), picks.end(), 0);
  // Partial Fisher–Yates: choose n distinct indices.
  for (size_t i = 0; i < n; ++i) {
    size_t j = i + static_cast<size_t>(rng.UniformInt(uint64_t(rows - i)));
    std::swap(picks[i], picks[j]);
  }
  picks.resize(n);
  std::sort(picks.begin(), picks.end());
  for (size_t r : picks) CopyRow(*this, r, &out);
  return out;
}

Table Table::Slice(size_t begin, size_t end) const {
  Table out = EmptyLike(*this, name_ + "_slice");
  end = std::min(end, NumRows());
  for (size_t r = begin; r < end; ++r) CopyRow(*this, r, &out);
  return out;
}

size_t Table::RawSizeBytes() const {
  size_t bytes = 0;
  for (const auto& c : columns_) bytes += c.RawSizeBytes();
  return bytes;
}

Status AppendTableRows(Table* dst, const Table& batch) {
  if (dst->NumColumns() != batch.NumColumns()) {
    return Status::InvalidArgument(
        "Append: batch has " + std::to_string(batch.NumColumns()) +
        " columns, table has " + std::to_string(dst->NumColumns()));
  }
  for (size_t c = 0; c < dst->NumColumns(); ++c) {
    const Column& src = batch.column(c);
    Column& out = dst->column(c);
    if (src.name() != out.name() || src.type() != out.type()) {
      return Status::InvalidArgument("Append: column " + std::to_string(c) +
                                     " mismatch ('" + src.name() + "' vs '" +
                                     out.name() + "')");
    }
    out.Reserve(out.size() + src.size());
    for (size_t r = 0; r < src.size(); ++r) {
      if (src.IsNull(r)) {
        out.AppendNull();
      } else if (src.type() == DataType::kCategorical) {
        PH_ASSIGN_OR_RETURN(
            std::string cat,
            src.CategoryName(static_cast<int64_t>(src.Value(r))));
        out.AppendCategory(cat);
      } else {
        out.Append(src.Value(r));
      }
    }
  }
  return Status::OK();
}

std::string Table::SchemaString() const {
  std::string s;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) s += ", ";
    s += columns_[i].name();
    s += "(";
    s += DataTypeName(columns_[i].type());
    s += ")";
  }
  return s;
}

}  // namespace pairwisehist
