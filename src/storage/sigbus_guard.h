// Scoped SIGBUS containment for walks over memory-mapped files.
//
// A file truncated while a MAP_SHARED mapping is live turns reads past the
// new EOF into SIGBUS — by default a process kill. WithSigbusGuard runs a
// short, allocation-free callback (a CRC loop over mapped bytes) with a
// thread-local sigsetjmp recovery point installed: a fault inside the
// callback longjmps back out and surfaces as Status::DataLoss instead of
// terminating the server.
//
// The callback MUST be longjmp-safe: no heap allocation, no objects with
// non-trivial destructors live across the faulting read — pure pointer
// walks and checksum math only. Faults outside a guarded region keep the
// default disposition (the handler re-raises), so genuine bugs still die
// loudly.
#ifndef PAIRWISEHIST_STORAGE_SIGBUS_GUARD_H_
#define PAIRWISEHIST_STORAGE_SIGBUS_GUARD_H_

#include <functional>

#include "common/status.h"

namespace pairwisehist {

/// Runs `fn` with SIGBUS converted into DataLoss. Returns fn's status when
/// it completes; DataLoss("SIGBUS ...") when a bus fault interrupted it.
/// Nestable per thread; guards on different threads are independent.
Status WithSigbusGuard(const std::function<Status()>& fn);

/// Number of SIGBUS faults absorbed by guards in this process.
uint64_t SigbusFaultsAbsorbed();

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_SIGBUS_GUARD_H_
