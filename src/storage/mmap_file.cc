#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace pairwisehist {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path +
                          "' failed: " + std::strerror(errno));
}

/// fsyncs the directory containing `path` so a rename inside it is durable.
Status FsyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) return Errno("open-for-fsync dir", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return Errno("fsync dir", dir);
  return Status::OK();
}

}  // namespace

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("MappedFile: '" + path + "' does not exist");
    }
    return Errno("MappedFile: open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("MappedFile: fstat", path);
  }
  MappedFile out;
  out.size_ = static_cast<size_t>(st.st_size);
  out.path_ = path;
  if (out.size_ > 0) {
    void* base = ::mmap(nullptr, out.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (base == MAP_FAILED) {
      ::close(fd);
      return Errno("MappedFile: mmap", path);
    }
    out.base_ = base;
  }
  ::close(fd);  // the mapping pins the file
  return out;
}

MappedFile::~MappedFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this == &o) return *this;
  if (base_ != nullptr) ::munmap(base_, size_);
  base_ = o.base_;
  size_ = o.size_;
  path_ = std::move(o.path_);
  o.base_ = nullptr;
  o.size_ = 0;
  return *this;
}

namespace {

int AdviceFlag(MappedFile::Advice advice) {
  switch (advice) {
    case MappedFile::Advice::kNormal: return MADV_NORMAL;
    case MappedFile::Advice::kSequential: return MADV_SEQUENTIAL;
    case MappedFile::Advice::kRandom: return MADV_RANDOM;
    case MappedFile::Advice::kWillNeed: return MADV_WILLNEED;
    case MappedFile::Advice::kDontNeed: return MADV_DONTNEED;
  }
  return MADV_NORMAL;
}

}  // namespace

void MappedFile::Advise(Advice advice) const {
  if (base_ == nullptr) return;
  (void)::madvise(base_, size_, AdviceFlag(advice));
}

void MappedFile::Advise(Advice advice, size_t offset, size_t length) const {
  if (base_ == nullptr || offset >= size_) return;
  length = std::min(length, size_ - offset);
  const size_t page = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  const size_t begin = offset & ~(page - 1);  // round down to a page
  const size_t end = (offset + length + page - 1) & ~(page - 1);  // up
  (void)::madvise(static_cast<uint8_t*>(base_) + begin, end - begin,
                  AdviceFlag(advice));
}

Status WriteFileAtomic(const std::string& path, const uint8_t* data,
                       size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("WriteFileAtomic: open", tmp);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Errno("WriteFileAtomic: write", tmp);
    }
    off += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Errno("WriteFileAtomic: fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Errno("WriteFileAtomic: rename", path);
  }
  return FsyncParentDir(path);
}

void DropFileCache(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
#if defined(POSIX_FADV_DONTNEED)
  (void)::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
#endif
  ::close(fd);
}

}  // namespace pairwisehist
