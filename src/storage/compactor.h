// Tiered background compaction policy + error-driven refit feedback.
//
// PR 3's append-seals-a-segment design keeps accuracy stable under
// distribution shift, but sustained Append traffic accumulates ever-smaller
// segments: each loses pairwise refinement resolution (BENCH_segments
// quantifies the loss below ~5k rows) and every query pays O(num_segments)
// fan-out. This module turns that decay into a steady state, LSM-style:
//
//  * Size-tiered candidate selection (PickCompaction): segments are binned
//    into geometric size tiers; when >= min_merge ADJACENT segments share a
//    tier, the run is merged into one freshly re-fitted synopsis. Merged
//    output lands in a higher tier, so total segment count stays
//    O(tiers * min_merge) under any append rate.
//  * Error-driven refit (FeedbackLedger): cross-segment execution records
//    each segment's observed relative CI width per query (Macke et al.'s
//    adaptive-sampling principle: spend modeling effort where the estimate
//    is still uncertain). The picker prefers the eligible run that hurts
//    the workload most and scales the re-fit's bin budget (smaller
//    min_points_fraction => more, finer bins) for high-error runs. The
//    chosen budget is CAPTURED in the returned CompactionSpec so replaying
//    a recorded spec is deterministic even though the ledger is
//    workload-dependent.
//  * Quarantine drain: a quarantined segment whose rows are still
//    recoverable (retained table or WAL-covered epochs) is the top-priority
//    candidate — rebuilding it from rows clears the quarantine.
//
// The policy is pure (no I/O, no threads): Db applies specs in place as an
// exclusive writer, ServingDb applies them copy-on-compact through its RCU
// snapshot swap. See api/db.h and serve/serving_db.h for the apply paths.
#ifndef PAIRWISEHIST_STORAGE_COMPACTOR_H_
#define PAIRWISEHIST_STORAGE_COMPACTOR_H_

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/synopsis_set.h"

namespace pairwisehist {

/// Knobs for the segment lifecycle (DbOptions::compact and
/// ServingOptions::compaction).
struct CompactionOptions {
  /// Master switch. Off = PR-3 behaviour (segments only ever accumulate).
  bool enabled = false;
  /// Upper row bound of tier 0 (the "small segment" tier). Tier t covers
  /// rows in [tier0_rows * tier_factor^(t-1), tier0_rows * tier_factor^t).
  uint64_t tier0_rows = 8192;
  /// Geometric width of each tier.
  uint32_t tier_factor = 4;
  /// Merge fires when this many ADJACENT segments share a tier.
  uint32_t min_merge = 4;
  /// At most this many segments merge in one step (bounds rebuild cost).
  uint32_t max_merge = 16;
  /// Never build a merged segment larger than this many rows.
  uint64_t max_output_rows = 4u << 20;
  /// Cap on the error-driven bin-budget boost: the re-fit divides
  /// min_points_fraction by up to this factor for runs whose observed CI
  /// widths exceed the workload average (more bins where queries hurt).
  double error_boost_max = 4.0;
  /// Floor for the boosted min_points_fraction (keeps bins statistically
  /// meaningful; see PairwiseHistConfig::min_points_fraction).
  double min_points_floor = 0.001;
  /// ServingDb only: background compactor cadence. 0 = no background
  /// thread (explicit CompactNow() calls only).
  uint32_t interval_ms = 0;
  /// ServingDb only: take a checkpoint right after publishing a compacted
  /// snapshot, making it durable promptly (until then recovery restores
  /// the pre-compaction segment set — both are consistent).
  bool checkpoint_after = true;
  /// ServingDb only: byte budget for retained append batches (rows kept in
  /// memory so segments without a kept table — recovered serving — can
  /// still be re-fitted). Oldest batches evict first; segments whose rows
  /// fell out of the window simply stay uncompacted.
  size_t retain_rows_mb = 256;
};

/// What one compaction step does, in stable coordinates: replace the
/// contiguous run of segments covering rows [row_begin, row_end) with one
/// freshly fitted segment. Row ranges (not segment indices) identify the
/// run because appends only ever add segments past the end — a spec picked
/// against one snapshot applies unchanged to any later one, and replaying
/// a recorded spec sequence reproduces the exact segment structure.
struct CompactionSpec {
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  /// Bin-budget boost captured at pick time: the re-fit uses
  /// max(min_points_floor, min_points_fraction / budget_boost).
  double budget_boost = 1.0;
  /// True when the run was picked to rebuild a quarantined segment.
  bool quarantine_drain = false;
};

/// The deterministic sampling seed of a merged segment: a pure function of
/// the build seed and the replaced row range, so replaying a spec (in any
/// process, against any snapshot) rebuilds a bit-identical synopsis.
uint64_t CompactionSeed(uint64_t base_seed, uint64_t row_begin,
                        uint64_t row_end);

/// Observed per-segment estimation error, keyed by the segment's stable
/// identity (meta().row_begin — row ranges never change once sealed).
/// Cross-segment execution calls Record once per (scalar query, segment)
/// with the segment's relative CI width; PickCompaction reads the means to
/// rank candidate runs. Thread-safe (sharded); shared across
/// copy-on-append/compact snapshots so feedback accumulates over epochs.
class FeedbackLedger {
 public:
  struct Entry {
    uint64_t samples = 0;
    double mean_rel_width = 0;  ///< running mean of relative CI width
  };

  /// Folds one observation into the segment's running mean. Non-finite or
  /// negative widths are dropped; widths clamp to [0, 16] so one degenerate
  /// estimate cannot dominate the mean.
  void Record(uint64_t row_begin, double rel_width);
  Entry Get(uint64_t row_begin) const;
  /// Drops entries for segments whose row_begin lies in [begin, end) —
  /// called after a compaction retires them.
  void Forget(uint64_t begin, uint64_t end);
  std::vector<std::pair<uint64_t, Entry>> Snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
  };
  static constexpr size_t kShards = 8;
  Shard& shard(uint64_t key) const {
    return shards_[(key * 0x9E3779B97F4A7C15ull) >> 61];
  }
  mutable std::array<Shard, kShards> shards_;
};

/// The tier of a segment with `rows` rows (0 = smallest).
uint32_t CompactionTier(uint64_t rows, const CompactionOptions& opts);

/// Picks the next compaction step against `set`, or nullopt when nothing
/// is eligible. Priority order:
///  1. a quarantined segment whose rows `rebuildable` confirms are still
///     recoverable (drains the quarantine);
///  2. the eligible same-tier run (>= min_merge adjacent segments, clipped
///     to max_merge / max_output_rows) with the worst ledger error.
/// `rebuildable(row_begin, row_end)` reports whether the caller can supply
/// the raw rows for that range; runs it rejects are skipped. `ledger` may
/// be null (no error ranking; first eligible run wins).
std::optional<CompactionSpec> PickCompaction(
    const SynopsisSet& set, const CompactionOptions& opts,
    const FeedbackLedger* ledger,
    const std::function<bool(uint64_t, uint64_t)>& rebuildable);

/// How many segments currently sit in eligible merge runs (plus
/// quarantined segments) — the compaction backlog surfaced by /healthz.
size_t CompactionBacklog(const SynopsisSet& set,
                         const CompactionOptions& opts);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_COMPACTOR_H_
