#include "storage/sigbus_guard.h"

#include <csetjmp>
#include <csignal>
#include <cstring>

#include <atomic>
#include <mutex>

namespace pairwisehist {

namespace {

// The active recovery point of THIS thread (null = not inside a guard;
// faults then re-raise with the default disposition). sig_atomic_t-like
// usage: written only outside the handler, read inside it.
thread_local sigjmp_buf* t_recovery = nullptr;

std::atomic<uint64_t> g_absorbed{0};

void OnSigbus(int signo) {
  if (t_recovery != nullptr) {
    g_absorbed.fetch_add(1, std::memory_order_relaxed);
    siglongjmp(*t_recovery, 1);
  }
  // Fault outside any guard: restore the default action and re-raise so
  // the process dies with the honest signal (core dump and all).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

std::once_flag g_install_once;

void InstallHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSigbus;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler must survive repeated faults (every
  // scrub pass over a truncated mapping faults again).
  sa.sa_flags = SA_NODEFER;
  ::sigaction(SIGBUS, &sa, nullptr);
}

}  // namespace

Status WithSigbusGuard(const std::function<Status()>& fn) {
  std::call_once(g_install_once, InstallHandler);
  sigjmp_buf recovery;
  sigjmp_buf* prev = t_recovery;  // support nesting
  if (sigsetjmp(recovery, /*savemask=*/1) != 0) {
    t_recovery = prev;
    return Status::DataLoss(
        "SIGBUS while reading mapped bytes (file truncated or device "
        "error under an active mapping)");
  }
  t_recovery = &recovery;
  Status st = fn();
  t_recovery = prev;
  return st;
}

uint64_t SigbusFaultsAbsorbed() {
  return g_absorbed.load(std::memory_order_relaxed);
}

}  // namespace pairwisehist
