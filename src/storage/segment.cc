#include "storage/segment.h"

#include <algorithm>

namespace pairwisehist {

ColumnRanges ComputeColumnRanges(const Table& table, size_t begin,
                                 size_t end) {
  const size_t d = table.NumColumns();
  end = std::min(end, table.NumRows());
  ColumnRanges out;
  out.min.assign(d, 0.0);
  out.max.assign(d, 0.0);
  out.valid.assign(d, 0);
  for (size_t c = 0; c < d; ++c) {
    const Column& col = table.column(c);
    bool any = false;
    double lo = 0, hi = 0;
    for (size_t r = begin; r < end; ++r) {
      if (col.IsNull(r)) continue;
      double v = col.Value(r);
      if (!any || v < lo) lo = v;
      if (!any || v > hi) hi = v;
      any = true;
    }
    if (any) {
      out.min[c] = lo;
      out.max[c] = hi;
      out.valid[c] = 1;
    }
  }
  return out;
}

StatusOr<SegmentedTable> SegmentedTable::Partition(const Table* table,
                                                  size_t target_rows) {
  if (table == nullptr) {
    return Status::InvalidArgument("Partition: null table");
  }
  PH_RETURN_IF_ERROR(table->Validate());
  const size_t rows = table->NumRows();
  std::vector<SegmentSpan> spans;
  if (target_rows == 0 || rows == 0 || target_rows >= rows) {
    spans.push_back(SegmentSpan{0, rows});
    return SegmentedTable(table, std::move(spans));
  }
  const size_t nseg = (rows + target_rows - 1) / target_rows;
  spans.reserve(nseg);
  // Spread rows evenly so the last segment is not a sliver: segment i gets
  // floor or ceil of rows/nseg, deterministically.
  size_t begin = 0;
  for (size_t i = 0; i < nseg; ++i) {
    size_t end = rows * (i + 1) / nseg;
    spans.push_back(SegmentSpan{begin, end});
    begin = end;
  }
  return SegmentedTable(table, std::move(spans));
}

Table SegmentedTable::Materialize(size_t i) const {
  const SegmentSpan s = spans_[i];
  Table out = base_->Slice(s.begin, s.end);
  // Slice suffixes the name; segments must keep the logical table name so
  // per-segment synopses resolve the same "FROM <table>".
  out.set_name(base_->name());
  return out;
}

ColumnRanges SegmentedTable::Ranges(size_t i) const {
  const SegmentSpan s = spans_[i];
  return ComputeColumnRanges(*base_, s.begin, s.end);
}

}  // namespace pairwisehist
