#include "storage/compactor.h"

#include <algorithm>
#include <cmath>

namespace pairwisehist {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// One candidate merge window: segments [begin, end) at pick time.
struct Window {
  size_t begin = 0;
  size_t end = 0;
  uint64_t row_begin = 0;
  uint64_t row_end = 0;
  double score = 0;      ///< sample-weighted mean relative CI width
  uint64_t samples = 0;  ///< total feedback samples behind the score
};

}  // namespace

uint64_t CompactionSeed(uint64_t base_seed, uint64_t row_begin,
                        uint64_t row_end) {
  return base_seed ^ SplitMix64(row_begin * 2 + 1) ^ SplitMix64(row_end * 2);
}

// ---------------------------------------------------------------------------
// FeedbackLedger

void FeedbackLedger::Record(uint64_t row_begin, double rel_width) {
  if (!std::isfinite(rel_width) || rel_width < 0) return;
  rel_width = std::min(rel_width, 16.0);
  Shard& sh = shard(row_begin);
  std::lock_guard<std::mutex> lock(sh.mu);
  Entry& e = sh.entries[row_begin];
  ++e.samples;
  e.mean_rel_width +=
      (rel_width - e.mean_rel_width) / static_cast<double>(e.samples);
}

FeedbackLedger::Entry FeedbackLedger::Get(uint64_t row_begin) const {
  Shard& sh = shard(row_begin);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.entries.find(row_begin);
  return it == sh.entries.end() ? Entry{} : it->second;
}

void FeedbackLedger::Forget(uint64_t begin, uint64_t end) {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (auto it = sh.entries.begin(); it != sh.entries.end();) {
      if (it->first >= begin && it->first < end) {
        it = sh.entries.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::vector<std::pair<uint64_t, FeedbackLedger::Entry>>
FeedbackLedger::Snapshot() const {
  std::vector<std::pair<uint64_t, Entry>> out;
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    for (const auto& kv : sh.entries) out.push_back(kv);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

// ---------------------------------------------------------------------------
// Policy

uint32_t CompactionTier(uint64_t rows, const CompactionOptions& opts) {
  const uint64_t tier0 = std::max<uint64_t>(1, opts.tier0_rows);
  const uint64_t factor = std::max<uint32_t>(2, opts.tier_factor);
  uint32_t tier = 0;
  uint64_t bound = tier0;
  while (rows >= bound) {
    ++tier;
    if (bound > opts.max_output_rows) break;  // everything huge: one tier
    bound *= factor;
  }
  return tier;
}

std::optional<CompactionSpec> PickCompaction(
    const SynopsisSet& set, const CompactionOptions& opts,
    const FeedbackLedger* ledger,
    const std::function<bool(uint64_t, uint64_t)>& rebuildable) {
  const size_t nseg = set.NumSegments();
  if (nseg == 0) return std::nullopt;
  auto can = [&](uint64_t rb, uint64_t re) {
    return !rebuildable || rebuildable(rb, re);
  };

  // Priority 1: drain quarantine. A rebuilt segment is both healthy and
  // freshly fitted, so this shrinks the integrity blast radius first.
  for (size_t i = 0; i < nseg; ++i) {
    if (!set.SegmentQuarantined(i)) continue;
    const SegmentMeta& m = set.meta(i);
    if (m.row_end <= m.row_begin) continue;
    if (!can(m.row_begin, m.row_end)) continue;
    CompactionSpec spec;
    spec.row_begin = m.row_begin;
    spec.row_end = m.row_end;
    spec.quarantine_drain = true;
    return spec;
  }

  // Priority 2: size-tiered merge runs. Quarantined segments whose rows
  // are gone cannot be rebuilt, so they break runs rather than join them.
  const uint32_t min_merge = std::max<uint32_t>(2, opts.min_merge);
  std::vector<Window> windows;
  double global_width_sum = 0;
  uint64_t global_samples = 0;
  size_t i = 0;
  while (i < nseg) {
    if (set.SegmentQuarantined(i)) {
      ++i;
      continue;
    }
    const uint32_t tier = CompactionTier(
        set.meta(i).row_end - set.meta(i).row_begin, opts);
    size_t j = i + 1;
    while (j < nseg && !set.SegmentQuarantined(j) &&
           CompactionTier(set.meta(j).row_end - set.meta(j).row_begin,
                          opts) == tier) {
      ++j;
    }
    if (j - i >= min_merge) {
      // Window = the run's prefix, clipped to max_merge and
      // max_output_rows (never below min_merge — an over-clip skips it).
      Window w;
      w.begin = i;
      w.end = i;
      uint64_t rows = 0;
      while (w.end < j && w.end - w.begin < opts.max_merge) {
        const uint64_t seg_rows =
            set.meta(w.end).row_end - set.meta(w.end).row_begin;
        if (w.end > w.begin && rows + seg_rows > opts.max_output_rows) break;
        rows += seg_rows;
        ++w.end;
      }
      if (w.end - w.begin >= min_merge) {
        w.row_begin = set.meta(w.begin).row_begin;
        w.row_end = set.meta(w.end - 1).row_end;
        if (ledger != nullptr) {
          double width_sum = 0;
          for (size_t s = w.begin; s < w.end; ++s) {
            FeedbackLedger::Entry e = ledger->Get(set.meta(s).row_begin);
            width_sum += e.mean_rel_width * static_cast<double>(e.samples);
            w.samples += e.samples;
          }
          if (w.samples > 0) {
            w.score = width_sum / static_cast<double>(w.samples);
          }
          global_width_sum += width_sum;
          global_samples += w.samples;
        }
        windows.push_back(w);
      }
    }
    i = j;
  }
  if (windows.empty()) return std::nullopt;

  // Worst observed error first; ties (and the no-feedback case) resolve to
  // the leftmost run, so picking is deterministic.
  std::sort(windows.begin(), windows.end(), [](const Window& a,
                                               const Window& b) {
    return a.score != b.score ? a.score > b.score : a.row_begin < b.row_begin;
  });
  const double global_mean =
      global_samples > 0 ? global_width_sum / static_cast<double>(global_samples)
                         : 0;
  for (const Window& w : windows) {
    if (!can(w.row_begin, w.row_end)) continue;
    CompactionSpec spec;
    spec.row_begin = w.row_begin;
    spec.row_end = w.row_end;
    // Error-driven bin budget: a run whose queries see wider-than-average
    // CIs gets proportionally more bins, up to error_boost_max.
    if (w.samples > 0 && global_mean > 0) {
      spec.budget_boost = std::clamp(w.score / global_mean, 1.0,
                                     std::max(1.0, opts.error_boost_max));
    }
    return spec;
  }
  return std::nullopt;
}

size_t CompactionBacklog(const SynopsisSet& set,
                         const CompactionOptions& opts) {
  const size_t nseg = set.NumSegments();
  const uint32_t min_merge = std::max<uint32_t>(2, opts.min_merge);
  size_t backlog = 0;
  size_t i = 0;
  while (i < nseg) {
    if (set.SegmentQuarantined(i)) {
      ++backlog;
      ++i;
      continue;
    }
    const uint32_t tier = CompactionTier(
        set.meta(i).row_end - set.meta(i).row_begin, opts);
    size_t j = i + 1;
    while (j < nseg && !set.SegmentQuarantined(j) &&
           CompactionTier(set.meta(j).row_end - set.meta(j).row_begin,
                          opts) == tier) {
      ++j;
    }
    if (j - i >= min_merge) backlog += j - i;
    i = j;
  }
  return backlog;
}

}  // namespace pairwisehist
