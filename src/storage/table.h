// In-memory relational table: an ordered set of equally-long Columns.
#ifndef PAIRWISEHIST_STORAGE_TABLE_H_
#define PAIRWISEHIST_STORAGE_TABLE_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "storage/column.h"

namespace pairwisehist {

/// A named single relation. Columns are owned by the table; all columns
/// must have the same length (checked by Validate()).
class Table {
 public:
  explicit Table(std::string name = "t") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Adds a column; returns its index.
  size_t AddColumn(Column column) {
    columns_.push_back(std::move(column));
    return columns_.size() - 1;
  }

  size_t NumColumns() const { return columns_.size(); }
  size_t NumRows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  Column& column(size_t i) { return columns_[i]; }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column with the given name; NotFound if absent.
  StatusOr<size_t> ColumnIndex(const std::string& name) const;
  /// Column by name; NotFound if absent.
  StatusOr<const Column*> FindColumn(const std::string& name) const;

  /// Checks all columns have equal length.
  Status Validate() const;

  /// Uniform random sample (without replacement) of up to n rows.
  Table Sample(size_t n, uint64_t seed) const;

  /// Copy of rows [begin, end).
  Table Slice(size_t begin, size_t end) const;

  /// Total bytes of the uncompressed in-memory representation.
  size_t RawSizeBytes() const;

  /// One-line schema summary for logs/docs: "name(type), ...".
  std::string SchemaString() const;

 private:
  std::string name_;
  std::vector<Column> columns_;
};

/// Appends every row of `batch` onto `dst`. Columns must match by name and
/// type; categorical values re-intern through the destination dictionary
/// (the batch may have been built with its own, differently ordered one).
Status AppendTableRows(Table* dst, const Table& batch);

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_TABLE_H_
