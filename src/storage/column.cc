#include "storage/column.h"

#include <algorithm>
#include <cmath>

namespace pairwisehist {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kFloat64:
      return "float64";
    case DataType::kInt64:
      return "int64";
    case DataType::kCategorical:
      return "categorical";
    case DataType::kTimestamp:
      return "timestamp";
  }
  return "unknown";
}

void Column::AppendCategory(const std::string& category) {
  for (size_t i = 0; i < dictionary_.size(); ++i) {
    if (dictionary_[i] == category) {
      Append(static_cast<double>(i));
      return;
    }
  }
  dictionary_.push_back(category);
  Append(static_cast<double>(dictionary_.size() - 1));
}

double Column::Min() const {
  double m = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < values_.size(); ++i) {
    if (nulls_[i]) continue;
    if (std::isnan(m) || values_[i] < m) m = values_[i];
  }
  return m;
}

double Column::Max() const {
  double m = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < values_.size(); ++i) {
    if (nulls_[i]) continue;
    if (std::isnan(m) || values_[i] > m) m = values_[i];
  }
  return m;
}

size_t Column::CountDistinct() const {
  std::vector<double> v;
  v.reserve(non_null_count_);
  for (size_t i = 0; i < values_.size(); ++i) {
    if (!nulls_[i]) v.push_back(values_[i]);
  }
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v.size();
}

StatusOr<int64_t> Column::CategoryCode(const std::string& category) const {
  for (size_t i = 0; i < dictionary_.size(); ++i) {
    if (dictionary_[i] == category) return static_cast<int64_t>(i);
  }
  return Status::NotFound("category '" + category + "' not in column '" +
                          name_ + "'");
}

StatusOr<std::string> Column::CategoryName(int64_t code) const {
  if (code < 0 || static_cast<size_t>(code) >= dictionary_.size()) {
    return Status::OutOfRange("category code out of range in column '" +
                              name_ + "'");
  }
  return dictionary_[static_cast<size_t>(code)];
}

size_t Column::RawSizeBytes() const {
  size_t bytes = values_.size() * 8 + (values_.size() + 7) / 8;
  for (const auto& s : dictionary_) bytes += s.size() + 4;
  return bytes;
}

}  // namespace pairwisehist
