// Typed, nullable column storage.
//
// The evaluation datasets mix sensor floats (fixed decimal precision),
// integers, timestamps and skewed categorical fields with missing values —
// exactly the mix GreedyGD pre-processing (Section 3 of the paper) is
// designed around. A Column stores its canonical numeric representation as
// double (exact for integers up to 2^53, far beyond our domains), an
// optional string dictionary for categorical data, a null bitmap, and a
// decimal-places hint used by the float→integer pre-processing step.
#ifndef PAIRWISEHIST_STORAGE_COLUMN_H_
#define PAIRWISEHIST_STORAGE_COLUMN_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace pairwisehist {

/// Logical column types.
enum class DataType : uint8_t {
  kFloat64 = 0,     ///< real-valued measurements
  kInt64 = 1,       ///< counts, codes, identifiers
  kCategorical = 2, ///< dictionary-encoded strings
  kTimestamp = 3,   ///< seconds since epoch, stored as integer
};

const char* DataTypeName(DataType type);

/// One nullable column of a Table.
class Column {
 public:
  /// Creates an empty column. `decimals` matters only for kFloat64: the
  /// number of decimal places preserved by the GD float→int conversion.
  Column(std::string name, DataType type, int decimals = 2)
      : name_(std::move(name)), type_(type), decimals_(decimals) {}

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  int decimals() const { return decimals_; }
  size_t size() const { return values_.size(); }

  /// Appends a non-null numeric value (the categorical code for
  /// kCategorical columns).
  void Append(double value) {
    values_.push_back(value);
    nulls_.push_back(0);
    ++non_null_count_;
  }

  /// Appends a null entry (value slot holds 0 and must not be read).
  void AppendNull() {
    values_.push_back(0);
    nulls_.push_back(1);
  }

  /// Appends a categorical string, interning it in the dictionary.
  /// Only valid for kCategorical columns.
  void AppendCategory(const std::string& category);

  bool IsNull(size_t row) const { return nulls_[row] != 0; }
  double Value(size_t row) const { return values_[row]; }

  size_t null_count() const { return values_.size() - non_null_count_; }
  size_t non_null_count() const { return non_null_count_; }
  bool has_nulls() const { return non_null_count_ != values_.size(); }

  /// Minimum / maximum over non-null values; NaN when all-null.
  double Min() const;
  double Max() const;

  /// Number of distinct non-null values (exact; O(n log n)).
  size_t CountDistinct() const;

  /// Dictionary access (kCategorical only). Codes index into this vector.
  const std::vector<std::string>& dictionary() const { return dictionary_; }
  /// Looks up the code for a category string; NotFound if absent.
  StatusOr<int64_t> CategoryCode(const std::string& category) const;
  /// Looks up the string for a code; OutOfRange if invalid.
  StatusOr<std::string> CategoryName(int64_t code) const;
  /// Replaces the dictionary (used by generators that pre-build it).
  void SetDictionary(std::vector<std::string> dict) {
    dictionary_ = std::move(dict);
  }

  /// Raw value vector (read-only). Null rows contain 0.
  const std::vector<double>& values() const { return values_; }

  /// Bytes of an uncompressed in-memory representation: 8 per value plus
  /// one bit of null bitmap, plus dictionary strings. Used as the "raw"
  /// storage reference when reporting compression ratios.
  size_t RawSizeBytes() const;

  /// Reserves capacity for n rows.
  void Reserve(size_t n) {
    values_.reserve(n);
    nulls_.reserve(n);
  }

 private:
  std::string name_;
  DataType type_;
  int decimals_;
  std::vector<double> values_;
  std::vector<uint8_t> nulls_;
  std::vector<std::string> dictionary_;
  size_t non_null_count_ = 0;
};

}  // namespace pairwisehist

#endif  // PAIRWISEHIST_STORAGE_COLUMN_H_
